//===- runtime/HashTable.h - Chained hash table for joins/aggs --*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash table backing hash joins and hash aggregation in compiled
/// queries. The design follows the data-centric codegen contract (§II):
/// generated code computes hashes (crc32 / long-mul-fold QIR ops), calls
/// rt_ht_insert to obtain a payload slot it fills with stores, and probes
/// by walking the bucket chain itself, comparing keys inline. Entries are
/// stored in fixed-size chunks so a later pipeline can scan the table
/// morsel-parallel by dense index.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_RUNTIME_HASHTABLE_H
#define QCF_RUNTIME_HASHTABLE_H

#include "support/Compiler.h"
#include <atomic>
#include <cstdint>
#include <mutex>

namespace qcf::rt {

/// Chained hash table with chunked entry storage.
///
/// Entry layout: [Next* : 8][Hash : 8][Payload : PayloadBytes]. Generated
/// code addresses the payload as entry+16.
class HashTable {
public:
  static constexpr uint32_t HeaderBytes = 16;
  static constexpr uint32_t ChunkEntries = 4096;

  /// \p ExpectedEntries sizes the bucket array (it is not a hard limit).
  HashTable(uint64_t ExpectedEntries, uint32_t PayloadBytes);
  ~HashTable();

  HashTable(const HashTable &) = delete;
  HashTable &operator=(const HashTable &) = delete;

  /// Inserts a new entry with \p Hash; returns the payload pointer.
  /// Single-threaded variant.
  void *insert(uint64_t Hash);

  /// Thread-safe insert for morsel-parallel build pipelines.
  void *insertAtomic(uint64_t Hash);

  /// First entry in the chain whose hash equals \p Hash (or nullptr).
  /// Returns the entry header; payload is at +16.
  void *lookup(uint64_t Hash) const;

  /// Next chain entry with the same hash after \p Entry (or nullptr).
  static void *nextMatch(void *Entry, uint64_t Hash);

  uint64_t count() const {
    return Count.load(std::memory_order_acquire);
  }

  /// Entry header by dense index in [0, count()). Only valid once the
  /// build phase has completed.
  void *entryAt(uint64_t Index) const;

  uint32_t payloadBytes() const { return PayloadBytes; }
  uint64_t numBuckets() const { return Mask + 1; }

private:
  struct EntryHeader {
    EntryHeader *Next;
    uint64_t Hash;
  };

  char *entrySlot(uint64_t Index) const;
  EntryHeader *allocateEntry(uint64_t Hash, bool Atomic);

  uint32_t PayloadBytes;
  uint32_t EntryBytes;
  uint64_t Mask = 0;
  std::atomic<EntryHeader *> *Buckets = nullptr;
  std::atomic<char *> *Chunks = nullptr;
  uint64_t MaxChunks = 0;
  std::atomic<uint64_t> Count{0};
  std::mutex ChunkLock;
};

} // namespace qcf::rt

#endif // QCF_RUNTIME_HASHTABLE_H
