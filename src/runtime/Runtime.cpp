//===- runtime/Runtime.cpp - Runtime function implementations -------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Hash.h"
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <unordered_map>

using namespace qcf;
using namespace qcf::rt;
using qcf::qir::Type;

// --- Trap -------------------------------------------------------------------

thread_local detail::TrapFrame *detail::CurrentTrapFrame = nullptr;

const char *qcf::rt::trapCodeName(TrapCode Code) {
  switch (Code) {
  case TrapCode::None:
    return "none";
  case TrapCode::Overflow:
    return "overflow";
  case TrapCode::DivByZero:
    return "division by zero";
  }
  return "unknown";
}

extern "C" void rt_trap(uint64_t Code) {
  detail::TrapFrame *Frame = detail::CurrentTrapFrame;
  if (!Frame)
    reportFatalError("query trap raised outside any trap guard");
  std::longjmp(Frame->Buf, static_cast<int>(Code));
}

// --- Strings ------------------------------------------------------------------

extern "C" uint64_t rt_str_eq(StringVal A, StringVal B) {
  return stringEq(A, B);
}

extern "C" int64_t rt_str_cmp(StringVal A, StringVal B) {
  return stringCmp(A, B);
}

extern "C" uint64_t rt_str_contains(StringVal Hay, StringVal Needle) {
  if (Needle.Len == 0)
    return 1;
  if (Needle.Len > Hay.Len)
    return 0;
  const char *H = Hay.data();
  const char *N = Needle.data();
  for (uint32_t I = 0; I + Needle.Len <= Hay.Len; ++I)
    if (std::memcmp(H + I, N, Needle.Len) == 0)
      return 1;
  return 0;
}

extern "C" uint64_t rt_str_prefix(StringVal S, StringVal Prefix) {
  if (Prefix.Len > S.Len)
    return 0;
  return std::memcmp(S.data(), Prefix.data(), Prefix.Len) == 0;
}

extern "C" uint64_t rt_str_hash(StringVal S) { return stringHash(S); }

namespace {

/// Recursive LIKE matcher over % (any run) and _ (any single char).
bool likeMatch(const char *S, uint32_t SLen, const char *P, uint32_t PLen) {
  while (PLen) {
    if (*P == '%') {
      // Collapse consecutive %.
      while (PLen && *P == '%') {
        ++P;
        --PLen;
      }
      if (!PLen)
        return true;
      for (uint32_t I = 0; I <= SLen; ++I)
        if (likeMatch(S + I, SLen - I, P, PLen))
          return true;
      return false;
    }
    if (!SLen)
      return false;
    if (*P != '_' && *P != *S)
      return false;
    ++S;
    --SLen;
    ++P;
    --PLen;
  }
  return SLen == 0;
}

} // namespace

extern "C" uint64_t rt_str_like(StringVal S, StringVal Pattern) {
  return likeMatch(S.data(), S.Len, Pattern.data(), Pattern.Len);
}

extern "C" StringVal rt_str_concat(void *ArenaPtr, StringVal A, StringVal B) {
  uint32_t Len = A.Len + B.Len;
  if (Len <= StringVal::InlineCap) {
    char Buf[12] = {};
    std::memcpy(Buf, A.data(), A.Len);
    std::memcpy(Buf + A.Len, B.data(), B.Len);
    return StringVal::makeRef(Buf, Len);
  }
  auto *Ar = static_cast<Arena *>(ArenaPtr);
  char *Mem = Ar->allocateArray<char>(Len);
  std::memcpy(Mem, A.data(), A.Len);
  std::memcpy(Mem + A.Len, B.data(), B.Len);
  return StringVal::makeRef(Mem, Len);
}

extern "C" StringVal rt_str_substr(void *ArenaPtr, StringVal S,
                                   uint64_t Start, uint64_t Len) {
  if (Start >= S.Len)
    return StringVal::makeRef("", 0);
  uint64_t Avail = S.Len - Start;
  uint32_t N = static_cast<uint32_t>(Len < Avail ? Len : Avail);
  if (N <= StringVal::InlineCap)
    return StringVal::makeRef(S.data() + Start, N);
  // Long substrings can alias the original data: string storage is
  // immutable for the lifetime of a query.
  (void)ArenaPtr;
  return StringVal::makeRef(S.data() + Start, N);
}

// --- Hash tables ----------------------------------------------------------

extern "C" void *rt_ht_insert(void *Ht, uint64_t Hash) {
  return static_cast<HashTable *>(Ht)->insert(Hash);
}

extern "C" void *rt_ht_insert_atomic(void *Ht, uint64_t Hash) {
  return static_cast<HashTable *>(Ht)->insertAtomic(Hash);
}

extern "C" void *rt_ht_lookup(void *Ht, uint64_t Hash) {
  return static_cast<HashTable *>(Ht)->lookup(Hash);
}

extern "C" void *rt_ht_next(void *Entry, uint64_t Hash) {
  return HashTable::nextMatch(Entry, Hash);
}

extern "C" uint64_t rt_ht_count(void *Ht) {
  return static_cast<HashTable *>(Ht)->count();
}

extern "C" void *rt_ht_entry(void *Ht, uint64_t Index) {
  return static_cast<HashTable *>(Ht)->entryAt(Index);
}

// --- Memory / output --------------------------------------------------------

extern "C" void *rt_arena_alloc(void *ArenaPtr, uint64_t Bytes) {
  return static_cast<Arena *>(ArenaPtr)->allocate(Bytes, 16);
}

extern "C" void rt_out_row(void *Out) {
  static_cast<OutputBuffer *>(Out)->beginRow();
}

extern "C" void rt_out_i64(void *Out, int64_t V) {
  static_cast<OutputBuffer *>(Out)->appendI64(V);
}

extern "C" void rt_out_i128(void *Out, __int128 V) {
  static_cast<OutputBuffer *>(Out)->appendI128(V);
}

extern "C" void rt_out_f64bits(void *Out, uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  static_cast<OutputBuffer *>(Out)->appendF64(D);
}

extern "C" void rt_out_str(void *Out, StringVal S) {
  static_cast<OutputBuffer *>(Out)->appendStr(S);
}

// --- Dates --------------------------------------------------------------------

namespace {

/// Civil-from-days (Howard Hinnant's algorithm, public domain).
void civilFromDays(int64_t Z, int64_t *Y, unsigned *M, unsigned *D) {
  Z += 719468;
  int64_t Era = (Z >= 0 ? Z : Z - 146096) / 146097;
  uint64_t Doe = static_cast<uint64_t>(Z - Era * 146097);
  uint64_t Yoe = (Doe - Doe / 1460 + Doe / 36524 - Doe / 146096) / 365;
  int64_t Yr = static_cast<int64_t>(Yoe) + Era * 400;
  uint64_t Doy = Doe - (365 * Yoe + Yoe / 4 - Yoe / 100);
  uint64_t Mp = (5 * Doy + 2) / 153;
  uint64_t Dy = Doy - (153 * Mp + 2) / 5 + 1;
  uint64_t Mo = Mp < 10 ? Mp + 3 : Mp - 9;
  *Y = Yr + (Mo <= 2);
  *M = static_cast<unsigned>(Mo);
  *D = static_cast<unsigned>(Dy);
}

} // namespace

int64_t qcf::rt::dateYear(int64_t Days) {
  int64_t Y;
  unsigned M, D;
  civilFromDays(Days, &Y, &M, &D);
  return Y;
}

int64_t qcf::rt::dateMonth(int64_t Days) {
  int64_t Y;
  unsigned M, D;
  civilFromDays(Days, &Y, &M, &D);
  return M;
}

int64_t qcf::rt::dateFromYmd(int Year, unsigned Month, unsigned Day) {
  // days_from_civil, same source.
  int64_t Y = Year - (Month <= 2);
  int64_t Era = (Y >= 0 ? Y : Y - 399) / 400;
  uint64_t Yoe = static_cast<uint64_t>(Y - Era * 400);
  uint64_t Doy = (153 * (Month > 2 ? Month - 3 : Month + 9) + 2) / 5 + Day - 1;
  uint64_t Doe = Yoe * 365 + Yoe / 4 - Yoe / 100 + Doy;
  return Era * 146097 + static_cast<int64_t>(Doe) - 719468;
}

extern "C" int64_t rt_date_year(int64_t Days) { return dateYear(Days); }
extern "C" int64_t rt_date_month(int64_t Days) { return dateMonth(Days); }

// --- Sort ---------------------------------------------------------------------

namespace {
struct SortCtx {
  uint64_t ElemSize;
  int64_t (*Cmp)(const void *, const void *);
};
} // namespace

extern "C" void rt_sort(void *Base, uint64_t Count, uint64_t ElemSize,
                        void *Cmp) {
  // Index sort + permute: keeps the comparator a plain two-pointer call,
  // which is the callback-into-generated-code shape the paper describes
  // for sort operators (§III-A).
  auto *CmpFn = reinterpret_cast<int64_t (*)(const void *, const void *)>(Cmp);
  char *Bytes = static_cast<char *>(Base);
  std::vector<uint64_t> Index(Count);
  for (uint64_t I = 0; I != Count; ++I)
    Index[I] = I;
  std::stable_sort(Index.begin(), Index.end(), [&](uint64_t A, uint64_t B) {
    return CmpFn(Bytes + A * ElemSize, Bytes + B * ElemSize) < 0;
  });
  std::vector<char> Tmp(Count * ElemSize);
  for (uint64_t I = 0; I != Count; ++I)
    std::memcpy(Tmp.data() + I * ElemSize, Bytes + Index[I] * ElemSize,
                ElemSize);
  std::memcpy(Bytes, Tmp.data(), Count * ElemSize);
}

// --- 128-bit multiplication helper ------------------------------------------

extern "C" __int128 rt_mul128_ovf(__int128 A, __int128 B) {
  Int128 R;
  if (mulOverflow128(A, B, &R))
    rt_trap(static_cast<uint64_t>(TrapCode::Overflow));
  return R;
}

extern "C" __int128 rt_sdiv128(__int128 A, __int128 B) {
  Int128 R;
  if (divOverflow128(A, B, &R))
    rt_trap(static_cast<uint64_t>(B == 0 ? TrapCode::DivByZero
                                         : TrapCode::Overflow));
  return R;
}

extern "C" __int128 rt_udiv128(__int128 A, __int128 B) {
  if (B == 0)
    rt_trap(static_cast<uint64_t>(TrapCode::DivByZero));
  return static_cast<Int128>(static_cast<UInt128>(A) /
                             static_cast<UInt128>(B));
}

extern "C" __int128 rt_srem128(__int128 A, __int128 B) {
  if (B == 0)
    rt_trap(static_cast<uint64_t>(TrapCode::DivByZero));
  if (B == -1)
    return 0;
  return A % B;
}

extern "C" __int128 rt_shl128(__int128 A, uint64_t Amount) {
  return static_cast<Int128>(static_cast<UInt128>(A) << (Amount & 127));
}

extern "C" __int128 rt_lshr128(__int128 A, uint64_t Amount) {
  return static_cast<Int128>(static_cast<UInt128>(A) >> (Amount & 127));
}

extern "C" __int128 rt_ashr128(__int128 A, uint64_t Amount) {
  return A >> (Amount & 127);
}

extern "C" uint64_t rt_crc32(uint64_t Seed, uint64_t Value) {
  return crc32u64(Seed, Value);
}

namespace {

[[noreturn]] void trapOverflow() {
  rt_trap(static_cast<uint64_t>(TrapCode::Overflow));
}

} // namespace

extern "C" uint64_t rt_sadd32_ovf(uint64_t A, uint64_t B) {
  int32_t R;
  if (__builtin_add_overflow(static_cast<int32_t>(A),
                             static_cast<int32_t>(B), &R))
    trapOverflow();
  return static_cast<uint32_t>(R);
}

extern "C" uint64_t rt_ssub32_ovf(uint64_t A, uint64_t B) {
  int32_t R;
  if (__builtin_sub_overflow(static_cast<int32_t>(A),
                             static_cast<int32_t>(B), &R))
    trapOverflow();
  return static_cast<uint32_t>(R);
}

extern "C" uint64_t rt_smul32_ovf(uint64_t A, uint64_t B) {
  int32_t R;
  if (__builtin_mul_overflow(static_cast<int32_t>(A),
                             static_cast<int32_t>(B), &R))
    trapOverflow();
  return static_cast<uint32_t>(R);
}

extern "C" uint64_t rt_sadd64_ovf(uint64_t A, uint64_t B) {
  int64_t R;
  if (__builtin_add_overflow(static_cast<int64_t>(A),
                             static_cast<int64_t>(B), &R))
    trapOverflow();
  return static_cast<uint64_t>(R);
}

extern "C" uint64_t rt_ssub64_ovf(uint64_t A, uint64_t B) {
  int64_t R;
  if (__builtin_sub_overflow(static_cast<int64_t>(A),
                             static_cast<int64_t>(B), &R))
    trapOverflow();
  return static_cast<uint64_t>(R);
}

extern "C" uint64_t rt_smul64_ovf(uint64_t A, uint64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(static_cast<int64_t>(A),
                             static_cast<int64_t>(B), &R))
    trapOverflow();
  return static_cast<uint64_t>(R);
}

extern "C" __int128 rt_add128_ovf(__int128 A, __int128 B) {
  Int128 R;
  if (addOverflow128(A, B, &R))
    trapOverflow();
  return R;
}

extern "C" __int128 rt_sub128_ovf(__int128 A, __int128 B) {
  Int128 R;
  if (subOverflow128(A, B, &R))
    trapOverflow();
  return R;
}

// --- OutputBuffer --------------------------------------------------------------

void OutputBuffer::appendStr(StringVal S) {
  Cell C{};
  C.Kind = CellKind::Str;
  if (S.isInline()) {
    C.StrV = S;
  } else {
    const char *Copy =
        static_cast<const char *>(Strings.allocate(S.Len, 1));
    std::memcpy(const_cast<char *>(Copy), S.data(), S.Len);
    C.StrV = StringVal::makeRef(Copy, S.Len);
  }
  Cells.push_back(C);
}

const OutputBuffer::Cell *OutputBuffer::row(size_t Row,
                                            size_t *NumCells) const {
  assert(Row < RowStarts.size() && "row index out of range");
  size_t Begin = RowStarts[Row];
  size_t End = Row + 1 < RowStarts.size() ? RowStarts[Row + 1] : Cells.size();
  *NumCells = End - Begin;
  return Cells.data() + Begin;
}

namespace {

void renderCell(std::string &Out, const OutputBuffer::Cell &C) {
  char Buf[64];
  switch (C.Kind) {
  case OutputBuffer::CellKind::I64:
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, C.I64V);
    Out += Buf;
    break;
  case OutputBuffer::CellKind::I128: {
    // Render via repeated division (no 128-bit printf).
    Int128 V = C.I128V;
    bool Neg = V < 0;
    UInt128 U = Neg ? static_cast<UInt128>(-(V + 1)) + 1
                    : static_cast<UInt128>(V);
    char Digits[48];
    int N = 0;
    do {
      Digits[N++] = static_cast<char>('0' + static_cast<int>(U % 10));
      U /= 10;
    } while (U);
    if (Neg)
      Out += '-';
    while (N)
      Out += Digits[--N];
    break;
  }
  case OutputBuffer::CellKind::F64:
    std::snprintf(Buf, sizeof(Buf), "%.6f", C.F64V);
    Out += Buf;
    break;
  case OutputBuffer::CellKind::Str:
    Out.append(C.StrV.data(), C.StrV.Len);
    break;
  case OutputBuffer::CellKind::Null:
    Out += "NULL";
    break;
  }
}

} // namespace

std::string OutputBuffer::toText() const {
  std::string Out;
  for (size_t R = 0; R != numRows(); ++R) {
    size_t N;
    const Cell *Row = row(R, &N);
    for (size_t I = 0; I != N; ++I) {
      if (I)
        Out += '|';
      renderCell(Out, Row[I]);
    }
    Out += '\n';
  }
  return Out;
}

uint64_t OutputBuffer::unorderedDigest() const {
  // Sum of per-row hashes: commutative, so row order does not matter.
  uint64_t Sum = 0;
  for (size_t R = 0; R != numRows(); ++R) {
    size_t N;
    const Cell *Row = row(R, &N);
    std::string Repr;
    for (size_t I = 0; I != N; ++I) {
      renderCell(Repr, Row[I]);
      Repr += '|';
    }
    Sum += hashBytes(Repr.data(), Repr.size());
  }
  return Sum ^ (numRows() * 0x9e3779b97f4a7c15ull);
}

bool OutputBuffer::equals(const OutputBuffer &Other) const {
  if (numRows() != Other.numRows() || Cells.size() != Other.Cells.size())
    return false;
  for (size_t I = 0; I != Cells.size(); ++I) {
    const Cell &A = Cells[I];
    const Cell &B = Other.Cells[I];
    if (A.Kind != B.Kind)
      return false;
    switch (A.Kind) {
    case CellKind::I64:
      if (A.I64V != B.I64V)
        return false;
      break;
    case CellKind::I128:
      if (A.I128V != B.I128V)
        return false;
      break;
    case CellKind::F64: {
      double Diff = A.F64V - B.F64V;
      double Mag = __builtin_fabs(A.F64V) + __builtin_fabs(B.F64V) + 1e-30;
      if (__builtin_fabs(Diff) / Mag > 1e-9)
        return false;
      break;
    }
    case CellKind::Str:
      if (!stringEq(A.StrV, B.StrV))
        return false;
      break;
    case CellKind::Null:
      break;
    }
  }
  return true;
}

// --- Symbol registry -----------------------------------------------------------

namespace {

struct SymbolEntry {
  const char *Name;
  void *Address;
};

const SymbolEntry SymbolTable[] = {
    {"rt_trap", reinterpret_cast<void *>(&rt_trap)},
    {"rt_str_eq", reinterpret_cast<void *>(&rt_str_eq)},
    {"rt_str_cmp", reinterpret_cast<void *>(&rt_str_cmp)},
    {"rt_str_contains", reinterpret_cast<void *>(&rt_str_contains)},
    {"rt_str_prefix", reinterpret_cast<void *>(&rt_str_prefix)},
    {"rt_str_hash", reinterpret_cast<void *>(&rt_str_hash)},
    {"rt_str_like", reinterpret_cast<void *>(&rt_str_like)},
    {"rt_str_concat", reinterpret_cast<void *>(&rt_str_concat)},
    {"rt_str_substr", reinterpret_cast<void *>(&rt_str_substr)},
    {"rt_ht_insert", reinterpret_cast<void *>(&rt_ht_insert)},
    {"rt_ht_insert_atomic", reinterpret_cast<void *>(&rt_ht_insert_atomic)},
    {"rt_ht_lookup", reinterpret_cast<void *>(&rt_ht_lookup)},
    {"rt_ht_next", reinterpret_cast<void *>(&rt_ht_next)},
    {"rt_ht_count", reinterpret_cast<void *>(&rt_ht_count)},
    {"rt_ht_entry", reinterpret_cast<void *>(&rt_ht_entry)},
    {"rt_arena_alloc", reinterpret_cast<void *>(&rt_arena_alloc)},
    {"rt_out_row", reinterpret_cast<void *>(&rt_out_row)},
    {"rt_out_i64", reinterpret_cast<void *>(&rt_out_i64)},
    {"rt_out_i128", reinterpret_cast<void *>(&rt_out_i128)},
    {"rt_out_f64bits", reinterpret_cast<void *>(&rt_out_f64bits)},
    {"rt_out_str", reinterpret_cast<void *>(&rt_out_str)},
    {"rt_date_year", reinterpret_cast<void *>(&rt_date_year)},
    {"rt_date_month", reinterpret_cast<void *>(&rt_date_month)},
    {"rt_sort", reinterpret_cast<void *>(&rt_sort)},
    {"rt_mul128_ovf", reinterpret_cast<void *>(&rt_mul128_ovf)},
    {"rt_sdiv128", reinterpret_cast<void *>(&rt_sdiv128)},
    {"rt_udiv128", reinterpret_cast<void *>(&rt_udiv128)},
    {"rt_srem128", reinterpret_cast<void *>(&rt_srem128)},
    {"rt_shl128", reinterpret_cast<void *>(&rt_shl128)},
    {"rt_lshr128", reinterpret_cast<void *>(&rt_lshr128)},
    {"rt_ashr128", reinterpret_cast<void *>(&rt_ashr128)},
    {"rt_crc32", reinterpret_cast<void *>(&rt_crc32)},
    {"rt_sadd32_ovf", reinterpret_cast<void *>(&rt_sadd32_ovf)},
    {"rt_ssub32_ovf", reinterpret_cast<void *>(&rt_ssub32_ovf)},
    {"rt_smul32_ovf", reinterpret_cast<void *>(&rt_smul32_ovf)},
    {"rt_sadd64_ovf", reinterpret_cast<void *>(&rt_sadd64_ovf)},
    {"rt_ssub64_ovf", reinterpret_cast<void *>(&rt_ssub64_ovf)},
    {"rt_smul64_ovf", reinterpret_cast<void *>(&rt_smul64_ovf)},
    {"rt_add128_ovf", reinterpret_cast<void *>(&rt_add128_ovf)},
    {"rt_sub128_ovf", reinterpret_cast<void *>(&rt_sub128_ovf)},
};

} // namespace

void *qcf::rt::runtimeSymbolAddress(const std::string &Name) {
  // Built once, read forever: warm-restart installs patch every recorded
  // call site through this lookup, so it must be O(1), not a table scan.
  static const std::unordered_map<std::string_view, void *> Index = [] {
    std::unordered_map<std::string_view, void *> M;
    for (const SymbolEntry &E : SymbolTable)
      M.emplace(E.Name, E.Address);
    return M;
  }();
  auto It = Index.find(Name);
  return It == Index.end() ? nullptr : It->second;
}

const char *qcf::rt::runtimeSymbolName(const void *Address) {
  for (const SymbolEntry &E : SymbolTable)
    if (Address == E.Address)
      return E.Name;
  return nullptr;
}

RuntimeSyms qcf::rt::declareRuntime(qir::Module &M) {
  auto Declare = [&](const char *Name, Type Ret,
                     std::vector<Type> Params) -> qir::SymbolId {
    void *Addr = runtimeSymbolAddress(Name);
    assert(Addr && "runtime symbol missing from table");
    return M.declareRuntime(Name, Ret, std::move(Params), Addr);
  };

  RuntimeSyms S;
  S.Trap = Declare("rt_trap", Type::Void, {Type::I64});
  S.StrEq = Declare("rt_str_eq", Type::I64, {Type::D128, Type::D128});
  S.StrCmp = Declare("rt_str_cmp", Type::I64, {Type::D128, Type::D128});
  S.StrContains =
      Declare("rt_str_contains", Type::I64, {Type::D128, Type::D128});
  S.StrPrefix = Declare("rt_str_prefix", Type::I64, {Type::D128, Type::D128});
  S.StrHash = Declare("rt_str_hash", Type::I64, {Type::D128});
  S.StrLike = Declare("rt_str_like", Type::I64, {Type::D128, Type::D128});
  S.StrConcat = Declare("rt_str_concat", Type::D128,
                        {Type::Ptr, Type::D128, Type::D128});
  S.StrSubstr = Declare("rt_str_substr", Type::D128,
                        {Type::Ptr, Type::D128, Type::I64, Type::I64});
  S.HtInsert = Declare("rt_ht_insert", Type::Ptr, {Type::Ptr, Type::I64});
  S.HtInsertAtomic =
      Declare("rt_ht_insert_atomic", Type::Ptr, {Type::Ptr, Type::I64});
  S.HtLookup = Declare("rt_ht_lookup", Type::Ptr, {Type::Ptr, Type::I64});
  S.HtNext = Declare("rt_ht_next", Type::Ptr, {Type::Ptr, Type::I64});
  S.HtCount = Declare("rt_ht_count", Type::I64, {Type::Ptr});
  S.HtEntry = Declare("rt_ht_entry", Type::Ptr, {Type::Ptr, Type::I64});
  S.ArenaAlloc = Declare("rt_arena_alloc", Type::Ptr, {Type::Ptr, Type::I64});
  S.OutRow = Declare("rt_out_row", Type::Void, {Type::Ptr});
  S.OutI64 = Declare("rt_out_i64", Type::Void, {Type::Ptr, Type::I64});
  S.OutI128 = Declare("rt_out_i128", Type::Void, {Type::Ptr, Type::I128});
  S.OutF64Bits =
      Declare("rt_out_f64bits", Type::Void, {Type::Ptr, Type::I64});
  S.OutStr = Declare("rt_out_str", Type::Void, {Type::Ptr, Type::D128});
  S.DateYear = Declare("rt_date_year", Type::I64, {Type::I64});
  S.DateMonth = Declare("rt_date_month", Type::I64, {Type::I64});
  S.Sort = Declare("rt_sort", Type::Void,
                   {Type::Ptr, Type::I64, Type::I64, Type::Ptr});
  S.Mul128Ovf = Declare("rt_mul128_ovf", Type::I128, {Type::I128, Type::I128});
  return S;
}
