//===- runtime/Runtime.h - Runtime functions callable from QIR --*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-linkage runtime surface that compiled queries call into: string
/// operations on by-value 16-byte strings, hash table build/probe, sorting
/// with a callback into generated code, arena allocation, output
/// materialization, date helpers, and the trap.
///
/// ABI contract (shared by every back-end and the interpreter FFI):
///  * all parameters are integer class — i64-sized slots, with d128/i128
///    occupying two consecutive slots; f64 values are bitcast to i64;
///  * at most six slots (the SysV GP argument registers);
///  * return is void, one GP register, or a two-register pair (d128/i128).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_RUNTIME_RUNTIME_H
#define QCF_RUNTIME_RUNTIME_H

#include "qir/Function.h"
#include "runtime/HashTable.h"
#include "runtime/StringVal.h"
#include "runtime/Trap.h"
#include "support/Arena.h"
#include "support/Int128.h"
#include <string>
#include <vector>

namespace qcf::rt {

/// A materialized query result: rows of typed cells. The final pipeline of
/// every query appends its output here through rt_out_* calls, which gives
/// the differential tests a canonical value to compare across back-ends.
class OutputBuffer {
public:
  enum class CellKind : uint8_t { I64, I128, F64, Str, Null };

  struct Cell {
    CellKind Kind;
    union {
      int64_t I64V;
      double F64V;
      StringVal StrV;
    };
    Int128 I128V; // kept outside the union for alignment simplicity
  };

  /// Starts a new row.
  void beginRow() { RowStarts.push_back(Cells.size()); }

  void appendI64(int64_t V) {
    Cell C{};
    C.Kind = CellKind::I64;
    C.I64V = V;
    Cells.push_back(C);
  }
  void appendI128(Int128 V) {
    Cell C{};
    C.Kind = CellKind::I128;
    C.I128V = V;
    Cells.push_back(C);
  }
  void appendF64(double V) {
    Cell C{};
    C.Kind = CellKind::F64;
    C.F64V = V;
    Cells.push_back(C);
  }
  void appendNull() {
    Cell C{};
    C.Kind = CellKind::Null;
    Cells.push_back(C);
  }
  /// Copies the string bytes into the buffer's own arena.
  void appendStr(StringVal S);

  size_t numRows() const { return RowStarts.size(); }
  size_t numCells() const { return Cells.size(); }

  /// Cells of row \p Row.
  const Cell *row(size_t Row, size_t *NumCells) const;

  /// Renders the buffer as text (one row per line, pipe-separated).
  std::string toText() const;

  /// Row-order-insensitive digest for cross-back-end result comparison.
  uint64_t unorderedDigest() const;

  /// Exact (ordered) comparison.
  bool equals(const OutputBuffer &Other) const;

  void clear() {
    Cells.clear();
    RowStarts.clear();
    Strings.reset();
  }

private:
  std::vector<Cell> Cells;
  std::vector<size_t> RowStarts;
  Arena Strings;
};

/// Looks up a runtime function's host address by name (nullptr if unknown).
/// Back-ends use this to resolve external symbols when linking.
void *runtimeSymbolAddress(const std::string &Name);

/// Reverse lookup: the runtime symbol name of \p Address, or nullptr when
/// the address is not a registered rt_* entry point. The persistent code
/// cache uses this to turn baked-in absolute call targets back into named
/// relocation records, so a blob loaded in a later process (different
/// ASLR layout) can be re-patched against the live symbol table.
const char *runtimeSymbolName(const void *Address);

/// The runtime symbols a QIR module can call, declared into \p M.
/// Codegen keeps this struct around instead of re-looking-up names.
struct RuntimeSyms {
  qir::SymbolId Trap;
  qir::SymbolId StrEq, StrCmp, StrContains, StrPrefix, StrHash, StrLike;
  qir::SymbolId StrConcat, StrSubstr;
  qir::SymbolId HtInsert, HtInsertAtomic, HtLookup, HtNext, HtCount, HtEntry;
  qir::SymbolId ArenaAlloc;
  qir::SymbolId OutRow, OutI64, OutI128, OutF64Bits, OutStr;
  qir::SymbolId DateYear, DateMonth;
  qir::SymbolId Sort;
  qir::SymbolId Mul128Ovf;
};

/// Declares every runtime symbol in \p M (with resolved addresses) and
/// returns their ids.
RuntimeSyms declareRuntime(qir::Module &M);

/// Days-since-epoch (1970-01-01) to calendar helpers.
int64_t dateYear(int64_t Days);
int64_t dateMonth(int64_t Days);
/// Builds days-since-epoch from a calendar date.
int64_t dateFromYmd(int Year, unsigned Month, unsigned Day);

} // namespace qcf::rt

// --- C-linkage runtime surface (callable from generated code) -------------

extern "C" {

// Strings. StringVal is passed/returned by value (two GP registers).
uint64_t rt_str_eq(qcf::rt::StringVal A, qcf::rt::StringVal B);
int64_t rt_str_cmp(qcf::rt::StringVal A, qcf::rt::StringVal B);
uint64_t rt_str_contains(qcf::rt::StringVal Hay, qcf::rt::StringVal Needle);
uint64_t rt_str_prefix(qcf::rt::StringVal S, qcf::rt::StringVal Prefix);
uint64_t rt_str_hash(qcf::rt::StringVal S);
/// SQL LIKE with % and _ wildcards.
uint64_t rt_str_like(qcf::rt::StringVal S, qcf::rt::StringVal Pattern);
qcf::rt::StringVal rt_str_concat(void *Arena, qcf::rt::StringVal A,
                                 qcf::rt::StringVal B);
qcf::rt::StringVal rt_str_substr(void *Arena, qcf::rt::StringVal S,
                                 uint64_t Start, uint64_t Len);

// Hash tables.
void *rt_ht_insert(void *Ht, uint64_t Hash);
void *rt_ht_insert_atomic(void *Ht, uint64_t Hash);
void *rt_ht_lookup(void *Ht, uint64_t Hash);
void *rt_ht_next(void *Entry, uint64_t Hash);
uint64_t rt_ht_count(void *Ht);
void *rt_ht_entry(void *Ht, uint64_t Index);

// Memory.
void *rt_arena_alloc(void *Arena, uint64_t Bytes);

// Output materialization.
void rt_out_row(void *Out);
void rt_out_i64(void *Out, int64_t V);
void rt_out_i128(void *Out, __int128 V);
void rt_out_f64bits(void *Out, uint64_t Bits);
void rt_out_str(void *Out, qcf::rt::StringVal S);

// Dates (days since epoch).
int64_t rt_date_year(int64_t Days);
int64_t rt_date_month(int64_t Days);

// Sorting; Cmp is a generated function i64(ptr, ptr) returning <0/0/>0.
void rt_sort(void *Base, uint64_t Count, uint64_t ElemSize, void *Cmp);

// Checked 128-bit multiplication helper (traps on overflow). Used by
// back-ends that call out instead of expanding inline (§V-A1, §VI-A1).
__int128 rt_mul128_ovf(__int128 A, __int128 B);

// 128-bit "libcalls". Divisions trap on zero divisors / overflow; shifts
// mask the amount to 0..127. These play the role of compiler-rt's
// __divti3/__ashlti3 family: every native back-end lowers the QIR i128
// division and shift operations to calls.
__int128 rt_sdiv128(__int128 A, __int128 B);
__int128 rt_udiv128(__int128 A, __int128 B);
__int128 rt_srem128(__int128 A, __int128 B);
__int128 rt_shl128(__int128 A, uint64_t Amount);
__int128 rt_lshr128(__int128 A, uint64_t Amount);
__int128 rt_ashr128(__int128 A, uint64_t Amount);

// Helper-call implementations of operations the Craneline back-end lacks
// native CIR instructions for unless its extensions are enabled (§VI-A1,
// Table II). 32-bit variants take/return canonically zero-extended lanes.
uint64_t rt_crc32(uint64_t Seed, uint64_t Value);
uint64_t rt_sadd32_ovf(uint64_t A, uint64_t B);
uint64_t rt_ssub32_ovf(uint64_t A, uint64_t B);
uint64_t rt_smul32_ovf(uint64_t A, uint64_t B);
uint64_t rt_sadd64_ovf(uint64_t A, uint64_t B);
uint64_t rt_ssub64_ovf(uint64_t A, uint64_t B);
uint64_t rt_smul64_ovf(uint64_t A, uint64_t B);
__int128 rt_add128_ovf(__int128 A, __int128 B);
__int128 rt_sub128_ovf(__int128 A, __int128 B);

} // extern "C"

#endif // QCF_RUNTIME_RUNTIME_H
