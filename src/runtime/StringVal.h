//===- runtime/StringVal.h - Umbra-style 16-byte string values -*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 16-byte string value with small-buffer optimization the paper
/// describes (§III-A): the first four bytes hold the length; strings of at
/// most 12 bytes are stored entirely inline; longer strings keep their
/// 4-byte prefix in bytes 4-7 and a pointer to the data in bytes 8-15.
/// These values are passed *by value* to and from runtime functions — in
/// the SysV ABI that is two general-purpose registers, which is exactly the
/// calling-convention pressure the paper identifies as a FastISel fallback
/// source in LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_RUNTIME_STRINGVAL_H
#define QCF_RUNTIME_STRINGVAL_H

#include "support/Hash.h"
#include <cstdint>
#include <cstring>
#include <string>

namespace qcf::rt {

class Arena16; // see below

/// 16-byte by-value string. Trivially copyable; classified INTEGER,INTEGER
/// by the SysV x86-64 ABI, so it travels in two GP registers.
struct StringVal {
  static constexpr uint32_t InlineCap = 12;

  uint32_t Len;    ///< Bytes 0-3: length.
  char Prefix[4];  ///< Bytes 4-7: first 4 chars (inline or prefix).
  union {
    char Rest[8];     ///< Bytes 8-15: inline remainder (short strings).
    const char *Data; ///< Bytes 8-15: pointer (long strings).
  };

  bool isInline() const { return Len <= InlineCap; }

  const char *data() const {
    return isInline() ? Prefix : Data;
  }

  /// First min(Len,4) characters, for cheap early-out comparisons.
  uint32_t prefixWord() const {
    uint32_t W;
    std::memcpy(&W, Prefix, 4);
    return W;
  }

  std::string str() const { return std::string(data(), Len); }

  /// Low/high 64-bit lanes for passing through QIR d128 values.
  uint64_t lo() const {
    uint64_t V;
    std::memcpy(&V, this, 8);
    return V;
  }
  uint64_t hi() const {
    uint64_t V;
    std::memcpy(&V, reinterpret_cast<const char *>(this) + 8, 8);
    return V;
  }

  static StringVal fromLanes(uint64_t Lo, uint64_t Hi) {
    StringVal S;
    std::memcpy(&S, &Lo, 8);
    std::memcpy(reinterpret_cast<char *>(&S) + 8, &Hi, 8);
    return S;
  }

  /// Builds a StringVal referencing \p Data (which must outlive the value
  /// if longer than 12 bytes).
  static StringVal makeRef(const char *Bytes, uint32_t Len) {
    StringVal S;
    S.Len = Len;
    if (Len <= InlineCap) {
      std::memset(S.Prefix, 0, 4);
      std::memset(S.Rest, 0, 8);
      std::memcpy(S.Prefix, Bytes, Len); // spills into Rest when Len > 4
    } else {
      std::memcpy(S.Prefix, Bytes, 4);
      S.Data = Bytes;
    }
    return S;
  }
};

static_assert(sizeof(StringVal) == 16, "StringVal must be 16 bytes");

/// Full comparison helpers (runtime-call implementations live in
/// StringOps.cpp and are exported with C linkage for compiled code).
inline bool stringEq(const StringVal &A, const StringVal &B) {
  if (A.Len != B.Len || A.prefixWord() != B.prefixWord())
    return false;
  return std::memcmp(A.data(), B.data(), A.Len) == 0;
}

inline int stringCmp(const StringVal &A, const StringVal &B) {
  uint32_t MinLen = A.Len < B.Len ? A.Len : B.Len;
  int C = std::memcmp(A.data(), B.data(), MinLen);
  if (C != 0)
    return C;
  return A.Len < B.Len ? -1 : (A.Len > B.Len ? 1 : 0);
}

inline uint64_t stringHash(const StringVal &S) {
  return qcf::hashBytes(S.data(), S.Len);
}

} // namespace qcf::rt

#endif // QCF_RUNTIME_STRINGVAL_H
