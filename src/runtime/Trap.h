//===- runtime/Trap.h - Overflow/error traps for compiled code --*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trap channel for compiled queries. Umbra uses C++ exceptions for
/// error handling and registers DWARF unwind information for all compiled
/// functions (§III-A). QCF substitutes a setjmp/longjmp channel: generated
/// code calls rt_trap on overflow or division errors and control returns to
/// the nearest TrapGuard. Back-ends still *emit* unwind side tables so the
/// compile-time cost of producing that data is modeled; the tables are just
/// not consumed by a C++ unwinder. Generated frames hold no destructors, so
/// skipping them with longjmp is safe.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_RUNTIME_TRAP_H
#define QCF_RUNTIME_TRAP_H

#include <csetjmp>
#include <cstdint>

namespace qcf::rt {

/// Trap reason codes passed to rt_trap.
enum class TrapCode : uint64_t {
  None = 0,
  Overflow = 1,
  DivByZero = 2,
};

const char *trapCodeName(TrapCode Code);

namespace detail {
struct TrapFrame {
  std::jmp_buf Buf;
  TrapFrame *Prev;
};
extern thread_local TrapFrame *CurrentTrapFrame;
} // namespace detail

/// Runs \p Fn with a trap guard installed. \returns TrapCode::None if \p Fn
/// completed, or the code of the trap that aborted it.
template <typename FnT> TrapCode runWithTrapGuard(FnT &&Fn) {
  detail::TrapFrame Frame;
  Frame.Prev = detail::CurrentTrapFrame;
  detail::CurrentTrapFrame = &Frame;
  TrapCode Result = TrapCode::None;
  int Jumped = setjmp(Frame.Buf);
  if (Jumped == 0)
    Fn();
  else
    Result = static_cast<TrapCode>(Jumped);
  detail::CurrentTrapFrame = Frame.Prev;
  return Result;
}

} // namespace qcf::rt

extern "C" {
/// Aborts the current query with \p Code. Called by generated code on
/// overflow and by runtime helpers on arithmetic errors. Never returns.
[[noreturn]] void rt_trap(uint64_t Code);
}

#endif // QCF_RUNTIME_TRAP_H
