//===- serve/Admission.cpp - Bounded admission control --------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "serve/Admission.h"
#include "support/TimeTrace.h"
#include <algorithm>
#include <chrono>

namespace qcf::serve {

const char *admitName(Admit A) {
  switch (A) {
  case Admit::Ok:
    return "ok";
  case Admit::QueueFull:
    return "queue-full";
  case Admit::Shed:
    return "shed";
  case Admit::SessionQuota:
    return "session-quota";
  case Admit::CompileBytesQuota:
    return "compile-bytes-quota";
  case Admit::CompileQueueQuota:
    return "compile-queue-quota";
  case Admit::UnknownTenant:
    return "unknown-tenant";
  case Admit::UnknownSession:
    return "unknown-session";
  case Admit::SessionBusy:
    return "session-busy";
  case Admit::ServerStopped:
    return "server-stopped";
  case Admit::Cancelled:
    return "cancelled";
  }
  return "?";
}

namespace {
obs::MetricsRegistry &resolveRegistry(obs::MetricsRegistry *Reg) {
  return Reg ? *Reg : obs::MetricsRegistry::global();
}
} // namespace

AdmissionGate::AdmissionGate(const Config &Cfg, obs::MetricsRegistry *Reg,
                             const std::string &Prefix)
    : Cfg(Cfg), Admitted(resolveRegistry(Reg).counter(Prefix + "admitted")),
      RejectedFull(resolveRegistry(Reg).counter(Prefix + "rejected.full")),
      RejectedShed(resolveRegistry(Reg).counter(Prefix + "rejected.shed")),
      CancelledC(resolveRegistry(Reg).counter(Prefix + "cancelled")),
      RunningG(resolveRegistry(Reg).gauge(Prefix + "running")),
      WaitingG(resolveRegistry(Reg).gauge(Prefix + "waiting")),
      WaitNs(resolveRegistry(Reg).histogram(Prefix + "wait_ns")) {}

uint64_t AdmissionGate::retryHintNs() const {
  // One EWMA slot-hold per queued-ahead request, divided over the slots
  // that drain them; floor of 1ms so clients never spin. Before the
  // first leave(HoldNs) the EWMA has no samples, so fall back to the
  // configured cold-start hold estimate instead of the spin floor.
  uint64_t Queued = High.size() + Low.size() + 1;
  uint64_t Hold = EwmaHoldNs ? EwmaHoldNs
                             : std::max<uint64_t>(Cfg.ColdHoldNs, 1'000'000);
  return std::max<uint64_t>(Queued * Hold / std::max(1u, Cfg.Slots),
                            1'000'000);
}

AdmissionGate::Decision AdmissionGate::enter(bool LowPriority,
                                             const qcf::CancelToken *Ct) {
  uint64_t StartNs = nowNs();
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Closed)
    return {Admit::ServerStopped, 0};

  // Fast path: a free slot and no one queued ahead.
  if (Running < Cfg.Slots && High.empty() && (LowPriority ? Low.empty() : true)) {
    ++Running;
    RunningG.set(Running);
    Admitted.inc();
    WaitNs.observe(nowNs() - StartNs);
    return {Admit::Ok, 0};
  }

  if (High.size() + Low.size() >= Cfg.MaxWaiters) {
    // Wait queue full. A normal-priority arrival may shed the newest
    // low-priority waiter to make room; otherwise the arrival itself is
    // rejected — never block the caller on an unbounded queue.
    if (Cfg.ShedWaiters && !LowPriority && !Low.empty()) {
      std::shared_ptr<Waiter> Victim = Low.back();
      Low.pop_back();
      Victim->Decided = true;
      Victim->Outcome = Admit::Shed;
      RejectedShed.inc();
      Cv.notify_all();
    } else {
      RejectedFull.inc();
      return {Admit::QueueFull, retryHintNs()};
    }
  }

  auto W = std::make_shared<Waiter>();
  W->Low = LowPriority;
  (LowPriority ? Low : High).push_back(W);
  WaitingG.set(int64_t(High.size() + Low.size()));

  // Wait in ~2ms ticks so a fired CancelToken is observed promptly even
  // though promoters only signal on leave()/close().
  while (!W->Decided) {
    if (Ct && Ct->stopped()) {
      auto &Q = W->Low ? Low : High;
      Q.erase(std::find(Q.begin(), Q.end(), W));
      WaitingG.set(int64_t(High.size() + Low.size()));
      CancelledC.inc();
      return {Admit::Cancelled, 0};
    }
    Cv.wait_for(Lock, std::chrono::milliseconds(2));
  }
  WaitingG.set(int64_t(High.size() + Low.size()));
  if (W->Outcome == Admit::Ok) {
    // Promoter already took the slot on our behalf (Running includes us).
    Admitted.inc();
    WaitNs.observe(nowNs() - StartNs);
    return {Admit::Ok, 0};
  }
  return {W->Outcome, W->Outcome == Admit::Shed ? retryHintNs() : 0};
}

void AdmissionGate::leave(uint64_t HoldNs) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Running)
    --Running;
  if (HoldNs)
    EwmaHoldNs = EwmaHoldNs ? (EwmaHoldNs * 7 + HoldNs) / 8 : HoldNs;
  // Promote high priority first, FIFO within a class; the promoted
  // waiter's slot is claimed here so a racing enter() cannot steal it.
  if (!Closed && Running < Cfg.Slots) {
    std::deque<std::shared_ptr<Waiter>> &Q = !High.empty() ? High : Low;
    if (!Q.empty()) {
      std::shared_ptr<Waiter> W = Q.front();
      Q.pop_front();
      W->Decided = true;
      W->Outcome = Admit::Ok;
      ++Running;
      Cv.notify_all();
    }
  }
  RunningG.set(Running);
}

void AdmissionGate::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Closed = true;
  for (auto *Q : {&High, &Low}) {
    for (const std::shared_ptr<Waiter> &W : *Q) {
      W->Decided = true;
      W->Outcome = Admit::ServerStopped;
    }
    Q->clear();
  }
  WaitingG.set(0);
  Cv.notify_all();
}

unsigned AdmissionGate::running() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Running;
}

size_t AdmissionGate::waiting() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return High.size() + Low.size();
}

} // namespace qcf::serve
