//===- serve/Admission.h - Bounded admission control ------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Admission control for the serving layer: a fixed number of execution
/// slots fronted by a bounded two-priority wait queue. The stage chain is
/// parse -> compile -> execute; this gate bounds the *entry* to that
/// chain, the CompileService's bounded queue bounds the compile stage,
/// and both reject with a typed outcome plus a retry-after hint instead
/// of blocking unboundedly — backpressure propagates to the client, which
/// is the only place load can actually be shed without losing work.
///
/// Overload policy: when the wait queue is full, a high-priority arrival
/// sheds the *newest low-priority waiter* (load-shed lowest-priority
/// first, LIFO within that class so the longest-waiting speculation keeps
/// its place); when nothing is sheddable the arrival itself is rejected.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SERVE_ADMISSION_H
#define QCF_SERVE_ADMISSION_H

#include "obs/Metrics.h"
#include "support/Cancel.h"
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

namespace qcf::serve {

/// Disposition of a serving-layer request. Every rejection is typed so
/// clients (and the soak harness) can tell quota pressure from overload
/// from lifecycle races.
enum class Admit : uint8_t {
  Ok,
  QueueFull,         ///< Admission wait queue full, nothing sheddable.
  Shed,              ///< Was waiting; evicted for a higher-priority entry.
  SessionQuota,      ///< Tenant's MaxSessions reached.
  CompileBytesQuota, ///< Tenant's MaxCompileBytes reached.
  CompileQueueQuota, ///< Tenant's MaxQueuedCompiles reached.
  UnknownTenant,
  UnknownSession, ///< No such session id (or it was closed/evicted).
  SessionBusy,    ///< Session already has a query in flight.
  ServerStopped,
  Cancelled, ///< The session's token fired while waiting for admission.
};

/// Stable name for logs, the wire protocol, and test assertions.
const char *admitName(Admit A);

/// Counting gate over query execution; see file comment.
///
/// Thread-safe. Metrics land under \p Prefix in \p Reg:
///   admitted, rejected.full, rejected.shed, cancelled (counters);
///   running, waiting (gauges); wait_ns (histogram of admission latency).
class AdmissionGate {
public:
  struct Config {
    unsigned Slots = 4;       ///< Concurrently admitted requests.
    unsigned MaxWaiters = 64; ///< Bounded wait queue (0 = reject when full).
    bool ShedWaiters = true;  ///< High-priority entries may shed low ones.
    /// Assumed slot-hold time for retry-after hints before any query has
    /// completed (the EWMA has no samples yet). Cold-start rejections are
    /// exactly the compile-dominated ones, so this defaults to a
    /// cold-compile-sized 10ms rather than the 1ms spin floor — a
    /// too-small hint turns a restart stampede into a retry storm.
    uint64_t ColdHoldNs = 10'000'000;
  };

  struct Decision {
    Admit Outcome = Admit::Ok;
    /// Backpressure hint on rejection: EWMA slot-hold time scaled by the
    /// queue the retry would face.
    uint64_t RetryAfterNs = 0;
  };

  explicit AdmissionGate(const Config &Cfg, obs::MetricsRegistry *Reg = nullptr,
                         const std::string &Prefix = "serve.admission.");

  AdmissionGate(const AdmissionGate &) = delete;
  AdmissionGate &operator=(const AdmissionGate &) = delete;

  /// Acquires a slot, waiting in the bounded queue if none is free.
  /// \p LowPriority requests queue behind normal ones and are shed
  /// first. \p Ct, when set, is polled during the wait: a fired token
  /// abandons the wait with Admit::Cancelled. Never blocks when the
  /// queue is full — rejects with QueueFull.
  Decision enter(bool LowPriority = false, const qcf::CancelToken *Ct = nullptr);

  /// Releases a slot and promotes the next waiter (high priority first,
  /// FIFO within a class). \p HoldNs, when nonzero, feeds the EWMA
  /// behind retry-after hints.
  void leave(uint64_t HoldNs = 0);

  /// Rejects all current and future entries with ServerStopped.
  void close();

  unsigned running() const;
  size_t waiting() const;

private:
  struct Waiter {
    bool Low;
    /// Pending until a promoter/shedder/close writes a terminal outcome.
    bool Decided = false;
    Admit Outcome = Admit::Ok;
  };

  uint64_t retryHintNs() const; ///< Callers hold Mutex.

  const Config Cfg;
  mutable std::mutex Mutex;
  std::condition_variable Cv;
  bool Closed = false;
  unsigned Running = 0;
  /// FIFO per class; shedding pops Low.back() (newest low-priority).
  std::deque<std::shared_ptr<Waiter>> High, Low;
  uint64_t EwmaHoldNs = 0; ///< Guarded by Mutex.

  obs::Counter &Admitted;
  obs::Counter &RejectedFull;
  obs::Counter &RejectedShed;
  obs::Counter &CancelledC;
  obs::Gauge &RunningG;
  obs::Gauge &WaitingG;
  obs::Histogram &WaitNs;
};

} // namespace qcf::serve

#endif // QCF_SERVE_ADMISSION_H
