//===- serve/Server.cpp - Production query-serving front end --------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "backend/Registry.h"
#include "db/Codegen.h"
#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace qcf::serve {

namespace {

obs::MetricsRegistry &resolveRegistry(obs::MetricsRegistry *Reg) {
  return Reg ? *Reg : obs::MetricsRegistry::global();
}

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return std::strtoull(V, nullptr, 10);
}

} // namespace

ServerConfig ServerConfig::fromEnv() {
  ServerConfig C;
  if (const char *BE = std::getenv("QCF_SERVE_BACKEND"))
    if (*BE)
      C.BackendName = BE;
  C.CompileWorkers =
      unsigned(envU64("QCF_SERVE_COMPILE_WORKERS", C.CompileWorkers));
  C.CompileQueueCapacity =
      size_t(envU64("QCF_SERVE_QUEUE_CAP", C.CompileQueueCapacity));
  C.CacheCapacity = size_t(envU64("QCF_SERVE_CACHE_CAP", C.CacheCapacity));
  C.Admission.Slots = unsigned(envU64("QCF_SERVE_SLOTS", C.Admission.Slots));
  C.Admission.MaxWaiters =
      unsigned(envU64("QCF_SERVE_MAX_WAITERS", C.Admission.MaxWaiters));
  C.IdleTimeoutNs =
      envU64("QCF_SERVE_IDLE_TIMEOUT_MS", C.IdleTimeoutNs / 1'000'000) *
      1'000'000;
  C.SweepIntervalNs =
      envU64("QCF_SERVE_SWEEP_MS", C.SweepIntervalNs / 1'000'000) * 1'000'000;
  C.DefaultDeadlineNs = envU64("QCF_SERVE_DEADLINE_MS", 0) * 1'000'000;
  C.ExecThreads = unsigned(envU64("QCF_SERVE_EXEC_THREADS", C.ExecThreads));
  return C;
}

Server::TenantState::TenantState(const std::string &Name, const TenantQuota &Q,
                                 obs::MetricsRegistry &Reg)
    : Quota(Q), SessionsG(Reg.gauge("serve.tenant." + Name + ".sessions")),
      BytesG(Reg.gauge("serve.tenant." + Name + ".compile_bytes")),
      RejSessions(Reg.counter("serve.tenant." + Name + ".rejected.sessions")),
      RejBytes(Reg.counter("serve.tenant." + Name + ".rejected.compile_bytes")),
      RejCompileQueue(
          Reg.counter("serve.tenant." + Name + ".rejected.compile_queue")) {}

bool Server::TenantState::tryReserveBytes(uint64_t N) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Quota.MaxCompileBytes && CompileBytes + N > Quota.MaxCompileBytes) {
    RejBytes.inc();
    return false;
  }
  CompileBytes += N;
  BytesG.set(int64_t(CompileBytes));
  return true;
}

void Server::TenantState::adjustBytes(uint64_t From, uint64_t To) {
  std::lock_guard<std::mutex> Lock(Mutex);
  CompileBytes = CompileBytes >= From ? CompileBytes - From : 0;
  CompileBytes += To;
  BytesG.set(int64_t(CompileBytes));
}

Server::Server(const ServerConfig &Cfg, const db::Catalog &Cat)
    : Cfg(Cfg), Cat(Cat), Reg(resolveRegistry(Cfg.Reg)),
      Disk(backend::DiskCodeCache::fromEnv(&Reg)),
      Svc(std::make_unique<backend::CompileService>(
          Cfg.CompileWorkers, Cfg.CompileQueueCapacity, &Reg)),
      Cache(std::make_unique<backend::CachingBackend>(
          backend::createBackend(Cfg.BackendName), Cfg.CacheCapacity,
          Svc.get(), &Reg, Disk.get())),
      Gate(Cfg.Admission, &Reg),
      SessionsOpenG(Reg.gauge("serve.sessions.open")),
      SessionsOpened(Reg.counter("serve.sessions.opened")),
      SessionsClosed(Reg.counter("serve.sessions.closed")),
      SessionsEvicted(Reg.counter("serve.sessions.evicted")),
      QueriesOk(Reg.counter("serve.queries.ok")),
      QueriesCancelled(Reg.counter("serve.queries.cancelled")),
      QueriesTrapped(Reg.counter("serve.queries.trapped")),
      QueriesRejected(Reg.counter("serve.queries.rejected")),
      QueryNs(Reg.histogram("serve.query_ns")) {
  if (Cfg.StartSweeper)
    Sweeper = std::thread([this] { sweeperLoop(); });
}

Server::~Server() { shutdown(); }

void Server::sweeperLoop() {
  std::unique_lock<std::mutex> Lock(SweepMutex);
  while (!Stopping.load(std::memory_order_acquire)) {
    SweepCv.wait_for(Lock, std::chrono::nanoseconds(Cfg.SweepIntervalNs));
    if (Stopping.load(std::memory_order_acquire))
      break;
    Lock.unlock();
    evictIdleSessions();
    Lock.lock();
  }
}

void Server::registerTenant(const std::string &Name, const TenantQuota &Quota) {
  {
    std::lock_guard<std::mutex> Lock(TenantsMutex);
    auto It = Tenants.find(Name);
    if (It == Tenants.end())
      Tenants.emplace(Name,
                      std::make_unique<TenantState>(Name, Quota, Reg));
    else
      It->second->Quota = Quota;
  }
  Svc->setKeyQueueShare(Name, Quota.MaxQueuedCompiles);
}

Server::TenantState *Server::findTenant(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  auto It = Tenants.find(Name);
  return It == Tenants.end() ? nullptr : It->second.get();
}

std::shared_ptr<Session> Server::findSession(uint64_t Sid) const {
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  auto It = Sessions.find(Sid);
  return It == Sessions.end() ? nullptr : It->second;
}

OpenOutcome Server::openSession(const std::string &Tenant) {
  if (Stopping.load(std::memory_order_acquire))
    return {Admit::ServerStopped, 0, 0};
  TenantState *T = findTenant(Tenant);
  if (!T)
    return {Admit::UnknownTenant, 0, 0};
  {
    std::lock_guard<std::mutex> Lock(T->Mutex);
    if (T->Quota.MaxSessions && T->Sessions >= T->Quota.MaxSessions) {
      T->RejSessions.inc();
      // A slot frees when some session closes or idles out; the timeout
      // is the only bound the server itself guarantees.
      return {Admit::SessionQuota, 0,
              std::max<uint64_t>(Cfg.IdleTimeoutNs / 8, 1'000'000)};
    }
    ++T->Sessions;
    T->SessionsG.set(int64_t(T->Sessions));
  }
  uint64_t Sid = NextSid.fetch_add(1, std::memory_order_relaxed);
  auto S = std::make_shared<Session>(Sid, Tenant, nowNs());
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Sessions.emplace(Sid, std::move(S));
  }
  SessionsOpenG.add(1);
  SessionsOpened.inc();
  return {Admit::Ok, Sid, 0};
}

void Server::retireSession(Session &S, bool Evicted) {
  if (TenantState *T = findTenant(S.Tenant)) {
    std::lock_guard<std::mutex> Lock(T->Mutex);
    if (T->Sessions)
      --T->Sessions;
    T->SessionsG.set(int64_t(T->Sessions));
  }
  SessionsOpenG.add(-1);
  (Evicted ? SessionsEvicted : SessionsClosed).inc();
}

Admit Server::closeSession(uint64_t Sid) {
  std::shared_ptr<Session> S;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    auto It = Sessions.find(Sid);
    if (It == Sessions.end())
      return Admit::UnknownSession;
    S = std::move(It->second);
    Sessions.erase(It);
  }
  // Order matters for the epilogue handshake: CloseRequested must be
  // visible before the state CAS, so whichever side transitions
  // Idle -> Closed does so exactly once (see execute()'s epilogue).
  S->CloseRequested.store(true, std::memory_order_release);
  Session::State E = Session::State::Idle;
  if (S->St.compare_exchange_strong(E, Session::State::Closed)) {
    retireSession(*S, /*Evicted=*/false);
  } else if (E == Session::State::Active) {
    // The in-flight query unwinds at its next morsel boundary or wait
    // tick and the executing thread completes the close.
    S->Ctl.cancel();
  }
  return Admit::Ok;
}

size_t Server::evictIdleSessions(uint64_t NowNs) {
  uint64_t Now = NowNs ? NowNs : nowNs();
  std::vector<std::shared_ptr<Session>> Victims;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    for (auto It = Sessions.begin(); It != Sessions.end();) {
      Session &S = *It->second;
      uint64_t Last = S.LastActiveNs.load(std::memory_order_acquire);
      Session::State E = Session::State::Idle;
      if (Now >= Last && Now - Last > Cfg.IdleTimeoutNs &&
          S.St.compare_exchange_strong(E, Session::State::Closed)) {
        Victims.push_back(std::move(It->second));
        It = Sessions.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (const std::shared_ptr<Session> &S : Victims)
    retireSession(*S, /*Evicted=*/true);
  return Victims.size();
}

QueryOutcome Server::execute(uint64_t Sid, const db::Query &Q,
                             rt::OutputBuffer *Out, uint64_t DeadlineNs) {
  QueryOutcome R;
  uint64_t T0 = nowNs();
  auto reject = [&](Admit A, uint64_t RetryNs) {
    R.Outcome = A;
    R.RetryAfterNs = RetryNs;
    QueriesRejected.inc();
    return R;
  };

  if (Stopping.load(std::memory_order_acquire))
    return reject(Admit::ServerStopped, 0);
  std::shared_ptr<Session> S = findSession(Sid);
  if (!S)
    return reject(Admit::UnknownSession, 0);

  // Claim the session: one query in flight per session, enforced by the
  // Idle -> Active CAS (loses against a concurrent close/evict too).
  Session::State E = Session::State::Idle;
  if (!S->St.compare_exchange_strong(E, Session::State::Active))
    return reject(E == Session::State::Active ? Admit::SessionBusy
                                              : Admit::UnknownSession,
                  0);

  TenantState *T = findTenant(S->Tenant);
  // Epilogue for every path below once the session is Active.
  auto finish = [&] {
    S->LastActiveNs.store(nowNs(), std::memory_order_release);
    S->Queries.fetch_add(1, std::memory_order_relaxed);
    S->St.store(Session::State::Idle, std::memory_order_release);
    // closeSession() may have set CloseRequested between our load and
    // the Idle store; whichever side wins this CAS retires the session.
    if (S->CloseRequested.load(std::memory_order_acquire)) {
      Session::State E2 = Session::State::Idle;
      if (S->St.compare_exchange_strong(E2, Session::State::Closed))
        retireSession(*S, /*Evicted=*/false);
    }
    R.TotalNs = nowNs() - T0;
    QueryNs.observe(R.TotalNs);
  };

  // Quota point 2: compile-queue share, checked before any work.
  if (T && T->Quota.MaxQueuedCompiles &&
      Svc->keyInFlight(S->Tenant) >= T->Quota.MaxQueuedCompiles) {
    T->RejCompileQueue.inc();
    reject(Admit::CompileQueueQuota, 2'000'000);
    finish();
    return R;
  }

  // Quota point 3: reserve the compile-byte estimate; settled to the
  // measured footprint after the compile.
  uint64_t Reserved = 0;
  if (T) {
    if (!T->tryReserveBytes(Cfg.CompileBytesEstimate)) {
      reject(Admit::CompileBytesQuota, 2'000'000);
      finish();
      return R;
    }
    Reserved = Cfg.CompileBytesEstimate;
  }

  // Arm the token for this query before entering the gate, so deadlines
  // cover admission wait too — a query that cannot start in time should
  // not start at all.
  S->Ctl.reset();
  uint64_t Deadline = DeadlineNs ? DeadlineNs : Cfg.DefaultDeadlineNs;
  if (Deadline)
    S->Ctl.setDeadlineNs(nowNs() + Deadline);

  // Quota point 4: bounded admission.
  bool LowPriority = T && T->Quota.Background;
  AdmissionGate::Decision D = Gate.enter(LowPriority, &S->Ctl);
  R.AdmitWaitNs = nowNs() - T0;
  if (D.Outcome != Admit::Ok) {
    if (T)
      T->adjustBytes(Reserved, 0);
    if (D.Outcome == Admit::Cancelled) {
      R.Cancelled = true;
      QueriesCancelled.inc();
      R.Outcome = Admit::Cancelled;
    } else {
      reject(D.Outcome, D.RetryAfterNs);
    }
    finish();
    return R;
  }

  uint64_t RunStartNs = nowNs();
  {
    db::CompiledPlan Plan = db::compileQuery(Q, Cat);

    qcf::MemContext CompileMem;
    db::ExecOptions EO;
    EO.NumThreads = Cfg.ExecThreads;
    EO.Control = &S->Ctl;
    EO.CompileMem = &CompileMem;
    EO.CompileFairnessKey = S->Tenant;
    EO.Obs = obs::ObsContext(nullptr, &Reg, nullptr);

    rt::OutputBuffer LocalOut;
    rt::OutputBuffer *O = Out ? Out : &LocalOut;
    uint64_t RowsBefore = O->numRows();
    db::ExecResult ER = db::executeQuery(Plan, *Cache, Cat, O, EO);

    R.CompileBytes = CompileMem.ir().bytesAllocated() +
                     CompileMem.mir().bytesAllocated() +
                     CompileMem.scratch().bytesAllocated();
    if (T)
      T->adjustBytes(Reserved, R.CompileBytes);

    R.Trapped = ER.Trapped;
    R.Cancelled = ER.Cancelled;
    if (ER.Cancelled) {
      QueriesCancelled.inc();
    } else if (ER.Trapped) {
      QueriesTrapped.inc();
    } else {
      R.Ok = true;
      R.Rows = O->numRows() - RowsBefore;
      R.Digest = O->unorderedDigest();
      QueriesOk.inc();
    }

    if (T)
      T->adjustBytes(R.CompileBytes, 0); // Release the settled charge.
  }
  Gate.leave(nowNs() - RunStartNs);
  finish();
  return R;
}

void Server::shutdown() {
  bool Expected = false;
  if (!Stopping.compare_exchange_strong(Expected, true))
    return;
  SweepCv.notify_all();
  if (Sweeper.joinable())
    Sweeper.join();
  Gate.close();

  // Fire every session's token; running queries unwind within a morsel
  // or a wait tick and retire their sessions via the epilogue.
  std::vector<std::shared_ptr<Session>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Snapshot.reserve(Sessions.size());
    for (auto &[Sid, S] : Sessions)
      Snapshot.push_back(S);
  }
  for (const std::shared_ptr<Session> &S : Snapshot)
    S->Ctl.cancel();
  while (Gate.running() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // A query releases its gate slot before its session epilogue runs;
  // wait for the epilogues too, so the Idle-closing sweep below cannot
  // miss a session that is still mid-transition.
  for (const std::shared_ptr<Session> &S : Snapshot)
    while (S->St.load(std::memory_order_acquire) == Session::State::Active)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Close whatever is left (idle sessions; Active ones have drained).
  std::unordered_map<uint64_t, std::shared_ptr<Session>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Remaining.swap(Sessions);
  }
  for (auto &[Sid, S] : Remaining) {
    Session::State E = Session::State::Idle;
    if (S->St.compare_exchange_strong(E, Session::State::Closed))
      retireSession(*S, /*Evicted=*/false);
  }

  // Stop the compile service last: in-flight jobs reference modules and
  // the cache's inner back-end, both still alive here.
  Svc->shutdown();
}

size_t Server::numSessions() const {
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  return Sessions.size();
}

} // namespace qcf::serve
