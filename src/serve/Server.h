//===- serve/Server.h - Production query-serving front end ------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving front end over the compile/execute stack: sessions,
/// admission control, and multi-tenant quotas (DESIGN.md "Serving
/// layer"). One Server owns the shared substrate every session rides —
/// a bounded CompileService, a CachingBackend (in-memory LRU plus the
/// $QCF_CODE_CACHE persistent tier, so a fleet of serve processes shares
/// warm code), an AdmissionGate bounding concurrent execution, and the
/// MetricsRegistry all "serve.*" instruments land in.
///
/// Quota enforcement points, in request order:
///   1. openSession     -> TenantQuota::MaxSessions   (SessionQuota)
///   2. execute (pre)   -> MaxQueuedCompiles          (CompileQueueQuota)
///   3. execute (pre)   -> MaxCompileBytes reservation (CompileBytesQuota)
///   4. AdmissionGate   -> slots + bounded wait queue  (QueueFull / Shed)
///   5. CompileService  -> per-tenant fairness key      (typed reject,
///      inside the cache path; degrades to inline compile)
/// Every rejection is typed and carries a retry-after hint; nothing in
/// the serving path blocks on an unbounded queue.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SERVE_SERVER_H
#define QCF_SERVE_SERVER_H

#include "backend/Cache.h"
#include "backend/CompileService.h"
#include "backend/DiskCache.h"
#include "db/Executor.h"
#include "serve/Admission.h"
#include "serve/Session.h"
#include "serve/Tenant.h"
#include <memory>
#include <thread>
#include <unordered_map>

namespace qcf::serve {

/// Server construction knobs; fromEnv() maps the QCF_SERVE_* environment
/// (documented in README.md) onto this.
struct ServerConfig {
  /// Inner back-end compiled code comes from ("Craneline" default: the
  /// serving sweet spot of compile time vs. code quality).
  std::string BackendName = "Craneline";

  unsigned CompileWorkers = 2;
  /// Bound on the compile-service queue (0 = unbounded). Full-queue
  /// submits shed Background work or degrade to inline compiles.
  size_t CompileQueueCapacity = 64;
  /// In-memory compiled-code cache entries (0 = unbounded).
  size_t CacheCapacity = 0;

  AdmissionGate::Config Admission;

  uint64_t IdleTimeoutNs = 60'000'000'000ull; ///< Session idle eviction.
  uint64_t SweepIntervalNs = 1'000'000'000ull;
  /// Deadline applied to queries that do not carry their own (0 = none).
  uint64_t DefaultDeadlineNs = 0;
  /// Per-query compile-byte reservation made before the actual compile
  /// footprint is known; settled to the measured value afterwards.
  uint64_t CompileBytesEstimate = 1ull << 20;
  unsigned ExecThreads = 1; ///< Worker threads per admitted query.
  bool StartSweeper = true; ///< Tests drive evictIdleSessions() manually.
  obs::MetricsRegistry *Reg = nullptr; ///< null = process-wide registry.

  static ServerConfig fromEnv();
};

struct OpenOutcome {
  Admit Outcome = Admit::Ok;
  uint64_t SessionId = 0;
  uint64_t RetryAfterNs = 0;
};

/// What one Server::execute call did. Exactly one of {Ok, Trapped,
/// Cancelled, Outcome != Admit::Ok} describes the disposition.
struct QueryOutcome {
  Admit Outcome = Admit::Ok; ///< Admission disposition; Ok = it ran.
  bool Ok = false;           ///< Ran to completion; Rows/Digest valid.
  bool Trapped = false;
  bool Cancelled = false; ///< Token fired mid-query; results discarded.
  uint64_t Rows = 0;
  uint64_t Digest = 0; ///< OutputBuffer::unorderedDigest() of the rows.
  uint64_t RetryAfterNs = 0; ///< Backpressure hint on rejection.
  uint64_t CompileBytes = 0; ///< Measured compile-arena footprint.
  uint64_t AdmitWaitNs = 0;
  uint64_t TotalNs = 0;
};

/// The serving front end; see file comment. Thread-safe: any number of
/// driver threads may open/execute/close sessions concurrently.
class Server {
public:
  Server(const ServerConfig &Cfg, const db::Catalog &Cat);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Declares \p Name with \p Quota (replacing any previous quota) and
  /// installs its compile-queue share on the CompileService. Sessions
  /// can only be opened for registered tenants.
  void registerTenant(const std::string &Name, const TenantQuota &Quota);

  OpenOutcome openSession(const std::string &Tenant);

  /// Closes \p Sid. Idle sessions close immediately; an Active session
  /// gets CloseRequested + its token fired, and the executing thread
  /// completes the close in its epilogue (the in-flight query returns
  /// Cancelled). Either way the id is invalid once this returns.
  Admit closeSession(uint64_t Sid);

  /// Closes sessions Idle for longer than IdleTimeoutNs. \p NowNs
  /// overrides the clock for tests (0 = nowNs()). \returns sessions
  /// evicted. Runs periodically on the sweeper thread.
  size_t evictIdleSessions(uint64_t NowNs = 0);

  /// Runs \p Q on session \p Sid: claims the session, reserves tenant
  /// compile bytes, passes admission, then compiles (through the shared
  /// cache, fairness-keyed by tenant, metered into the byte reservation)
  /// and executes with the session's token armed. Results append to
  /// \p Out when given; Rows/Digest always cover this query's rows only.
  /// \p DeadlineNs is relative to now (0 = config default).
  QueryOutcome execute(uint64_t Sid, const db::Query &Q,
                       rt::OutputBuffer *Out = nullptr,
                       uint64_t DeadlineNs = 0);

  /// Cancels every session, drains running queries, and shuts the
  /// compile service down. Idempotent; also run by the destructor.
  void shutdown();

  size_t numSessions() const;
  obs::MetricsRegistry &registry() const { return Reg; }
  backend::CompileService &compileService() { return *Svc; }
  /// The shared caching back-end (restart-storm tests compile through
  /// it directly to prove cross-process disk-cache safety).
  backend::CachingBackend &cacheBackend() { return *Cache; }
  backend::DiskCodeCache *diskCache() { return Disk.get(); }

  /// renderText() of the registry — the `qcf_stats --serve` payload.
  std::string statsText() const { return Reg.snapshot().renderText(); }

private:
  struct TenantState {
    TenantState(const std::string &Name, const TenantQuota &Q,
                obs::MetricsRegistry &Reg);

    TenantQuota Quota;
    std::mutex Mutex;
    uint64_t Sessions = 0;
    uint64_t CompileBytes = 0; ///< Currently reserved bytes.

    obs::Gauge &SessionsG;
    obs::Gauge &BytesG;
    obs::Counter &RejSessions;
    obs::Counter &RejBytes;
    obs::Counter &RejCompileQueue;

    bool tryReserveBytes(uint64_t N);
    /// Replaces a reservation of \p From bytes with \p To (measurement
    /// settling Est -> Actual, or release with To == 0).
    void adjustBytes(uint64_t From, uint64_t To);
  };

  std::shared_ptr<Session> findSession(uint64_t Sid) const;
  TenantState *findTenant(const std::string &Name) const;
  /// Final Closed bookkeeping (tenant slot, gauges). \p Evicted selects
  /// the evicted counter over the closed one.
  void retireSession(Session &S, bool Evicted);
  void sweeperLoop();

  const ServerConfig Cfg;
  const db::Catalog &Cat;
  obs::MetricsRegistry &Reg;

  std::unique_ptr<backend::DiskCodeCache> Disk; ///< $QCF_CODE_CACHE tier.
  std::unique_ptr<backend::CompileService> Svc;
  std::unique_ptr<backend::CachingBackend> Cache; ///< Shared by sessions.
  AdmissionGate Gate;

  mutable std::mutex TenantsMutex;
  std::unordered_map<std::string, std::unique_ptr<TenantState>> Tenants;

  mutable std::mutex SessionsMutex;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> Sessions;
  std::atomic<uint64_t> NextSid{1};

  std::atomic<bool> Stopping{false};
  std::mutex SweepMutex;
  std::condition_variable SweepCv;
  std::thread Sweeper;

  obs::Gauge &SessionsOpenG;
  obs::Counter &SessionsOpened;
  obs::Counter &SessionsClosed;
  obs::Counter &SessionsEvicted;
  obs::Counter &QueriesOk;
  obs::Counter &QueriesCancelled;
  obs::Counter &QueriesTrapped;
  obs::Counter &QueriesRejected;
  obs::Histogram &QueryNs;
};

} // namespace qcf::serve

#endif // QCF_SERVE_SERVER_H
