//===- serve/Session.h - Serving-layer session object -----------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One client session of the serving layer. Lifecycle state machine
/// (DESIGN.md "Serving layer"):
///
///       openSession            execute                 query ends
///   --> Idle ----------------> Active ---------------> Idle
///        |                       |                       ^
///        | evict (idle timeout)  | closeSession:         | (no close
///        | or closeSession       |   CloseRequested=1    |  requested)
///        v                       |   Ctl.cancel()        |
///      Closed <------------------+-- epilogue completes -+
///
/// All transitions are CAS on the atomic state, so eviction, close, and
/// query start race safely: exactly one side wins Idle. A session that
/// is Active cannot be evicted — close of an Active session is deferred
/// to the executing thread's epilogue, with the session's CancelToken
/// fired so the query unwinds within one morsel / wait tick and its
/// in-flight compile tickets are cancelled rather than leaked.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SERVE_SESSION_H
#define QCF_SERVE_SESSION_H

#include "support/Cancel.h"
#include <atomic>
#include <cstdint>
#include <string>

namespace qcf::serve {

class Session {
public:
  enum class State : uint8_t { Idle, Active, Closed };

  Session(uint64_t Id, std::string Tenant, uint64_t NowNs)
      : Id(Id), Tenant(std::move(Tenant)), LastActiveNs(NowNs) {}

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  const uint64_t Id;
  const std::string Tenant;

  /// CAS-owned lifecycle state; see file comment.
  std::atomic<State> St{State::Idle};

  /// Set by closeSession() on an Active session; the query epilogue
  /// completes the close instead of returning to Idle.
  std::atomic<bool> CloseRequested{false};

  /// nowNs() of the last transition out of Active (or of creation);
  /// the idle-eviction sweep compares against this.
  std::atomic<uint64_t> LastActiveNs;

  std::atomic<uint64_t> Queries{0}; ///< Completed executes (any outcome).

  /// The session's cancellation + deadline token. reset() between
  /// queries by the executing thread (safe: only one query is in flight
  /// per session); fired by close/evict/deadline.
  qcf::CancelToken Ctl;
};

} // namespace qcf::serve

#endif // QCF_SERVE_SESSION_H
