//===- serve/Tenant.h - Multi-tenant quota configuration --------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quota configuration for one tenant of the serving layer. Quotas bound
/// the three resources a tenant can exhaust: session slots (long-lived
/// state), compile memory (the paper's first-order cost, metered through
/// qcf::MemContext byte counters), and compile-queue share (CompileService
/// fairness keys). Enforcement points are documented in DESIGN.md
/// "Serving layer"; all of them reject with a typed outcome rather than
/// blocking, so one tenant's storm degrades into *its own* retries.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SERVE_TENANT_H
#define QCF_SERVE_TENANT_H

#include <cstdint>

namespace qcf::serve {

/// Per-tenant resource limits; 0 means unlimited.
struct TenantQuota {
  /// Concurrently open sessions. openSession() beyond this rejects with
  /// Admit::SessionQuota.
  uint64_t MaxSessions = 0;

  /// Reserved compile-arena bytes summed over the tenant's running
  /// queries. Each execute() reserves an estimate before admission and
  /// settles to the actual qcf::MemContext::bytesAllocated() sum after
  /// the compile; exceeding the cap rejects with
  /// Admit::CompileBytesQuota.
  uint64_t MaxCompileBytes = 0;

  /// In-flight compile-service jobs carrying this tenant's fairness key
  /// (CompileService::setKeyQueueShare). Checked both at admission
  /// (Admit::CompileQueueQuota) and inside the service itself
  /// (RejectReason::TenantShare).
  uint64_t MaxQueuedCompiles = 0;

  /// Background tenants enter the admission gate at low priority: they
  /// queue behind foreground tenants and are the first shed when the
  /// wait queue overflows.
  bool Background = false;
};

} // namespace qcf::serve

#endif // QCF_SERVE_TENANT_H
