//===- stencil/Stencil.cpp - Copy-and-patch x86-64 back-end ---------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
//
// Value placement model
// ---------------------
// Every SSA value has a fixed rbp-relative frame slot, lazily assigned at
// its first mention during the single walk (so a back-edge use allocates
// the slot before the definition is reached). Operation cores run on the
// fixed register convention of the stencil table; results are stored to
// their slot immediately. A one-deep forwarding chain remembers which
// value the result registers currently hold so a consumer of the value
// just produced skips the reload — the common case in expression trees.
//
// Phis use a home slot plus a shadow slot: every edge copies its incoming
// values into the shadows (through r11, never skipping — a skipped copy
// would let a stale shadow from an untaken edge leak into the commit),
// and the successor's entry commits shadows to homes. Reads go to homes,
// writes to shadows, so the copies have parallel semantics without any
// cycle analysis.
//
//===----------------------------------------------------------------------===//

#include "stencil/Stencil.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include "stencil/Stencils.h"
#include "support/ByteIo.h"
#include "support/Compiler.h"
#include "support/Int128.h"
#include "x64/EncodingLint.h"
#include "x64/ExecArena.h"
#include <cassert>
#include <cstring>

using namespace qcf;
using namespace qcf::stencil;
using qir::BlockId;
using qir::Inst;
using qir::Opcode;
using qir::Type;
using qir::ValueId;

namespace {

constexpr int32_t NO_SLOT = INT32_MAX;

uint64_t maskFor(Type Ty) {
  switch (Ty) {
  case Type::I1:
    return 1;
  case Type::I8:
    return 0xff;
  case Type::I16:
    return 0xffff;
  case Type::I32:
    return 0xffffffffull;
  default:
    return ~0ull;
  }
}

unsigned lanesOf(Type Ty) { return qir::isTwoLane(Ty) ? 2 : 1; }

/// Compiles one function by fragment concatenation; see file comment.
class FnCompiler {
public:
  std::vector<uint8_t> Out;
  std::vector<std::pair<size_t, std::string>> RtRelocs;

  explicit FnCompiler(const qir::Function &F)
      : F(F), T(StencilTable::get()) {}

  uint32_t frameSize() const { return (NextFrame + 15u) & ~15u; }

  void compile() {
    Slot.assign(F.numInsts(), NO_SLOT);
    Shadow.assign(F.numInsts(), NO_SLOT);
    BlockPos.assign(F.numBlocks(), 0);
    HazardMemo.assign(F.numBlocks(), 0);
    countUses();
    emitPrologue();
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      BlockPos[B] = Out.size();
      assert(PendingVal == qir::INVALID_VALUE &&
             "pending store leaked across a block boundary");
      killChain();
      commitPhis(B);
      const qir::Block &Blk = F.block(B);
      for (uint32_t Idx = Blk.Begin; Idx != Blk.End; ++Idx)
        emitInst(B, Idx, F.inst(Idx));
    }
    finish();
  }

private:
  const qir::Function &F;
  const StencilTable &T;

  std::vector<int32_t> Slot;   ///< Home slot per value (NO_SLOT = none yet).
  std::vector<int32_t> Shadow; ///< Phi shadow slots.
  std::vector<uint8_t> HazardMemo; ///< Per block: 0 unknown, 1 no, 2 yes.
  /// ICmp whose cmp flags are still live (the instruction just emitted),
  /// and its predicate — the CondBr fusion window. INVALID when closed.
  ValueId FlagsVal = qir::INVALID_VALUE;
  uint8_t FlagsPred = 0;
  uint32_t NextFrame = 0;
  size_t FramePatchPos = 0;
  std::vector<size_t> BlockPos;
  struct BlockFix {
    size_t Pos; ///< Byte offset of a rel32 field targeting a block.
    BlockId Target;
  };
  std::vector<BlockFix> BlockFixes;
  struct TrapFix {
    size_t Pos;
    unsigned Stub; ///< 0 = overflow, 1 = div-by-zero.
  };
  std::vector<TrapFix> TrapFixes;
  bool TrapUsed[2] = {false, false};

  /// Forwarding chain: which value the result registers hold right now.
  enum class ChainKind : uint8_t { None, Gp1, Gp2, X0 };
  ChainKind Chain = ChainKind::None;
  ValueId ChainVal = qir::INVALID_VALUE;

  /// Static use count per value; feeds the single-use store elision.
  std::vector<uint32_t> UseCount;
  /// A def whose home-slot store is deferred: the value is single-use and
  /// still lives in rax (Gp1) or xmm0 (X0). If its one consumer picks it
  /// up through the forwarding chain the store is never emitted (and the
  /// slot never allocated); anything else flushes it first — always while
  /// the register still holds the value. Two-lane defs never defer.
  ValueId PendingVal = qir::INVALID_VALUE;
  ChainKind PendingKind = ChainKind::None;

  void killChain() {
    Chain = ChainKind::None;
    ChainVal = qir::INVALID_VALUE;
  }

  void flushPending() {
    if (PendingVal == qir::INVALID_VALUE)
      return;
    if (PendingKind == ChainKind::X0)
      emitD(T.StAX, slotOf(PendingVal));
    else
      emitD(T.StA, slotOf(PendingVal));
    PendingVal = qir::INVALID_VALUE;
  }

  /// The deferred value's sole consumer just took it from the register;
  /// the home-slot store is dead and is dropped for good.
  void consumePending(ValueId V) {
    if (PendingVal == V)
      PendingVal = qir::INVALID_VALUE;
  }

  /// Counts every operand read the back-end will perform, mirroring
  /// emitInst's consumption exactly (phi incomings and call arguments
  /// included). Overcounting merely costs a store; undercounting would
  /// elide a live one, so every reader must be listed here.
  void countUses() {
    UseCount.assign(F.numInsts(), 0);
    auto Bump = [&](ValueId V) {
      if (V != qir::INVALID_VALUE)
        ++UseCount[V];
    };
    for (uint32_t Idx = 0; Idx != F.numInsts(); ++Idx) {
      const Inst &I = F.inst(Idx);
      switch (I.Op) {
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::FNeg:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::Trunc:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::Bitcast:
      case Opcode::ExtractLo:
      case Opcode::ExtractHi:
      case Opcode::Load:
        Bump(I.A);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::SDiv:
      case Opcode::UDiv:
      case Opcode::SRem:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
      case Opcode::RotR:
      case Opcode::SAddTrap:
      case Opcode::SSubTrap:
      case Opcode::SMulTrap:
      case Opcode::Crc32:
      case Opcode::LongMulFold:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::ICmp:
      case Opcode::FCmp:
      case Opcode::PackD128:
      case Opcode::PackI128:
      case Opcode::Store:
      case Opcode::AtomicAdd:
        Bump(I.A);
        Bump(I.B);
        break;
      case Opcode::Gep:
        Bump(I.A);
        Bump(I.B); // I.C is the scale immediate, not a value.
        break;
      case Opcode::Select:
        Bump(I.A);
        Bump(I.B);
        Bump(I.C);
        break;
      case Opcode::Call:
        for (unsigned K = 0; K != F.numCallArgs(I); ++K)
          Bump(F.callArgs(I)[K]);
        break;
      case Opcode::Phi:
        for (unsigned K = 0; K != F.numPhiIncomings(I); ++K)
          Bump(F.phiIncomings(I)[K].Val);
        break;
      case Opcode::CondBr:
      case Opcode::Ret:
        Bump(I.A); // B/C are block ids; Ret's A may be INVALID.
        break;
      default: // Consts, StackSlot, Param, Br, Unreachable: no value reads.
        break;
      }
    }
  }

  /// The operand (if any) this instruction will consume through the
  /// rax/xmm0 forwarding chain — the only consumption that can absorb a
  /// deferred store. Everything else reads home slots (or clobbers the
  /// result registers), so emitInst flushes before any other opcode runs.
  ValueId chainCandidate(const Inst &I) const {
    switch (I.Op) {
    case Opcode::Select:
    case Opcode::Store:
    case Opcode::AtomicAdd:
      return I.B; // Value operand goes through loadA; the rest read slots.
    case Opcode::ExtractHi: // Reads the high lane straight from the slot.
    case Opcode::Br:        // Edge moves read incoming slots.
    case Opcode::Call:      // Argument loads read slots; call clobbers rax.
    case Opcode::ConstInt:
    case Opcode::ConstI128:
    case Opcode::ConstF64:
    case Opcode::ConstPtr:
    case Opcode::StackSlot: // movabs/lea clobber rax before any load.
    case Opcode::Unreachable:
      return qir::INVALID_VALUE;
    default:
      return I.A; // loadA/loadAX/loadLane0 operand (or no operand at all).
    }
  }

  int32_t allocFrame(uint32_t Bytes) {
    NextFrame += Bytes;
    return -static_cast<int32_t>(NextFrame);
  }

  int32_t slotOf(ValueId V) {
    if (Slot[V] == NO_SLOT)
      Slot[V] = allocFrame(qir::isTwoLane(F.valueType(V)) ? 16 : 8);
    return Slot[V];
  }

  int32_t shadowOf(ValueId P) {
    if (Shadow[P] == NO_SLOT)
      Shadow[P] = allocFrame(qir::isTwoLane(F.valueType(P)) ? 16 : 8);
    return Shadow[P];
  }

  // --- Fragment emission primitives ---------------------------------------

  size_t emit(const Fragment &Fr) {
    size_t Pos = Out.size();
    Out.insert(Out.end(), Fr.Bytes.begin(), Fr.Bytes.end());
    return Pos;
  }

  void patch32(size_t Pos, uint32_t V) { std::memcpy(&Out[Pos], &V, 4); }
  void patch64(size_t Pos, uint64_t V) { std::memcpy(&Out[Pos], &V, 8); }

  /// rel32 fields are relative to the end of the 4-byte field.
  void patchRel32(size_t Pos, size_t Target) {
    patch32(Pos, static_cast<uint32_t>(Target - (Pos + 4)));
  }

  /// Emits a fragment with a single Disp32 field.
  void emitD(const Fragment &Fr, int32_t Disp) {
    assert(Fr.Patches.size() == 1 &&
           Fr.Patches[0].K == Patch::Kind::Disp32);
    size_t Pos = emit(Fr);
    patch32(Pos + Fr.Patches[0].Off, static_cast<uint32_t>(Disp));
  }

  /// Emits a fragment with a single Imm64 field.
  void emitI64(const Fragment &Fr, uint64_t V) {
    assert(Fr.Patches.size() == 1 &&
           Fr.Patches[0].K == Patch::Kind::Imm64);
    size_t Pos = emit(Fr);
    patch64(Pos + Fr.Patches[0].Off, V);
  }

  /// Emits an operation core, registering its trap edges.
  void emitCore(const Fragment &Fr) {
    size_t Pos = emit(Fr);
    for (const Patch &P : Fr.Patches) {
      unsigned Stub = P.K == Patch::Kind::TrapOvf ? 0u : 1u;
      assert(P.K == Patch::Kind::TrapOvf || P.K == Patch::Kind::TrapDiv);
      TrapUsed[Stub] = true;
      TrapFixes.push_back({Pos + P.Off, Stub});
    }
  }

  void emitJmpTo(BlockId Target) {
    size_t Pos = emit(T.Jmp);
    BlockFixes.push_back({Pos + T.Jmp.Patches[0].Off, Target});
  }

  void emitCall(const std::string &Sym, const void *Addr) {
    size_t Pos = emit(T.CallR10);
    size_t Field = Pos + T.CallR10.Patches[0].Off;
    patch64(Field, reinterpret_cast<uint64_t>(Addr));
    RtRelocs.emplace_back(Field, Sym);
    killChain();
  }

  // --- Operand loads and result stores ------------------------------------

  void loadA(ValueId V) {
    bool Two = qir::isTwoLane(F.valueType(V));
    ChainKind Want = Two ? ChainKind::Gp2 : ChainKind::Gp1;
    if (ChainVal == V && Chain == Want) {
      consumePending(V);
      return;
    }
    if (PendingVal == V)
      flushPending(); // Wrong register class; materialize the slot first.
    emitD(T.LdA, slotOf(V));
    if (Two)
      emitD(T.LdAHi, slotOf(V) + 8);
    Chain = Want;
    ChainVal = V;
  }

  /// Loads only lane 0 of \p V into rax (truncations, extracts, packs).
  void loadLane0(ValueId V) {
    if (ChainVal == V &&
        (Chain == ChainKind::Gp1 || Chain == ChainKind::Gp2)) {
      consumePending(V);
      return;
    }
    if (PendingVal == V)
      flushPending(); // f64 bits pending in xmm0; store, then reload raw.
    emitD(T.LdA, slotOf(V));
    Chain = ChainKind::Gp1;
    ChainVal = V;
  }

  void loadAX(ValueId V) {
    if (ChainVal == V && Chain == ChainKind::X0) {
      consumePending(V);
      return;
    }
    if (PendingVal == V)
      flushPending(); // Int bits pending in rax; store, then movsd back.
    emitD(T.LdAX, slotOf(V));
    Chain = ChainKind::X0;
    ChainVal = V;
  }

  void loadB(ValueId V) {
    emitD(T.LdB, slotOf(V));
    if (qir::isTwoLane(F.valueType(V)))
      emitD(T.LdBHi, slotOf(V) + 8);
  }

  void loadBX(ValueId V) { emitD(T.LdBX, slotOf(V)); }

  void loadCond(ValueId V) { emitD(T.LdCond, slotOf(V)); }

  void defGp1(ValueId Id) {
    assert(PendingVal == qir::INVALID_VALUE && "def over a pending store");
    if (UseCount[Id] == 1) {
      PendingVal = Id;
      PendingKind = ChainKind::Gp1;
    } else {
      emitD(T.StA, slotOf(Id));
    }
    Chain = ChainKind::Gp1;
    ChainVal = Id;
  }

  void defGp2(ValueId Id) {
    assert(PendingVal == qir::INVALID_VALUE && "def over a pending store");
    emitD(T.StA, slotOf(Id));
    emitD(T.StAHi, slotOf(Id) + 8);
    Chain = ChainKind::Gp2;
    ChainVal = Id;
  }

  void defX0(ValueId Id) {
    assert(PendingVal == qir::INVALID_VALUE && "def over a pending store");
    if (UseCount[Id] == 1) {
      PendingVal = Id;
      PendingKind = ChainKind::X0;
    } else {
      emitD(T.StAX, slotOf(Id));
    }
    Chain = ChainKind::X0;
    ChainVal = Id;
  }

  // --- Phis ----------------------------------------------------------------

  bool blockHasPhis(BlockId B) const {
    const qir::Block &Blk = F.block(B);
    for (uint32_t Idx = Blk.Begin; Idx != Blk.End; ++Idx)
      if (F.inst(Idx).Op == Opcode::Phi)
        return true;
    return false;
  }

  /// True when \p B's phis form a parallel-copy hazard: some phi's
  /// incoming reads another phi of the same block, so writing homes in
  /// edge order could clobber a value a later move still needs. Only
  /// then do edge moves double-buffer through shadow slots with a
  /// shadow->home commit at block entry. Hazard-free blocks — the common
  /// case — copy incomings straight into the homes on the (split) edge,
  /// halving the per-iteration memory traffic on loop-carried values.
  /// Self-incomings (P <- P) are not hazards: the home already holds the
  /// value and direct mode skips the copy outright.
  bool phiHazard(BlockId B) {
    if (HazardMemo[B])
      return HazardMemo[B] == 2;
    const qir::Block &Blk = F.block(B);
    bool Hazard = false;
    for (uint32_t Idx = Blk.Begin; Idx != Blk.End && !Hazard; ++Idx) {
      const Inst &P = F.inst(Idx);
      if (P.Op != Opcode::Phi)
        continue;
      const qir::PhiIn *Ins = F.phiIncomings(P);
      for (unsigned K = 0; K != F.numPhiIncomings(P); ++K) {
        ValueId Src = Ins[K].Val;
        if (Src != Idx && Src >= Blk.Begin && Src < Blk.End &&
            F.inst(Src).Op == Opcode::Phi) {
          Hazard = true;
          break;
        }
      }
    }
    HazardMemo[B] = Hazard ? 2 : 1;
    return Hazard;
  }

  void commitPhis(BlockId B) {
    if (!phiHazard(B))
      return; // Edges wrote the homes directly; nothing to commit.
    const qir::Block &Blk = F.block(B);
    for (uint32_t Idx = Blk.Begin; Idx != Blk.End; ++Idx) {
      const Inst &P = F.inst(Idx);
      if (P.Op != Opcode::Phi)
        continue;
      for (unsigned L = 0; L != lanesOf(P.Ty); ++L) {
        emitD(T.LdTmp, shadowOf(Idx) + 8 * static_cast<int32_t>(L));
        emitD(T.StTmp, slotOf(Idx) + 8 * static_cast<int32_t>(L));
      }
    }
  }

  /// Copies this edge's incoming values into the successor's phis —
  /// straight into the homes when the successor is hazard-free, else
  /// into the shadow slots committed at its entry. Uses only r11, so a
  /// CondBr condition staged in rax survives. Runs on the split edge of
  /// a CondBr (after the branch decides), so only the taken edge's
  /// moves execute and the untaken successor's state is never touched.
  void edgeMoves(BlockId B, BlockId Succ) {
    const qir::Block &SB = F.block(Succ);
    bool Direct = !phiHazard(Succ);
    for (uint32_t Idx = SB.Begin; Idx != SB.End; ++Idx) {
      const Inst &P = F.inst(Idx);
      if (P.Op != Opcode::Phi)
        continue;
      const qir::PhiIn *Ins = F.phiIncomings(P);
      ValueId Src = qir::INVALID_VALUE;
      for (unsigned K = 0; K != F.numPhiIncomings(P); ++K)
        if (Ins[K].Pred == B) {
          Src = Ins[K].Val;
          break;
        }
      assert(Src != qir::INVALID_VALUE && "no incoming for edge");
      if (Direct && Src == static_cast<ValueId>(Idx))
        continue; // P <- P: the home already holds the value.
      for (unsigned L = 0; L != lanesOf(P.Ty); ++L) {
        emitD(T.LdTmp, slotOf(Src) + 8 * static_cast<int32_t>(L));
        emitD(T.StTmp, (Direct ? slotOf(Idx) : shadowOf(Idx)) +
                           8 * static_cast<int32_t>(L));
      }
    }
  }

  // --- Structure ------------------------------------------------------------

  void emitPrologue() {
    size_t Pos = emit(T.Prologue);
    FramePatchPos = Pos + T.Prologue.Patches[0].Off;
    unsigned Gp = 0, Xm = 0;
    for (unsigned Pi = 0; Pi != F.numParams(); ++Pi) {
      ValueId V = F.paramValue(Pi);
      Type Ty = F.paramTypes()[Pi];
      if (Ty == Type::F64) {
        assert(Xm < 8 && "too many f64 parameters");
        emitD(T.StParamXmm[Xm++], slotOf(V));
      } else {
        for (unsigned L = 0; L != lanesOf(Ty); ++L) {
          assert(Gp < 6 && "too many integer parameter lanes");
          emitD(T.StParamGp[Gp++],
                slotOf(V) + 8 * static_cast<int32_t>(L));
        }
      }
    }
  }

  void finish() {
    size_t StubPos[2] = {0, 0};
    for (unsigned Idx = 0; Idx != 2; ++Idx) {
      if (!TrapUsed[Idx])
        continue;
      StubPos[Idx] = Out.size();
      size_t Pos = emit(T.TrapStub[Idx]);
      size_t Field = Pos + T.TrapStub[Idx].Patches[0].Off;
      patch64(Field, reinterpret_cast<uint64_t>(
                         rt::runtimeSymbolAddress("rt_trap")));
      RtRelocs.emplace_back(Field, "rt_trap");
    }
    for (const TrapFix &Fix : TrapFixes)
      patchRel32(Fix.Pos, StubPos[Fix.Stub]);
    for (const BlockFix &Fix : BlockFixes)
      patchRel32(Fix.Pos, BlockPos[Fix.Target]);
    patch32(FramePatchPos, frameSize());
  }

  void emitHelper128(ValueId Av, ValueId Bv, const char *Name) {
    emitD(T.LdArg[0], slotOf(Av));
    emitD(T.LdArg[1], slotOf(Av) + 8);
    emitD(T.LdArg[2], slotOf(Bv));
    if (qir::isTwoLane(F.valueType(Bv)))
      emitD(T.LdArg[3], slotOf(Bv) + 8);
    emitCall(Name, rt::runtimeSymbolAddress(Name));
  }

  // --- Per-instruction dispatch --------------------------------------------

  void emitInst(BlockId B, ValueId Id, const Inst &I) {
    // Flags fusion window: a one-lane ICmp leaves its cmp's flags live
    // through the trailing setcc/movzx/store (none touch flags), so an
    // immediately following CondBr on that value branches on them
    // directly. Any other instruction in between closes the window.
    ValueId PrevFlags = FlagsVal;
    FlagsVal = qir::INVALID_VALUE;
    // A deferred single-use store survives into this instruction only if
    // this instruction is the consumer and will take the value from the
    // chain; everything else (slot reads, register clobbers, edge moves)
    // needs the home slot valid, and rax/xmm0 still hold the value here.
    if (PendingVal != qir::INVALID_VALUE && PendingVal != chainCandidate(I))
      flushPending();
    switch (I.Op) {
    case Opcode::Param: // Spilled by the prologue.
    case Opcode::Phi:   // Handled by edge moves + entry commits.
      return;

    case Opcode::ConstInt:
      emitI64(T.ConstA, I.Imm & maskFor(I.Ty));
      defGp1(Id);
      return;
    case Opcode::ConstI128: {
      Int128 C = F.i128Constant(I);
      emitI64(T.ConstA, lo64(C));
      emitI64(T.ConstAHi, hi64(C));
      defGp2(Id);
      return;
    }
    case Opcode::ConstF64:
    case Opcode::ConstPtr:
      emitI64(T.ConstA, I.Imm);
      defGp1(Id);
      return;
    case Opcode::StackSlot: {
      NextFrame = (NextFrame + 15u) & ~15u;
      NextFrame += static_cast<uint32_t>((I.Imm + 15) & ~15ull);
      emitD(T.LeaSlotA, -static_cast<int32_t>(NextFrame));
      defGp1(Id);
      return;
    }

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
      loadB(I.B);
      loadA(I.A);
      emitCore(T.core(I.Op, static_cast<uint8_t>(I.Ty)));
      qir::isTwoLane(I.Ty) ? defGp2(Id) : defGp1(Id);
      return;

    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
      if (I.Ty == Type::I128) {
        const char *Helper = I.Op == Opcode::SDiv   ? "rt_sdiv128"
                             : I.Op == Opcode::UDiv ? "rt_udiv128"
                                                    : "rt_srem128";
        emitHelper128(I.A, I.B, Helper);
        defGp2(Id);
      } else {
        loadB(I.B);
        loadA(I.A);
        emitCore(T.core(I.Op, static_cast<uint8_t>(I.Ty)));
        defGp1(Id);
      }
      return;

    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
    case Opcode::RotR:
      if (I.Ty == Type::I128) {
        assert(I.Op != Opcode::RotR && "rotr i128 not supported");
        const char *Helper = I.Op == Opcode::Shl    ? "rt_shl128"
                             : I.Op == Opcode::LShr ? "rt_lshr128"
                                                    : "rt_ashr128";
        emitHelper128(I.A, I.B, Helper);
        defGp2(Id);
      } else {
        loadB(I.B); // Amount in rcx = CL.
        loadA(I.A);
        emitCore(T.core(I.Op, static_cast<uint8_t>(I.Ty)));
        defGp1(Id);
      }
      return;

    case Opcode::Neg:
    case Opcode::Not:
      loadA(I.A);
      emitCore(T.core(I.Op, static_cast<uint8_t>(I.Ty)));
      qir::isTwoLane(I.Ty) ? defGp2(Id) : defGp1(Id);
      return;

    case Opcode::SAddTrap:
    case Opcode::SSubTrap:
      loadB(I.B);
      loadA(I.A);
      emitCore(T.core(I.Op, static_cast<uint8_t>(I.Ty)));
      qir::isTwoLane(I.Ty) ? defGp2(Id) : defGp1(Id);
      return;
    case Opcode::SMulTrap:
      if (I.Ty == Type::I128) {
        emitHelper128(I.A, I.B, "rt_mul128_ovf");
        defGp2(Id);
      } else {
        loadB(I.B);
        loadA(I.A);
        emitCore(T.core(I.Op, static_cast<uint8_t>(I.Ty)));
        defGp1(Id);
      }
      return;

    case Opcode::Crc32:
    case Opcode::LongMulFold:
      loadB(I.B);
      loadA(I.A);
      emitCore(T.core(I.Op));
      defGp1(Id);
      return;

    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      loadBX(I.B);
      loadAX(I.A);
      emitCore(T.core(I.Op));
      defX0(Id);
      return;
    case Opcode::FNeg:
      loadAX(I.A);
      emitCore(T.core(I.Op));
      defX0(Id);
      return;

    case Opcode::ICmp:
      loadB(I.B);
      loadA(I.A);
      emitCore(T.core(Opcode::ICmp,
                      static_cast<uint8_t>(F.valueType(I.A)), I.Flags));
      defGp1(Id);
      if (!qir::isTwoLane(F.valueType(I.A))) { // i128 forms remix flags.
        FlagsVal = Id;
        FlagsPred = I.Flags;
      }
      return;
    case Opcode::FCmp:
      loadBX(I.B);
      loadAX(I.A);
      emitCore(T.core(Opcode::FCmp, 0, I.Flags));
      defGp1(Id);
      return;

    case Opcode::Select:
      if (I.Ty == Type::F64) {
        loadCond(I.A);
        loadBX(I.C); // False value in xmm1.
        loadAX(I.B); // True value in xmm0.
        emitCore(T.core(Opcode::Select, SelF64));
        defX0(Id);
      } else {
        loadCond(I.A);
        loadB(I.C); // False value in rcx(/r8).
        loadA(I.B); // True value in rax(/rdx).
        bool Two = qir::isTwoLane(I.Ty);
        emitCore(T.core(Opcode::Select, Two ? SelTwoLane : SelOneLane));
        Two ? defGp2(Id) : defGp1(Id);
      }
      return;

    case Opcode::ZExt:
      // Canonical zero-extension makes widening a slot copy; only the
      // i128 destination needs a zeroed high lane.
      loadA(I.A);
      if (I.Ty == Type::I128) {
        emitCore(T.core(Opcode::ZExt, static_cast<uint8_t>(Type::I128)));
        defGp2(Id);
      } else {
        defGp1(Id);
      }
      return;
    case Opcode::SExt: {
      loadA(I.A);
      emitCore(T.core(Opcode::SExt,
                      static_cast<uint8_t>(F.valueType(I.A)),
                      static_cast<uint8_t>(I.Ty)));
      qir::isTwoLane(I.Ty) ? defGp2(Id) : defGp1(Id);
      return;
    }
    case Opcode::Trunc:
      loadLane0(I.A);
      if (I.Ty != Type::I64)
        emitCore(T.core(Opcode::Trunc, static_cast<uint8_t>(I.Ty)));
      defGp1(Id);
      return;
    case Opcode::SIToFP:
      loadA(I.A);
      emitCore(T.core(Opcode::SIToFP,
                      static_cast<uint8_t>(F.valueType(I.A))));
      defX0(Id);
      return;
    case Opcode::FPToSI:
      loadAX(I.A);
      emitCore(T.core(Opcode::FPToSI, static_cast<uint8_t>(I.Ty)));
      defGp1(Id);
      return;
    case Opcode::Bitcast:
      // Slots hold raw bits, so bitcasts are slot copies.
      if (qir::isTwoLane(I.Ty)) {
        loadA(I.A);
        defGp2(Id);
      } else {
        loadLane0(I.A);
        defGp1(Id);
      }
      return;

    case Opcode::PackD128:
    case Opcode::PackI128:
      loadLane0(I.A);
      emitD(T.LdAHi, slotOf(I.B)); // High lane from B into rdx.
      defGp2(Id);
      return;
    case Opcode::ExtractLo:
      loadLane0(I.A);
      defGp1(Id);
      return;
    case Opcode::ExtractHi:
      emitD(T.LdA, slotOf(I.A) + 8);
      defGp1(Id);
      return;

    case Opcode::Load:
      loadA(I.A); // Pointer.
      emitCore(T.core(Opcode::Load, static_cast<uint8_t>(I.Ty)));
      qir::isTwoLane(I.Ty) ? defGp2(Id) : defGp1(Id);
      return;
    case Opcode::Store: {
      Type VTy = F.valueType(I.B);
      emitD(T.LdB, slotOf(I.A)); // Pointer in rcx.
      loadA(I.B);                // Value in rax(/rdx).
      emitCore(T.core(Opcode::Store, static_cast<uint8_t>(VTy)));
      return; // Chain still holds the stored value.
    }
    case Opcode::Gep: {
      int32_t Disp = static_cast<int32_t>(static_cast<int64_t>(I.Imm));
      if (I.B == qir::INVALID_VALUE) {
        loadA(I.A);
        const Fragment &Fr = T.core(Opcode::Gep, 0);
        size_t Pos = emit(Fr);
        patch32(Pos + Fr.Patches[0].Off, static_cast<uint32_t>(Disp));
      } else {
        emitD(T.LdB, slotOf(I.B)); // Index in rcx.
        loadA(I.A);                // Base in rax.
        uint32_t Scale = I.C;
        if (Scale == 1 || Scale == 2 || Scale == 4 || Scale == 8) {
          const Fragment &Fr =
              T.core(Opcode::Gep, static_cast<uint8_t>(Scale));
          size_t Pos = emit(Fr);
          patch32(Pos + Fr.Patches[0].Off, static_cast<uint32_t>(Disp));
        } else {
          const Fragment &Fr = T.core(Opcode::Gep, GepGenericScale);
          assert(Fr.Patches.size() == 2 &&
                 Fr.Patches[0].K == Patch::Kind::Imm32 &&
                 Fr.Patches[1].K == Patch::Kind::Disp32);
          size_t Pos = emit(Fr);
          patch32(Pos + Fr.Patches[0].Off, Scale);
          patch32(Pos + Fr.Patches[1].Off, static_cast<uint32_t>(Disp));
        }
      }
      defGp1(Id);
      return;
    }
    case Opcode::AtomicAdd:
      emitD(T.LdB, slotOf(I.A)); // Pointer in rcx.
      loadA(I.B);                // Value in rax.
      emitCore(T.core(Opcode::AtomicAdd, static_cast<uint8_t>(I.Ty)));
      defGp1(Id);
      return;

    case Opcode::Call: {
      const qir::RuntimeSig &Sig = F.parent()->symbol(F.callee(I));
      unsigned ArgSlot = 0;
      for (unsigned K = 0; K != F.numCallArgs(I); ++K) {
        ValueId Arg = F.callArgs(I)[K];
        for (unsigned L = 0; L != lanesOf(F.valueType(Arg)); ++L) {
          assert(ArgSlot < 6 && "too many call argument lanes");
          emitD(T.LdArg[ArgSlot++],
                slotOf(Arg) + 8 * static_cast<int32_t>(L));
        }
      }
      emitCall(Sig.Name, Sig.Address);
      if (I.Ty != Type::Void)
        // The runtime is integer-class only: results arrive in rax(/rdx)
        // even for f64 (raw bits), matching DirectEmit.
        qir::isTwoLane(I.Ty) ? defGp2(Id) : defGp1(Id);
      return;
    }

    case Opcode::Br:
      edgeMoves(B, I.A);
      if (I.A != B + 1)
        emitJmpTo(I.A);
      return;
    case Opcode::CondBr: {
      // Branch on the preceding ICmp's still-live flags when possible;
      // otherwise reload the i1 and test it. Edge moves use only r11,
      // so neither the staged condition nor live flags are disturbed.
      const Fragment *Br = &T.TestJnz;
      if (PrevFlags == I.A) {
        Br = &T.JccPred[FlagsPred];
        consumePending(I.A); // A single-use condition dies in the flags.
      } else {
        loadA(I.A); // Condition in rax.
      }
      if (!blockHasPhis(I.B) && !blockHasPhis(I.C)) {
        // No edge moves on either side: branch straight at the targets.
        size_t Pos = emit(*Br);
        BlockFixes.push_back({Pos + Br->Patches[0].Off, I.B});
        if (I.C != B + 1)
          emitJmpTo(I.C);
        return;
      }
      // Split both edges: decide first, then run only the taken edge's
      // moves. Besides skipping the untaken side's work, this is what
      // makes direct (shadow-free) phi writes safe — a successor's homes
      // are only written when its edge is actually taken.
      size_t Pos = emit(*Br);
      size_t TruePatch = Pos + Br->Patches[0].Off;
      edgeMoves(B, I.C);
      emitJmpTo(I.C); // The true-edge stanza follows; never fall through.
      patchRel32(TruePatch, Out.size());
      edgeMoves(B, I.B);
      emitJmpTo(I.B);
      return;
    }
    case Opcode::Ret:
      if (I.A != qir::INVALID_VALUE) {
        if (F.valueType(I.A) == Type::F64)
          loadAX(I.A); // SysV returns f64 in xmm0.
        else
          loadA(I.A); // rax(/rdx).
      }
      emit(T.Epilogue);
      return;
    case Opcode::Unreachable:
      emit(T.Ud2);
      return;
    }
    QCF_UNREACHABLE("unhandled opcode in stencil back-end");
  }
};

} // namespace

// --- Module ---------------------------------------------------------------

void *StencilModule::entry(const std::string &Name) {
  for (const FnInfo &Fn : Fns)
    if (Fn.Name == Name)
      return const_cast<uint8_t *>(codeBase()) + Fn.Offset;
  return nullptr;
}

size_t StencilModule::codeSize(const std::string &Name) const {
  for (const FnInfo &Fn : Fns)
    if (Fn.Name == Name)
      return Fn.Size;
  return 0;
}

std::vector<tv::TvFunction> StencilModule::tvFunctions() const {
  std::vector<tv::TvFunction> Out;
  for (const FnInfo &Fn : Fns) {
    tv::TvFunction TF;
    TF.Name = Fn.Name;
    TF.Code = codeBase() + Fn.Offset;
    TF.Size = Fn.Size;
    for (const RtReloc &R : Relocs)
      if (R.Offset >= Fn.Offset && R.Offset < Fn.Offset + Fn.Size)
        TF.Relocs.push_back({R.Offset - Fn.Offset, 8, R.Symbol});
    Out.push_back(std::move(TF));
  }
  return Out;
}

// --- Compile driver -------------------------------------------------------

std::unique_ptr<backend::CompiledModule>
StencilBackend::compile(const qir::Module &M,
                        const backend::CompileOptions &Opts) {
  obs::CompileObs CompObs(Opts.Obs, name());
  TimeTrace *Trace = CompObs.trace();
  auto Result = std::make_unique<StencilModule>();

  if (Opts.Verify.Ir) {
    if (auto Err = qir::verify(M)) {
      fprintf(stderr, "%s\n", Err->c_str());
      reportFatalError("QIR verification failed (stencil)");
    }
  }

  std::vector<std::vector<uint8_t>> Codes;
  std::vector<std::vector<std::pair<size_t, std::string>>> FnRelocs;
  uint64_t FrameBytes = 0;
  {
    TimeTraceScope Scope(Trace, "stencil.codegen");
    for (const auto &F : M.functions()) {
      FnCompiler FC(*F);
      FC.compile();
      Result->Fns.push_back({F->name(), 0, FC.Out.size()});
      FrameBytes += FC.frameSize();
      Codes.push_back(std::move(FC.Out));
      FnRelocs.push_back(std::move(FC.RtRelocs));
      if (Opts.Verify.Mc) {
        // The stencil compiler patches every field before this point, so
        // the bytes are final: no relocations to exempt.
        std::string Err =
            x64::lintFunction(Codes.back().data(), Codes.back().size());
        if (!Err.empty()) {
          fprintf(stderr, "%s: in function '%s'\n", Err.c_str(),
                  F->name().c_str());
          reportFatalError("machine-code lint failed (stencil)");
        }
      }
    }
  }

  {
    TimeTraceScope Scope(Trace, "stencil.link");
    size_t Total = 0;
    for (const auto &C : Codes)
      Total = ((Total + 15) & ~size_t(15)) + C.size();
    Result->Mem.allocate(Total ? Total : 1);
    size_t Off = 0;
    for (size_t I = 0; I != Codes.size(); ++I) {
      Off = (Off + 15) & ~size_t(15);
      std::memcpy(Result->Mem.base() + Off, Codes[I].data(),
                  Codes[I].size());
      Result->Fns[I].Offset = Off;
      for (auto &[RelOff, Sym] : FnRelocs[I])
        Result->Relocs.push_back({Off + RelOff, std::move(Sym)});
      Off += Codes[I].size();
    }
    Result->CodeBytes = Total;
    Result->Mem.makeExecutable();
  }

  if (Opts.Obs.Metrics) {
    obs::MetricsRegistry &Reg = *Opts.Obs.Metrics;
    Reg.counter("mem.stencil.code.bytes").add(Result->CodeBytes);
    Reg.counter("mem.stencil.frame.bytes").add(FrameBytes);
    Reg.counter("mem.stencil.compiles").inc();
  }

  if (Opts.Verify.Tv) {
    std::string Err = tv::validateModule(M, Result->tvFunctions(),
                                         tv::TvOptions::fromEnv(),
                                         Opts.Obs.Metrics);
    if (!Err.empty()) {
      fprintf(stderr, "%s", Err.c_str());
      reportFatalError("translation validation failed (stencil)");
    }
  }
  return Result;
}

// --- Persistent-cache serialization ---------------------------------------

bool StencilModule::serialize(std::vector<uint8_t> &Out) const {
  // Refuse to persist a module whose call targets cannot be re-resolved
  // by name in another process.
  for (const RtReloc &R : Relocs)
    if (!rt::runtimeSymbolAddress(R.Symbol))
      return false;

  ByteWriter W;
  W.bytes(codeBase(), CodeBytes);
  W.u64(Fns.size());
  for (const FnInfo &Fn : Fns) {
    W.str(Fn.Name);
    W.u64(Fn.Offset);
    W.u64(Fn.Size);
  }
  W.u64(Relocs.size());
  for (const RtReloc &R : Relocs) {
    W.u64(R.Offset);
    W.str(R.Symbol);
  }
  Out = W.take();
  return true;
}

namespace qcf::stencil {

/// Shared decode/patch steps of the two deserialization paths.
struct StencilPayloadCodec {
  static bool parse(const uint8_t *Data, size_t Len, StencilModule &Result,
                    const uint8_t **CodeOut, size_t *CodeLenOut);
  static void patch(const StencilModule &M, uint8_t *PatchBase);
};

bool StencilPayloadCodec::parse(const uint8_t *Data, size_t Len,
                                StencilModule &Result,
                                const uint8_t **CodeOut,
                                size_t *CodeLenOut) {
  ByteReader R(Data, Len);
  auto [Code, CodeLen] = R.bytes();
  uint64_t NumFns = R.u64();
  if (!R.ok() || NumFns > Len)
    return false;
  for (uint64_t I = 0; I != NumFns; ++I) {
    StencilModule::FnInfo Fn;
    Fn.Name = R.str();
    Fn.Offset = R.u64();
    Fn.Size = R.u64();
    if (!R.ok() || Fn.Offset + Fn.Size > CodeLen)
      return false;
    Result.Fns.push_back(std::move(Fn));
  }
  uint64_t NumRelocs = R.u64();
  if (!R.ok() || NumRelocs > Len)
    return false;
  for (uint64_t I = 0; I != NumRelocs; ++I) {
    StencilModule::RtReloc Rel;
    Rel.Offset = R.u64();
    Rel.Symbol = R.str();
    if (!R.ok() || Rel.Offset + 8 > CodeLen)
      return false;
    if (!rt::runtimeSymbolAddress(Rel.Symbol))
      return false; // Unknown symbol: treat as a cache miss.
    Result.Relocs.push_back(std::move(Rel));
  }
  if (!R.ok())
    return false;
  *CodeOut = Code;
  *CodeLenOut = CodeLen;
  return true;
}

/// Writes each recorded runtime address over its movabs imm64.
void StencilPayloadCodec::patch(const StencilModule &M, uint8_t *PatchBase) {
  for (const StencilModule::RtReloc &Rel : M.Relocs) {
    uint64_t Target =
        reinterpret_cast<uint64_t>(rt::runtimeSymbolAddress(Rel.Symbol));
    std::memcpy(PatchBase + Rel.Offset, &Target, 8);
  }
}

} // namespace qcf::stencil

std::unique_ptr<backend::CompiledModule>
StencilBackend::deserialize(const uint8_t *Data, size_t Len) {
  auto Result = std::make_unique<StencilModule>();
  const uint8_t *Code = nullptr;
  size_t CodeLen = 0;
  if (!StencilPayloadCodec::parse(Data, Len, *Result, &Code, &CodeLen))
    return nullptr;
  Result->CodeBytes = CodeLen;
  // Install into the dual-view code arena: copy + patch through the RW
  // view, run through the RX view (see x64/ExecArena.h).
  if (x64::ExecArena::Block Blk = x64::ExecArena::global().allocate(CodeLen)) {
    std::memcpy(Blk.Rw, Code, CodeLen);
    StencilPayloadCodec::patch(*Result, Blk.Rw);
    Result->CodeBase = Blk.Rx;
    return Result;
  }
  // Arena unavailable (no memfd) or empty module: private W^X mapping.
  Result->Mem.allocate(CodeLen ? CodeLen : 1);
  std::memcpy(Result->Mem.base(), Code, CodeLen);
  StencilPayloadCodec::patch(*Result, Result->Mem.base());
  Result->Mem.makeExecutable();
  return Result;
}
