//===- stencil/Stencil.h - Copy-and-patch x86-64 back-end -------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil back-end: the tier below DirectEmit. Compilation is a
/// single walk over QIR that concatenates pre-encoded binary stencils
/// (see stencil/Stencils.h) and patches their operand fields — no
/// analysis pass, no materialized MIR, no register allocator state beyond
/// a value→frame-slot map. Every SSA value lives in a fixed rbp-relative
/// slot; operation cores run on a fixed register convention and results
/// are stored back immediately (with a one-value forwarding chain that
/// elides the reload when an operation consumes the value just produced).
/// This trades execution quality against DirectEmit for a compile path
/// that is mostly memcpy, in the spirit of Copy-and-Patch (Xu & Kjolstad,
/// 2021) and TPDE (Schwarz, Kamm & Engelke, 2025).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_STENCIL_STENCIL_H
#define QCF_STENCIL_STENCIL_H

#include "backend/Backend.h"
#include "x64/ExecMemory.h"
#include <vector>

namespace qcf::stencil {

/// Machine code produced by the stencil back-end.
class StencilModule : public backend::CompiledModule {
public:
  void *entry(const std::string &Name) override;

  size_t codeSize(const std::string &Name) const;

  /// Persists code bytes, the entry-symbol table, and the named
  /// runtime-call relocation records (see DiskCodeCache).
  bool serialize(std::vector<uint8_t> &Out) const override;

  /// Per-function code views with imm64 runtime-call relocations, for
  /// translation validation (QCF_VERIFY=tv). Works off codeBase(), so
  /// cache-loaded modules expose their re-patched arena bytes.
  std::vector<tv::TvFunction> tvFunctions() const override;

private:
  friend class StencilBackend;
  friend struct StencilPayloadCodec;
  x64::ExecMemory Mem;
  /// Where the code actually lives: compiled modules own a private W^X
  /// mapping (Mem); cache-loaded modules sit in the shared dual-view
  /// code arena and CodeBase is their RX view.
  const uint8_t *codeBase() const { return CodeBase ? CodeBase : Mem.base(); }
  const uint8_t *CodeBase = nullptr;
  size_t CodeBytes = 0;
  struct FnInfo {
    std::string Name;
    size_t Offset;
    size_t Size;
  };
  std::vector<FnInfo> Fns;
  /// Runtime-call sites: the imm64 of a movabs at module offset Offset
  /// holds the address of runtime symbol Symbol.
  struct RtReloc {
    size_t Offset;
    std::string Symbol;
  };
  std::vector<RtReloc> Relocs;
};

/// The copy-and-patch back-end.
class StencilBackend : public backend::Backend {
public:
  using backend::Backend::compile;

  std::string name() const override { return "Stencil"; }
  std::unique_ptr<backend::CompiledModule>
  compile(const qir::Module &M, const backend::CompileOptions &Opts) override;

  std::unique_ptr<backend::CompiledModule> deserialize(const uint8_t *Data,
                                                       size_t Len) override;
};

} // namespace qcf::stencil

#endif // QCF_STENCIL_STENCIL_H
