//===- stencil/Stencils.cpp - Pre-built copy-and-patch stencils -----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
//
// Every fragment is encoded once, at table-construction time, through the
// same x64::Assembler the other native back-ends use; the patch records are
// taken immediately after emitting the instruction that carries the field,
// so offsets are correct by construction. Fields that must be patchable are
// forced into their wide encodings with placeholders (a displacement larger
// than 127 forces disp32; movAbsRI always emits imm64).
//
// The operation cores reproduce DirectEmit's instruction selection on a
// fixed register convention (see Stencils.h). Keeping the two back-ends
// semantically byte-for-byte aligned is what makes the shared differential
// corpus and translation validation meaningful for both.
//
//===----------------------------------------------------------------------===//

#include "stencil/Stencils.h"
#include "runtime/Trap.h"
#include "support/Compiler.h"
#include "x64/Asm.h"
#include <cassert>

using namespace qcf;
using namespace qcf::stencil;
using namespace qcf::x64;
using qir::Opcode;
using qir::Type;

namespace {

/// Placeholder displacement: larger than 127 so the encoder picks the
/// disp32 form, and recognizable in hexdumps of unpatched fragments.
constexpr int32_t DISP_PLACEHOLDER = 0x11223344;
constexpr uint64_t IMM64_PLACEHOLDER = 0x1122334455667788ull;

Width widthOf(Type Ty) { return widthForBytes(qir::typeSize(Ty)); }

Width aluWidth(Type Ty) {
  return Ty == Type::I64 || Ty == Type::Ptr ? Width::W64 : Width::W32;
}

uint64_t maskFor(Type Ty) {
  switch (Ty) {
  case Type::I1:
    return 1;
  case Type::I8:
    return 0xff;
  case Type::I16:
    return 0xffff;
  case Type::I32:
    return 0xffffffffull;
  default:
    return ~0ull;
  }
}

Cond condForPred(qir::CmpPred P) {
  switch (P) {
  case qir::CmpPred::Eq:
    return Cond::E;
  case qir::CmpPred::Ne:
    return Cond::NE;
  case qir::CmpPred::SLt:
    return Cond::L;
  case qir::CmpPred::SLe:
    return Cond::LE;
  case qir::CmpPred::SGt:
    return Cond::G;
  case qir::CmpPred::SGe:
    return Cond::GE;
  case qir::CmpPred::ULt:
    return Cond::B;
  case qir::CmpPred::ULe:
    return Cond::BE;
  case qir::CmpPred::UGt:
    return Cond::A;
  case qir::CmpPred::UGe:
    return Cond::AE;
  }
  QCF_UNREACHABLE("invalid predicate");
}

/// Builds one fragment. Patch records are taken right after emitting the
/// instruction whose trailing bytes form the field; rel32 fields destined
/// for the compiler (continuations, trap edges) target a label bound at the
/// fragment end purely so finalize() succeeds — the compiler overwrites
/// them.
class FB {
public:
  Assembler A;

  void mark(Patch::Kind K, unsigned FieldBytes = 4) {
    Patches.push_back(
        {K, static_cast<uint16_t>(A.size() - FieldBytes)});
  }

  void pendingJcc(Patch::Kind K, Cond C) {
    Label L = A.newLabel();
    A.jcc(C, L);
    mark(K);
    Pend.push_back(L);
  }

  void pendingJmp(Patch::Kind K) {
    Label L = A.newLabel();
    A.jmp(L);
    mark(K);
    Pend.push_back(L);
  }

  Fragment take() {
    for (Label L : Pend)
      A.bind(L);
    A.finalize();
    Fragment F;
    F.Bytes = A.code();
    F.Patches = std::move(Patches);
    return F;
  }

private:
  std::vector<Patch> Patches;
  std::vector<Label> Pend;
};

using Alu = Assembler::Alu;
using Sh = Assembler::Shift;

void recanon(FB &B, Type Ty) {
  if (Ty == Type::I1)
    B.A.aluRI(Alu::And, Width::W32, Reg::RAX, 1);
  else if (Ty == Type::I8)
    B.A.movzxRR(Width::W8, Reg::RAX, Reg::RAX);
  else if (Ty == Type::I16)
    B.A.movzxRR(Width::W16, Reg::RAX, Reg::RAX);
}

constexpr Type OneLaneInts[] = {Type::I1, Type::I8, Type::I16, Type::I32,
                                Type::I64, Type::Ptr};

} // namespace

const char *stencil::patchKindName(Patch::Kind K) {
  switch (K) {
  case Patch::Kind::Disp32:
    return "disp32";
  case Patch::Kind::Imm32:
    return "imm32";
  case Patch::Kind::Imm64:
    return "imm64";
  case Patch::Kind::Rel32:
    return "rel32";
  case Patch::Kind::TrapOvf:
    return "trap-ovf";
  case Patch::Kind::TrapDiv:
    return "trap-div";
  }
  return "?";
}

const StencilTable &StencilTable::get() {
  static const StencilTable Table;
  return Table;
}

void StencilTable::add(Opcode Op, uint8_t A, uint8_t B, Fragment F) {
  bool Inserted = Cores.emplace(coreKey(Op, A, B), std::move(F)).second;
  assert(Inserted && "duplicate stencil core");
  (void)Inserted;
}

const Fragment &StencilTable::core(Opcode Op, uint8_t A, uint8_t B) const {
  auto It = Cores.find(coreKey(Op, A, B));
  assert(It != Cores.end() && "missing stencil core");
  return It->second;
}

StencilTable::StencilTable() {
  // --- Structural fragments -----------------------------------------------
  auto LdGp = [](Reg R) {
    FB B;
    B.A.movRM(Width::W64, R, Mem::base(Reg::RBP, DISP_PLACEHOLDER));
    B.mark(Patch::Kind::Disp32);
    return B.take();
  };
  auto StGp = [](Reg R) {
    FB B;
    B.A.movMR(Width::W64, Mem::base(Reg::RBP, DISP_PLACEHOLDER), R);
    B.mark(Patch::Kind::Disp32);
    return B.take();
  };
  auto LdX = [](Xmm R) {
    FB B;
    B.A.movsdXM(R, Mem::base(Reg::RBP, DISP_PLACEHOLDER));
    B.mark(Patch::Kind::Disp32);
    return B.take();
  };
  auto StX = [](Xmm R) {
    FB B;
    B.A.movsdMX(Mem::base(Reg::RBP, DISP_PLACEHOLDER), R);
    B.mark(Patch::Kind::Disp32);
    return B.take();
  };

  LdA = LdGp(Reg::RAX);
  LdAHi = LdGp(Reg::RDX);
  LdB = LdGp(Reg::RCX);
  LdBHi = LdGp(Reg::R8);
  LdCond = LdGp(Reg::R9);
  LdTmp = LdGp(Reg::R11);
  StA = StGp(Reg::RAX);
  StAHi = StGp(Reg::RDX);
  StTmp = StGp(Reg::R11);
  LdAX = LdX(Xmm::XMM0);
  LdBX = LdX(Xmm::XMM1);
  StAX = StX(Xmm::XMM0);
  for (unsigned I = 0; I != 6; ++I) {
    LdArg[I] = LdGp(GpArgRegs[I]);
    StParamGp[I] = StGp(GpArgRegs[I]);
  }
  for (unsigned I = 0; I != 8; ++I)
    StParamXmm[I] = StX(static_cast<Xmm>(I));

  {
    FB B;
    B.A.movAbsRI(Reg::RAX, IMM64_PLACEHOLDER);
    B.mark(Patch::Kind::Imm64, 8);
    ConstA = B.take();
  }
  {
    FB B;
    B.A.movAbsRI(Reg::RDX, IMM64_PLACEHOLDER);
    B.mark(Patch::Kind::Imm64, 8);
    ConstAHi = B.take();
  }
  {
    FB B;
    B.A.lea(Reg::RAX, Mem::base(Reg::RBP, DISP_PLACEHOLDER));
    B.mark(Patch::Kind::Disp32);
    LeaSlotA = B.take();
  }
  {
    FB B;
    B.A.pushR(Reg::RBP);
    B.A.movRR(Width::W64, Reg::RBP, Reg::RSP);
    // sub rsp, imm32: the placeholder > 127 forces the 0x81 encoding.
    B.A.aluRI(Alu::Sub, Width::W64, Reg::RSP, 0x01000000);
    B.mark(Patch::Kind::Imm32);
    Prologue = B.take();
  }
  {
    FB B;
    B.A.movRR(Width::W64, Reg::RSP, Reg::RBP);
    B.A.popR(Reg::RBP);
    B.A.ret();
    Epilogue = B.take();
  }
  {
    FB B;
    B.A.ud2();
    Ud2 = B.take();
  }
  {
    FB B;
    B.pendingJmp(Patch::Kind::Rel32);
    Jmp = B.take();
  }
  {
    FB B;
    B.A.testRR(Width::W64, Reg::RAX, Reg::RAX);
    B.pendingJcc(Patch::Kind::Rel32, Cond::NE);
    TestJnz = B.take();
  }
  static const qir::CmpPred AllPreds[] = {
      qir::CmpPred::Eq,  qir::CmpPred::Ne,  qir::CmpPred::SLt,
      qir::CmpPred::SLe, qir::CmpPred::SGt, qir::CmpPred::SGe,
      qir::CmpPred::ULt, qir::CmpPred::ULe, qir::CmpPred::UGt,
      qir::CmpPred::UGe};
  for (qir::CmpPred P : AllPreds) {
    FB B;
    B.pendingJcc(Patch::Kind::Rel32, condForPred(P));
    JccPred[static_cast<uint8_t>(P)] = B.take();
  }
  {
    FB B;
    B.A.movAbsRI(Reg::R10, IMM64_PLACEHOLDER);
    B.mark(Patch::Kind::Imm64, 8);
    B.A.callReg(Reg::R10);
    CallR10 = B.take();
  }
  static const rt::TrapCode TrapCodes[2] = {rt::TrapCode::Overflow,
                                            rt::TrapCode::DivByZero};
  for (unsigned Idx = 0; Idx != 2; ++Idx) {
    FB B;
    B.A.movRI32(Reg::RDI, static_cast<uint32_t>(TrapCodes[Idx]));
    B.A.movAbsRI(Reg::R10, IMM64_PLACEHOLDER);
    B.mark(Patch::Kind::Imm64, 8);
    B.A.callReg(Reg::R10);
    B.A.ud2();
    TrapStub[Idx] = B.take();
  }

  // --- Add/Sub/And/Or/Xor -------------------------------------------------
  struct {
    Opcode Op;
    Alu Lo, Hi;
  } AddLike[] = {{Opcode::Add, Alu::Add, Alu::Adc},
                 {Opcode::Sub, Alu::Sub, Alu::Sbb},
                 {Opcode::And, Alu::And, Alu::And},
                 {Opcode::Or, Alu::Or, Alu::Or},
                 {Opcode::Xor, Alu::Xor, Alu::Xor}};
  for (const auto &AL : AddLike) {
    for (Type Ty : OneLaneInts) {
      FB B;
      B.A.aluRR(AL.Lo, aluWidth(Ty), Reg::RAX, Reg::RCX);
      recanon(B, Ty);
      add(AL.Op, static_cast<uint8_t>(Ty), 0, B.take());
    }
    FB B;
    B.A.aluRR(AL.Lo, Width::W64, Reg::RAX, Reg::RCX);
    B.A.aluRR(AL.Hi, Width::W64, Reg::RDX, Reg::R8);
    add(AL.Op, static_cast<uint8_t>(Type::I128), 0, B.take());
  }

  // --- Mul ----------------------------------------------------------------
  for (Type Ty : OneLaneInts) {
    FB B;
    B.A.imulRR(aluWidth(Ty), Reg::RAX, Reg::RCX);
    recanon(B, Ty);
    add(Opcode::Mul, static_cast<uint8_t>(Ty), 0, B.take());
  }
  {
    // Wrapping 128-bit multiply via three 64-bit multiplies (a.lo/a.hi in
    // rax/rdx, b.lo/b.hi in rcx/r8); mirrors DirectEmit's sequence on the
    // stencil register convention.
    FB B;
    B.A.movRR(Width::W64, Reg::R11, Reg::RAX); // save a.lo
    B.A.movRR(Width::W64, Reg::R9, Reg::RDX);  // a.hi (mul clobbers rdx)
    B.A.mulR(Width::W64, Reg::RCX);            // rdx:rax = a.lo * b.lo
    B.A.movRR(Width::W64, Reg::R10, Reg::RDX); // hi accumulator
    B.A.imulRR(Width::W64, Reg::R9, Reg::RCX); // a.hi * b.lo
    B.A.aluRR(Alu::Add, Width::W64, Reg::R10, Reg::R9);
    B.A.imulRR(Width::W64, Reg::R11, Reg::R8); // a.lo * b.hi
    B.A.aluRR(Alu::Add, Width::W64, Reg::R10, Reg::R11);
    B.A.movRR(Width::W64, Reg::RDX, Reg::R10);
    add(Opcode::Mul, static_cast<uint8_t>(Type::I128), 0, B.take());
  }

  // --- Div / Rem ----------------------------------------------------------
  // i128 division goes through runtime helpers (composed by the compiler).
  for (Type Ty : {Type::I1, Type::I8, Type::I16, Type::I32, Type::I64}) {
    for (Opcode Op : {Opcode::SDiv, Opcode::UDiv, Opcode::SRem}) {
      FB B;
      bool Signed = Op != Opcode::UDiv;
      Width W = aluWidth(Ty);
      if (Signed && (Ty == Type::I8 || Ty == Type::I16)) {
        B.A.movsxRR(widthOf(Ty), Reg::RAX, Reg::RAX);
        B.A.movsxRR(widthOf(Ty), Reg::RCX, Reg::RCX);
      }
      B.A.testRR(W, Reg::RCX, Reg::RCX);
      B.pendingJcc(Patch::Kind::TrapDiv, Cond::E);
      if (Signed) {
        Label Ok = B.A.newLabel();
        B.A.aluRI(Alu::Cmp, W, Reg::RCX, -1);
        if (Op == Opcode::SRem) {
          // srem x, -1 == 0 for every x; rewrite the divisor to 1 so idiv
          // cannot fault on INT_MIN (same rewrite as DirectEmit).
          B.A.jcc(Cond::NE, Ok);
          B.A.movRI32(Reg::RCX, 1);
        } else {
          B.A.jcc(Cond::NE, Ok);
          if (Ty == Type::I64) {
            B.A.movRI(Reg::R11, 0x8000000000000000ull);
            B.A.aluRR(Alu::Cmp, Width::W64, Reg::RAX, Reg::R11);
          } else {
            int32_t Min = Ty == Type::I32   ? INT32_MIN
                          : Ty == Type::I16 ? -32768
                                            : -128;
            B.A.aluRI(Alu::Cmp, W, Reg::RAX, Min);
          }
          B.pendingJcc(Patch::Kind::TrapOvf, Cond::E);
        }
        B.A.bind(Ok);
        if (W == Width::W64)
          B.A.cqo();
        else
          B.A.cdq();
        B.A.idivR(W, Reg::RCX);
      } else {
        B.A.movRI32(Reg::RDX, 0);
        B.A.divR(W, Reg::RCX);
      }
      if (Op == Opcode::SRem)
        B.A.movRR(Width::W64, Reg::RAX, Reg::RDX);
      recanon(B, Ty);
      add(Op, static_cast<uint8_t>(Ty), 0, B.take());
    }
  }

  // --- Shifts -------------------------------------------------------------
  // The amount already sits in RCX (= CL). i128 shifts are helper calls.
  for (Type Ty : {Type::I1, Type::I8, Type::I16, Type::I32, Type::I64}) {
    for (Opcode Op :
         {Opcode::Shl, Opcode::LShr, Opcode::AShr, Opcode::RotR}) {
      FB B;
      unsigned Bits = qir::intBits(Ty);
      if (Bits < 32 && Op != Opcode::RotR)
        B.A.aluRI(Alu::And, Width::W32, Reg::RCX,
                  static_cast<int32_t>(Bits - 1));
      switch (Op) {
      case Opcode::Shl:
        B.A.shiftRC(Sh::Shl, aluWidth(Ty), Reg::RAX);
        recanon(B, Ty);
        break;
      case Opcode::LShr:
        B.A.shiftRC(Sh::Shr, aluWidth(Ty), Reg::RAX);
        recanon(B, Ty);
        break;
      case Opcode::AShr:
        if (Ty == Type::I8 || Ty == Type::I16)
          B.A.movsxRR(widthOf(Ty), Reg::RAX, Reg::RAX);
        B.A.shiftRC(Sh::Sar, aluWidth(Ty), Reg::RAX);
        recanon(B, Ty);
        break;
      default: // RotR rotates at the true width; result stays canonical.
        B.A.shiftRC(Sh::Ror, widthOf(Ty), Reg::RAX);
        break;
      }
      add(Op, static_cast<uint8_t>(Ty), 0, B.take());
    }
  }

  // --- Neg / Not ----------------------------------------------------------
  for (Type Ty : OneLaneInts) {
    {
      FB B;
      B.A.negR(aluWidth(Ty), Reg::RAX);
      recanon(B, Ty);
      add(Opcode::Neg, static_cast<uint8_t>(Ty), 0, B.take());
    }
    {
      FB B;
      B.A.notR(aluWidth(Ty), Reg::RAX);
      recanon(B, Ty);
      add(Opcode::Not, static_cast<uint8_t>(Ty), 0, B.take());
    }
  }
  {
    FB B;
    B.A.movRI32(Reg::R10, 0);
    B.A.movRI32(Reg::R11, 0);
    B.A.aluRR(Alu::Sub, Width::W64, Reg::R10, Reg::RAX);
    B.A.aluRR(Alu::Sbb, Width::W64, Reg::R11, Reg::RDX);
    B.A.movRR(Width::W64, Reg::RAX, Reg::R10);
    B.A.movRR(Width::W64, Reg::RDX, Reg::R11);
    add(Opcode::Neg, static_cast<uint8_t>(Type::I128), 0, B.take());
  }
  {
    FB B;
    B.A.notR(Width::W64, Reg::RAX);
    B.A.notR(Width::W64, Reg::RDX);
    add(Opcode::Not, static_cast<uint8_t>(Type::I128), 0, B.take());
  }

  // --- Checked arithmetic -------------------------------------------------
  for (Opcode Op : {Opcode::SAddTrap, Opcode::SSubTrap}) {
    bool IsAdd = Op == Opcode::SAddTrap;
    for (Type Ty : OneLaneInts) {
      FB B;
      B.A.aluRR(IsAdd ? Alu::Add : Alu::Sub, aluWidth(Ty), Reg::RAX,
                Reg::RCX);
      B.pendingJcc(Patch::Kind::TrapOvf, Cond::O);
      recanon(B, Ty);
      add(Op, static_cast<uint8_t>(Ty), 0, B.take());
    }
    FB B;
    B.A.aluRR(IsAdd ? Alu::Add : Alu::Sub, Width::W64, Reg::RAX, Reg::RCX);
    B.A.aluRR(IsAdd ? Alu::Adc : Alu::Sbb, Width::W64, Reg::RDX, Reg::R8);
    B.pendingJcc(Patch::Kind::TrapOvf, Cond::O);
    add(Op, static_cast<uint8_t>(Type::I128), 0, B.take());
  }
  for (Type Ty : OneLaneInts) {
    // i128 checked multiply calls rt_mul128_ovf (composed).
    FB B;
    B.A.imulRR(aluWidth(Ty), Reg::RAX, Reg::RCX);
    B.pendingJcc(Patch::Kind::TrapOvf, Cond::O);
    recanon(B, Ty);
    add(Opcode::SMulTrap, static_cast<uint8_t>(Ty), 0, B.take());
  }

  // --- Hash / fold --------------------------------------------------------
  {
    FB B;
    B.A.crc32RR(Reg::RAX, Reg::RCX);
    add(Opcode::Crc32, 0, 0, B.take());
  }
  {
    FB B;
    B.A.mulR(Width::W64, Reg::RCX);
    B.A.aluRR(Alu::Xor, Width::W64, Reg::RAX, Reg::RDX);
    add(Opcode::LongMulFold, 0, 0, B.take());
  }

  // --- Scalar f64 ---------------------------------------------------------
  {
    FB B;
    B.A.addsd(Xmm::XMM0, Xmm::XMM1);
    add(Opcode::FAdd, 0, 0, B.take());
  }
  {
    FB B;
    B.A.subsd(Xmm::XMM0, Xmm::XMM1);
    add(Opcode::FSub, 0, 0, B.take());
  }
  {
    FB B;
    B.A.mulsd(Xmm::XMM0, Xmm::XMM1);
    add(Opcode::FMul, 0, 0, B.take());
  }
  {
    FB B;
    B.A.divsd(Xmm::XMM0, Xmm::XMM1);
    add(Opcode::FDiv, 0, 0, B.take());
  }
  {
    // -x == (bitcast) x ^ sign bit.
    FB B;
    B.A.movqRX(Reg::RAX, Xmm::XMM0);
    B.A.movRI(Reg::R11, 0x8000000000000000ull);
    B.A.aluRR(Alu::Xor, Width::W64, Reg::RAX, Reg::R11);
    B.A.movqXR(Xmm::XMM0, Reg::RAX);
    add(Opcode::FNeg, 0, 0, B.take());
  }

  // --- Integer compares ---------------------------------------------------
  for (Type OpTy : OneLaneInts) {
    for (qir::CmpPred P : AllPreds) {
      FB B;
      B.A.aluRR(Alu::Cmp, widthOf(OpTy), Reg::RAX, Reg::RCX);
      B.A.setcc(condForPred(P), Reg::RAX);
      B.A.movzxRR(Width::W8, Reg::RAX, Reg::RAX);
      add(Opcode::ICmp, static_cast<uint8_t>(OpTy),
          static_cast<uint8_t>(P), B.take());
    }
  }
  for (qir::CmpPred P : AllPreds) {
    FB B;
    if (P == qir::CmpPred::Eq || P == qir::CmpPred::Ne) {
      B.A.movRR(Width::W64, Reg::R11, Reg::RAX);
      B.A.aluRR(Alu::Xor, Width::W64, Reg::R11, Reg::RCX);
      B.A.movRR(Width::W64, Reg::R10, Reg::RDX);
      B.A.aluRR(Alu::Xor, Width::W64, Reg::R10, Reg::R8);
      B.A.aluRR(Alu::Or, Width::W64, Reg::R11, Reg::R10);
      B.A.setcc(P == qir::CmpPred::Eq ? Cond::E : Cond::NE, Reg::RAX);
      B.A.movzxRR(Width::W8, Reg::RAX, Reg::RAX);
    } else {
      // lt(x, y) via cmp/sbb; the others are lt with swapped operands
      // and/or an inverted result (same table as DirectEmit).
      bool Swap, Invert, Signed;
      switch (P) {
      case qir::CmpPred::SLt:
        Swap = false; Invert = false; Signed = true; break;
      case qir::CmpPred::SGt:
        Swap = true; Invert = false; Signed = true; break;
      case qir::CmpPred::SLe:
        Swap = true; Invert = true; Signed = true; break;
      case qir::CmpPred::SGe:
        Swap = false; Invert = true; Signed = true; break;
      case qir::CmpPred::ULt:
        Swap = false; Invert = false; Signed = false; break;
      case qir::CmpPred::UGt:
        Swap = true; Invert = false; Signed = false; break;
      case qir::CmpPred::ULe:
        Swap = true; Invert = true; Signed = false; break;
      default:
        Swap = false; Invert = true; Signed = false; break;
      }
      Reg XLo = Swap ? Reg::RCX : Reg::RAX, XHi = Swap ? Reg::R8 : Reg::RDX;
      Reg YLo = Swap ? Reg::RAX : Reg::RCX, YHi = Swap ? Reg::RDX : Reg::R8;
      B.A.movRR(Width::W64, Reg::R11, XHi);
      B.A.aluRR(Alu::Cmp, Width::W64, XLo, YLo);
      B.A.aluRR(Alu::Sbb, Width::W64, Reg::R11, YHi);
      B.A.setcc(Signed ? Cond::L : Cond::B, Reg::RAX);
      if (Invert)
        B.A.aluRI(Alu::Xor, Width::W32, Reg::RAX, 1);
      B.A.movzxRR(Width::W8, Reg::RAX, Reg::RAX);
    }
    add(Opcode::ICmp, static_cast<uint8_t>(Type::I128),
        static_cast<uint8_t>(P), B.take());
  }

  // --- Float compares -----------------------------------------------------
  for (qir::CmpPred P : AllPreds) {
    FB B;
    switch (P) {
    case qir::CmpPred::Eq: // ordered eq: ZF=1 && PF=0
      B.A.ucomisd(Xmm::XMM0, Xmm::XMM1);
      B.A.setcc(Cond::E, Reg::RAX);
      B.A.setcc(Cond::NP, Reg::R11);
      B.A.aluRR(Alu::And, Width::W8, Reg::RAX, Reg::R11);
      break;
    case qir::CmpPred::Ne: // unordered ne: ZF=0 || PF=1
      B.A.ucomisd(Xmm::XMM0, Xmm::XMM1);
      B.A.setcc(Cond::NE, Reg::RAX);
      B.A.setcc(Cond::P, Reg::R11);
      B.A.aluRR(Alu::Or, Width::W8, Reg::RAX, Reg::R11);
      break;
    case qir::CmpPred::SGt:
    case qir::CmpPred::UGt:
      B.A.ucomisd(Xmm::XMM0, Xmm::XMM1);
      B.A.setcc(Cond::A, Reg::RAX);
      break;
    case qir::CmpPred::SGe:
    case qir::CmpPred::UGe:
      B.A.ucomisd(Xmm::XMM0, Xmm::XMM1);
      B.A.setcc(Cond::AE, Reg::RAX);
      break;
    case qir::CmpPred::SLt:
    case qir::CmpPred::ULt:
      B.A.ucomisd(Xmm::XMM1, Xmm::XMM0);
      B.A.setcc(Cond::A, Reg::RAX);
      break;
    default: // SLe / ULe
      B.A.ucomisd(Xmm::XMM1, Xmm::XMM0);
      B.A.setcc(Cond::AE, Reg::RAX);
      break;
    }
    B.A.movzxRR(Width::W8, Reg::RAX, Reg::RAX);
    add(Opcode::FCmp, 0, static_cast<uint8_t>(P), B.take());
  }

  // --- Select -------------------------------------------------------------
  // Condition in R9; true value in RAX(/RDX or XMM0), false in RCX(/R8 or
  // XMM1).
  {
    FB B;
    B.A.testRR(Width::W64, Reg::R9, Reg::R9);
    B.A.cmovcc(Cond::E, Width::W64, Reg::RAX, Reg::RCX);
    add(Opcode::Select, SelOneLane, 0, B.take());
  }
  {
    FB B;
    B.A.testRR(Width::W64, Reg::R9, Reg::R9);
    B.A.cmovcc(Cond::E, Width::W64, Reg::RAX, Reg::RCX);
    B.A.cmovcc(Cond::E, Width::W64, Reg::RDX, Reg::R8);
    add(Opcode::Select, SelTwoLane, 0, B.take());
  }
  {
    FB B;
    Label Skip = B.A.newLabel();
    B.A.testRR(Width::W64, Reg::R9, Reg::R9);
    B.A.jcc(Cond::NE, Skip);
    B.A.movsdXX(Xmm::XMM0, Xmm::XMM1);
    B.A.bind(Skip);
    add(Opcode::Select, SelF64, 0, B.take());
  }

  // --- Width changes ------------------------------------------------------
  {
    // ZExt to i128: the canonical lo lane is already in RAX.
    FB B;
    B.A.movRI32(Reg::RDX, 0);
    add(Opcode::ZExt, static_cast<uint8_t>(Type::I128), 0, B.take());
  }
  for (Type From : {Type::I1, Type::I8, Type::I16, Type::I32, Type::I64}) {
    for (Type To : {Type::I8, Type::I16, Type::I32, Type::I64, Type::I128}) {
      if (To != Type::I128 && qir::intBits(To) <= qir::intBits(From))
        continue;
      FB B;
      if (From == Type::I1) {
        B.A.negR(Width::W64, Reg::RAX); // i1: 0 -> 0, 1 -> -1
      } else if (From != Type::I64) {
        B.A.movsxRR(widthOf(From), Reg::RAX, Reg::RAX);
      }
      if (To != Type::I128 && To != Type::I64) {
        B.A.movRI(Reg::R11, maskFor(To));
        B.A.aluRR(Alu::And, Width::W64, Reg::RAX, Reg::R11);
      }
      if (To == Type::I128) {
        B.A.movRR(Width::W64, Reg::RDX, Reg::RAX);
        B.A.shiftRI(Sh::Sar, Width::W64, Reg::RDX, 63);
      }
      add(Opcode::SExt, static_cast<uint8_t>(From),
          static_cast<uint8_t>(To), B.take());
    }
  }
  for (Type To : {Type::I1, Type::I8, Type::I16, Type::I32}) {
    FB B;
    B.A.movRI(Reg::R11, maskFor(To));
    B.A.aluRR(Alu::And, Width::W64, Reg::RAX, Reg::R11);
    add(Opcode::Trunc, static_cast<uint8_t>(To), 0, B.take());
  }
  for (Type From : {Type::I1, Type::I8, Type::I16, Type::I32, Type::I64}) {
    FB B;
    if (From != Type::I64)
      B.A.movsxRR(widthOf(From), Reg::RAX, Reg::RAX);
    B.A.cvtsi2sd(Xmm::XMM0, Reg::RAX);
    add(Opcode::SIToFP, static_cast<uint8_t>(From), 0, B.take());
  }
  for (Type To : {Type::I1, Type::I8, Type::I16, Type::I32, Type::I64}) {
    FB B;
    B.A.cvttsd2si(Reg::RAX, Xmm::XMM0);
    if (To != Type::I64) {
      B.A.movRI(Reg::R11, maskFor(To));
      B.A.aluRR(Alu::And, Width::W64, Reg::RAX, Reg::R11);
    }
    add(Opcode::FPToSI, static_cast<uint8_t>(To), 0, B.take());
  }

  // --- Memory -------------------------------------------------------------
  // Pointer in RAX for loads; value in RAX(/RDX), pointer in RCX for
  // stores. F64 moves raw bits through GP registers (slots hold raw bits).
  for (Type Ty : {Type::I1, Type::I8, Type::I16, Type::I32, Type::I64,
                  Type::Ptr, Type::F64, Type::I128, Type::D128}) {
    {
      FB B;
      if (qir::isTwoLane(Ty)) {
        B.A.movRM(Width::W64, Reg::RDX, Mem::base(Reg::RAX, 8));
        B.A.movRM(Width::W64, Reg::RAX, Mem::base(Reg::RAX));
      } else if (Ty == Type::I64 || Ty == Type::Ptr || Ty == Type::F64) {
        B.A.movRM(Width::W64, Reg::RAX, Mem::base(Reg::RAX));
      } else {
        B.A.movzxRM(widthOf(Ty), Reg::RAX, Mem::base(Reg::RAX));
      }
      add(Opcode::Load, static_cast<uint8_t>(Ty), 0, B.take());
    }
    {
      FB B;
      if (qir::isTwoLane(Ty)) {
        B.A.movMR(Width::W64, Mem::base(Reg::RCX), Reg::RAX);
        B.A.movMR(Width::W64, Mem::base(Reg::RCX, 8), Reg::RDX);
      } else if (Ty == Type::F64) {
        B.A.movMR(Width::W64, Mem::base(Reg::RCX), Reg::RAX);
      } else {
        B.A.movMR(widthOf(Ty), Mem::base(Reg::RCX), Reg::RAX);
      }
      add(Opcode::Store, static_cast<uint8_t>(Ty), 0, B.take());
    }
  }

  // --- Gep ----------------------------------------------------------------
  // Base in RAX, index (if any) in RCX; displacement is a Disp32 patch.
  {
    FB B;
    B.A.lea(Reg::RAX, Mem::base(Reg::RAX, DISP_PLACEHOLDER));
    B.mark(Patch::Kind::Disp32);
    add(Opcode::Gep, 0, 0, B.take());
  }
  for (uint8_t Scale : {1, 2, 4, 8}) {
    FB B;
    B.A.lea(Reg::RAX,
            Mem::baseIndex(Reg::RAX, Reg::RCX, Scale, DISP_PLACEHOLDER));
    B.mark(Patch::Kind::Disp32);
    add(Opcode::Gep, Scale, 0, B.take());
  }
  {
    FB B;
    B.A.imulRRI(Width::W64, Reg::R11, Reg::RCX, DISP_PLACEHOLDER);
    B.mark(Patch::Kind::Imm32);
    B.A.lea(Reg::RAX,
            Mem::baseIndex(Reg::RAX, Reg::R11, 1, DISP_PLACEHOLDER));
    B.mark(Patch::Kind::Disp32);
    add(Opcode::Gep, GepGenericScale, 0, B.take());
  }

  // --- Atomics ------------------------------------------------------------
  // Value in RAX, pointer in RCX; the old value replaces RAX.
  for (Type Ty : {Type::I32, Type::I64}) {
    FB B;
    B.A.lockXaddMR(aluWidth(Ty), Mem::base(Reg::RCX), Reg::RAX);
    add(Opcode::AtomicAdd, static_cast<uint8_t>(Ty), 0, B.take());
  }
}
