//===- stencil/Stencils.h - Pre-built copy-and-patch stencils ---*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil table for the copy-and-patch back-end: pre-encoded x86-64
/// fragments (built once per process through x64::Assembler, the moral
/// equivalent of a build-time stencil generator — tools/qcf_stencilgen
/// dumps the same table for inspection) plus the patch records describing
/// which bytes the compiler must fill in. Fragments come in two flavours:
///
///  * structural fragments — frame-slot loads/stores, prologue/epilogue,
///    continuation jumps, the runtime-call core, trap stubs — which the
///    compiler strings together around every operation, and
///  * operation cores — one fragment per (opcode x type x variant)
///    implementing the operation on a fixed register convention:
///    operand A in RAX(/RDX for the high lane), operand B in RCX(/R8),
///    select conditions in R9, f64 operands in XMM0/XMM1; results land in
///    RAX(/RDX) or XMM0.
///
/// The cores mirror DirectEmit's canonicalization contract exactly (every
/// value zero-extended to its 64-bit lane, narrow ALU ops at 32 bits with
/// re-canonicalization) so the two back-ends are differentially
/// interchangeable.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_STENCIL_STENCILS_H
#define QCF_STENCIL_STENCILS_H

#include "qir/Opcode.h"
#include "qir/Type.h"
#include <cstdint>
#include <map>
#include <vector>

namespace qcf::stencil {

/// One patchable field inside a fragment. \c Off is the byte offset of the
/// field relative to the fragment start; the field is 4 bytes wide except
/// for \c Imm64.
struct Patch {
  enum class Kind : uint8_t {
    Disp32,  ///< rbp-relative frame-slot displacement (or Gep disp).
    Imm32,   ///< 32-bit immediate (frame size, generic Gep scale).
    Imm64,   ///< 64-bit immediate (constants, runtime-call targets).
    Rel32,   ///< continuation jump; the compiler supplies the target.
    TrapOvf, ///< rel32 to the per-function overflow trap stub.
    TrapDiv, ///< rel32 to the per-function divide-by-zero trap stub.
  };
  Kind K;
  uint16_t Off;
};

const char *patchKindName(Patch::Kind K);

/// A pre-encoded machine-code fragment plus its patch records.
struct Fragment {
  std::vector<uint8_t> Bytes;
  std::vector<Patch> Patches;
};

/// Variant discriminators for Select cores.
enum : uint8_t { SelOneLane = 0, SelTwoLane = 1, SelF64 = 2 };
/// Gep core variants: 0 = no index; 1/2/4/8 = lea with that scale;
/// GepGenericScale = imul by an arbitrary imm32 scale, then lea.
enum : uint8_t { GepGenericScale = 9 };

/// The process-wide stencil table. Built eagerly on first use (thread-safe
/// function-local static); immutable afterwards.
class StencilTable {
public:
  static const StencilTable &get();

  // --- Structural fragments -----------------------------------------------
  Fragment Prologue;    ///< push rbp; mov rbp,rsp; sub rsp,imm32 (Imm32)
  Fragment Epilogue;    ///< mov rsp,rbp; pop rbp; ret
  Fragment Ud2;         ///< ud2
  Fragment Jmp;         ///< jmp rel32 (Rel32)
  Fragment TestJnz;     ///< test rax,rax; jnz rel32 (Rel32)
  /// jcc rel32 (Rel32), indexed by qir::CmpPred: the fused ICmp+CondBr
  /// form, branching on the comparison's still-live flags (setcc, movzx,
  /// and the home-slot store between cmp and branch touch no flags).
  Fragment JccPred[10];
  Fragment CallR10;     ///< movabs r10,imm64 (Imm64); call r10
  Fragment TrapStub[2]; ///< [0]=overflow, [1]=div-by-zero: mov edi,code;
                        ///< movabs r10,imm64 (Imm64: rt_trap); call; ud2

  Fragment LdA;    ///< mov rax, [rbp+disp32] (Disp32)
  Fragment LdAHi;  ///< mov rdx, [rbp+disp32]
  Fragment LdB;    ///< mov rcx, [rbp+disp32]
  Fragment LdBHi;  ///< mov r8, [rbp+disp32]
  Fragment LdCond; ///< mov r9, [rbp+disp32]
  Fragment LdAX;   ///< movsd xmm0, [rbp+disp32]
  Fragment LdBX;   ///< movsd xmm1, [rbp+disp32]
  Fragment StA;    ///< mov [rbp+disp32], rax
  Fragment StAHi;  ///< mov [rbp+disp32], rdx
  Fragment StAX;   ///< movsd [rbp+disp32], xmm0
  Fragment LdTmp;  ///< mov r11, [rbp+disp32] (phi shadow moves)
  Fragment StTmp;  ///< mov [rbp+disp32], r11

  Fragment LdArg[6];     ///< mov <argreg[i]>, [rbp+disp32]
  Fragment StParamGp[6]; ///< mov [rbp+disp32], <argreg[i]>
  Fragment StParamXmm[8]; ///< movsd [rbp+disp32], xmm<i>

  Fragment ConstA;   ///< movabs rax, imm64 (Imm64)
  Fragment ConstAHi; ///< movabs rdx, imm64 (Imm64)
  Fragment LeaSlotA; ///< lea rax, [rbp+disp32] (Disp32)

  // --- Operation cores ----------------------------------------------------

  /// Looks up an operation core; the discriminators are the operand/result
  /// type and a per-opcode variant (compare predicate, select class, Gep
  /// scale, extension source/target type). Asserts on a missing core.
  const Fragment &core(qir::Opcode Op, uint8_t A = 0, uint8_t B = 0) const;

  static uint32_t coreKey(qir::Opcode Op, uint8_t A, uint8_t B) {
    return (static_cast<uint32_t>(Op) << 16) | (static_cast<uint32_t>(A) << 8) |
           B;
  }

  /// All cores, keyed by coreKey(); ordered so qcf_stencilgen dumps are
  /// deterministic.
  const std::map<uint32_t, Fragment> &cores() const { return Cores; }

private:
  StencilTable();
  void add(qir::Opcode Op, uint8_t A, uint8_t B, Fragment F);
  std::map<uint32_t, Fragment> Cores;
};

} // namespace qcf::stencil

#endif // QCF_STENCIL_STENCILS_H
