//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena allocator. Query compilation allocates many small,
/// short-lived objects (IR nodes, DAG nodes, MC fragments); arenas make
/// allocation a pointer increment and deallocation a single free, which is
/// one of the data-structure choices the reproduced paper highlights as a
/// compile-time lever (Umbra IR vs. LLVM's per-object heap allocation).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_ARENA_H
#define QCF_SUPPORT_ARENA_H

#include "support/Compiler.h"
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

namespace qcf {

/// A bump-pointer allocator backed by geometrically growing slabs.
///
/// Objects allocated from an arena are never individually freed; their
/// destructors are NOT run. Only use it for trivially destructible payloads
/// or objects whose destructor is a no-op.
class Arena {
public:
  explicit Arena(size_t InitialSlabBytes = 16 * 1024)
      : NextSlabBytes(InitialSlabBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  Arena(Arena &&Other) noexcept { *this = std::move(Other); }
  Arena &operator=(Arena &&Other) noexcept {
    if (this != &Other) {
      freeSlabs();
      Slabs = std::move(Other.Slabs);
      Cur = Other.Cur;
      End = Other.End;
      NextSlabBytes = Other.NextSlabBytes;
      Allocated = Other.Allocated;
      NumAllocs = Other.NumAllocs;
      Other.Slabs.clear();
      Other.Cur = Other.End = nullptr;
      Other.Allocated = 0;
      Other.NumAllocs = 0;
    }
    return *this;
  }

  ~Arena() { freeSlabs(); }

  /// Allocates \p Bytes with the given alignment. Never returns null.
  void *allocate(size_t Bytes, size_t Align = 8) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
    if (QCF_UNLIKELY(Aligned + Bytes > reinterpret_cast<uintptr_t>(End))) {
      growSlab(Bytes + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Bytes);
    Allocated += Bytes;
    ++NumAllocs;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a T in the arena. The destructor will not run.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(A)...);
  }

  /// Allocates an uninitialized array of \p N elements of T.
  template <typename T> T *allocateArray(size_t N) {
    return static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
  }

  /// Copies a string (plus NUL) into the arena and returns the copy.
  const char *copyString(const char *Str, size_t Len) {
    char *Mem = allocateArray<char>(Len + 1);
    std::memcpy(Mem, Str, Len);
    Mem[Len] = 0;
    return Mem;
  }

  /// Total bytes handed out (excluding alignment padding and slab slack).
  size_t bytesAllocated() const { return Allocated; }

  /// Number of allocate() calls served since construction / reset / clear.
  size_t numAllocations() const { return NumAllocs; }

  /// Releases all memory and resets the arena to its initial state.
  void reset() {
    freeSlabs();
    Slabs.clear();
    Cur = End = nullptr;
    Allocated = 0;
    NumAllocs = 0;
  }

  /// Forgets every allocation but retains the largest slab for reuse, so
  /// a per-function compile loop reaches steady state with zero mallocs
  /// (the arena variant of LLVM BumpPtrAllocator::Reset).
  void clear() {
    if (!Slabs.empty()) {
      // Slabs grow geometrically, so the newest is the largest; keep it.
      Slab Keep = Slabs.back();
      Slabs.pop_back();
      freeSlabs();
      Slabs.assign(1, Keep);
      Cur = Keep.Base;
      End = Keep.Base + Keep.Bytes;
    }
    Allocated = 0;
    NumAllocs = 0;
  }

private:
  struct Slab {
    char *Base;
    size_t Bytes;
  };

  void growSlab(size_t MinBytes) {
    size_t SlabBytes = NextSlabBytes;
    if (SlabBytes < MinBytes)
      SlabBytes = MinBytes;
    NextSlabBytes = NextSlabBytes * 2;
    char *Base = static_cast<char *>(::operator new(SlabBytes));
    Slabs.push_back({Base, SlabBytes});
    Cur = Base;
    End = Base + SlabBytes;
  }

  void freeSlabs() {
    for (const Slab &S : Slabs)
      ::operator delete(S.Base);
  }

  std::vector<Slab> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextSlabBytes;
  size_t Allocated = 0;
  size_t NumAllocs = 0;
};

/// Standard-library allocator over an Arena: containers draw their
/// buffers from the arena, deallocate is a no-op. The arena must outlive
/// every container bound to it.
template <typename T> class ArenaAllocator {
public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  ArenaAllocator(Arena &A) : A(&A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &O) : A(O.arena()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *, size_t) noexcept {}

  Arena *arena() const { return A; }

  template <typename U> bool operator==(const ArenaAllocator<U> &O) const {
    return A == O.arena();
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &O) const {
    return A != O.arena();
  }

private:
  Arena *A;
};

/// A vector whose buffer lives in an arena. Growth abandons the old
/// buffer in the arena (bump allocators never free); reserve() up front
/// where the size is predictable.
template <typename T> using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace qcf

#endif // QCF_SUPPORT_ARENA_H
