//===- support/Bitset.h - Dense dynamic bitset ------------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense dynamically sized bitset used for liveness analysis (DirectEmit's
/// block-granularity liveness, MLVM's register liveness) and dominator sets.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_BITSET_H
#define QCF_SUPPORT_BITSET_H

#include "support/Compiler.h"
#include <cstdint>
#include <vector>

namespace qcf {

/// Fixed-universe dense bitset with the set operations compilers need.
class Bitset {
public:
  Bitset() = default;
  explicit Bitset(size_t NumBits)
      : Words((NumBits + 63) / 64, 0), NumBits(NumBits) {}

  size_t size() const { return NumBits; }

  void resize(size_t NewBits) {
    Words.resize((NewBits + 63) / 64, 0);
    NumBits = NewBits;
  }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// this |= Other. \returns true if this changed.
  bool unionWith(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "bitset universe mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// this &= ~Other.
  void subtract(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "bitset universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~Other.Words[I];
  }

  /// this &= Other.
  void intersectWith(const Bitset &Other) {
    assert(NumBits == Other.NumBits && "bitset universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= Other.Words[I];
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  size_t count() const {
    size_t Total = 0;
    for (uint64_t W : Words)
      Total += static_cast<size_t>(__builtin_popcountll(W));
    return Total;
  }

  bool operator==(const Bitset &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Invokes \p Fn for every set bit index in ascending order.
  template <typename FnT> void forEachSetBit(FnT Fn) const {
    for (size_t WI = 0, WE = Words.size(); WI != WE; ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

private:
  std::vector<uint64_t> Words;
  size_t NumBits = 0;
};

} // namespace qcf

#endif // QCF_SUPPORT_BITSET_H
