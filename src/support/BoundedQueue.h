//===- support/BoundedQueue.h - Bounded two-priority work queue -*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, closable, two-priority MPMC queue. Producers block while the
/// queue is at capacity (back-pressure instead of unbounded memory growth
/// under compile storms); consumers block while it is empty. High-priority
/// items are always dequeued before low-priority ones, FIFO within each
/// class. Closing wakes everyone: pushes fail, pops drain the remaining
/// items and then fail. Built for backend::CompileService, but generic.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_BOUNDEDQUEUE_H
#define QCF_SUPPORT_BOUNDEDQUEUE_H

#include <condition_variable>
#include <deque>
#include <mutex>

namespace qcf {

template <typename T> class BoundedQueue {
public:
  /// \p Capacity bounds the number of queued items (0 = unbounded).
  explicit BoundedQueue(size_t Capacity = 0) : Capacity(Capacity) {}

  BoundedQueue(const BoundedQueue &) = delete;
  BoundedQueue &operator=(const BoundedQueue &) = delete;

  /// Enqueues \p V, blocking while the queue is full. \returns false if
  /// the queue was (or became) closed, in which case \p V was dropped.
  bool push(T V, bool HighPriority = false) {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotFull.wait(Lock, [&] { return Closed || !full(); });
    if (Closed)
      return false;
    (HighPriority ? High : Low).push_back(std::move(V));
    HighWater = std::max(HighWater, High.size() + Low.size());
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues into \p Out, blocking while the queue is empty. \returns
  /// false once the queue is closed *and* drained.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [&] { return Closed || !High.empty() || !Low.empty(); });
    std::deque<T> &Q = High.empty() ? Low : High;
    if (Q.empty())
      return false; // Closed and drained.
    Out = std::move(Q.front());
    Q.pop_front();
    NotFull.notify_one();
    return true;
  }

  /// Outcome of a non-blocking push.
  enum class PushResult : uint8_t { Ok, Full, Closed };

  /// Non-blocking enqueue: never waits for capacity. The caller decides
  /// what a Full queue means (typed rejection, load-shedding, fallback to
  /// inline work) instead of this queue deciding for it by blocking.
  PushResult tryPush(T V, bool HighPriority = false) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Closed)
      return PushResult::Closed;
    if (full())
      return PushResult::Full;
    (HighPriority ? High : Low).push_back(std::move(V));
    HighWater = std::max(HighWater, High.size() + Low.size());
    NotEmpty.notify_one();
    return PushResult::Ok;
  }

  /// Removes the *newest* low-priority item into \p Out — the
  /// load-shedding victim: shedding the most recently deferred
  /// speculative work preserves FIFO progress for everything older.
  /// \returns false if no low-priority item is queued.
  bool shedLowest(T &Out) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Low.empty())
      return false;
    Out = std::move(Low.back());
    Low.pop_back();
    NotFull.notify_one();
    return true;
  }

  /// Non-blocking dequeue; \returns false if the queue is empty.
  bool tryPop(T &Out) {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::deque<T> &Q = High.empty() ? Low : High;
    if (Q.empty())
      return false;
    Out = std::move(Q.front());
    Q.pop_front();
    NotFull.notify_one();
    return true;
  }

  /// Closes the queue: all blocked pushes fail, blocked pops drain what is
  /// left and then fail. Idempotent.
  void close() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return High.size() + Low.size();
  }

  /// The capacity this queue was constructed with (0 = unbounded).
  size_t capacity() const { return Capacity; }

  /// Largest number of items ever queued at once.
  size_t highWater() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return HighWater;
  }

private:
  bool full() const { return Capacity && High.size() + Low.size() >= Capacity; }

  const size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty, NotFull;
  std::deque<T> High, Low;
  size_t HighWater = 0;
  bool Closed = false;
};

} // namespace qcf

#endif // QCF_SUPPORT_BOUNDEDQUEUE_H
