//===- support/ByteIo.h - Bounds-checked byte serialization -----*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little helpers for the persistent code cache's blob payloads: an
/// appending ByteWriter and a bounds-checked ByteReader. The reader never
/// throws and never reads past the end — every accessor reports failure
/// through ok(), because cache blobs come from disk and a truncated or
/// corrupted file must degrade to "cache miss", not UB (ISSUE 5 failure
/// paths). All integers are little-endian (QCF targets x86-64 only).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_BYTEIO_H
#define QCF_SUPPORT_BYTEIO_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace qcf {

/// Append-only serializer over a std::vector<uint8_t>.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }

  /// Length-prefixed byte string (u64 length + raw bytes).
  void bytes(const void *Data, size_t Len) {
    u64(Len);
    raw(Data, Len);
  }
  void str(const std::string &S) { bytes(S.data(), S.size()); }

  void raw(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Len);
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked deserializer over a borrowed byte range. After any
/// failed read, ok() is false and every subsequent accessor returns a
/// zero value; callers check ok() once at the end (or at natural
/// checkpoints) instead of after every field.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Len)
      : P(static_cast<const uint8_t *>(Data)), End(P + Len) {}

  bool ok() const { return Ok; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, 8);
    return V;
  }

  /// Reads a u64 length prefix and returns a borrowed view of that many
  /// bytes (nullptr + 0 on failure). The view aliases the input buffer.
  std::pair<const uint8_t *, size_t> bytes() {
    uint64_t Len = u64();
    if (!Ok || Len > remaining()) {
      Ok = false;
      return {nullptr, 0};
    }
    const uint8_t *Start = P;
    P += Len;
    return {Start, static_cast<size_t>(Len)};
  }

  std::string str() {
    auto [Data, Len] = bytes();
    return Ok ? std::string(reinterpret_cast<const char *>(Data), Len)
              : std::string();
  }

  void raw(void *Out, size_t Len) {
    if (!Ok || Len > remaining()) {
      Ok = false;
      std::memset(Out, 0, Len);
      return;
    }
    std::memcpy(Out, P, Len);
    P += Len;
  }

private:
  const uint8_t *P;
  const uint8_t *End;
  bool Ok = true;
};

} // namespace qcf

#endif // QCF_SUPPORT_BYTEIO_H
