//===- support/Cancel.h - Cooperative cancellation token --------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation + deadline token, shared by the executor
/// (morsel-boundary checks), the compile service (cancel-before-run), and
/// the serving layer (session close / idle eviction / query deadlines).
/// One token is owned per session; producers call cancel() or arm a
/// deadline, consumers poll stopped() at natural preemption points. Both
/// signals are monotonic for the lifetime of one query: cancel never
/// un-fires and the deadline only moves by reset() between queries, so a
/// consumer that observed stopped() can rely on every later observer
/// agreeing with it.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_CANCEL_H
#define QCF_SUPPORT_CANCEL_H

#include "support/TimeTrace.h"
#include <atomic>
#include <cstdint>

namespace qcf {

class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Requests cancellation. Consumers observe it at the next check point
  /// (morsel pickup, compile-wait tick, pipeline boundary).
  void cancel() { Cancelled.store(true, std::memory_order_release); }

  /// Arms an absolute deadline (nowNs() clock); 0 disarms.
  void setDeadlineNs(uint64_t AbsNs) {
    DeadlineNs.store(AbsNs, std::memory_order_release);
  }

  uint64_t deadlineNs() const {
    return DeadlineNs.load(std::memory_order_acquire);
  }

  bool cancelled() const { return Cancelled.load(std::memory_order_acquire); }

  /// True once the token fired: explicit cancel, or the deadline passed.
  bool stopped(uint64_t NowNs) const {
    if (Cancelled.load(std::memory_order_acquire))
      return true;
    uint64_t D = DeadlineNs.load(std::memory_order_acquire);
    return D != 0 && NowNs >= D;
  }
  bool stopped() const { return stopped(nowNs()); }

  /// Re-arms the token for a new query (serving layer: one token per
  /// session, reset between executions). Not safe to call while a query
  /// is still consuming the token.
  void reset() {
    Cancelled.store(false, std::memory_order_release);
    DeadlineNs.store(0, std::memory_order_release);
  }

private:
  std::atomic<bool> Cancelled{false};
  std::atomic<uint64_t> DeadlineNs{0};
};

} // namespace qcf

#endif // QCF_SUPPORT_CANCEL_H
