//===- support/Compiler.h - Common compiler macros --------------*- C++ -*-===//
//
// Part of the QCF project, a reproduction of "Compile-Time Analysis of
// Compiler Frameworks for Query Compilation" (CGO 2024).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability and diagnostics helpers shared by all QCF libraries.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_COMPILER_H
#define QCF_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace qcf {

/// Marks a point in the code that must never be reached. Aborts with a
/// message in all build modes; query compilation bugs must not silently
/// produce wrong machine code.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal, non-recoverable usage or environment error.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "qcf fatal error: %s\n", Msg);
  std::abort();
}

} // namespace qcf

#define QCF_UNREACHABLE(msg) ::qcf::unreachableImpl(msg, __FILE__, __LINE__)

#if defined(__GNUC__)
#define QCF_LIKELY(x) __builtin_expect(!!(x), 1)
#define QCF_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define QCF_LIKELY(x) (x)
#define QCF_UNLIKELY(x) (x)
#endif

#endif // QCF_SUPPORT_COMPILER_H
