//===- support/Hash.h - CRC32 and long-mul-fold hashing ---------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two hash primitives the paper attributes to Umbra (§III-A): hardware
/// CRC-32C when available, and otherwise "long-mul-fold" — a 64x64→128-bit
/// multiplication whose halves are XOR-folded into a 64-bit result. Hash
/// joins are the hottest construct in compiled queries, so every back-end
/// must be able to emit these operations natively.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_HASH_H
#define QCF_SUPPORT_HASH_H

#include <cstdint>
#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace qcf {

/// Whether the CPU executing this build provides the crc32 instruction.
inline constexpr bool hasHardwareCrc32() {
#if defined(__SSE4_2__)
  return true;
#else
  return false;
#endif
}

/// CRC-32C of a 64-bit value folded into \p Seed (one crc32q instruction).
inline uint64_t crc32u64(uint64_t Seed, uint64_t Value) {
#if defined(__SSE4_2__)
  return _mm_crc32_u64(Seed, Value);
#else
  // Software CRC-32C (Castagnoli) bitwise fallback; only used on hosts
  // without SSE4.2 and in differential tests.
  uint32_t Crc = static_cast<uint32_t>(Seed);
  for (int I = 0; I != 8; ++I) {
    Crc ^= static_cast<uint8_t>(Value >> (I * 8));
    for (int B = 0; B != 8; ++B)
      Crc = (Crc >> 1) ^ (0x82f63b78u & (0u - (Crc & 1)));
  }
  return Crc;
#endif
}

/// 64x64→128-bit multiply with the low and high halves XOR-combined
/// ("long-mul-fold", §III-A). The multiplier constant should be odd.
inline uint64_t longMulFold(uint64_t A, uint64_t B) {
  unsigned __int128 Product =
      static_cast<unsigned __int128>(A) * static_cast<unsigned __int128>(B);
  return static_cast<uint64_t>(Product) ^
         static_cast<uint64_t>(Product >> 64);
}

/// Umbra-style 64-bit value hash: two interleaved crc32 streams combined
/// with a rotate, mirroring the IR sequence shown in the paper's Listing 2.
inline uint64_t hashU64(uint64_t Value) {
  if constexpr (hasHardwareCrc32()) {
    uint64_t A = crc32u64(0xf45f077febc43d1bull, Value);
    uint64_t B = crc32u64(0xb9935cc9fab5b271ull, Value);
    uint64_t Combined = (A << 32) | (B & 0xffffffffull);
    return (Combined >> 32) | (Combined << 32);
  }
  return longMulFold(Value, 0x9e3779b97f4a7c15ull);
}

/// Hash of arbitrary bytes; used for string keys.
inline uint64_t hashBytes(const void *Data, size_t Len,
                          uint64_t Seed = 0x2545f4914f6cdd1dull) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed ^ (Len * 0x9e3779b97f4a7c15ull);
  while (Len >= 8) {
    uint64_t Word;
    std::memcpy(&Word, P, 8);
    H = longMulFold(H ^ Word, 0xff51afd7ed558ccdull);
    P += 8;
    Len -= 8;
  }
  uint64_t Tail = 0;
  for (size_t I = 0; I != Len; ++I)
    Tail |= static_cast<uint64_t>(P[I]) << (I * 8);
  if (Len)
    H = longMulFold(H ^ Tail, 0xc4ceb9fe1a85ec53ull);
  return H;
}

} // namespace qcf

#endif // QCF_SUPPORT_HASH_H
