//===- support/InlineVector.h - Vector with inline storage ------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with small-size inline storage, in the spirit of
/// llvm::SmallVector. Most IR instructions have 0-3 operands and most basic
/// blocks have 1-2 successors, so avoiding a heap allocation for the common
/// case measurably reduces compile time — one of the themes of the
/// reproduced paper.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_INLINEVECTOR_H
#define QCF_SUPPORT_INLINEVECTOR_H

#include "support/Compiler.h"
#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <type_traits>
#include <utility>

namespace qcf {

/// Vector with \p N elements of inline storage before spilling to the heap.
/// Only supports trivially copyable or movable element types used in QCF.
template <typename T, unsigned N> class InlineVector {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  InlineVector() : Data(inlineData()), Size(0), Capacity(N) {}

  InlineVector(std::initializer_list<T> Init) : InlineVector() {
    reserve(Init.size());
    for (const T &V : Init)
      push_back(V);
  }

  InlineVector(const InlineVector &Other) : InlineVector() {
    reserve(Other.Size);
    for (size_t I = 0; I != Other.Size; ++I)
      new (Data + I) T(Other.Data[I]);
    Size = Other.Size;
  }

  InlineVector(InlineVector &&Other) noexcept : InlineVector() {
    if (Other.isInline()) {
      for (size_t I = 0; I != Other.Size; ++I)
        new (Data + I) T(std::move(Other.Data[I]));
      Size = Other.Size;
      Other.clear();
    } else {
      Data = Other.Data;
      Size = Other.Size;
      Capacity = Other.Capacity;
      Other.Data = Other.inlineData();
      Other.Size = 0;
      Other.Capacity = N;
    }
  }

  InlineVector &operator=(const InlineVector &Other) {
    if (this == &Other)
      return *this;
    clear();
    reserve(Other.Size);
    for (size_t I = 0; I != Other.Size; ++I)
      new (Data + I) T(Other.Data[I]);
    Size = Other.Size;
    return *this;
  }

  InlineVector &operator=(InlineVector &&Other) noexcept {
    if (this == &Other)
      return *this;
    destroyAll();
    if (Other.isInline()) {
      Data = inlineData();
      Capacity = N;
      for (size_t I = 0; I != Other.Size; ++I)
        new (Data + I) T(std::move(Other.Data[I]));
      Size = Other.Size;
      Other.clear();
    } else {
      Data = Other.Data;
      Size = Other.Size;
      Capacity = Other.Capacity;
      Other.Data = Other.inlineData();
      Other.Size = 0;
      Other.Capacity = N;
    }
    return *this;
  }

  ~InlineVector() { destroyAll(); }

  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  T &operator[](size_t I) {
    assert(I < Size && "InlineVector index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size && "InlineVector index out of range");
    return Data[I];
  }

  T &front() { return (*this)[0]; }
  T &back() { return (*this)[Size - 1]; }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Size - 1]; }

  void push_back(const T &V) {
    if (QCF_UNLIKELY(Size == Capacity))
      grow(Size + 1);
    new (Data + Size) T(V);
    ++Size;
  }

  void push_back(T &&V) {
    if (QCF_UNLIKELY(Size == Capacity))
      grow(Size + 1);
    new (Data + Size) T(std::move(V));
    ++Size;
  }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (QCF_UNLIKELY(Size == Capacity))
      grow(Size + 1);
    T *Slot = new (Data + Size) T(std::forward<Args>(A)...);
    ++Size;
    return *Slot;
  }

  void pop_back() {
    assert(Size && "pop_back on empty InlineVector");
    --Size;
    Data[Size].~T();
  }

  void clear() {
    destroyElems();
    Size = 0;
  }

  void resize(size_t NewSize) {
    if (NewSize < Size) {
      for (size_t I = NewSize; I != Size; ++I)
        Data[I].~T();
    } else {
      reserve(NewSize);
      for (size_t I = Size; I != NewSize; ++I)
        new (Data + I) T();
    }
    Size = NewSize;
  }

  void reserve(size_t NewCap) {
    if (NewCap > Capacity)
      grow(NewCap);
  }

  void append(const T *First, const T *Last) {
    reserve(Size + (Last - First));
    for (const T *I = First; I != Last; ++I)
      push_back(*I);
  }

  bool operator==(const InlineVector &Other) const {
    return Size == Other.Size && std::equal(begin(), end(), Other.begin());
  }

private:
  bool isInline() const { return Data == inlineData(); }
  T *inlineData() { return reinterpret_cast<T *>(InlineStorage); }
  const T *inlineData() const {
    return reinterpret_cast<const T *>(InlineStorage);
  }

  void grow(size_t MinCap) {
    size_t NewCap = std::max(Capacity * 2, MinCap);
    T *NewData = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I != Size; ++I) {
      new (NewData + I) T(std::move(Data[I]));
      Data[I].~T();
    }
    if (!isInline())
      ::operator delete(Data);
    Data = NewData;
    Capacity = NewCap;
  }

  void destroyElems() {
    for (size_t I = 0; I != Size; ++I)
      Data[I].~T();
  }

  void destroyAll() {
    destroyElems();
    if (!isInline())
      ::operator delete(Data);
  }

  alignas(T) char InlineStorage[sizeof(T) * N];
  T *Data;
  size_t Size;
  size_t Capacity;
};

} // namespace qcf

#endif // QCF_SUPPORT_INLINEVECTOR_H
