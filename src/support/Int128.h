//===- support/Int128.h - 128-bit arithmetic with overflow ------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 128-bit integer helpers. SQL decimals are represented as 128-bit integers
/// (paper §III-A) and every arithmetic operation on user data carries an
/// overflow check, so both the runtime library and the compiled code paths
/// need overflow-reporting 128-bit primitives. The hand-optimized
/// multiplication with a 64-bit fast path mirrors the custom implementation
/// the paper describes for the LLVM and Cranelift back-ends (§V-A1, §VI-A1).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_INT128_H
#define QCF_SUPPORT_INT128_H

#include <cstdint>

namespace qcf {

using Int128 = __int128;
using UInt128 = unsigned __int128;

/// Builds an Int128 from its low/high 64-bit halves.
inline Int128 makeInt128(uint64_t Lo, uint64_t Hi) {
  return static_cast<Int128>(
      (static_cast<UInt128>(Hi) << 64) | static_cast<UInt128>(Lo));
}

inline uint64_t lo64(Int128 V) { return static_cast<uint64_t>(V); }
inline uint64_t hi64(Int128 V) {
  return static_cast<uint64_t>(static_cast<UInt128>(V) >> 64);
}

/// \returns true iff the addition overflowed.
inline bool addOverflow128(Int128 A, Int128 B, Int128 *Result) {
  return __builtin_add_overflow(A, B, Result);
}

/// \returns true iff the subtraction overflowed.
inline bool subOverflow128(Int128 A, Int128 B, Int128 *Result) {
  return __builtin_sub_overflow(A, B, Result);
}

/// \returns true iff \p V fits in a signed 64-bit integer.
inline bool fitsInInt64(Int128 V) {
  return V >= -(static_cast<Int128>(1) << 63) &&
         V < (static_cast<Int128>(1) << 63);
}

/// Hand-optimized 128-bit multiplication with overflow detection.
///
/// Fast path: when both operands fit in 64 bits — the overwhelmingly common
/// case for decimals — a single 64x64→128 multiply suffices and can never
/// overflow. The slow path composes partial products and detects overflow
/// from the discarded high parts.
///
/// \returns true iff the multiplication overflowed.
inline bool mulOverflow128(Int128 A, Int128 B, Int128 *Result) {
  if (fitsInInt64(A) && fitsInInt64(B)) {
    *Result = static_cast<Int128>(static_cast<int64_t>(A)) *
              static_cast<Int128>(static_cast<int64_t>(B));
    return false;
  }
  return __builtin_mul_overflow(A, B, Result);
}

/// \returns true iff the division overflows (only INT128_MIN / -1) or the
/// divisor is zero.
inline bool divOverflow128(Int128 A, Int128 B, Int128 *Result) {
  if (B == 0)
    return true;
  Int128 Min = static_cast<Int128>(1) << 127;
  if (A == Min && B == -1)
    return true;
  *Result = A / B;
  return false;
}

} // namespace qcf

#endif // QCF_SUPPORT_INT128_H
