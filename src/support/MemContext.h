//===- support/MemContext.h - Per-compile allocation context ----*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-compile compilation memory (DESIGN.md "Compilation memory"). The
/// paper names per-object heap allocation as a first-order compile-time
/// cost of LLVM-style back-ends; a MemContext bundles the bump arenas one
/// Backend::compile call allocates its IR/MIR nodes and scratch buffers
/// from, plus the telemetry that surfaces those allocations as
/// mem.<backend>.<phase>.bytes/allocs metrics.
///
/// Every node allocation goes through a MemPool, which runs in one of two
/// modes:
///
///   AllocMode::Heap   one operator new/delete per object — the paper-
///                     faithful cost model (LLVM's per-object allocation,
///                     §V-B1 module destruction). Counters double as a
///                     leak detector: liveObjects() must return to zero
///                     when a compile's ownership discipline is correct.
///   AllocMode::Arena  bump-pointer slabs; destroy() is a no-op and the
///                     whole object graph is released by clear()/reset in
///                     O(slabs). Production mode; measured by E14
///                     (bench_mlvm_ablations --alloc).
///
/// Because arena mode never runs node destructors, any heap-owning member
/// of a pool-allocated node must itself draw from the pool (PoolVector) or
/// be trivially destructible — that is the single ownership rule the
/// compilation layers follow.
///
/// The mode defaults to QCF_ALLOC=heap|arena (heap when unset, keeping
/// the E2/E3 benches paper-faithful).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_MEMCONTEXT_H
#define QCF_SUPPORT_MEMCONTEXT_H

#include "support/Arena.h"
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace qcf {

/// How compilation nodes are allocated; see file comment.
enum class AllocMode : uint8_t {
  Heap,  ///< Per-object new/delete (paper-faithful default).
  Arena, ///< Bump arenas, bulk release (production mode).
};

inline const char *allocModeName(AllocMode M) {
  return M == AllocMode::Heap ? "heap" : "arena";
}

/// Reads QCF_ALLOC (heap|arena). Unset or unrecognized means Heap so the
/// default benchmark numbers stay comparable with the paper.
inline AllocMode allocModeFromEnv() {
  const char *E = std::getenv("QCF_ALLOC");
  if (E && std::strcmp(E, "arena") == 0)
    return AllocMode::Arena;
  return AllocMode::Heap;
}

/// A mode-selected object pool: heap-backed with per-object free, or an
/// Arena with no-op frees. Counts bytes, allocations, and frees in both
/// modes (cumulative across clear(), so phase deltas stay monotonic).
class MemPool {
public:
  explicit MemPool(AllocMode Mode = AllocMode::Heap,
                   size_t InitialSlabBytes = 16 * 1024)
      : Mode(Mode), A(InitialSlabBytes) {}

  MemPool(const MemPool &) = delete;
  MemPool &operator=(const MemPool &) = delete;

  AllocMode mode() const { return Mode; }
  bool isArena() const { return Mode == AllocMode::Arena; }

  void *allocate(size_t Bytes, size_t Align = 8) {
    TotalBytes += Bytes;
    ++TotalAllocs;
    if (Mode == AllocMode::Arena)
      return A.allocate(Bytes, Align);
    assert(Align <= alignof(std::max_align_t) && "over-aligned pool object");
    return ::operator new(Bytes);
  }

  void deallocate(void *P, size_t /*Bytes*/) noexcept {
    // Unsized delete on purpose: destroy() may free through a base-class
    // pointer whose static size understates the object.
    ++TotalFrees;
    if (Mode == AllocMode::Arena)
      return; // Bump allocation: individual frees are no-ops.
    ::operator delete(P);
  }

  /// Constructs a T in the pool.
  template <typename T, typename... Args> T *create(Args &&...Arg) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(Arg)...);
  }

  /// Heap mode: runs the destructor and frees. Arena mode: no-op — the
  /// object (and everything it owns through the pool) dies with clear().
  template <typename T> void destroy(T *Obj) {
    if (Mode == AllocMode::Arena)
      return;
    Obj->~T();
    deallocate(Obj, sizeof(T));
  }

  /// Arena mode: drops every object and recycles the largest slab for the
  /// next function (steady-state compiles allocate nothing from malloc).
  /// Heap mode: nothing to do — objects were freed individually.
  void clear() {
    if (Mode == AllocMode::Arena)
      A.clear();
  }

  /// Cumulative telemetry (never reset by clear()).
  uint64_t bytesAllocated() const { return TotalBytes; }
  uint64_t numAllocs() const { return TotalAllocs; }
  uint64_t numFrees() const { return TotalFrees; }

  /// Outstanding allocations. In Heap mode this is the leak detector:
  /// a balanced compile returns it to its pre-compile value.
  int64_t liveObjects() const {
    return static_cast<int64_t>(TotalAllocs) - static_cast<int64_t>(TotalFrees);
  }

  /// Process-wide heap-mode pool that default-constructed containers and
  /// test fixtures bind to; real compiles pass an explicit MemContext.
  static MemPool &defaultHeap() {
    static MemPool P(AllocMode::Heap);
    return P;
  }

private:
  AllocMode Mode;
  Arena A;
  uint64_t TotalBytes = 0;
  uint64_t TotalAllocs = 0;
  uint64_t TotalFrees = 0;
};

/// Standard-library allocator over a MemPool. Stateful; containers bound
/// to the same pool compare equal (so move assignment steals buffers).
/// Default-constructed instances bind to MemPool::defaultHeap().
template <typename T> class PoolAllocator {
public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  PoolAllocator() : P(&MemPool::defaultHeap()) {}
  PoolAllocator(MemPool &Pool) : P(&Pool) {}
  PoolAllocator(MemPool *Pool) : P(Pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U> &O) : P(O.pool()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(P->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *Ptr, size_t N) noexcept {
    P->deallocate(Ptr, N * sizeof(T));
  }

  MemPool *pool() const { return P; }

  template <typename U> bool operator==(const PoolAllocator<U> &O) const {
    return P == O.pool();
  }
  template <typename U> bool operator!=(const PoolAllocator<U> &O) const {
    return P != O.pool();
  }

private:
  MemPool *P;
};

/// A vector whose buffer comes from a MemPool. This is the container for
/// members of pool-allocated nodes (operand tails, user lists): in arena
/// mode skipped destructors leak nothing because the buffer is arena
/// memory, in heap mode the destructor frees normally.
template <typename T> using PoolVector = std::vector<T, PoolAllocator<T>>;

/// The per-compile bundle of pools one Backend::compile call draws from;
/// see file comment for the ownership rules.
class MemContext {
public:
  explicit MemContext(AllocMode Mode = allocModeFromEnv())
      : ModeV(Mode), IrPool(Mode), MirPool(Mode), ScratchPool(Mode) {}

  AllocMode mode() const { return ModeV; }

  /// MLVM-IR object graph (Instruction/BasicBlock/Constant/Argument).
  MemPool &ir() { return IrPool; }
  /// MIR / gMIR / DAG-node allocation (MachineInstr and operand tails).
  MemPool &mir() { return MirPool; }
  /// Short-lived scratch: MC streamer fixups, JIT-link tables, craneline
  /// side tables.
  MemPool &scratch() { return ScratchPool; }

  /// Called between functions of a module compile: in arena mode recycles
  /// the function-scoped pools' slabs (the §V-B1 "module destruction"
  /// cost collapses to this).
  void clearFunctionMemory() {
    IrPool.clear();
    MirPool.clear();
  }

private:
  AllocMode ModeV;
  MemPool IrPool;
  MemPool MirPool;
  MemPool ScratchPool;
};

} // namespace qcf

#endif // QCF_SUPPORT_MEMCONTEXT_H
