//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A xoshiro256** PRNG. All data generation and property-test fuzzing in QCF
/// is seeded deterministically so every run (and every CI machine) sees the
/// same tables and the same random IR functions.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_RNG_H
#define QCF_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace qcf {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t X = Seed;
    for (uint64_t &S : State) {
      X += 0x9e3779b97f4a7c15ull;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      S = Z ^ (Z >> 31);
    }
  }

  /// Next uniformly distributed 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound && "nextBounded requires a nonzero bound");
    // Rejection-free multiply-shift reduction; slight bias is acceptable for
    // synthetic workloads.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBounded(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

  /// Returns true with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Approximately Zipf-distributed value in [0, N) with skew \p Theta.
  /// Used by the data generators to model skewed join/group keys.
  uint64_t nextZipf(uint64_t N, double Theta = 0.99) {
    // Inverse-CDF approximation: u^(1/(1-theta)) concentrates mass at 0.
    double U = nextDouble();
    double Exp = 1.0 / (1.0 - Theta);
    double V = __builtin_pow(U, Exp > 20 ? 20 : Exp);
    uint64_t R = static_cast<uint64_t>(V * static_cast<double>(N));
    return R >= N ? N - 1 : R;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace qcf

#endif // QCF_SUPPORT_RNG_H
