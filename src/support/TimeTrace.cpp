//===- support/TimeTrace.cpp - Hierarchical compile-time tracing ---------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "support/TimeTrace.h"
#include <algorithm>
#include <cstdio>

using namespace qcf;

thread_local TimeTraceScope *TimeTraceScope::CurrentScope = nullptr;

namespace {
thread_local ScopeSink *CurrentScopeSink = nullptr;
} // namespace

ScopeSinkBinding::ScopeSinkBinding(ScopeSink *S) : Prev(CurrentScopeSink) {
  if (S)
    CurrentScopeSink = S;
}

ScopeSinkBinding::~ScopeSinkBinding() { CurrentScopeSink = Prev; }

ScopeSink *ScopeSinkBinding::current() { return CurrentScopeSink; }

uint64_t TimeTrace::selfNsWithPrefix(const std::string &Prefix) const {
  uint64_t Sum = 0;
  for (const auto &[Label, Rec] : Records)
    if (Label.compare(0, Prefix.size(), Prefix) == 0)
      Sum += Rec.SelfNs;
  return Sum;
}

void TimeTrace::merge(const TimeTrace &Other) {
  for (const auto &[Label, Rec] : Other.Records) {
    TimeRecord &R = Records[Label];
    R.TotalNs += Rec.TotalNs;
    R.SelfNs += Rec.SelfNs;
    R.Count += Rec.Count;
  }
  NumEvents += Other.NumEvents;
}

std::string TimeTrace::reportTable() const {
  std::vector<std::pair<std::string, TimeRecord>> Rows(Records.begin(),
                                                       Records.end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    return A.second.SelfNs > B.second.SelfNs;
  });
  uint64_t TotalSelf = 0;
  for (const auto &[Label, Rec] : Rows)
    TotalSelf += Rec.SelfNs;

  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "%-40s %10s %12s %12s %7s\n", "label",
                "count", "total[ms]", "self[ms]", "self%");
  Out += Buf;
  for (const auto &[Label, Rec] : Rows) {
    double Pct = TotalSelf
                     ? 100.0 * static_cast<double>(Rec.SelfNs) /
                           static_cast<double>(TotalSelf)
                     : 0.0;
    std::snprintf(Buf, sizeof(Buf), "%-40s %10llu %12.3f %12.3f %6.2f%%\n",
                  Label.c_str(), static_cast<unsigned long long>(Rec.Count),
                  static_cast<double>(Rec.TotalNs) * 1e-6,
                  static_cast<double>(Rec.SelfNs) * 1e-6, Pct);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "(%llu measurement events)\n",
                static_cast<unsigned long long>(NumEvents));
  Out += Buf;
  return Out;
}

std::string TimeTrace::reportCsv() const {
  std::string Out = "label,count,total_ns,self_ns\n";
  char Buf[256];
  for (const auto &[Label, Rec] : Records) {
    std::snprintf(Buf, sizeof(Buf), "%s,%llu,%llu,%llu\n", Label.c_str(),
                  static_cast<unsigned long long>(Rec.Count),
                  static_cast<unsigned long long>(Rec.TotalNs),
                  static_cast<unsigned long long>(Rec.SelfNs));
    Out += Buf;
  }
  return Out;
}
