//===- support/TimeTrace.h - Hierarchical compile-time tracing --*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight reimplementation of LLVM's time-trace infrastructure
/// (paper §V-B: "we used LLVM's time tracing infrastructure to measure the
/// execution time of the individual passes"). Scoped timers accumulate total
/// and self (exclusive) time per label; the collector can report the number
/// of measurement events so benches can quantify measurement overhead, which
/// the paper reports explicitly (up to 2% for LLVM, an "Overhead" slice for
/// Cranelift).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_TIMETRACE_H
#define QCF_SUPPORT_TIMETRACE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcf {

/// Monotonic nanosecond clock.
inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple wall-clock stopwatch.
class Stopwatch {
public:
  Stopwatch() : Start(nowNs()) {}
  void restart() { Start = nowNs(); }
  uint64_t elapsedNs() const { return nowNs() - Start; }
  double elapsedMs() const { return static_cast<double>(elapsedNs()) * 1e-6; }
  double elapsedSec() const {
    return static_cast<double>(elapsedNs()) * 1e-9;
  }

private:
  uint64_t Start;
};

/// Accumulated timing for one label.
struct TimeRecord {
  uint64_t TotalNs = 0; ///< Inclusive wall time.
  uint64_t SelfNs = 0;  ///< Exclusive wall time (children subtracted).
  uint64_t Count = 0;   ///< Number of scopes recorded.
};

/// Collects per-label timings from TimeTraceScope instances.
///
/// Collection is explicit: passes receive a TimeTrace pointer (possibly
/// null, meaning tracing disabled) so that the *cost of measuring* is only
/// paid when a bench asks for a breakdown — exactly the trade-off the paper
/// quantifies.
class TimeTrace {
public:
  void record(const std::string &Label, uint64_t TotalNs, uint64_t SelfNs) {
    TimeRecord &R = Records[Label];
    R.TotalNs += TotalNs;
    R.SelfNs += SelfNs;
    ++R.Count;
    ++NumEvents;
  }

  const std::map<std::string, TimeRecord> &records() const { return Records; }

  /// Total number of measurement events (paper: 1.27M/467k events caused
  /// up to 2% overhead).
  uint64_t numEvents() const { return NumEvents; }

  /// Sum of self time over labels with the given prefix ("" = all).
  uint64_t selfNsWithPrefix(const std::string &Prefix) const;

  /// Total time of one label (0 if absent).
  uint64_t totalNs(const std::string &Label) const {
    auto It = Records.find(Label);
    return It == Records.end() ? 0 : It->second.TotalNs;
  }

  /// Number of scopes recorded under one label (0 if absent).
  uint64_t count(const std::string &Label) const {
    auto It = Records.find(Label);
    return It == Records.end() ? 0 : It->second.Count;
  }

  void clear() {
    Records.clear();
    NumEvents = 0;
  }

  /// Adds a pre-aggregated record (e.g. the delta between two snapshots
  /// of another trace). Counts as \p R.Count measurement events, matching
  /// what record() would have accumulated.
  void add(const std::string &Label, const TimeRecord &R) {
    TimeRecord &D = Records[Label];
    D.TotalNs += R.TotalNs;
    D.SelfNs += R.SelfNs;
    D.Count += R.Count;
    NumEvents += R.Count;
  }

  /// Merges another trace into this one.
  void merge(const TimeTrace &Other);

  /// Renders a human-readable table sorted by self time.
  std::string reportTable() const;

  /// Renders "label,count,total_ns,self_ns" CSV rows.
  std::string reportCsv() const;

private:
  std::map<std::string, TimeRecord> Records;
  uint64_t NumEvents = 0;
};

/// Receiver for raw scope begin/end events, in addition to (or instead of)
/// the per-label aggregation a TimeTrace performs. The observability layer
/// (obs::TraceSink) implements this to turn every TimeTraceScope into a
/// Chrome trace-event, without each pass knowing about trace export.
class ScopeSink {
public:
  virtual ~ScopeSink() = default;

  /// Called from the scope's destructor on the thread that ran the scope.
  virtual void scopeClosed(const std::string &Label, uint64_t StartNs,
                           uint64_t DurNs) = 0;
};

/// RAII binding that routes this thread's TimeTraceScope events to \p S
/// until destruction (restores the previous binding; bindings nest).
/// Binding null is a no-op, so callers can pass an optional sink through.
class ScopeSinkBinding {
public:
  explicit ScopeSinkBinding(ScopeSink *S);
  ~ScopeSinkBinding();

  ScopeSinkBinding(const ScopeSinkBinding &) = delete;
  ScopeSinkBinding &operator=(const ScopeSinkBinding &) = delete;

  /// The sink bound on the calling thread, if any.
  static ScopeSink *current();

private:
  ScopeSink *Prev;
};

/// RAII scope that accumulates into a TimeTrace. Supports nesting: a
/// parent's self time excludes enclosed child scopes on the same thread.
/// When a ScopeSink is bound on this thread, the scope additionally
/// reports its raw interval there — even when \p Trace is null.
class TimeTraceScope {
public:
  TimeTraceScope(TimeTrace *Trace, std::string Label)
      : Trace(Trace), Sink(ScopeSinkBinding::current()), Label(std::move(Label)) {
    if (!Trace && !Sink)
      return;
    Start = nowNs();
    if (Trace) {
      ChildNs = 0;
      Parent = CurrentScope;
      CurrentScope = this;
    }
  }

  TimeTraceScope(const TimeTraceScope &) = delete;
  TimeTraceScope &operator=(const TimeTraceScope &) = delete;

  ~TimeTraceScope() {
    if (!Trace && !Sink)
      return;
    uint64_t Total = nowNs() - Start;
    if (Trace) {
      uint64_t Self = Total > ChildNs ? Total - ChildNs : 0;
      Trace->record(Label, Total, Self);
      CurrentScope = Parent;
      if (Parent)
        Parent->ChildNs += Total;
    }
    if (Sink)
      Sink->scopeClosed(Label, Start, Total);
  }

private:
  TimeTrace *Trace;
  ScopeSink *Sink;
  std::string Label;
  uint64_t Start = 0;
  uint64_t ChildNs = 0;
  TimeTraceScope *Parent = nullptr;

  static thread_local TimeTraceScope *CurrentScope;
};

} // namespace qcf

#endif // QCF_SUPPORT_TIMETRACE_H
