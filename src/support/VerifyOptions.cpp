//===- support/VerifyOptions.cpp - Verification knob -----------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "support/VerifyOptions.h"
#include <cstdlib>

using namespace qcf;

VerifyOptions VerifyOptions::parse(std::string_view Spec) {
  VerifyOptions V;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Tok = Spec.substr(
        Pos, Comma == std::string_view::npos ? Spec.size() - Pos
                                             : Comma - Pos);
    if (Tok == "all" || Tok == "1")
      V = all();
    else if (Tok == "none" || Tok == "0")
      V = none();
    else if (Tok == "ir")
      V.Ir = true;
    else if (Tok == "mir")
      V.Mir = true;
    else if (Tok == "mc")
      V.Mc = true;
    else if (Tok == "tv")
      V.Tv = true;
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  return V;
}

VerifyOptions VerifyOptions::fromEnv() {
  static const VerifyOptions Cached = [] {
    if (const char *Spec = std::getenv("QCF_VERIFY"))
      return parse(Spec);
#ifdef QCF_EXPENSIVE_CHECKS
    return all();
#else
    return none();
#endif
  }();
  return Cached;
}
