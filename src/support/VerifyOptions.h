//===- support/VerifyOptions.h - Verification knob --------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Which verification layers run during compilation (see DESIGN.md
/// "Verification layers"):
///
///   - Ir:  qir::verify on the module before any back-end consumes it;
///   - Mir: mlvm::verifyMir after every MIR pipeline pass;
///   - Mc:  the x64 encoding lint over emitted machine code;
///   - Tv:  translation validation (src/tv) — co-simulates the emitted
///          bytes against the QIR source and compares observable traces.
///
/// The default comes from the QCF_VERIFY environment variable, a
/// comma-separated subset of {ir,mir,mc,tv} (or "all"/"none"). When the
/// variable is unset, everything is enabled in QCF_EXPENSIVE_CHECKS builds
/// and disabled otherwise — so release binaries pay nothing unless asked.
/// "all" covers the three in-pipeline layers; tv is per-function whole-code
/// co-simulation and is only ever enabled by its explicit token.
///
/// Lives in support/ (not backend/) because the mlvm back-end consumes it
/// and backend/ links against mlvm.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_VERIFYOPTIONS_H
#define QCF_SUPPORT_VERIFYOPTIONS_H

#include <string_view>

namespace qcf {

struct VerifyOptions {
  bool Ir = false;
  bool Mir = false;
  bool Mc = false;
  bool Tv = false;

  bool any() const { return Ir || Mir || Mc || Tv; }

  static VerifyOptions all() { return {true, true, true}; }
  static VerifyOptions none() { return {}; }

  /// Parses a QCF_VERIFY-style spec: comma-separated "ir"/"mir"/"mc"/"tv",
  /// or "all"/"none" ("all" = ir,mir,mc; tv stays explicit). Unknown
  /// tokens are ignored.
  static VerifyOptions parse(std::string_view Spec);

  /// The process-wide default: QCF_VERIFY if set, else all-on in
  /// QCF_EXPENSIVE_CHECKS builds, else all-off. Computed once.
  static VerifyOptions fromEnv();
};

} // namespace qcf

#endif // QCF_SUPPORT_VERIFYOPTIONS_H
