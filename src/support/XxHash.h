//===- support/XxHash.h - XXH64 content checksum ----------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained implementation of the 64-bit xxHash (XXH64) algorithm,
/// used as the content checksum of persistent code-cache blobs
/// (backend/DiskCache.h). The point of xxhash here is integrity, not
/// security: it detects truncation, bit rot, and partially-written files
/// at memory speed, which is all a local cache needs — a hostile writer
/// with access to the cache directory could corrupt code regardless of
/// the checksum strength.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_SUPPORT_XXHASH_H
#define QCF_SUPPORT_XXHASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace qcf {

namespace xxh_detail {

inline constexpr uint64_t Prime1 = 0x9e3779b185ebca87ull;
inline constexpr uint64_t Prime2 = 0xc2b2ae3d27d4eb4full;
inline constexpr uint64_t Prime3 = 0x165667b19e3779f9ull;
inline constexpr uint64_t Prime4 = 0x85ebca77c2b2ae63ull;
inline constexpr uint64_t Prime5 = 0x27d4eb2f165667c5ull;

inline uint64_t rotl(uint64_t X, unsigned R) {
  return (X << R) | (X >> (64 - R));
}

inline uint64_t round(uint64_t Acc, uint64_t Lane) {
  Acc += Lane * Prime2;
  Acc = rotl(Acc, 31);
  return Acc * Prime1;
}

inline uint64_t mergeRound(uint64_t Acc, uint64_t Lane) {
  Acc ^= round(0, Lane);
  return Acc * Prime1 + Prime4;
}

inline uint64_t read64(const uint8_t *P) {
  uint64_t V;
  std::memcpy(&V, P, 8);
  return V;
}

inline uint32_t read32(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return V;
}

} // namespace xxh_detail

/// XXH64 of \p Len bytes at \p Data.
inline uint64_t xxHash64(const void *Data, size_t Len, uint64_t Seed = 0) {
  using namespace xxh_detail;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  const uint8_t *End = P + Len;
  uint64_t H;

  if (Len >= 32) {
    uint64_t V1 = Seed + Prime1 + Prime2;
    uint64_t V2 = Seed + Prime2;
    uint64_t V3 = Seed;
    uint64_t V4 = Seed - Prime1;
    const uint8_t *Limit = End - 32;
    do {
      V1 = round(V1, read64(P));
      V2 = round(V2, read64(P + 8));
      V3 = round(V3, read64(P + 16));
      V4 = round(V4, read64(P + 24));
      P += 32;
    } while (P <= Limit);
    H = rotl(V1, 1) + rotl(V2, 7) + rotl(V3, 12) + rotl(V4, 18);
    H = mergeRound(H, V1);
    H = mergeRound(H, V2);
    H = mergeRound(H, V3);
    H = mergeRound(H, V4);
  } else {
    H = Seed + Prime5;
  }

  H += static_cast<uint64_t>(Len);
  while (P + 8 <= End) {
    H ^= round(0, read64(P));
    H = rotl(H, 27) * Prime1 + Prime4;
    P += 8;
  }
  if (P + 4 <= End) {
    H ^= static_cast<uint64_t>(read32(P)) * Prime1;
    H = rotl(H, 23) * Prime2 + Prime3;
    P += 4;
  }
  while (P < End) {
    H ^= static_cast<uint64_t>(*P) * Prime5;
    H = rotl(H, 11) * Prime1;
    ++P;
  }

  H ^= H >> 33;
  H *= Prime2;
  H ^= H >> 29;
  H *= Prime3;
  H ^= H >> 32;
  return H;
}

} // namespace qcf

#endif // QCF_SUPPORT_XXHASH_H
