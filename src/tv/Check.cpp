//===- tv/Check.cpp - Trace comparison and validation driver ---------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top half of translation validation: drives the two steppers over
/// seeded rounds, compares the observable-event traces, and renders
/// mismatches as minimized counterexamples (function, round, event index,
/// both sides' locations, the symbolic term each side computed, and the
/// concrete witness values).
///
/// Argument generation is small-biased on purpose: loop trip counts, slot
/// offsets and comparison boundaries live near zero, so rounds seeded with
/// 0/1/2/-1/2^31 exercise both sides of most branches within a handful of
/// rounds, while one lane of pure hash randomness guards against
/// coincidental agreement.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "tv/Sim.h"
#include "tv/Tv.h"
#include <chrono>
#include <cstdlib>
#include <cstring>

using namespace qcf;
using namespace qcf::tv;
using qir::Type;

namespace {

uint64_t hashStr(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S)
    H = hashU64(H ^ static_cast<uint8_t>(C));
  return H;
}

uint64_t maskForTy(Type T) {
  switch (T) {
  case Type::I1:
    return 1;
  case Type::I8:
    return 0xff;
  case Type::I16:
    return 0xffff;
  case Type::I32:
    return 0xffffffff;
  default:
    return ~0ull;
  }
}

uint8_t retKindOf(Type T) {
  switch (T) {
  case Type::Void:
    return 0;
  case Type::I1:
    return 1;
  case Type::I8:
    return 8;
  case Type::I16:
    return 16;
  case Type::I32:
    return 32;
  case Type::F64:
    return 65;
  case Type::I128:
  case Type::D128:
    return 66;
  default:
    return 64; // I64 and Ptr
  }
}

const char *kindName(Event::Kind K) {
  switch (K) {
  case Event::Call:
    return "call";
  case Event::Trap:
    return "trap";
  case Event::Ret:
    return "ret";
  case Event::Fault:
    return "fault";
  }
  return "?";
}

std::string hex(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%llx", static_cast<unsigned long long>(V));
  return Buf;
}

std::string evStr(const Event &E) {
  std::string S = kindName(E.K);
  if (E.K == Event::Call)
    S += " " + E.Sym;
  if (E.K == Event::Trap)
    S += " code=" + std::to_string(E.TrapCode);
  if (!E.Where.empty())
    S += " at " + E.Where;
  return S;
}

std::string valueLine(const char *Side, uint64_t V, TermRef T, TermArena &TA) {
  std::string S = std::string("  ") + Side + " " + hex(V);
  if (T != NO_TERM)
    S += " = " + TA.str(T);
  return S + "\n";
}

/// Compares the two traces of one round; "" when they agree.
std::string cmpTraces(const qir::Function &F, unsigned Round, const Trace &QT,
                      const Trace &MT, TermArena &TA) {
  auto rep = [&](size_t Idx, const std::string &Reason,
                 const std::string &Extra = "") {
    std::string S = "tv: mismatch in '" + F.name() + "' (round " +
                    std::to_string(Round) + ", event " + std::to_string(Idx) +
                    "): " + Reason + "\n";
    S += "  qir:      " + (Idx < QT.Events.size() ? evStr(QT.Events[Idx])
                                                  : std::string("<no event>")) +
         "\n";
    S += "  machine:  " + (Idx < MT.Events.size() ? evStr(MT.Events[Idx])
                                                  : std::string("<no event>")) +
         "\n";
    return S + Extra;
  };

  size_t N = std::min(QT.Events.size(), MT.Events.size());
  for (size_t I = 0; I != N; ++I) {
    const Event &Q = QT.Events[I];
    const Event &Mv = MT.Events[I];
    if (Q.K != Mv.K)
      return rep(I, std::string("event kind differs (qir ") + kindName(Q.K) +
                        ", machine " + kindName(Mv.K) + ")");

    switch (Q.K) {
    case Event::Call: {
      if (Q.Sym != Mv.Sym)
        return rep(I, "call target differs ('" + Q.Sym + "' vs '" + Mv.Sym +
                          "')");
      for (unsigned K = 0; K != Q.NumArgs; ++K) {
        bool QS = !Q.Snap[K].empty(), MS = !Mv.Snap[K].empty();
        if (QS && MS) {
          // Both sides pass a private pointer; its numeric value is
          // side-local, the pointed-to bytes must agree.
          size_t L = Q.Snap[K].size();
          if (Mv.Snap[K].size() < L ||
              std::memcmp(Q.Snap[K].data(), Mv.Snap[K].data(), L) != 0) {
            size_t D = 0;
            while (D < L && D < Mv.Snap[K].size() &&
                   Q.Snap[K][D] == Mv.Snap[K][D])
              ++D;
            return rep(I,
                       "argument " + std::to_string(K) +
                           " points to differing memory (first difference at "
                           "byte " +
                           std::to_string(D) + ")",
                       valueLine("qir byte:    ",
                                 D < L ? Q.Snap[K][D] : 0, NO_TERM, TA) +
                           valueLine("machine byte:",
                                     D < Mv.Snap[K].size() ? Mv.Snap[K][D] : 0,
                                     NO_TERM, TA));
          }
          continue;
        }
        if (QS != MS)
          return rep(I, "argument " + std::to_string(K) +
                            ": only one side passes a private pointer",
                     valueLine("qir value:    ", Q.Args[K], Q.ArgT[K], TA) +
                         valueLine("machine value:", Mv.Args[K], Mv.ArgT[K],
                                   TA));
        uint64_t Msk = Q.ArgBits[K] >= 64 ? ~0ull
                                          : ((1ull << Q.ArgBits[K]) - 1);
        if ((Q.Args[K] ^ Mv.Args[K]) & Msk)
          return rep(I, "argument " + std::to_string(K) + " differs",
                     valueLine("qir value:    ", Q.Args[K] & Msk, Q.ArgT[K],
                               TA) +
                         valueLine("machine value:", Mv.Args[K] & Msk,
                                   Mv.ArgT[K], TA));
      }
      if (Q.Digest != Mv.Digest)
        return rep(I, "global stores before the call differ",
                   valueLine("qir digest:    ", Q.Digest, NO_TERM, TA) +
                       valueLine("machine digest:", Mv.Digest, NO_TERM, TA));
      break;
    }

    case Event::Trap:
      if (Q.TrapCode != Mv.TrapCode)
        return rep(I, "trap code differs (" + std::to_string(Q.TrapCode) +
                          " vs " + std::to_string(Mv.TrapCode) + ")");
      if (Q.Digest != Mv.Digest)
        return rep(I, "global stores before the trap differ",
                   valueLine("qir digest:    ", Q.Digest, NO_TERM, TA) +
                       valueLine("machine digest:", Mv.Digest, NO_TERM, TA));
      break;

    case Event::Ret: {
      Type RT = F.returnType();
      if (RT == Type::F64) {
        if (Q.RetLo != Mv.RetF)
          return rep(I, "return value (f64) differs",
                     valueLine("qir value:    ", Q.RetLo, Q.RetLoT, TA) +
                         valueLine("machine value:", Mv.RetF, NO_TERM, TA));
      } else if (RT == Type::I128 || RT == Type::D128) {
        if (Q.RetLo != Mv.RetLo || Q.RetHi != Mv.RetHi)
          return rep(I, "return value (two-lane) differs",
                     valueLine("qir lo:    ", Q.RetLo, Q.RetLoT, TA) +
                         valueLine("machine lo:", Mv.RetLo, Mv.RetLoT, TA) +
                         valueLine("qir hi:    ", Q.RetHi, Q.RetHiT, TA) +
                         valueLine("machine hi:", Mv.RetHi, Mv.RetHiT, TA));
      } else if (RT != Type::Void) {
        uint64_t Msk = maskForTy(RT);
        if ((Q.RetLo ^ Mv.RetLo) & Msk)
          return rep(I, "return value differs",
                     valueLine("qir value:    ", Q.RetLo & Msk, Q.RetLoT, TA) +
                         valueLine("machine value:", Mv.RetLo & Msk,
                                   Mv.RetLoT, TA));
      }
      if (Q.Digest != Mv.Digest)
        return rep(I, "global stores at return differ",
                   valueLine("qir digest:    ", Q.Digest, NO_TERM, TA) +
                       valueLine("machine digest:", Mv.Digest, NO_TERM, TA));
      break;
    }

    case Event::Fault:
      break;
    }
  }

  if (QT.Events.size() != MT.Events.size() && !QT.Bounded && !MT.Bounded)
    return rep(N, "trace length differs (qir " +
                      std::to_string(QT.Events.size()) + " events, machine " +
                      std::to_string(MT.Events.size()) + ")");
  return "";
}

/// Per-round argument generation; lanes are flattened in parameter order
/// (two-lane parameters contribute two).
void genArgs(const qir::Function &F, const RoundCtx &RC, TermArena &TA,
             std::vector<uint64_t> &Lanes, std::vector<TermRef> &Terms,
             std::vector<uint8_t> &IsF64) {
  auto intLane = [&](unsigned K, uint64_t Msk) -> uint64_t {
    uint64_t H = mix(RC.Seed, 0xa59 + K * 2);
    switch (H & 7) {
    case 0:
      return 0;
    case 1:
      return 1;
    case 2:
      return 2;
    case 3:
      return Msk; // all ones: -1 at the parameter's width
    case 4:
      return 7;
    case 5:
      return (1ull << 31) & Msk;
    case 6:
      return (0ull - 3) & Msk;
    default:
      return (H >> 8) & Msk;
    }
  };
  static const double F64Pool[8] = {0.0,   1.0,     -1.5,    2.5,
                                    1e9, -0.25, 3.14159, 1e-3};

  for (unsigned P = 0; P != F.numParams(); ++P) {
    Type Ty = F.paramTypes()[P];
    unsigned K = static_cast<unsigned>(Lanes.size());
    switch (Ty) {
    case Type::Ptr:
      Lanes.push_back(ArgSpaceBase + P * ArgSpaceStride);
      Terms.push_back(TA.param(K));
      IsF64.push_back(0);
      break;
    case Type::F64: {
      uint64_t H = mix(RC.Seed, 0xf64 + K * 2);
      uint64_t B;
      std::memcpy(&B, &F64Pool[H & 7], 8);
      Lanes.push_back(B);
      Terms.push_back(TA.param(K));
      IsF64.push_back(1);
      break;
    }
    case Type::I128:
    case Type::D128:
      Lanes.push_back(intLane(K, ~0ull));
      Terms.push_back(TA.param(K));
      IsF64.push_back(0);
      Lanes.push_back(intLane(K + 1, ~0ull));
      Terms.push_back(TA.param(K + 1));
      IsF64.push_back(0);
      break;
    default:
      Lanes.push_back(intLane(K, maskForTy(Ty)));
      Terms.push_back(TA.param(K));
      IsF64.push_back(0);
      break;
    }
  }
}

} // namespace

TvOptions TvOptions::fromEnv() {
  TvOptions O;
  if (const char *E = std::getenv("QCF_TV_MAX_TERMS"))
    if (unsigned long long V = std::strtoull(E, nullptr, 10))
      O.MaxTerms = static_cast<size_t>(V);
  if (const char *E = std::getenv("QCF_TV_ROUNDS"))
    if (unsigned long long V = std::strtoull(E, nullptr, 10))
      O.Rounds = static_cast<unsigned>(V);
  return O;
}

std::string tv::validateFunction(const qir::Function &F, const TvFunction &MF,
                                 const TvOptions &Opts, TvStats *Stats) {
  auto T0 = std::chrono::steady_clock::now();
  TvStats Local;
  std::string Result;
  bool Skipped = false;

  std::vector<x64::DecodeReloc> DRel;
  DRel.reserve(MF.Relocs.size());
  for (const TvReloc &R : MF.Relocs)
    DRel.push_back({R.Offset, R.Width});
  x64::DecodedFunction DF = x64::decodeFunction(MF.Code, MF.Size, DRel);

  if (!DF.ok()) {
    Result = "tv: cannot decode machine code for '" + F.name() +
             "': " + DF.Error + "\n";
  } else {
    // Model boundaries: more argument slots than registers, or f64
    // runtime-call arguments (no such runtime symbol exists today), make
    // the function a sound skip, never a silent pass of unchecked code
    // paths — the skip is visible in verify.tv counters.
    unsigned GpSlots = 0, XmmSlots = 0;
    for (unsigned P = 0; P != F.numParams(); ++P) {
      Type Ty = F.paramTypes()[P];
      if (Ty == Type::F64)
        ++XmmSlots;
      else
        GpSlots += qir::isTwoLane(Ty) ? 2 : 1;
    }
    bool F64Callee = false;
    const qir::Module *M = F.parent();
    for (uint32_t I = 0; I != F.numInsts() && !F64Callee; ++I)
      if (F.Insts[I].Op == qir::Opcode::Call)
        for (Type PT : M->symbol(F.callee(F.Insts[I])).ParamTypes)
          if (PT == Type::F64)
            F64Callee = true;

    if (GpSlots > 6 || XmmSlots > 8 || F64Callee) {
      Skipped = true;
    } else {
      std::map<std::string, uint8_t> RK;
      for (qir::SymbolId S = 0; S != M->numSymbols(); ++S)
        RK[M->symbol(S).Name] = retKindOf(M->symbol(S).RetType);

      SlotLayout Slots = computeSlotLayout(F);
      TermArena TA(Opts.MaxTerms);

      for (unsigned R = 0; R != Opts.Rounds && Result.empty() && !Skipped;
           ++R) {
        RoundCtx RC;
        RC.Round = R;
        RC.Seed = mix(Opts.Seed, mix(hashStr(F.name()), 0x9000 + R));
        RC.OracleSeed = mix(RC.Seed, 0x0eac1e);
        RC.RetKind = &RK;

        std::vector<uint64_t> Lanes;
        std::vector<TermRef> Terms;
        std::vector<uint8_t> IsF64;
        genArgs(F, RC, TA, Lanes, Terms, IsF64);

        Trace QT = runQirRound(F, *M, Slots, RC, Lanes, Terms, TA);
        if (QT.Skip) {
          Skipped = true;
          break;
        }
        if (!QT.Error.empty()) {
          Result = "tv: qir stepper error in '" + F.name() + "' (round " +
                   std::to_string(R) + "): " + QT.Error + "\n";
          break;
        }
        Trace MT = runMachRound(DF, MF.Code, MF.Size, MF.Relocs, Slots, RC,
                                Lanes, Terms, IsF64, TA);
        if (MT.Skip) {
          Skipped = true;
          break;
        }
        if (!MT.Error.empty()) {
          Result = "tv: mismatch in '" + F.name() + "' (round " +
                   std::to_string(R) + "): " + MT.Error + "\n";
          break;
        }
        Result = cmpTraces(F, R, QT, MT, TA);
      }
      Local.Terms = TA.size();
    }
    Local.Blocks = DF.Blocks.size();
  }

  if (Skipped)
    Local.Skipped = 1;
  else
    Local.Functions = 1;
  if (!Result.empty())
    Local.Mismatches = 1;
  Local.Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());

  if (Stats) {
    Stats->Functions += Local.Functions;
    Stats->Blocks += Local.Blocks;
    Stats->Terms += Local.Terms;
    Stats->Mismatches += Local.Mismatches;
    Stats->Skipped += Local.Skipped;
    Stats->Ns += Local.Ns;
  }
  return Result;
}

std::string tv::validateModule(const qir::Module &M,
                               const std::vector<TvFunction> &Fns,
                               const TvOptions &Opts,
                               obs::MetricsRegistry *Metrics) {
  TvStats St;
  std::string FirstErr;
  for (const TvFunction &MF : Fns) {
    const qir::Function *F = M.functionByName(MF.Name);
    if (!F || !MF.Code || MF.Size == 0)
      continue;
    std::string R = validateFunction(*F, MF, Opts, &St);
    if (!R.empty() && FirstErr.empty())
      FirstErr = R;
  }
  if (Metrics) {
    Metrics->counter("verify.tv.functions").add(St.Functions);
    Metrics->counter("verify.tv.blocks").add(St.Blocks);
    Metrics->counter("verify.tv.terms").add(St.Terms);
    Metrics->counter("verify.tv.mismatches").add(St.Mismatches);
    if (St.Skipped)
      Metrics->counter("verify.tv.skipped").add(St.Skipped);
    Metrics->histogram("tv_ns").observe(St.Ns);
  }
  return FirstErr;
}
