//===- tv/Intrinsics.cpp - Interpreted runtime helpers ---------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime helpers both steppers interpret semantically instead of
/// treating as uninterpreted calls. These are exactly the pure arithmetic
/// entry points of runtime/Runtime.cpp — 128-bit division and shifts,
/// overflow-checked arithmetic, crc32 — which matter for two reasons: they
/// can trap (so the trap must surface as an observable on both sides), and
/// back-ends use several of them as *lowering devices* for QIR operations
/// (an i128 sdiv becomes a call to rt_sdiv128), so modeling them as
/// opaque calls would desynchronize the event streams: the QIR side sees an
/// arithmetic instruction, the machine side a call.
///
/// Semantics mirror runtime/Runtime.cpp byte for byte via the same
/// support/Int128.h helpers.
///
//===----------------------------------------------------------------------===//

#include "runtime/Trap.h"
#include "support/Hash.h"
#include "support/Int128.h"
#include "tv/Sim.h"

using namespace qcf;
using namespace qcf::tv;

bool tv::stepIntrinsic(const std::string &Name, const uint64_t *Args,
                       uint64_t &Lo, uint64_t &Hi, int &TrapCode) {
  TrapCode = static_cast<int>(rt::TrapCode::None);
  Lo = Hi = 0;

  auto a128 = [&] { return makeInt128(Args[0], Args[1]); };
  auto b128 = [&] { return makeInt128(Args[2], Args[3]); };
  auto pack = [&](Int128 V) {
    Lo = lo64(V);
    Hi = hi64(V);
  };
  auto trap = [&](rt::TrapCode C) { TrapCode = static_cast<int>(C); };

  if (Name == "rt_sdiv128") {
    Int128 Q;
    if (divOverflow128(a128(), b128(), &Q))
      trap(b128() == 0 ? rt::TrapCode::DivByZero : rt::TrapCode::Overflow);
    else
      pack(Q);
    return true;
  }
  if (Name == "rt_udiv128") {
    UInt128 B = static_cast<UInt128>(b128());
    if (B == 0)
      trap(rt::TrapCode::DivByZero);
    else
      pack(static_cast<Int128>(static_cast<UInt128>(a128()) / B));
    return true;
  }
  if (Name == "rt_srem128") {
    Int128 B = b128();
    if (B == 0)
      trap(rt::TrapCode::DivByZero);
    else if (B == -1)
      pack(0);
    else
      pack(a128() % B);
    return true;
  }
  if (Name == "rt_shl128" || Name == "rt_lshr128" || Name == "rt_ashr128") {
    unsigned S = static_cast<unsigned>(Args[2]) & 127;
    Int128 A = a128();
    if (Name == "rt_shl128")
      pack(static_cast<Int128>(static_cast<UInt128>(A) << S));
    else if (Name == "rt_lshr128")
      pack(static_cast<Int128>(static_cast<UInt128>(A) >> S));
    else
      pack(A >> S);
    return true;
  }
  if (Name == "rt_mul128_ovf") {
    Int128 P;
    if (mulOverflow128(a128(), b128(), &P))
      trap(rt::TrapCode::Overflow);
    else
      pack(P);
    return true;
  }
  if (Name == "rt_add128_ovf") {
    Int128 R;
    if (addOverflow128(a128(), b128(), &R))
      trap(rt::TrapCode::Overflow);
    else
      pack(R);
    return true;
  }
  if (Name == "rt_sub128_ovf") {
    Int128 R;
    if (subOverflow128(a128(), b128(), &R))
      trap(rt::TrapCode::Overflow);
    else
      pack(R);
    return true;
  }
  if (Name == "rt_crc32") {
    Lo = crc32u64(Args[0], Args[1]);
    return true;
  }

  auto ovf32 = [&](auto Fn) {
    int32_t R;
    if (Fn(static_cast<int32_t>(Args[0]), static_cast<int32_t>(Args[1]), &R))
      trap(rt::TrapCode::Overflow);
    else
      Lo = static_cast<uint32_t>(R);
    return true;
  };
  auto ovf64 = [&](auto Fn) {
    int64_t R;
    if (Fn(static_cast<int64_t>(Args[0]), static_cast<int64_t>(Args[1]), &R))
      trap(rt::TrapCode::Overflow);
    else
      Lo = static_cast<uint64_t>(R);
    return true;
  };

  if (Name == "rt_sadd32_ovf")
    return ovf32([](int32_t A, int32_t B, int32_t *R) {
      return __builtin_add_overflow(A, B, R);
    });
  if (Name == "rt_ssub32_ovf")
    return ovf32([](int32_t A, int32_t B, int32_t *R) {
      return __builtin_sub_overflow(A, B, R);
    });
  if (Name == "rt_smul32_ovf")
    return ovf32([](int32_t A, int32_t B, int32_t *R) {
      return __builtin_mul_overflow(A, B, R);
    });
  if (Name == "rt_sadd64_ovf")
    return ovf64([](int64_t A, int64_t B, int64_t *R) {
      return __builtin_add_overflow(A, B, R);
    });
  if (Name == "rt_ssub64_ovf")
    return ovf64([](int64_t A, int64_t B, int64_t *R) {
      return __builtin_sub_overflow(A, B, R);
    });
  if (Name == "rt_smul64_ovf")
    return ovf64([](int64_t A, int64_t B, int64_t *R) {
      return __builtin_mul_overflow(A, B, R);
    });

  return false;
}

TermRef tv::intrinsicResultTerm(TermArena &TA, const std::string &Name,
                                const TermRef *ArgT) {
  if (Name == "rt_crc32")
    return TA.binary(TermOp::Crc32, ArgT[0], ArgT[1], 64);
  if (Name == "rt_sadd32_ovf")
    return TA.binary(TermOp::Add, ArgT[0], ArgT[1], 32);
  if (Name == "rt_ssub32_ovf")
    return TA.binary(TermOp::Sub, ArgT[0], ArgT[1], 32);
  if (Name == "rt_smul32_ovf")
    return TA.binary(TermOp::Mul, ArgT[0], ArgT[1], 32);
  if (Name == "rt_sadd64_ovf")
    return TA.binary(TermOp::Add, ArgT[0], ArgT[1], 64);
  if (Name == "rt_ssub64_ovf")
    return TA.binary(TermOp::Sub, ArgT[0], ArgT[1], 64);
  if (Name == "rt_smul64_ovf")
    return TA.binary(TermOp::Mul, ArgT[0], ArgT[1], 64);
  return NO_TERM;
}
