//===- tv/MachStep.cpp - Machine-side co-simulation stepper ----------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine half of translation validation: executes a decoded x86-64
/// function (x64::decodeFunction output) over the synthetic memory model,
/// producing the same observable-event trace the QIR reference stepper
/// emits. Concrete values drive the verdict; symbolic terms ride along for
/// counterexample reporting.
///
/// The stepper models exactly the architectural state our back-ends rely
/// on: the 16 GP registers, the low 64-bit lane of the 16 XMM registers,
/// and the five arithmetic flags CF/ZF/SF/OF/PF. Flags start undefined and
/// become undefined again wherever the ISA says so (after mul/div, after a
/// shift by a non-constant amount for OF, after a call); branching on an
/// undefined flag is reported as a model violation — correct back-end
/// output never does it, and broken output that does is exactly what tv
/// exists to catch.
///
/// Runtime calls are resolved symbolically: a rel32 call covered by a named
/// relocation uses the record's symbol; `call reg` reverse-looks-up the
/// register value in the live runtime symbol table; a movabs covered by an
/// imm64 relocation is cross-checked byte-for-byte against the live symbol
/// address, so a blob re-patched incorrectly by the disk cache fails here
/// with a "stale relocation" report instead of silently calling garbage.
///
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "runtime/Trap.h"
#include "support/Hash.h"
#include "tv/Sim.h"
#include <cstdio>
#include <cstring>

using namespace qcf;
using namespace qcf::tv;
using x64::DecOp;
using x64::DecodedInst;
using x64::Width;

namespace {

using Alu = x64::Assembler::Alu;
using Shift = x64::Assembler::Shift;

constexpr unsigned RAX = 0, RCX = 1, RDX = 2, RSP = 4;

constexpr unsigned ArgRegs[6] = {7, 6, 2, 1, 8, 9}; // rdi rsi rdx rcx r8 r9

/// Caller-saved GP registers under the SysV ABI (minus RSP, of course).
constexpr unsigned VolatileGp[] = {0, 1, 2, 6, 7, 8, 9, 10, 11};

uint64_t maskB(unsigned Bits) {
  return Bits >= 64 ? ~0ull : (1ull << Bits) - 1;
}

int64_t sextB(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t M = 1ull << (Bits - 1);
  return static_cast<int64_t>(((V & maskB(Bits)) ^ M) - M);
}

unsigned bitsOfW(Width W) {
  switch (W) {
  case Width::W8:
    return 8;
  case Width::W16:
    return 16;
  case Width::W32:
    return 32;
  case Width::W64:
    return 64;
  }
  return 64;
}

double asF64(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

uint64_t f64Bits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

/// Must mirror QirStep.cpp exactly (interp's saturating f64->i64).
int64_t f64ToI64Trunc(double D) {
  if (!(D >= -9.2233720368547758e18 && D < 9.2233720368547758e18))
    return INT64_MIN;
  return static_cast<int64_t>(D);
}

struct MReg {
  uint64_t V = 0;
  TermRef T = NO_TERM;
};

/// Flag state: -1 means architecturally undefined. Alongside the concrete
/// bits we remember how the flags were last produced (compare, test-like
/// result, or float compare) so conditions can be given symbolic terms.
struct FlagState {
  int8_t CF = -1, ZF = -1, SF = -1, OF = -1, PF = -1;
  enum Rec : uint8_t { RecNone, RecCmp, RecTest, RecUcomi } R = RecNone;
  unsigned Bits = 64;
  TermRef AT = NO_TERM, BT = NO_TERM, RT = NO_TERM;
};

} // namespace

Trace tv::runMachRound(const x64::DecodedFunction &DF, const uint8_t *Code,
                       size_t Size, const std::vector<TvReloc> &Relocs,
                       const SlotLayout &Slots, const RoundCtx &RC,
                       const std::vector<uint64_t> &ArgLanes,
                       const std::vector<TermRef> &ArgTerms,
                       const std::vector<uint8_t> &ArgIsF64, TermArena &TA) {
  (void)Code;
  (void)Size;
  (void)Slots;
  Trace TR;

  MemModel Mem;
  Mem.OracleSeed = RC.OracleSeed;
  Mem.PrivLo = FrameLo;
  Mem.PrivHi = FrameHi;
  Mem.store(Rsp0, RetSentinel, 8);
  StoreTerms ST;

  MReg Gp[16], Xmm[16];
  for (unsigned R = 0; R != 16; ++R) {
    Gp[R].V = mix(RC.Seed, 0x1e90 + R);
    Xmm[R].V = mix(RC.Seed, 0x2e90 + R);
  }
  Gp[RSP].V = Rsp0;
  unsigned GpSlot = 0, XmmSlot = 0;
  for (size_t K = 0; K != ArgLanes.size(); ++K) {
    if (K < ArgIsF64.size() && ArgIsF64[K]) {
      if (XmmSlot < 8)
        Xmm[XmmSlot++] = {ArgLanes[K], ArgTerms[K]};
    } else if (GpSlot < 6) {
      Gp[ArgRegs[GpSlot++]] = {ArgLanes[K], ArgTerms[K]};
    }
  }

  FlagState FL;
  unsigned EvCall = 0;   // uninterpreted-call index, aligned with QIR
  unsigned TotCalls = 0; // every call site (clobber-junk stream)

  std::map<uint64_t, const TvReloc *> RelocAt;
  for (const TvReloc &R : Relocs)
    RelocAt[R.Offset] = &R;

  auto where = [](const DecodedInst &I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "offset 0x%x", I.Off);
    return std::string(Buf);
  };
  auto fail = [&](const DecodedInst &I, std::string Msg) {
    TR.Error = "machine model: " + std::move(Msg) + " at " + where(I);
  };
  auto skip = [&](std::string Why) {
    TR.Skip = true;
    TR.Error = std::move(Why);
  };

  auto readGp = [&](unsigned R, unsigned Bits) {
    return Gp[R].V & maskB(Bits);
  };
  auto gpTerm = [&](unsigned R, unsigned Bits) {
    return Bits >= 32 ? Gp[R].T : NO_TERM;
  };
  auto writeGp = [&](unsigned R, uint64_t V, TermRef T, unsigned Bits) {
    if (Bits == 64) {
      Gp[R] = {V, T};
    } else if (Bits == 32) {
      Gp[R] = {V & 0xffffffffull, T}; // 32-bit writes zero-extend
    } else {
      uint64_t M = maskB(Bits);
      Gp[R].V = (Gp[R].V & ~M) | (V & M); // 8/16-bit writes merge
      Gp[R].T = NO_TERM;
    }
  };

  auto memAddr = [&](const x64::Mem &M) {
    uint64_t A = static_cast<uint64_t>(static_cast<int64_t>(M.Disp));
    if (M.Base != x64::Reg::NoReg)
      A += Gp[static_cast<unsigned>(M.Base) & 15].V;
    if (M.Index != x64::Reg::NoReg)
      A += Gp[static_cast<unsigned>(M.Index) & 15].V * M.Scale;
    return A;
  };
  // Must mirror QirStep's loadTerm: exact store-term match, else oracle.
  auto loadTerm = [&](uint64_t A, unsigned Bytes) {
    TermRef T = ST.load(A, Bytes);
    if (T != NO_TERM)
      return T;
    if (!Mem.isPriv(A) && Mem.globalClean(A, Bytes))
      return TA.oracleLoad(A, Bytes * 8);
    return NO_TERM;
  };

  struct Operand {
    uint64_t V;
    TermRef T;
  };
  auto readRm = [&](const DecodedInst &I, unsigned Bits) -> Operand {
    if (I.RmIsMem) {
      uint64_t A = memAddr(I.M);
      return {Mem.load(A, Bits / 8), loadTerm(A, Bits / 8)};
    }
    return {readGp(I.Rm, Bits), gpTerm(I.Rm, Bits)};
  };
  auto writeRm = [&](const DecodedInst &I, uint64_t V, TermRef T,
                     unsigned Bits) {
    if (I.RmIsMem) {
      uint64_t A = memAddr(I.M);
      Mem.store(A, V & maskB(Bits), Bits / 8);
      ST.store(A, Bits / 8, T);
    } else {
      writeGp(I.Rm, V, T, Bits);
    }
  };

  auto setSZP = [&](uint64_t R, unsigned Bits) {
    R &= maskB(Bits);
    FL.ZF = R == 0;
    FL.SF = (R >> (Bits - 1)) & 1;
    FL.PF = !__builtin_parity(static_cast<unsigned>(R & 0xff));
  };
  auto poisonFlags = [&] { FL = FlagState{}; };

  /// Evaluates a condition code; -1 (with TR.Error set) when it depends on
  /// an undefined flag.
  auto evalCond = [&](const DecodedInst &I) -> int {
    uint8_t C = static_cast<uint8_t>(I.CC);
    int V = -1;
    switch (C & 0xe) {
    case 0x0:
      V = FL.OF;
      break;
    case 0x2:
      V = FL.CF;
      break;
    case 0x4:
      V = FL.ZF;
      break;
    case 0x6:
      V = (FL.CF < 0 || FL.ZF < 0) ? -1 : (FL.CF | FL.ZF);
      break;
    case 0x8:
      V = FL.SF;
      break;
    case 0xa:
      V = FL.PF;
      break;
    case 0xc:
      V = (FL.SF < 0 || FL.OF < 0) ? -1 : (FL.SF != FL.OF);
      break;
    case 0xe:
      V = (FL.ZF < 0 || FL.SF < 0 || FL.OF < 0)
              ? -1
              : (FL.ZF | (FL.SF != FL.OF));
      break;
    }
    if (V < 0) {
      fail(I, "conditional depends on undefined flags");
      return -1;
    }
    return V ^ (C & 1);
  };

  /// Symbolic term for condition CC under the current flag record
  /// (reporting only; NO_TERM when there is no clean predicate form).
  auto condTerm = [&](const DecodedInst &I) -> TermRef {
    uint8_t C = static_cast<uint8_t>(I.CC);
    if (FL.R == FlagState::RecCmp) {
      TermOp Op;
      switch (C) {
      case 0x2: Op = TermOp::CmpULt; break;
      case 0x3: Op = TermOp::CmpUGe; break;
      case 0x4: Op = TermOp::CmpEq; break;
      case 0x5: Op = TermOp::CmpNe; break;
      case 0x6: Op = TermOp::CmpULe; break;
      case 0x7: Op = TermOp::CmpUGt; break;
      case 0xc: Op = TermOp::CmpSLt; break;
      case 0xd: Op = TermOp::CmpSGe; break;
      case 0xe: Op = TermOp::CmpSLe; break;
      case 0xf: Op = TermOp::CmpSGt; break;
      default: return NO_TERM;
      }
      return TA.binary(Op, FL.AT, FL.BT, FL.Bits);
    }
    if (FL.R == FlagState::RecTest) {
      TermRef Z = TA.constant(0, FL.Bits);
      switch (C) {
      case 0x4: return TA.binary(TermOp::CmpEq, FL.RT, Z, FL.Bits);
      case 0x5: return TA.binary(TermOp::CmpNe, FL.RT, Z, FL.Bits);
      case 0x8: return TA.binary(TermOp::CmpSLt, FL.RT, Z, FL.Bits);
      case 0x9: return TA.binary(TermOp::CmpSGe, FL.RT, Z, FL.Bits);
      default: return NO_TERM;
      }
    }
    if (FL.R == FlagState::RecUcomi) {
      switch (C) {
      case 0x2: return TA.binary(TermOp::FCmpLt, FL.AT, FL.BT, 64);
      case 0x3: return TA.binary(TermOp::FCmpGe, FL.AT, FL.BT, 64);
      case 0x4: return TA.binary(TermOp::FCmpEq, FL.AT, FL.BT, 64);
      case 0x5: return TA.binary(TermOp::FCmpNe, FL.AT, FL.BT, 64);
      case 0x6: return TA.binary(TermOp::FCmpLe, FL.AT, FL.BT, 64);
      case 0x7: return TA.binary(TermOp::FCmpGt, FL.AT, FL.BT, 64);
      default: return NO_TERM;
      }
    }
    return NO_TERM;
  };

  /// Junk every caller-saved register (SysV) from the deterministic
  /// clobber stream; results are written back by the caller afterwards.
  auto clobberCallerSaved = [&] {
    for (unsigned R : VolatileGp)
      Gp[R] = {RC.clobber(TotCalls, R), NO_TERM};
    for (unsigned X = 0; X != 16; ++X)
      Xmm[X] = {RC.clobber(TotCalls, 16 + X), NO_TERM};
    poisonFlags();
  };

  /// Performs a call to the named runtime symbol. Returns true when the
  /// trace ended (trap) or an error was recorded.
  auto doCall = [&](const std::string &Sym, const DecodedInst &I) -> bool {
    uint64_t Args[6];
    TermRef ATm[6];
    for (unsigned K = 0; K != 6; ++K) {
      Args[K] = Gp[ArgRegs[K]].V;
      ATm[K] = Gp[ArgRegs[K]].T;
    }

    if (Sym == "rt_trap") {
      Event E;
      E.K = Event::Trap;
      E.TrapCode = static_cast<int>(Args[0]);
      E.Digest = Mem.globalDigest();
      E.Where = where(I);
      TR.Events.push_back(std::move(E));
      return true;
    }

    uint64_t Lo, Hi;
    int TC;
    if (stepIntrinsic(Sym, Args, Lo, Hi, TC)) {
      if (TC != static_cast<int>(rt::TrapCode::None)) {
        Event E;
        E.K = Event::Trap;
        E.TrapCode = TC;
        E.Digest = Mem.globalDigest();
        E.Where = where(I);
        TR.Events.push_back(std::move(E));
        return true;
      }
      TermRef RT = intrinsicResultTerm(TA, Sym, ATm);
      clobberCallerSaved();
      Gp[RAX] = {Lo, RT};
      Gp[RDX] = {Hi, NO_TERM};
      ++TotCalls;
      return false;
    }

    Event E;
    E.K = Event::Call;
    E.Sym = Sym;
    E.NumArgs = 6; // all arg registers; the comparator uses the QIR count
    E.Digest = Mem.globalDigest();
    E.Where = where(I);
    for (unsigned K = 0; K != 6; ++K) {
      E.Args[K] = Args[K];
      E.ArgT[K] = ATm[K];
      if (Args[K] >= FrameLo && Args[K] < FrameHi)
        E.Snap[K] = Mem.snapshot(
            Args[K], static_cast<size_t>(FrameHi - Args[K]));
    }
    TR.Events.push_back(std::move(E));

    uint64_t Lo0 = RC.callRet(EvCall, 0);
    uint64_t Lo1 = RC.callRet(EvCall, 1);
    uint8_t RK = 64;
    if (RC.RetKind) {
      auto It = RC.RetKind->find(Sym);
      if (It != RC.RetKind->end())
        RK = It->second;
    }
    clobberCallerSaved();
    ++TotCalls;
    if (RK >= 1 && RK <= 64) {
      Gp[RAX] = {Lo0 & maskB(RK), TA.callRet(EvCall, 0)};
    } else if (RK == 65) {
      Xmm[0] = {Lo0, TA.callRet(EvCall, 0)};
    } else if (RK == 66) {
      Gp[RAX] = {Lo0, TA.callRet(EvCall, 0)};
      Gp[RDX] = {Lo1, TA.callRet(EvCall, 1)};
    }
    ++EvCall;
    return false;
  };

  uint32_t II = 0;
  uint64_t Fuel = 400000;

  while (true) {
    if (Fuel-- == 0 || TR.Events.size() >= MaxEvents) {
      TR.Bounded = true;
      return TR;
    }
    if (II >= DF.Insts.size()) {
      TR.Error = "machine model: fell off the end of the function";
      return TR;
    }
    const DecodedInst &I = DF.Insts[II];
    uint32_t Next = II + 1;
    unsigned Bits = bitsOfW(I.W);
    uint64_t M = maskB(Bits);

    switch (I.Op) {
    case DecOp::Nop:
      break;

    case DecOp::MovRR: // mov r/m, reg: destination is r/m
      writeRm(I, readGp(I.Reg, Bits), gpTerm(I.Reg, Bits), Bits);
      break;

    case DecOp::MovRM: { // mov reg, [mem]
      uint64_t A = memAddr(I.M);
      writeGp(I.Reg, Mem.load(A, Bits / 8), loadTerm(A, Bits / 8), Bits);
      break;
    }

    case DecOp::MovMR: { // mov [mem], reg
      uint64_t A = memAddr(I.M);
      Mem.store(A, readGp(I.Reg, Bits), Bits / 8);
      ST.store(A, Bits / 8, gpTerm(I.Reg, Bits));
      break;
    }

    case DecOp::MovRI: {
      uint64_t V = static_cast<uint64_t>(I.Imm);
      if (I.ImmOff) {
        auto RIt = RelocAt.find(I.ImmOff);
        if (RIt != RelocAt.end() && RIt->second->Width == 8 &&
            !RIt->second->Symbol.empty()) {
          void *Live = rt::runtimeSymbolAddress(RIt->second->Symbol);
          if (!Live) {
            fail(I, "relocation against unknown runtime symbol '" +
                        RIt->second->Symbol + "'");
            return TR;
          }
          if (V != reinterpret_cast<uint64_t>(Live)) {
            fail(I, "stale relocation: imm64 for '" + RIt->second->Symbol +
                        "' does not match the live symbol address");
            return TR;
          }
        }
      }
      writeGp(I.Rm, V, TA.constant(V & M, Bits), Bits);
      break;
    }

    case DecOp::MovMI: {
      uint64_t A = memAddr(I.M);
      Mem.store(A, static_cast<uint64_t>(I.Imm) & M, Bits / 8);
      ST.store(A, Bits / 8,
               TA.constant(static_cast<uint64_t>(I.Imm) & M, Bits));
      break;
    }

    case DecOp::MovZX: { // movzx reg64, r/m<W>; W is the source width
      Operand S = readRm(I, Bits);
      TermRef T =
          S.T == NO_TERM ? NO_TERM : TA.unary(TermOp::ZExt, S.T, 64);
      writeGp(I.Reg, S.V & M, T, 64);
      break;
    }

    case DecOp::MovSX: {
      Operand S = readRm(I, Bits);
      TermRef T =
          S.T == NO_TERM ? NO_TERM : TA.unary(TermOp::SExt, S.T, 64);
      writeGp(I.Reg, static_cast<uint64_t>(sextB(S.V, Bits)), T, 64);
      break;
    }

    case DecOp::Lea: { // always a 64-bit destination in our emitter
      uint64_t A = memAddr(I.M);
      TermRef T = NO_TERM;
      if (I.M.Base != x64::Reg::NoReg && I.M.Index == x64::Reg::NoReg) {
        TermRef BaseT = Gp[static_cast<unsigned>(I.M.Base) & 15].T;
        if (BaseT != NO_TERM)
          T = I.M.Disp == 0
                  ? BaseT
                  : TA.binary(TermOp::Add, BaseT,
                              TA.constant(static_cast<uint64_t>(
                                              static_cast<int64_t>(I.M.Disp)),
                                          64),
                              64);
      }
      writeGp(I.Reg, A, T, 64);
      break;
    }

    case DecOp::AluRR:
    case DecOp::AluRM:
    case DecOp::AluRI: {
      // AluRR/AluRI: dst = r/m; AluRM: dst = reg.
      Operand A, B;
      if (I.Op == DecOp::AluRM) {
        A = {readGp(I.Reg, Bits), gpTerm(I.Reg, Bits)};
        B = readRm(I, Bits);
      } else {
        A = readRm(I, Bits);
        B = I.Op == DecOp::AluRI
                ? Operand{static_cast<uint64_t>(I.Imm) & M,
                          TA.constant(static_cast<uint64_t>(I.Imm) & M, Bits)}
                : Operand{readGp(I.Reg, Bits), gpTerm(I.Reg, Bits)};
      }
      uint64_t AV = A.V & M, BV = B.V & M;
      uint64_t R = 0;
      TermRef RT = NO_TERM;
      bool Store = true;
      FL.R = FlagState::RecNone;
      FL.Bits = Bits;
      FL.AT = FL.BT = FL.RT = NO_TERM;
      switch (I.AluOp) {
      case Alu::Add:
      case Alu::Adc: {
        unsigned CIn = 0;
        if (I.AluOp == Alu::Adc) {
          if (FL.CF < 0) {
            fail(I, "adc reads undefined CF");
            return TR;
          }
          CIn = FL.CF;
        }
        unsigned __int128 S =
            static_cast<unsigned __int128>(AV) + BV + CIn;
        R = static_cast<uint64_t>(S) & M;
        FL.CF = (S >> Bits) != 0;
        FL.OF = ((~(AV ^ BV) & (AV ^ R)) >> (Bits - 1)) & 1;
        setSZP(R, Bits);
        if (I.AluOp == Alu::Add) {
          RT = TA.binary(TermOp::Add, A.T, B.T, Bits);
          FL.R = FlagState::RecTest;
          FL.RT = RT;
        }
        break;
      }
      case Alu::Sub:
      case Alu::Sbb:
      case Alu::Cmp: {
        unsigned CIn = 0;
        if (I.AluOp == Alu::Sbb) {
          if (FL.CF < 0) {
            fail(I, "sbb reads undefined CF");
            return TR;
          }
          CIn = FL.CF;
        }
        FL.CF = static_cast<unsigned __int128>(AV) <
                static_cast<unsigned __int128>(BV) + CIn;
        R = (AV - BV - CIn) & M;
        FL.OF = (((AV ^ BV) & (AV ^ R)) >> (Bits - 1)) & 1;
        setSZP(R, Bits);
        if (I.AluOp == Alu::Cmp) {
          Store = false;
          FL.R = FlagState::RecCmp;
          FL.AT = A.T;
          FL.BT = B.T;
        } else if (I.AluOp == Alu::Sub) {
          RT = TA.binary(TermOp::Sub, A.T, B.T, Bits);
          // Flags of sub are flags of cmp; record the compare form.
          FL.R = FlagState::RecCmp;
          FL.AT = A.T;
          FL.BT = B.T;
        }
        break;
      }
      case Alu::And:
      case Alu::Or:
      case Alu::Xor: {
        TermOp TO = I.AluOp == Alu::And   ? TermOp::And
                    : I.AluOp == Alu::Or ? TermOp::Or
                                         : TermOp::Xor;
        R = (I.AluOp == Alu::And   ? (AV & BV)
             : I.AluOp == Alu::Or ? (AV | BV)
                                  : (AV ^ BV)) &
            M;
        // xor reg, reg is the canonical zero idiom; give it the exact term.
        if (I.AluOp == Alu::Xor && I.Op == DecOp::AluRR && !I.RmIsMem &&
            I.Rm == I.Reg)
          RT = TA.constant(0, Bits);
        else
          RT = TA.binary(TO, A.T, B.T, Bits);
        FL.CF = FL.OF = 0;
        setSZP(R, Bits);
        FL.R = FlagState::RecTest;
        FL.RT = RT;
        break;
      }
      }
      if (Store) {
        if (I.Op == DecOp::AluRM)
          writeGp(I.Reg, R, RT, Bits);
        else
          writeRm(I, R, RT, Bits);
      }
      break;
    }

    case DecOp::TestRR:
    case DecOp::TestRI: {
      Operand A = readRm(I, Bits);
      Operand B = I.Op == DecOp::TestRI
                      ? Operand{static_cast<uint64_t>(I.Imm) & M,
                                TA.constant(static_cast<uint64_t>(I.Imm) & M,
                                            Bits)}
                      : Operand{readGp(I.Reg, Bits), gpTerm(I.Reg, Bits)};
      uint64_t R = (A.V & B.V) & M;
      FL.CF = FL.OF = 0;
      setSZP(R, Bits);
      FL.R = FlagState::RecTest;
      FL.Bits = Bits;
      bool Same = I.Op == DecOp::TestRR && !I.RmIsMem && I.Rm == I.Reg;
      FL.RT = Same ? A.T : TA.binary(TermOp::And, A.T, B.T, Bits);
      FL.AT = FL.BT = NO_TERM;
      break;
    }

    case DecOp::Neg: {
      Operand A = readRm(I, Bits);
      uint64_t AV = A.V & M;
      uint64_t R = (0 - AV) & M;
      FL.CF = AV != 0;
      FL.OF = Bits < 64 ? AV == (1ull << (Bits - 1))
                        : AV == 0x8000000000000000ull;
      setSZP(R, Bits);
      TermRef RT = A.T == NO_TERM ? NO_TERM : TA.unary(TermOp::Neg, A.T, Bits);
      FL.R = FlagState::RecTest;
      FL.Bits = Bits;
      FL.RT = RT;
      FL.AT = FL.BT = NO_TERM;
      writeRm(I, R, RT, Bits);
      break;
    }

    case DecOp::Not: { // no flags
      Operand A = readRm(I, Bits);
      TermRef RT = A.T == NO_TERM ? NO_TERM : TA.unary(TermOp::Not, A.T, Bits);
      writeRm(I, ~A.V & M, RT, Bits);
      break;
    }

    case DecOp::ImulRR:
    case DecOp::ImulRRI: {
      Operand S = readRm(I, Bits);
      uint64_t AV, BV;
      TermRef AT, BT;
      if (I.Op == DecOp::ImulRR) {
        AV = readGp(I.Reg, Bits);
        AT = gpTerm(I.Reg, Bits);
        BV = S.V;
        BT = S.T;
      } else {
        AV = S.V;
        AT = S.T;
        BV = static_cast<uint64_t>(I.Imm) & M;
        BT = TA.constant(BV, Bits);
      }
      __int128 P = static_cast<__int128>(sextB(AV, Bits)) * sextB(BV, Bits);
      uint64_t R = static_cast<uint64_t>(P) & M;
      FL.CF = FL.OF = P != static_cast<__int128>(sextB(R, Bits));
      FL.ZF = FL.SF = FL.PF = -1; // architecturally undefined
      FL.R = FlagState::RecNone;
      writeGp(I.Reg, R, TA.binary(TermOp::Mul, AT, BT, Bits), Bits);
      break;
    }

    case DecOp::MulDiv: {
      if (Bits < 32) {
        fail(I, "unsupported 8/16-bit mul/div");
        return TR;
      }
      Operand S = readRm(I, Bits);
      uint64_t Op = S.V & M;
      uint64_t ALo = Gp[RAX].V & M, AHi = Gp[RDX].V & M;
      if (I.GrpExt == 4 || I.GrpExt == 5) { // mul / imul (one-operand)
        uint64_t Lo, Hi;
        if (I.GrpExt == 4) {
          unsigned __int128 P =
              static_cast<unsigned __int128>(ALo) * Op;
          Lo = static_cast<uint64_t>(P) & M;
          Hi = static_cast<uint64_t>(P >> Bits) & M;
          FL.CF = FL.OF = Hi != 0;
        } else {
          __int128 P =
              static_cast<__int128>(sextB(ALo, Bits)) * sextB(Op, Bits);
          Lo = static_cast<uint64_t>(P) & M;
          Hi = static_cast<uint64_t>(P >> Bits) & M;
          FL.CF = FL.OF = P != static_cast<__int128>(sextB(Lo, Bits));
        }
        FL.ZF = FL.SF = FL.PF = -1;
        FL.R = FlagState::RecNone;
        writeGp(RAX, Lo, TA.binary(TermOp::Mul, gpTerm(RAX, Bits), S.T, Bits),
                Bits);
        writeGp(RDX, Hi, NO_TERM, Bits);
        break;
      }
      // div / idiv: a #DE is a Fault observable (correct lowerings guard
      // with an explicit rt_trap call first, so a Fault here only ever
      // appears in broken code and shows up as a trace mismatch).
      auto faultDE = [&] {
        Event E;
        E.K = Event::Fault;
        E.Digest = Mem.globalDigest();
        E.Where = where(I);
        TR.Events.push_back(std::move(E));
      };
      uint64_t Q, Rm;
      TermRef QT = NO_TERM;
      if (I.GrpExt == 6) { // div
        unsigned __int128 N =
            (static_cast<unsigned __int128>(AHi) << Bits) | ALo;
        if (Op == 0 || N / Op > M) {
          faultDE();
          return TR;
        }
        Q = static_cast<uint64_t>(N / Op);
        Rm = static_cast<uint64_t>(N % Op);
        if (AHi == 0)
          QT = TA.binary(TermOp::UDiv, gpTerm(RAX, Bits), S.T, Bits);
      } else { // idiv
        __int128 N =
            (static_cast<__int128>(sextB(AHi, Bits)) << Bits) | ALo;
        int64_t D = sextB(Op, Bits);
        if (D == 0) {
          faultDE();
          return TR;
        }
        __int128 QW = N / D;
        int64_t Min = Bits == 64 ? INT64_MIN : INT32_MIN;
        int64_t Max = Bits == 64 ? INT64_MAX : INT32_MAX;
        if (QW < Min || QW > Max) {
          faultDE();
          return TR;
        }
        Q = static_cast<uint64_t>(QW) & M;
        Rm = static_cast<uint64_t>(N % D) & M;
        if (static_cast<int64_t>(sextB(AHi, Bits)) ==
            sextB(ALo, Bits) >> (Bits - 1))
          QT = TA.binary(TermOp::SDiv, gpTerm(RAX, Bits), S.T, Bits);
      }
      poisonFlags();
      writeGp(RAX, Q, QT, Bits);
      writeGp(RDX, Rm, NO_TERM, Bits);
      break;
    }

    case DecOp::Cqo: {
      uint64_t V = static_cast<uint64_t>(
          static_cast<int64_t>(Gp[RAX].V) >> 63);
      TermRef T = Gp[RAX].T == NO_TERM
                      ? NO_TERM
                      : TA.binary(TermOp::AShr, Gp[RAX].T,
                                  TA.constant(63, 64), 64);
      writeGp(RDX, V, T, 64);
      break;
    }

    case DecOp::Cdq: {
      uint64_t V = static_cast<uint64_t>(static_cast<uint32_t>(
          static_cast<int32_t>(Gp[RAX].V & 0xffffffffull) >> 31));
      writeGp(RDX, V, NO_TERM, 32);
      break;
    }

    case DecOp::ShiftRI:
    case DecOp::ShiftRC: {
      unsigned CountMask = Bits == 64 ? 63 : 31;
      uint64_t CntRaw = I.Op == DecOp::ShiftRI
                            ? static_cast<uint64_t>(I.Imm)
                            : Gp[RCX].V;
      unsigned Cnt = static_cast<unsigned>(CntRaw) & CountMask;
      Operand S = readRm(I, Bits);
      uint64_t A = S.V & M;
      if (Cnt == 0) {
        // Value is written back (zero-extending for W32) but flags are
        // untouched.
        writeRm(I, A, S.T, Bits);
        break;
      }
      TermRef CntT = I.Op == DecOp::ShiftRI
                         ? TA.constant(Cnt, Bits)
                         : gpTerm(RCX, Bits);
      uint64_t R = 0;
      int CF = -1, OF = -1;
      TermRef RT = NO_TERM;
      bool LogFlags = true;
      switch (I.ShiftOp) {
      case Shift::Shl:
        R = Cnt >= 64 ? 0 : (A << Cnt) & M;
        CF = (A >> (Bits - Cnt)) & 1;
        OF = Cnt == 1 ? static_cast<int>(((R >> (Bits - 1)) & 1) ^
                                         static_cast<unsigned>(CF))
                      : -1;
        RT = TA.binary(TermOp::Shl, S.T, CntT, Bits);
        break;
      case Shift::Shr:
        R = A >> Cnt;
        CF = (A >> (Cnt - 1)) & 1;
        OF = Cnt == 1 ? static_cast<int>((A >> (Bits - 1)) & 1) : -1;
        RT = TA.binary(TermOp::LShr, S.T, CntT, Bits);
        break;
      case Shift::Sar:
        R = static_cast<uint64_t>(sextB(A, Bits) >> Cnt) & M;
        CF = (sextB(A, Bits) >> (Cnt - 1)) & 1;
        OF = Cnt == 1 ? 0 : -1;
        RT = TA.binary(TermOp::AShr, S.T, CntT, Bits);
        break;
      case Shift::Rol:
        R = ((A << Cnt) | (A >> (Bits - Cnt))) & M;
        CF = R & 1;
        OF = -1;
        LogFlags = false;
        break;
      case Shift::Ror:
        R = ((A >> Cnt) | (A << (Bits - Cnt))) & M;
        CF = (R >> (Bits - 1)) & 1;
        OF = -1;
        LogFlags = false;
        RT = TA.binary(TermOp::RotR, S.T, CntT, Bits);
        break;
      }
      FL.CF = CF;
      FL.OF = OF;
      if (LogFlags) {
        setSZP(R, Bits);
        FL.R = FlagState::RecTest;
        FL.Bits = Bits;
        FL.RT = RT;
        FL.AT = FL.BT = NO_TERM;
      } else {
        FL.R = FlagState::RecNone; // rotates leave SF/ZF/PF unchanged
      }
      writeRm(I, R, RT, Bits);
      break;
    }

    case DecOp::Crc32: { // crc32 reg, r/m (64-bit); flags untouched
      Operand S = readRm(I, 64);
      uint64_t R = crc32u64(Gp[I.Reg].V, S.V);
      writeGp(I.Reg, R, TA.binary(TermOp::Crc32, Gp[I.Reg].T, S.T, 64), 64);
      break;
    }

    case DecOp::Setcc: {
      int C = evalCond(I);
      if (C < 0)
        return TR;
      writeRm(I, static_cast<uint64_t>(C), NO_TERM, 8);
      // When the rest of the register is zero (the setcc/movzx idiom) the
      // whole register now equals the condition bit; attach the term.
      if (!I.RmIsMem && (Gp[I.Rm].V & ~0xffull) == 0) {
        TermRef CT = condTerm(I);
        Gp[I.Rm].T = CT == NO_TERM ? NO_TERM : TA.unary(TermOp::ZExt, CT, 64);
      }
      break;
    }

    case DecOp::Cmovcc: {
      int C = evalCond(I);
      if (C < 0)
        return TR;
      Operand S = readRm(I, Bits);
      uint64_t V = C ? (S.V & M) : readGp(I.Reg, Bits);
      TermRef CT = condTerm(I);
      TermRef T;
      if (CT != NO_TERM)
        T = TA.select(CT, S.T, gpTerm(I.Reg, Bits), Bits);
      else
        T = C ? S.T : gpTerm(I.Reg, Bits);
      writeGp(I.Reg, V, T, Bits); // W32 zero-extends even when not taken
      break;
    }

    case DecOp::Jmp: {
      if (RelocAt.count(I.Rel32Off)) {
        fail(I, "external jmp");
        return TR;
      }
      uint32_t NI = DF.instAt(I.branchTarget());
      if (NI == ~0u) {
        fail(I, "branch target is not an instruction start");
        return TR;
      }
      Next = NI;
      break;
    }

    case DecOp::Jcc: {
      int C = evalCond(I);
      if (C < 0)
        return TR;
      if (C) {
        uint32_t NI = DF.instAt(I.branchTarget());
        if (NI == ~0u) {
          fail(I, "branch target is not an instruction start");
          return TR;
        }
        Next = NI;
      }
      break;
    }

    case DecOp::JmpReg:
      skip("indirect jmp (outside the tv model)");
      return TR;

    case DecOp::CallRel: {
      auto RIt = RelocAt.find(I.Rel32Off);
      if (RIt == RelocAt.end() || RIt->second->Symbol.empty()) {
        skip("unresolved intra-module call (outside the tv model)");
        return TR;
      }
      if (doCall(RIt->second->Symbol, I))
        return TR;
      break;
    }

    case DecOp::CallReg: {
      const char *NP = rt::runtimeSymbolName(
          reinterpret_cast<const void *>(Gp[I.Rm].V));
      std::string Sym;
      if (NP) {
        Sym = NP;
      } else {
        char Buf[40];
        std::snprintf(Buf, sizeof(Buf), "<indirect:0x%llx>",
                      static_cast<unsigned long long>(Gp[I.Rm].V));
        Sym = Buf; // unmatched symbol => trace mismatch downstream
      }
      if (doCall(Sym, I))
        return TR;
      break;
    }

    case DecOp::Ret: {
      uint64_t SP = Gp[RSP].V;
      uint64_t RA = Mem.load(SP, 8);
      if (SP != Rsp0 || RA != RetSentinel) {
        fail(I, "ret with unbalanced stack or clobbered return address");
        return TR;
      }
      Event E;
      E.K = Event::Ret;
      E.RetLo = Gp[RAX].V;
      E.RetHi = Gp[RDX].V;
      E.RetF = Xmm[0].V;
      E.RetLoT = Gp[RAX].T;
      E.RetHiT = Gp[RDX].T;
      E.Digest = Mem.globalDigest();
      E.Where = where(I);
      TR.Events.push_back(std::move(E));
      return TR;
    }

    case DecOp::Ud2: {
      Event E;
      E.K = Event::Fault;
      E.Digest = Mem.globalDigest();
      E.Where = where(I);
      TR.Events.push_back(std::move(E));
      return TR;
    }

    case DecOp::Push: {
      Gp[RSP].V -= 8;
      uint64_t SP = Gp[RSP].V;
      if (SP < FrameLo) {
        fail(I, "stack overflow in the synthetic frame");
        return TR;
      }
      Mem.store(SP, Gp[I.Rm].V, 8);
      ST.store(SP, 8, Gp[I.Rm].T);
      break;
    }

    case DecOp::Pop: {
      uint64_t SP = Gp[RSP].V;
      uint64_t V = Mem.load(SP, 8);
      TermRef T = loadTerm(SP, 8);
      Gp[RSP].V += 8;
      writeGp(I.Rm, V, T, 64);
      break;
    }

    case DecOp::Xadd: {
      if (!I.RmIsMem) {
        fail(I, "xadd without a memory operand");
        return TR;
      }
      uint64_t A = memAddr(I.M);
      unsigned By = Bits / 8;
      uint64_t Old = Mem.load(A, By);
      TermRef OldT = loadTerm(A, By);
      uint64_t Add = readGp(I.Reg, Bits);
      uint64_t R = (Old + Add) & M;
      Mem.store(A, R, By);
      ST.store(A, By, NO_TERM);
      unsigned __int128 S = static_cast<unsigned __int128>(Old & M) + Add;
      FL.CF = (S >> Bits) != 0;
      FL.OF = ((~(Old ^ Add) & (Old ^ R)) >> (Bits - 1)) & 1;
      setSZP(R, Bits);
      FL.R = FlagState::RecNone;
      writeGp(I.Reg, Old, OldT, Bits);
      break;
    }

    case DecOp::MovsdXM: {
      uint64_t A = memAddr(I.M);
      Xmm[I.Reg] = {Mem.load(A, 8), loadTerm(A, 8)};
      break;
    }

    case DecOp::MovsdMX: {
      uint64_t A = memAddr(I.M);
      Mem.store(A, Xmm[I.Reg].V, 8);
      ST.store(A, 8, Xmm[I.Reg].T);
      break;
    }

    case DecOp::MovsdXX: // low lane only, which is all we model
      Xmm[I.Reg] = Xmm[I.Rm];
      break;

    case DecOp::MovqXR:
      Xmm[I.Reg] = Gp[I.Rm];
      break;

    case DecOp::MovqRX:
      writeGp(I.Rm, Xmm[I.Reg].V, Xmm[I.Reg].T, 64);
      break;

    case DecOp::Addsd:
    case DecOp::Subsd:
    case DecOp::Mulsd:
    case DecOp::Divsd: {
      Operand S = I.RmIsMem
                      ? Operand{Mem.load(memAddr(I.M), 8),
                                loadTerm(memAddr(I.M), 8)}
                      : Operand{Xmm[I.Rm].V, Xmm[I.Rm].T};
      double X = asF64(Xmm[I.Reg].V), Y = asF64(S.V);
      double R = I.Op == DecOp::Addsd   ? X + Y
                 : I.Op == DecOp::Subsd ? X - Y
                 : I.Op == DecOp::Mulsd ? X * Y
                                        : X / Y;
      TermOp TO = I.Op == DecOp::Addsd   ? TermOp::FAdd
                  : I.Op == DecOp::Subsd ? TermOp::FSub
                  : I.Op == DecOp::Mulsd ? TermOp::FMul
                                         : TermOp::FDiv;
      Xmm[I.Reg] = {f64Bits(R), TA.binary(TO, Xmm[I.Reg].T, S.T, 64)};
      break;
    }

    case DecOp::Ucomisd: {
      Operand S = I.RmIsMem
                      ? Operand{Mem.load(memAddr(I.M), 8),
                                loadTerm(memAddr(I.M), 8)}
                      : Operand{Xmm[I.Rm].V, Xmm[I.Rm].T};
      double X = asF64(Xmm[I.Reg].V), Y = asF64(S.V);
      FL.OF = FL.SF = 0;
      if (X != X || Y != Y) { // unordered
        FL.ZF = FL.PF = FL.CF = 1;
      } else {
        FL.PF = 0;
        FL.CF = X < Y;
        FL.ZF = X == Y;
      }
      FL.R = FlagState::RecUcomi;
      FL.Bits = 64;
      FL.AT = Xmm[I.Reg].T;
      FL.BT = S.T;
      FL.RT = NO_TERM;
      break;
    }

    case DecOp::Cvtsi2sd: {
      double D = static_cast<double>(static_cast<int64_t>(Gp[I.Rm].V));
      TermRef T = Gp[I.Rm].T == NO_TERM
                      ? NO_TERM
                      : TA.unary(TermOp::SIToFP, Gp[I.Rm].T, 64);
      Xmm[I.Reg] = {f64Bits(D), T};
      break;
    }

    case DecOp::Cvttsd2si: {
      Operand S = I.RmIsMem
                      ? Operand{Mem.load(memAddr(I.M), 8),
                                loadTerm(memAddr(I.M), 8)}
                      : Operand{Xmm[I.Rm].V, Xmm[I.Rm].T};
      uint64_t V = static_cast<uint64_t>(f64ToI64Trunc(asF64(S.V)));
      TermRef T =
          S.T == NO_TERM ? NO_TERM : TA.unary(TermOp::FPToSI, S.T, 64);
      writeGp(I.Reg, V, T, 64);
      break;
    }

    case DecOp::Xorps: {
      TermRef T;
      if (I.Reg == I.Rm)
        T = TA.constant(0, 64);
      else
        T = TA.binary(TermOp::Xor, Xmm[I.Reg].T, Xmm[I.Rm].T, 64);
      Xmm[I.Reg] = {Xmm[I.Reg].V ^ Xmm[I.Rm].V, T};
      break;
    }
    }

    II = Next;
  }
}
