//===- tv/QirStep.cpp - QIR reference stepper ------------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The QIR side of the co-simulation: a reference stepper that mirrors
/// interp/Interp.cpp's evaluation semantics operation for operation —
/// masking at every narrow width, the exact trap conditions, i1 comparison
/// as unsigned 0/1, cvttsd2si saturation — but runs against the synthetic
/// memory model of tv/Sim.h instead of real memory, and maintains a
/// symbolic term next to every concrete lane for counterexample reports.
/// Any divergence between this file and the interpreter is a validator
/// bug; when in doubt, Interp.cpp is the authority.
///
//===----------------------------------------------------------------------===//

#include "runtime/Trap.h"
#include "support/Int128.h"
#include "tv/Sim.h"
#include <cstdio>
#include <cstring>

using namespace qcf;
using namespace qcf::tv;
using qir::Opcode;
using qir::Type;

namespace {

struct Val {
  uint64_t Lo = 0, Hi = 0;
  TermRef LoT = NO_TERM, HiT = NO_TERM;
};

uint64_t maskFor(Type Ty) {
  switch (Ty) {
  case Type::I1:
    return 1;
  case Type::I8:
    return 0xff;
  case Type::I16:
    return 0xffff;
  case Type::I32:
    return 0xffffffff;
  default:
    return ~0ull;
  }
}

int64_t sextT(uint64_t V, Type Ty) {
  switch (Ty) {
  case Type::I1:
    return (V & 1) ? -1 : 0;
  case Type::I8:
    return static_cast<int8_t>(V);
  case Type::I16:
    return static_cast<int16_t>(V);
  case Type::I32:
    return static_cast<int32_t>(V);
  default:
    return static_cast<int64_t>(V);
  }
}

unsigned bitsOf(Type Ty) {
  return qir::isIntType(Ty) ? qir::intBits(Ty) : 64;
}

Int128 toI128(const Val &V) { return makeInt128(V.Lo, V.Hi); }

void fromI128(Val &D, Int128 V) {
  D.Lo = lo64(V);
  D.Hi = hi64(V);
  D.LoT = D.HiT = NO_TERM;
}

double asF64(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

uint64_t f64Bits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

int64_t f64ToI64Trunc(double D) {
  if (!(D >= -9.2233720368547758e18 && D < 9.2233720368547758e18))
    return INT64_MIN;
  return static_cast<int64_t>(D);
}

bool evalICmp(qir::CmpPred P, const Val &A, const Val &B, Type OpTy) {
  if (OpTy == Type::I128) {
    Int128 X = toI128(A), Y = toI128(B);
    UInt128 UX = static_cast<UInt128>(X), UY = static_cast<UInt128>(Y);
    switch (P) {
    case qir::CmpPred::Eq: return X == Y;
    case qir::CmpPred::Ne: return X != Y;
    case qir::CmpPred::SLt: return X < Y;
    case qir::CmpPred::SLe: return X <= Y;
    case qir::CmpPred::SGt: return X > Y;
    case qir::CmpPred::SGe: return X >= Y;
    case qir::CmpPred::ULt: return UX < UY;
    case qir::CmpPred::ULe: return UX <= UY;
    case qir::CmpPred::UGt: return UX > UY;
    case qir::CmpPred::UGe: return UX >= UY;
    }
    return false;
  }
  // i1 values compare as unsigned 0/1 regardless of predicate signedness.
  int64_t SX, SY;
  if (OpTy == Type::I1) {
    SX = static_cast<int64_t>(A.Lo & 1);
    SY = static_cast<int64_t>(B.Lo & 1);
  } else {
    SX = sextT(A.Lo, OpTy);
    SY = sextT(B.Lo, OpTy);
  }
  uint64_t UX = A.Lo, UY = B.Lo;
  switch (P) {
  case qir::CmpPred::Eq: return UX == UY;
  case qir::CmpPred::Ne: return UX != UY;
  case qir::CmpPred::SLt: return SX < SY;
  case qir::CmpPred::SLe: return SX <= SY;
  case qir::CmpPred::SGt: return SX > SY;
  case qir::CmpPred::SGe: return SX >= SY;
  case qir::CmpPred::ULt: return UX < UY;
  case qir::CmpPred::ULe: return UX <= UY;
  case qir::CmpPred::UGt: return UX > UY;
  case qir::CmpPred::UGe: return UX >= UY;
  }
  return false;
}

bool evalFCmp(qir::CmpPred P, double A, double B) {
  switch (P) {
  case qir::CmpPred::Eq: return A == B;
  case qir::CmpPred::Ne: return A != B;
  case qir::CmpPred::SLt: case qir::CmpPred::ULt: return A < B;
  case qir::CmpPred::SLe: case qir::CmpPred::ULe: return A <= B;
  case qir::CmpPred::SGt: case qir::CmpPred::UGt: return A > B;
  case qir::CmpPred::SGe: case qir::CmpPred::UGe: return A >= B;
  }
  return false;
}

TermOp icmpTermOp(qir::CmpPred P) {
  switch (P) {
  case qir::CmpPred::Eq: return TermOp::CmpEq;
  case qir::CmpPred::Ne: return TermOp::CmpNe;
  case qir::CmpPred::SLt: return TermOp::CmpSLt;
  case qir::CmpPred::SLe: return TermOp::CmpSLe;
  case qir::CmpPred::SGt: return TermOp::CmpSGt;
  case qir::CmpPred::SGe: return TermOp::CmpSGe;
  case qir::CmpPred::ULt: return TermOp::CmpULt;
  case qir::CmpPred::ULe: return TermOp::CmpULe;
  case qir::CmpPred::UGt: return TermOp::CmpUGt;
  case qir::CmpPred::UGe: return TermOp::CmpUGe;
  }
  return TermOp::CmpEq;
}

TermOp fcmpTermOp(qir::CmpPred P) {
  switch (P) {
  case qir::CmpPred::Eq: return TermOp::FCmpEq;
  case qir::CmpPred::Ne: return TermOp::FCmpNe;
  case qir::CmpPred::SLt: case qir::CmpPred::ULt: return TermOp::FCmpLt;
  case qir::CmpPred::SLe: case qir::CmpPred::ULe: return TermOp::FCmpLe;
  case qir::CmpPred::SGt: case qir::CmpPred::UGt: return TermOp::FCmpGt;
  case qir::CmpPred::SGe: case qir::CmpPred::UGe: return TermOp::FCmpGe;
  }
  return TermOp::FCmpEq;
}

} // namespace

SlotLayout tv::computeSlotLayout(const qir::Function &F) {
  SlotLayout L;
  uint64_t Off = 0;
  for (uint32_t I = 0; I != F.numInsts(); ++I) {
    const qir::Inst &In = F.Insts[I];
    if (In.Op != Opcode::StackSlot)
      continue;
    uint64_t Size = In.Imm ? In.Imm : 1;
    Off = (Off + 15) & ~15ull;
    L.SlotAddr[I] = SlotSpaceBase + Off;
    L.SlotSize[I] = static_cast<uint32_t>(Size);
    L.MaxSnap = std::min(std::max(L.MaxSnap, static_cast<size_t>(Size)),
                         MaxSnapBytes);
    Off += Size;
  }
  L.Span = (Off + 15) & ~15ull;
  return L;
}

Trace tv::runQirRound(const qir::Function &F, const qir::Module &M,
                      const SlotLayout &Slots, const RoundCtx &RC,
                      const std::vector<uint64_t> &ArgLanes,
                      const std::vector<TermRef> &ArgTerms, TermArena &TA) {
  Trace TR;
  if (F.numBlocks() == 0 || F.block(0).empty()) {
    TR.Skip = true;
    TR.Error = "empty function";
    return TR;
  }

  std::vector<Val> Regs(F.numInsts());
  unsigned Lane = 0;
  for (unsigned P = 0; P != F.numParams(); ++P) {
    Val &S = Regs[F.paramValue(P)];
    S.Lo = ArgLanes[Lane];
    S.LoT = ArgTerms[Lane];
    ++Lane;
    if (qir::isTwoLane(F.paramTypes()[P])) {
      S.Hi = ArgLanes[Lane];
      S.HiT = ArgTerms[Lane];
      ++Lane;
    }
  }

  MemModel Mem;
  Mem.OracleSeed = RC.OracleSeed;
  Mem.PrivLo = SlotSpaceBase;
  Mem.PrivHi = SlotSpaceBase + std::max<uint64_t>(Slots.Span, 16);
  StoreTerms ST;

  qir::BlockId Cur = 0;
  uint32_t Idx = F.block(0).Begin;
  uint64_t Fuel = 100000;
  unsigned EvCall = 0;

  auto where = [&](uint32_t I) {
    char B[48];
    std::snprintf(B, sizeof(B), "block %u inst %u", Cur, I);
    return std::string(B);
  };

  auto emitTrap = [&](int Code, uint32_t I) {
    Event E;
    E.K = Event::Trap;
    E.TrapCode = Code;
    E.Digest = Mem.globalDigest();
    E.Where = where(I);
    TR.Events.push_back(std::move(E));
  };

  auto jumpTo = [&](qir::BlockId To) {
    const qir::Block &B = F.block(To);
    // Phi incomings are a parallel move: read all sources against the
    // pre-jump register state, then commit.
    std::vector<std::pair<uint32_t, Val>> Upd;
    for (uint32_t J = B.Begin; J != B.End; ++J) {
      const qir::Inst &Ph = F.Insts[J];
      if (Ph.Op != Opcode::Phi)
        continue;
      const qir::PhiIn *Ins = F.phiIncomings(Ph);
      for (unsigned K = 0; K != F.numPhiIncomings(Ph); ++K)
        if (Ins[K].Pred == Cur) {
          Upd.emplace_back(J, Regs[Ins[K].Val]);
          break;
        }
    }
    for (auto &[V, S] : Upd)
      Regs[V] = S;
    Cur = To;
    Idx = B.Begin;
  };

  auto loadTerm = [&](uint64_t Addr, unsigned Sz) -> TermRef {
    TermRef T = ST.load(Addr, Sz);
    if (T != NO_TERM)
      return T;
    if (!Mem.isPriv(Addr) && Mem.globalClean(Addr, Sz))
      return TA.oracleLoad(Addr, Sz * 8);
    return NO_TERM;
  };

  while (true) {
    if (Fuel-- == 0 || TR.Events.size() >= MaxEvents) {
      TR.Bounded = true;
      return TR;
    }
    const qir::Inst &I = F.Insts[Idx];
    Val &D = Regs[Idx];
    uint64_t Mask = maskFor(I.Ty);
    unsigned W = qir::isIntType(I.Ty) && I.Ty != Type::I128
                     ? qir::intBits(I.Ty)
                     : 64;
    const Val &A = I.A < Regs.size() ? Regs[I.A] : Regs[0];
    const Val &B = I.B < Regs.size() ? Regs[I.B] : Regs[0];

    switch (I.Op) {
    case Opcode::Param:
    case Opcode::Phi:
      break; // Pre-assigned / applied on edges.

    case Opcode::ConstInt:
      D.Lo = I.Imm & Mask;
      D.Hi = 0;
      D.LoT = TA.constant(D.Lo, W);
      break;
    case Opcode::ConstF64:
    case Opcode::ConstPtr:
      D.Lo = I.Imm;
      D.Hi = 0;
      D.LoT = TA.constant(D.Lo, 64);
      break;
    case Opcode::ConstI128: {
      Int128 V = F.i128Constant(I);
      D.Lo = lo64(V);
      D.Hi = hi64(V);
      break;
    }
    case Opcode::StackSlot: {
      auto It = Slots.SlotAddr.find(Idx);
      D.Lo = It != Slots.SlotAddr.end() ? It->second : SlotSpaceBase;
      D.Hi = 0;
      D.LoT = TA.constant(D.Lo, 64);
      break;
    }

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      if (I.Ty == Type::I128) {
        UInt128 X = static_cast<UInt128>(toI128(A));
        UInt128 Y = static_cast<UInt128>(toI128(B));
        UInt128 R = I.Op == Opcode::Add   ? X + Y
                    : I.Op == Opcode::Sub ? X - Y
                                          : X * Y;
        fromI128(D, static_cast<Int128>(R));
        break;
      }
      uint64_t R = I.Op == Opcode::Add   ? A.Lo + B.Lo
                   : I.Op == Opcode::Sub ? A.Lo - B.Lo
                                         : A.Lo * B.Lo;
      D.Lo = R & Mask;
      D.Hi = 0;
      TermOp TO = I.Op == Opcode::Add   ? TermOp::Add
                  : I.Op == Opcode::Sub ? TermOp::Sub
                                        : TermOp::Mul;
      D.LoT = TA.binary(TO, A.LoT, B.LoT, W);
      break;
    }

    case Opcode::SDiv: {
      if (I.Ty == Type::I128) {
        Int128 Q;
        if (divOverflow128(toI128(A), toI128(B), &Q)) {
          emitTrap(static_cast<int>(toI128(B) == 0 ? rt::TrapCode::DivByZero
                                                   : rt::TrapCode::Overflow),
                   Idx);
          return TR;
        }
        fromI128(D, Q);
        break;
      }
      int64_t X = sextT(A.Lo, I.Ty), Y = sextT(B.Lo, I.Ty);
      if (Y == 0) {
        emitTrap(static_cast<int>(rt::TrapCode::DivByZero), Idx);
        return TR;
      }
      int64_t Min = -sextT(maskFor(I.Ty) >> 1, I.Ty) - 1;
      if (Y == -1 && X == Min) {
        emitTrap(static_cast<int>(rt::TrapCode::Overflow), Idx);
        return TR;
      }
      D.Lo = static_cast<uint64_t>(X / Y) & Mask;
      D.Hi = 0;
      D.LoT = TA.binary(TermOp::SDiv, A.LoT, B.LoT, W);
      break;
    }
    case Opcode::UDiv: {
      if (I.Ty == Type::I128) {
        UInt128 Y = static_cast<UInt128>(toI128(B));
        if (Y == 0) {
          emitTrap(static_cast<int>(rt::TrapCode::DivByZero), Idx);
          return TR;
        }
        fromI128(D, static_cast<Int128>(static_cast<UInt128>(toI128(A)) / Y));
        break;
      }
      if ((B.Lo & Mask) == 0) {
        emitTrap(static_cast<int>(rt::TrapCode::DivByZero), Idx);
        return TR;
      }
      D.Lo = ((A.Lo & Mask) / (B.Lo & Mask)) & Mask;
      D.Hi = 0;
      D.LoT = TA.binary(TermOp::UDiv, A.LoT, B.LoT, W);
      break;
    }
    case Opcode::SRem: {
      if (I.Ty == Type::I128) {
        Int128 Y = toI128(B);
        if (Y == 0) {
          emitTrap(static_cast<int>(rt::TrapCode::DivByZero), Idx);
          return TR;
        }
        fromI128(D, Y == -1 ? 0 : toI128(A) % Y);
        break;
      }
      int64_t X = sextT(A.Lo, I.Ty), Y = sextT(B.Lo, I.Ty);
      if (Y == 0) {
        emitTrap(static_cast<int>(rt::TrapCode::DivByZero), Idx);
        return TR;
      }
      D.Lo = Y == -1 ? 0 : static_cast<uint64_t>(X % Y) & Mask;
      D.Hi = 0;
      D.LoT = TA.binary(TermOp::SRem, A.LoT, B.LoT, W);
      break;
    }

    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor: {
      uint64_t RL = I.Op == Opcode::And  ? A.Lo & B.Lo
                    : I.Op == Opcode::Or ? A.Lo | B.Lo
                                         : A.Lo ^ B.Lo;
      uint64_t RH = I.Op == Opcode::And  ? A.Hi & B.Hi
                    : I.Op == Opcode::Or ? A.Hi | B.Hi
                                         : A.Hi ^ B.Hi;
      D.Lo = RL & Mask;
      D.Hi = I.Ty == Type::I128 ? RH : 0;
      TermOp TO = I.Op == Opcode::And  ? TermOp::And
                  : I.Op == Opcode::Or ? TermOp::Or
                                       : TermOp::Xor;
      if (I.Ty != Type::I128)
        D.LoT = TA.binary(TO, A.LoT, B.LoT, W);
      break;
    }

    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      if (I.Ty == Type::I128) {
        unsigned S = static_cast<unsigned>(B.Lo) & 127;
        Int128 X = toI128(A);
        Int128 R = I.Op == Opcode::Shl
                       ? static_cast<Int128>(static_cast<UInt128>(X) << S)
                   : I.Op == Opcode::LShr
                       ? static_cast<Int128>(static_cast<UInt128>(X) >> S)
                       : X >> S;
        fromI128(D, R);
        break;
      }
      unsigned S = static_cast<unsigned>(B.Lo) & (W - 1);
      uint64_t R;
      if (I.Op == Opcode::Shl)
        R = A.Lo << S;
      else if (I.Op == Opcode::LShr)
        R = (A.Lo & Mask) >> S;
      else
        R = static_cast<uint64_t>(sextT(A.Lo, I.Ty) >> S);
      D.Lo = R & Mask;
      D.Hi = 0;
      TermOp TO = I.Op == Opcode::Shl    ? TermOp::Shl
                  : I.Op == Opcode::LShr ? TermOp::LShr
                                         : TermOp::AShr;
      D.LoT = TA.binary(TO, A.LoT, B.LoT, W);
      break;
    }
    case Opcode::RotR: {
      if (I.Ty == Type::I128) {
        unsigned S = static_cast<unsigned>(B.Lo) & 127;
        UInt128 X = static_cast<UInt128>(toI128(A));
        UInt128 R = S == 0 ? X : (X >> S) | (X << (128 - S));
        fromI128(D, static_cast<Int128>(R));
        break;
      }
      unsigned S = static_cast<unsigned>(B.Lo) & (W - 1);
      uint64_t V = A.Lo & Mask;
      D.Lo = S == 0 ? V : ((V >> S) | (V << (W - S))) & Mask;
      D.Hi = 0;
      D.LoT = TA.binary(TermOp::RotR, A.LoT, B.LoT, W);
      break;
    }

    case Opcode::Neg:
      if (I.Ty == Type::I128) {
        fromI128(D, static_cast<Int128>(0 - static_cast<UInt128>(toI128(A))));
      } else {
        D.Lo = (0 - A.Lo) & Mask;
        D.Hi = 0;
        D.LoT = TA.unary(TermOp::Neg, A.LoT, W);
      }
      break;
    case Opcode::Not:
      D.Lo = ~A.Lo & Mask;
      D.Hi = I.Ty == Type::I128 ? ~A.Hi : 0;
      if (I.Ty != Type::I128)
        D.LoT = TA.unary(TermOp::Not, A.LoT, W);
      break;

    case Opcode::SAddTrap:
    case Opcode::SSubTrap:
    case Opcode::SMulTrap: {
      if (I.Ty == Type::I128) {
        Int128 R = 0;
        bool Ovf;
        if (I.Op == Opcode::SAddTrap)
          Ovf = addOverflow128(toI128(A), toI128(B), &R);
        else if (I.Op == Opcode::SSubTrap)
          Ovf = subOverflow128(toI128(A), toI128(B), &R);
        else
          Ovf = mulOverflow128(toI128(A), toI128(B), &R);
        if (Ovf) {
          emitTrap(static_cast<int>(rt::TrapCode::Overflow), Idx);
          return TR;
        }
        fromI128(D, R);
        break;
      }
      int64_t X = sextT(A.Lo, I.Ty), Y = sextT(B.Lo, I.Ty);
      int64_t R = 0;
      bool Ovf;
      if (I.Ty == Type::I32) {
        int32_t R32 = 0;
        if (I.Op == Opcode::SAddTrap)
          Ovf = __builtin_add_overflow(static_cast<int32_t>(X),
                                       static_cast<int32_t>(Y), &R32);
        else if (I.Op == Opcode::SSubTrap)
          Ovf = __builtin_sub_overflow(static_cast<int32_t>(X),
                                       static_cast<int32_t>(Y), &R32);
        else
          Ovf = __builtin_mul_overflow(static_cast<int32_t>(X),
                                       static_cast<int32_t>(Y), &R32);
        R = R32;
      } else {
        if (I.Op == Opcode::SAddTrap)
          Ovf = __builtin_add_overflow(X, Y, &R);
        else if (I.Op == Opcode::SSubTrap)
          Ovf = __builtin_sub_overflow(X, Y, &R);
        else
          Ovf = __builtin_mul_overflow(X, Y, &R);
      }
      if (Ovf) {
        emitTrap(static_cast<int>(rt::TrapCode::Overflow), Idx);
        return TR;
      }
      D.Lo = static_cast<uint64_t>(R) & Mask;
      D.Hi = 0;
      TermOp TO = I.Op == Opcode::SAddTrap   ? TermOp::Add
                  : I.Op == Opcode::SSubTrap ? TermOp::Sub
                                             : TermOp::Mul;
      D.LoT = TA.binary(TO, A.LoT, B.LoT, W);
      break;
    }

    case Opcode::Crc32:
      D.Lo = crc32u64(A.Lo, B.Lo);
      D.Hi = 0;
      D.LoT = TA.binary(TermOp::Crc32, A.LoT, B.LoT, 64);
      break;
    case Opcode::LongMulFold:
      D.Lo = longMulFold(A.Lo, B.Lo);
      D.Hi = 0;
      D.LoT = TA.binary(TermOp::LMulFold, A.LoT, B.LoT, 64);
      break;

    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      double X = asF64(A.Lo), Y = asF64(B.Lo);
      double R = I.Op == Opcode::FAdd   ? X + Y
                 : I.Op == Opcode::FSub ? X - Y
                 : I.Op == Opcode::FMul ? X * Y
                                        : X / Y;
      D.Lo = f64Bits(R);
      D.Hi = 0;
      TermOp TO = I.Op == Opcode::FAdd   ? TermOp::FAdd
                  : I.Op == Opcode::FSub ? TermOp::FSub
                  : I.Op == Opcode::FMul ? TermOp::FMul
                                         : TermOp::FDiv;
      D.LoT = TA.binary(TO, A.LoT, B.LoT, 64);
      break;
    }
    case Opcode::FNeg:
      D.Lo = f64Bits(-asF64(A.Lo));
      D.Hi = 0;
      D.LoT = TA.unary(TermOp::FNeg, A.LoT, 64);
      break;

    case Opcode::ICmp: {
      Type OpTy = F.valueType(I.A);
      D.Lo = evalICmp(I.cmpPred(), A, B, OpTy);
      D.Hi = 0;
      if (OpTy != Type::I128)
        D.LoT = TA.binary(icmpTermOp(I.cmpPred()), A.LoT, B.LoT,
                          bitsOf(OpTy));
      break;
    }
    case Opcode::FCmp:
      D.Lo = evalFCmp(I.cmpPred(), asF64(A.Lo), asF64(B.Lo));
      D.Hi = 0;
      D.LoT = TA.binary(fcmpTermOp(I.cmpPred()), A.LoT, B.LoT, 64);
      break;

    case Opcode::Select: {
      const Val &C = Regs[I.C];
      const Val &Src = (A.Lo & 1) ? B : C;
      D.Lo = Src.Lo;
      D.Hi = Src.Hi;
      D.LoT = TA.select(A.LoT, B.LoT, C.LoT, W);
      D.HiT = Src.HiT;
      break;
    }

    case Opcode::ZExt:
      D.Lo = A.Lo;
      D.Hi = 0;
      D.LoT = I.Ty == Type::I128
                  ? A.LoT
                  : TA.unary(TermOp::ZExt, A.LoT, W);
      break;
    case Opcode::SExt: {
      Type SrcTy = F.valueType(I.A);
      int64_t S = sextT(A.Lo, SrcTy);
      D.Lo = static_cast<uint64_t>(S) & Mask;
      D.Hi = I.Ty == Type::I128 ? static_cast<uint64_t>(S >> 63) : 0;
      if (I.Ty != Type::I128)
        D.LoT = TA.unary(TermOp::SExt, A.LoT, W);
      break;
    }
    case Opcode::Trunc:
      D.Lo = A.Lo & Mask;
      D.Hi = 0;
      D.LoT = TA.unary(TermOp::Trunc, A.LoT, W);
      break;
    case Opcode::SIToFP: {
      Type SrcTy = F.valueType(I.A);
      double R = SrcTy == Type::I128
                     ? static_cast<double>(toI128(A))
                     : static_cast<double>(sextT(A.Lo, SrcTy));
      D.Lo = f64Bits(R);
      D.Hi = 0;
      if (SrcTy != Type::I128)
        D.LoT = TA.unary(TermOp::SIToFP, A.LoT, 64);
      break;
    }
    case Opcode::FPToSI:
      D.Lo = static_cast<uint64_t>(f64ToI64Trunc(asF64(A.Lo))) & Mask;
      D.Hi = 0;
      D.LoT = TA.unary(TermOp::FPToSI, A.LoT, W);
      break;
    case Opcode::Bitcast:
      D.Lo = A.Lo;
      D.Hi = 0;
      D.LoT = A.LoT;
      break;

    case Opcode::PackD128:
    case Opcode::PackI128:
      D.Lo = A.Lo;
      D.Hi = B.Lo;
      D.LoT = A.LoT;
      D.HiT = B.LoT;
      break;
    case Opcode::ExtractLo:
      D.Lo = A.Lo;
      D.Hi = 0;
      D.LoT = A.LoT;
      break;
    case Opcode::ExtractHi:
      D.Lo = A.Hi;
      D.Hi = 0;
      D.LoT = A.HiT;
      break;

    case Opcode::Load: {
      uint64_t Addr = A.Lo;
      unsigned Sz = qir::typeSize(I.Ty);
      if (Sz == 16) {
        D.Lo = Mem.load(Addr, 8);
        D.Hi = Mem.load(Addr + 8, 8);
        D.LoT = loadTerm(Addr, 8);
        D.HiT = loadTerm(Addr + 8, 8);
      } else {
        D.Lo = Mem.load(Addr, Sz);
        D.Hi = 0;
        D.LoT = loadTerm(Addr, Sz);
      }
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = A.Lo;
      unsigned Sz = qir::typeSize(I.Ty);
      if (Sz == 16) {
        Mem.store(Addr, B.Lo, 8);
        Mem.store(Addr + 8, B.Hi, 8);
        ST.store(Addr, 8, B.LoT);
        ST.store(Addr + 8, 8, B.HiT);
      } else {
        Mem.store(Addr, B.Lo, Sz);
        ST.store(Addr, Sz, B.LoT);
      }
      break;
    }
    case Opcode::Gep: {
      uint64_t Addr = A.Lo + I.Imm;
      TermRef T = A.LoT;
      if (I.Imm)
        T = TA.binary(TermOp::Add, T, TA.constant(I.Imm, 64), 64);
      if (I.B != qir::INVALID_VALUE) {
        Addr += B.Lo * I.C;
        TermRef IxT =
            TA.binary(TermOp::Mul, B.LoT, TA.constant(I.C, 64), 64);
        T = TA.binary(TermOp::Add, T, IxT, 64);
      }
      D.Lo = Addr;
      D.Hi = 0;
      D.LoT = T;
      break;
    }
    case Opcode::AtomicAdd: {
      uint64_t Addr = A.Lo;
      unsigned Sz = I.Ty == Type::I32 ? 4 : 8;
      uint64_t Old = Mem.load(Addr, Sz);
      Mem.store(Addr, (Old + B.Lo) & maskFor(I.Ty), Sz);
      ST.store(Addr, Sz, NO_TERM);
      D.Lo = Old;
      D.Hi = 0;
      D.LoT = NO_TERM;
      break;
    }

    case Opcode::Call: {
      const qir::RuntimeSig &Sig = M.symbol(F.callee(I));
      uint64_t SV[6] = {};
      TermRef STm[6] = {NO_TERM, NO_TERM, NO_TERM, NO_TERM, NO_TERM, NO_TERM};
      uint8_t SB[6] = {64, 64, 64, 64, 64, 64};
      unsigned NS = 0;
      const qir::ValueId *CA = F.callArgs(I);
      bool TooMany = false;
      for (unsigned K = 0; K != F.numCallArgs(I) && !TooMany; ++K) {
        const Val &S = Regs[CA[K]];
        Type Ty = F.valueType(CA[K]);
        if (NS >= 6) {
          TooMany = true;
          break;
        }
        SV[NS] = S.Lo;
        STm[NS] = S.LoT;
        SB[NS] = static_cast<uint8_t>(bitsOf(Ty) == 128 ? 64 : bitsOf(Ty));
        ++NS;
        if (qir::isTwoLane(Ty)) {
          if (NS >= 6) {
            TooMany = true;
            break;
          }
          SV[NS] = S.Hi;
          STm[NS] = S.HiT;
          SB[NS] = 64;
          ++NS;
        }
      }
      if (TooMany) {
        TR.Skip = true;
        TR.Error = "call with more than 6 argument slots";
        return TR;
      }

      if (Sig.Name == "rt_trap") {
        emitTrap(static_cast<int>(SV[0]), Idx);
        return TR;
      }

      uint64_t Lo, Hi;
      int TC;
      if (stepIntrinsic(Sig.Name, SV, Lo, Hi, TC)) {
        if (TC != static_cast<int>(rt::TrapCode::None)) {
          emitTrap(TC, Idx);
          return TR;
        }
        if (Sig.RetType != Type::Void) {
          D.Lo = Lo & maskFor(Sig.RetType);
          D.Hi = qir::isTwoLane(Sig.RetType) ? Hi : 0;
          D.LoT = intrinsicResultTerm(TA, Sig.Name, STm);
          D.HiT = NO_TERM;
        }
        break;
      }

      Event E;
      E.K = Event::Call;
      E.Sym = Sig.Name;
      E.NumArgs = NS;
      E.Digest = Mem.globalDigest();
      E.Where = where(Idx);
      for (unsigned K = 0; K != NS; ++K) {
        E.Args[K] = SV[K];
        E.ArgT[K] = STm[K];
        E.ArgBits[K] = SB[K];
        if (Mem.isPriv(SV[K])) {
          size_t Len = std::min<uint64_t>(Slots.MaxSnap, Mem.PrivHi - SV[K]);
          for (const auto &[SlotV, Addr] : Slots.SlotAddr) {
            uint32_t Size = Slots.SlotSize.at(SlotV);
            if (SV[K] >= Addr && SV[K] < Addr + Size) {
              Len = Addr + Size - SV[K];
              break;
            }
          }
          E.Snap[K] = Mem.snapshot(SV[K], Len);
        }
      }
      TR.Events.push_back(std::move(E));

      if (Sig.RetType != Type::Void) {
        D.Lo = RC.callRet(EvCall, 0) & maskFor(Sig.RetType);
        D.LoT = TA.callRet(EvCall, 0);
        if (qir::isTwoLane(Sig.RetType)) {
          D.Hi = RC.callRet(EvCall, 1);
          D.HiT = TA.callRet(EvCall, 1);
        }
      }
      ++EvCall;
      break;
    }

    case Opcode::Br:
      jumpTo(I.A);
      continue;
    case Opcode::CondBr:
      jumpTo((Regs[I.A].Lo & 1) ? I.B : I.C);
      continue;
    case Opcode::Ret: {
      Event E;
      E.K = Event::Ret;
      E.Digest = Mem.globalDigest();
      E.Where = where(Idx);
      if (I.A != qir::INVALID_VALUE) {
        const Val &S = Regs[I.A];
        E.RetLo = S.Lo;
        E.RetHi = S.Hi;
        E.RetLoT = S.LoT;
        E.RetHiT = S.HiT;
      }
      TR.Events.push_back(std::move(E));
      return TR;
    }
    case Opcode::Unreachable: {
      Event E;
      E.K = Event::Fault;
      E.Digest = Mem.globalDigest();
      E.Where = where(Idx);
      TR.Events.push_back(std::move(E));
      return TR;
    }
    }
    ++Idx;
  }
}
