//===- tv/Sim.h - Co-simulation internals -----------------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared internals of the two translation-validation steppers (QirStep.cpp
/// and MachStep.cpp): the synthetic address-space layout, the deterministic
/// memory oracle, the observable-event trace both sides emit, and the
/// intrinsic runtime helpers both sides interpret semantically.
///
/// Address spaces. Neither stepper touches real memory; every load and
/// store goes through MemModel. Three disjoint synthetic regions exist:
///
///   * argument space (0x7700_0000_0000 + i * 0x10_0000): where pointer
///     parameters point; backed by the oracle, identical on both sides;
///   * a per-side private region — the QIR stepper's stack-slot space at
///     0x6200_0000_0000, the machine stepper's frame below Rsp0 — whose
///     unwritten bytes read as zero (uninitialized stack) and whose
///     contents are compared only through call-argument snapshots;
///   * everything else is global memory: unwritten bytes come from a
///     seeded hash oracle (same seed both sides, new seed every round),
///     writes land in an ordered per-side overlay whose digest is an
///     observable at every call event and at return.
///
/// Runtime calls are uninterpreted: both sides emit an ordered Call event
/// and take the result from the same per-(round, call-index) generator —
/// except the pure arithmetic helpers in the intrinsic set (128-bit
/// division, overflow checks, crc32, ...), which back-ends also use as
/// lowering devices, so they are interpreted semantically on both sides to
/// keep the event streams aligned.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_TV_SIM_H
#define QCF_TV_SIM_H

#include "qir/Function.h"
#include "support/Hash.h"
#include "tv/Term.h"
#include "tv/Tv.h"
#include "x64/Decode.h"
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcf::tv {

// --- Synthetic address-space layout -----------------------------------------

inline constexpr uint64_t SlotSpaceBase = 0x620000000000ull;
inline constexpr uint64_t ArgSpaceBase = 0x770000000000ull;
inline constexpr uint64_t ArgSpaceStride = 0x100000ull;
/// Machine stack pointer at entry; ≡ 8 (mod 16) as after a real call.
inline constexpr uint64_t Rsp0 = 0x7fffffde0008ull;
inline constexpr uint64_t FrameLo = Rsp0 - (1ull << 20);
inline constexpr uint64_t FrameHi = Rsp0 + 16;
/// Fake return address pushed at [Rsp0]; a ret that pops it exits.
inline constexpr uint64_t RetSentinel = 0x0defaced0badc0deull;

/// Snapshot windows are clamped so a degenerate slot size cannot make
/// events arbitrarily large.
inline constexpr size_t MaxSnapBytes = 4096;

/// Observable-event cap per round. Every event folds the global-store
/// overlay into a digest and snapshots pointer arguments, so a query
/// loop that calls the runtime per row would otherwise go quadratic in
/// its (oracle-garbage) trip count. A round that hits the cap stops as
/// Bounded and the comparator prefix-matches — same soft-pass as fuel
/// exhaustion.
inline constexpr size_t MaxEvents = 384;

inline uint64_t mix(uint64_t A, uint64_t B) { return hashU64(A ^ hashU64(B)); }

// --- Memory -----------------------------------------------------------------

/// One side's memory: a private region (zero-backed) plus global memory
/// (oracle-backed), each with a byte-granular write overlay. std::map keeps
/// the overlay ordered so digests are deterministic.
struct MemModel {
  uint64_t OracleSeed = 0;
  uint64_t PrivLo = 0, PrivHi = 0;
  std::map<uint64_t, uint8_t> Global;
  std::map<uint64_t, uint8_t> Priv;

  bool isPriv(uint64_t A) const { return A >= PrivLo && A < PrivHi; }

  uint8_t oracleByte(uint64_t A) const {
    uint64_t Word = hashU64((A & ~7ull) ^ OracleSeed);
    return static_cast<uint8_t>(Word >> ((A & 7) * 8));
  }

  uint8_t loadByte(uint64_t A) const {
    if (isPriv(A)) {
      auto It = Priv.find(A);
      return It == Priv.end() ? 0 : It->second;
    }
    auto It = Global.find(A);
    return It == Global.end() ? oracleByte(A) : It->second;
  }

  void storeByte(uint64_t A, uint8_t B) {
    (isPriv(A) ? Priv : Global)[A] = B;
  }

  uint64_t load(uint64_t A, unsigned Bytes) const {
    uint64_t V = 0;
    for (unsigned I = 0; I != Bytes; ++I)
      V |= uint64_t(loadByte(A + I)) << (I * 8);
    return V;
  }

  void store(uint64_t A, uint64_t V, unsigned Bytes) {
    for (unsigned I = 0; I != Bytes; ++I)
      storeByte(A + I, static_cast<uint8_t>(V >> (I * 8)));
  }

  /// True when no byte of [A, A+Bytes) has been written (global range).
  bool globalClean(uint64_t A, unsigned Bytes) const {
    auto It = Global.lower_bound(A);
    return It == Global.end() || It->first >= A + Bytes;
  }

  /// Digest of the global overlay: the ordered (address, byte) stream.
  uint64_t globalDigest() const {
    uint64_t H = 0x9e3779b97f4a7c15ull;
    for (const auto &[A, B] : Global)
      H = hashU64(H ^ mix(A, B));
    return H;
  }

  std::vector<uint8_t> snapshot(uint64_t A, size_t Len) const {
    Len = std::min(Len, MaxSnapBytes);
    std::vector<uint8_t> Out(Len);
    for (size_t I = 0; I != Len; ++I)
      Out[I] = loadByte(A + I);
    return Out;
  }
};

/// Exact-match store-term tracking: remembers the symbolic term of whole
/// stored values so a matching load can reuse it. Overlapping stores
/// invalidate; anything partial degrades to NO_TERM (the concrete value is
/// always exact — terms are reporting metadata).
struct StoreTerms {
  struct Entry {
    uint32_t Size;
    TermRef T;
  };
  std::map<uint64_t, Entry> Map;

  void store(uint64_t A, unsigned Bytes, TermRef T) {
    auto It = Map.lower_bound(A >= 16 ? A - 16 : 0);
    while (It != Map.end() && It->first < A + Bytes) {
      if (It->first + It->second.Size > A)
        It = Map.erase(It);
      else
        ++It;
    }
    Map[A] = {Bytes, T};
  }

  TermRef load(uint64_t A, unsigned Bytes) const {
    auto It = Map.find(A);
    if (It != Map.end() && It->second.Size == Bytes)
      return It->second.T;
    return NO_TERM;
  }
};

// --- Observable events ------------------------------------------------------

struct Event {
  enum Kind : uint8_t {
    Call, ///< Uninterpreted runtime call.
    Trap, ///< rt_trap / trapping QIR arithmetic; terminal.
    Ret,  ///< Normal return; terminal.
    Fault ///< ud2 / Unreachable / hardware #DE; terminal.
  };
  Kind K = Ret;

  // Call payload.
  std::string Sym;
  unsigned NumArgs = 0;        ///< Meaningful on the QIR side (machine
                               ///< events always carry all 6 arg regs).
  uint64_t Args[6] = {};
  TermRef ArgT[6] = {NO_TERM, NO_TERM, NO_TERM, NO_TERM, NO_TERM, NO_TERM};
  uint8_t ArgBits[6] = {64, 64, 64, 64, 64, 64}; ///< QIR slot widths.
  std::vector<uint8_t> Snap[6]; ///< Private-pointer argument snapshots.
  uint64_t Digest = 0;          ///< Global overlay digest at this event.

  // Trap payload.
  int TrapCode = 0;

  // Ret payload.
  uint64_t RetLo = 0, RetHi = 0, RetF = 0;
  TermRef RetLoT = NO_TERM, RetHiT = NO_TERM;

  std::string Where; ///< "block 3 inst 17" / "offset 0x4f".
};

struct Trace {
  std::vector<Event> Events;
  bool Bounded = false; ///< Fuel ran out; events are a valid prefix.
  bool Skip = false;    ///< Function is outside the model; see Error.
  std::string Error;    ///< Skip reason, or a machine-model violation
                        ///< (undefined-flag branch, bad ret) => mismatch.
};

// --- Per-round context ------------------------------------------------------

/// Deterministic per-(function, round) sources both sides share: argument
/// values and uninterpreted call results.
struct RoundCtx {
  uint64_t Seed = 0; ///< mix of global seed, function name and round.
  unsigned Round = 0;
  uint64_t OracleSeed = 0; ///< Seeds unwritten global memory; per round.

  /// Return-kind of every runtime symbol the module declares, so the
  /// machine stepper can place call results exactly like the QIR side
  /// masks them: 0 = void, 1..64 = integer width in bits, 65 = f64
  /// (XMM0), 66 = two-lane pair (RAX:RDX).
  const std::map<std::string, uint8_t> *RetKind = nullptr;

  /// Result lane of the I-th runtime call of the round. Small-biased, and
  /// exactly zero on a rotating subset of call indices so loops that
  /// iterate "while (rt_*_next(...))" terminate on some rounds.
  uint64_t callRet(unsigned CallIdx, unsigned Lane) const {
    if (CallIdx % 3 == Round % 3)
      return 0;
    uint64_t H = mix(Seed, 0xca11 + CallIdx * 2 + Lane);
    switch (H >> 61) {
    case 0:
      return H & 0xf;
    case 1:
      return H & 0xffff;
    default:
      return H & 0x7fffffffffffull;
    }
  }

  /// Junk poured into caller-saved machine registers after a call.
  uint64_t clobber(unsigned CallIdx, unsigned Reg) const {
    return mix(Seed, 0xc10b + CallIdx * 64 + Reg);
  }
};

// --- Intrinsic runtime helpers ----------------------------------------------

/// If \p Name is one of the pure arithmetic runtime helpers, interprets it:
/// fills Lo/Hi (the RAX/RDX lanes) or TrapCode (support/Trap.h values) and
/// returns true. rt_trap itself is NOT in this set — callers turn it into
/// a Trap event directly.
bool stepIntrinsic(const std::string &Name, const uint64_t *Args,
                   uint64_t &Lo, uint64_t &Hi, int &TrapCode);

/// Symbolic term of an interpreted helper's (low-lane) result, built from
/// the argument terms; NO_TERM where there is no simple 64-bit form.
TermRef intrinsicResultTerm(TermArena &TA, const std::string &Name,
                            const TermRef *ArgT);

// --- The two steppers (QirStep.cpp / MachStep.cpp) --------------------------

/// Static per-function layout shared by both sides.
struct SlotLayout {
  std::map<uint32_t, uint64_t> SlotAddr; ///< StackSlot ValueId -> address.
  std::map<uint32_t, uint32_t> SlotSize; ///< StackSlot ValueId -> bytes.
  uint64_t Span = 0;                     ///< Total slot-space bytes.
  size_t MaxSnap = 16;                   ///< Largest slot (snapshot window).
};

/// Computes the synthetic slot-space layout of \p F (QirStep.cpp).
SlotLayout computeSlotLayout(const qir::Function &F);

/// Runs the QIR reference stepper for one round. \p ArgLanes are the
/// flattened ≤6 argument slots (two-lane params occupy two).
Trace runQirRound(const qir::Function &F, const qir::Module &M,
                  const SlotLayout &Slots, const RoundCtx &RC,
                  const std::vector<uint64_t> &ArgLanes,
                  const std::vector<TermRef> &ArgTerms, TermArena &TA);

/// Runs the machine stepper for one round over the decoded function.
/// \p ArgIsF64 parallels ArgLanes: f64 lanes are delivered in XMM argument
/// registers (in order), everything else in the GP argument registers —
/// the calling convention the back-ends implement.
Trace runMachRound(const x64::DecodedFunction &DF, const uint8_t *Code,
                   size_t Size, const std::vector<TvReloc> &Relocs,
                   const SlotLayout &Slots, const RoundCtx &RC,
                   const std::vector<uint64_t> &ArgLanes,
                   const std::vector<TermRef> &ArgTerms,
                   const std::vector<uint8_t> &ArgIsF64, TermArena &TA);

} // namespace qcf::tv

#endif // QCF_TV_SIM_H
