//===- tv/Term.cpp - Hash-consed bitvector terms ---------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "tv/Term.h"
#include "support/Hash.h"
#include <cstring>
#include <algorithm>

using namespace qcf;
using namespace qcf::tv;

namespace {

uint64_t maskBits(unsigned Bits) {
  return Bits >= 64 ? ~0ull : (1ull << Bits) - 1;
}

int64_t sextBits(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t Sign = 1ull << (Bits - 1);
  return static_cast<int64_t>(((V & maskBits(Bits)) ^ Sign) - Sign);
}

double asF64(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

uint64_t f64Bits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

/// Mirrors interp's f64ToI64Trunc: out-of-range / NaN saturates to
/// INT64_MIN like cvttsd2si.
int64_t f64ToI64(double D) {
  if (!(D >= -9.2233720368547758e18 && D < 9.2233720368547758e18))
    return INT64_MIN;
  return static_cast<int64_t>(D);
}

bool foldBinary(TermOp Op, uint64_t A, uint64_t B, unsigned Bits,
                uint64_t &Out) {
  uint64_t M = maskBits(Bits);
  int64_t SA = sextBits(A, Bits), SB = sextBits(B, Bits);
  switch (Op) {
  case TermOp::Add: Out = (A + B) & M; return true;
  case TermOp::Sub: Out = (A - B) & M; return true;
  case TermOp::Mul: Out = (A * B) & M; return true;
  case TermOp::UDiv:
    if ((B & M) == 0)
      return false; // Trapping path; never folded.
    Out = ((A & M) / (B & M)) & M;
    return true;
  case TermOp::SDiv:
    if (SB == 0 || (SB == -1 && SA == sextBits(1ull << (Bits - 1), Bits)))
      return false;
    Out = static_cast<uint64_t>(SA / SB) & M;
    return true;
  case TermOp::SRem:
    if (SB == 0)
      return false;
    Out = SB == -1 ? 0 : static_cast<uint64_t>(SA % SB) & M;
    return true;
  case TermOp::And: Out = A & B & M; return true;
  case TermOp::Or: Out = (A | B) & M; return true;
  case TermOp::Xor: Out = (A ^ B) & M; return true;
  case TermOp::Shl: Out = (A << (B & (Bits - 1))) & M; return true;
  case TermOp::LShr: Out = ((A & M) >> (B & (Bits - 1))) & M; return true;
  case TermOp::AShr:
    Out = static_cast<uint64_t>(SA >> (B & (Bits - 1))) & M;
    return true;
  case TermOp::RotR: {
    unsigned S = static_cast<unsigned>(B) & (Bits - 1);
    Out = S == 0 ? (A & M) : (((A & M) >> S) | (A << (Bits - S))) & M;
    return true;
  }
  case TermOp::CmpEq: Out = (A & M) == (B & M); return true;
  case TermOp::CmpNe: Out = (A & M) != (B & M); return true;
  case TermOp::CmpSLt: Out = SA < SB; return true;
  case TermOp::CmpSLe: Out = SA <= SB; return true;
  case TermOp::CmpSGt: Out = SA > SB; return true;
  case TermOp::CmpSGe: Out = SA >= SB; return true;
  case TermOp::CmpULt: Out = (A & M) < (B & M); return true;
  case TermOp::CmpULe: Out = (A & M) <= (B & M); return true;
  case TermOp::CmpUGt: Out = (A & M) > (B & M); return true;
  case TermOp::CmpUGe: Out = (A & M) >= (B & M); return true;
  case TermOp::Crc32: Out = crc32u64(A, B); return true;
  case TermOp::LMulFold: Out = longMulFold(A, B); return true;
  case TermOp::FAdd: Out = f64Bits(asF64(A) + asF64(B)); return true;
  case TermOp::FSub: Out = f64Bits(asF64(A) - asF64(B)); return true;
  case TermOp::FMul: Out = f64Bits(asF64(A) * asF64(B)); return true;
  case TermOp::FDiv: Out = f64Bits(asF64(A) / asF64(B)); return true;
  case TermOp::FCmpEq: Out = asF64(A) == asF64(B); return true;
  case TermOp::FCmpNe: Out = asF64(A) != asF64(B); return true;
  case TermOp::FCmpLt: Out = asF64(A) < asF64(B); return true;
  case TermOp::FCmpLe: Out = asF64(A) <= asF64(B); return true;
  case TermOp::FCmpGt: Out = asF64(A) > asF64(B); return true;
  case TermOp::FCmpGe: Out = asF64(A) >= asF64(B); return true;
  default:
    return false;
  }
}

bool foldUnary(TermOp Op, uint64_t A, unsigned SrcBits, unsigned DstBits,
               uint64_t &Out) {
  uint64_t M = maskBits(DstBits);
  switch (Op) {
  case TermOp::Not: Out = ~A & M; return true;
  case TermOp::Neg: Out = (0 - A) & M; return true;
  case TermOp::ZExt: Out = A & maskBits(SrcBits); return true;
  case TermOp::SExt:
    Out = static_cast<uint64_t>(sextBits(A, SrcBits)) & M;
    return true;
  case TermOp::Trunc: Out = A & M; return true;
  case TermOp::FNeg: Out = f64Bits(-asF64(A)); return true;
  case TermOp::SIToFP:
    Out = f64Bits(static_cast<double>(sextBits(A, SrcBits)));
    return true;
  case TermOp::FPToSI:
    Out = static_cast<uint64_t>(f64ToI64(asF64(A))) & M;
    return true;
  default:
    return false;
  }
}

uint64_t hashNode(const TermNode &N) {
  uint64_t H = hashU64(static_cast<uint64_t>(N.Op) | (uint64_t(N.Bits) << 8));
  H = hashU64(H ^ N.A);
  H = hashU64(H ^ N.B);
  H = hashU64(H ^ N.C);
  return hashU64(H ^ N.Imm);
}

bool sameNode(const TermNode &X, const TermNode &Y) {
  return X.Op == Y.Op && X.Bits == Y.Bits && X.A == Y.A && X.B == Y.B &&
         X.C == Y.C && X.Imm == Y.Imm;
}

} // namespace

const char *tv::termOpName(TermOp Op) {
  switch (Op) {
  case TermOp::Const: return "const";
  case TermOp::Param: return "arg";
  case TermOp::CallRet: return "callret";
  case TermOp::OracleLoad: return "mem";
  case TermOp::Add: return "add";
  case TermOp::Sub: return "sub";
  case TermOp::Mul: return "mul";
  case TermOp::UDiv: return "udiv";
  case TermOp::SDiv: return "sdiv";
  case TermOp::SRem: return "srem";
  case TermOp::And: return "and";
  case TermOp::Or: return "or";
  case TermOp::Xor: return "xor";
  case TermOp::Shl: return "shl";
  case TermOp::LShr: return "lshr";
  case TermOp::AShr: return "ashr";
  case TermOp::RotR: return "rotr";
  case TermOp::Not: return "not";
  case TermOp::Neg: return "neg";
  case TermOp::CmpEq: return "eq";
  case TermOp::CmpNe: return "ne";
  case TermOp::CmpSLt: return "slt";
  case TermOp::CmpSLe: return "sle";
  case TermOp::CmpSGt: return "sgt";
  case TermOp::CmpSGe: return "sge";
  case TermOp::CmpULt: return "ult";
  case TermOp::CmpULe: return "ule";
  case TermOp::CmpUGt: return "ugt";
  case TermOp::CmpUGe: return "uge";
  case TermOp::ZExt: return "zext";
  case TermOp::SExt: return "sext";
  case TermOp::Trunc: return "trunc";
  case TermOp::Select: return "select";
  case TermOp::Crc32: return "crc32";
  case TermOp::LMulFold: return "lmulfold";
  case TermOp::FAdd: return "fadd";
  case TermOp::FSub: return "fsub";
  case TermOp::FMul: return "fmul";
  case TermOp::FDiv: return "fdiv";
  case TermOp::FNeg: return "fneg";
  case TermOp::FCmpEq: return "feq";
  case TermOp::FCmpNe: return "fne";
  case TermOp::FCmpLt: return "flt";
  case TermOp::FCmpLe: return "fle";
  case TermOp::FCmpGt: return "fgt";
  case TermOp::FCmpGe: return "fge";
  case TermOp::SIToFP: return "sitofp";
  case TermOp::FPToSI: return "fptosi";
  }
  return "?";
}

TermRef TermArena::intern(const TermNode &N) {
  if (Saturated)
    return NO_TERM;
  uint64_t H = hashNode(N);
  std::vector<TermRef> &Bucket = Buckets[H];
  for (TermRef R : Bucket)
    if (sameNode(Nodes[R], N))
      return R;
  if (Nodes.size() >= MaxTerms) {
    Saturated = true;
    return NO_TERM;
  }
  TermRef R = static_cast<TermRef>(Nodes.size());
  Nodes.push_back(N);
  Bucket.push_back(R);
  return R;
}

TermRef TermArena::constant(uint64_t V, unsigned Bits) {
  TermNode N;
  N.Op = TermOp::Const;
  N.Bits = static_cast<uint8_t>(Bits);
  N.Imm = V & maskBits(Bits);
  return intern(N);
}

TermRef TermArena::param(unsigned SlotIdx) {
  TermNode N;
  N.Op = TermOp::Param;
  N.Bits = 64;
  N.Imm = SlotIdx;
  return intern(N);
}

TermRef TermArena::callRet(unsigned CallIdx, unsigned Lane) {
  TermNode N;
  N.Op = TermOp::CallRet;
  N.Bits = 64;
  N.Imm = (uint64_t(CallIdx) << 1) | (Lane & 1);
  return intern(N);
}

TermRef TermArena::oracleLoad(uint64_t Addr, unsigned Bits) {
  TermNode N;
  N.Op = TermOp::OracleLoad;
  N.Bits = static_cast<uint8_t>(Bits);
  N.Imm = Addr;
  return intern(N);
}

TermRef TermArena::unary(TermOp Op, TermRef A, unsigned Bits) {
  const TermNode *NA = node(A);
  if (!NA)
    return NO_TERM;
  if (NA->Op == TermOp::Const) {
    uint64_t Out;
    if (foldUnary(Op, NA->Imm, NA->Bits, Bits, Out))
      return constant(Out, Bits);
  }
  // zext/trunc of a same-width value is the value itself.
  if ((Op == TermOp::ZExt || Op == TermOp::Trunc || Op == TermOp::SExt) &&
      NA->Bits == Bits)
    return A;
  TermNode N;
  N.Op = Op;
  N.Bits = static_cast<uint8_t>(Bits);
  N.A = A;
  return intern(N);
}

TermRef TermArena::binary(TermOp Op, TermRef A, TermRef B, unsigned Bits) {
  const TermNode *NA = node(A), *NB = node(B);
  if (!NA || !NB)
    return NO_TERM;
  if (NA->Op == TermOp::Const && NB->Op == TermOp::Const) {
    uint64_t Out;
    if (foldBinary(Op, NA->Imm, NB->Imm, Bits, Out)) {
      bool IsCmp = (Op >= TermOp::CmpEq && Op <= TermOp::CmpUGe) ||
                   (Op >= TermOp::FCmpEq && Op <= TermOp::FCmpGe);
      return constant(Out, IsCmp ? 1 : Bits);
    }
  }
  // A few unit/zero identities keep traces readable.
  if (NB->Op == TermOp::Const && NB->Imm == 0 &&
      (Op == TermOp::Add || Op == TermOp::Sub || Op == TermOp::Or ||
       Op == TermOp::Xor || Op == TermOp::Shl || Op == TermOp::LShr ||
       Op == TermOp::AShr))
    return A;
  if (NA->Op == TermOp::Const && NA->Imm == 0 &&
      (Op == TermOp::Add || Op == TermOp::Or || Op == TermOp::Xor))
    return B;
  TermNode N;
  N.Op = Op;
  N.Bits = static_cast<uint8_t>(Bits);
  N.A = A;
  N.B = B;
  return intern(N);
}

TermRef TermArena::select(TermRef Cond, TermRef TrueV, TermRef FalseV,
                          unsigned Bits) {
  const TermNode *NC = node(Cond);
  if (!NC || TrueV == NO_TERM || FalseV == NO_TERM)
    return NO_TERM;
  if (NC->Op == TermOp::Const)
    return (NC->Imm & 1) ? TrueV : FalseV;
  if (TrueV == FalseV)
    return TrueV;
  TermNode N;
  N.Op = TermOp::Select;
  N.Bits = static_cast<uint8_t>(Bits);
  N.A = Cond;
  N.B = TrueV;
  N.C = FalseV;
  return intern(N);
}

KnownBits TermArena::known(TermRef R) const {
  const TermNode *N = node(R);
  if (!N)
    return {};
  if (KnownValid.size() < Nodes.size()) {
    KnownValid.resize(Nodes.size(), 0);
    KnownCache.resize(Nodes.size());
  }
  if (KnownValid[R])
    return KnownCache[R];

  uint64_t M = maskBits(N->Bits);
  KnownBits K;
  K.Zero = ~M; // Bits above the width are always zero.
  K.Hi = M;
  KnownBits A = N->A != NO_TERM ? known(N->A) : KnownBits{};
  KnownBits B = N->B != NO_TERM ? known(N->B) : KnownBits{};

  auto boolRange = [&K] { K.Zero = ~1ull; K.Hi = 1; };
  switch (N->Op) {
  case TermOp::Const:
    K.One = N->Imm;
    K.Zero = ~N->Imm;
    K.Lo = K.Hi = N->Imm;
    break;
  case TermOp::And:
    K.Zero |= A.Zero | B.Zero;
    K.One = A.One & B.One & M;
    K.Hi = std::min({K.Hi, A.Hi, B.Hi});
    break;
  case TermOp::Or:
    K.One = (A.One | B.One) & M;
    K.Zero |= A.Zero & B.Zero;
    K.Lo = std::max(A.Lo, B.Lo);
    break;
  case TermOp::Xor:
    K.One = ((A.One & B.Zero) | (A.Zero & B.One)) & M;
    K.Zero |= (A.Zero & B.Zero) | (A.One & B.One);
    break;
  case TermOp::Add:
    // Carry-free low bits stay known; ranges add when they cannot wrap.
    if (A.Hi <= M && B.Hi <= M && A.Hi + B.Hi >= A.Hi &&
        A.Hi + B.Hi <= M) {
      K.Lo = A.Lo + B.Lo;
      K.Hi = A.Hi + B.Hi;
    }
    break;
  case TermOp::ZExt:
    K.Zero |= A.Zero;
    K.One = A.One & M;
    K.Lo = A.Lo;
    K.Hi = std::min(K.Hi, A.Hi);
    break;
  case TermOp::Trunc:
    K.Zero |= A.Zero & M;
    K.One = A.One & M;
    break;
  case TermOp::Shl:
    if (B.isConst()) {
      unsigned S = static_cast<unsigned>(B.constVal()) & (N->Bits - 1);
      K.One = (A.One << S) & M;
      K.Zero |= maskBits(S) | ((A.Zero << S) & M);
    }
    break;
  case TermOp::LShr:
    if (B.isConst()) {
      unsigned S = static_cast<unsigned>(B.constVal()) & (N->Bits - 1);
      K.One = (A.One & M) >> S;
      K.Zero |= ~(M >> S);
      K.Hi = std::min(K.Hi, (A.Hi & M) >> S);
    }
    break;
  case TermOp::CmpEq: case TermOp::CmpNe:
  case TermOp::CmpSLt: case TermOp::CmpSLe:
  case TermOp::CmpSGt: case TermOp::CmpSGe:
  case TermOp::CmpULt: case TermOp::CmpULe:
  case TermOp::CmpUGt: case TermOp::CmpUGe:
  case TermOp::FCmpEq: case TermOp::FCmpNe:
  case TermOp::FCmpLt: case TermOp::FCmpLe:
  case TermOp::FCmpGt: case TermOp::FCmpGe:
    boolRange();
    break;
  case TermOp::UDiv:
    K.Hi = std::min(K.Hi, A.Hi);
    break;
  case TermOp::Select: {
    KnownBits T = known(N->B), F = known(N->C);
    K.Zero = (T.Zero & F.Zero) | ~M;
    K.One = T.One & F.One & M;
    K.Lo = std::min(T.Lo, F.Lo);
    K.Hi = std::min(K.Hi, std::max(T.Hi, F.Hi));
    break;
  }
  default:
    break;
  }
  // Tighten the range from the bit masks.
  K.Lo = std::max(K.Lo, K.One);
  K.Hi = std::min(K.Hi, ~K.Zero);
  if (K.Lo > K.Hi) { // Inconsistent refinement; fall back to masks only.
    K.Lo = K.One;
    K.Hi = ~K.Zero;
  }
  KnownCache[R] = K;
  KnownValid[R] = 1;
  return K;
}

namespace {
void strRec(const TermArena &A, TermRef R, unsigned Depth, std::string &Out) {
  const TermNode *N = A.node(R);
  if (!N) {
    Out += "?";
    return;
  }
  char Buf[64];
  switch (N->Op) {
  case TermOp::Const:
    std::snprintf(Buf, sizeof(Buf),
                  N->Imm > 0xffff ? "0x%llx" : "%llu",
                  static_cast<unsigned long long>(N->Imm));
    Out += Buf;
    return;
  case TermOp::Param:
    std::snprintf(Buf, sizeof(Buf), "arg%llu",
                  static_cast<unsigned long long>(N->Imm));
    Out += Buf;
    return;
  case TermOp::CallRet:
    std::snprintf(Buf, sizeof(Buf), "call%llu.%llu",
                  static_cast<unsigned long long>(N->Imm >> 1),
                  static_cast<unsigned long long>(N->Imm & 1));
    Out += Buf;
    return;
  case TermOp::OracleLoad:
    std::snprintf(Buf, sizeof(Buf), "mem%u[0x%llx]", N->Bits,
                  static_cast<unsigned long long>(N->Imm));
    Out += Buf;
    return;
  default:
    break;
  }
  if (Depth == 0) {
    Out += "...";
    return;
  }
  Out += termOpName(N->Op);
  if (N->Op == TermOp::ZExt || N->Op == TermOp::SExt ||
      N->Op == TermOp::Trunc) {
    std::snprintf(Buf, sizeof(Buf), "%u", N->Bits);
    Out += Buf;
  }
  Out += "(";
  strRec(A, N->A, Depth - 1, Out);
  if (N->B != NO_TERM) {
    Out += ", ";
    strRec(A, N->B, Depth - 1, Out);
  }
  if (N->C != NO_TERM) {
    Out += ", ";
    strRec(A, N->C, Depth - 1, Out);
  }
  Out += ")";
}
} // namespace

std::string TermArena::str(TermRef R) const {
  std::string Out;
  strRec(*this, R, 6, Out);
  return Out;
}
