//===- tv/Term.h - Hash-consed bitvector terms ------------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic layer of the translation validator: a hash-consed arena of
/// bitvector terms with constant folding at construction time and a bounded
/// known-bits / unsigned-range abstract domain computed bottom-up. No
/// external SMT dependency — terms exist so a mismatch report can show *how*
/// each side computed the differing value (the term diff), and so tests can
/// query the abstract domain; the equivalence check itself is driven by the
/// concrete co-simulation in Check.cpp.
///
/// Leaves are Const, Param (function argument lane), CallRet (lane of the
/// result of the N-th uninterpreted runtime call) and OracleLoad (a read of
/// unwritten global memory, which both sides model with the same
/// deterministic oracle). Every node carries its result width in bits; all
/// values are kept masked to that width, mirroring the interpreter.
///
/// The arena is capped (QCF_TV_MAX_TERMS): once saturated, constructors
/// return NO_TERM and reports degrade to concrete witnesses only. NO_TERM
/// propagates through operands, so saturation can never produce a wrong
/// term, only a missing one.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_TV_TERM_H
#define QCF_TV_TERM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace qcf::tv {

using TermRef = uint32_t;
inline constexpr TermRef NO_TERM = 0xffffffffu;

enum class TermOp : uint8_t {
  // Leaves.
  Const,      ///< Imm = value (masked to Bits).
  Param,      ///< Imm = flattened argument slot index.
  CallRet,    ///< Imm = (CallIdx << 1) | Lane.
  OracleLoad, ///< Imm = byte address; Bits = load width.
  // Integer arithmetic (two operands unless noted).
  Add, Sub, Mul, UDiv, SDiv, SRem,
  And, Or, Xor, Shl, LShr, AShr, RotR,
  Not, Neg, ///< One operand.
  // Comparisons (result Bits == 1).
  CmpEq, CmpNe, CmpSLt, CmpSLe, CmpSGt, CmpSGe,
  CmpULt, CmpULe, CmpUGt, CmpUGe,
  // Width changes: A is the source; Bits is the destination width.
  ZExt, SExt, Trunc,
  Select, ///< A = condition, B = true value, C = false value.
  // Hash/fold helpers mirroring support/Hash.h.
  Crc32, LMulFold,
  // IEEE double ops on 64-bit payloads (bits of a double).
  FAdd, FSub, FMul, FDiv, FNeg,
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe, ///< Result Bits == 1.
  SIToFP, FPToSI,
};

const char *termOpName(TermOp Op);

struct TermNode {
  TermOp Op;
  uint8_t Bits; ///< Result width in bits: 1, 8, 16, 32 or 64.
  TermRef A = NO_TERM;
  TermRef B = NO_TERM;
  TermRef C = NO_TERM;
  uint64_t Imm = 0;
};

/// Known-bits plus unsigned range for one term, computed bottom-up.
/// Invariants: (Zero & One) == 0; bits above the width are in Zero;
/// Lo <= Hi; every concrete value V of the term satisfies
/// (V & Zero) == 0, (V & One) == One and Lo <= V <= Hi.
struct KnownBits {
  uint64_t Zero = 0; ///< Mask of bits known to be 0.
  uint64_t One = 0;  ///< Mask of bits known to be 1.
  uint64_t Lo = 0;   ///< Unsigned lower bound.
  uint64_t Hi = ~0ull; ///< Unsigned upper bound.

  bool isConst() const { return (Zero | One) == ~0ull; }
  uint64_t constVal() const { return One; }
};

class TermArena {
public:
  explicit TermArena(size_t MaxTerms) : MaxTerms(MaxTerms) {}

  TermRef constant(uint64_t V, unsigned Bits = 64);
  TermRef param(unsigned SlotIdx);
  TermRef callRet(unsigned CallIdx, unsigned Lane);
  TermRef oracleLoad(uint64_t Addr, unsigned Bits);
  /// Not/Neg/FNeg/SIToFP/FPToSI and the width changes ZExt/SExt/Trunc
  /// (Bits = destination width).
  TermRef unary(TermOp Op, TermRef A, unsigned Bits);
  TermRef binary(TermOp Op, TermRef A, TermRef B, unsigned Bits);
  TermRef select(TermRef Cond, TermRef TrueV, TermRef FalseV, unsigned Bits);

  size_t size() const { return Nodes.size(); }
  bool saturated() const { return Saturated; }

  /// Null for NO_TERM or out-of-range refs.
  const TermNode *node(TermRef R) const {
    return R < Nodes.size() ? &Nodes[R] : nullptr;
  }

  /// Bottom-up abstract value; memoized. Top-of-width for NO_TERM.
  KnownBits known(TermRef R) const;

  /// Human-readable rendering, depth-bounded. "?" for NO_TERM.
  std::string str(TermRef R) const;

private:
  TermRef intern(const TermNode &N);

  size_t MaxTerms;
  bool Saturated = false;
  std::vector<TermNode> Nodes;
  std::unordered_map<uint64_t, std::vector<TermRef>> Buckets;
  mutable std::vector<KnownBits> KnownCache;
  mutable std::vector<uint8_t> KnownValid;
};

} // namespace qcf::tv

#endif // QCF_TV_TERM_H
