//===- tv/Tv.h - Translation validation public API --------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation for JIT-emitted machine code (QCF_VERIFY=tv): the
/// fourth and outermost verification layer (IR verify -> MIR verify ->
/// encoding lint -> tv). The emitted byte buffer is the one artifact every
/// back-end shares — including blobs re-patched in from DiskCodeCache — so
/// validating it against the QIR source closes the trust gap for all tiers
/// at once.
///
/// Method: the bytes are lifted through x64::decodeFunction into an
/// operand-accurate CFG, then a machine-level stepper and a QIR reference
/// stepper (mirroring interp semantics exactly) co-simulate the function
/// over several seeded rounds. Each side runs independently against the
/// same deterministic memory oracle and the same uninterpreted model of
/// runtime calls, producing an ordered trace of observables — runtime calls
/// (callee, argument slots, global-store digest, stack-argument snapshots),
/// traps, faults, and the return value. The traces must agree event for
/// event. Alongside the concrete values both steppers maintain hash-consed
/// symbolic terms (tv/Term.h), so a mismatch is reported as a minimized
/// counterexample: function, round, event index, the symbolic term each
/// side computed, and the concrete witness values.
///
/// The model is sound for the code our back-ends emit (no false negatives
/// on the mutation classes it checks) and — by construction of the shared
/// oracle — produces no false positives on correct code; see DESIGN.md
/// "Translation validation" for the argument and its boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_TV_TV_H
#define QCF_TV_TV_H

#include "qir/Function.h"
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qcf::obs {
class MetricsRegistry;
}

namespace qcf::tv {

/// A named relocation inside an emitted function: \p Width bytes at
/// \p Offset hold a value derived from runtime symbol \p Symbol (rel32
/// call displacement or absolute imm64). Back-ends already record these
/// for the disk cache; tv uses them to resolve call targets symbolically
/// and to cross-check re-patched bytes against the live symbol table.
struct TvReloc {
  uint64_t Offset = 0;
  uint32_t Width = 0;
  std::string Symbol; ///< Empty when the target symbol is unknown.
};

/// One emitted function handed to the validator.
struct TvFunction {
  std::string Name;
  const uint8_t *Code = nullptr;
  size_t Size = 0;
  std::vector<TvReloc> Relocs;
};

struct TvOptions {
  unsigned Rounds = 6;    ///< Co-simulation rounds per function.
  uint64_t Seed = 0x51ed270b21f0b2d5ull;
  size_t MaxTerms = 65536; ///< Symbolic arena cap (QCF_TV_MAX_TERMS).

  /// Rounds/Seed defaults with MaxTerms from QCF_TV_MAX_TERMS.
  static TvOptions fromEnv();
};

struct TvStats {
  uint64_t Functions = 0;  ///< Functions fully validated.
  uint64_t Blocks = 0;     ///< Decoded machine blocks walked.
  uint64_t Terms = 0;      ///< Symbolic terms interned.
  uint64_t Mismatches = 0; ///< Functions that failed validation.
  uint64_t Skipped = 0;    ///< Functions outside the model (see report).
  uint64_t Ns = 0;         ///< Wall time spent validating.
};

/// Validates one emitted function against its QIR source. Returns the empty
/// string on success (or a sound skip) and a multi-line counterexample
/// report on mismatch. \p Stats, when given, is accumulated into.
std::string validateFunction(const qir::Function &F, const TvFunction &MF,
                             const TvOptions &Opts, TvStats *Stats = nullptr);

/// Validates every emitted function that has a QIR counterpart in \p M.
/// Returns the first mismatch report ("" if all pass) and lands
/// verify.tv.* counters plus the tv_ns histogram in \p Metrics when given.
std::string validateModule(const qir::Module &M,
                           const std::vector<TvFunction> &Fns,
                           const TvOptions &Opts,
                           obs::MetricsRegistry *Metrics = nullptr);

} // namespace qcf::tv

#endif // QCF_TV_TV_H
