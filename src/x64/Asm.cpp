//===- x64/Asm.cpp - x86-64 machine code encoder ---------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "x64/Asm.h"

using namespace qcf;
using namespace qcf::x64;

const char *x64::regName(Reg R) {
  static const char *Names[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                  "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                  "r12", "r13", "r14", "r15"};
  assert(R != Reg::NoReg && "no name for NoReg");
  return Names[regNum(R)];
}

// --- Low-level helpers -------------------------------------------------------

void Assembler::rex(bool W, uint8_t RegField, uint8_t Index, uint8_t Base,
                    uint8_t ByteRegMask) {
  uint8_t R = (RegField >> 3) & 1;
  uint8_t X = (Index >> 3) & 1;
  uint8_t B = (Base >> 3) & 1;
  uint8_t Rex = 0x40 | (W << 3) | (R << 2) | (X << 1) | B;
  // SPL/BPL/SIL/DIL are only addressable with a REX prefix present; the
  // mask says which of RegField (bit 0) / Base-as-rm (bit 1) are byte
  // register *operands* (a memory base register is never a byte operand).
  bool Need8 = ((ByteRegMask & 1) && RegField >= 4 && RegField <= 7) ||
               ((ByteRegMask & 2) && Base >= 4 && Base <= 7);
  if (Rex != 0x40 || Need8)
    emit8(Rex);
}

void Assembler::modrm(uint8_t Mod, uint8_t RegField, uint8_t Rm) {
  emit8(static_cast<uint8_t>((Mod << 6) | ((RegField & 7) << 3) | (Rm & 7)));
}

void Assembler::memOperand(uint8_t RegField, const Mem &M) {
  assert(M.Base != Reg::NoReg && "memory operands require a base register");
  assert(M.Index != Reg::RSP && "rsp cannot be an index register");
  uint8_t Base = regNum(M.Base);
  bool HasIndex = M.Index != Reg::NoReg;
  bool NeedSib = HasIndex || (Base & 7) == 4; // RSP/R12 require SIB.
  bool BaseIsBp = (Base & 7) == 5;            // RBP/R13 require a disp.

  uint8_t Mod;
  if (M.Disp == 0 && !BaseIsBp)
    Mod = 0;
  else if (M.Disp >= -128 && M.Disp <= 127)
    Mod = 1;
  else
    Mod = 2;

  if (NeedSib) {
    modrm(Mod, RegField, 4);
    uint8_t ScaleBits = M.Scale == 1   ? 0
                        : M.Scale == 2 ? 1
                        : M.Scale == 4 ? 2
                                       : 3;
    uint8_t Index = HasIndex ? regNum(M.Index) : 4; // 4 = no index
    emit8(static_cast<uint8_t>((ScaleBits << 6) | ((Index & 7) << 3) |
                               (Base & 7)));
  } else {
    modrm(Mod, RegField, Base);
  }

  if (Mod == 1)
    emit8(static_cast<uint8_t>(M.Disp));
  else if (Mod == 2)
    emit32(static_cast<uint32_t>(M.Disp));
}

void Assembler::prefixFor(Width W, uint8_t RegField, const Mem &M,
                          bool Force8) {
  if (W == Width::W16)
    emit8(0x66);
  uint8_t Index = M.Index == Reg::NoReg ? 0 : regNum(M.Index);
  // Only the reg field can be a byte register; the base is an address.
  rex(W == Width::W64, RegField, Index, regNum(M.Base), Force8 ? 1 : 0);
}

void Assembler::prefixForRR(Width W, uint8_t RegField, uint8_t Rm,
                            bool Force8) {
  if (W == Width::W16)
    emit8(0x66);
  // In register-register form both fields are register operands.
  rex(W == Width::W64, RegField, 0, Rm, Force8 ? 3 : 0);
}


void Assembler::prefixForExt(Width W, uint8_t Ext, uint8_t Rm, bool Force8) {
  if (W == Width::W16)
    emit8(0x66);
  // The "reg" field is an opcode extension, not a register; only the rm
  // operand can be a byte register.
  rex(W == Width::W64, Ext, 0, Rm, Force8 ? 2 : 0);
}

void Assembler::emitRel32Fixup(Label L) {
  Fixups.push_back({Code.size(), L});
  emit32(0);
}

void Assembler::finalize() {
  for (const Fixup &F : Fixups) {
    int64_t Target = Labels[F.Target];
    assert(Target >= 0 && "unbound label at finalize");
    int64_t Rel = Target - static_cast<int64_t>(F.Pos) - 4;
    assert(Rel >= INT32_MIN && Rel <= INT32_MAX && "branch out of range");
    uint32_t V = static_cast<uint32_t>(Rel);
    for (int I = 0; I != 4; ++I)
      Code[F.Pos + I] = static_cast<uint8_t>(V >> (I * 8));
  }
  Fixups.clear();
}

// --- Moves ---------------------------------------------------------------------

void Assembler::movRR(Width W, Reg Dst, Reg Src) {
  bool Is8 = W == Width::W8;
  prefixForRR(W, regNum(Src), regNum(Dst), Is8);
  emit8(Is8 ? 0x88 : 0x89);
  modrm(3, regNum(Src), regNum(Dst));
}

void Assembler::movRI(Reg Dst, uint64_t Imm) {
  if (Imm <= 0xffffffffull) {
    movRI32(Dst, static_cast<uint32_t>(Imm));
    return;
  }
  if (static_cast<int64_t>(Imm) < 0 &&
      static_cast<int64_t>(Imm) >= INT32_MIN) {
    // mov r/m64, imm32 (sign-extended): REX.W C7 /0
    rex(true, 0, 0, regNum(Dst));
    emit8(0xc7);
    modrm(3, 0, regNum(Dst));
    emit32(static_cast<uint32_t>(Imm));
    return;
  }
  rex(true, 0, 0, regNum(Dst));
  emit8(static_cast<uint8_t>(0xb8 + (regNum(Dst) & 7)));
  emit64(Imm);
}

void Assembler::movAbsRI(Reg Dst, uint64_t Imm) {
  // Always the 10-byte movabs form, regardless of the immediate's value:
  // callers that patch the trailing imm64 later (relocations recorded for
  // the persistent code cache) need the encoding to be independent of
  // whatever address happened to be live at compile time.
  rex(true, 0, 0, regNum(Dst));
  emit8(static_cast<uint8_t>(0xb8 + (regNum(Dst) & 7)));
  emit64(Imm);
}

void Assembler::movRI32(Reg Dst, uint32_t Imm) {
  rex(false, 0, 0, regNum(Dst));
  emit8(static_cast<uint8_t>(0xb8 + (regNum(Dst) & 7)));
  emit32(Imm);
}

void Assembler::movRM(Width W, Reg Dst, Mem M) {
  bool Is8 = W == Width::W8;
  prefixFor(W, regNum(Dst), M, Is8);
  emit8(Is8 ? 0x8a : 0x8b);
  memOperand(regNum(Dst), M);
}

void Assembler::movMR(Width W, Mem M, Reg Src) {
  bool Is8 = W == Width::W8;
  prefixFor(W, regNum(Src), M, Is8);
  emit8(Is8 ? 0x88 : 0x89);
  memOperand(regNum(Src), M);
}

void Assembler::movMI32(Width W, Mem M, uint32_t Imm) {
  bool Is8 = W == Width::W8;
  prefixFor(W, 0, M, Is8);
  emit8(Is8 ? 0xc6 : 0xc7);
  memOperand(0, M);
  if (Is8)
    emit8(static_cast<uint8_t>(Imm));
  else if (W == Width::W16) {
    emit8(static_cast<uint8_t>(Imm));
    emit8(static_cast<uint8_t>(Imm >> 8));
  } else
    emit32(Imm);
}

void Assembler::movzxRM(Width SrcW, Reg Dst, Mem M) {
  switch (SrcW) {
  case Width::W8:
    prefixFor(Width::W64, regNum(Dst), M, false);
    emit8(0x0f);
    emit8(0xb6);
    memOperand(regNum(Dst), M);
    return;
  case Width::W16:
    prefixFor(Width::W64, regNum(Dst), M, false);
    emit8(0x0f);
    emit8(0xb7);
    memOperand(regNum(Dst), M);
    return;
  case Width::W32:
    movRM(Width::W32, Dst, M); // implicit zero extension
    return;
  case Width::W64:
    movRM(Width::W64, Dst, M);
    return;
  }
  QCF_UNREACHABLE("invalid width");
}

void Assembler::movsxRM(Width SrcW, Reg Dst, Mem M) {
  switch (SrcW) {
  case Width::W8:
    prefixFor(Width::W64, regNum(Dst), M, false);
    emit8(0x0f);
    emit8(0xbe);
    memOperand(regNum(Dst), M);
    return;
  case Width::W16:
    prefixFor(Width::W64, regNum(Dst), M, false);
    emit8(0x0f);
    emit8(0xbf);
    memOperand(regNum(Dst), M);
    return;
  case Width::W32:
    prefixFor(Width::W64, regNum(Dst), M, false);
    emit8(0x63); // movsxd
    memOperand(regNum(Dst), M);
    return;
  case Width::W64:
    movRM(Width::W64, Dst, M);
    return;
  }
  QCF_UNREACHABLE("invalid width");
}

void Assembler::movzxRR(Width SrcW, Reg Dst, Reg Src) {
  switch (SrcW) {
  case Width::W8:
    prefixForRR(Width::W64, regNum(Dst), regNum(Src), true);
    emit8(0x0f);
    emit8(0xb6);
    modrm(3, regNum(Dst), regNum(Src));
    return;
  case Width::W16:
    prefixForRR(Width::W64, regNum(Dst), regNum(Src), false);
    emit8(0x0f);
    emit8(0xb7);
    modrm(3, regNum(Dst), regNum(Src));
    return;
  case Width::W32:
    movRR(Width::W32, Dst, Src);
    return;
  case Width::W64:
    movRR(Width::W64, Dst, Src);
    return;
  }
  QCF_UNREACHABLE("invalid width");
}

void Assembler::movsxRR(Width SrcW, Reg Dst, Reg Src) {
  switch (SrcW) {
  case Width::W8:
    prefixForRR(Width::W64, regNum(Dst), regNum(Src), true);
    emit8(0x0f);
    emit8(0xbe);
    modrm(3, regNum(Dst), regNum(Src));
    return;
  case Width::W16:
    prefixForRR(Width::W64, regNum(Dst), regNum(Src), false);
    emit8(0x0f);
    emit8(0xbf);
    modrm(3, regNum(Dst), regNum(Src));
    return;
  case Width::W32:
    prefixForRR(Width::W64, regNum(Dst), regNum(Src), false);
    emit8(0x63);
    modrm(3, regNum(Dst), regNum(Src));
    return;
  case Width::W64:
    movRR(Width::W64, Dst, Src);
    return;
  }
  QCF_UNREACHABLE("invalid width");
}

void Assembler::lea(Reg Dst, Mem M) {
  prefixFor(Width::W64, regNum(Dst), M, false);
  emit8(0x8d);
  memOperand(regNum(Dst), M);
}

// --- Integer ALU ------------------------------------------------------------

void Assembler::aluRR(Alu Op, Width W, Reg Dst, Reg Src) {
  bool Is8 = W == Width::W8;
  prefixForRR(W, regNum(Src), regNum(Dst), Is8);
  emit8(static_cast<uint8_t>(static_cast<uint8_t>(Op) * 8 + (Is8 ? 0 : 1)));
  modrm(3, regNum(Src), regNum(Dst));
}

void Assembler::aluRI(Alu Op, Width W, Reg Dst, int32_t Imm) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, static_cast<uint8_t>(Op), regNum(Dst), Is8);
  if (Is8) {
    emit8(0x80);
    modrm(3, static_cast<uint8_t>(Op), regNum(Dst));
    emit8(static_cast<uint8_t>(Imm));
  } else if (Imm >= -128 && Imm <= 127) {
    emit8(0x83);
    modrm(3, static_cast<uint8_t>(Op), regNum(Dst));
    emit8(static_cast<uint8_t>(Imm));
  } else {
    emit8(0x81);
    modrm(3, static_cast<uint8_t>(Op), regNum(Dst));
    if (W == Width::W16) {
      emit8(static_cast<uint8_t>(Imm));
      emit8(static_cast<uint8_t>(Imm >> 8));
    } else
      emit32(static_cast<uint32_t>(Imm));
  }
}

void Assembler::aluRM(Alu Op, Width W, Reg Dst, Mem M) {
  bool Is8 = W == Width::W8;
  prefixFor(W, regNum(Dst), M, Is8);
  emit8(static_cast<uint8_t>(static_cast<uint8_t>(Op) * 8 + (Is8 ? 2 : 3)));
  memOperand(regNum(Dst), M);
}

void Assembler::testRR(Width W, Reg A, Reg B) {
  bool Is8 = W == Width::W8;
  prefixForRR(W, regNum(B), regNum(A), Is8);
  emit8(Is8 ? 0x84 : 0x85);
  modrm(3, regNum(B), regNum(A));
}

void Assembler::testRI(Width W, Reg A, int32_t Imm) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, 0, regNum(A), Is8);
  emit8(Is8 ? 0xf6 : 0xf7);
  modrm(3, 0, regNum(A));
  if (Is8)
    emit8(static_cast<uint8_t>(Imm));
  else if (W == Width::W16) {
    emit8(static_cast<uint8_t>(Imm));
    emit8(static_cast<uint8_t>(Imm >> 8));
  } else
    emit32(static_cast<uint32_t>(Imm));
}

void Assembler::negR(Width W, Reg R) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, 3, regNum(R), Is8);
  emit8(Is8 ? 0xf6 : 0xf7);
  modrm(3, 3, regNum(R));
}

void Assembler::notR(Width W, Reg R) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, 2, regNum(R), Is8);
  emit8(Is8 ? 0xf6 : 0xf7);
  modrm(3, 2, regNum(R));
}

void Assembler::imulRR(Width W, Reg Dst, Reg Src) {
  assert(W != Width::W8 && "8-bit imul r,r is not encodable");
  prefixForRR(W, regNum(Dst), regNum(Src), false);
  emit8(0x0f);
  emit8(0xaf);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::imulRRI(Width W, Reg Dst, Reg Src, int32_t Imm) {
  assert(W != Width::W8 && "8-bit imul r,r,imm is not encodable");
  prefixForRR(W, regNum(Dst), regNum(Src), false);
  if (Imm >= -128 && Imm <= 127) {
    emit8(0x6b);
    modrm(3, regNum(Dst), regNum(Src));
    emit8(static_cast<uint8_t>(Imm));
  } else {
    emit8(0x69);
    modrm(3, regNum(Dst), regNum(Src));
    if (W == Width::W16) {
      emit8(static_cast<uint8_t>(Imm));
      emit8(static_cast<uint8_t>(Imm >> 8));
    } else
      emit32(static_cast<uint32_t>(Imm));
  }
}

void Assembler::mulR(Width W, Reg Src) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, 4, regNum(Src), Is8);
  emit8(Is8 ? 0xf6 : 0xf7);
  modrm(3, 4, regNum(Src));
}

void Assembler::imulR(Width W, Reg Src) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, 5, regNum(Src), Is8);
  emit8(Is8 ? 0xf6 : 0xf7);
  modrm(3, 5, regNum(Src));
}

void Assembler::divR(Width W, Reg Src) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, 6, regNum(Src), Is8);
  emit8(Is8 ? 0xf6 : 0xf7);
  modrm(3, 6, regNum(Src));
}

void Assembler::idivR(Width W, Reg Src) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, 7, regNum(Src), Is8);
  emit8(Is8 ? 0xf6 : 0xf7);
  modrm(3, 7, regNum(Src));
}

void Assembler::cqo() {
  emit8(0x48);
  emit8(0x99);
}

void Assembler::cdq() { emit8(0x99); }

void Assembler::shiftRC(Shift Op, Width W, Reg R) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, static_cast<uint8_t>(Op), regNum(R), Is8);
  emit8(Is8 ? 0xd2 : 0xd3);
  modrm(3, static_cast<uint8_t>(Op), regNum(R));
}

void Assembler::shiftRI(Shift Op, Width W, Reg R, uint8_t Imm) {
  bool Is8 = W == Width::W8;
  prefixForExt(W, static_cast<uint8_t>(Op), regNum(R), Is8);
  emit8(Is8 ? 0xc0 : 0xc1);
  modrm(3, static_cast<uint8_t>(Op), regNum(R));
  emit8(Imm);
}

void Assembler::crc32RR(Reg Dst, Reg Src) {
  emit8(0xf2);
  rex(true, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x38);
  emit8(0xf1);
  modrm(3, regNum(Dst), regNum(Src));
}

// --- Flags / conditions --------------------------------------------------------

void Assembler::setcc(Cond C, Reg Dst) {
  prefixForExt(Width::W8, 0, regNum(Dst), true);
  emit8(0x0f);
  emit8(static_cast<uint8_t>(0x90 + static_cast<uint8_t>(C)));
  modrm(3, 0, regNum(Dst));
}

void Assembler::cmovcc(Cond C, Width W, Reg Dst, Reg Src) {
  assert(W != Width::W8 && "8-bit cmov is not encodable");
  prefixForRR(W, regNum(Dst), regNum(Src), false);
  emit8(0x0f);
  emit8(static_cast<uint8_t>(0x40 + static_cast<uint8_t>(C)));
  modrm(3, regNum(Dst), regNum(Src));
}

// --- Control flow ------------------------------------------------------------

void Assembler::jmp(Label L) {
  emit8(0xe9);
  emitRel32Fixup(L);
}

void Assembler::jcc(Cond C, Label L) {
  emit8(0x0f);
  emit8(static_cast<uint8_t>(0x80 + static_cast<uint8_t>(C)));
  emitRel32Fixup(L);
}

void Assembler::jmpReg(Reg R) {
  rex(false, 0, 0, regNum(R));
  emit8(0xff);
  modrm(3, 4, regNum(R));
}

void Assembler::callReg(Reg R) {
  rex(false, 0, 0, regNum(R));
  emit8(0xff);
  modrm(3, 2, regNum(R));
}

void Assembler::callRel32(Label L) {
  emit8(0xe8);
  emitRel32Fixup(L);
}

size_t Assembler::jmpRel32Patchable() {
  emit8(0xe9);
  size_t Pos = Code.size();
  emit32(0);
  return Pos;
}

size_t Assembler::callRel32Patchable() {
  emit8(0xe8);
  size_t Pos = Code.size();
  emit32(0);
  return Pos;
}

void Assembler::ret() { emit8(0xc3); }

void Assembler::ud2() {
  emit8(0x0f);
  emit8(0x0b);
}

void Assembler::nop() { emit8(0x90); }

// --- Stack ---------------------------------------------------------------------

void Assembler::pushR(Reg R) {
  rex(false, 0, 0, regNum(R));
  emit8(static_cast<uint8_t>(0x50 + (regNum(R) & 7)));
}

void Assembler::popR(Reg R) {
  rex(false, 0, 0, regNum(R));
  emit8(static_cast<uint8_t>(0x58 + (regNum(R) & 7)));
}

// --- Atomics -------------------------------------------------------------------

void Assembler::lockXaddMR(Width W, Mem M, Reg Src) {
  emit8(0xf0);
  bool Is8 = W == Width::W8;
  prefixFor(W, regNum(Src), M, Is8);
  emit8(0x0f);
  emit8(Is8 ? 0xc0 : 0xc1);
  memOperand(regNum(Src), M);
}

// --- SSE scalar double ---------------------------------------------------------

void Assembler::movsdXM(Xmm Dst, Mem M) {
  emit8(0xf2);
  prefixFor(Width::W32, regNum(Dst), M, false);
  emit8(0x0f);
  emit8(0x10);
  memOperand(regNum(Dst), M);
}

void Assembler::movsdMX(Mem M, Xmm Src) {
  emit8(0xf2);
  prefixFor(Width::W32, regNum(Src), M, false);
  emit8(0x0f);
  emit8(0x11);
  memOperand(regNum(Src), M);
}

void Assembler::movsdXX(Xmm Dst, Xmm Src) {
  emit8(0xf2);
  rex(false, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x10);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::movqXR(Xmm Dst, Reg Src) {
  emit8(0x66);
  rex(true, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x6e);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::movqRX(Reg Dst, Xmm Src) {
  emit8(0x66);
  rex(true, regNum(Src), 0, regNum(Dst));
  emit8(0x0f);
  emit8(0x7e);
  modrm(3, regNum(Src), regNum(Dst));
}

namespace {
} // namespace

void Assembler::addsd(Xmm Dst, Xmm Src) {
  emit8(0xf2);
  rex(false, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x58);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::subsd(Xmm Dst, Xmm Src) {
  emit8(0xf2);
  rex(false, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x5c);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::mulsd(Xmm Dst, Xmm Src) {
  emit8(0xf2);
  rex(false, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x59);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::divsd(Xmm Dst, Xmm Src) {
  emit8(0xf2);
  rex(false, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x5e);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::ucomisd(Xmm A, Xmm B) {
  emit8(0x66);
  rex(false, regNum(A), 0, regNum(B));
  emit8(0x0f);
  emit8(0x2e);
  modrm(3, regNum(A), regNum(B));
}

void Assembler::cvtsi2sd(Xmm Dst, Reg Src) {
  emit8(0xf2);
  rex(true, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x2a);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::cvttsd2si(Reg Dst, Xmm Src) {
  emit8(0xf2);
  rex(true, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x2c);
  modrm(3, regNum(Dst), regNum(Src));
}

void Assembler::xorps(Xmm Dst, Xmm Src) {
  rex(false, regNum(Dst), 0, regNum(Src));
  emit8(0x0f);
  emit8(0x57);
  modrm(3, regNum(Dst), regNum(Src));
}
