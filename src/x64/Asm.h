//===- x64/Asm.h - x86-64 machine code encoder ------------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained x86-64 instruction encoder. All three native back-ends
/// (DirectEmit, Craneline, MLVM's MC layer) encode through this class; each
/// wraps it with its own buffer/fixup/abstraction discipline so that the
/// *relative* emission costs the paper describes (§V-B6 vs. §VI-C4 vs.
/// §VII) are reproduced by construction.
///
/// The encoder follows DirectEmit's stated design goal (§VII-A2): it does
/// not try to pick the most compact encoding of every instruction, it
/// minimizes branches in the encoder itself.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_X64_ASM_H
#define QCF_X64_ASM_H

#include "support/Compiler.h"
#include <cstdint>
#include <vector>

namespace qcf::x64 {

/// General-purpose registers, in encoding order.
enum class Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
  NoReg = 0xff,
};

/// SSE registers.
enum class Xmm : uint8_t {
  XMM0 = 0,
  XMM1,
  XMM2,
  XMM3,
  XMM4,
  XMM5,
  XMM6,
  XMM7,
  XMM8,
  XMM9,
  XMM10,
  XMM11,
  XMM12,
  XMM13,
  XMM14,
  XMM15,
};

inline uint8_t regNum(Reg R) { return static_cast<uint8_t>(R); }
inline uint8_t regNum(Xmm R) { return static_cast<uint8_t>(R); }

const char *regName(Reg R);

/// The SysV argument registers.
inline constexpr Reg GpArgRegs[6] = {Reg::RDI, Reg::RSI, Reg::RDX,
                                     Reg::RCX, Reg::R8,  Reg::R9};

/// Condition codes (tttn encoding).
enum class Cond : uint8_t {
  O = 0x0,
  NO = 0x1,
  B = 0x2,
  AE = 0x3,
  E = 0x4,
  NE = 0x5,
  BE = 0x6,
  A = 0x7,
  S = 0x8,
  NS = 0x9,
  P = 0xa,
  NP = 0xb,
  L = 0xc,
  GE = 0xd,
  LE = 0xe,
  G = 0xf,
};

inline Cond invert(Cond C) {
  return static_cast<Cond>(static_cast<uint8_t>(C) ^ 1);
}

/// Memory operand: [Base + Index*Scale + Disp].
struct Mem {
  Reg Base = Reg::NoReg;
  Reg Index = Reg::NoReg;
  uint8_t Scale = 1; ///< 1, 2, 4, or 8.
  int32_t Disp = 0;

  static Mem base(Reg B, int32_t Disp = 0) { return {B, Reg::NoReg, 1, Disp}; }
  static Mem baseIndex(Reg B, Reg I, uint8_t Scale, int32_t Disp = 0) {
    return {B, I, Scale, Disp};
  }
};

/// Label for intra-buffer branches.
using Label = uint32_t;

/// Operand width for integer operations.
enum class Width : uint8_t { W8 = 0, W16 = 1, W32 = 2, W64 = 3 };

inline Width widthForBytes(unsigned Bytes) {
  switch (Bytes) {
  case 1:
    return Width::W8;
  case 2:
    return Width::W16;
  case 4:
    return Width::W32;
  case 8:
    return Width::W64;
  }
  QCF_UNREACHABLE("invalid operand size");
}

/// x86-64 encoder writing into an internal byte buffer.
class Assembler {
public:
  // --- Buffer / label management ----------------------------------------

  const std::vector<uint8_t> &code() const { return Code; }
  size_t size() const { return Code.size(); }
  void clear() {
    Code.clear();
    Labels.clear();
    Fixups.clear();
  }

  Label newLabel() {
    Labels.push_back(-1);
    return static_cast<Label>(Labels.size() - 1);
  }

  void bind(Label L) {
    assert(Labels[L] < 0 && "label bound twice");
    Labels[L] = static_cast<int64_t>(Code.size());
  }

  bool isBound(Label L) const { return Labels[L] >= 0; }
  int64_t labelOffset(Label L) const { return Labels[L]; }

  /// Resolves all label fixups. Must be called before using the code.
  void finalize();

  /// Raw byte emission (used by data tables and tests).
  void emitBytes(const uint8_t *Data, size_t Len) {
    Code.insert(Code.end(), Data, Data + Len);
  }
  void emit8(uint8_t B) { Code.push_back(B); }
  void emit32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void emit64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }

  // --- Moves --------------------------------------------------------------

  void movRR(Width W, Reg Dst, Reg Src);       ///< mov dst, src
  void movRI(Reg Dst, uint64_t Imm);           ///< movabs dst, imm64 (or 32-bit forms)
  void movAbsRI(Reg Dst, uint64_t Imm);        ///< movabs dst, imm64 (always 10 bytes)
  void movRI32(Reg Dst, uint32_t Imm);         ///< mov dst32, imm32 (zero-extends)
  void movRM(Width W, Reg Dst, Mem M);         ///< mov dst, [mem]
  void movMR(Width W, Mem M, Reg Src);         ///< mov [mem], src
  void movMI32(Width W, Mem M, uint32_t Imm);  ///< mov [mem], imm32
  void movzxRM(Width SrcW, Reg Dst, Mem M);    ///< movzx dst64, <W> [mem]
  void movsxRM(Width SrcW, Reg Dst, Mem M);    ///< movsx dst64, <W> [mem]
  void movzxRR(Width SrcW, Reg Dst, Reg Src);  ///< movzx dst64, src<W>
  void movsxRR(Width SrcW, Reg Dst, Reg Src);  ///< movsx dst64, src<W>
  void lea(Reg Dst, Mem M);

  // --- Integer ALU ---------------------------------------------------------

  enum class Alu : uint8_t {
    Add = 0,
    Or = 1,
    Adc = 2,
    Sbb = 3,
    And = 4,
    Sub = 5,
    Xor = 6,
    Cmp = 7,
  };

  void aluRR(Alu Op, Width W, Reg Dst, Reg Src);
  void aluRI(Alu Op, Width W, Reg Dst, int32_t Imm);
  void aluRM(Alu Op, Width W, Reg Dst, Mem M);
  void testRR(Width W, Reg A, Reg B);
  void testRI(Width W, Reg A, int32_t Imm);
  void negR(Width W, Reg R);
  void notR(Width W, Reg R);
  void imulRR(Width W, Reg Dst, Reg Src);       ///< dst *= src (signed)
  void imulRRI(Width W, Reg Dst, Reg Src, int32_t Imm);
  void mulR(Width W, Reg Src);  ///< RDX:RAX = RAX * src (unsigned)
  void imulR(Width W, Reg Src); ///< RDX:RAX = RAX * src (signed)
  void divR(Width W, Reg Src);  ///< unsigned divide RDX:RAX by src
  void idivR(Width W, Reg Src); ///< signed divide RDX:RAX by src
  void cqo();                   ///< sign-extend RAX into RDX (64-bit)
  void cdq();                   ///< sign-extend EAX into EDX (32-bit)

  enum class Shift : uint8_t {
    Rol = 0,
    Ror = 1,
    Shl = 4,
    Shr = 5,
    Sar = 7,
  };
  void shiftRC(Shift Op, Width W, Reg R); ///< shift by CL
  void shiftRI(Shift Op, Width W, Reg R, uint8_t Imm);

  void crc32RR(Reg Dst, Reg Src); ///< crc32 dst, src (64-bit operands)

  // --- Flags / conditions ---------------------------------------------------

  void setcc(Cond C, Reg Dst);             ///< setcc dst8 (upper bits untouched)
  void cmovcc(Cond C, Width W, Reg Dst, Reg Src);

  // --- Control flow ----------------------------------------------------------

  void jmp(Label L);
  void jcc(Cond C, Label L);
  void jmpReg(Reg R);
  void callReg(Reg R);
  void callRel32(Label L);
  void ret();
  void ud2();
  void nop();

  /// jmp/call with a rel32 whose target is patched externally (returns the
  /// offset of the rel32 field). Used by JIT linkers applying relocations.
  size_t jmpRel32Patchable();
  size_t callRel32Patchable();

  // --- Stack ------------------------------------------------------------------

  void pushR(Reg R);
  void popR(Reg R);

  // --- Atomics ------------------------------------------------------------------

  void lockXaddMR(Width W, Mem M, Reg Src); ///< lock xadd [mem], src

  // --- SSE scalar double -------------------------------------------------------

  void movsdXM(Xmm Dst, Mem M);
  void movsdMX(Mem M, Xmm Src);
  void movsdXX(Xmm Dst, Xmm Src);
  void movqXR(Xmm Dst, Reg Src);
  void movqRX(Reg Dst, Xmm Src);
  void addsd(Xmm Dst, Xmm Src);
  void subsd(Xmm Dst, Xmm Src);
  void mulsd(Xmm Dst, Xmm Src);
  void divsd(Xmm Dst, Xmm Src);
  void ucomisd(Xmm A, Xmm B);
  void cvtsi2sd(Xmm Dst, Reg Src);  ///< 64-bit int -> double
  void cvttsd2si(Reg Dst, Xmm Src); ///< double -> 64-bit int (truncating)
  void xorps(Xmm Dst, Xmm Src);

private:
  void rex(bool W, uint8_t RegField, uint8_t Index, uint8_t Base,
           uint8_t ByteRegMask = 0);
  void modrm(uint8_t Mod, uint8_t RegField, uint8_t Rm);
  void memOperand(uint8_t RegField, const Mem &M);
  void prefixFor(Width W, uint8_t RegField, const Mem &M, bool Force8);
  void prefixForRR(Width W, uint8_t RegField, uint8_t Rm, bool Force8);
  void prefixForExt(Width W, uint8_t Ext, uint8_t Rm, bool Force8);
  void opWithWidth(Width W, uint8_t Op8, uint8_t OpW);
  void emitRel32Fixup(Label L);

  struct Fixup {
    size_t Pos; ///< Offset of the rel32 field.
    Label Target;
  };

  std::vector<uint8_t> Code;
  std::vector<int64_t> Labels;
  std::vector<Fixup> Fixups;
};

} // namespace qcf::x64

#endif // QCF_X64_ASM_H
