//===- x64/CallbackThunk.cpp - Closure thunks for host callbacks ----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "x64/CallbackThunk.h"
#include "x64/Asm.h"
#include <cstring>

using namespace qcf;
using namespace qcf::x64;

void *ThunkAllocator::createThunk(Handler H, void *Ctx) {
  Assembler A;
  // Shift integer args right: r9<-r8, r8<-rcx, rcx<-rdx, rdx<-rsi,
  // rsi<-rdi, then rdi<-ctx; tail-call the handler.
  A.movRR(Width::W64, Reg::R9, Reg::R8);
  A.movRR(Width::W64, Reg::R8, Reg::RCX);
  A.movRR(Width::W64, Reg::RCX, Reg::RDX);
  A.movRR(Width::W64, Reg::RDX, Reg::RSI);
  A.movRR(Width::W64, Reg::RSI, Reg::RDI);
  A.movRI(Reg::RDI, reinterpret_cast<uint64_t>(Ctx));
  A.movRI(Reg::R10, reinterpret_cast<uint64_t>(H));
  A.jmpReg(Reg::R10);
  A.finalize();

  size_t Need = (A.size() + 15) & ~size_t(15);
  if (Pages.empty() || Pages.back()->isExecutable() ||
      UsedInLast + Need > Pages.back()->size()) {
    Pages.push_back(std::make_unique<ExecMemory>(4096));
    UsedInLast = 0;
  }
  uint8_t *Dst = Pages.back()->base() + UsedInLast;
  std::memcpy(Dst, A.code().data(), A.size());
  UsedInLast += Need;
  return Dst;
}

void ThunkAllocator::finalize() {
  if (!Pages.empty() && !Pages.back()->isExecutable())
    Pages.back()->makeExecutable();
  // Earlier pages were sealed when they filled up; seal any stragglers.
  for (auto &P : Pages)
    if (!P->isExecutable())
      P->makeExecutable();
}
