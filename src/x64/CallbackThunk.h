//===- x64/CallbackThunk.h - Closure thunks for host callbacks --*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny machine-code trampolines that bind a context pointer to a C
/// handler, producing a plain function pointer. The interpreter back-end
/// uses these so that runtime functions taking generated-code callbacks
/// (e.g. rt_sort's comparator, §III-A) can "call into" interpreted
/// functions exactly like into JIT-compiled ones.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_X64_CALLBACKTHUNK_H
#define QCF_X64_CALLBACKTHUNK_H

#include "x64/ExecMemory.h"
#include <cstdint>
#include <memory>
#include <vector>

namespace qcf::x64 {

/// Builds thunks of the shape:
///   thunk(a0..a4) -> handler(ctx, a0..a4)
/// i.e. the integer arguments are shifted one slot right and the bound
/// context pointer becomes the first argument. At most 5 pass-through
/// integer arguments are supported (6 GP argument registers total).
class ThunkAllocator {
public:
  using Handler = uint64_t (*)(void *Ctx, uint64_t, uint64_t, uint64_t,
                               uint64_t, uint64_t);

  /// Creates a thunk; the returned pointer stays valid as long as this
  /// allocator lives.
  void *createThunk(Handler H, void *Ctx);

  /// Seals all thunk pages (call after the last createThunk).
  void finalize();

private:
  std::vector<std::unique_ptr<ExecMemory>> Pages;
  size_t UsedInLast = 0;
};

} // namespace qcf::x64

#endif // QCF_X64_CALLBACKTHUNK_H
