//===- x64/Decode.cpp - Semantic x86-64 decoder -----------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "x64/Decode.h"
#include <algorithm>

using namespace qcf;
using namespace qcf::x64;

const char *x64::decOpName(DecOp Op) {
  switch (Op) {
  case DecOp::MovRR:
    return "mov";
  case DecOp::MovRM:
    return "mov(load)";
  case DecOp::MovMR:
    return "mov(store)";
  case DecOp::MovRI:
    return "mov-imm";
  case DecOp::MovMI:
    return "mov-imm(store)";
  case DecOp::MovZX:
    return "movzx";
  case DecOp::MovSX:
    return "movsx";
  case DecOp::Lea:
    return "lea";
  case DecOp::AluRR:
    return "alu";
  case DecOp::AluRM:
    return "alu(load)";
  case DecOp::AluRI:
    return "alu-imm";
  case DecOp::TestRR:
    return "test";
  case DecOp::TestRI:
    return "test-imm";
  case DecOp::Neg:
    return "neg";
  case DecOp::Not:
    return "not";
  case DecOp::ImulRR:
    return "imul";
  case DecOp::ImulRRI:
    return "imul-imm";
  case DecOp::MulDiv:
    return "mul/div";
  case DecOp::Cqo:
    return "cqo";
  case DecOp::Cdq:
    return "cdq";
  case DecOp::ShiftRI:
    return "shift-imm";
  case DecOp::ShiftRC:
    return "shift-cl";
  case DecOp::Crc32:
    return "crc32";
  case DecOp::Setcc:
    return "setcc";
  case DecOp::Cmovcc:
    return "cmovcc";
  case DecOp::Jmp:
    return "jmp";
  case DecOp::Jcc:
    return "jcc";
  case DecOp::JmpReg:
    return "jmp-reg";
  case DecOp::CallReg:
    return "call-reg";
  case DecOp::CallRel:
    return "call";
  case DecOp::Ret:
    return "ret";
  case DecOp::Ud2:
    return "ud2";
  case DecOp::Nop:
    return "nop";
  case DecOp::Push:
    return "push";
  case DecOp::Pop:
    return "pop";
  case DecOp::Xadd:
    return "xadd";
  case DecOp::MovsdXM:
    return "movsd(load)";
  case DecOp::MovsdMX:
    return "movsd(store)";
  case DecOp::MovsdXX:
    return "movsd";
  case DecOp::MovqXR:
    return "movq(x<-r)";
  case DecOp::MovqRX:
    return "movq(r<-x)";
  case DecOp::Addsd:
    return "addsd";
  case DecOp::Subsd:
    return "subsd";
  case DecOp::Mulsd:
    return "mulsd";
  case DecOp::Divsd:
    return "divsd";
  case DecOp::Ucomisd:
    return "ucomisd";
  case DecOp::Cvtsi2sd:
    return "cvtsi2sd";
  case DecOp::Cvttsd2si:
    return "cvttsd2si";
  case DecOp::Xorps:
    return "xorps";
  }
  return "?";
}

namespace {

uint32_t read32(const uint8_t *Code, size_t P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(Code[P + I]) << (I * 8);
  return V;
}

uint64_t read64(const uint8_t *Code, size_t P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(Code[P + I]) << (I * 8);
  return V;
}

int64_t signExtend(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t M = 1ull << (Bits - 1);
  return static_cast<int64_t>(((V & ((1ull << Bits) - 1)) ^ M) - M);
}

} // namespace

DecodedInst x64::decodeInst(const uint8_t *Code, size_t Size, size_t Pos) {
  DecodedInst D;
  D.Off = static_cast<uint32_t>(Pos);
  size_t P = Pos;
  bool Opnd16 = false, SawF2 = false;

  // Legacy prefixes (66 operand-size, F0 lock, F2/F3 mandatory).
  while (P < Size && (Code[P] == 0x66 || Code[P] == 0xf0 ||
                      Code[P] == 0xf2 || Code[P] == 0xf3)) {
    if (Code[P] == 0x66)
      Opnd16 = true;
    else if (Code[P] == 0xf0)
      D.HasLock = true;
    else if (Code[P] == 0xf2)
      SawF2 = true;
    ++P;
  }
  // REX.
  bool RexW = false, RexR = false, RexX = false, RexB = false;
  if (P < Size && (Code[P] & 0xf0) == 0x40) {
    RexW = (Code[P] & 0x08) != 0;
    RexR = (Code[P] & 0x04) != 0;
    RexX = (Code[P] & 0x02) != 0;
    RexB = (Code[P] & 0x01) != 0;
    ++P;
  }
  if (P >= Size) {
    D.Error = "truncated instruction (prefixes only)";
    return D;
  }

  // Non-8-bit operand width from the prefixes.
  const Width WI = RexW ? Width::W64 : Opnd16 ? Width::W16 : Width::W32;

  auto fail = [&](const char *Msg) {
    D.Error = Msg;
    D.Len = 0;
    return D;
  };
  auto done = [&](size_t End) {
    D.Len = static_cast<uint32_t>(End - Pos);
    return D;
  };

  // Parses ModRM (+ SIB + displacement) at \p Q into D.Reg / D.Rm / D.M.
  // Returns the number of bytes consumed, or 0 with D.Error set.
  auto modrm = [&](size_t Q) -> size_t {
    if (Q >= Size) {
      D.Error = "truncated ModRM operand";
      return 0;
    }
    uint8_t MB = Code[Q];
    uint8_t Mod = MB >> 6, RegF = (MB >> 3) & 7, RmF = MB & 7;
    D.Reg = RegF | (RexR ? 8 : 0);
    size_t Len = 1;
    if (Mod == 3) {
      D.Rm = RmF | (RexB ? 8 : 0);
      D.RmIsMem = false;
      return Len;
    }
    D.RmIsMem = true;
    uint8_t Base = RmF, Index = 0xff, Scale = 1;
    if (RmF == 4) { // SIB byte
      if (Q + Len >= Size) {
        D.Error = "truncated ModRM operand";
        return 0;
      }
      uint8_t Sib = Code[Q + Len];
      ++Len;
      Scale = static_cast<uint8_t>(1 << (Sib >> 6));
      uint8_t Idx = (Sib >> 3) & 7;
      if (Idx != 4 || RexX)
        Index = Idx | (RexX ? 8 : 0);
      Base = Sib & 7;
      if (Mod == 0 && Base == 5) {
        D.Error = "unsupported no-base addressing";
        return 0;
      }
    } else if (Mod == 0 && RmF == 5) {
      D.Error = "unsupported rip-relative operand";
      return 0;
    }
    int32_t Disp = 0;
    if (Mod == 1) {
      if (Q + Len + 1 > Size) {
        D.Error = "truncated ModRM operand";
        return 0;
      }
      Disp = static_cast<int8_t>(Code[Q + Len]);
      Len += 1;
    } else if (Mod == 2) {
      if (Q + Len + 4 > Size) {
        D.Error = "truncated ModRM operand";
        return 0;
      }
      Disp = static_cast<int32_t>(read32(Code, Q + Len));
      Len += 4;
    }
    D.M.Base = static_cast<Reg>(Base | (RexB ? 8 : 0));
    D.M.Index = Index == 0xff ? Reg::NoReg : static_cast<Reg>(Index);
    D.M.Scale = Scale;
    D.M.Disp = Disp;
    return Len;
  };

  // Reads a sign-extended immediate of \p Bytes at \p Q into D.Imm.
  auto immS = [&](size_t Q, unsigned Bytes) -> bool {
    if (Q + Bytes > Size) {
      D.Error = "truncated immediate";
      return false;
    }
    D.ImmOff = static_cast<uint32_t>(Q);
    uint64_t V = 0;
    for (unsigned I = 0; I != Bytes; ++I)
      V |= static_cast<uint64_t>(Code[Q + I]) << (I * 8);
    D.Imm = signExtend(V, Bytes * 8);
    return true;
  };
  auto rel32At = [&](size_t Q) -> bool {
    if (Q + 4 > Size)
      return false;
    D.Rel32Off = static_cast<uint32_t>(Q);
    D.Rel32 = static_cast<int32_t>(read32(Code, Q));
    return true;
  };

  uint8_t B = Code[P];
  size_t Q = P + 1;

  // Two-byte (and crc32's three-byte) opcode space.
  if (B == 0x0f) {
    if (Q >= Size)
      return fail("truncated 0F opcode");
    uint8_t B2 = Code[Q];
    size_t Q2 = Q + 1;

    // SSE / xadd / movzx family: ModRM follows the second opcode byte.
    auto withModRm = [&](DecOp Op, Width W, bool RegOnly) -> DecodedInst {
      size_t L = modrm(Q2);
      if (!L)
        return D;
      if (RegOnly && D.RmIsMem)
        return fail("unsupported memory operand");
      D.Op = Op;
      D.W = W;
      return done(Q2 + L);
    };

    switch (B2) {
    case 0x0b: // ud2
      D.Op = DecOp::Ud2;
      return done(Q2);
    case 0x10: { // movsd xmm, x/m (F2 prefix)
      if (!SawF2)
        return fail("unsupported SSE encoding");
      size_t L = modrm(Q2);
      if (!L)
        return D;
      D.Op = D.RmIsMem ? DecOp::MovsdXM : DecOp::MovsdXX;
      D.W = Width::W64;
      return done(Q2 + L);
    }
    case 0x11: { // movsd m, xmm (F2 prefix)
      if (!SawF2)
        return fail("unsupported SSE encoding");
      size_t L = modrm(Q2);
      if (!L)
        return D;
      if (!D.RmIsMem)
        return fail("unsupported movsd store form");
      D.Op = DecOp::MovsdMX;
      D.W = Width::W64;
      return done(Q2 + L);
    }
    case 0x2a: // cvtsi2sd xmm, r64
      if (!SawF2 || !RexW)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::Cvtsi2sd, Width::W64, /*RegOnly=*/true);
    case 0x2c: // cvttsd2si r64, xmm
      if (!SawF2 || !RexW)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::Cvttsd2si, Width::W64, /*RegOnly=*/true);
    case 0x2e: // ucomisd xmm, xmm
      if (!Opnd16)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::Ucomisd, Width::W64, /*RegOnly=*/true);
    case 0x57: // xorps xmm, xmm
      return withModRm(DecOp::Xorps, Width::W64, /*RegOnly=*/true);
    case 0x58: // addsd
      if (!SawF2)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::Addsd, Width::W64, /*RegOnly=*/true);
    case 0x59: // mulsd
      if (!SawF2)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::Mulsd, Width::W64, /*RegOnly=*/true);
    case 0x5c: // subsd
      if (!SawF2)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::Subsd, Width::W64, /*RegOnly=*/true);
    case 0x5e: // divsd
      if (!SawF2)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::Divsd, Width::W64, /*RegOnly=*/true);
    case 0x6e: // movq xmm, r64
      if (!Opnd16 || !RexW)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::MovqXR, Width::W64, /*RegOnly=*/true);
    case 0x7e: // movq r64, xmm
      if (!Opnd16 || !RexW)
        return fail("unsupported SSE encoding");
      return withModRm(DecOp::MovqRX, Width::W64, /*RegOnly=*/true);
    case 0xaf: // imul r, r/m
      return withModRm(DecOp::ImulRR, WI, /*RegOnly=*/false);
    case 0xb6: // movzx r64, r/m8
      return withModRm(DecOp::MovZX, Width::W8, /*RegOnly=*/false);
    case 0xb7: // movzx r64, r/m16
      return withModRm(DecOp::MovZX, Width::W16, /*RegOnly=*/false);
    case 0xbe: // movsx r64, r/m8
      return withModRm(DecOp::MovSX, Width::W8, /*RegOnly=*/false);
    case 0xbf: // movsx r64, r/m16
      return withModRm(DecOp::MovSX, Width::W16, /*RegOnly=*/false);
    case 0xc0: { // xadd r/m8, r
      size_t L = modrm(Q2);
      if (!L)
        return D;
      D.Op = DecOp::Xadd;
      D.W = Width::W8;
      return done(Q2 + L);
    }
    case 0xc1: { // xadd r/m, r
      size_t L = modrm(Q2);
      if (!L)
        return D;
      D.Op = DecOp::Xadd;
      D.W = WI;
      return done(Q2 + L);
    }
    case 0x38: // 0F 38 F1: crc32 r64, r/m64
      if (Q2 >= Size || Code[Q2] != 0xf1)
        return fail("unknown 0F 38 opcode");
      if (!SawF2)
        return fail("unsupported 0F 38 encoding");
      {
        size_t L = modrm(Q2 + 1);
        if (!L)
          return D;
        D.Op = DecOp::Crc32;
        D.W = RexW ? Width::W64 : Width::W32;
        return done(Q2 + 1 + L);
      }
    default:
      if (B2 >= 0x40 && B2 <= 0x4f) { // cmovcc
        D.CC = static_cast<Cond>(B2 & 0xf);
        return withModRm(DecOp::Cmovcc, WI, /*RegOnly=*/false);
      }
      if (B2 >= 0x80 && B2 <= 0x8f) { // jcc rel32
        if (!rel32At(Q2))
          return fail("truncated jcc rel32");
        D.Op = DecOp::Jcc;
        D.CC = static_cast<Cond>(B2 & 0xf);
        return done(Q2 + 4);
      }
      if (B2 >= 0x90 && B2 <= 0x9f) { // setcc r8
        D.CC = static_cast<Cond>(B2 & 0xf);
        DecodedInst R = withModRm(DecOp::Setcc, Width::W8, /*RegOnly=*/true);
        D.Reg = 0xff; // reg field is an unused extension
        return R;
      }
      return fail("unknown 0F opcode");
    }
  }

  // One-byte ALU opcode block: op*8 + {0: rm8,r8  1: rm,r  2: r8,rm8  3: r,rm}.
  if (B < 0x40 && (B & 7) <= 3) {
    D.AluOp = static_cast<Assembler::Alu>(B >> 3);
    uint8_t Form = B & 7;
    size_t L = modrm(Q);
    if (!L)
      return D;
    D.W = (Form == 0 || Form == 2) ? Width::W8 : WI;
    D.Op = Form <= 1 ? DecOp::AluRR : DecOp::AluRM;
    return done(Q + L);
  }
  if (B >= 0x50 && B <= 0x57) { // push r
    D.Op = DecOp::Push;
    D.Rm = (B & 7) | (RexB ? 8 : 0);
    return done(Q);
  }
  if (B >= 0x58 && B <= 0x5f) { // pop r
    D.Op = DecOp::Pop;
    D.Rm = (B & 7) | (RexB ? 8 : 0);
    return done(Q);
  }
  if (B >= 0xb8 && B <= 0xbf) { // mov r, imm32/imm64
    D.Op = DecOp::MovRI;
    D.Rm = (B & 7) | (RexB ? 8 : 0);
    if (RexW) {
      if (Q + 8 > Size)
        return fail("truncated immediate");
      D.ImmOff = static_cast<uint32_t>(Q);
      D.Imm = static_cast<int64_t>(read64(Code, Q));
      D.W = Width::W64;
      return done(Q + 8);
    }
    if (Q + 4 > Size)
      return fail("truncated immediate");
    D.ImmOff = static_cast<uint32_t>(Q);
    D.Imm = static_cast<int64_t>(read32(Code, Q)); // 32-bit mov zero-extends
    D.W = Width::W32;
    return done(Q + 4);
  }

  switch (B) {
  case 0x63: { // movsxd r64, r/m32
    size_t L = modrm(Q);
    if (!L)
      return D;
    D.Op = DecOp::MovSX;
    D.W = Width::W32;
    return done(Q + L);
  }
  case 0x69:   // imul r, r/m, imm16/32
  case 0x6b: { // imul r, r/m, imm8
    size_t L = modrm(Q);
    if (!L)
      return D;
    unsigned Bytes = B == 0x6b ? 1 : Opnd16 ? 2 : 4;
    if (!immS(Q + L, Bytes))
      return D;
    D.Op = DecOp::ImulRRI;
    D.W = WI;
    return done(Q + L + Bytes);
  }
  case 0x80:   // alu r/m8, imm8
  case 0x81:   // alu r/m, imm16/32
  case 0x83: { // alu r/m, imm8
    size_t L = modrm(Q);
    if (!L)
      return D;
    D.AluOp = static_cast<Assembler::Alu>(D.Reg & 7);
    D.Reg = 0xff;
    unsigned Bytes = B == 0x81 ? (Opnd16 ? 2u : 4u) : 1u;
    if (!immS(Q + L, Bytes))
      return D;
    D.Op = DecOp::AluRI;
    D.W = B == 0x80 ? Width::W8 : WI;
    return done(Q + L + Bytes);
  }
  case 0x84:   // test r/m8, r8
  case 0x85: { // test r/m, r
    size_t L = modrm(Q);
    if (!L)
      return D;
    D.Op = DecOp::TestRR;
    D.W = B == 0x84 ? Width::W8 : WI;
    return done(Q + L);
  }
  case 0x88:   // mov r/m8, r8
  case 0x89: { // mov r/m, r
    size_t L = modrm(Q);
    if (!L)
      return D;
    D.Op = D.RmIsMem ? DecOp::MovMR : DecOp::MovRR;
    D.W = B == 0x88 ? Width::W8 : WI;
    return done(Q + L);
  }
  case 0x8a:   // mov r8, r/m8
  case 0x8b: { // mov r, r/m
    size_t L = modrm(Q);
    if (!L)
      return D;
    if (!D.RmIsMem)
      return fail("unsupported mov direction"); // the encoder uses 88/89
    D.Op = DecOp::MovRM;
    D.W = B == 0x8a ? Width::W8 : WI;
    return done(Q + L);
  }
  case 0x8d: { // lea
    size_t L = modrm(Q);
    if (!L)
      return D;
    if (!D.RmIsMem)
      return fail("lea requires a memory operand");
    D.Op = DecOp::Lea;
    D.W = WI;
    return done(Q + L);
  }
  case 0x90: // nop
    D.Op = DecOp::Nop;
    return done(Q);
  case 0x99: // cdq/cqo
    D.Op = RexW ? DecOp::Cqo : DecOp::Cdq;
    return done(Q);
  case 0xc0:   // shift r/m8, imm8
  case 0xc1: { // shift r/m, imm8
    size_t L = modrm(Q);
    if (!L)
      return D;
    uint8_t Ext = D.Reg & 7;
    D.Reg = 0xff;
    if (Ext != 0 && Ext != 1 && Ext != 4 && Ext != 5 && Ext != 7)
      return fail("unsupported shift extension");
    D.ShiftOp = static_cast<Assembler::Shift>(Ext);
    if (Q + L + 1 > Size)
      return fail("truncated immediate");
    D.ImmOff = static_cast<uint32_t>(Q + L);
    D.Imm = Code[Q + L]; // shift count, unsigned
    D.Op = DecOp::ShiftRI;
    D.W = B == 0xc0 ? Width::W8 : WI;
    return done(Q + L + 1);
  }
  case 0xc3: // ret
    D.Op = DecOp::Ret;
    return done(Q);
  case 0xc6:   // mov r/m8, imm8
  case 0xc7: { // mov r/m, imm16/32
    size_t L = modrm(Q);
    if (!L)
      return D;
    if ((D.Reg & 7) != 0)
      return fail("unsupported group-11 extension");
    D.Reg = 0xff;
    unsigned Bytes = B == 0xc6 ? 1u : Opnd16 ? 2u : 4u;
    if (!immS(Q + L, Bytes))
      return D;
    D.Op = D.RmIsMem ? DecOp::MovMI : DecOp::MovRI;
    D.W = B == 0xc6 ? Width::W8 : WI;
    return done(Q + L + Bytes);
  }
  case 0xd2:   // shift r/m8, cl
  case 0xd3: { // shift r/m, cl
    size_t L = modrm(Q);
    if (!L)
      return D;
    uint8_t Ext = D.Reg & 7;
    D.Reg = 0xff;
    if (Ext != 0 && Ext != 1 && Ext != 4 && Ext != 5 && Ext != 7)
      return fail("unsupported shift extension");
    D.ShiftOp = static_cast<Assembler::Shift>(Ext);
    D.Op = DecOp::ShiftRC;
    D.W = B == 0xd2 ? Width::W8 : WI;
    return done(Q + L);
  }
  case 0xe8: // call rel32
    if (!rel32At(Q))
      return fail("truncated call rel32");
    D.Op = DecOp::CallRel;
    return done(Q + 4);
  case 0xe9: // jmp rel32
    if (!rel32At(Q))
      return fail("truncated jmp rel32");
    D.Op = DecOp::Jmp;
    return done(Q + 4);
  case 0xf6:   // group 3, 8-bit
  case 0xf7: { // group 3
    size_t L = modrm(Q);
    if (!L)
      return D;
    uint8_t Ext = D.Reg & 7;
    D.Reg = 0xff;
    D.W = B == 0xf6 ? Width::W8 : WI;
    switch (Ext) {
    case 0: { // test r/m, imm
      unsigned Bytes = B == 0xf6 ? 1u : Opnd16 ? 2u : 4u;
      if (!immS(Q + L, Bytes))
        return D;
      D.Op = DecOp::TestRI;
      return done(Q + L + Bytes);
    }
    case 2:
      D.Op = DecOp::Not;
      return done(Q + L);
    case 3:
      D.Op = DecOp::Neg;
      return done(Q + L);
    case 4:
    case 5:
    case 6:
    case 7:
      D.Op = DecOp::MulDiv;
      D.GrpExt = Ext;
      return done(Q + L);
    default:
      return fail("unsupported group-3 extension");
    }
  }
  case 0xff: { // group 5: /2 call r/m, /4 jmp r/m
    size_t L = modrm(Q);
    if (!L)
      return D;
    uint8_t Ext = D.Reg & 7;
    D.Reg = 0xff;
    if (Ext != 2 && Ext != 4)
      return fail("unsupported group-5 extension");
    if (D.RmIsMem)
      return fail("unsupported indirect branch through memory");
    D.Op = Ext == 2 ? DecOp::CallReg : DecOp::JmpReg;
    return done(Q + L);
  }
  default:
    return fail("unknown opcode byte");
  }
}

uint32_t DecodedFunction::instAt(size_t Off) const {
  auto It = std::lower_bound(StartOffs.begin(), StartOffs.end(),
                             static_cast<uint32_t>(Off));
  if (It == StartOffs.end() || *It != Off)
    return ~0u;
  return static_cast<uint32_t>(It - StartOffs.begin());
}

uint32_t DecodedFunction::blockAt(size_t Off) const {
  uint32_t I = instAt(Off);
  if (I == ~0u)
    return ~0u;
  auto It = std::lower_bound(
      Blocks.begin(), Blocks.end(), I,
      [](const DecodedBlock &B, uint32_t Begin) { return B.Begin < Begin; });
  if (It == Blocks.end() || It->Begin != I)
    return ~0u;
  return static_cast<uint32_t>(It - Blocks.begin());
}

DecodedFunction x64::decodeFunction(const uint8_t *Code, size_t Size,
                                    const std::vector<DecodeReloc> &Relocs) {
  DecodedFunction F;

  size_t Pos = 0;
  while (Pos < Size) {
    DecodedInst D = decodeInst(Code, Size, Pos);
    if (D.Error) {
      F.Error = "encoding lint: offset " + std::to_string(Pos) + ": " +
                D.Error + " (byte 0x" + std::to_string(Code[Pos]) + ")";
      return F;
    }
    F.StartOffs.push_back(static_cast<uint32_t>(Pos));
    F.Insts.push_back(D);
    Pos += D.Len;
  }
  // The loop ends exactly at Size: decodeInst never returns a length that
  // overruns the buffer, and a short final instruction fails decode above.
  if (F.Insts.empty())
    return F;

  auto coveredByReloc = [&](size_t Off, size_t Width) {
    for (const DecodeReloc &R : Relocs)
      if (R.Offset <= Off && Off + Width <= R.Offset + R.Width)
        return true;
    return false;
  };

  // Branch/call targets must land on instruction starts. A rel32 field under
  // a relocation is patched at link time and points outside the function.
  for (const DecodedInst &D : F.Insts) {
    if (!D.Rel32Off || coveredByReloc(D.Rel32Off, 4))
      continue;
    size_t Target = D.branchTarget();
    if (Target >= Size || F.instAt(Target) == ~0u) {
      F.Error = "encoding lint: " +
                std::string(D.Op == DecOp::CallRel ? "call" : "branch") +
                " at offset " + std::to_string(D.Rel32Off) +
                " targets offset " + std::to_string(Target) +
                ", which is not an instruction start";
      return F;
    }
  }

  // Relocations must patch bytes strictly inside one instruction (an
  // immediate/displacement field), never an opcode byte.
  for (const DecodeReloc &R : Relocs) {
    auto It = std::upper_bound(F.StartOffs.begin(), F.StartOffs.end(),
                               static_cast<uint32_t>(R.Offset));
    if (It == F.StartOffs.begin()) {
      F.Error = "encoding lint: relocation at offset " +
                std::to_string(R.Offset) + " precedes all instructions";
      return F;
    }
    size_t Idx = static_cast<size_t>(It - F.StartOffs.begin()) - 1;
    size_t Start = F.StartOffs[Idx], End = Start + F.Insts[Idx].Len;
    if (R.Offset == Start || R.Offset + R.Width > End) {
      F.Error = "encoding lint: relocation [" + std::to_string(R.Offset) +
                "," + std::to_string(R.Offset + R.Width) +
                ") does not lie inside one instruction's payload (instruction"
                " at [" +
                std::to_string(Start) + "," + std::to_string(End) + "))";
      return F;
    }
  }

  // Block leaders: entry, every intra-function branch target, and every
  // instruction following a terminator or conditional branch.
  std::vector<uint32_t> Leaders{0};
  for (size_t I = 0; I != F.Insts.size(); ++I) {
    const DecodedInst &D = F.Insts[I];
    bool IntraBranch = (D.Op == DecOp::Jmp || D.Op == DecOp::Jcc) &&
                       !coveredByReloc(D.Rel32Off, 4);
    if (IntraBranch)
      Leaders.push_back(static_cast<uint32_t>(D.branchTarget()));
    if ((D.isTerminator() || D.Op == DecOp::Jcc) && I + 1 != F.Insts.size())
      Leaders.push_back(F.Insts[I + 1].Off);
  }
  std::sort(Leaders.begin(), Leaders.end());
  Leaders.erase(std::unique(Leaders.begin(), Leaders.end()), Leaders.end());

  auto blockOf = [&](size_t Off) {
    auto It = std::lower_bound(Leaders.begin(), Leaders.end(),
                               static_cast<uint32_t>(Off));
    return static_cast<uint32_t>(It - Leaders.begin());
  };

  for (size_t K = 0; K != Leaders.size(); ++K) {
    DecodedBlock Blk;
    Blk.Begin = F.instAt(Leaders[K]);
    Blk.End = K + 1 != Leaders.size()
                  ? F.instAt(Leaders[K + 1])
                  : static_cast<uint32_t>(F.Insts.size());
    const DecodedInst &Last = F.Insts[Blk.End - 1];
    bool HasNext = K + 1 != Leaders.size();
    switch (Last.Op) {
    case DecOp::Jmp:
      if (!coveredByReloc(Last.Rel32Off, 4))
        Blk.Succ[Blk.NumSucc++] = blockOf(Last.branchTarget());
      break;
    case DecOp::Jcc:
      if (!coveredByReloc(Last.Rel32Off, 4))
        Blk.Succ[Blk.NumSucc++] = blockOf(Last.branchTarget());
      if (HasNext)
        Blk.Succ[Blk.NumSucc++] = static_cast<uint32_t>(K + 1);
      break;
    case DecOp::Ret:
    case DecOp::Ud2:
    case DecOp::JmpReg:
      break;
    default:
      if (HasNext)
        Blk.Succ[Blk.NumSucc++] = static_cast<uint32_t>(K + 1);
      break;
    }
    F.Blocks.push_back(Blk);
  }
  return F;
}
