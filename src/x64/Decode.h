//===- x64/Decode.h - Semantic x86-64 decoder -------------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A semantic decoder for exactly the instruction surface x64::Assembler
/// emits (see Asm.cpp). Grown out of EncodingLint's length decoder: instead
/// of just measuring instructions, decodeInst recovers operands — registers,
/// memory addressing, immediates, condition codes, widths — into a uniform
/// DecodedInst record, and decodeFunction recovers a block-level CFG from
/// branch targets. This is the front end of the translation-validation layer
/// (src/tv), which lifts decoded instructions to symbolic semantics; the
/// encoding lint is reimplemented on top of the same decoder.
///
/// The operand conventions mirror the encodings:
///  * Reg is the ModRM "reg" field operand, Rm the "r/m" operand (register
///    number in Rm, or a memory reference in M when RmIsMem);
///  * for the AluRR/MovMR store-direction forms the destination is the r/m
///    operand; for AluRM/MovRM load-direction forms it is the reg operand
///    (each DecOp's comment states which);
///  * immediates are already extended to their 64-bit semantic value.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_X64_DECODE_H
#define QCF_X64_DECODE_H

#include "x64/Asm.h"
#include <cstddef>
#include <string>
#include <vector>

namespace qcf::x64 {

/// Decoded operation kinds, one per distinct semantic shape the Assembler
/// can produce.
enum class DecOp : uint8_t {
  // Moves. MovRR/MovMR: destination is r/m; MovRM: destination is reg.
  MovRR,
  MovRM,
  MovMR,
  MovRI,  ///< mov reg, imm (W32 form zero-extends, W64 forms are imm64 or
          ///< sign-extended imm32); destination in Rm.
  MovMI,  ///< mov [mem], imm (width W).
  MovZX,  ///< movzx reg64, r/m of width W (W is the *source* width).
  MovSX,  ///< movsx/movsxd reg64, r/m of width W (source width).
  Lea,    ///< lea reg, [mem].
  // Integer ALU. AluRR: dst = r/m (op r/m, reg form); AluRM: dst = reg
  // (op reg, [mem] form); AluRI: dst = r/m.
  AluRR,
  AluRM,
  AluRI,
  TestRR, ///< test r/m, reg (flags only).
  TestRI, ///< test r/m, imm (flags only).
  Neg,    ///< neg r/m (register forms only).
  Not,    ///< not r/m.
  ImulRR, ///< imul reg, r/m (two-operand signed multiply).
  ImulRRI,///< imul reg, r/m, imm.
  MulDiv, ///< one-operand mul/imul/div/idiv on r/m; GrpExt = 4/5/6/7.
  Cqo,    ///< sign-extend RAX into RDX.
  Cdq,    ///< sign-extend EAX into EDX.
  ShiftRI,///< shift/rotate r/m by Imm.
  ShiftRC,///< shift/rotate r/m by CL.
  Crc32,  ///< crc32 reg, r/m (64-bit operands).
  // Flags / conditions.
  Setcc,  ///< setcc r/m8 (byte write, upper bits untouched).
  Cmovcc, ///< cmovcc reg, r/m.
  // Control flow.
  Jmp,     ///< jmp rel32.
  Jcc,     ///< jcc rel32.
  JmpReg,  ///< jmp r/m (register form).
  CallReg, ///< call r/m (register form).
  CallRel, ///< call rel32.
  Ret,
  Ud2,
  Nop,
  Push, ///< push reg (register in Rm).
  Pop,  ///< pop reg (register in Rm).
  Xadd, ///< lock xadd [mem], reg.
  // SSE scalar double. Xmm numbers travel in Reg/Rm.
  MovsdXM, ///< movsd xmm(Reg), [mem]
  MovsdMX, ///< movsd [mem], xmm(Reg)
  MovsdXX, ///< movsd xmm(Reg), xmm(Rm)
  MovqXR,  ///< movq xmm(Reg), gp(Rm)
  MovqRX,  ///< movq gp(Rm), xmm(Reg)
  Addsd,
  Subsd,
  Mulsd,
  Divsd,
  Ucomisd,  ///< ucomisd xmm(Reg), xmm(Rm) — flags only
  Cvtsi2sd, ///< cvtsi2sd xmm(Reg), gp(Rm) (64-bit int source)
  Cvttsd2si,///< cvttsd2si gp(Reg), xmm(Rm)
  Xorps,    ///< xorps xmm(Reg), xmm(Rm)
};

const char *decOpName(DecOp Op);

/// One decoded instruction.
struct DecodedInst {
  uint32_t Off = 0;     ///< Byte offset of the instruction start.
  uint32_t Len = 0;     ///< Total encoded length (0 on decode failure).
  DecOp Op = DecOp::Nop;
  Width W = Width::W64; ///< Operand width (source width for MovZX/MovSX).
  uint8_t Reg = 0xff;   ///< ModRM reg-field operand (GP or XMM number).
  uint8_t Rm = 0xff;    ///< ModRM r/m operand when a register.
  bool RmIsMem = false; ///< True when the r/m operand is memory (see M).
  bool HasLock = false; ///< F0 prefix seen (lock xadd).
  Mem M;                ///< Memory operand when RmIsMem.
  int64_t Imm = 0;      ///< Immediate, extended to its semantic value.
  uint32_t ImmOff = 0;  ///< Offset of the immediate field (0 = none).
  uint32_t Rel32Off = 0;///< Offset of a rel32 field (0 = none).
  int32_t Rel32 = 0;    ///< The rel32 displacement value.
  Cond CC = Cond::O;    ///< Condition for Jcc/Setcc/Cmovcc.
  Assembler::Alu AluOp = Assembler::Alu::Add;
  Assembler::Shift ShiftOp = Assembler::Shift::Shl;
  uint8_t GrpExt = 0;   ///< Group-3 extension for MulDiv (4/5/6/7).
  const char *Error = nullptr; ///< Non-null on decode failure.

  bool isTerminator() const {
    return Op == DecOp::Jmp || Op == DecOp::JmpReg || Op == DecOp::Ret ||
           Op == DecOp::Ud2;
  }
  bool isBranch() const {
    return Op == DecOp::Jmp || Op == DecOp::Jcc;
  }
  /// Branch target as a function-relative offset (Jmp/Jcc/CallRel only).
  size_t branchTarget() const {
    return static_cast<size_t>(Off + Len + static_cast<int64_t>(Rel32));
  }
};

/// Decodes the instruction at \p Pos. On failure the result has Len == 0
/// and Error set.
DecodedInst decodeInst(const uint8_t *Code, size_t Size, size_t Pos);

/// A basic block of decoded code: instruction index range [Begin, End),
/// plus successor block ids recovered from the terminator.
struct DecodedBlock {
  uint32_t Begin = 0;
  uint32_t End = 0;
  uint32_t Succ[2] = {~0u, ~0u}; ///< [taken, fallthrough] block ids.
  uint8_t NumSucc = 0;
};

/// A fully decoded function: the instruction list (in layout order, covering
/// the byte range exactly) and the block-level CFG recovered from branch
/// targets. Rel32 fields covered by a relocation are external (patched at
/// link time) and do not contribute CFG edges.
struct DecodedFunction {
  std::vector<DecodedInst> Insts;
  std::vector<DecodedBlock> Blocks;
  std::string Error; ///< Non-empty when decoding or CFG recovery failed.

  bool ok() const { return Error.empty(); }
  /// Index of the instruction starting at byte offset \p Off, or ~0u.
  uint32_t instAt(size_t Off) const;
  /// Id of the block whose first instruction starts at \p Off, or ~0u.
  uint32_t blockAt(size_t Off) const;

  // Offset -> instruction index (sorted by construction).
  std::vector<uint32_t> StartOffs;
};

/// A byte range patched externally (relocation); rel32 branch fields inside
/// such ranges are exempt from target recovery. Mirrors x64::LintReloc.
struct DecodeReloc {
  uint64_t Offset;
  uint32_t Width;
};

/// Decodes \p Size bytes of machine code into instructions and recovers the
/// block CFG. All bytes must decode (the instruction list covers the buffer
/// exactly); intra-function branch targets must land on instruction starts.
DecodedFunction decodeFunction(const uint8_t *Code, size_t Size,
                               const std::vector<DecodeReloc> &Relocs = {});

} // namespace qcf::x64

#endif // QCF_X64_DECODE_H
