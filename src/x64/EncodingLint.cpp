//===- x64/EncodingLint.cpp - Machine-code encoding lint --------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "x64/EncodingLint.h"
#include <algorithm>

using namespace qcf;
using namespace qcf::x64;

namespace {

/// One decoded instruction's shape.
struct Decoded {
  size_t Len = 0;          ///< Total length; 0 = decode failure.
  size_t ImmOff = 0;       ///< Offset of immediate/disp payload (0 = none).
  size_t Rel32Off = 0;     ///< Offset of a rel32 branch field (0 = none).
  bool IsCall = false;     ///< Rel32 is a call (may target another symbol).
  const char *Error = nullptr;
};

/// ModRM + SIB + displacement length, starting at \p P (the ModRM byte).
/// Returns -1 on truncation.
int modRmLen(const uint8_t *Code, size_t Size, size_t P) {
  if (P >= Size)
    return -1;
  uint8_t ModRm = Code[P];
  uint8_t Mod = ModRm >> 6;
  uint8_t Rm = ModRm & 7;
  int Len = 1;
  if (Mod != 3 && Rm == 4) { // SIB byte
    if (P + Len >= Size)
      return -1;
    uint8_t Sib = Code[P + Len];
    ++Len;
    if (Mod == 0 && (Sib & 7) == 5)
      Len += 4; // disp32 with no base
  }
  if (Mod == 1)
    Len += 1;
  else if (Mod == 2 || (Mod == 0 && Rm == 5))
    Len += 4; // disp32 (rm==5 at mod 0 is rip-relative / disp32)
  if (P + static_cast<size_t>(Len) > Size)
    return -1;
  return Len;
}

/// Decodes one instruction at \p Pos. Covers exactly the encodings
/// x64::Assembler emits (see Asm.cpp); anything else is a lint error.
Decoded decodeOne(const uint8_t *Code, size_t Size, size_t Pos) {
  Decoded D;
  size_t P = Pos;
  bool Opnd16 = false;
  bool RexW = false;

  // Legacy prefixes (66 operand-size, F0 lock, F2/F3 mandatory).
  while (P < Size && (Code[P] == 0x66 || Code[P] == 0xf0 ||
                      Code[P] == 0xf2 || Code[P] == 0xf3)) {
    if (Code[P] == 0x66)
      Opnd16 = true;
    ++P;
  }
  // REX.
  if (P < Size && (Code[P] & 0xf0) == 0x40) {
    RexW = (Code[P] & 0x08) != 0;
    ++P;
  }
  if (P >= Size) {
    D.Error = "truncated instruction (prefixes only)";
    return D;
  }

  auto done = [&](size_t End) {
    D.Len = End - Pos;
    return D;
  };
  auto fail = [&](const char *Msg) {
    D.Error = Msg;
    return D;
  };
  auto withModRm = [&](size_t OpcodeEnd, size_t ImmBytes) -> Decoded {
    int ML = modRmLen(Code, Size, OpcodeEnd);
    if (ML < 0)
      return fail("truncated ModRM operand");
    size_t End = OpcodeEnd + static_cast<size_t>(ML) + ImmBytes;
    if (End > Size)
      return fail("truncated immediate");
    if (ImmBytes)
      D.ImmOff = OpcodeEnd + static_cast<size_t>(ML);
    return done(End);
  };
  auto immOnly = [&](size_t OpcodeEnd, size_t ImmBytes) -> Decoded {
    if (OpcodeEnd + ImmBytes > Size)
      return fail("truncated immediate");
    D.ImmOff = OpcodeEnd;
    return done(OpcodeEnd + ImmBytes);
  };

  uint8_t B = Code[P];
  size_t Q = P + 1;

  // Two-byte (and crc32's three-byte) opcode space.
  if (B == 0x0f) {
    if (Q >= Size)
      return fail("truncated 0F opcode");
    uint8_t B2 = Code[Q];
    size_t Q2 = Q + 1;
    switch (B2) {
    case 0x0b: // ud2
      return done(Q2);
    case 0x10: // movsd xmm, m/x
    case 0x11: // movsd m/x, xmm
    case 0x2a: // cvtsi2sd
    case 0x2c: // cvttsd2si
    case 0x2e: // ucomisd
    case 0x57: // xorps
    case 0x58: // addsd
    case 0x59: // mulsd
    case 0x5c: // subsd
    case 0x5e: // divsd
    case 0x6e: // movq xmm, r64
    case 0x7e: // movq r64, xmm
    case 0xaf: // imul r, r/m
    case 0xb6: // movzx r, r/m8
    case 0xb7: // movzx r, r/m16
    case 0xbe: // movsx r, r/m8
    case 0xbf: // movsx r, r/m16
    case 0xc0: // xadd r/m8, r
    case 0xc1: // xadd r/m, r
      return withModRm(Q2, 0);
    case 0x38: // 0F 38 F1: crc32
      if (Q2 >= Size || Code[Q2] != 0xf1)
        return fail("unknown 0F 38 opcode");
      return withModRm(Q2 + 1, 0);
    default:
      if (B2 >= 0x40 && B2 <= 0x4f) // cmovcc
        return withModRm(Q2, 0);
      if (B2 >= 0x80 && B2 <= 0x8f) { // jcc rel32
        if (Q2 + 4 > Size)
          return fail("truncated jcc rel32");
        D.Rel32Off = Q2;
        return done(Q2 + 4);
      }
      if (B2 >= 0x90 && B2 <= 0x9f) // setcc
        return withModRm(Q2, 0);
      return fail("unknown 0F opcode");
    }
  }

  // One-byte opcodes.
  if (B < 0x40 && (B & 7) <= 3 && (B >> 3) <= 7)
    return withModRm(Q, 0); // ALU r/m,r and r,r/m forms (00..3B)
  if (B >= 0x50 && B <= 0x5f)
    return done(Q); // push/pop
  switch (B) {
  case 0x63: // movsxd
    return withModRm(Q, 0);
  case 0x69: // imul r, r/m, imm16/32
    return withModRm(Q, Opnd16 ? 2 : 4);
  case 0x6b: // imul r, r/m, imm8
    return withModRm(Q, 1);
  case 0x80: // alu r/m8, imm8
    return withModRm(Q, 1);
  case 0x81: // alu r/m, imm16/32
    return withModRm(Q, Opnd16 ? 2 : 4);
  case 0x83: // alu r/m, imm8
    return withModRm(Q, 1);
  case 0x84: // test r/m8, r8
  case 0x85: // test r/m, r
  case 0x88: // mov r/m8, r8
  case 0x89: // mov r/m, r
  case 0x8a: // mov r8, r/m8
  case 0x8b: // mov r, r/m
  case 0x8d: // lea
    return withModRm(Q, 0);
  case 0x90: // nop
  case 0x99: // cdq/cqo
    return done(Q);
  case 0xc0: // shift r/m8, imm8
  case 0xc1: // shift r/m, imm8
    return withModRm(Q, 1);
  case 0xc3: // ret
    return done(Q);
  case 0xc6: // mov r/m8, imm8
    return withModRm(Q, 1);
  case 0xc7: // mov r/m, imm16/32
    return withModRm(Q, Opnd16 ? 2 : 4);
  case 0xd2: // shift r/m8, cl
  case 0xd3: // shift r/m, cl
    return withModRm(Q, 0);
  case 0xe8: // call rel32
    if (Q + 4 > Size)
      return fail("truncated call rel32");
    D.Rel32Off = Q;
    D.IsCall = true;
    return done(Q + 4);
  case 0xe9: // jmp rel32
    if (Q + 4 > Size)
      return fail("truncated jmp rel32");
    D.Rel32Off = Q;
    return done(Q + 4);
  case 0xf6: { // group 3, 8-bit: /0 test imm8, /2 not, /3 neg, /4../7 mul-div
    if (Q >= Size)
      return fail("truncated ModRM operand");
    uint8_t Ext = (Code[Q] >> 3) & 7;
    return withModRm(Q, Ext == 0 ? 1 : 0);
  }
  case 0xf7: { // group 3: /0 test imm, /2 not, /3 neg, /4../7 mul-div
    if (Q >= Size)
      return fail("truncated ModRM operand");
    uint8_t Ext = (Code[Q] >> 3) & 7;
    return withModRm(Q, Ext == 0 ? (Opnd16 ? 2 : 4) : 0);
  }
  case 0xff: { // group 5: /2 call r/m, /4 jmp r/m
    if (Q >= Size)
      return fail("truncated ModRM operand");
    uint8_t Ext = (Code[Q] >> 3) & 7;
    if (Ext != 2 && Ext != 4)
      return fail("unsupported group-5 extension");
    return withModRm(Q, 0);
  }
  default:
    if (B >= 0xb8 && B <= 0xbf) // mov r, imm32/imm64
      return immOnly(Q, RexW ? 8 : 4);
    return fail("unknown opcode byte");
  }
}

} // namespace

std::string x64::lintFunction(const uint8_t *Code, size_t Size,
                              const std::vector<LintReloc> &Relocs) {
  struct Branch {
    size_t FieldOff;
    size_t Target;
    bool IsCall;
  };
  std::vector<size_t> Starts;
  std::vector<size_t> Lens;
  std::vector<Branch> Branches;

  size_t Pos = 0;
  while (Pos < Size) {
    Decoded D = decodeOne(Code, Size, Pos);
    if (D.Error)
      return "encoding lint: offset " + std::to_string(Pos) + ": " +
             D.Error + " (byte 0x" + std::to_string(Code[Pos]) + ")";
    Starts.push_back(Pos);
    Lens.push_back(D.Len);
    if (D.Rel32Off) {
      int32_t Rel = 0;
      for (int I = 0; I != 4; ++I)
        Rel |= static_cast<int32_t>(
            static_cast<uint32_t>(Code[D.Rel32Off + I]) << (I * 8));
      size_t End = Pos + D.Len;
      Branches.push_back(
          {D.Rel32Off, End + static_cast<size_t>(static_cast<int64_t>(Rel)),
           D.IsCall});
    }
    Pos += D.Len;
  }
  // The loop ends exactly at Size: decodeOne never returns a length that
  // overruns the buffer, and a short final instruction fails decode above.

  auto isStart = [&](size_t Off) {
    return std::binary_search(Starts.begin(), Starts.end(), Off);
  };
  auto coveredByReloc = [&](size_t Off, size_t Width) {
    for (const LintReloc &R : Relocs)
      if (R.Offset <= Off && Off + Width <= R.Offset + R.Width)
        return true;
    return false;
  };

  // Branch targets must land on instruction starts. A rel32 field under a
  // relocation is patched at link time and points outside the function.
  for (const Branch &Br : Branches) {
    if (coveredByReloc(Br.FieldOff, 4))
      continue;
    if (Br.Target >= Size || !isStart(Br.Target))
      return "encoding lint: " +
             std::string(Br.IsCall ? "call" : "branch") + " at offset " +
             std::to_string(Br.FieldOff) + " targets offset " +
             std::to_string(Br.Target) +
             ", which is not an instruction start";
  }

  // Relocations must patch bytes strictly inside one instruction (an
  // immediate/displacement field), never an opcode byte.
  for (const LintReloc &R : Relocs) {
    auto It = std::upper_bound(Starts.begin(), Starts.end(), R.Offset);
    if (It == Starts.begin())
      return "encoding lint: relocation at offset " +
             std::to_string(R.Offset) + " precedes all instructions";
    size_t Idx = static_cast<size_t>(It - Starts.begin()) - 1;
    size_t Start = Starts[Idx], End = Start + Lens[Idx];
    if (R.Offset == Start || R.Offset + R.Width > End)
      return "encoding lint: relocation [" + std::to_string(R.Offset) +
             "," + std::to_string(R.Offset + R.Width) +
             ") does not lie inside one instruction's payload (instruction"
             " at [" +
             std::to_string(Start) + "," + std::to_string(End) + "))";
  }
  return "";
}
