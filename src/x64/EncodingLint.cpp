//===- x64/EncodingLint.cpp - Machine-code encoding lint --------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The encoding lint is now a thin shim over the semantic decoder
/// (x64/Decode.{h,cpp}): decodeFunction performs the full structural
/// analysis — every byte must decode as an encoding the Assembler can
/// produce, intra-function branch targets must land on instruction starts,
/// and relocations must patch immediate payloads strictly inside one
/// instruction — and the lint reports its diagnostic verbatim.
///
//===----------------------------------------------------------------------===//

#include "x64/EncodingLint.h"
#include "x64/Decode.h"

using namespace qcf;
using namespace qcf::x64;

std::string x64::lintFunction(const uint8_t *Code, size_t Size,
                              const std::vector<LintReloc> &Relocs) {
  std::vector<DecodeReloc> DR;
  DR.reserve(Relocs.size());
  for (const LintReloc &R : Relocs)
    DR.push_back({R.Offset, R.Width});
  return decodeFunction(Code, Size, DR).Error;
}
