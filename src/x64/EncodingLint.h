//===- x64/EncodingLint.h - Machine-code encoding lint ----------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A length-decoder over emitted x86-64 machine code, covering exactly the
/// instruction surface qcf's Assembler can produce. The expensive-checks
/// build runs it over every emitted function to catch encoder bugs at the
/// byte level:
///   - every byte must belong to a decodable instruction (no garbage or
///     truncated encodings, and the decode must cover the buffer exactly);
///   - intra-function rel32 branch targets (jmp/jcc, and calls without a
///     relocation) must land on an instruction start, not mid-instruction;
///   - relocation ranges must lie strictly inside one instruction's
///     immediate/displacement bytes (never at an opcode byte, never
///     straddling two instructions).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_X64_ENCODINGLINT_H
#define QCF_X64_ENCODINGLINT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qcf::x64 {

/// A patched byte range inside the linted code: Offset is relative to the
/// function start; Width is the patch size (4 for rel32 call relocations,
/// 8 for absolute-address immediates).
struct LintReloc {
  uint64_t Offset;
  uint32_t Width;
};

/// Lints \p Size bytes of machine code. Returns an empty string when the
/// bytes decode cleanly and all checks pass, else a diagnostic with the
/// failing offset.
std::string lintFunction(const uint8_t *Code, size_t Size,
                         const std::vector<LintReloc> &Relocs = {});

} // namespace qcf::x64

#endif // QCF_X64_ENCODINGLINT_H
