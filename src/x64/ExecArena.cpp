//===- x64/ExecArena.cpp - Dual-view executable code arena ----------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "x64/ExecArena.h"
#include <atomic>
#include <mutex>
#include <sys/mman.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/syscall.h>
#ifndef MFD_CLOEXEC
#define MFD_CLOEXEC 1u
#endif
#endif

using namespace qcf;
using namespace qcf::x64;

namespace {

/// Chunk granularity. Warm-loaded modules are a few KiB each, so one
/// chunk covers hundreds of installs; a process that loads more code
/// simply chains another chunk.
constexpr size_t ChunkBytes = 4u << 20;

int createMemfd(size_t Bytes) {
#if defined(__linux__) && defined(SYS_memfd_create)
  int Fd = static_cast<int>(
      ::syscall(SYS_memfd_create, "qcf-code-arena", MFD_CLOEXEC));
  if (Fd < 0)
    return -1;
  if (::ftruncate(Fd, static_cast<off_t>(Bytes)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
#else
  (void)Bytes;
  return -1;
#endif
}

struct Chunk {
  uint8_t *Rw = nullptr;
  uint8_t *Rx = nullptr;
  size_t Used = 0;
  Chunk *Prev = nullptr;
};

} // namespace

struct ExecArena::Impl {
  std::mutex Mutex;
  Chunk *Current = nullptr; ///< Chunks chain via Prev; none is ever freed.
  bool Disabled = false;    ///< memfd unavailable: report null blocks.
  std::atomic<uint64_t> Bytes{0};

  /// Creates and links a fresh chunk; false leaves the arena disabled.
  bool grow() {
    int Fd = createMemfd(ChunkBytes);
    if (Fd < 0)
      return false;
    void *Rw =
        ::mmap(nullptr, ChunkBytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
    void *Rx =
        ::mmap(nullptr, ChunkBytes, PROT_READ | PROT_EXEC, MAP_SHARED, Fd, 0);
    ::close(Fd); // Both mappings keep the inode alive.
    if (Rw == MAP_FAILED || Rx == MAP_FAILED) {
      if (Rw != MAP_FAILED)
        ::munmap(Rw, ChunkBytes);
      if (Rx != MAP_FAILED)
        ::munmap(Rx, ChunkBytes);
      return false;
    }
    auto *C = new Chunk;
    C->Rw = static_cast<uint8_t *>(Rw);
    C->Rx = static_cast<uint8_t *>(Rx);
    C->Prev = Current;
    Current = C;
    return true;
  }
};

ExecArena::Impl *ExecArena::impl() {
  static Impl I;
  return &I;
}

ExecArena &ExecArena::global() {
  static ExecArena A;
  return A;
}

ExecArena::Block ExecArena::allocate(size_t Bytes) {
  if (Bytes == 0 || Bytes > ChunkBytes)
    return {};
  Impl &I = *impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (I.Disabled)
    return {};
  size_t Aligned = (Bytes + 15) & ~size_t(15);
  if (!I.Current || I.Current->Used + Aligned > ChunkBytes) {
    if (!I.grow()) {
      I.Disabled = true;
      return {};
    }
  }
  Chunk *C = I.Current;
  Block B;
  B.Rw = C->Rw + C->Used;
  B.Rx = C->Rx + C->Used;
  B.Size = Bytes;
  C->Used += Aligned;
  I.Bytes.fetch_add(Bytes, std::memory_order_relaxed);
  return B;
}

uint64_t ExecArena::bytesAllocated() const {
  return impl()->Bytes.load(std::memory_order_relaxed);
}
