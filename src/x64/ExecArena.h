//===- x64/ExecArena.h - Dual-view executable code arena --------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-lifetime bump arena for installing cache-loaded machine code
/// without per-module mmap/mprotect traffic. Each chunk is an anonymous
/// memfd mapped twice: a read/write view that code is copied and patched
/// through, and a read/execute view that entry points live in. Both views
/// alias the same physical pages, so bytes written through the RW view are
/// immediately executable through the RX view — the classic dual-mapping
/// JIT technique (used by e.g. V8 and SpiderMonkey) that preserves "no
/// page is ever writable *and* executable" while eliminating the
/// mprotect-per-install of the flip-in-place scheme.
///
/// This matters because installing a warm module from the disk code cache
/// must beat recompiling it by a wide margin, and on virtualized hosts a
/// single mprotect (TLB shootdown) can cost as much as the entire parse +
/// checksum + relocation re-patch. Compile-path modules keep using
/// ExecMemory: a compile is hundreds of microseconds anyway, and its
/// private mapping is reclaimed on module destruction.
///
/// The arena is append-only: blocks are never returned. Only disk-cache
/// installs allocate here, and a block is exactly the module's code bytes,
/// so growth is bounded by the total code ever warm-loaded by the process.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_X64_EXECARENA_H
#define QCF_X64_EXECARENA_H

#include <cstddef>
#include <cstdint>

namespace qcf::x64 {

/// The process-wide dual-view code arena.
class ExecArena {
public:
  /// One allocated block: write code through Rw, run it through Rx.
  /// `Rx + off` and `Rw + off` address the same byte for any off < Size.
  struct Block {
    uint8_t *Rw = nullptr;
    const uint8_t *Rx = nullptr;
    size_t Size = 0;
    explicit operator bool() const { return Rw != nullptr; }
  };

  /// The singleton arena (thread-safe).
  static ExecArena &global();

  /// Bump-allocates \p Bytes (16-byte aligned). Returns a null block when
  /// the dual-view mechanism is unavailable (memfd_create denied by
  /// kernel or seccomp) — callers fall back to a private ExecMemory copy.
  Block allocate(size_t Bytes);

  /// Total bytes handed out, for observability.
  uint64_t bytesAllocated() const;

private:
  ExecArena() = default;
  struct Impl;
  static Impl *impl();
};

} // namespace qcf::x64

#endif // QCF_X64_EXECARENA_H
