//===- x64/ExecMemory.cpp - Executable JIT memory --------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "x64/ExecMemory.h"
#include "support/Compiler.h"
#include <sys/mman.h>

using namespace qcf;
using namespace qcf::x64;

ExecMemory::~ExecMemory() { release(); }

ExecMemory &ExecMemory::operator=(ExecMemory &&Other) noexcept {
  if (this != &Other) {
    release();
    Base = Other.Base;
    Size = Other.Size;
    Executable = Other.Executable;
    Other.Base = nullptr;
    Other.Size = 0;
    Other.Executable = false;
  }
  return *this;
}

void ExecMemory::allocate(size_t Bytes) {
  release();
  size_t PageSize = 4096;
  Size = (Bytes + PageSize - 1) & ~(PageSize - 1);
  if (Size == 0)
    Size = PageSize;
  // MAP_POPULATE prefaults the region in one syscall; the caller is about
  // to memcpy code over every page anyway, and taking a soft fault per
  // 4 KiB dominates the install time of cache-loaded modules otherwise.
  void *Mem = ::mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_POPULATE, -1, 0);
  if (Mem == MAP_FAILED)
    reportFatalError("mmap for JIT code failed");
  Base = static_cast<uint8_t *>(Mem);
  Executable = false;
}

void ExecMemory::makeExecutable() {
  if (::mprotect(Base, Size, PROT_READ | PROT_EXEC) != 0)
    reportFatalError("mprotect(PROT_EXEC) failed");
  Executable = true;
}

void ExecMemory::release() {
  if (Base)
    ::munmap(Base, Size);
  Base = nullptr;
  Size = 0;
  Executable = false;
}
