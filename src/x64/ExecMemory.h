//===- x64/ExecMemory.h - Executable JIT memory -----------------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// W^X executable memory for JIT-compiled code: pages are mapped
/// read/write, filled, then flipped to read/execute.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_X64_EXECMEMORY_H
#define QCF_X64_EXECMEMORY_H

#include <cstddef>
#include <cstdint>

namespace qcf::x64 {

/// One mapped region of executable memory. Code is copied in while the
/// region is writable; makeExecutable() seals it.
class ExecMemory {
public:
  ExecMemory() = default;
  explicit ExecMemory(size_t Bytes) { allocate(Bytes); }
  ~ExecMemory();

  ExecMemory(const ExecMemory &) = delete;
  ExecMemory &operator=(const ExecMemory &) = delete;
  ExecMemory(ExecMemory &&Other) noexcept { *this = static_cast<ExecMemory &&>(Other); }
  ExecMemory &operator=(ExecMemory &&Other) noexcept;

  /// Maps at least \p Bytes of RW memory.
  void allocate(size_t Bytes);

  /// Flips the mapping to RX. Writing afterwards is a fault.
  void makeExecutable();

  uint8_t *base() const { return Base; }
  size_t size() const { return Size; }
  bool isExecutable() const { return Executable; }

private:
  void release();

  uint8_t *Base = nullptr;
  size_t Size = 0;
  bool Executable = false;
};

} // namespace qcf::x64

#endif // QCF_X64_EXECMEMORY_H
