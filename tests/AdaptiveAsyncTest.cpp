//===- tests/AdaptiveAsyncTest.cpp - Adaptive promotion differential -------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests of the adaptive back-end's tier swap: a RandomQir
/// corpus runs through AdaptiveBackend while the optimizing recompile
/// races execution — every call before, during, and after the swap must
/// match the interpreter exactly (results and traps). Includes a
/// deterministic single-thread configuration (no service) so any failure
/// reproduces from its seed alone, and lifecycle tests for modules
/// destroyed with a promotion still in flight.
///
//===----------------------------------------------------------------------===//

#include "backend/CompileService.h"
#include "backend/Registry.h"
#include "interp/Interp.h"
#include "tests/DiffHarness.h"
#include "tests/RandomQir.h"
#include <atomic>
#include <gtest/gtest.h>
#include <thread>

using namespace qcf;
using namespace qcf::test;
using namespace qcf::backend;

namespace {

constexpr unsigned FnsPerModule = 2;

/// Builds a verified random module with FnsPerModule functions.
void buildRandomModule(qir::Module &M, uint64_t Seed) {
  Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
  RandomFnBuilder Gen(M, R);
  for (unsigned I = 0; I != FnsPerModule; ++I)
    Gen.build("rand" + std::to_string(I));
  std::optional<std::string> Err = qir::verify(M);
  ASSERT_EQ(Err, std::nullopt) << "seed " << Seed << ": " << Err.value_or("");
}

/// Fixed input set per seed: deterministic, includes the edge pairs.
std::vector<std::vector<uint64_t>> makeInputs(uint64_t Seed) {
  Rng R(Seed ^ 0xabcdef);
  std::vector<std::vector<uint64_t>> Inputs = {{0, 0}, {~0ull, 1}};
  for (int I = 0; I != 6; ++I)
    Inputs.push_back({R.next(), R.next()});
  return Inputs;
}

} // namespace

/// Deterministic single-thread fallback: promotion happens synchronously
/// inside noteExecution (no service), and every call across the tier
/// boundary is compared to the interpreter. Failures reproduce from the
/// printed seed with no scheduling dependence at all.
TEST(AdaptiveAsync, SingleThreadDifferentialAcrossPromotion) {
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    qir::Module M;
    buildRandomModule(M, Seed);

    interp::InterpBackend Baseline;
    auto Ref = Baseline.compile(M);

    AdaptiveBackend BE;
    BE.PromoteAfterRuns = 2;
    BE.PromoteSizeThreshold = 1; // Every random function qualifies.
    auto Compiled = BE.compile(M);
    auto *AM = static_cast<AdaptiveModule *>(Compiled.get());

    std::vector<std::vector<uint64_t>> Inputs = makeInputs(Seed);
    bool SawSwap = false;
    for (int Run = 0; Run != 4; ++Run) {
      for (unsigned F = 0; F != FnsPerModule; ++F) {
        std::string Name = "rand" + std::to_string(F);
        void *RefEntry = Ref->entry(Name);
        void *GotEntry = AM->entry(Name);
        ASSERT_NE(GotEntry, nullptr) << Name;
        for (const std::vector<uint64_t> &Args : Inputs) {
          CaseOutcome Expected = invokeEntry(RefEntry, Args);
          CaseOutcome Actual = invokeEntry(GotEntry, Args);
          ASSERT_EQ(Expected.Trapped, Actual.Trapped)
              << Name << " run " << Run << " args=(" << Args[0] << ","
              << Args[1] << ")";
          if (!Expected.Trapped)
            ASSERT_EQ(Expected.Lo, Actual.Lo)
                << Name << " run " << Run << " args=(" << Args[0] << ","
                << Args[1] << ")";
        }
        SawSwap |= AM->noteExecution(Name);
      }
    }
    EXPECT_TRUE(SawSwap) << "promotion never fired";
    EXPECT_TRUE(AM->isPromoted());
  }
}

/// The race the tentpole exists for: worker threads execute the module
/// and trigger promotions while a service thread swaps the tier under
/// them. Every single call must still match the interpreter.
TEST(AdaptiveAsync, RacingPromotionMatchesInterpreter) {
  constexpr uint64_t Seeds[] = {3, 17, 42};
  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    qir::Module M;
    buildRandomModule(M, Seed);

    interp::InterpBackend Baseline;
    auto Ref = Baseline.compile(M);

    // Precompute expected outcomes (the interpreter module is not
    // hammered concurrently; entry() lookups race otherwise).
    std::vector<std::vector<uint64_t>> Inputs = makeInputs(Seed);
    std::vector<std::vector<CaseOutcome>> Expected(FnsPerModule);
    std::vector<std::string> FnNames(FnsPerModule);
    std::vector<bool> TwoLane(FnsPerModule);
    for (unsigned F = 0; F != FnsPerModule; ++F) {
      FnNames[F] = "rand" + std::to_string(F);
      TwoLane[F] = qir::isTwoLane(M.functionByName(FnNames[F])->returnType());
      void *E = Ref->entry(FnNames[F]);
      ASSERT_NE(E, nullptr);
      for (const auto &Args : Inputs)
        Expected[F].push_back(invokeEntry(E, Args));
    }
    // One-lane results leave rdx undefined: compare Hi only for I128.
    auto Matches = [&](const CaseOutcome &Got, const CaseOutcome &Exp,
                       unsigned F) {
      if (Got.Trapped != Exp.Trapped)
        return false;
      return Got.Trapped ||
             (Got.Lo == Exp.Lo && (!TwoLane[F] || Got.Hi == Exp.Hi));
    };

    CompileService Svc(2);
    AdaptiveBackend BE(&Svc);
    BE.PromoteAfterRuns = 2;
    BE.PromoteSizeThreshold = 1;
    auto Compiled = BE.compile(M);
    auto *AM = static_cast<AdaptiveModule *>(Compiled.get());

    constexpr int NumThreads = 4, Rounds = 30;
    std::vector<std::thread> Threads;
    std::atomic<uint64_t> Mismatches{0};
    for (int T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&] {
        for (int R = 0; R != Rounds; ++R) {
          for (unsigned F = 0; F != FnsPerModule; ++F) {
            void *E = AM->entry(FnNames[F]);
            for (size_t I = 0; I != Inputs.size(); ++I) {
              CaseOutcome Got = invokeEntry(E, Inputs[I]);
              if (!Matches(Got, Expected[F][I], F))
                ++Mismatches;
            }
            AM->noteExecution(FnNames[F]);
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();

    EXPECT_EQ(Mismatches.load(), 0u)
        << "execution diverged from the interpreter across the tier swap";

    // Settle any still-in-flight promotion and re-verify on the final
    // tier: the swap must also be correct at rest.
    AM->waitForPromotion();
    EXPECT_TRUE(AM->isPromoted()) << "promotion never landed";
    for (unsigned F = 0; F != FnsPerModule; ++F) {
      void *E = AM->entry(FnNames[F]);
      for (size_t I = 0; I != Inputs.size(); ++I)
        EXPECT_TRUE(Matches(invokeEntry(E, Inputs[I]), Expected[F][I], F))
            << FnNames[F] << " input " << I << " after promotion";
    }
  }
}

/// Callers must never stall on MLVM: noteExecution returns immediately
/// when the heuristic fires with a service attached, and the fast tier
/// keeps serving until the ticket completes.
TEST(AdaptiveAsync, NoteExecutionDoesNotBlockOnService) {
  qir::Module M;
  buildRandomModule(M, 7);

  CompileService Svc(1);
  AdaptiveBackend BE(&Svc);
  BE.PromoteAfterRuns = 1;
  BE.PromoteSizeThreshold = 1;
  auto Compiled = BE.compile(M);
  auto *AM = static_cast<AdaptiveModule *>(Compiled.get());

  EXPECT_FALSE(AM->isPromoted());
  AM->noteExecution("rand0");
  // The recompile may still be queued or running; either way the module
  // keeps answering from the fast tier.
  EXPECT_NE(AM->entry("rand0"), nullptr);
  AM->waitForPromotion();
  EXPECT_TRUE(AM->isPromoted());
  EXPECT_FALSE(AM->promotionPending());
  EXPECT_NE(AM->entry("rand0"), nullptr);

  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsCompleted, 1u);
  ASSERT_EQ(S.PerBackend.count("MLVM-opt"), 1u);
}

/// The executor-facing promotion hook (ExecOptions::AdaptiveExec):
/// requestPromotion submits immediately — no run-count warmup — hands
/// out the in-flight ticket, stays idempotent while pending, and
/// installIfReady syncs the module once the ticket lands.
TEST(AdaptiveAsync, RequestPromotionExposesTicket) {
  qir::Module M;
  buildRandomModule(M, 21);

  CompileService Svc(1);
  AdaptiveBackend BE; // Deliberately no service on the back-end:
  BE.PromoteAfterRuns = 1000; // the hook must bypass the heuristic too.
  BE.PromoteSizeThreshold = 1000;
  auto Compiled = BE.compile(M);
  auto *AM = static_cast<AdaptiveModule *>(Compiled.get());

  EXPECT_FALSE(AM->promotionTicket().valid()) << "no promotion requested yet";
  CompileTicket T = AM->requestPromotion(&Svc);
  ASSERT_TRUE(T.valid());
  EXPECT_TRUE(AM->promotionPending());
  // Idempotent: a second request observes the same in-flight job.
  CompileTicket Again = AM->requestPromotion(&Svc);
  ASSERT_TRUE(Again.valid());

  // The executor's side of the protocol: wait on the ticket, then sync
  // the module.
  ASSERT_NE(T.wait(), nullptr);
  EXPECT_TRUE(AM->installIfReady() || AM->isPromoted());
  EXPECT_TRUE(AM->isPromoted());
  EXPECT_FALSE(AM->promotionPending());
  EXPECT_NE(AM->entry("rand0"), nullptr);

  // Promoted modules have nothing in flight to expose.
  EXPECT_FALSE(AM->requestPromotion(&Svc).valid());
  EXPECT_FALSE(AM->promotionTicket().valid());
}

/// Destroying a module with a promotion still pending must cancel or wait
/// the job out — the worker may not touch the dead module afterwards.
TEST(AdaptiveAsync, DestroyWithPendingPromotionIsClean) {
  CompileService Svc(1);
  for (int I = 0; I != 10; ++I) {
    qir::Module M;
    buildRandomModule(M, 100 + I);
    AdaptiveBackend BE(&Svc);
    BE.PromoteAfterRuns = 1;
    BE.PromoteSizeThreshold = 1;
    {
      auto Compiled = BE.compile(M);
      auto *AM = static_cast<AdaptiveModule *>(Compiled.get());
      AM->noteExecution("rand0");
      // Drop the module immediately: ~AdaptiveModule cancels the queued
      // job or waits for the running one.
    }
  }
  Svc.drain();
  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsQueued, 10u);
  EXPECT_EQ(S.JobsCompleted + S.JobsCancelled, 10u);
}

/// Promotion through a shut-down service must degrade, not deadlock: the
/// degraded submit compiles synchronously and the swap still happens.
TEST(AdaptiveAsync, PromotionAfterServiceShutdownDegrades) {
  qir::Module M;
  buildRandomModule(M, 55);

  CompileService Svc(1);
  Svc.shutdown();
  AdaptiveBackend BE(&Svc);
  BE.PromoteAfterRuns = 1;
  BE.PromoteSizeThreshold = 1;
  auto Compiled = BE.compile(M);
  auto *AM = static_cast<AdaptiveModule *>(Compiled.get());

  EXPECT_TRUE(AM->noteExecution("rand0"))
      << "degraded service completes synchronously; swap installs here";
  EXPECT_TRUE(AM->isPromoted());
  EXPECT_NE(AM->entry("rand0"), nullptr);
}
