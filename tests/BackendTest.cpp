//===- tests/BackendTest.cpp - Registry and adaptive back-end tests --------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "backend/Registry.h"
#include "tests/Corpus.h"
#include "tests/DiffHarness.h"
#include <atomic>
#include <gtest/gtest.h>
#include <thread>

using namespace qcf;
using namespace qcf::test;

TEST(Registry, CreatesEveryTableIIIBackend) {
  for (const std::string &Name : backend::allBackendNames()) {
    auto B = backend::createBackend(Name);
    ASSERT_NE(B, nullptr) << Name;
    EXPECT_EQ(B->name(), Name);
  }
  EXPECT_EQ(backend::createBackend("nonsense"), nullptr);
}

TEST(Adaptive, StartsFastThenPromotes) {
  // A function large enough to pass the size heuristic.
  qir::Module M;
  qir::Function *F = M.createFunction("hot", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId Acc = F->paramValue(0);
  for (int I = 0; I != 60; ++I)
    Acc = B.xor_(B.add(Acc, B.constInt(Type::I64, I)), Acc);
  B.ret(Acc);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  backend::AdaptiveBackend BE;
  BE.PromoteAfterRuns = 3;
  BE.PromoteSizeThreshold = 48;
  auto Compiled = BE.compile(M);
  auto *AM = static_cast<backend::AdaptiveModule *>(Compiled.get());

  auto Run = [&] {
    auto *Fn = Compiled->entryAs<uint64_t (*)(uint64_t)>("hot");
    return Fn(7);
  };
  uint64_t Before = Run();
  EXPECT_FALSE(AM->isPromoted());
  AM->noteExecution("hot");
  AM->noteExecution("hot");
  EXPECT_FALSE(AM->isPromoted());
  bool Promoted = AM->noteExecution("hot");
  EXPECT_TRUE(Promoted);
  EXPECT_TRUE(AM->isPromoted());
  // Identical results from the optimized tier.
  EXPECT_EQ(Run(), Before);
}

TEST(Adaptive, SmallFunctionsStayOnFastTier) {
  qir::Module M;
  qir::Function *F = M.createFunction("tiny", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), B.constInt(Type::I64, 1)));
  backend::AdaptiveBackend BE;
  auto Compiled = BE.compile(M);
  auto *AM = static_cast<backend::AdaptiveModule *>(Compiled.get());
  for (int I = 0; I != 10; ++I)
    AM->noteExecution("tiny");
  EXPECT_FALSE(AM->isPromoted());
}

TEST(AllBackends, CorpusDifferentialMatrix) {
  // Every registered back-end must agree with the interpreter.
  for (const std::string &Name : backend::allBackendNames()) {
    if (Name == "Interpreter")
      continue;
    SCOPED_TRACE(Name);
    auto B = backend::createBackend(Name);
    runCorpusDifferential(*B);
  }
}

TEST(Backend, ConcurrentCompilationIsThreadSafe) {
  // The paper compiles queries on 32 cores; back-ends must be usable
  // from concurrent threads (MLVM's TargetMachine is cached per thread
  // for exactly this, §V-A2). Compile and run the corpus from several
  // threads at once on every in-process back-end.
  for (const char *Name :
       {"Interpreter", "DirectEmit", "Craneline", "MLVM-cheap",
        "MLVM-opt"}) {
    std::atomic<int> Bad{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T != 4; ++T)
      Threads.emplace_back([&] {
        test::Corpus C = test::buildCorpus();
        auto BE = backend::createBackend(Name);
        for (int R = 0; R != 3; ++R) {
          auto Compiled = BE->compile(*C.M);
          auto *Add =
              Compiled->entryAs<uint64_t (*)(uint64_t, uint64_t)>(
                  "arith64");
          if (!Add)
            ++Bad;
        }
      });
    for (std::thread &T : Threads)
      T.join();
    EXPECT_EQ(Bad.load(), 0) << Name;
  }
}

TEST(Backend, LongBranchesEncodeCorrectly) {
  // A diamond whose sides are long straight-line blocks (~3 KiB of code
  // each) forces rel32 branch fixups and, in Craneline, exercises the
  // 15-byte veneer over-estimation (§VI-B). Every back-end must agree
  // with the interpreter.
  qir::Module M;
  qir::Function *F =
      M.createFunction("longbr", {qir::Type::I64, qir::Type::I64},
                       qir::Type::I64);
  qir::Builder B(F);
  qir::BlockId T = B.createBlock(), E = B.createBlock(),
               Join = B.createBlock();
  qir::ValueId Cond =
      B.icmp(qir::CmpPred::ULt, F->paramValue(0), F->paramValue(1));
  B.condBr(Cond, T, E);

  auto EmitChain = [&](qir::ValueId Seed, uint64_t Salt) {
    qir::ValueId V = Seed;
    for (int I = 0; I != 400; ++I) {
      V = B.add(V, B.constInt(qir::Type::I64,
                              static_cast<int64_t>(Salt + I)));
      V = B.xor_(V, B.lshr(V, B.constInt(qir::Type::I64, 7)));
    }
    return V;
  };
  B.startBlock(T);
  qir::ValueId VT = EmitChain(F->paramValue(0), 0x1111);
  B.br(Join);
  B.startBlock(E);
  qir::ValueId VE = EmitChain(F->paramValue(1), 0x2222);
  B.br(Join);
  B.startBlock(Join);
  qir::ValueId Phi = B.phi(qir::Type::I64, 2);
  B.setPhiIncoming(Phi, 0, T, VT);
  B.setPhiIncoming(Phi, 1, E, VE);
  B.ret(Phi);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  interp::InterpBackend IB;
  auto Ref = IB.compile(M);
  auto *RefFn = Ref->entryAs<uint64_t (*)(uint64_t, uint64_t)>("longbr");
  for (const char *Name :
       {"DirectEmit", "Craneline", "MLVM-cheap", "MLVM-opt"}) {
    auto BE = backend::createBackend(Name);
    auto Compiled = BE->compile(M);
    auto *Fn =
        Compiled->entryAs<uint64_t (*)(uint64_t, uint64_t)>("longbr");
    for (auto [X, Y] : {std::pair<uint64_t, uint64_t>{1, 2},
                        {2, 1},
                        {0xffffffffffffull, 3}})
      EXPECT_EQ(Fn(X, Y), RefFn(X, Y)) << Name;
  }
}

TEST(Backend, SremSdivIntMinEdgeCases) {
  // srem x, -1 == 0 for every x (including INT_MIN, where a naive idiv
  // faults); sdiv INT_MIN, -1 traps as overflow. Check every width on
  // every back-end — regression for a SIGFPE where the 32-bit INT_MIN
  // guard compared at the wrong width.
  struct Case {
    qir::Type Ty;
    uint64_t Min;
  };
  const Case Cases[] = {{qir::Type::I8, 0x80},
                        {qir::Type::I16, 0x8000},
                        {qir::Type::I32, 0x80000000ull},
                        {qir::Type::I64, 0x8000000000000000ull}};
  for (const Case &C : Cases) {
    qir::Module M;
    for (const char *Name : {"rem", "div"}) {
      qir::Function *F = M.createFunction(
          Name, {qir::Type::I64, qir::Type::I64}, qir::Type::I64);
      qir::Builder B(F);
      qir::ValueId A = C.Ty == qir::Type::I64
                           ? F->paramValue(0)
                           : B.trunc(C.Ty, F->paramValue(0));
      qir::ValueId D = C.Ty == qir::Type::I64
                           ? F->paramValue(1)
                           : B.trunc(C.Ty, F->paramValue(1));
      qir::ValueId R = Name[0] == 'r' ? B.srem(A, D) : B.sdiv(A, D);
      B.ret(C.Ty == qir::Type::I64 ? R : B.zext(qir::Type::I64, R));
    }
    ASSERT_EQ(qir::verify(M), std::nullopt);

    for (const char *Name :
         {"Interpreter", "DirectEmit", "Craneline", "MLVM-cheap",
          "MLVM-opt"}) {
      auto BE = backend::createBackend(Name);
      auto Compiled = BE->compile(M);
      // srem INT_MIN % -1 == 0, no trap.
      CaseOutcome Rem =
          invokeEntry(Compiled->entry("rem"), {C.Min, ~0ull});
      EXPECT_FALSE(Rem.Trapped)
          << Name << " srem " << qir::typeName(C.Ty);
      EXPECT_EQ(Rem.Lo, 0u) << Name << " srem " << qir::typeName(C.Ty);
      // srem x % -1 == 0 for a normal x too.
      CaseOutcome Rem2 =
          invokeEntry(Compiled->entry("rem"), {12345, ~0ull});
      EXPECT_FALSE(Rem2.Trapped) << Name;
      EXPECT_EQ(Rem2.Lo, 0u) << Name;
      // sdiv INT_MIN / -1 traps as overflow.
      CaseOutcome Div =
          invokeEntry(Compiled->entry("div"), {C.Min, ~0ull});
      EXPECT_TRUE(Div.Trapped)
          << Name << " sdiv " << qir::typeName(C.Ty);
      // Plain division still works.
      CaseOutcome Div2 =
          invokeEntry(Compiled->entry("div"), {100, ~0ull & 0xffffffffull});
      (void)Div2; // Value checked implicitly by other differential tests.
    }
  }
}
