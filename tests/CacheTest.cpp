//===- tests/CacheTest.cpp - Compiled-query cache tests -------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the content-addressed compiled-module cache: hash stability
/// and sensitivity, hit/miss accounting, LRU eviction, handle lifetime,
/// and plan-level reuse from the query compiler.
///
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/Registry.h"
#include "db/Codegen.h"
#include "db/Datagen.h"
#include "db/Queries.h"
#include "qir/Builder.h"
#include <gtest/gtest.h>
#include <thread>

using namespace qcf;
using namespace qcf::qir;
using namespace qcf::backend;

namespace {

/// Builds `fn(a) = a * K + 7`.
void buildAffine(qir::Module &M, int64_t K, const char *Name = "f") {
  qir::Function *F = M.createFunction(Name, {Type::I64}, Type::I64);
  Builder B(F);
  ValueId P = B.mul(F->paramValue(0), B.constInt(Type::I64, K));
  B.ret(B.add(P, B.constInt(Type::I64, 7)));
}

} // namespace

TEST(Cache, HashStableAcrossRebuilds) {
  qir::Module M1, M2;
  buildAffine(M1, 3);
  buildAffine(M2, 3);
  EXPECT_EQ(hashModule(M1), hashModule(M2));
}

TEST(Cache, HashSensitiveToSemantics) {
  qir::Module M1, M2, M3, M4;
  buildAffine(M1, 3);
  buildAffine(M2, 4);            // Different immediate.
  buildAffine(M3, 3, "g");       // Different name.
  buildAffine(M4, 3);
  M4.declareRuntime("rt_extra", Type::I64, {Type::I64}); // Extra symbol.
  EXPECT_NE(hashModule(M1), hashModule(M2));
  EXPECT_NE(hashModule(M1), hashModule(M3));
  EXPECT_NE(hashModule(M1), hashModule(M4));
}

TEST(Cache, HashIgnoresScratch) {
  qir::Module M1, M2;
  buildAffine(M1, 3);
  buildAffine(M2, 3);
  // Back-ends are allowed to leave arbitrary Scratch residue behind.
  for (uint32_t I = 0; I != M2.functions()[0]->numInsts(); ++I)
    M2.functions()[0]->inst(I).Scratch = 0xdeadbeef;
  EXPECT_EQ(hashModule(M1), hashModule(M2));
}

TEST(Cache, HitReturnsWorkingCodeAndCounts) {
  CachingBackend BE(createBackend("DirectEmit"));
  qir::Module M;
  buildAffine(M, 5);

  auto C1 = BE.compile(M);
  auto C2 = BE.compile(M);
  EXPECT_EQ(BE.stats().Misses, 1u);
  EXPECT_EQ(BE.stats().Hits, 1u);
  EXPECT_EQ(BE.size(), 1u);

  auto *F1 = C1->entryAs<int64_t (*)(int64_t)>("f");
  auto *F2 = C2->entryAs<int64_t (*)(int64_t)>("f");
  EXPECT_EQ(F1, F2) << "hit must reuse the same machine code";
  EXPECT_EQ(F1(10), 57);
  C1.reset(); // The other handle must keep the code alive.
  EXPECT_EQ(F2(1), 12);
}

TEST(Cache, LruEviction) {
  CachingBackend BE(createBackend("DirectEmit"), /*Capacity=*/2);
  qir::Module A, B, C;
  buildAffine(A, 1);
  buildAffine(B, 2);
  buildAffine(C, 3);

  BE.compile(A);
  BE.compile(B);
  BE.compile(A); // Refresh A; B becomes least-recent.
  BE.compile(C); // Evicts B.
  EXPECT_EQ(BE.stats().Evictions, 1u);
  EXPECT_EQ(BE.size(), 2u);

  BE.compile(A); // Still cached.
  EXPECT_EQ(BE.stats().Hits, 2u);
  BE.compile(B); // Was evicted: a miss again.
  EXPECT_EQ(BE.stats().Misses, 4u);
}

TEST(Cache, HandleOutlivesBackend) {
  auto BE = std::make_unique<CachingBackend>(createBackend("Craneline"));
  qir::Module M;
  buildAffine(M, 9);
  auto C = BE->compile(M);
  auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
  BE.reset(); // Drop the cache; the shared handle must stay valid.
  EXPECT_EQ(F(2), 25);
}

TEST(Cache, ConcurrentCompilesAreSafe) {
  CachingBackend BE(createBackend("DirectEmit"));
  qir::Module M;
  buildAffine(M, 11);

  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != 20; ++I) {
        auto C = BE.compile(M);
        auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
        if (F(I) != int64_t(I) * 11 + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Bad.load(), 0);
  CacheStats S = BE.stats();
  EXPECT_EQ(S.Hits + S.Misses, 160u);
  EXPECT_GE(S.Hits, 150u) << "nearly all calls after the first must hit";
  EXPECT_EQ(BE.size(), 1u);
}

namespace {

/// Builds `fn() = K` — a module whose only varying hashed word is the
/// constant-pool immediate, so collisions can be engineered directly.
void buildRetConst(qir::Module &M, uint64_t K) {
  qir::Function *F = M.createFunction("f", {}, Type::I64);
  Builder B(F);
  B.ret(B.constInt(Type::I64, static_cast<int64_t>(K)));
}

} // namespace

// The legacy 64-bit hash folds each word with CRC32C, which is GF(2)-linear
// with a *seed-independent* kernel: D below satisfies crc32c(0, D) == 0, so
// for every seed S and word V, crc(S, V) == crc(S, V ^ D). Two modules whose
// only differing hashed word differs by D therefore collide under
// hashModule() — and would have collided under a second CRC lane with any
// other seed too. The 128-bit fingerprint's second lane uses multiplicative
// mixing precisely so this class of collision cannot survive it.
TEST(Cache, LegacyHashCollisionIsResolvedByFingerprint) {
  constexpr uint64_t D = 0x105ec76f1ull; // CRC32C kernel element.
  constexpr uint64_t K = 0x1234567890abcdefull;
  qir::Module M1, M2;
  buildRetConst(M1, K);
  buildRetConst(M2, K ^ D);

  // The engineered collision on the legacy key. If this ever stops holding,
  // the hash changed and a new kernel pair is needed for the test to bite.
  ASSERT_EQ(hashModule(M1), hashModule(M2));
  EXPECT_NE(fingerprintModule(M1), fingerprintModule(M2));

  // End to end: the cache must treat them as distinct modules. Under the
  // old 64-bit key the second compile would *hit* and return code computing
  // the wrong constant.
  CachingBackend BE(createBackend("DirectEmit"));
  auto C1 = BE.compile(M1);
  auto C2 = BE.compile(M2);
  EXPECT_EQ(BE.stats().Misses, 2u);
  EXPECT_EQ(BE.stats().Hits, 0u);
  EXPECT_EQ(BE.size(), 2u);
  EXPECT_EQ(C1->entryAs<uint64_t (*)()>("f")(), K);
  EXPECT_EQ(C2->entryAs<uint64_t (*)()>("f")(), K ^ D);
}

TEST(Cache, FingerprintLoMatchesLegacyHash) {
  qir::Module M;
  buildAffine(M, 21);
  EXPECT_EQ(fingerprintModule(M).Lo, hashModule(M));
}

TEST(Cache, RegeneratedQueryPlansHit) {
  // Compiling the same query over the same catalog twice produces
  // modules with hard-wired identical column pointers — they must hash
  // equal. A different (larger) catalog relocates columns: must differ.
  db::Catalog Cat;
  db::generateTpchLike(Cat, 0.05);
  auto FindH6 = [](std::vector<db::Query> &Qs) -> db::Query & {
    for (db::Query &Q : Qs)
      if (Q.Name == "h6")
        return Q;
    QCF_UNREACHABLE("h6 missing");
  };
  std::vector<db::Query> Qs1 = db::tpchQueries();
  std::vector<db::Query> Qs2 = db::tpchQueries();
  db::CompiledPlan P1 = db::compileQuery(FindH6(Qs1), Cat);
  db::CompiledPlan P2 = db::compileQuery(FindH6(Qs2), Cat);
  EXPECT_EQ(hashModule(*P1.Module), hashModule(*P2.Module));

  db::Catalog Cat2;
  db::generateTpchLike(Cat2, 0.1);
  std::vector<db::Query> Qs3 = db::tpchQueries();
  db::CompiledPlan P3 = db::compileQuery(FindH6(Qs3), Cat2);
  EXPECT_NE(hashModule(*P1.Module), hashModule(*P3.Module));

  // End-to-end through the cache: second compile is a hit.
  CachingBackend BE(createBackend("MLVM-opt"));
  BE.compile(*P1.Module);
  BE.compile(*P2.Module);
  EXPECT_EQ(BE.stats().Hits, 1u);
  EXPECT_EQ(BE.stats().Misses, 1u);
}
