//===- tests/CompileServiceTest.cpp - Async compile service tests ----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency tests for backend::CompileService and the caching layer's
/// in-flight deduplication: ticket lifecycle (poll/wait/cancel), priority
/// and stats accounting, exactly-one-compile-per-key under thread storms,
/// LRU capacity under contention, and clean shutdown with jobs queued.
///
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/CompileService.h"
#include "backend/Registry.h"
#include "qir/Builder.h"
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <gtest/gtest.h>
#include <thread>

using namespace qcf;
using namespace qcf::qir;
using namespace qcf::backend;

namespace {

/// Builds `fn(a) = a * K + 7`.
void buildAffine(qir::Module &M, int64_t K, const char *Name = "f") {
  qir::Function *F = M.createFunction(Name, {Type::I64}, Type::I64);
  Builder B(F);
  ValueId P = B.mul(F->paramValue(0), B.constInt(Type::I64, K));
  B.ret(B.add(P, B.constInt(Type::I64, 7)));
}

/// Wraps a back-end, counting compiles and optionally delaying each one —
/// the instrument for proving exactly-once compilation and for holding a
/// worker busy while tests race against it.
class CountingBackend : public Backend {
public:
  explicit CountingBackend(std::unique_ptr<Backend> Inner,
                           std::chrono::milliseconds Delay = {})
      : Inner(std::move(Inner)), Delay(Delay) {}

  std::string name() const override { return Inner->name(); }

  using Backend::compile;

  std::unique_ptr<CompiledModule> compile(const qir::Module &M,
                                          const CompileOptions &Opts) override {
    ++Compiles;
    if (Delay.count())
      std::this_thread::sleep_for(Delay);
    return Inner->compile(M, Opts);
  }

  std::atomic<uint64_t> Compiles{0};

private:
  std::unique_ptr<Backend> Inner;
  std::chrono::milliseconds Delay;
};

/// A back-end whose compile blocks until release() — deterministic way to
/// keep a single-worker service busy.
class GateBackend : public Backend {
public:
  explicit GateBackend(std::unique_ptr<Backend> Inner)
      : Inner(std::move(Inner)) {}

  std::string name() const override { return "gated"; }

  using Backend::compile;

  std::unique_ptr<CompiledModule> compile(const qir::Module &M,
                                          const CompileOptions &Opts) override {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Started = true;
    }
    Cv.notify_all();
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Released; });
    return Inner->compile(M, Opts);
  }

  void waitStarted() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Started; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Released = true;
    }
    Cv.notify_all();
  }

private:
  std::unique_ptr<Backend> Inner;
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Started = false, Released = false;
};

} // namespace

TEST(CompileService, SubmitWaitReturnsWorkingCode) {
  CompileService Svc(2);
  qir::Module M;
  buildAffine(M, 5);
  auto BE = createBackend("DirectEmit");

  CompileTicket T = Svc.submit(M, *BE).Ticket;
  ASSERT_TRUE(T.valid());
  std::shared_ptr<CompiledModule> C = T.wait();
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(T.done());
  auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
  EXPECT_EQ(F(10), 57);
  // wait() after completion is idempotent.
  EXPECT_EQ(T.wait(), C);
  EXPECT_EQ(T.poll(), C);
}

TEST(CompileService, StatsAccounting) {
  CompileService Svc(2);
  auto Direct = createBackend("DirectEmit");
  auto Crane = createBackend("Craneline");

  std::vector<qir::Module> Mods(6);
  std::vector<CompileTicket> Tickets;
  for (int I = 0; I != 6; ++I) {
    buildAffine(Mods[I], I + 1);
    Tickets.push_back(Svc.submit(Mods[I], I % 2 ? *Crane : *Direct).Ticket);
  }
  for (CompileTicket &T : Tickets)
    EXPECT_NE(T.wait(), nullptr);

  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsQueued, 6u);
  EXPECT_EQ(S.JobsCompleted, 6u);
  EXPECT_EQ(S.JobsCancelled, 0u);
  EXPECT_GE(S.QueueDepthHighWater, 1u);
  ASSERT_EQ(S.PerBackend.count("DirectEmit"), 1u);
  ASSERT_EQ(S.PerBackend.count("Craneline"), 1u);
  const CompileLatency &L = S.PerBackend.at("DirectEmit");
  EXPECT_EQ(L.Count, 3u);
  EXPECT_LE(L.MinSec, L.meanSec());
  EXPECT_LE(L.meanSec(), L.MaxSec);
  EXPECT_GT(L.MaxSec, 0.0);
}

TEST(CompileService, CancelBeforeStart) {
  GateBackend Gate(createBackend("DirectEmit"));
  CountingBackend Counter(createBackend("DirectEmit"));
  CompileService Svc(1);

  qir::Module M1, M2;
  buildAffine(M1, 1);
  buildAffine(M2, 2);
  CompileTicket Running = Svc.submit(M1, Gate).Ticket;
  Gate.waitStarted(); // The single worker is now inside compile().
  CompileTicket Queued = Svc.submit(M2, Counter).Ticket;

  EXPECT_TRUE(Queued.cancel()) << "job had not started; cancel must win";
  EXPECT_EQ(Queued.wait(), nullptr);
  EXPECT_TRUE(Queued.done());

  Gate.release();
  EXPECT_NE(Running.wait(), nullptr);
  EXPECT_FALSE(Running.cancel()) << "completed job cannot be cancelled";
  Svc.drain();
  EXPECT_EQ(Counter.Compiles.load(), 0u) << "cancelled job must never compile";
  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsCancelled, 1u);
  EXPECT_EQ(S.JobsCompleted, 1u);
}

TEST(CompileService, PriorityOrdersQueue) {
  GateBackend Gate(createBackend("DirectEmit"));
  CompileService Svc(1);

  qir::Module M0, MLow, MHigh;
  buildAffine(M0, 1);
  buildAffine(MLow, 2);
  buildAffine(MHigh, 3);

  // Worker busy; queue a Background job, then a Foreground one. A second
  // gate on the low-priority job would deadlock the 1-worker pool, so
  // order is observed through completion timestamps instead: with one
  // worker, the Foreground job must finish before the Background one.
  std::atomic<int> Order{0};
  struct StampBackend : Backend {
    StampBackend(std::atomic<int> &Order, int &Stamp)
        : Inner(createBackend("DirectEmit")), Order(Order), Stamp(Stamp) {}
    std::string name() const override { return "stamp"; }
    using Backend::compile;
    std::unique_ptr<CompiledModule> compile(const qir::Module &M,
                                            const CompileOptions &Opts) override {
      Stamp = ++Order;
      return Inner->compile(M, Opts);
    }
    std::unique_ptr<Backend> Inner;
    std::atomic<int> &Order;
    int &Stamp;
  };
  int LowStamp = 0, HighStamp = 0;
  StampBackend LowBE(Order, LowStamp), HighBE(Order, HighStamp);

  CompileTicket Running = Svc.submit(M0, Gate).Ticket;
  Gate.waitStarted();
  CompileTicket Low = Svc.submit(MLow, LowBE, CompilePriority::Background).Ticket;
  CompileTicket High = Svc.submit(MHigh, HighBE, CompilePriority::Foreground).Ticket;
  Gate.release();

  EXPECT_NE(Low.wait(), nullptr);
  EXPECT_NE(High.wait(), nullptr);
  EXPECT_NE(Running.wait(), nullptr);
  EXPECT_LT(HighStamp, LowStamp)
      << "Foreground must dequeue before Background";
}

TEST(CompileService, ShutdownCancelsQueuedJobs) {
  GateBackend Gate(createBackend("DirectEmit"));
  CountingBackend Counter(createBackend("DirectEmit"));
  auto Svc = std::make_unique<CompileService>(1);

  qir::Module M1;
  buildAffine(M1, 1);
  std::vector<qir::Module> Mods(4);
  CompileTicket Running = Svc->submit(M1, Gate).Ticket;
  Gate.waitStarted();
  std::vector<CompileTicket> Queued;
  for (int I = 0; I != 4; ++I) {
    buildAffine(Mods[I], I + 2);
    Queued.push_back(Svc->submit(Mods[I], Counter).Ticket);
  }
  EXPECT_EQ(Svc->queueDepth(), 4u);

  // Shut down with the worker busy and four jobs queued. Release the gate
  // from another thread so shutdown() can join.
  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Gate.release();
  });
  Svc->shutdown();
  Releaser.join();

  // The running job completed; every queued job was cancelled and its
  // waiters see null rather than hanging.
  EXPECT_NE(Running.wait(), nullptr);
  for (CompileTicket &T : Queued) {
    EXPECT_TRUE(T.done());
    EXPECT_EQ(T.wait(), nullptr);
  }
  EXPECT_EQ(Counter.Compiles.load(), 0u);
  CompileServiceStats S = Svc->stats();
  EXPECT_EQ(S.JobsCompleted, 1u);
  EXPECT_EQ(S.JobsCancelled, 4u);
  EXPECT_EQ(S.QueueDepthHighWater, 4u);

  // Degraded mode after shutdown: submit still works, synchronously.
  qir::Module MPost;
  buildAffine(MPost, 9);
  CompileTicket Post = Svc->submit(MPost, Counter).Ticket;
  EXPECT_TRUE(Post.done());
  auto C = Post.poll();
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->entryAs<int64_t (*)(int64_t)>("f")(1), 16);
  Svc.reset(); // Second shutdown via destructor must be a no-op.
}

TEST(CompileService, BoundedQueueRejectsWhenFull) {
  GateBackend Gate(createBackend("DirectEmit"));
  CompileService Svc(1, /*QueueCapacity=*/2);

  qir::Module M1;
  buildAffine(M1, 1);
  std::vector<qir::Module> Mods(3);
  for (int I = 0; I != 3; ++I)
    buildAffine(Mods[I], I + 2);

  CompileTicket Running = Svc.submit(M1, Gate).Ticket;
  Gate.waitStarted();
  auto BE = createBackend("DirectEmit");
  CompileTicket A = Svc.submit(Mods[0], *BE).Ticket;
  CompileTicket B = Svc.submit(Mods[1], *BE).Ticket;

  // Queue is full and nothing is sheddable (both queued jobs are
  // Foreground): the next submit is rejected, never blocks.
  SubmitOutcome R = Svc.submit(Mods[2], *BE);
  EXPECT_EQ(R.Status, SubmitStatus::Rejected);
  EXPECT_EQ(R.Reason, RejectReason::QueueFull);
  EXPECT_FALSE(R.accepted());
  EXPECT_FALSE(R.Ticket.valid());
  EXPECT_GT(R.RetryAfterNs, 0u) << "rejection must carry a backpressure hint";

  // Background rejections are accounted separately.
  SubmitOutcome RBg = Svc.submit(Mods[2], *BE, CompilePriority::Background);
  EXPECT_EQ(RBg.Status, SubmitStatus::Rejected);

  Gate.release();
  EXPECT_NE(A.wait(), nullptr);
  EXPECT_NE(B.wait(), nullptr);
  EXPECT_NE(Running.wait(), nullptr);
  Svc.drain();

  // Space freed: the retried submit is accepted and completes.
  SubmitOutcome Retry = Svc.submit(Mods[2], *BE);
  EXPECT_EQ(Retry.Status, SubmitStatus::Accepted);
  EXPECT_NE(Retry.Ticket.wait(), nullptr);

  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.QueueCapacity, 2u);
  EXPECT_EQ(S.RejectedForeground, 1u);
  EXPECT_EQ(S.RejectedBackground, 1u);
  EXPECT_EQ(S.JobsQueued, 4u) << "rejected submissions are not queued";
}

TEST(CompileService, ForegroundShedsNewestBackground) {
  GateBackend Gate(createBackend("DirectEmit"));
  CountingBackend Counter(createBackend("DirectEmit"));
  CompileService Svc(1, /*QueueCapacity=*/2);

  qir::Module M0, MOld, MNew, MHigh;
  buildAffine(M0, 1);
  buildAffine(MOld, 2);
  buildAffine(MNew, 3);
  buildAffine(MHigh, 4);

  CompileTicket Running = Svc.submit(M0, Gate).Ticket;
  Gate.waitStarted();
  CompileTicket Old =
      Svc.submit(MOld, Counter, CompilePriority::Background).Ticket;
  CompileTicket New =
      Svc.submit(MNew, Counter, CompilePriority::Background).Ticket;

  // Full queue, but a Foreground submit may evict speculative work: the
  // *newest* Background job is shed (LIFO keeps the oldest speculation,
  // which has waited longest and is closest to running).
  SubmitOutcome High = Svc.submit(MHigh, Counter);
  EXPECT_EQ(High.Status, SubmitStatus::Accepted);
  EXPECT_TRUE(New.done()) << "shed victim's ticket must be terminal";
  EXPECT_EQ(New.wait(), nullptr) << "shed victim reports cancelled";
  EXPECT_FALSE(Old.done()) << "older Background job must survive";

  Gate.release();
  EXPECT_NE(Running.wait(), nullptr);
  EXPECT_NE(High.Ticket.wait(), nullptr);
  EXPECT_NE(Old.wait(), nullptr);
  Svc.drain();

  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.Shed, 1u);
  EXPECT_EQ(S.RejectedForeground, 0u);
  EXPECT_EQ(S.JobsCancelled, 1u) << "shed counts as a cancellation";
}

TEST(CompileService, TenantShareCapsInFlightJobs) {
  GateBackend Gate(createBackend("DirectEmit"));
  CountingBackend Counter(createBackend("DirectEmit"));
  CompileService Svc(1);
  Svc.setKeyQueueShare("tenant-a", 2);

  qir::Module M0;
  buildAffine(M0, 1);
  std::vector<qir::Module> Mods(3);
  for (int I = 0; I != 3; ++I)
    buildAffine(Mods[I], I + 2);

  CompileOptions OptsA;
  OptsA.FairnessKey = "tenant-a";
  CompileOptions OptsB;
  OptsB.FairnessKey = "tenant-b";

  CompileTicket Running = Svc.submit(M0, Gate).Ticket;
  Gate.waitStarted();

  SubmitOutcome A1 =
      Svc.submit(Mods[0], Counter, CompilePriority::Foreground, OptsA);
  SubmitOutcome A2 =
      Svc.submit(Mods[1], Counter, CompilePriority::Foreground, OptsA);
  EXPECT_TRUE(A1.accepted());
  EXPECT_TRUE(A2.accepted());
  EXPECT_EQ(Svc.keyInFlight("tenant-a"), 2u);

  // Third in-flight job for tenant-a exceeds its share: typed rejection.
  SubmitOutcome A3 =
      Svc.submit(Mods[2], Counter, CompilePriority::Foreground, OptsA);
  EXPECT_EQ(A3.Status, SubmitStatus::Rejected);
  EXPECT_EQ(A3.Reason, RejectReason::TenantShare);
  EXPECT_GT(A3.RetryAfterNs, 0u);

  // Other tenants and keyless submissions are unaffected.
  SubmitOutcome B1 =
      Svc.submit(Mods[2], Counter, CompilePriority::Foreground, OptsB);
  EXPECT_TRUE(B1.accepted());
  SubmitOutcome Keyless = Svc.submit(Mods[2], Counter);
  EXPECT_TRUE(Keyless.accepted());

  Gate.release();
  EXPECT_NE(Running.wait(), nullptr);
  Svc.drain();
  EXPECT_EQ(Svc.keyInFlight("tenant-a"), 0u)
      << "in-flight accounting must drain to zero";

  // With its jobs drained, tenant-a can submit again.
  SubmitOutcome A4 =
      Svc.submit(Mods[2], Counter, CompilePriority::Foreground, OptsA);
  EXPECT_TRUE(A4.accepted());
  EXPECT_NE(A4.Ticket.wait(), nullptr);
  EXPECT_EQ(Svc.stats().RejectedTenant, 1u);
}

TEST(CompileService, QueueMetricsVisibleInRegistry) {
  obs::MetricsRegistry Reg;
  GateBackend Gate(createBackend("DirectEmit"));
  CompileService Svc(1, /*QueueCapacity=*/1, &Reg);
  const std::string P = Svc.metricsPrefix();

  qir::Module M0, M1, M2;
  buildAffine(M0, 1);
  buildAffine(M1, 2);
  buildAffine(M2, 3);
  auto BE = createBackend("DirectEmit");

  CompileTicket Running = Svc.submit(M0, Gate).Ticket;
  Gate.waitStarted();
  CompileTicket Queued = Svc.submit(M1, *BE).Ticket;
  SubmitOutcome Rejected = Svc.submit(M2, *BE);
  EXPECT_EQ(Rejected.Status, SubmitStatus::Rejected);

  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.gauge(P + "queue.capacity"), 1);
  EXPECT_EQ(Snap.gauge(P + "queue.depth"), 1);
  EXPECT_EQ(Snap.counter(P + "queue.rejected.foreground"), 1u);
  EXPECT_EQ(Snap.counter(P + "queue.rejected.background"), 0u);
  EXPECT_EQ(Snap.counter(P + "queue.rejected.tenant"), 0u);
  EXPECT_EQ(Snap.counter(P + "queue.shed"), 0u);

  Gate.release();
  EXPECT_NE(Running.wait(), nullptr);
  EXPECT_NE(Queued.wait(), nullptr);
  Svc.drain();
  EXPECT_EQ(Reg.snapshot().gauge(P + "queue.depth"), 0);
}

TEST(CompileService, CancelTokenAbandonsQueuedJob) {
  // Satellite 2 regression: a queued job whose CompileOptions::Cancel
  // token fires (deadline or session close) must be abandoned by the
  // worker *before* compiling — cancel-before-run — so an evicted
  // session never burns a compile slot.
  GateBackend Gate(createBackend("DirectEmit"));
  CountingBackend Counter(createBackend("DirectEmit"));
  CompileService Svc(1);

  qir::Module M0, M1;
  buildAffine(M0, 1);
  buildAffine(M1, 2);

  qcf::CancelToken Ctl;
  CompileOptions Opts;
  Opts.Cancel = &Ctl;

  CompileTicket Running = Svc.submit(M0, Gate).Ticket;
  Gate.waitStarted();
  CompileTicket Doomed =
      Svc.submit(M1, Counter, CompilePriority::Foreground, Opts).Ticket;
  Ctl.cancel(); // Fires while the job is still queued.
  Gate.release();

  EXPECT_EQ(Doomed.wait(), nullptr) << "cancelled token -> null result";
  EXPECT_NE(Running.wait(), nullptr);
  Svc.drain();
  EXPECT_EQ(Counter.Compiles.load(), 0u)
      << "worker must skip a job whose token fired";
  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsCancelled, 1u);
  EXPECT_EQ(S.JobsCompleted, 1u);
}

TEST(CacheDedup, EightThreadsOneCompile) {
  // The acceptance bar: 8 threads x 100 lookups of one key -> exactly one
  // inner-backend compile. The delay widens the in-flight window so the
  // dedup path (not just post-insert hits) is exercised.
  auto Counting = std::make_unique<CountingBackend>(
      createBackend("DirectEmit"), std::chrono::milliseconds(30));
  CountingBackend *Counter = Counting.get();
  CachingBackend BE(std::move(Counting));

  qir::Module M;
  buildAffine(M, 11);
  constexpr int NumThreads = 8, Lookups = 100;
  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != Lookups; ++I) {
        auto C = BE.compile(M);
        auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
        if (F(I) != int64_t(I) * 11 + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Counter->Compiles.load(), 1u)
      << "in-flight dedup must collapse concurrent misses to one compile";
  CacheStats S = BE.stats();
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(NumThreads) * Lookups);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_GE(S.InFlightWaits, 1u) << "the 30ms compile must catch waiters";
  EXPECT_EQ(BE.size(), 1u);
}

TEST(CacheDedup, ManyKeysManyThreadsCompileOncePerKey) {
  auto Counting = std::make_unique<CountingBackend>(
      createBackend("DirectEmit"), std::chrono::milliseconds(2));
  CountingBackend *Counter = Counting.get();
  CachingBackend BE(std::move(Counting));

  constexpr int NumModules = 12, NumThreads = 6, Rounds = 25;
  std::vector<qir::Module> Mods(NumModules);
  for (int I = 0; I != NumModules; ++I)
    buildAffine(Mods[I], I + 1);

  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R != Rounds; ++R) {
        int I = (T * 7 + R * 5) % NumModules; // Deterministic scatter.
        auto C = BE.compile(Mods[I]);
        auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
        if (F(R) != int64_t(R) * (I + 1) + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Counter->Compiles.load(), uint64_t(NumModules));
  CacheStats S = BE.stats();
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(NumThreads) * Rounds);
  EXPECT_EQ(S.Misses, uint64_t(NumModules));
  EXPECT_EQ(BE.size(), size_t(NumModules));
}

TEST(CacheDedup, LruCapacityRespectedUnderContention) {
  constexpr size_t Capacity = 3;
  CachingBackend BE(createBackend("DirectEmit"), Capacity);

  constexpr int NumModules = 9, NumThreads = 4, Rounds = 40;
  std::vector<qir::Module> Mods(NumModules);
  for (int I = 0; I != NumModules; ++I)
    buildAffine(Mods[I], I + 1);

  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R != Rounds; ++R) {
        int I = (T + R) % NumModules;
        auto C = BE.compile(Mods[I]);
        auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
        if (F(R) != int64_t(R) * (I + 1) + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_LE(BE.size(), Capacity);
  CacheStats S = BE.stats();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(NumThreads) * Rounds);
  // Every miss either ends cached or was evicted; sizes must reconcile.
  EXPECT_EQ(S.Misses - S.Evictions, BE.size());
}

TEST(CacheDedup, ServiceBackedMissesUseWorkers) {
  CompileService Svc(2);
  auto Counting =
      std::make_unique<CountingBackend>(createBackend("DirectEmit"),
                                        std::chrono::milliseconds(10));
  CountingBackend *Counter = Counting.get();
  CachingBackend BE(std::move(Counting), /*Capacity=*/0, &Svc);

  qir::Module M;
  buildAffine(M, 3);
  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != 10; ++I) {
        auto C = BE.compile(M);
        if (C->entryAs<int64_t (*)(int64_t)>("f")(I) != int64_t(I) * 3 + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Counter->Compiles.load(), 1u);
  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsCompleted, 1u) << "dedup happens before the service";
  ASSERT_EQ(S.PerBackend.count("DirectEmit"), 1u);
  EXPECT_GE(S.PerBackend.at("DirectEmit").MinSec, 0.01 * 0.5);
}

TEST(CacheDedup, ShutdownServiceFallsBackInline) {
  // A cache whose service is shut down mid-life keeps working: misses
  // compile inline (degraded submit), results stay correct and cached.
  auto Svc = std::make_unique<CompileService>(1);
  CachingBackend BE(createBackend("DirectEmit"), 0, Svc.get());

  qir::Module M1, M2;
  buildAffine(M1, 2);
  buildAffine(M2, 4);
  auto C1 = BE.compile(M1);
  EXPECT_EQ(C1->entryAs<int64_t (*)(int64_t)>("f")(5), 17);

  Svc->shutdown();
  auto C2 = BE.compile(M2); // Degraded service: sync compile.
  EXPECT_EQ(C2->entryAs<int64_t (*)(int64_t)>("f")(5), 27);
  Svc.reset();
  BE.setService(nullptr);
  auto C3 = BE.compile(M2); // Hit; no service involved.
  EXPECT_EQ(C3->entryAs<int64_t (*)(int64_t)>("f")(0), 7);
  EXPECT_EQ(BE.stats().Hits, 1u);
}
