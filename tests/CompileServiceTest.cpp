//===- tests/CompileServiceTest.cpp - Async compile service tests ----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency tests for backend::CompileService and the caching layer's
/// in-flight deduplication: ticket lifecycle (poll/wait/cancel), priority
/// and stats accounting, exactly-one-compile-per-key under thread storms,
/// LRU capacity under contention, and clean shutdown with jobs queued.
///
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/CompileService.h"
#include "backend/Registry.h"
#include "qir/Builder.h"
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <gtest/gtest.h>
#include <thread>

using namespace qcf;
using namespace qcf::qir;
using namespace qcf::backend;

namespace {

/// Builds `fn(a) = a * K + 7`.
void buildAffine(qir::Module &M, int64_t K, const char *Name = "f") {
  qir::Function *F = M.createFunction(Name, {Type::I64}, Type::I64);
  Builder B(F);
  ValueId P = B.mul(F->paramValue(0), B.constInt(Type::I64, K));
  B.ret(B.add(P, B.constInt(Type::I64, 7)));
}

/// Wraps a back-end, counting compiles and optionally delaying each one —
/// the instrument for proving exactly-once compilation and for holding a
/// worker busy while tests race against it.
class CountingBackend : public Backend {
public:
  explicit CountingBackend(std::unique_ptr<Backend> Inner,
                           std::chrono::milliseconds Delay = {})
      : Inner(std::move(Inner)), Delay(Delay) {}

  std::string name() const override { return Inner->name(); }

  using Backend::compile;

  std::unique_ptr<CompiledModule> compile(const qir::Module &M,
                                          const CompileOptions &Opts) override {
    ++Compiles;
    if (Delay.count())
      std::this_thread::sleep_for(Delay);
    return Inner->compile(M, Opts);
  }

  std::atomic<uint64_t> Compiles{0};

private:
  std::unique_ptr<Backend> Inner;
  std::chrono::milliseconds Delay;
};

/// A back-end whose compile blocks until release() — deterministic way to
/// keep a single-worker service busy.
class GateBackend : public Backend {
public:
  explicit GateBackend(std::unique_ptr<Backend> Inner)
      : Inner(std::move(Inner)) {}

  std::string name() const override { return "gated"; }

  using Backend::compile;

  std::unique_ptr<CompiledModule> compile(const qir::Module &M,
                                          const CompileOptions &Opts) override {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Started = true;
    }
    Cv.notify_all();
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Released; });
    return Inner->compile(M, Opts);
  }

  void waitStarted() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Started; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Released = true;
    }
    Cv.notify_all();
  }

private:
  std::unique_ptr<Backend> Inner;
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Started = false, Released = false;
};

} // namespace

TEST(CompileService, SubmitWaitReturnsWorkingCode) {
  CompileService Svc(2);
  qir::Module M;
  buildAffine(M, 5);
  auto BE = createBackend("DirectEmit");

  CompileTicket T = Svc.submit(M, *BE);
  ASSERT_TRUE(T.valid());
  std::shared_ptr<CompiledModule> C = T.wait();
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(T.done());
  auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
  EXPECT_EQ(F(10), 57);
  // wait() after completion is idempotent.
  EXPECT_EQ(T.wait(), C);
  EXPECT_EQ(T.poll(), C);
}

TEST(CompileService, StatsAccounting) {
  CompileService Svc(2);
  auto Direct = createBackend("DirectEmit");
  auto Crane = createBackend("Craneline");

  std::vector<qir::Module> Mods(6);
  std::vector<CompileTicket> Tickets;
  for (int I = 0; I != 6; ++I) {
    buildAffine(Mods[I], I + 1);
    Tickets.push_back(Svc.submit(Mods[I], I % 2 ? *Crane : *Direct));
  }
  for (CompileTicket &T : Tickets)
    EXPECT_NE(T.wait(), nullptr);

  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsQueued, 6u);
  EXPECT_EQ(S.JobsCompleted, 6u);
  EXPECT_EQ(S.JobsCancelled, 0u);
  EXPECT_GE(S.QueueDepthHighWater, 1u);
  ASSERT_EQ(S.PerBackend.count("DirectEmit"), 1u);
  ASSERT_EQ(S.PerBackend.count("Craneline"), 1u);
  const CompileLatency &L = S.PerBackend.at("DirectEmit");
  EXPECT_EQ(L.Count, 3u);
  EXPECT_LE(L.MinSec, L.meanSec());
  EXPECT_LE(L.meanSec(), L.MaxSec);
  EXPECT_GT(L.MaxSec, 0.0);
}

TEST(CompileService, CancelBeforeStart) {
  GateBackend Gate(createBackend("DirectEmit"));
  CountingBackend Counter(createBackend("DirectEmit"));
  CompileService Svc(1);

  qir::Module M1, M2;
  buildAffine(M1, 1);
  buildAffine(M2, 2);
  CompileTicket Running = Svc.submit(M1, Gate);
  Gate.waitStarted(); // The single worker is now inside compile().
  CompileTicket Queued = Svc.submit(M2, Counter);

  EXPECT_TRUE(Queued.cancel()) << "job had not started; cancel must win";
  EXPECT_EQ(Queued.wait(), nullptr);
  EXPECT_TRUE(Queued.done());

  Gate.release();
  EXPECT_NE(Running.wait(), nullptr);
  EXPECT_FALSE(Running.cancel()) << "completed job cannot be cancelled";
  Svc.drain();
  EXPECT_EQ(Counter.Compiles.load(), 0u) << "cancelled job must never compile";
  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsCancelled, 1u);
  EXPECT_EQ(S.JobsCompleted, 1u);
}

TEST(CompileService, PriorityOrdersQueue) {
  GateBackend Gate(createBackend("DirectEmit"));
  CompileService Svc(1);

  qir::Module M0, MLow, MHigh;
  buildAffine(M0, 1);
  buildAffine(MLow, 2);
  buildAffine(MHigh, 3);

  // Worker busy; queue a Background job, then a Foreground one. A second
  // gate on the low-priority job would deadlock the 1-worker pool, so
  // order is observed through completion timestamps instead: with one
  // worker, the Foreground job must finish before the Background one.
  std::atomic<int> Order{0};
  struct StampBackend : Backend {
    StampBackend(std::atomic<int> &Order, int &Stamp)
        : Inner(createBackend("DirectEmit")), Order(Order), Stamp(Stamp) {}
    std::string name() const override { return "stamp"; }
    using Backend::compile;
    std::unique_ptr<CompiledModule> compile(const qir::Module &M,
                                            const CompileOptions &Opts) override {
      Stamp = ++Order;
      return Inner->compile(M, Opts);
    }
    std::unique_ptr<Backend> Inner;
    std::atomic<int> &Order;
    int &Stamp;
  };
  int LowStamp = 0, HighStamp = 0;
  StampBackend LowBE(Order, LowStamp), HighBE(Order, HighStamp);

  CompileTicket Running = Svc.submit(M0, Gate);
  Gate.waitStarted();
  CompileTicket Low = Svc.submit(MLow, LowBE, CompilePriority::Background);
  CompileTicket High = Svc.submit(MHigh, HighBE, CompilePriority::Foreground);
  Gate.release();

  EXPECT_NE(Low.wait(), nullptr);
  EXPECT_NE(High.wait(), nullptr);
  EXPECT_NE(Running.wait(), nullptr);
  EXPECT_LT(HighStamp, LowStamp)
      << "Foreground must dequeue before Background";
}

TEST(CompileService, ShutdownCancelsQueuedJobs) {
  GateBackend Gate(createBackend("DirectEmit"));
  CountingBackend Counter(createBackend("DirectEmit"));
  auto Svc = std::make_unique<CompileService>(1);

  qir::Module M1;
  buildAffine(M1, 1);
  std::vector<qir::Module> Mods(4);
  CompileTicket Running = Svc->submit(M1, Gate);
  Gate.waitStarted();
  std::vector<CompileTicket> Queued;
  for (int I = 0; I != 4; ++I) {
    buildAffine(Mods[I], I + 2);
    Queued.push_back(Svc->submit(Mods[I], Counter));
  }
  EXPECT_EQ(Svc->queueDepth(), 4u);

  // Shut down with the worker busy and four jobs queued. Release the gate
  // from another thread so shutdown() can join.
  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Gate.release();
  });
  Svc->shutdown();
  Releaser.join();

  // The running job completed; every queued job was cancelled and its
  // waiters see null rather than hanging.
  EXPECT_NE(Running.wait(), nullptr);
  for (CompileTicket &T : Queued) {
    EXPECT_TRUE(T.done());
    EXPECT_EQ(T.wait(), nullptr);
  }
  EXPECT_EQ(Counter.Compiles.load(), 0u);
  CompileServiceStats S = Svc->stats();
  EXPECT_EQ(S.JobsCompleted, 1u);
  EXPECT_EQ(S.JobsCancelled, 4u);
  EXPECT_EQ(S.QueueDepthHighWater, 4u);

  // Degraded mode after shutdown: submit still works, synchronously.
  qir::Module MPost;
  buildAffine(MPost, 9);
  CompileTicket Post = Svc->submit(MPost, Counter);
  EXPECT_TRUE(Post.done());
  auto C = Post.poll();
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->entryAs<int64_t (*)(int64_t)>("f")(1), 16);
  Svc.reset(); // Second shutdown via destructor must be a no-op.
}

TEST(CompileService, BoundedQueueAppliesBackpressure) {
  GateBackend Gate(createBackend("DirectEmit"));
  CompileService Svc(1, /*QueueCapacity=*/2);

  qir::Module M1;
  buildAffine(M1, 1);
  std::vector<qir::Module> Mods(3);
  for (int I = 0; I != 3; ++I)
    buildAffine(Mods[I], I + 2);

  CompileTicket Running = Svc.submit(M1, Gate);
  Gate.waitStarted();
  auto BE = createBackend("DirectEmit");
  CompileTicket A = Svc.submit(Mods[0], *BE);
  CompileTicket B = Svc.submit(Mods[1], *BE);

  // Queue is full: the next submit blocks until the gate opens.
  std::atomic<bool> Submitted{false};
  std::thread T([&] {
    CompileTicket C = Svc.submit(Mods[2], *BE);
    Submitted.store(true);
    EXPECT_NE(C.wait(), nullptr);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Submitted.load()) << "submit must block while the queue is full";
  Gate.release();
  T.join();
  EXPECT_TRUE(Submitted.load());
  EXPECT_NE(A.wait(), nullptr);
  EXPECT_NE(B.wait(), nullptr);
  EXPECT_NE(Running.wait(), nullptr);
}

TEST(CacheDedup, EightThreadsOneCompile) {
  // The acceptance bar: 8 threads x 100 lookups of one key -> exactly one
  // inner-backend compile. The delay widens the in-flight window so the
  // dedup path (not just post-insert hits) is exercised.
  auto Counting = std::make_unique<CountingBackend>(
      createBackend("DirectEmit"), std::chrono::milliseconds(30));
  CountingBackend *Counter = Counting.get();
  CachingBackend BE(std::move(Counting));

  qir::Module M;
  buildAffine(M, 11);
  constexpr int NumThreads = 8, Lookups = 100;
  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != Lookups; ++I) {
        auto C = BE.compile(M);
        auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
        if (F(I) != int64_t(I) * 11 + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Counter->Compiles.load(), 1u)
      << "in-flight dedup must collapse concurrent misses to one compile";
  CacheStats S = BE.stats();
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(NumThreads) * Lookups);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_GE(S.InFlightWaits, 1u) << "the 30ms compile must catch waiters";
  EXPECT_EQ(BE.size(), 1u);
}

TEST(CacheDedup, ManyKeysManyThreadsCompileOncePerKey) {
  auto Counting = std::make_unique<CountingBackend>(
      createBackend("DirectEmit"), std::chrono::milliseconds(2));
  CountingBackend *Counter = Counting.get();
  CachingBackend BE(std::move(Counting));

  constexpr int NumModules = 12, NumThreads = 6, Rounds = 25;
  std::vector<qir::Module> Mods(NumModules);
  for (int I = 0; I != NumModules; ++I)
    buildAffine(Mods[I], I + 1);

  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R != Rounds; ++R) {
        int I = (T * 7 + R * 5) % NumModules; // Deterministic scatter.
        auto C = BE.compile(Mods[I]);
        auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
        if (F(R) != int64_t(R) * (I + 1) + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Counter->Compiles.load(), uint64_t(NumModules));
  CacheStats S = BE.stats();
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(NumThreads) * Rounds);
  EXPECT_EQ(S.Misses, uint64_t(NumModules));
  EXPECT_EQ(BE.size(), size_t(NumModules));
}

TEST(CacheDedup, LruCapacityRespectedUnderContention) {
  constexpr size_t Capacity = 3;
  CachingBackend BE(createBackend("DirectEmit"), Capacity);

  constexpr int NumModules = 9, NumThreads = 4, Rounds = 40;
  std::vector<qir::Module> Mods(NumModules);
  for (int I = 0; I != NumModules; ++I)
    buildAffine(Mods[I], I + 1);

  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R != Rounds; ++R) {
        int I = (T + R) % NumModules;
        auto C = BE.compile(Mods[I]);
        auto *F = C->entryAs<int64_t (*)(int64_t)>("f");
        if (F(R) != int64_t(R) * (I + 1) + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_LE(BE.size(), Capacity);
  CacheStats S = BE.stats();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(NumThreads) * Rounds);
  // Every miss either ends cached or was evicted; sizes must reconcile.
  EXPECT_EQ(S.Misses - S.Evictions, BE.size());
}

TEST(CacheDedup, ServiceBackedMissesUseWorkers) {
  CompileService Svc(2);
  auto Counting =
      std::make_unique<CountingBackend>(createBackend("DirectEmit"),
                                        std::chrono::milliseconds(10));
  CountingBackend *Counter = Counting.get();
  CachingBackend BE(std::move(Counting), /*Capacity=*/0, &Svc);

  qir::Module M;
  buildAffine(M, 3);
  std::vector<std::thread> Threads;
  std::atomic<int> Bad{0};
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != 10; ++I) {
        auto C = BE.compile(M);
        if (C->entryAs<int64_t (*)(int64_t)>("f")(I) != int64_t(I) * 3 + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Counter->Compiles.load(), 1u);
  CompileServiceStats S = Svc.stats();
  EXPECT_EQ(S.JobsCompleted, 1u) << "dedup happens before the service";
  ASSERT_EQ(S.PerBackend.count("DirectEmit"), 1u);
  EXPECT_GE(S.PerBackend.at("DirectEmit").MinSec, 0.01 * 0.5);
}

TEST(CacheDedup, ShutdownServiceFallsBackInline) {
  // A cache whose service is shut down mid-life keeps working: misses
  // compile inline (degraded submit), results stay correct and cached.
  auto Svc = std::make_unique<CompileService>(1);
  CachingBackend BE(createBackend("DirectEmit"), 0, Svc.get());

  qir::Module M1, M2;
  buildAffine(M1, 2);
  buildAffine(M2, 4);
  auto C1 = BE.compile(M1);
  EXPECT_EQ(C1->entryAs<int64_t (*)(int64_t)>("f")(5), 17);

  Svc->shutdown();
  auto C2 = BE.compile(M2); // Degraded service: sync compile.
  EXPECT_EQ(C2->entryAs<int64_t (*)(int64_t)>("f")(5), 27);
  Svc.reset();
  BE.setService(nullptr);
  auto C3 = BE.compile(M2); // Hit; no service involved.
  EXPECT_EQ(C3->entryAs<int64_t (*)(int64_t)>("f")(0), 7);
  EXPECT_EQ(BE.stats().Hits, 1u);
}
