//===- tests/Corpus.h - Shared QIR test function corpus ---------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A corpus of QIR functions exercising every opcode and the runtime-call
/// ABI, shared by the per-back-end tests and the cross-back-end
/// differential tests. Each back-end must produce bit-identical results on
/// every corpus case (floats compared exactly: no back-end is allowed to
/// reassociate).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_TESTS_CORPUS_H
#define QCF_TESTS_CORPUS_H

#include "qir/Builder.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include <gtest/gtest.h>
#include <vector>

namespace qcf::test {

using qir::BlockId;
using qir::Builder;
using qir::CmpPred;
using qir::Function;
using qir::Opcode;
using qir::Type;
using qir::ValueId;

/// One invocation of a corpus function: argument lanes (two-lane types
/// contribute two lanes) and whether a trap is the expected outcome.
struct CorpusCase {
  std::string Fn;
  std::vector<uint64_t> ArgLanes;
  bool ExpectTrap = false;
};

struct Corpus {
  std::unique_ptr<qir::Module> M;
  rt::RuntimeSyms Syms;
  std::vector<CorpusCase> Cases;
};

/// Builds the corpus module plus the case list. The returned module is
/// verified.
inline Corpus buildCorpus() {
  Corpus C;
  C.M = std::make_unique<qir::Module>();
  qir::Module &M = *C.M;
  C.Syms = rt::declareRuntime(M);

  auto AddCases = [&](const std::string &Fn,
                      std::initializer_list<std::vector<uint64_t>> ArgSets,
                      bool Trap = false) {
    for (const auto &Args : ArgSets)
      C.Cases.push_back({Fn, Args, Trap});
  };

  // arith64(a, b) = ((a + b) * a - b) ^ (a << (b & 63)) | (a >> 3) etc.
  {
    Function *F = M.createFunction("arith64", {Type::I64, Type::I64},
                                   Type::I64);
    Builder B(F);
    ValueId A = F->paramValue(0), Bv = F->paramValue(1);
    ValueId T1 = B.add(A, Bv);
    ValueId T2 = B.mul(T1, A);
    ValueId T3 = B.sub(T2, Bv);
    ValueId T4 = B.shl(A, Bv);
    ValueId T5 = B.xor_(T3, T4);
    ValueId T6 = B.lshr(A, B.constInt(Type::I64, 3));
    ValueId T7 = B.or_(T5, T6);
    ValueId T8 = B.and_(T7, B.constInt(Type::I64, 0x0f0f0f0f0f0f0f0f));
    ValueId T9 = B.ashr(T8, B.constInt(Type::I64, 2));
    ValueId T10 = B.rotr(T9, B.constInt(Type::I64, 13));
    ValueId T11 = B.sub(B.neg(T10), B.not_(A));
    B.ret(T11);
    AddCases("arith64", {{5, 9},
                         {0xffffffffffffffffull, 1},
                         {0x8000000000000000ull, 63},
                         {12345678901234ull, 77}});
  }

  // arith32: 32-bit wrapping behaviour and signed division.
  {
    Function *F = M.createFunction("arith32", {Type::I32, Type::I32},
                                   Type::I32);
    Builder B(F);
    ValueId A = F->paramValue(0), Bv = F->paramValue(1);
    ValueId Sum = B.add(A, Bv);
    ValueId Prod = B.mul(Sum, A);
    ValueId Q = B.sdiv(Prod, B.constInt(Type::I32, 7));
    ValueId R = B.srem(Q, B.constInt(Type::I32, 1000));
    B.ret(R);
    AddCases("arith32", {{10, 20}, {0x7fffffffull, 1}, {4000000u, 123}});
  }

  // udivmix: unsigned division and comparisons.
  {
    Function *F =
        M.createFunction("udivmix", {Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    ValueId A = F->paramValue(0), Bv = F->paramValue(1);
    ValueId One = B.constInt(Type::I64, 1);
    ValueId Bp = B.or_(Bv, One); // avoid div by zero
    ValueId Q = B.udiv(A, Bp);
    ValueId CmpV = B.icmp(CmpPred::UGt, Q, Bp);
    ValueId Sel = B.select(CmpV, Q, Bp);
    B.ret(Sel);
    AddCases("udivmix",
             {{100, 3}, {0xffffffffffffffffull, 2}, {7, 0}, {0, 5}});
  }

  // traps: overflow-checked arithmetic (some cases trap).
  {
    Function *F =
        M.createFunction("traps", {Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    ValueId A = F->paramValue(0), Bv = F->paramValue(1);
    ValueId S = B.saddTrap(A, Bv);
    ValueId D = B.ssubTrap(S, B.constInt(Type::I64, 1));
    ValueId P = B.smulTrap(D, B.constInt(Type::I64, 3));
    B.ret(P);
    AddCases("traps", {{10, 20}, {1000000, 2000000}});
    AddCases("traps", {{0x7fffffffffffffffull, 1}}, /*Trap=*/true);
    AddCases("traps", {{0x4000000000000000ull, 0x3fffffffffffffffull}},
             /*Trap=*/true);
  }

  // traps32: 32-bit overflow checks.
  {
    Function *F = M.createFunction("traps32", {Type::I32, Type::I32},
                                   Type::I32);
    Builder B(F);
    ValueId P = B.smulTrap(F->paramValue(0), F->paramValue(1));
    B.ret(B.saddTrap(P, F->paramValue(0)));
    AddCases("traps32", {{1000, 2000}, {0xffffffffull, 5}});
    AddCases("traps32", {{0x10000ull, 0x10000ull}}, /*Trap=*/true);
  }

  // hash: the paper's hot hash sequence (crc32 x2 + rotr + long-mul-fold).
  {
    Function *F = M.createFunction("hash", {Type::I64}, Type::I64);
    Builder B(F);
    ValueId V = F->paramValue(0);
    ValueId H1 = B.crc32(B.constInt(Type::I64, 0x2545f4914f6cdd1dull), V);
    ValueId H2 = B.crc32(B.constInt(Type::I64, 0xb9935cc9fab5b271ull), V);
    ValueId Pack = B.or_(B.shl(H1, B.constInt(Type::I64, 32)), H2);
    ValueId Rot = B.rotr(Pack, B.constInt(Type::I64, 32));
    ValueId Fold =
        B.longMulFold(Rot, B.constInt(Type::I64, 0x9e3779b97f4a7c15ull));
    B.ret(Fold);
    AddCases("hash", {{0}, {42}, {0xdeadbeefcafebabeull}});
  }

  // i128ops: 128-bit arithmetic incl. pack/extract and trapping mul.
  {
    Function *F = M.createFunction("i128ops", {Type::I64, Type::I64},
                                   Type::I64);
    Builder B(F);
    ValueId Lo = F->paramValue(0), Hi = F->paramValue(1);
    ValueId X = B.packI128(Lo, Hi);
    ValueId C = B.constI128(makeInt128(0x123456789abcdef0ull, 0x1));
    ValueId Sum = B.add(X, C);
    ValueId Dif = B.sub(Sum, B.constI128(7));
    ValueId Shl = B.shl(Dif, B.constInt(Type::I64, 5));
    ValueId Shr = B.ashr(Shl, B.constInt(Type::I64, 3));
    ValueId Prod = B.smulTrap(Shr, B.constI128(3));
    ValueId CmpV = B.icmp(CmpPred::SLt, Prod, C);
    ValueId LoOut = B.extractLo(Prod);
    ValueId HiOut = B.extractHi(Prod);
    ValueId Mix = B.xor_(LoOut, HiOut);
    ValueId Sel = B.select(CmpV, Mix, LoOut);
    B.ret(Sel);
    AddCases("i128ops", {{1, 0}, {0xffffffffffffffffull, 0}, {5, 2}});
  }

  // floats: double arithmetic and conversions.
  {
    Function *F = M.createFunction("floats", {Type::I64, Type::I64},
                                   Type::I64);
    Builder B(F);
    ValueId A = B.sitofp(F->paramValue(0));
    ValueId Bv = B.sitofp(F->paramValue(1));
    ValueId S = B.fadd(A, Bv);
    ValueId P = B.fmul(S, A);
    ValueId D = B.fdiv(P, B.constF64(3.5));
    ValueId Df = B.fsub(D, B.fneg(Bv));
    ValueId CmpV = B.fcmp(CmpPred::SGt, Df, B.constF64(100.0));
    ValueId AsInt = B.fptosi(Type::I64, Df);
    ValueId Z = B.zext(Type::I64, CmpV);
    B.ret(B.add(AsInt, Z));
    AddCases("floats", {{3, 4}, {1000, 3}, {0, 0},
                        {0xffffffffffffff85ull /* -123 */, 7}});
  }

  // widths: narrow-type load/store/extension behaviour.
  {
    Function *F = M.createFunction("widths", {Type::I64}, Type::I64);
    Builder B(F);
    ValueId Slot = B.stackSlot(16);
    ValueId V = F->paramValue(0);
    ValueId V8 = B.trunc(Type::I8, V);
    ValueId V16 = B.trunc(Type::I16, V);
    ValueId V32 = B.trunc(Type::I32, V);
    B.store(V8, Slot);
    B.store(V16, B.gep(Slot, 2));
    B.store(V32, B.gep(Slot, 4));
    ValueId L8 = B.load(Type::I8, Slot);
    ValueId L16 = B.load(Type::I16, B.gep(Slot, 2));
    ValueId L32 = B.load(Type::I32, B.gep(Slot, 4));
    ValueId S8 = B.sext(Type::I64, L8);
    ValueId Z16 = B.zext(Type::I64, L16);
    ValueId S32 = B.sext(Type::I64, L32);
    ValueId Sum = B.add(S8, Z16);
    B.ret(B.add(Sum, S32));
    AddCases("widths", {{0x00ff00ff00ff00ffull}, {0x8081828384858687ull},
                        {1}, {0}});
  }

  // loopsum: classic loop with phis (sum of i*i for i < n).
  {
    Function *F = M.createFunction("loopsum", {Type::I64}, Type::I64);
    Builder B(F);
    BlockId H = B.createBlock(), Body = B.createBlock(), E = B.createBlock();
    ValueId Zero = B.constInt(Type::I64, 0);
    B.br(H);
    B.startBlock(H);
    ValueId I = B.phi(Type::I64, 2);
    ValueId Acc = B.phi(Type::I64, 2);
    ValueId Cond = B.icmp(CmpPred::SLt, I, F->paramValue(0));
    B.condBr(Cond, Body, E);
    B.startBlock(Body);
    ValueId Sq = B.mul(I, I);
    ValueId AccN = B.add(Acc, Sq);
    ValueId IN = B.add(I, B.constInt(Type::I64, 1));
    B.br(H);
    B.startBlock(E);
    B.ret(Acc);
    B.setPhiIncoming(I, 0, 0, Zero);
    B.setPhiIncoming(I, 1, Body, IN);
    B.setPhiIncoming(Acc, 0, 0, Zero);
    B.setPhiIncoming(Acc, 1, Body, AccN);
    AddCases("loopsum", {{0}, {1}, {10}, {1000}});
  }

  // phiswap: phi cycle requiring parallel-move resolution (a,b = b,a).
  {
    Function *F = M.createFunction("phiswap", {Type::I64}, Type::I64);
    Builder B(F);
    BlockId H = B.createBlock(), Body = B.createBlock(), E = B.createBlock();
    ValueId C1 = B.constInt(Type::I64, 1);
    ValueId C2 = B.constInt(Type::I64, 1000000);
    ValueId Zero = B.constInt(Type::I64, 0);
    B.br(H);
    B.startBlock(H);
    ValueId A = B.phi(Type::I64, 2);
    ValueId Bp = B.phi(Type::I64, 2);
    ValueId I = B.phi(Type::I64, 2);
    ValueId Cond = B.icmp(CmpPred::SLt, I, F->paramValue(0));
    B.condBr(Cond, Body, E);
    B.startBlock(Body);
    ValueId IN = B.add(I, B.constInt(Type::I64, 1));
    B.br(H);
    B.startBlock(E);
    ValueId R = B.sub(B.mul(A, B.constInt(Type::I64, 3)), Bp);
    B.ret(R);
    // Swap a and b every iteration.
    B.setPhiIncoming(A, 0, 0, C1);
    B.setPhiIncoming(A, 1, Body, Bp);
    B.setPhiIncoming(Bp, 0, 0, C2);
    B.setPhiIncoming(Bp, 1, Body, A);
    B.setPhiIncoming(I, 0, 0, Zero);
    B.setPhiIncoming(I, 1, Body, IN);
    AddCases("phiswap", {{0}, {1}, {2}, {7}});
  }

  // nested: two nested loops with a diamond inside.
  {
    Function *F = M.createFunction("nested", {Type::I64, Type::I64},
                                   Type::I64);
    Builder B(F);
    BlockId OH = B.createBlock(), OB = B.createBlock();
    BlockId IH = B.createBlock(), IB = B.createBlock();
    BlockId Odd = B.createBlock(), Even = B.createBlock(),
            Join = B.createBlock();
    BlockId ILatch = B.createBlock(), OLatch = B.createBlock(),
            Exit = B.createBlock();
    ValueId Zero = B.constInt(Type::I64, 0);
    ValueId One = B.constInt(Type::I64, 1);
    ValueId Two = B.constInt(Type::I64, 2);
    B.br(OH);

    B.startBlock(OH); // outer header
    ValueId I = B.phi(Type::I64, 2);
    ValueId Acc = B.phi(Type::I64, 2);
    ValueId OC = B.icmp(CmpPred::SLt, I, F->paramValue(0));
    B.condBr(OC, OB, Exit);

    B.startBlock(OB);
    B.br(IH);

    B.startBlock(IH); // inner header
    ValueId J = B.phi(Type::I64, 2);
    ValueId Acc2 = B.phi(Type::I64, 2);
    ValueId IC = B.icmp(CmpPred::SLt, J, F->paramValue(1));
    B.condBr(IC, IB, OLatch);

    B.startBlock(IB);
    ValueId Par = B.and_(J, One);
    ValueId IsOdd = B.icmp(CmpPred::Eq, Par, One);
    B.condBr(IsOdd, Odd, Even);

    B.startBlock(Odd);
    ValueId VOdd = B.mul(J, Two);
    B.br(Join);

    B.startBlock(Even);
    ValueId VEven = B.add(J, I);
    B.br(Join);

    B.startBlock(Join);
    ValueId V = B.phi(Type::I64, 2);
    B.setPhiIncoming(V, 0, Odd, VOdd);
    B.setPhiIncoming(V, 1, Even, VEven);
    B.br(ILatch);

    B.startBlock(ILatch);
    ValueId Acc2N = B.add(Acc2, V);
    ValueId JN = B.add(J, One);
    B.br(IH);

    B.startBlock(OLatch);
    ValueId IN = B.add(I, One);
    B.br(OH);

    B.startBlock(Exit);
    B.ret(Acc);

    B.setPhiIncoming(I, 0, 0, Zero);
    B.setPhiIncoming(I, 1, OLatch, IN);
    B.setPhiIncoming(Acc, 0, 0, Zero);
    B.setPhiIncoming(Acc, 1, OLatch, Acc2);
    B.setPhiIncoming(J, 0, OB, Zero);
    B.setPhiIncoming(J, 1, ILatch, JN);
    B.setPhiIncoming(Acc2, 0, OB, Acc);
    B.setPhiIncoming(Acc2, 1, ILatch, Acc2N);
    AddCases("nested", {{0, 5}, {3, 4}, {10, 10}});
  }

  // strings: runtime calls with by-value d128 strings.
  {
    Function *F = M.createFunction("strings", {Type::I64, Type::I64,
                                               Type::I64, Type::I64},
                                   Type::I64);
    Builder B(F);
    ValueId S1 = B.packD128(F->paramValue(0), F->paramValue(1));
    ValueId S2 = B.packD128(F->paramValue(2), F->paramValue(3));
    ValueId Eq = B.call(C.Syms.StrEq, {S1, S2});
    ValueId Cmp = B.call(C.Syms.StrCmp, {S1, S2});
    ValueId H = B.call(C.Syms.StrHash, {S1});
    ValueId Pref = B.call(C.Syms.StrPrefix, {S1, S2});
    ValueId T1 = B.add(Eq, Cmp);
    ValueId T2 = B.xor_(H, Pref);
    B.ret(B.add(T1, T2));
    rt::StringVal A1 = rt::StringVal::makeRef("hello", 5);
    rt::StringVal A2 = rt::StringVal::makeRef("help", 4);
    rt::StringVal A3 = rt::StringVal::makeRef("hello", 5);
    AddCases("strings", {{A1.lo(), A1.hi(), A2.lo(), A2.hi()},
                         {A1.lo(), A1.hi(), A3.lo(), A3.hi()},
                         {A2.lo(), A2.hi(), A1.lo(), A1.hi()}});
  }

  // memops: gep with index*scale, atomicadd.
  {
    Function *F = M.createFunction("memops", {Type::Ptr, Type::I64},
                                   Type::I64);
    Builder B(F);
    ValueId P = F->paramValue(0);
    ValueId N = F->paramValue(1);
    BlockId H = B.createBlock(), Body = B.createBlock(), E = B.createBlock();
    ValueId Zero = B.constInt(Type::I64, 0);
    B.br(H);
    B.startBlock(H);
    ValueId I = B.phi(Type::I64, 2);
    ValueId Cond = B.icmp(CmpPred::SLt, I, N);
    B.condBr(Cond, Body, E);
    B.startBlock(Body);
    ValueId Addr = B.gepIndexed(P, I, 8);
    // Initialize deterministically, then exercise the atomic path, so the
    // function is idempotent and safe to re-run across back-ends.
    B.store(B.mul(I, B.constInt(Type::I64, 3)), Addr);
    ValueId Old = B.atomicAdd(Addr, B.add(I, B.constInt(Type::I64, 1)));
    ValueId IN = B.add(I, B.constInt(Type::I64, 1));
    (void)Old;
    B.br(H);
    B.startBlock(E);
    ValueId Last = B.load(
        Type::I64, B.gepIndexed(P, B.sub(N, B.constInt(Type::I64, 1)), 8));
    B.ret(Last);
    B.setPhiIncoming(I, 0, 0, Zero);
    B.setPhiIncoming(I, 1, Body, IN);
    static int64_t Buffer[8];
    AddCases("memops", {{reinterpret_cast<uint64_t>(Buffer), 8}});
  }

  // d128ret: runtime call returning a two-lane value (string concat).
  {
    Function *F = M.createFunction("d128ret",
                                   {Type::Ptr, Type::I64, Type::I64,
                                    Type::I64, Type::I64},
                                   Type::I64);
    Builder B(F);
    ValueId Ar = F->paramValue(0);
    ValueId S1 = B.packD128(F->paramValue(1), F->paramValue(2));
    ValueId S2 = B.packD128(F->paramValue(3), F->paramValue(4));
    ValueId Cat = B.call(C.Syms.StrConcat, {Ar, S1, S2});
    ValueId H = B.call(C.Syms.StrHash, {Cat});
    B.ret(H);
    static Arena CorpusArena;
    rt::StringVal A1 = rt::StringVal::makeRef("query ", 6);
    rt::StringVal A2 = rt::StringVal::makeRef("compilation", 11);
    AddCases("d128ret", {{reinterpret_cast<uint64_t>(&CorpusArena), A1.lo(),
                          A1.hi(), A2.lo(), A2.hi()}});
  }

  // divtrap: division traps.
  {
    Function *F =
        M.createFunction("divtrap", {Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    B.ret(B.sdiv(F->paramValue(0), F->paramValue(1)));
    AddCases("divtrap", {{100, 7}, {0xffffffffffffff9cull /*-100*/, 7}});
    AddCases("divtrap", {{5, 0}}, /*Trap=*/true);
    AddCases("divtrap", {{0x8000000000000000ull, 0xffffffffffffffffull}},
             /*Trap=*/true);
  }

  EXPECT_EQ(qir::verify(M), std::nullopt) << qir::verify(M).value_or("");
  return C;
}

} // namespace qcf::test

#endif // QCF_TESTS_CORPUS_H
