//===- tests/CranelineTest.cpp - Craneline back-end tests ------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "craneline/BTree.h"
#include "craneline/Craneline.h"
#include "support/Rng.h"
#include "tests/Corpus.h"
#include "tests/DiffHarness.h"
#include <gtest/gtest.h>
#include <map>

using namespace qcf;
using namespace qcf::test;
using craneline::CranelineBackend;
using craneline::CranelineOptions;

// --- B-tree ------------------------------------------------------------------

TEST(RangeBTree, InsertAndOverlap) {
  craneline::RangeBTree T;
  T.insert({10, 20});
  T.insert({30, 40});
  EXPECT_TRUE(T.overlaps({15, 16}));
  EXPECT_TRUE(T.overlaps({5, 11}));
  EXPECT_TRUE(T.overlaps({19, 35}));
  EXPECT_FALSE(T.overlaps({20, 30}));
  EXPECT_FALSE(T.overlaps({0, 10}));
  EXPECT_FALSE(T.overlaps({40, 50}));
}

TEST(RangeBTree, ManyRangesSplitNodes) {
  craneline::RangeBTree T;
  // 1000 disjoint ranges in shuffled order force splits.
  std::vector<uint32_t> Starts;
  for (uint32_t I = 0; I != 1000; ++I)
    Starts.push_back(I * 10);
  Rng R(42);
  for (size_t I = Starts.size(); I > 1; --I)
    std::swap(Starts[I - 1], Starts[R.nextBounded(I)]);
  for (uint32_t S : Starts)
    T.insert({S, S + 5});
  EXPECT_EQ(T.size(), 1000u);
  for (uint32_t I = 0; I != 1000; ++I) {
    EXPECT_TRUE(T.overlaps({I * 10 + 2, I * 10 + 3})) << I;
    EXPECT_FALSE(T.overlaps({I * 10 + 5, I * 10 + 10})) << I;
  }
  // Collected ranges come back sorted.
  std::vector<craneline::PosRange> All;
  T.collect(&All);
  ASSERT_EQ(All.size(), 1000u);
  for (size_t I = 1; I != All.size(); ++I)
    EXPECT_LT(All[I - 1].Start, All[I].Start);
}

TEST(RangeBTree, RandomizedAgainstReferenceMap) {
  craneline::RangeBTree T;
  std::map<uint32_t, uint32_t> Ref; // start -> end
  Rng R(7);
  auto RefOverlaps = [&](craneline::PosRange Q) {
    for (auto &[S, E] : Ref)
      if (S < Q.End && Q.Start < E)
        return true;
    return false;
  };
  for (int I = 0; I != 500; ++I) {
    uint32_t S = static_cast<uint32_t>(R.nextBounded(10000));
    uint32_t E = S + 1 + static_cast<uint32_t>(R.nextBounded(20));
    craneline::PosRange Q{S, E};
    bool Expected = RefOverlaps(Q);
    EXPECT_EQ(T.overlaps(Q), Expected) << "[" << S << "," << E << ")";
    if (!Expected) {
      T.insert(Q);
      Ref[S] = E;
    }
  }
  EXPECT_EQ(T.size(), Ref.size());
  EXPECT_GT(T.traversalSteps(), 0u);
}

// --- Back-end differentials ----------------------------------------------------

TEST(Craneline, CorpusDifferentialAgainstInterpreter) {
  CranelineBackend B;
  runCorpusDifferential(B);
}

TEST(Craneline, CorpusDifferentialWithoutNativeInsts) {
  // Table II baseline: crc32 / overflow arithmetic / full multiplication
  // lower to helper calls. Results must be identical.
  CranelineOptions Opts;
  Opts.NativeCrc32 = false;
  Opts.NativeOverflowArith = false;
  Opts.NativeMulFull = false;
  CranelineBackend B(Opts);
  runCorpusDifferential(B);
}

TEST(Craneline, SimpleLoopRuns) {
  qir::Module M;
  qir::Function *F = M.createFunction("sum", {Type::I64}, Type::I64);
  Builder B(F);
  BlockId H = B.createBlock(), Body = B.createBlock(), E = B.createBlock();
  ValueId Zero = B.constInt(Type::I64, 0);
  B.br(H);
  B.startBlock(H);
  ValueId I = B.phi(Type::I64, 2);
  ValueId Acc = B.phi(Type::I64, 2);
  ValueId C = B.icmp(CmpPred::SLt, I, F->paramValue(0));
  B.condBr(C, Body, E);
  B.startBlock(Body);
  ValueId AccN = B.add(Acc, I);
  ValueId IN = B.add(I, B.constInt(Type::I64, 1));
  B.br(H);
  B.startBlock(E);
  B.ret(Acc);
  B.setPhiIncoming(I, 0, 0, Zero);
  B.setPhiIncoming(I, 1, Body, IN);
  B.setPhiIncoming(Acc, 0, 0, Zero);
  B.setPhiIncoming(Acc, 1, Body, AccN);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  CranelineBackend BE;
  auto Compiled = BE.compile(M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t)>("sum");
  EXPECT_EQ(Fn(0), 0);
  EXPECT_EQ(Fn(100), 4950);
}

TEST(Craneline, HighRegisterPressureSpills) {
  // Many simultaneously live values force the allocator to spill.
  qir::Module M;
  qir::Function *F = M.createFunction("pressure", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId X = F->paramValue(0);
  std::vector<ValueId> Vals;
  for (int I = 0; I != 30; ++I)
    Vals.push_back(B.mul(X, B.constInt(Type::I64, I + 1)));
  ValueId Acc = B.constInt(Type::I64, 0);
  for (int I = 29; I >= 0; --I)
    Acc = B.add(Acc, Vals[I]);
  B.ret(Acc);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  CranelineBackend BE;
  auto Compiled = BE.compile(M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t)>("pressure");
  EXPECT_EQ(Fn(1), 30 * 31 / 2);
  EXPECT_EQ(Fn(3), 3 * 30 * 31 / 2);
}

TEST(Craneline, CompileTimeBreakdownStages) {
  Corpus C = buildCorpus();
  CranelineBackend BE;
  TimeTrace Trace;
  auto Compiled = BE.compile(*C.M, backend::CompileOptions(&Trace));
  // All pipeline stages of Fig. 4 must be present.
  EXPECT_GT(Trace.totalNs("craneline.irgen"), 0u);
  EXPECT_GT(Trace.totalNs("craneline.irpasses"), 0u);
  EXPECT_GT(Trace.totalNs("craneline.iselprepare"), 0u);
  EXPECT_GT(Trace.totalNs("craneline.isel"), 0u);
  EXPECT_GT(Trace.totalNs("craneline.regalloc"), 0u);
  EXPECT_GT(Trace.totalNs("craneline.emit"), 0u);
  EXPECT_GT(Trace.totalNs("craneline.link"), 0u);
}

TEST(Craneline, CallbackComparatorWorks) {
  qir::Module M;
  rt::declareRuntime(M);
  qir::Function *F =
      M.createFunction("cmp", {Type::Ptr, Type::Ptr}, Type::I64);
  Builder B(F);
  ValueId A = B.load(Type::I64, F->paramValue(0));
  ValueId Bv = B.load(Type::I64, F->paramValue(1));
  ValueId Lt = B.icmp(CmpPred::SLt, A, Bv);
  ValueId Gt = B.icmp(CmpPred::SGt, A, Bv);
  B.ret(B.sub(B.zext(Type::I64, Gt), B.zext(Type::I64, Lt)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  CranelineBackend BE;
  auto Compiled = BE.compile(M);
  int64_t Data[] = {42, -3, 17, 0};
  rt_sort(Data, 4, 8, Compiled->entry("cmp"));
  EXPECT_EQ(Data[0], -3);
  EXPECT_EQ(Data[3], 42);
}

namespace {
class CranelineProperty : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(CranelineProperty, MatchesInterpreterOnRandomFunctions) {
  // Alternate between native and helper-call configurations by seed.
  CranelineOptions Opts;
  if (GetParam() % 2) {
    Opts.NativeCrc32 = false;
    Opts.NativeOverflowArith = false;
    Opts.NativeMulFull = false;
  }
  CranelineBackend B(Opts);
  runRandomDifferentialFor(B, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CranelineProperty,
                         ::testing::Range<uint64_t>(0, 40));

TEST(Craneline, CorpusDifferentialEachToggleIndividually) {
  // Table II rows disable one native instruction at a time; each
  // helper-call lowering must be individually sound.
  for (int Which = 0; Which != 3; ++Which) {
    CranelineOptions Opts;
    Opts.NativeCrc32 = Which != 0;
    Opts.NativeOverflowArith = Which != 1;
    Opts.NativeMulFull = Which != 2;
    CranelineBackend B(Opts);
    runCorpusDifferential(B);
  }
}
