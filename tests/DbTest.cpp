//===- tests/DbTest.cpp - Database engine tests ----------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Engine tests: datagen determinism, plan compilation, hand-checkable
/// query results, and the key integration property — every back-end
/// produces identical results for every benchmark query.
///
//===----------------------------------------------------------------------===//

#include "backend/Registry.h"
#include "db/Datagen.h"
#include "db/Executor.h"
#include "db/Queries.h"
#include <algorithm>
#include <gtest/gtest.h>
#include <map>

using namespace qcf;
using namespace qcf::db;

namespace {

/// Shared catalogs (generated once; tests are read-only).
Catalog &tpchCatalog() {
  static Catalog C;
  static bool Done = false;
  if (!Done) {
    generateTpchLike(C, 0.5);
    Done = true;
  }
  return C;
}

Catalog &tpcdsCatalog() {
  static Catalog C;
  static bool Done = false;
  if (!Done) {
    generateTpcdsLike(C, 0.5);
    Done = true;
  }
  return C;
}

rt::OutputBuffer runWith(const Query &Q, const Catalog &Cat,
                         const std::string &BackendName,
                         ExecResult *ResultOut = nullptr) {
  auto BE = backend::createBackend(BackendName);
  CompiledPlan Plan = compileQuery(Q, Cat);
  rt::OutputBuffer Out;
  ExecResult R = executeQuery(Plan, *BE, Cat, &Out);
  EXPECT_FALSE(R.Trapped) << Q.Name << " trapped on " << BackendName;
  if (ResultOut)
    *ResultOut = R;
  return Out;
}

} // namespace

TEST(Datagen, DeterministicAndShaped) {
  Catalog A, B;
  generateTpchLike(A, 0.25);
  generateTpchLike(B, 0.25);
  Table *LiA = A.find("lineitem");
  Table *LiB = B.find("lineitem");
  ASSERT_NE(LiA, nullptr);
  ASSERT_EQ(LiA->numRows(), LiB->numRows());
  EXPECT_GT(LiA->numRows(), 300u);
  for (size_t I = 0; I < LiA->numRows(); I += 97)
    EXPECT_EQ(LiA->column("l_orderkey")->i64At(I),
              LiB->column("l_orderkey")->i64At(I));
  // Orders reference valid customers.
  Table *Ord = A.find("orders");
  size_t NumCust = A.find("customer")->numRows();
  for (size_t I = 0; I != Ord->numRows(); ++I) {
    int64_t CK = Ord->column("o_custkey")->i64At(I);
    EXPECT_GE(CK, 0);
    EXPECT_LT(static_cast<size_t>(CK), NumCust);
  }
}

TEST(Datagen, TpcdsSkewedItems) {
  Catalog C;
  generateTpcdsLike(C, 0.5);
  Table *SS = C.find("store_sales");
  ASSERT_NE(SS, nullptr);
  size_t NumItems = C.find("item")->numRows();
  // Zipf skew: the bottom decile of item ids gets far more than 10%.
  size_t Low = 0;
  const Column *SI = SS->column("ss_item_sk");
  for (size_t I = 0; I != SS->numRows(); ++I)
    Low += static_cast<size_t>(SI->i64At(I)) < NumItems / 10;
  EXPECT_GT(Low, SS->numRows() / 5);
}

TEST(DbCodegen, PlansCompileAndVerify) {
  Catalog &C = tpchCatalog();
  for (const Query &Q : tpchQueries()) {
    CompiledPlan Plan = compileQuery(Q, C);
    EXPECT_GE(Plan.Pipelines.size(), 1u) << Q.Name;
    EXPECT_GT(Plan.Module->functions().size(), 0u) << Q.Name;
  }
}

TEST(DbExec, H6HandChecked) {
  // Recompute h6's single aggregate in plain C++ and compare.
  Catalog &C = tpchCatalog();
  Table *Li = C.find("lineitem");
  const Column *Ship = Li->column("l_shipdate");
  const Column *Disc = Li->column("l_discount");
  const Column *Qty = Li->column("l_quantity");
  const Column *Price = Li->column("l_extendedprice");
  int64_t Lo = rt::dateFromYmd(1994, 1, 1), Hi = rt::dateFromYmd(1995, 1, 1);
  Int128 Revenue = 0;
  int64_t N = 0;
  for (size_t I = 0; I != Li->numRows(); ++I) {
    int32_t D = Ship->i32At(I);
    Int128 Dc = Disc->decimalAt(I);
    if (D >= Lo && D < Hi && Dc >= 5 && Dc <= 7 &&
        Qty->decimalAt(I) < 2400) {
      Revenue += Price->decimalAt(I) * Dc;
      ++N;
    }
  }
  ASSERT_GT(N, 0) << "test data produced an empty h6 result";

  const Query Q = [&] {
    for (Query &Cand : tpchQueries())
      if (Cand.Name == "h6")
        return std::move(Cand);
    QCF_UNREACHABLE("h6 missing");
  }();
  rt::OutputBuffer Out = runWith(Q, C, "DirectEmit");
  ASSERT_EQ(Out.numRows(), 1u);
  size_t NumCells;
  const rt::OutputBuffer::Cell *Row = Out.row(0, &NumCells);
  ASSERT_EQ(NumCells, 2u);
  EXPECT_EQ(Row[0].I128V, Revenue);
  EXPECT_EQ(Row[1].I64V, N);
}

TEST(DbExec, H1GroupsAreSorted) {
  Catalog &C = tpchCatalog();
  const Query Q = [&] {
    for (Query &Cand : tpchQueries())
      if (Cand.Name == "h1")
        return std::move(Cand);
    QCF_UNREACHABLE("h1 missing");
  }();
  rt::OutputBuffer Out = runWith(Q, C, "DirectEmit");
  // 3 return flags x 2 statuses = up to 6 groups.
  EXPECT_GE(Out.numRows(), 4u);
  EXPECT_LE(Out.numRows(), 6u);
  std::string Text = Out.toText();
  // Sorted by flag: A rows precede N rows precede R rows.
  EXPECT_LT(Text.find("A|"), Text.find("N|"));
  EXPECT_LT(Text.find("N|"), Text.find("R|"));
}

TEST(DbExec, TopKLimitRespected) {
  Catalog &C = tpchCatalog();
  const Query Q = [&] {
    for (Query &Cand : tpchQueries())
      if (Cand.Name == "h3")
        return std::move(Cand);
    QCF_UNREACHABLE("h3 missing");
  }();
  rt::OutputBuffer Out = runWith(Q, C, "DirectEmit");
  EXPECT_LE(Out.numRows(), 10u);
  EXPECT_GE(Out.numRows(), 1u);
  // Revenue column descends.
  Int128 Prev;
  for (size_t R = 0; R != Out.numRows(); ++R) {
    size_t N;
    const rt::OutputBuffer::Cell *Row = Out.row(R, &N);
    if (R)
      EXPECT_LE(Row[1].I128V, Prev);
    Prev = Row[1].I128V;
  }
}

TEST(DbExec, MorselParallelMatchesSingleThread) {
  Catalog &C = tpcdsCatalog();
  const Query Q = [&] {
    for (Query &Cand : tpcdsQueries())
      if (Cand.Name == "ds_brand_m1")
        return std::move(Cand);
    QCF_UNREACHABLE("query missing");
  }();
  auto BE = backend::createBackend("DirectEmit");
  CompiledPlan Plan = compileQuery(Q, C);

  rt::OutputBuffer Single, Multi;
  ExecOptions One;
  One.NumThreads = 1;
  ExecOptions Four;
  Four.NumThreads = 4;
  Four.MorselSize = 256;
  EXPECT_FALSE(executeQuery(Plan, *BE, C, &Single, One).Trapped);
  EXPECT_FALSE(executeQuery(Plan, *BE, C, &Multi, Four).Trapped);
  EXPECT_EQ(Single.unorderedDigest(), Multi.unorderedDigest());
}

TEST(DbExec, WorkersCappedByMorselSupplyAndNoneIdle) {
  Catalog &C = tpcdsCatalog();
  const Query Q = [&] {
    for (Query &Cand : tpcdsQueries())
      if (Cand.Name == "ds_brand_m1")
        return std::move(Cand);
    QCF_UNREACHABLE("query missing");
  }();
  auto BE = backend::createBackend("DirectEmit");
  CompiledPlan Plan = compileQuery(Q, C);

  // Request far more threads than any pipeline has morsels: the executor
  // must cap workers at ceil(Rows / MorselSize) instead of spawning
  // threads that find the morsel supply already exhausted.
  ExecOptions Many;
  Many.NumThreads = 64;
  Many.MorselSize = 4096;
  rt::OutputBuffer Out;
  ExecResult R = executeQuery(Plan, *BE, C, &Out, Many);
  EXPECT_FALSE(R.Trapped);
  ASSERT_FALSE(R.Stats.Pipelines.empty());
  for (size_t PI = 0; PI != R.Stats.Pipelines.size(); ++PI) {
    const PipelineStats &P = R.Stats.Pipelines[PI];
    SCOPED_TRACE(PI);
    uint64_t NumMorsels = (P.Rows + Many.MorselSize - 1) / Many.MorselSize;
    EXPECT_LE(P.Workers, std::max<uint64_t>(NumMorsels, 1));
    EXPECT_GE(P.MinWorkerMorsels, 1u) << "a worker ran zero morsels";
  }

  // The capped run must still produce the single-thread result.
  rt::OutputBuffer Single;
  ExecOptions One;
  One.NumThreads = 1;
  EXPECT_FALSE(executeQuery(Plan, *BE, C, &Single, One).Trapped);
  EXPECT_EQ(Single.unorderedDigest(), Out.unorderedDigest());
}

TEST(DbIntegration, AllBackendsAgreeOnAllQueries) {
  struct Suite {
    Catalog *Cat;
    std::vector<Query> Queries;
  };
  Suite Suites[2] = {{&tpchCatalog(), tpchQueries()},
                     {&tpcdsCatalog(), tpcdsQueries()}};

  for (Suite &S : Suites) {
    for (const Query &Q : S.Queries) {
      SCOPED_TRACE(Q.Name);
      CompiledPlan Plan = compileQuery(Q, *S.Cat);
      rt::OutputBuffer Ref;
      {
        auto BE = backend::createBackend("Interpreter");
        ASSERT_FALSE(executeQuery(Plan, *BE, *S.Cat, &Ref).Trapped);
      }
      ASSERT_GT(Ref.numRows(), 0u) << Q.Name << ": empty result";
      for (const std::string &Name : backend::allBackendNames()) {
        if (Name == "Interpreter")
          continue;
        SCOPED_TRACE(Name);
        auto BE = backend::createBackend(Name);
        rt::OutputBuffer Out;
        ASSERT_FALSE(executeQuery(Plan, *BE, *S.Cat, &Out).Trapped);
        EXPECT_TRUE(Ref.equals(Out))
            << Q.Name << " differs on " << Name << "\nref:\n"
            << Ref.toText().substr(0, 400) << "\ngot:\n"
            << Out.toText().substr(0, 400);
      }
    }
  }
}

TEST(DbIntegration, AdaptiveBackendRunsQueries) {
  Catalog &C = tpchCatalog();
  const Query Q = [&] {
    for (Query &Cand : tpchQueries())
      if (Cand.Name == "h6")
        return std::move(Cand);
    QCF_UNREACHABLE("h6 missing");
  }();
  CompiledPlan Plan = compileQuery(Q, C);
  auto BE = backend::createBackend("Adaptive");
  rt::OutputBuffer Out;
  ASSERT_FALSE(executeQuery(Plan, *BE, C, &Out).Trapped);
  rt::OutputBuffer Ref;
  auto IB = backend::createBackend("Interpreter");
  ASSERT_FALSE(executeQuery(Plan, *IB, C, &Ref).Trapped);
  EXPECT_TRUE(Ref.equals(Out));
}


TEST(DbExec, H10HandChecked) {
  // Recompute h10 (returned items by customer, top-20) in plain C++.
  Catalog &C = tpchCatalog();
  Table *Li = C.find("lineitem");
  Table *Ord = C.find("orders");
  const Column *LOk = Li->column("l_orderkey");
  const Column *LFl = Li->column("l_returnflag");
  const Column *LPr = Li->column("l_extendedprice");
  const Column *LDi = Li->column("l_discount");
  const Column *OCu = Ord->column("o_custkey");
  const Column *ODa = Ord->column("o_orderdate");
  int64_t Lo = rt::dateFromYmd(1993, 10, 1), Hi = rt::dateFromYmd(1994, 1, 1);

  std::map<int64_t, Int128> RevByCust;
  for (size_t I = 0; I != Li->numRows(); ++I) {
    if (LFl->strAt(I).Len != 1 || LFl->strAt(I).data()[0] != 'R')
      continue;
    size_t O = static_cast<size_t>(LOk->i64At(I));
    int32_t D = ODa->i32At(O);
    if (D < Lo || D >= Hi)
      continue;
    RevByCust[OCu->i64At(O)] +=
        LPr->decimalAt(I) * (Int128(100) - LDi->decimalAt(I));
  }
  std::vector<Int128> Expected;
  for (auto &KV : RevByCust)
    Expected.push_back(KV.second);
  std::sort(Expected.begin(), Expected.end(), std::greater<>());
  if (Expected.size() > 20)
    Expected.resize(20);
  ASSERT_FALSE(Expected.empty()) << "test data produced an empty h10";

  const Query Q = [&] {
    for (Query &Cand : tpchQueries())
      if (Cand.Name == "h10")
        return std::move(Cand);
    QCF_UNREACHABLE("h10 missing");
  }();
  rt::OutputBuffer Out = runWith(Q, C, "Craneline");
  ASSERT_EQ(Out.numRows(), Expected.size());
  for (size_t R = 0; R != Out.numRows(); ++R) {
    size_t NumCells;
    const rt::OutputBuffer::Cell *Row = Out.row(R, &NumCells);
    ASSERT_EQ(NumCells, 3u);
    EXPECT_EQ(Row[2].I128V, Expected[R]) << "row " << R;
  }
}

TEST(DbExec, H19HandChecked) {
  // Recompute h19 (disjunctive brand/quantity filter, global aggregate).
  Catalog &C = tpchCatalog();
  Table *Li = C.find("lineitem");
  Table *Pa = C.find("part");
  const Column *LPk = Li->column("l_partkey");
  const Column *LQt = Li->column("l_quantity");
  const Column *LPr = Li->column("l_extendedprice");
  const Column *LDi = Li->column("l_discount");
  const Column *PBr = Pa->column("p_brand");

  auto BrandIs = [&](size_t P, const char *Name) {
    rt::StringVal S = PBr->strAt(P);
    return std::string(S.data(), S.Len) == Name;
  };
  Int128 Revenue = 0;
  int64_t N = 0;
  for (size_t I = 0; I != Li->numRows(); ++I) {
    size_t P = static_cast<size_t>(LPk->i64At(I));
    Int128 Qty = LQt->decimalAt(I);
    bool Hit =
        (BrandIs(P, "Brand#11") && Qty >= 100 && Qty <= 1100) ||
        (BrandIs(P, "Brand#21") && Qty >= 1000 && Qty <= 2000) ||
        (BrandIs(P, "Brand#32") && Qty >= 2000 && Qty <= 3000);
    if (Hit) {
      Revenue += LPr->decimalAt(I) * (Int128(100) - LDi->decimalAt(I));
      ++N;
    }
  }
  ASSERT_GT(N, 0) << "test data produced an empty h19";

  const Query Q = [&] {
    for (Query &Cand : tpchQueries())
      if (Cand.Name == "h19")
        return std::move(Cand);
    QCF_UNREACHABLE("h19 missing");
  }();
  rt::OutputBuffer Out = runWith(Q, C, "MLVM-cheap");
  ASSERT_EQ(Out.numRows(), 1u);
  size_t NumCells;
  const rt::OutputBuffer::Cell *Row = Out.row(0, &NumCells);
  ASSERT_EQ(NumCells, 2u);
  EXPECT_EQ(Row[0].I128V, Revenue);
  EXPECT_EQ(Row[1].I64V, N);
}

TEST(DbExec, AsyncCompileMatchesBlocking) {
  // ExecOptions::AsyncCompile slices the plan into per-pipeline modules
  // and overlaps their compilation with execution; the produced rows must
  // be byte-identical to blocking mode on every seed query.
  struct Suite {
    Catalog *Cat;
    std::vector<Query> Queries;
  };
  Suite Suites[2] = {{&tpchCatalog(), tpchQueries()},
                     {&tpcdsCatalog(), tpcdsQueries()}};
  auto BE = backend::createBackend("DirectEmit");

  for (Suite &S : Suites) {
    for (const Query &Q : S.Queries) {
      SCOPED_TRACE(Q.Name);
      CompiledPlan Plan = compileQuery(Q, *S.Cat);

      rt::OutputBuffer Blocking, Async;
      ExecOptions Sync;
      ExecOptions As;
      As.AsyncCompile = true;
      ASSERT_FALSE(executeQuery(Plan, *BE, *S.Cat, &Blocking, Sync).Trapped);
      ASSERT_FALSE(executeQuery(Plan, *BE, *S.Cat, &Async, As).Trapped);
      EXPECT_TRUE(Blocking.equals(Async))
          << Q.Name << " async/blocking divergence\nblocking:\n"
          << Blocking.toText().substr(0, 400) << "\nasync:\n"
          << Async.toText().substr(0, 400);
    }
  }
}

TEST(DbExec, AsyncCompileSharedServiceAndParallelMorsels) {
  // One external CompileService shared across queries, combined with
  // morsel-parallel execution — the full concurrent configuration.
  Catalog &C = tpchCatalog();
  backend::CompileService Svc(2);
  auto BE = backend::createBackend("Craneline");

  for (const Query &Q : tpchQueries()) {
    SCOPED_TRACE(Q.Name);
    CompiledPlan Plan = compileQuery(Q, C);
    rt::OutputBuffer Ref, Out;
    ExecOptions Sync;
    ASSERT_FALSE(executeQuery(Plan, *BE, C, &Ref, Sync).Trapped);

    ExecOptions As;
    As.AsyncCompile = true;
    As.Service = &Svc;
    As.NumThreads = 4;
    As.MorselSize = 256;
    ASSERT_FALSE(executeQuery(Plan, *BE, C, &Out, As).Trapped);
    EXPECT_EQ(Ref.unorderedDigest(), Out.unorderedDigest()) << Q.Name;
  }
  EXPECT_GT(Svc.stats().JobsCompleted, 0u);
}

TEST(DbExec, AdaptiveSwapBeforeFirstPickupKeepsAccounting) {
  // Regression pin for the static first-morsel assignment: worker T
  // starts at T * MorselSize without consulting the shared cursor. With
  // the swap forced at morsel 0, the optimized entry is published while
  // workers 1..N-1 may still be between spawn and their first pickup —
  // exactly the window where an entry captured at spawn time, or a
  // skipped pre-assigned morsel, would corrupt results or accounting.
  // The per-pipeline morsel ledger must still balance exactly.
  Catalog &C = tpcdsCatalog();
  const Query Q = [&] {
    for (Query &Cand : tpcdsQueries())
      if (Cand.Name == "ds_brand_m1")
        return std::move(Cand);
    QCF_UNREACHABLE("query missing");
  }();
  CompiledPlan Plan = compileQuery(Q, C);
  auto Fast = backend::createBackend("DirectEmit");
  auto Opt = backend::createBackend("MLVM-cheap");

  rt::OutputBuffer Single;
  ExecOptions One;
  One.NumThreads = 1;
  ASSERT_FALSE(executeQuery(Plan, *Fast, C, &Single, One).Trapped);

  backend::CompileService Svc(2);
  for (int Round = 0; Round != 3; ++Round) {
    SCOPED_TRACE(Round);
    rt::OutputBuffer Out;
    ExecOptions O;
    O.NumThreads = 4;
    O.MorselSize = 256;
    O.AdaptiveExec = true;
    O.FastBackend = Fast.get();
    O.Service = &Svc;
    O.OsrForceSwapMorsel = 0;
    ExecResult R = executeQuery(Plan, *Opt, C, &Out, O);
    ASSERT_FALSE(R.Trapped);
    EXPECT_EQ(Single.unorderedDigest(), Out.unorderedDigest());
    EXPECT_GE(R.Stats.OsrSwaps, 1u);
    ASSERT_FALSE(R.Stats.Pipelines.empty());
    for (size_t PI = 0; PI != R.Stats.Pipelines.size(); ++PI) {
      const PipelineStats &P = R.Stats.Pipelines[PI];
      SCOPED_TRACE(PI);
      uint64_t NumMorsels = (P.Rows + O.MorselSize - 1) / O.MorselSize;
      EXPECT_EQ(P.Morsels, NumMorsels) << "lost or duplicated morsel";
      EXPECT_EQ(P.MorselsFast + P.MorselsOpt, P.Morsels);
      EXPECT_EQ(P.RowsFast + P.RowsOpt, P.Rows);
      if (P.Rows > 0)
        EXPECT_GE(P.MinWorkerMorsels, 1u) << "a worker ran zero morsels";
    }
  }
}

TEST(DbExec, AsyncCompileTrapAbortsCleanly) {
  // The trap path under async compilation: an overflow mid-pipeline must
  // still abort with Trapped set, and the in-flight compile jobs of later
  // pipelines must be cancelled or finished — never leaked. The query
  // sorts after aggregation so the plan has multiple pipelines and the
  // trap fires with tickets still outstanding.
  Catalog &C = tpchCatalog();
  Query Q;
  Q.Name = "overflow_async";
  std::vector<AggSpec> Aggs;
  AggSpec A;
  A.Kind = AggKind::Sum;
  A.Arg = mul(mul(col("l_extendedprice"), litDec(900000000000000000)),
              litDec(900000000000000000));
  A.Name = "boom";
  Aggs.push_back(std::move(A));
  std::vector<ExprPtr> Keys;
  Keys.push_back(col("l_returnflag"));
  Q.Root = aggregate(scan("lineitem"), std::move(Keys), {"flag"},
                     std::move(Aggs));
  Q.Output.push_back(col("boom"));

  CompiledPlan Plan = compileQuery(Q, C);
  auto BE = backend::createBackend("DirectEmit");
  for (int Round = 0; Round != 3; ++Round) {
    rt::OutputBuffer Out;
    ExecOptions As;
    As.AsyncCompile = true;
    ExecResult R = executeQuery(Plan, *BE, C, &Out, As);
    EXPECT_TRUE(R.Trapped) << "overflow must trap in async mode";
    EXPECT_EQ(R.Trap, rt::TrapCode::Overflow);
  }
}

TEST(DbExec, DecimalOverflowTrapsOnEveryBackend) {
  // Failure injection: a query whose decimal arithmetic overflows i128
  // must report Trapped on every back-end (the generated code uses
  // overflow-checked smultrap; §III-A), never crash or return rows.
  Catalog &C = tpchCatalog();
  Query Q;
  Q.Name = "overflow";
  std::vector<AggSpec> Aggs;
  AggSpec A;
  A.Kind = AggKind::Sum;
  A.Arg = mul(mul(col("l_extendedprice"), litDec(900000000000000000)),
              litDec(900000000000000000));
  A.Name = "boom";
  Aggs.push_back(std::move(A));
  Q.Root = aggregate(scan("lineitem"), {}, {}, std::move(Aggs));
  Q.Output.push_back(col("boom"));

  CompiledPlan Plan = compileQuery(Q, C);
  for (const std::string &Name : backend::allBackendNames()) {
    auto BE = backend::createBackend(Name);
    rt::OutputBuffer Out;
    ExecResult R = executeQuery(Plan, *BE, C, &Out);
    EXPECT_TRUE(R.Trapped) << "no overflow trap on " << Name;
  }
}
