//===- tests/DiffHarness.h - Cross-back-end differential harness *- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs corpus cases through any back-end and compares against the
/// interpreter baseline (result lanes and trap behaviour must match
/// exactly).
///
//===----------------------------------------------------------------------===//

#ifndef QCF_TESTS_DIFFHARNESS_H
#define QCF_TESTS_DIFFHARNESS_H

#include "backend/Backend.h"
#include "interp/Interp.h"
#include "runtime/Trap.h"
#include "tests/Corpus.h"
#include <gtest/gtest.h>

namespace qcf::test {

/// Outcome of invoking one case: either a trap or a result value.
struct CaseOutcome {
  bool Trapped = false;
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const CaseOutcome &O) const {
    if (Trapped != O.Trapped)
      return false;
    return Trapped || (Lo == O.Lo && Hi == O.Hi);
  }
};

/// Invokes \p Entry (a SysV entry point) with the case's argument lanes.
/// Supports up to 6 lanes and one- or two-lane integer-class results.
inline CaseOutcome invokeEntry(void *Entry,
                               const std::vector<uint64_t> &Lanes) {
  CaseOutcome Out;
  struct Pair {
    uint64_t Lo, Hi;
  };
  Pair R{};
  rt::TrapCode Code = rt::runWithTrapGuard([&] {
    using U = uint64_t;
    const std::vector<uint64_t> &S = Lanes;
    switch (Lanes.size()) {
    case 0:
      R = reinterpret_cast<Pair (*)()>(Entry)();
      break;
    case 1:
      R = reinterpret_cast<Pair (*)(U)>(Entry)(S[0]);
      break;
    case 2:
      R = reinterpret_cast<Pair (*)(U, U)>(Entry)(S[0], S[1]);
      break;
    case 3:
      R = reinterpret_cast<Pair (*)(U, U, U)>(Entry)(S[0], S[1], S[2]);
      break;
    case 4:
      R = reinterpret_cast<Pair (*)(U, U, U, U)>(Entry)(S[0], S[1], S[2],
                                                        S[3]);
      break;
    case 5:
      R = reinterpret_cast<Pair (*)(U, U, U, U, U)>(Entry)(S[0], S[1], S[2],
                                                           S[3], S[4]);
      break;
    case 6:
      R = reinterpret_cast<Pair (*)(U, U, U, U, U, U)>(Entry)(
          S[0], S[1], S[2], S[3], S[4], S[5]);
      break;
    default:
      FAIL() << "too many argument lanes";
    }
  });
  if (Code != rt::TrapCode::None) {
    Out.Trapped = true;
    return Out;
  }
  Out.Lo = R.Lo;
  Out.Hi = R.Hi;
  return Out;
}

/// Runs every corpus case through \p B and expects interpreter-identical
/// outcomes. One-lane results are compared on Lo only.
inline void runCorpusDifferential(backend::Backend &B) {
  Corpus C = buildCorpus();
  interp::InterpBackend Baseline;
  auto Ref = Baseline.compile(*C.M);
  auto Got = B.compile(*C.M);
  ASSERT_NE(Got, nullptr);

  for (const CorpusCase &Case : C.Cases) {
    void *RefEntry = Ref->entry(Case.Fn);
    void *GotEntry = Got->entry(Case.Fn);
    ASSERT_NE(RefEntry, nullptr) << Case.Fn;
    ASSERT_NE(GotEntry, nullptr) << Case.Fn;

    CaseOutcome Expected = invokeEntry(RefEntry, Case.ArgLanes);
    CaseOutcome Actual = invokeEntry(GotEntry, Case.ArgLanes);
    EXPECT_EQ(Expected.Trapped, Case.ExpectTrap)
        << Case.Fn << ": corpus trap expectation vs interpreter";

    // One-lane results: ignore Hi (undefined in rdx).
    qir::Function *F = C.M->functionByName(Case.Fn);
    bool TwoLane = qir::isTwoLane(F->returnType());
    EXPECT_EQ(Expected.Trapped, Actual.Trapped) << Case.Fn;
    if (!Expected.Trapped) {
      EXPECT_EQ(Expected.Lo, Actual.Lo) << Case.Fn << " result mismatch (lo)";
      if (TwoLane) {
        EXPECT_EQ(Expected.Hi, Actual.Hi)
            << Case.Fn << " result mismatch (hi)";
      }
    }
  }
}

/// Compares one back-end against the interpreter on one random module
/// (see tests/RandomQir.h), with random inputs.
void runRandomDifferentialFor(backend::Backend &BE, uint64_t Seed);

} // namespace qcf::test

#endif // QCF_TESTS_DIFFHARNESS_H
