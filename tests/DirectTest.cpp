//===- tests/DirectTest.cpp - DirectEmit back-end tests --------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "direct/Cfi.h"
#include "direct/DirectEmit.h"
#include "tests/Corpus.h"
#include "tests/DiffHarness.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::test;

TEST(Direct, CorpusDifferentialAgainstInterpreter) {
  direct::DirectBackend B;
  runCorpusDifferential(B);
}

TEST(Direct, SimpleFunctionRuns) {
  qir::Module M;
  qir::Function *F =
      M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), F->paramValue(1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  direct::DirectBackend BE;
  auto C = BE.compile(M);
  auto *Fn = C->entryAs<int64_t (*)(int64_t, int64_t)>("f");
  EXPECT_EQ(Fn(40, 2), 42);
  EXPECT_EQ(Fn(-1, 1), 0);
}

TEST(Direct, LoopWithManyValuesSpills) {
  // More live values than scratch registers forces spilling.
  qir::Module M;
  qir::Function *F = M.createFunction("spilly", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId X = F->paramValue(0);
  std::vector<ValueId> Vals;
  for (int I = 0; I != 20; ++I)
    Vals.push_back(B.mul(X, B.constInt(Type::I64, I + 1)));
  // Combine in reverse order so everything stays live a long time.
  ValueId Acc = B.constInt(Type::I64, 0);
  for (int I = 19; I >= 0; --I)
    Acc = B.add(Acc, Vals[I]);
  B.ret(Acc);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  direct::DirectBackend BE;
  auto C = BE.compile(M);
  auto *Fn = C->entryAs<int64_t (*)(int64_t)>("spilly");
  // sum x*i for i in 1..20 = x * 210
  EXPECT_EQ(Fn(1), 210);
  EXPECT_EQ(Fn(7), 7 * 210);
}

TEST(Direct, CompiledComparatorDrivesRuntimeSort) {
  qir::Module M;
  rt::declareRuntime(M);
  qir::Function *F =
      M.createFunction("cmp", {Type::Ptr, Type::Ptr}, Type::I64);
  Builder B(F);
  ValueId A = B.load(Type::I64, F->paramValue(0));
  ValueId Bv = B.load(Type::I64, F->paramValue(1));
  ValueId Lt = B.icmp(CmpPred::SLt, A, Bv);
  ValueId Gt = B.icmp(CmpPred::SGt, A, Bv);
  B.ret(B.sub(B.zext(Type::I64, Gt), B.zext(Type::I64, Lt)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  direct::DirectBackend BE;
  auto C = BE.compile(M);
  void *Cmp = C->entry("cmp");
  int64_t Data[] = {9, 1, 8, 2, 7, 3};
  rt_sort(Data, 6, 8, Cmp);
  int64_t Expect[] = {1, 2, 3, 7, 8, 9};
  for (int I = 0; I != 6; ++I)
    EXPECT_EQ(Data[I], Expect[I]);
}

TEST(Direct, TrapUnwindsToGuard) {
  Corpus C = buildCorpus();
  direct::DirectBackend BE;
  auto Compiled = BE.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t, int64_t)>("traps");
  EXPECT_EQ(rt::runWithTrapGuard([&] { Fn(1, 2); }), rt::TrapCode::None);
  EXPECT_EQ(rt::runWithTrapGuard([&] { Fn(INT64_MAX, 1); }),
            rt::TrapCode::Overflow);
}

TEST(Direct, CfiRecordsAreWellFormed) {
  Corpus C = buildCorpus();
  direct::DirectBackend BE;
  auto Compiled = BE.compile(*C.M);
  auto *DM = static_cast<direct::DirectModule *>(Compiled.get());
  EXPECT_FALSE(DM->cfiBytes().empty());
  for (const auto &F : C.M->functions()) {
    size_t Off = DM->cfiRecordOffset(F->name());
    ASSERT_NE(Off, SIZE_MAX) << F->name();
    EXPECT_TRUE(direct::validateCfi(DM->cfiBytes(), Off,
                                    DM->codeSize(F->name())))
        << "malformed CFI for " << F->name();
  }
}

TEST(Direct, CompileTimeBreakdownHasAnalysisAndCodegen) {
  Corpus C = buildCorpus();
  direct::DirectBackend BE;
  TimeTrace Trace;
  auto Compiled = BE.compile(*C.M, backend::CompileOptions(&Trace));
  EXPECT_GT(Trace.totalNs("direct.analysis"), 0u);
  EXPECT_GT(Trace.totalNs("direct.codegen"), 0u);
  EXPECT_GT(Trace.totalNs("direct.analysis.liveness"), 0u);
  // Liveness is nested inside the analysis scope.
  EXPECT_GE(Trace.totalNs("direct.analysis"),
            Trace.totalNs("direct.analysis.liveness"));
}

TEST(Direct, ManyBlocksAndBranches) {
  // A chain of diamonds stressing edge moves and fallthrough layout.
  qir::Module M;
  qir::Function *F = M.createFunction("chain", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId Cur = F->paramValue(0);
  for (int I = 0; I != 10; ++I) {
    BlockId T = B.createBlock(), E = B.createBlock(), J = B.createBlock();
    ValueId Bit = B.and_(Cur, B.constInt(Type::I64, 1));
    ValueId IsOdd = B.icmp(CmpPred::Eq, Bit, B.constInt(Type::I64, 1));
    B.condBr(IsOdd, T, E);
    B.startBlock(T);
    ValueId VT = B.add(Cur, B.constInt(Type::I64, 3));
    B.br(J);
    B.startBlock(E);
    ValueId VE = B.lshr(Cur, B.constInt(Type::I64, 1));
    B.br(J);
    B.startBlock(J);
    ValueId P = B.phi(Type::I64, 2);
    B.setPhiIncoming(P, 0, T, VT);
    B.setPhiIncoming(P, 1, E, VE);
    Cur = P;
  }
  B.ret(Cur);
  ASSERT_EQ(qir::verify(M), std::nullopt) << qir::verify(M).value_or("");

  direct::DirectBackend BE;
  auto C = BE.compile(M);
  auto *Fn = C->entryAs<uint64_t (*)(uint64_t)>("chain");
  // Reference in C++.
  auto Ref = [](uint64_t X) {
    for (int I = 0; I != 10; ++I)
      X = (X & 1) ? X + 3 : X >> 1;
    return X;
  };
  for (uint64_t X : {0ull, 1ull, 27ull, 1000000007ull})
    EXPECT_EQ(Fn(X), Ref(X)) << X;
}
