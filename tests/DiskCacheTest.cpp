//===- tests/DiskCacheTest.cpp - Persistent code cache tests --------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the on-disk second-level code cache: per-back-end round
/// trips (byte-identical re-serialization, identical execution including
/// re-patched runtime calls), warm-restart installs with zero back-end
/// compiles, every failure path falling back to a clean recompile
/// (truncation, corruption, stale format version, concurrent writers),
/// the size-budget GC, env-var construction, and config keying.
///
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/DiskCache.h"
#include "backend/Registry.h"
#include "craneline/Craneline.h"
#include "qir/Builder.h"
#include "runtime/Runtime.h"
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace qcf;
using namespace qcf::qir;
using namespace qcf::backend;

namespace {

/// A scratch directory removed (with its files) on scope exit.
struct TempDir {
  std::string Path;
  TempDir() {
    const char *Root = ::getenv("TMPDIR");
    std::string T = (Root && *Root) ? Root : "/tmp";
    T += "/qcfdiskXXXXXX";
    char *P = ::mkdtemp(T.data());
    EXPECT_NE(P, nullptr);
    Path = T;
  }
  ~TempDir() {
    DIR *D = ::opendir(Path.c_str());
    if (!D)
      return;
    while (struct dirent *E = ::readdir(D)) {
      if (!std::strcmp(E->d_name, ".") || !std::strcmp(E->d_name, ".."))
        continue;
      ::unlink((Path + "/" + E->d_name).c_str());
    }
    ::closedir(D);
    ::rmdir(Path.c_str());
  }
};

/// Blob files (full paths, sorted) currently in \p Dir.
std::vector<std::string> listBlobs(const std::string &Dir) {
  std::vector<std::string> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".qcc") == 0)
      Out.push_back(Dir + "/" + Name);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Counts how often the wrapped back-end's compile pipeline actually ran,
/// while forwarding everything the disk cache keys or calls through
/// (name, cacheConfig, deserialize) untouched.
class CountingBackend : public Backend {
public:
  explicit CountingBackend(std::unique_ptr<Backend> Inner)
      : Inner(std::move(Inner)) {}

  using Backend::compile;

  std::string name() const override { return Inner->name(); }
  std::string cacheConfig() const override { return Inner->cacheConfig(); }

  std::unique_ptr<CompiledModule> compile(const qir::Module &M,
                                          const CompileOptions &Opts) override {
    ++Compiles;
    return Inner->compile(M, Opts);
  }
  std::unique_ptr<CompiledModule> deserialize(const uint8_t *Data,
                                              size_t Len) override {
    ++Deserializes;
    return Inner->deserialize(Data, Len);
  }

  std::atomic<uint64_t> Compiles{0};
  std::atomic<uint64_t> Deserializes{0};

private:
  std::unique_ptr<Backend> Inner;
};

/// Builds `fn(a) = a * K + 7`.
void buildAffine(qir::Module &M, int64_t K, const char *Name = "f") {
  qir::Function *F = M.createFunction(Name, {Type::I64}, Type::I64);
  Builder B(F);
  ValueId P = B.mul(F->paramValue(0), B.constInt(Type::I64, K));
  B.ret(B.add(P, B.constInt(Type::I64, 7)));
}

/// Builds a module spanning every relocation kind a persisted blob must
/// re-patch against the live runtime: an explicit runtime call
/// (rt_crc32), an i128 shift that back-ends lower to the rt_shl128
/// helper, and a division whose trap stub targets rt_trap.
void buildRelocModule(qir::Module &M) {
  SymbolId Crc =
      M.declareRuntime("rt_crc32", Type::I64, {Type::I64, Type::I64},
                       rt::runtimeSymbolAddress("rt_crc32"));
  {
    qir::Function *F =
        M.createFunction("crc", {Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    B.ret(B.call(Crc, {F->paramValue(0), F->paramValue(1)}));
  }
  {
    qir::Function *F =
        M.createFunction("shl128", {Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    ValueId X = B.packI128(F->paramValue(0), F->paramValue(1));
    ValueId S = B.shl(X, B.constInt(Type::I64, 23));
    B.ret(B.xor_(B.extractLo(S), B.extractHi(S)));
  }
  {
    qir::Function *F =
        M.createFunction("divs", {Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    B.ret(B.sdiv(F->paramValue(0), F->paramValue(1)));
  }
}

using Fn2 = int64_t (*)(int64_t, int64_t);

/// Runs the reloc module's three entry points and checks them against the
/// runtime itself / plain C arithmetic.
void checkRelocModule(CompiledModule &C) {
  auto *CrcRt = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(
      rt::runtimeSymbolAddress("rt_crc32"));
  ASSERT_NE(CrcRt, nullptr);
  auto *Crc = C.entryAs<Fn2>("crc");
  auto *Shl = C.entryAs<Fn2>("shl128");
  auto *Div = C.entryAs<Fn2>("divs");
  ASSERT_NE(Crc, nullptr);
  ASSERT_NE(Shl, nullptr);
  ASSERT_NE(Div, nullptr);
  for (int64_t A : {int64_t(0), int64_t(42), int64_t(-9000)})
    EXPECT_EQ(uint64_t(Crc(A, A * 31 + 5)),
              CrcRt(uint64_t(A), uint64_t(A * 31 + 5)));
  for (uint64_t Lo : {uint64_t(1), uint64_t(0xdeadbeefcafebabeull)}) {
    unsigned __int128 X =
        (static_cast<unsigned __int128>(7) << 64) | Lo;
    unsigned __int128 S = X << 23;
    EXPECT_EQ(uint64_t(Shl(int64_t(Lo), 7)),
              uint64_t(S) ^ uint64_t(S >> 64));
  }
  EXPECT_EQ(Div(100, 7), 14);
  EXPECT_EQ(Div(-100, 7), -14);
}

/// Full round trip for one registered back-end: compile, store, load into
/// a module that must execute identically and re-serialize to the exact
/// same bytes.
void roundTrip(const char *BackendName) {
  SCOPED_TRACE(BackendName);
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, /*BudgetBytes=*/0, &Reg);

  qir::Module M;
  buildRelocModule(M);
  ModuleFingerprint Key = fingerprintModule(M);
  std::unique_ptr<Backend> BE = createBackend(BackendName);
  CompileOptions Opts;

  std::unique_ptr<CompiledModule> Fresh = BE->compile(M, Opts);
  ASSERT_NE(Fresh, nullptr);
  checkRelocModule(*Fresh);

  ASSERT_TRUE(Cache.store(Key, *BE, *Fresh, Opts));
  EXPECT_EQ(Cache.stats().Stores, 1u);
  EXPECT_EQ(listBlobs(Dir.Path).size(), 1u);

  std::shared_ptr<CompiledModule> Warm = Cache.load(Key, *BE, Opts);
  ASSERT_NE(Warm, nullptr);
  EXPECT_EQ(Cache.stats().Hits, 1u);
  checkRelocModule(*Warm);

  // The warm module must serialize back to byte-identical payload — the
  // differential half of the warm-restart acceptance criterion.
  std::vector<uint8_t> P1, P2;
  ASSERT_TRUE(Fresh->serialize(P1));
  ASSERT_TRUE(Warm->serialize(P2));
  EXPECT_EQ(P1, P2) << "disk-loaded module must re-serialize byte-identically";
}

} // namespace

TEST(DiskCache, RoundTripDirect) { roundTrip("DirectEmit"); }
TEST(DiskCache, RoundTripCraneline) { roundTrip("Craneline"); }
TEST(DiskCache, RoundTripMlvmCheap) { roundTrip("MLVM-cheap"); }
TEST(DiskCache, RoundTripMlvmOpt) { roundTrip("MLVM-opt"); }

TEST(DiskCache, WarmRestartSkipsBackend) {
  TempDir Dir;
  qir::Module A, B;
  buildRelocModule(A);
  buildAffine(B, 13);

  // "Process" 1: cold — every module reaches the inner back-end and is
  // persisted.
  {
    obs::MetricsRegistry Reg;
    DiskCodeCache Disk(Dir.Path, 0, &Reg);
    auto Counting = std::make_unique<CountingBackend>(createBackend("DirectEmit"));
    CountingBackend *Inner = Counting.get();
    CachingBackend BE(std::move(Counting), 0, nullptr, &Reg, &Disk);
    checkRelocModule(*BE.compile(A));
    EXPECT_EQ(BE.compile(B)->entryAs<int64_t (*)(int64_t)>("f")(3), 46);
    EXPECT_EQ(Inner->Compiles.load(), 2u);
    EXPECT_EQ(Disk.stats().Stores, 2u);
    EXPECT_EQ(Disk.stats().Misses, 2u);
  }

  // "Process" 2: warm — same cache directory, fresh everything else. The
  // inner back-end must never run; both installs come off disk.
  {
    obs::MetricsRegistry Reg;
    DiskCodeCache Disk(Dir.Path, 0, &Reg);
    auto Counting = std::make_unique<CountingBackend>(createBackend("DirectEmit"));
    CountingBackend *Inner = Counting.get();
    CachingBackend BE(std::move(Counting), 0, nullptr, &Reg, &Disk);
    checkRelocModule(*BE.compile(A));
    EXPECT_EQ(BE.compile(B)->entryAs<int64_t (*)(int64_t)>("f")(3), 46);
    EXPECT_EQ(Inner->Compiles.load(), 0u)
        << "warm restart must not invoke the back-end";
    EXPECT_EQ(Inner->Deserializes.load(), 2u);
    EXPECT_EQ(Disk.stats().Hits, 2u);
    EXPECT_EQ(Disk.stats().Stores, 0u) << "disk hits must not re-store";
    // In-memory hits after the first install: disk not consulted again.
    BE.compile(A);
    EXPECT_EQ(Disk.stats().Hits, 2u);
  }
}

namespace {

/// Stores one affine module into \p Dir and returns (key, blob path).
std::pair<ModuleFingerprint, std::string>
storeOne(DiskCodeCache &Cache, Backend &BE, int64_t K = 5) {
  qir::Module M;
  buildAffine(M, K);
  ModuleFingerprint Key = fingerprintModule(M);
  CompileOptions Opts;
  std::unique_ptr<CompiledModule> C = BE.compile(M, Opts);
  EXPECT_TRUE(Cache.store(Key, BE, *C, Opts));
  std::vector<std::string> Blobs = listBlobs(Cache.directory());
  EXPECT_EQ(Blobs.size(), 1u);
  return {Key, Blobs.empty() ? std::string() : Blobs.front()};
}

} // namespace

TEST(DiskCache, TruncatedBlobFallsBackToRecompile) {
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, 0, &Reg);
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");
  auto [Key, Blob] = storeOne(Cache, *BE);

  struct stat St;
  ASSERT_EQ(::stat(Blob.c_str(), &St), 0);

  // Mid-body truncation: the checksum no longer matches.
  ASSERT_EQ(::truncate(Blob.c_str(), St.st_size - 3), 0);
  EXPECT_EQ(Cache.load(Key, *BE, CompileOptions()), nullptr);
  EXPECT_EQ(Cache.stats().Rejected, 1u);
  EXPECT_TRUE(listBlobs(Dir.Path).empty()) << "invalid blob must be unlinked";

  // Header-level truncation.
  auto [Key2, Blob2] = storeOne(Cache, *BE);
  ASSERT_EQ(::truncate(Blob2.c_str(), 10), 0);
  EXPECT_EQ(Cache.load(Key2, *BE, CompileOptions()), nullptr);
  EXPECT_EQ(Cache.stats().Rejected, 2u);
  EXPECT_TRUE(listBlobs(Dir.Path).empty());

  // The full stack still compiles cleanly after the reject.
  obs::MetricsRegistry Reg2;
  DiskCodeCache Disk2(Dir.Path, 0, &Reg2);
  CachingBackend Caching(createBackend("DirectEmit"), 0, nullptr, &Reg2,
                         &Disk2);
  qir::Module M;
  buildAffine(M, 5);
  EXPECT_EQ(Caching.compile(M)->entryAs<int64_t (*)(int64_t)>("f")(4), 27);
}

TEST(DiskCache, FlippedChecksumByteRejected) {
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, 0, &Reg);
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");
  auto [Key, Blob] = storeOne(Cache, *BE);

  // Flip one byte in the body (past the 40-byte envelope header).
  int Fd = ::open(Blob.c_str(), O_RDWR);
  ASSERT_GE(Fd, 0);
  uint8_t Byte = 0;
  ASSERT_EQ(::pread(Fd, &Byte, 1, 48), 1);
  Byte ^= 0x40;
  ASSERT_EQ(::pwrite(Fd, &Byte, 1, 48), 1);
  ::close(Fd);

  EXPECT_EQ(Cache.load(Key, *BE, CompileOptions()), nullptr);
  EXPECT_EQ(Cache.stats().Rejected, 1u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
  EXPECT_TRUE(listBlobs(Dir.Path).empty());
}

TEST(DiskCache, StaleFormatVersionRejected) {
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, 0, &Reg);
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");
  auto [Key, Blob] = storeOne(Cache, *BE);

  // The version field lives at envelope offset 8, after the 8-byte magic,
  // and is excluded from the body checksum — so this exercises the
  // version-mismatch path, not the corruption path.
  uint32_t Stale = DiskCodeCache::FormatVersion + 1;
  int Fd = ::open(Blob.c_str(), O_RDWR);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::pwrite(Fd, &Stale, sizeof(Stale), 8), ssize_t(sizeof(Stale)));
  ::close(Fd);

  EXPECT_EQ(Cache.load(Key, *BE, CompileOptions()), nullptr);
  EXPECT_EQ(Cache.stats().Rejected, 1u);
  EXPECT_TRUE(listBlobs(Dir.Path).empty())
      << "stale-version blobs are dead weight and must be unlinked";
}

TEST(DiskCache, ConcurrentWritersThreads) {
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, 0, &Reg);
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");

  qir::Module M;
  buildAffine(M, 9);
  ModuleFingerprint Key = fingerprintModule(M);
  CompileOptions Opts;
  std::unique_ptr<CompiledModule> C = BE->compile(M, Opts);

  std::atomic<int> Bad{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != 10; ++I) {
        if (!Cache.store(Key, *BE, *C, Opts))
          ++Bad;
        std::shared_ptr<CompiledModule> W = Cache.load(Key, *BE, Opts);
        if (!W || W->entryAs<int64_t (*)(int64_t)>("f")(I) != I * 9 + 7)
          ++Bad;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(listBlobs(Dir.Path).size(), 1u)
      << "temp files must never leak past rename";
}

TEST(DiskCache, ConcurrentWritersProcesses) {
  TempDir Dir;
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");
  qir::Module M;
  buildAffine(M, 17);
  ModuleFingerprint Key = fingerprintModule(M);
  CompileOptions Opts;
  // Compile before forking so the children only do store() work.
  std::unique_ptr<CompiledModule> C = BE->compile(M, Opts);

  pid_t Kids[2];
  for (pid_t &Kid : Kids) {
    Kid = ::fork();
    ASSERT_GE(Kid, 0);
    if (Kid == 0) {
      // Child: its own cache object over the shared directory; races the
      // sibling on the same key. _exit to skip gtest/atexit machinery.
      obs::MetricsRegistry Reg;
      DiskCodeCache Mine(Dir.Path, 0, &Reg);
      bool Ok = true;
      for (int I = 0; I != 20 && Ok; ++I)
        Ok = Mine.store(Key, *BE, *C, Opts);
      ::_exit(Ok ? 0 : 1);
    }
  }
  for (pid_t Kid : Kids) {
    int Status = 0;
    ASSERT_EQ(::waitpid(Kid, &Status, 0), Kid);
    EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);
  }

  // Whichever rename won last, the surviving blob must be valid.
  EXPECT_EQ(listBlobs(Dir.Path).size(), 1u);
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, 0, &Reg);
  std::shared_ptr<CompiledModule> W = Cache.load(Key, *BE, Opts);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->entryAs<int64_t (*)(int64_t)>("f")(2), 41);
}

TEST(DiskCache, GcEvictsOldestFirst) {
  TempDir Dir;
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");
  CompileOptions Opts;
  std::vector<std::string> Blobs;
  uint64_t Total = 0;
  {
    obs::MetricsRegistry Reg;
    DiskCodeCache Unbounded(Dir.Path, 0, &Reg);
    for (int64_t K : {1, 2, 3}) {
      qir::Module M;
      buildAffine(M, K);
      std::unique_ptr<CompiledModule> C = BE->compile(M, Opts);
      ASSERT_TRUE(Unbounded.store(fingerprintModule(M), *BE, *C, Opts));
    }
    Blobs = listBlobs(Dir.Path);
    ASSERT_EQ(Blobs.size(), 3u);
    // Give the blobs strictly ordered mtimes; Blobs[0] is the oldest.
    for (size_t I = 0; I != Blobs.size(); ++I) {
      struct timespec Times[2] = {{100000 + long(I) * 100, 0},
                                  {100000 + long(I) * 100, 0}};
      ASSERT_EQ(::utimensat(AT_FDCWD, Blobs[I].c_str(), Times, 0), 0);
      struct stat St;
      ASSERT_EQ(::stat(Blobs[I].c_str(), &St), 0);
      Total += uint64_t(St.st_size);
    }
  }

  // Budget one byte below the total: exactly the oldest must go.
  obs::MetricsRegistry Reg;
  DiskCodeCache Bounded(Dir.Path, Total - 1, &Reg);
  EXPECT_EQ(Bounded.gc(), 1u);
  EXPECT_EQ(Bounded.stats().Evictions, 1u);
  std::vector<std::string> Left = listBlobs(Dir.Path);
  EXPECT_EQ(Left.size(), 2u);
  EXPECT_EQ(std::count(Left.begin(), Left.end(), Blobs[0]), 0)
      << "GC must evict oldest-mtime first";
}

TEST(DiskCache, GcTieBreaksSameMtimeDeterministically) {
  // Regression: on second-granularity filesystems every blob written in
  // the same second ties on (MtimeSec, MtimeNsec), and the GC victim
  // then depended on readdir order + std::sort's unstable permutation.
  // The order must fall back to the path, so the same directory always
  // evicts the same blob.
  TempDir Dir;
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");
  CompileOptions Opts;
  std::vector<std::string> Blobs;
  uint64_t Total = 0;
  {
    obs::MetricsRegistry Reg;
    DiskCodeCache Unbounded(Dir.Path, 0, &Reg);
    for (int64_t K : {1, 2, 3, 4}) {
      qir::Module M;
      buildAffine(M, K);
      std::unique_ptr<CompiledModule> C = BE->compile(M, Opts);
      ASSERT_TRUE(Unbounded.store(fingerprintModule(M), *BE, *C, Opts));
    }
    Blobs = listBlobs(Dir.Path);
    ASSERT_EQ(Blobs.size(), 4u);
    // Identical mtimes down to the nanosecond: only the path can order.
    for (const std::string &B : Blobs) {
      struct timespec Times[2] = {{100000, 0}, {100000, 0}};
      ASSERT_EQ(::utimensat(AT_FDCWD, B.c_str(), Times, 0), 0);
      struct stat St;
      ASSERT_EQ(::stat(B.c_str(), &St), 0);
      Total += uint64_t(St.st_size);
    }
  }

  obs::MetricsRegistry Reg;
  DiskCodeCache Bounded(Dir.Path, Total - 1, &Reg);
  EXPECT_EQ(Bounded.gc(), 1u);
  std::vector<std::string> Left = listBlobs(Dir.Path);
  ASSERT_EQ(Left.size(), 3u);
  // listBlobs sorts, so Blobs[0] is the lexicographically-smallest path —
  // the deterministic victim under an all-ties mtime.
  EXPECT_EQ(std::count(Left.begin(), Left.end(), Blobs[0]), 0)
      << "same-mtime eviction must tie-break on path";
  for (size_t I = 1; I != Blobs.size(); ++I)
    EXPECT_EQ(std::count(Left.begin(), Left.end(), Blobs[I]), 1) << Blobs[I];
}

TEST(DiskCache, FromEnvParsing) {
  TempDir Dir;
  ::unsetenv("QCF_CODE_CACHE");
  ::unsetenv("QCF_CODE_CACHE_BYTES");
  obs::MetricsRegistry Reg;
  EXPECT_EQ(DiskCodeCache::fromEnv(&Reg), nullptr);

  ::setenv("QCF_CODE_CACHE", Dir.Path.c_str(), 1);
  std::unique_ptr<DiskCodeCache> C = DiskCodeCache::fromEnv(&Reg);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->directory(), Dir.Path);
  EXPECT_EQ(C->budgetBytes(), 0u);

  ::setenv("QCF_CODE_CACHE_BYTES", "12345", 1);
  EXPECT_EQ(DiskCodeCache::fromEnv(&Reg)->budgetBytes(), 12345u);
  ::setenv("QCF_CODE_CACHE_BYTES", "64K", 1);
  EXPECT_EQ(DiskCodeCache::fromEnv(&Reg)->budgetBytes(), 64ull << 10);
  ::setenv("QCF_CODE_CACHE_BYTES", "16M", 1);
  EXPECT_EQ(DiskCodeCache::fromEnv(&Reg)->budgetBytes(), 16ull << 20);
  ::setenv("QCF_CODE_CACHE_BYTES", "2G", 1);
  EXPECT_EQ(DiskCodeCache::fromEnv(&Reg)->budgetBytes(), 2ull << 30);

  ::unsetenv("QCF_CODE_CACHE");
  ::unsetenv("QCF_CODE_CACHE_BYTES");
}

TEST(DiskCache, InterpreterModulesSkipStore) {
  // The interpreter hands out process-local trampolines — nothing to
  // persist. The store must be skipped, counted, and harmless.
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Disk(Dir.Path, 0, &Reg);
  CachingBackend BE(createBackend("Interpreter"), 0, nullptr, &Reg, &Disk);
  qir::Module M;
  buildAffine(M, 5);
  EXPECT_EQ(BE.compile(M)->entryAs<int64_t (*)(int64_t)>("f")(4), 27);
  EXPECT_EQ(Disk.stats().StoreSkips, 1u);
  EXPECT_EQ(Disk.stats().Stores, 0u);
  EXPECT_TRUE(listBlobs(Dir.Path).empty());
}

TEST(DiskCache, ConfigKeysBlobsApart) {
  // Same module, same back-end family, different codegen config: the
  // blob stored under one config must never be served to the other.
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, 0, &Reg);
  qir::Module M;
  buildRelocModule(M);
  ModuleFingerprint Key = fingerprintModule(M);
  CompileOptions Opts;

  craneline::CranelineBackend Native;
  craneline::CranelineOptions NoCrcOpts;
  NoCrcOpts.NativeCrc32 = false;
  craneline::CranelineBackend NoCrc(NoCrcOpts);
  ASSERT_NE(Native.cacheConfig(), NoCrc.cacheConfig());

  std::unique_ptr<CompiledModule> C = Native.compile(M, Opts);
  ASSERT_TRUE(Cache.store(Key, Native, *C, Opts));

  EXPECT_EQ(Cache.load(Key, NoCrc, Opts), nullptr)
      << "a blob compiled with native crc32 must miss for the no-crc32 config";
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Cache.stats().Rejected, 0u)
      << "config mismatch is a miss, not corruption";
  EXPECT_EQ(listBlobs(Dir.Path).size(), 1u)
      << "the other config's valid blob must not be unlinked";

  // The native config still hits its own blob.
  std::shared_ptr<CompiledModule> W = Cache.load(Key, Native, Opts);
  ASSERT_NE(W, nullptr);
  checkRelocModule(*W);
}

TEST(DiskCache, ScanReportsBlobs) {
  TempDir Dir;
  obs::MetricsRegistry Reg;
  DiskCodeCache Cache(Dir.Path, 0, &Reg);
  std::unique_ptr<Backend> BE = createBackend("DirectEmit");
  auto [Key, Blob] = storeOne(Cache, *BE);

  std::vector<DiskCodeCache::BlobInfo> Infos = DiskCodeCache::scan(Dir.Path);
  ASSERT_EQ(Infos.size(), 1u);
  EXPECT_TRUE(Infos[0].Valid) << Infos[0].Error;
  EXPECT_EQ(Infos[0].Version, DiskCodeCache::FormatVersion);
  EXPECT_EQ(Infos[0].Key, Key);
  EXPECT_EQ(Infos[0].Config, BE->cacheConfig());
  EXPECT_GT(Infos[0].PayloadBytes, 0u);

  // Corrupt it: scan must report invalid without unlinking (read-only).
  ASSERT_EQ(::truncate(Blob.c_str(), 20), 0);
  Infos = DiskCodeCache::scan(Dir.Path);
  ASSERT_EQ(Infos.size(), 1u);
  EXPECT_FALSE(Infos[0].Valid);
  EXPECT_FALSE(Infos[0].Error.empty());
  EXPECT_EQ(listBlobs(Dir.Path).size(), 1u);
}
