//===- tests/ElfTest.cpp - External validation of the ELF writer ----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the MLVM ELF64 relocatable-object writer (§V-B6) against an
/// independent implementation: the object is written to disk and parsed
/// with GNU readelf/objdump. This catches structural bugs the in-process
/// JIT linker would silently tolerate (it only reads the fields it
/// needs).
///
//===----------------------------------------------------------------------===//

#include "mlvm/Mlvm.h"
#include "tests/Corpus.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <string>

using namespace qcf;
using namespace qcf::test;

namespace {

/// Runs \p Cmd and returns its stdout (empty on failure).
std::string runCommand(const std::string &Cmd) {
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return "";
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, N);
  pclose(Pipe);
  return Out;
}

bool haveTool(const char *Tool) {
  return !runCommand(std::string("command -v ") + Tool + " 2>/dev/null")
              .empty();
}

/// Compiles the corpus to an object file on disk; returns its path.
std::string writeCorpusObject() {
  Corpus C = buildCorpus();
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::cheap());
  std::vector<uint8_t> Object = BE.compileToObject(*C.M, nullptr);
  EXPECT_GT(Object.size(), 512u);
  std::string Path = ::testing::TempDir() + "qcf_elf_test.o";
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(Object.data()),
            static_cast<std::streamsize>(Object.size()));
  EXPECT_TRUE(Out.good());
  return Path;
}

} // namespace

TEST(Elf, ReadelfAcceptsHeaderAndSections) {
  if (!haveTool("readelf"))
    GTEST_SKIP() << "readelf not installed";
  std::string Path = writeCorpusObject();
  std::string Hdr = runCommand("readelf -h " + Path + " 2>&1");
  EXPECT_NE(Hdr.find("ELF64"), std::string::npos) << Hdr;
  EXPECT_NE(Hdr.find("REL (Relocatable file)"), std::string::npos) << Hdr;
  EXPECT_NE(Hdr.find("Advanced Micro Devices X86-64"), std::string::npos)
      << Hdr;

  std::string Sec = runCommand("readelf -S " + Path + " 2>&1");
  for (const char *Name : {".text", ".rela.text", ".symtab", ".strtab",
                           ".qcf.unwind", ".shstrtab"})
    EXPECT_NE(Sec.find(Name), std::string::npos) << "missing " << Name
                                                 << "\n" << Sec;
  EXPECT_EQ(Sec.find("Warning"), std::string::npos) << Sec;
}

TEST(Elf, SymbolTableListsAllFunctions) {
  if (!haveTool("readelf"))
    GTEST_SKIP() << "readelf not installed";
  std::string Path = writeCorpusObject();
  std::string Syms = runCommand("readelf -s " + Path + " 2>&1");
  // Every corpus function must be a GLOBAL FUNC defined in .text, and
  // the runtime externals must appear as UND symbols.
  Corpus C = buildCorpus();
  for (const auto &F : C.M->functions())
    EXPECT_NE(Syms.find(F->name()), std::string::npos)
        << "missing symbol " << F->name() << "\n" << Syms;
  EXPECT_NE(Syms.find("FUNC"), std::string::npos);
  EXPECT_NE(Syms.find("GLOBAL"), std::string::npos);
  EXPECT_NE(Syms.find("UND"), std::string::npos) << Syms;
}

TEST(Elf, RelocationsArePlt32AgainstRuntime) {
  if (!haveTool("readelf"))
    GTEST_SKIP() << "readelf not installed";
  std::string Path = writeCorpusObject();
  std::string Rel = runCommand("readelf -r " + Path + " 2>&1");
  // The corpus calls strings/hash-table/trap runtime functions; all
  // calls are emitted as R_X86_64_PLT32 with addend -4 (§V-A2 SmallPIC).
  EXPECT_NE(Rel.find("R_X86_64_PLT32"), std::string::npos) << Rel;
  EXPECT_NE(Rel.find("rt_trap"), std::string::npos) << Rel;
  EXPECT_NE(Rel.find("- 4"), std::string::npos) << Rel;
}

TEST(Elf, ObjdumpDisassemblesText) {
  if (!haveTool("objdump"))
    GTEST_SKIP() << "objdump not installed";
  std::string Path = writeCorpusObject();
  std::string Dis = runCommand("objdump -d " + Path + " 2>&1");
  // Disassembly must see function labels and plausible x86-64; "(bad)"
  // would indicate a mis-encoded instruction reached the object.
  EXPECT_NE(Dis.find("<arith64>:"), std::string::npos) << Dis.substr(0, 2000);
  EXPECT_NE(Dis.find("ret"), std::string::npos);
  EXPECT_EQ(Dis.find("(bad)"), std::string::npos);
}

TEST(Elf, ObjectIsDeterministic) {
  Corpus C = buildCorpus();
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::cheap());
  std::vector<uint8_t> A = BE.compileToObject(*C.M, nullptr);
  std::vector<uint8_t> B = BE.compileToObject(*C.M, nullptr);
  EXPECT_EQ(A, B);
}

TEST(Elf, OptimizedObjectAlsoValid) {
  if (!haveTool("readelf"))
    GTEST_SKIP() << "readelf not installed";
  Corpus C = buildCorpus();
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::opt());
  std::vector<uint8_t> Object = BE.compileToObject(*C.M, nullptr);
  std::string Path = ::testing::TempDir() + "qcf_elf_test_opt.o";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Object.data()),
              static_cast<std::streamsize>(Object.size()));
  }
  std::string Hdr = runCommand("readelf -h " + Path + " 2>&1");
  EXPECT_NE(Hdr.find("ELF64"), std::string::npos) << Hdr;
  std::string Dis = runCommand("objdump -d " + Path + " 2>&1");
  EXPECT_EQ(Dis.find("(bad)"), std::string::npos);
}
