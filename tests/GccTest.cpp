//===- tests/GccTest.cpp - GCC/C back-end tests ----------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "gccjit/Gccjit.h"
#include "tests/Corpus.h"
#include "tests/DiffHarness.h"
#include <cstdlib>
#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace qcf;
using namespace qcf::test;

TEST(Gcc, CorpusDifferentialAgainstInterpreter) {
  gccjit::GccBackend B;
  runCorpusDifferential(B);
}

TEST(Gcc, GeneratedCContainsExpectedShapes) {
  Corpus C = buildCorpus();
  std::string Source = gccjit::generateC(*C.M);
  // Gotos for branches, plain variables for SSA values, hard-wired
  // runtime addresses (§IV).
  EXPECT_NE(Source.find("goto bb"), std::string::npos);
  EXPECT_NE(Source.find("uint64_t v"), std::string::npos);
  EXPECT_NE(Source.find("qcf_rt_str_eq"), std::string::npos);
  EXPECT_NE(Source.find("__builtin_add_overflow"), std::string::npos);
  EXPECT_NE(Source.find("crc32di"), std::string::npos);
}

TEST(Gcc, PhaseTimesArePopulated) {
  qir::Module M;
  qir::Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), B.constInt(Type::I64, 5)));
  gccjit::GccBackend BE;
  auto Compiled = BE.compile(M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t)>("f");
  EXPECT_EQ(Fn(37), 42);
  const gccjit::GccPhaseTimes &T = BE.lastPhaseTimes();
  EXPECT_GT(T.GenerateSec, 0.0);
  EXPECT_GT(T.CompileSec, 0.0);
  EXPECT_GT(T.LoadSec, 0.0);
  // The external compile dominates by far (§IV).
  EXPECT_GT(T.CompileSec, T.GenerateSec);
}

TEST(Gcc, HonorsTmpdirOverride) {
  // The back-end's scratch directory must land under $TMPDIR when set
  // (per-user temp roots, tmpfs CI sandboxes), not hard-coded /tmp.
  std::string Root = "/tmp/qcfgcctestXXXXXX";
  ASSERT_NE(::mkdtemp(Root.data()), nullptr);
  const char *OldTmp = ::getenv("TMPDIR");
  std::string Saved = OldTmp ? OldTmp : "";
  ::setenv("TMPDIR", (Root + "/").c_str(), 1); // Trailing slash: must be handled.

  qir::Module M;
  qir::Function *F = M.createFunction("h", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), B.constInt(Type::I64, 1)));
  gccjit::GccOptions Opts;
  Opts.KeepTempFiles = true; // Leave the scratch dir so we can observe it.
  gccjit::GccBackend BE(Opts);
  auto Compiled = BE.compile(M);
  EXPECT_EQ(Compiled->entryAs<int64_t (*)(int64_t)>("h")(41), 42);

  // Exactly the kept qcfgcc* scratch dir must exist under the override.
  std::vector<std::string> Scratch;
  DIR *D = ::opendir(Root.c_str());
  ASSERT_NE(D, nullptr);
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("qcfgcc", 0) == 0)
      Scratch.push_back(Root + "/" + Name);
  }
  ::closedir(D);
  EXPECT_EQ(Scratch.size(), 1u) << "scratch dir must be under $TMPDIR";

  if (OldTmp)
    ::setenv("TMPDIR", Saved.c_str(), 1);
  else
    ::unsetenv("TMPDIR");
  for (const std::string &S : Scratch) {
    for (const char *File : {"/m.c", "/m.so", "/gcc.log"})
      ::unlink((S + File).c_str());
    ::rmdir(S.c_str());
  }
  ::rmdir(Root.c_str());
}

TEST(Gcc, TimeReportCaptured) {
  qir::Module M;
  qir::Function *F = M.createFunction("g", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.mul(F->paramValue(0), B.constInt(Type::I64, 3)));
  gccjit::GccOptions Opts;
  Opts.ExtraFlags = "-ftime-report";
  gccjit::GccBackend BE(Opts);
  auto Compiled = BE.compile(M);
  EXPECT_NE(BE.lastPhaseTimes().TimeReport.find("TOTAL"),
            std::string::npos);
}
