//===- tests/InterpTest.cpp - Interpreter back-end tests -------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "runtime/Runtime.h"
#include "tests/Corpus.h"
#include "tests/DiffHarness.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::test;

namespace {

/// Compiles one module with the interpreter and returns (module, compiled).
struct InterpFixture {
  qir::Module M;
  std::unique_ptr<backend::CompiledModule> Compiled;

  void compile() {
    interp::InterpBackend B;
    Compiled = B.compile(M);
  }

  template <typename FnT> FnT entry(const std::string &Name) {
    return Compiled->entryAs<FnT>(Name);
  }
};

} // namespace

TEST(Interp, StraightLineArithmetic) {
  InterpFixture Fx;
  qir::Function *F =
      Fx.M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  ValueId R = B.add(B.mul(F->paramValue(0), F->paramValue(1)),
                    B.constInt(Type::I64, 7));
  B.ret(R);
  Fx.compile();
  auto *Fn = Fx.entry<int64_t (*)(int64_t, int64_t)>("f");
  EXPECT_EQ(Fn(6, 7), 49);
  EXPECT_EQ(Fn(-3, 5), -8);
}

TEST(Interp, LoopSumMatchesClosedForm) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t)>("loopsum");
  // sum i^2, i in [0, n)
  EXPECT_EQ(Fn(0), 0);
  EXPECT_EQ(Fn(1), 0);
  EXPECT_EQ(Fn(10), 285);
  EXPECT_EQ(Fn(1000), 332833500);
}

TEST(Interp, PhiSwapParallelMoves) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t)>("phiswap");
  // After n swaps of (1, 1000000): even n -> (1,1000000), odd -> swapped.
  // Result = 3*a - b.
  EXPECT_EQ(Fn(0), 3 * 1 - 1000000);
  EXPECT_EQ(Fn(1), 3 * 1000000 - 1);
  EXPECT_EQ(Fn(2), 3 * 1 - 1000000);
  EXPECT_EQ(Fn(7), 3 * 1000000 - 1);
}

TEST(Interp, TrapsOnOverflow) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t, int64_t)>("traps");

  rt::TrapCode Code = rt::runWithTrapGuard([&] { Fn(10, 20); });
  EXPECT_EQ(Code, rt::TrapCode::None);

  Code = rt::runWithTrapGuard([&] { Fn(INT64_MAX, 1); });
  EXPECT_EQ(Code, rt::TrapCode::Overflow);
}

TEST(Interp, TrapsOnDivByZero) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t, int64_t)>("divtrap");
  EXPECT_EQ(Fn(100, 7), 14);
  rt::TrapCode Code = rt::runWithTrapGuard([&] { Fn(5, 0); });
  EXPECT_EQ(Code, rt::TrapCode::DivByZero);
}

TEST(Interp, HashMatchesHostPrimitives) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<uint64_t (*)(uint64_t)>("hash");
  uint64_t V = 42;
  uint64_t H1 = crc32u64(0x2545f4914f6cdd1dull, V);
  uint64_t H2 = crc32u64(0xb9935cc9fab5b271ull, V);
  uint64_t Pack = (H1 << 32) | H2;
  uint64_t Rot = (Pack >> 32) | (Pack << 32);
  uint64_t Expect = longMulFold(Rot, 0x9e3779b97f4a7c15ull);
  EXPECT_EQ(Fn(42), Expect);
}

TEST(Interp, RuntimeCallsWithStrings) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<uint64_t (*)(uint64_t, uint64_t, uint64_t,
                                            uint64_t)>("strings");
  rt::StringVal A = rt::StringVal::makeRef("hello", 5);
  // eq("hello","hello") + cmp(==0) + (hash ^ prefix(1))
  uint64_t R = Fn(A.lo(), A.hi(), A.lo(), A.hi());
  uint64_t Expect = 1 + 0 + (rt::stringHash(A) ^ 1);
  EXPECT_EQ(R, Expect);
}

TEST(Interp, FloatConversionRoundTrip) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t, int64_t)>("floats");
  // a=3,b=4: s=7, p=21, d=6, df=6-(-4)=10 -> not > 100 -> 10 + 0
  EXPECT_EQ(Fn(3, 4), 10);
}

TEST(Interp, WidthsNarrowTypes) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  auto Compiled = B.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(uint64_t)>("widths");
  // v = 0x...8687: i8 = 0x87 sext = -121; i16 = 0x8687 zext = 34439;
  // i32 = 0x84858687 sext = -2071624057.
  EXPECT_EQ(Fn(0x8081828384858687ull),
            -121 + 34439 + static_cast<int32_t>(0x84858687));
}

TEST(Interp, I128ArithmeticViaEntry) {
  InterpFixture Fx;
  qir::Function *F =
      Fx.M.createFunction("mul128", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  ValueId X = B.sext(Type::I128, F->paramValue(0));
  ValueId Y = B.sext(Type::I128, F->paramValue(1));
  ValueId P = B.mul(X, Y);
  ValueId Hi = B.extractHi(P);
  B.ret(Hi);
  Fx.compile();
  auto *Fn = Fx.entry<uint64_t (*)(int64_t, int64_t)>("mul128");
  // (2^40) * (2^40) = 2^80: hi lane = 2^16.
  EXPECT_EQ(Fn(1ll << 40, 1ll << 40), 1ull << 16);
}

TEST(Interp, InterpEntryAsRuntimeCallback) {
  // A comparator compiled as an interpreted function, passed to rt_sort.
  InterpFixture Fx;
  rt::RuntimeSyms Syms = rt::declareRuntime(Fx.M);
  (void)Syms;
  qir::Function *F =
      Fx.M.createFunction("cmp_i64", {Type::Ptr, Type::Ptr}, Type::I64);
  Builder B(F);
  ValueId A = B.load(Type::I64, F->paramValue(0));
  ValueId Bv = B.load(Type::I64, F->paramValue(1));
  ValueId Lt = B.icmp(CmpPred::SLt, A, Bv);
  ValueId Gt = B.icmp(CmpPred::SGt, A, Bv);
  ValueId R = B.sub(B.zext(Type::I64, Gt), B.zext(Type::I64, Lt));
  B.ret(R);
  Fx.compile();
  void *Cmp = Fx.Compiled->entry("cmp_i64");
  ASSERT_NE(Cmp, nullptr);

  int64_t Data[] = {5, -2, 9, 0, 3, 3, -7};
  rt_sort(Data, 7, sizeof(int64_t), Cmp);
  int64_t Expect[] = {-7, -2, 0, 3, 3, 5, 9};
  for (int I = 0; I != 7; ++I)
    EXPECT_EQ(Data[I], Expect[I]);
}

TEST(Interp, CorpusSelfConsistency) {
  // The interpreter must agree with itself across two compilations (guards
  // against nondeterministic translation).
  interp::InterpBackend B;
  runCorpusDifferential(B);
}

TEST(Interp, TranslationCountsAsCompileTime) {
  Corpus C = buildCorpus();
  interp::InterpBackend B;
  TimeTrace Trace;
  auto Compiled = B.compile(*C.M, backend::CompileOptions(&Trace));
  EXPECT_GT(Trace.totalNs("interp.translate"), 0u);
}
