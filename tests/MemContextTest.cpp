//===- tests/MemContextTest.cpp - Per-compile allocation lifetimes --------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifetime tests for the per-compile MemContext (DESIGN.md "Compilation
/// memory"): the Heap-mode pipeline must free every node it allocates
/// (the pool counters double as a leak detector), Arena mode must survive
/// a mid-pipeline abandonment — the leak-on-error class the refactor
/// fixes: a compile that stops after a failed MIR verification used to
/// leak every node the aborted pass had not hand-deleted — and both modes
/// must produce identical machine code.
///
/// The Arena abandonment tests are additionally guarded by the
/// AddressSanitizer/LeakSanitizer CI job (QCF_SANITIZE=address): under
/// LSan, any node the arena failed to cover would be reported when the
/// test process exits.
///
//===----------------------------------------------------------------------===//

#include "mlvm/Isel.h"
#include "mlvm/Mir.h"
#include "mlvm/MirPasses.h"
#include "mlvm/MirVerify.h"
#include "mlvm/Mlvm.h"
#include "mlvm/Passes.h"
#include "mlvm/Translate.h"
#include "support/MemContext.h"
#include "tests/Corpus.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::test;

namespace {

/// Runs the IR-level half of the mlvm pipeline (translate, opt passes,
/// isel, machine passes) against an explicit MemContext and returns the
/// MIR; nullptr Out parameters skip stages.
std::unique_ptr<mlvm::MirFunction> runPipeline(const qir::Function &F,
                                               MemContext &Mem,
                                               bool Optimize) {
  auto IR = mlvm::translateToMlvm(F, mlvm::D128Mode::SplitPairs, Mem.ir());
  if (Optimize)
    mlvm::runOptPasses(*IR, nullptr, /*ReuseAnalyses=*/false);
  mlvm::runCodeGenPrepScans(*IR, nullptr);
  mlvm::IselStats Stats;
  auto MIR = mlvm::selectInstructions(*IR, mlvm::IselKind::Dag, nullptr,
                                      &Stats, /*Verify=*/false, &Mem.mir());
  mlvm::runPhiElimination(*MIR, nullptr);
  mlvm::runTwoAddress(*MIR, nullptr);
  return MIR;
}

} // namespace

TEST(MemContext, HeapModePipelineFreesEveryNode) {
  // In Heap mode the pool counters are a leak detector: after the full
  // per-function pipeline (including the passes that delete replaced
  // instructions) and destruction of IR + MIR, every allocation must have
  // a matching free. This covers the DCE/CSE/SimplifyCFG delete paths and
  // the MIR passes' instruction replacement.
  Corpus C = buildCorpus();
  MemContext Mem(AllocMode::Heap);
  for (const auto &F : C.M->functions()) {
    auto MIR = runPipeline(*F, Mem, /*Optimize=*/true);
    ASSERT_NE(MIR, nullptr);
    MIR.reset();
    // runPipeline's IR died at scope exit inside the call.
    EXPECT_EQ(Mem.ir().liveObjects(), 0) << F->name();
    EXPECT_EQ(Mem.mir().liveObjects(), 0) << F->name();
  }
}

TEST(MemContext, ArenaModeAbandonsFailedVerifyWithoutLeak) {
  // The leak-on-error regression: compile a function up to MIR, corrupt
  // the MIR so verification fails, and abandon the whole graph exactly
  // where a driver would stop — no destructor walk, no hand-written
  // deletes. Arena ownership must cover every node (LSan in the ASan CI
  // job asserts the "no leak" half; the counters assert the arena saw
  // every allocation).
  Corpus C = buildCorpus();
  MemContext Mem(AllocMode::Arena);
  const auto &F = *C.M->functions().front();

  auto MIR = runPipeline(F, Mem, /*Optimize=*/false);
  ASSERT_NE(MIR, nullptr);
  ASSERT_FALSE(MIR->Blocks.empty());

  // Corrupt: drop the terminator of the first block. The stage verifier
  // must reject the function.
  auto &Insts = MIR->Blocks.front()->Insts;
  ASSERT_FALSE(Insts.empty());
  MIR->destroyInstr(Insts.back()); // no-op in Arena mode, by design
  Insts.pop_back();
  std::string Err = mlvm::verifyMir(*MIR, mlvm::MirStage::TwoAddr, "test");
  EXPECT_FALSE(Err.empty());

  // Abandon mid-pass: destroy the MirFunction wrapper (its node graph
  // stays in the arena) and recycle the compile's memory. Nothing here
  // runs a node destructor; LSan must stay silent.
  EXPECT_GT(Mem.ir().numAllocs(), 0u);
  EXPECT_GT(Mem.mir().numAllocs(), 0u);
  MIR.reset();
  Mem.clearFunctionMemory();
}

TEST(MemContext, ArenaModeUnwindMidPassLeaksNothing) {
  // Same class of bug, via the exception path: a pass that throws after
  // allocating instructions must not leak them. In Heap mode this exact
  // pattern leaks (which is why Heap stays confined to the paper-faithful
  // benches); in Arena mode the context owns the orphans.
  Corpus C = buildCorpus();
  MemContext Mem(AllocMode::Arena);
  const auto &F = *C.M->functions().front();
  try {
    auto IR =
        mlvm::translateToMlvm(F, mlvm::D128Mode::SplitPairs, Mem.ir());
    // Detached instruction: created but never appended to a block — the
    // worst case for manual ownership.
    (void)IR->createInst(mlvm::IROp::FreezeNop, qir::Type::I64);
    throw std::runtime_error("simulated mid-pass failure");
  } catch (const std::runtime_error &) {
  }
  Mem.clearFunctionMemory();
  // A second compile reuses the recycled slabs and still works.
  auto MIR = runPipeline(F, Mem, /*Optimize=*/false);
  EXPECT_NE(MIR, nullptr);
}

TEST(MemContext, HeapAndArenaProduceIdenticalObjects) {
  // The allocation mode is a pure memory-management ablation: the emitted
  // ELF object must be byte-identical in both modes.
  Corpus C = buildCorpus();
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::cheap());
  MemContext Heap(AllocMode::Heap), Arena(AllocMode::Arena);
  std::vector<uint8_t> A =
      BE.compileToObject(*C.M, nullptr, VerifyOptions::fromEnv(), &Heap);
  std::vector<uint8_t> B =
      BE.compileToObject(*C.M, nullptr, VerifyOptions::fromEnv(), &Arena);
  EXPECT_EQ(A, B);
  // Arena mode never destroys nodes per object (deallocate() of container
  // buffers still counts as a free, destroy() does not), so the counters
  // report a surplus of allocations.
  EXPECT_GT(Arena.ir().liveObjects(), 0);
  // Heap mode balanced exactly.
  EXPECT_EQ(Heap.ir().liveObjects(), 0);
  EXPECT_EQ(Heap.mir().liveObjects(), 0);
}

TEST(MemContext, ArenaSteadyStateReusesSlabs) {
  // After the first function, per-function pools should reach steady
  // state: clearFunctionMemory keeps the largest slab, so repeated
  // compiles of the same module stop growing the arena.
  Corpus C = buildCorpus();
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::cheap());
  MemContext Mem(AllocMode::Arena);
  BE.compileToObject(*C.M, nullptr, VerifyOptions::fromEnv(), &Mem);
  uint64_t Bytes1 = Mem.ir().bytesAllocated() + Mem.mir().bytesAllocated();
  BE.compileToObject(*C.M, nullptr, VerifyOptions::fromEnv(), &Mem);
  uint64_t Bytes2 = Mem.ir().bytesAllocated() + Mem.mir().bytesAllocated();
  // Telemetry is cumulative: the second compile allocated the same volume
  // (deterministic pipeline) out of recycled slabs.
  EXPECT_EQ(Bytes2 - Bytes1, Bytes1);
}
