//===- tests/MlvmTest.cpp - MLVM back-end tests ----------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "mlvm/JitLink.h"
#include "mlvm/Mc.h"
#include "mlvm/Mlvm.h"
#include "tests/Corpus.h"
#include "tests/DiffHarness.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::test;
using mlvm::D128Mode;
using mlvm::IselKind;
using mlvm::MlvmBackend;
using mlvm::MlvmOptions;

TEST(Mlvm, CheapCorpusDifferential) {
  MlvmBackend B(MlvmOptions::cheap());
  runCorpusDifferential(B);
}

TEST(Mlvm, OptCorpusDifferential) {
  MlvmBackend B(MlvmOptions::opt());
  runCorpusDifferential(B);
}

TEST(Mlvm, SelDagCheapCorpusDifferential) {
  MlvmOptions O;
  O.Isel = IselKind::Dag;
  MlvmBackend B(O);
  runCorpusDifferential(B);
}

TEST(Mlvm, GlobalIselCorpusDifferential) {
  MlvmOptions O;
  O.Isel = IselKind::Global;
  MlvmBackend B(O);
  runCorpusDifferential(B);
}

TEST(Mlvm, StructPairsCorpusDifferential) {
  MlvmOptions O;
  O.Mode = D128Mode::StructPairs;
  MlvmBackend B(O);
  runCorpusDifferential(B);
}

TEST(Mlvm, OptStructPairsCorpusDifferential) {
  MlvmOptions O = MlvmOptions::opt();
  O.Mode = D128Mode::StructPairs;
  MlvmBackend B(O);
  runCorpusDifferential(B);
}

TEST(Mlvm, FastIselFallbackCensus) {
  Corpus C = buildCorpus();
  MlvmBackend B(MlvmOptions::cheap());
  auto Compiled = B.compile(*C.M);
  const mlvm::IselStats &S = B.lastIselStats();
  // The corpus contains i128 arithmetic and d128-typed calls: both classes
  // of fallback must be observed (§V-B3).
  EXPECT_GT(S.Fallbacks.Int128, 0u);
  EXPECT_GT(S.Fallbacks.CallsAndIntrinsics, 0u);
  EXPECT_GT(S.Fallbacks.total(), 0u);
}

TEST(Mlvm, StructPairsCauseMoreFallbacks) {
  // A function that only passes 16-byte string values *into* runtime
  // calls: with split pairs every value fits one register and FastISel
  // selects everything; with struct pairs the pack triggers a fallback
  // (§V-A2 item 3).
  auto BuildModule = [] {
    auto M = std::make_unique<qir::Module>();
    rt::RuntimeSyms Syms = rt::declareRuntime(*M);
    qir::Function *F = M->createFunction(
        "streq", {Type::I64, Type::I64, Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    ValueId S1 = B.packD128(F->paramValue(0), F->paramValue(1));
    ValueId S2 = B.packD128(F->paramValue(2), F->paramValue(3));
    B.ret(B.call(Syms.StrEq, {S1, S2}));
    return M;
  };

  auto M1 = BuildModule();
  MlvmBackend Split(MlvmOptions::cheap());
  Split.compile(*M1);
  uint64_t SplitFallbacks = Split.lastIselStats().Fallbacks.total();

  auto M2 = BuildModule();
  MlvmOptions O;
  O.Mode = D128Mode::StructPairs;
  MlvmBackend Structs(O);
  Structs.compile(*M2);
  uint64_t StructFallbacks = Structs.lastIselStats().Fallbacks.total();

  EXPECT_EQ(SplitFallbacks, 0u);
  EXPECT_GT(StructFallbacks, 0u);
}

TEST(Mlvm, CompileTimeBreakdownStages) {
  Corpus C = buildCorpus();
  MlvmBackend B(MlvmOptions::cheap());
  TimeTrace Trace;
  auto Compiled = B.compile(*C.M, backend::CompileOptions(&Trace));
  EXPECT_GT(Trace.totalNs("mlvm.irgen"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.prep"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.isel"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.ra.fast"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.mir.phielim"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.mir.twoaddress"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.mir.pei"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.asmprinter"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.objectwriter"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.link"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.irdestroy"), 0u);
}

TEST(Mlvm, OptBreakdownHasOptPasses) {
  Corpus C = buildCorpus();
  MlvmBackend B(MlvmOptions::opt());
  TimeTrace Trace;
  auto Compiled = B.compile(*C.M, backend::CompileOptions(&Trace));
  EXPECT_GT(Trace.totalNs("mlvm.opt.cse"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.opt.licm"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.opt.dce"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.ra.greedy"), 0u);
  // The dominator tree is computed twice (§V-B2).
  const TimeRecord &DT = Trace.records().at("mlvm.opt.domtree");
  EXPECT_GE(DT.Count, 2u * C.M->functions().size());
}

TEST(Mlvm, GlobalIselHasFourStages) {
  Corpus C = buildCorpus();
  MlvmOptions O;
  O.Isel = IselKind::Global;
  MlvmBackend B(O);
  TimeTrace Trace;
  auto Compiled = B.compile(*C.M, backend::CompileOptions(&Trace));
  EXPECT_GT(Trace.totalNs("mlvm.isel.gisel.irtranslator"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.isel.gisel.legalizer"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.isel.gisel.regbankselect"), 0u);
  EXPECT_GT(Trace.totalNs("mlvm.isel.gisel.instructionselect"), 0u);
}

TEST(Mlvm, ElfObjectIsWellFormed) {
  Corpus C = buildCorpus();
  // Build the object directly for structural checks.
  MlvmBackend B(MlvmOptions::cheap());
  auto Compiled = B.compile(*C.M); // sanity: links fine
  // Basic ELF invariants via a tiny reparse: magic + section count.
  mlvm::McModule Mc;
  // (Reuse of internals is covered by the full pipeline; here we check
  // the serialized object of a minimal module.)
  qir::Module M2;
  rt::declareRuntime(M2);
  qir::Function *F = M2.createFunction("tiny", {Type::I64}, Type::I64);
  Builder Bld(F);
  Bld.ret(Bld.add(F->paramValue(0), Bld.constInt(Type::I64, 1)));
  auto IR = mlvm::translateToMlvm(*F, D128Mode::SplitPairs);
  auto MIR = mlvm::selectInstructions(*IR, IselKind::Fast, nullptr, nullptr);
  mlvm::runPhiElimination(*MIR, nullptr);
  mlvm::runTwoAddress(*MIR, nullptr);
  auto RA = mlvm::runRegAlloc(*MIR, mlvm::RegAllocKind::Fast, nullptr);
  auto Frame = mlvm::runPrologEpilog(*MIR, RA, nullptr);
  mlvm::printFunction(*MIR, Frame, &Mc, nullptr);
  std::vector<uint8_t> Obj = mlvm::writeElfObject(Mc, nullptr);
  ASSERT_GT(Obj.size(), 64u);
  EXPECT_EQ(Obj[0], 0x7f);
  EXPECT_EQ(Obj[1], 'E');
  EXPECT_EQ(Obj[2], 'L');
  EXPECT_EQ(Obj[3], 'F');
  EXPECT_EQ(Obj[4], 2); // 64-bit
  // Link it and run.
  auto Image = mlvm::jitLink(Obj, nullptr);
  auto *Fn = reinterpret_cast<int64_t (*)(int64_t)>(Image->lookup("tiny"));
  ASSERT_NE(Fn, nullptr);
  EXPECT_EQ(Fn(41), 42);
}

TEST(Mlvm, CallsGoThroughPlt) {
  // A module with runtime calls must get PLT entries (SmallPIC, §V-A2).
  Corpus C = buildCorpus();
  MlvmBackend B(MlvmOptions::cheap());
  TimeTrace Trace;
  auto Compiled = B.compile(*C.M, backend::CompileOptions(&Trace));
  EXPECT_GT(Trace.totalNs("mlvm.link.phase2"), 0u);
  // Functional check: the strings corpus case calls rt_str_* through the
  // PLT and must still compute correct results (covered by differential
  // tests); here we just ensure the entry exists.
  EXPECT_NE(Compiled->entry("strings"), nullptr);
}

TEST(Mlvm, TargetMachineCachedPerThread) {
  mlvm::TargetMachine *A = mlvm::acquireTargetMachine(true);
  mlvm::TargetMachine *B = mlvm::acquireTargetMachine(true);
  EXPECT_EQ(A, B);
  EXPECT_GE(B->FunctionLevelOverrides, 2u);
  EXPECT_FALSE(A->Features.empty());
  mlvm::TargetMachine *Fresh = mlvm::acquireTargetMachine(false);
  EXPECT_NE(Fresh, A);
  delete Fresh;
}

namespace {
class MlvmProperty : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(MlvmProperty, MatchesInterpreterOnRandomFunctions) {
  // Rotate configurations across seeds.
  MlvmOptions O;
  switch (GetParam() % 4) {
  case 0:
    O = MlvmOptions::cheap();
    break;
  case 1:
    O = MlvmOptions::opt();
    break;
  case 2:
    O.Isel = IselKind::Global;
    break;
  default:
    O = MlvmOptions::opt();
    O.Mode = D128Mode::StructPairs;
    break;
  }
  MlvmBackend B(O);
  runRandomDifferentialFor(B, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlvmProperty,
                         ::testing::Range<uint64_t>(0, 40));

TEST(Mlvm, ReuseAnalysesPreservesSemantics) {
  mlvm::MlvmOptions O = mlvm::MlvmOptions::opt();
  O.ReuseAnalyses = true;
  mlvm::MlvmBackend BE(O);
  test::runCorpusDifferential(BE);
}

TEST(Mlvm, DagPhiIncomingCombinedToConstant) {
  // Regression: a phi incoming whose defining instruction the DAG
  // combiner replaced with a *constant* (here `and i32 C, C` -> C) must
  // be materialized in the predecessor, not read from the replacement's
  // never-defined vreg.
  qir::Module M;
  qir::Function *F = M.createFunction("f", {qir::Type::I64}, qir::Type::I64);
  Builder B(F);
  ValueId C7 = B.constInt(Type::I32, 7);
  ValueId Init = B.and_(C7, C7); // Combines to the constant 7.
  ValueId Zero = B.constInt(Type::I64, 0);
  ValueId Lim = B.constInt(Type::I64, 8);
  ValueId One = B.constInt(Type::I64, 1);
  BlockId H = B.createBlock(), Body = B.createBlock(), E = B.createBlock();
  B.br(H);
  B.startBlock(H);
  ValueId I = B.phi(Type::I64, 2);
  ValueId Acc = B.phi(Type::I32, 2);
  ValueId Cmp = B.icmp(CmpPred::SLt, I, Lim);
  B.condBr(Cmp, Body, E);
  B.startBlock(Body);
  ValueId AccN = B.add(Acc, C7);
  ValueId IN = B.add(I, One);
  B.setPhiIncoming(I, 0, 0, Zero);
  B.setPhiIncoming(I, 1, Body, IN);
  B.setPhiIncoming(Acc, 0, 0, Init);
  B.setPhiIncoming(Acc, 1, Body, AccN);
  B.br(H);
  B.startBlock(E);
  B.ret(B.zext(Type::I64, Acc));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  for (mlvm::IselKind K :
       {mlvm::IselKind::Fast, mlvm::IselKind::Dag, mlvm::IselKind::Global}) {
    for (bool Opt : {false, true}) {
      mlvm::MlvmOptions O;
      O.Optimize = Opt;
      O.Isel = K;
      mlvm::MlvmBackend BE(O);
      auto Compiled = BE.compile(M);
      auto *Fn = Compiled->entryAs<uint64_t (*)(uint64_t)>("f");
      EXPECT_EQ(Fn(0), 63u) << "isel=" << static_cast<int>(K)
                            << " opt=" << Opt;
    }
  }
}

TEST(Mlvm, PltEntriesSharedAcrossCallers) {
  // SmallPIC builds one GOT+PLT per module (§V-A2): two functions
  // calling the same runtime symbol share one PLT entry.
  qir::Module M;
  qir::SymbolId Crc = M.declareRuntime(
      "rt_crc32", Type::I64, {Type::I64, Type::I64},
      rt::runtimeSymbolAddress("rt_crc32"));
  for (const char *Name : {"f1", "f2"}) {
    qir::Function *F =
        M.createFunction(Name, {Type::I64, Type::I64}, Type::I64);
    Builder B(F);
    B.ret(B.call(Crc, {F->paramValue(0), F->paramValue(1)}));
  }
  ASSERT_EQ(qir::verify(M), std::nullopt);

  MlvmBackend BE(MlvmOptions::cheap());
  std::vector<uint8_t> Obj = BE.compileToObject(M, nullptr);
  auto Image = mlvm::jitLink(Obj, nullptr);
  // One entry for rt_crc32 shared by both callers, plus the always-
  // present rt_trap used by trap stubs.
  EXPECT_EQ(Image->PltEntries, 2u);

  auto *F1 = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(
      Image->lookup("f1"));
  auto *F2 = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(
      Image->lookup("f2"));
  ASSERT_NE(F1, nullptr);
  ASSERT_NE(F2, nullptr);
  EXPECT_EQ(F1(1, 2), F2(1, 2));
  EXPECT_EQ(F1(1, 2), rt::runtimeSymbolAddress("rt_crc32")
                          ? reinterpret_cast<uint64_t (*)(uint64_t,
                                                          uint64_t)>(
                                rt::runtimeSymbolAddress("rt_crc32"))(1, 2)
                          : 0u);
}

TEST(Mlvm, LinkerWithoutCallsHasOnlyTrapPlt) {
  qir::Module M;
  qir::Function *F = M.createFunction("pure", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.mul(F->paramValue(0), B.constInt(Type::I64, 3)));
  MlvmBackend BE(MlvmOptions::cheap());
  std::vector<uint8_t> Obj = BE.compileToObject(M, nullptr);
  auto Image = mlvm::jitLink(Obj, nullptr);
  // Only the always-present rt_trap entry; no other externals.
  EXPECT_EQ(Image->PltEntries, 1u);
  EXPECT_EQ(Image->lookup("nonexistent"), nullptr);
  auto *Fn =
      reinterpret_cast<int64_t (*)(int64_t)>(Image->lookup("pure"));
  EXPECT_EQ(Fn(14), 42);
}
