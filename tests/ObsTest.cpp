//===- tests/ObsTest.cpp - Observability layer tests -----------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and concurrency tests for src/obs: the metrics registry (atomic
/// hot path, snapshot/merge), the Perfetto trace sink (multi-threaded
/// recording, export, JSON validation), the ScopeSink hook that turns
/// TimeTraceScopes into timeline slices, and the registry-backed stats
/// views of CachingBackend and CompileService. Built as its own binary so
/// the TSan CI job can run it (CTest label "obs").
///
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/CompileService.h"
#include "backend/Registry.h"
#include "obs/Obs.h"
#include "qir/Builder.h"
#include "support/MemContext.h"
#include <gtest/gtest.h>
#include <thread>

using namespace qcf;
using namespace qcf::qir;

namespace {

/// A one-function module `f(x) = x + k` — enough to drive real compiles.
qir::Module makeModule(int64_t K) {
  qir::Module M;
  qir::Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), B.constInt(Type::I64, K)));
  return M;
}

} // namespace

TEST(ObsMetrics, CounterGaugeBasics) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("c");
  C.inc();
  C.add(4);
  C.sub(1);
  EXPECT_EQ(C.value(), 4u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&Reg.counter("c"), &C);

  obs::Gauge &G = Reg.gauge("g");
  G.set(7);
  G.add(-2);
  EXPECT_EQ(G.value(), 5);
  G.updateMax(3); // lower: no change
  EXPECT_EQ(G.value(), 5);
  G.updateMax(11);
  EXPECT_EQ(G.value(), 11);
}

TEST(ObsMetrics, ConcurrentCountersAreExact) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("hot");
  obs::Histogram &H = Reg.histogram("lat");
  constexpr unsigned Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&, T] {
      for (unsigned I = 0; I != PerThread; ++I) {
        C.inc();
        H.observe(T * 1000 + I);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread);
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, uint64_t(Threads) * PerThread);
  EXPECT_EQ(S.MinNs, 0u);
  EXPECT_EQ(S.MaxNs, uint64_t(Threads - 1) * 1000 + PerThread - 1);
}

TEST(ObsMetrics, SnapshotMergeAndPrefixSum) {
  obs::MetricsRegistry A, B;
  A.counter("x.a").inc(2);
  A.gauge("depth").set(5);
  A.histogram("h").observe(100);
  B.counter("x.b").inc(3);
  B.counter("y").inc(1);
  B.gauge("depth").set(9);
  B.histogram("h").observe(50);

  obs::MetricsSnapshot S = A.snapshot();
  S.merge(B.snapshot());
  EXPECT_EQ(S.counter("x.a"), 2u);
  EXPECT_EQ(S.counter("x.b"), 3u);
  EXPECT_EQ(S.counterSumWithPrefix("x."), 5u);
  EXPECT_EQ(S.counterSumWithPrefix(""), 6u);
  EXPECT_EQ(S.gauge("depth"), 9); // gauges: last write wins
  const obs::HistogramSnapshot *H = S.histogram("h");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count, 2u);
  EXPECT_EQ(H->MinNs, 50u);
  EXPECT_EQ(H->MaxNs, 100u);
}

TEST(ObsMetrics, ResetZeroesInPlace) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("c");
  obs::Histogram &H = Reg.histogram("h");
  C.inc(5);
  H.observe(10);
  Reg.reset();
  EXPECT_EQ(C.value(), 0u); // same reference, zeroed
  EXPECT_EQ(H.snapshot().Count, 0u);
  H.observe(3);
  EXPECT_EQ(H.snapshot().MinNs, 3u); // min sentinel restored by reset
}

TEST(ObsMetrics, RenderJsonIsWellFormedEnough) {
  obs::MetricsRegistry Reg;
  Reg.counter("a\"quoted\"").inc();
  Reg.histogram("h").observe(42);
  std::string J = Reg.snapshot().renderJson();
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(J.find("\"p50_ns\""), std::string::npos);
}

TEST(ObsTrace, MultiThreadedRecordingExportsValidJson) {
  obs::TraceSink Sink;
  constexpr unsigned Threads = 4, Events = 200;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&] {
      for (unsigned I = 0; I != Events; ++I) {
        // Real [start, now) spans: consecutive slices on one thread can
        // touch but never partially overlap, which nesting validation
        // would reject.
        uint64_t Start = nowNs();
        Sink.completeEvent("work", "test", Start, nowNs() - Start);
      }
      Sink.instantEvent("done", "test");
      Sink.counterEvent("progress", Events);
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Sink.numEvents(), Threads * (Events + 2));
  std::string Err;
  EXPECT_TRUE(obs::validateTraceJson(Sink.exportJson(), &Err)) << Err;
  Sink.clear();
  EXPECT_EQ(Sink.numEvents(), 0u);
}

TEST(ObsTrace, ScopeSinkBindingCapturesTimeTraceScopes) {
  obs::TraceSink Sink;
  {
    ScopeSinkBinding Bind(&Sink);
    // No TimeTrace attached: the scope still reaches the sink.
    TimeTraceScope Outer(nullptr, "outer");
    TimeTraceScope Inner(nullptr, "inner");
  }
  // Binding restored: scopes no longer recorded.
  { TimeTraceScope After(nullptr, "after"); }
  EXPECT_EQ(Sink.numEvents(), 2u);
  std::string Json = Sink.exportJson();
  EXPECT_NE(Json.find("\"inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer\""), std::string::npos);
  EXPECT_EQ(Json.find("\"after\""), std::string::npos);
  std::string Err;
  EXPECT_TRUE(obs::validateTraceJson(Json, &Err)) << Err;
}

TEST(ObsTrace, ValidatorRejectsGarbageAndOverlap) {
  std::string Err;
  EXPECT_FALSE(obs::validateTraceJson("not json", &Err));
  EXPECT_FALSE(obs::validateTraceJson("{\"noTraceEvents\":1}", &Err));
  // Missing dur on an 'X' slice.
  EXPECT_FALSE(obs::validateTraceJson(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,"
      "\"pid\":1,\"tid\":1}]}",
      &Err));
  // Partial overlap on one thread: [0,10) vs [5,20) cannot nest.
  EXPECT_FALSE(obs::validateTraceJson(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":1,\"tid\":1},"
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":15,\"pid\":1,\"tid\":1}"
      "]}",
      &Err));
  // The same two slices nested properly are fine.
  EXPECT_TRUE(obs::validateTraceJson(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":20,\"pid\":1,\"tid\":1},"
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":10,\"pid\":1,\"tid\":1}"
      "]}",
      &Err))
      << Err;
}

TEST(ObsCompile, StructuralMetricsAlwaysOnPerBackend) {
  // Every back-end must publish compile.<name>.count/.ns even with a
  // default ObsContext — into the registry we attach explicitly here so
  // the test does not depend on global() state.
  qir::Module M = makeModule(1);
  for (const std::string &Name : backend::allBackendNames()) {
    if (Name == "GCC")
      continue; // spawns the external compiler; covered by GccTest
    auto BE = backend::createBackend(Name);
    obs::MetricsRegistry Reg;
    backend::CompileOptions Opts{obs::ObsContext(nullptr, &Reg)};
    auto Compiled = BE->compile(M, Opts);
    ASSERT_NE(Compiled, nullptr) << Name;
    obs::MetricsSnapshot S = Reg.snapshot();
    EXPECT_EQ(S.counter("compile." + Name + ".count"), 1u) << Name;
    const obs::HistogramSnapshot *H = S.histogram("compile." + Name + ".ns");
    ASSERT_NE(H, nullptr) << Name;
    EXPECT_EQ(H->Count, 1u) << Name;
  }
}

TEST(ObsCompile, MemMetricsAppearPerPhaseAfterCompile) {
  // A compile with a registry attached must publish its allocation
  // telemetry as mem.<backend>.<phase>.bytes/allocs (DESIGN.md
  // "Compilation memory"), alongside the compile.* timing metrics.
  qir::Module M = makeModule(1);
  auto BE = backend::createBackend("MLVM-cheap");
  obs::MetricsRegistry Reg;
  backend::CompileOptions Opts{obs::ObsContext(nullptr, &Reg)};
  auto Compiled = BE->compile(M, Opts);
  ASSERT_NE(Compiled, nullptr);
  obs::MetricsSnapshot S = Reg.snapshot();
  // IR construction and instruction selection always allocate nodes.
  EXPECT_GT(S.counter("mem.MLVM-cheap.irgen.bytes"), 0u);
  EXPECT_GT(S.counter("mem.MLVM-cheap.irgen.allocs"), 0u);
  EXPECT_GT(S.counter("mem.MLVM-cheap.isel.bytes"), 0u);
  EXPECT_GT(S.counter("mem.MLVM-cheap.mirpasses.allocs"), 0u);
  EXPECT_GT(S.counter("mem.MLVM-cheap.mc.allocs"), 0u);
  // Exactly one compile ran, in the QCF_ALLOC-default mode.
  EXPECT_EQ(S.counter("mem.MLVM-cheap.compiles." +
                      std::string(allocModeName(allocModeFromEnv()))),
            1u);
  // The whole mem.* family sums to the per-phase values (no stray keys).
  EXPECT_GT(S.counterSumWithPrefix("mem.MLVM-cheap."), 0u);

  // Craneline publishes its side-table scratch volume the same way.
  auto CL = backend::createBackend("Craneline");
  CL->compile(M, Opts);
  obs::MetricsSnapshot S2 = Reg.snapshot();
  EXPECT_GT(S2.counter("mem.Craneline.irpasses.bytes"), 0u);
  EXPECT_EQ(S2.counter("mem.Craneline.compiles." +
                       std::string(allocModeName(allocModeFromEnv()))),
            1u);
}

TEST(ObsCompile, CacheStatsAreARegistryView) {
  obs::MetricsRegistry Reg;
  backend::CachingBackend BE(backend::createBackend("DirectEmit"),
                             /*Capacity=*/1, /*Service=*/nullptr, &Reg);
  qir::Module A = makeModule(1), B = makeModule(2), C = makeModule(3);
  BE.compile(A);
  BE.compile(A); // hit
  BE.compile(B); // miss; evicts A (capacity 1)
  BE.compile(C); // miss; evicts B

  backend::CacheStats S = BE.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Evictions, 2u);
  EXPECT_EQ(S.lookups(), S.Hits + S.Misses);

  // The view and the registry must agree — stats() has no second set of
  // books.
  obs::MetricsSnapshot Snap = Reg.snapshot();
  const std::string P = BE.metricsPrefix();
  EXPECT_EQ(Snap.counter(P + "hits"), S.Hits);
  EXPECT_EQ(Snap.counter(P + "misses"), S.Misses);
  EXPECT_EQ(Snap.counter(P + "evictions"), S.Evictions);
  EXPECT_EQ(Snap.counter(P + "inflight_waits"), S.InFlightWaits);
}

TEST(ObsCompile, CompileServiceStatsAreARegistryView) {
  obs::MetricsRegistry Reg;
  auto Inner = backend::createBackend("DirectEmit");
  qir::Module M = makeModule(5);
  {
    backend::CompileService Svc(2, 0, &Reg);
    std::vector<backend::CompileTicket> Tickets;
    for (int I = 0; I != 8; ++I)
      Tickets.push_back(Svc.submit(M, *Inner).Ticket);
    for (backend::CompileTicket &T : Tickets)
      EXPECT_NE(T.wait(), nullptr);

    backend::CompileServiceStats S = Svc.stats();
    EXPECT_EQ(S.JobsQueued, 8u);
    EXPECT_EQ(S.JobsCompleted, 8u);
    EXPECT_EQ(S.JobsCancelled, 0u);
    ASSERT_EQ(S.PerBackend.count("DirectEmit"), 1u);
    const backend::CompileLatency &L = S.PerBackend.at("DirectEmit");
    EXPECT_EQ(L.Count, 8u);
    EXPECT_GT(L.TotalSec, 0.0);
    EXPECT_LE(L.MinSec, L.MaxSec);

    obs::MetricsSnapshot Snap = Reg.snapshot();
    const std::string P = Svc.metricsPrefix();
    EXPECT_EQ(Snap.counter(P + "jobs_queued"), 8u);
    EXPECT_EQ(Snap.counter(P + "jobs_completed"), 8u);
    const obs::HistogramSnapshot *H =
        Snap.histogram(P + "latency.DirectEmit");
    ASSERT_NE(H, nullptr);
    EXPECT_EQ(H->Count, 8u);
  }
}

TEST(ObsCompile, AdaptivePromotionRecordsLatency) {
  obs::MetricsRegistry Reg;
  backend::AdaptiveBackend BE;
  BE.PromoteAfterRuns = 1;
  BE.PromoteSizeThreshold = 0;
  qir::Module M = makeModule(7);
  backend::CompileOptions Opts{obs::ObsContext(nullptr, &Reg)};
  auto Compiled = BE.compile(M, Opts);
  auto *AM = static_cast<backend::AdaptiveModule *>(Compiled.get());
  ASSERT_NE(AM, nullptr);
  while (!AM->isPromoted())
    AM->noteExecution("f");
  obs::MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.counter("adaptive.promotions"), 1u);
  const obs::HistogramSnapshot *H = S.histogram("adaptive.promote.ns");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count, 1u);
  EXPECT_GT(H->SumNs, 0u);
}

TEST(ObsCompile, ServiceCarriesObsContextToWorkerThreads) {
  // The sink is bound inside compile() on the worker thread, so slices
  // from service-side compiles land in the submitting query's trace.
  obs::MetricsRegistry Reg;
  obs::TraceSink Sink;
  auto Inner = backend::createBackend("MLVM-cheap");
  qir::Module M = makeModule(9);
  backend::CompileService Svc(2);
  backend::CompileOptions Opts{obs::ObsContext(nullptr, &Reg, &Sink)};
  auto Result =
      Svc.submit(M, *Inner, backend::CompilePriority::Foreground, Opts)
          .Ticket.wait();
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Reg.snapshot().counter("compile.MLVM-cheap.count"), 1u);
  // Spanning slice + per-pass slices from the worker thread.
  EXPECT_GT(Sink.numEvents(), 1u);
  std::string Err;
  EXPECT_TRUE(obs::validateTraceJson(Sink.exportJson(), &Err)) << Err;
}
