//===- tests/OsrTest.cpp - Mid-query tier-swap differential suite ----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cutover differential suite for morsel-boundary OSR
/// (ExecOptions::AdaptiveExec): for every corpus query and tier pair,
/// force the swap at each morsel boundary index in turn and assert the
/// result is byte-identical to the never-swapped baseline, with the
/// morsel accounting proving no range was lost, duplicated, or torn
/// across the swap. A concurrent mode repeats the exercise with four
/// workers and randomized compile-landing times under TSan.
///
/// Runtime is bounded two ways: back-ends are wrapped in CachingBackend
/// (the sliced per-pipeline units are content-identical across forced
/// boundaries, so each tier compiles each unit exactly once), and quick
/// mode (QCF_OSR_QUICK=1, or any TSan build) trims the tier-pair and
/// query sets while still sweeping every boundary of what it runs.
///
//===----------------------------------------------------------------------===//

#include "QueryCorpus.h"
#include "backend/Cache.h"
#include "backend/Registry.h"
#include "db/Executor.h"
#include <algorithm>
#include <cstdlib>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <string>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define QCF_OSR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QCF_OSR_TSAN 1
#endif
#endif

using namespace qcf;
using namespace qcf::db;

namespace {

bool quickMode() {
#ifdef QCF_OSR_TSAN
  return true;
#else
  return std::getenv("QCF_OSR_QUICK") != nullptr;
#endif
}

/// The tiers the differential suite pairs up (GCC is excluded: its
/// compiles are three orders of magnitude slower and add no new swap
/// semantics — the entry-point contract is identical).
const std::vector<std::string> &tierNames() {
  static const std::vector<std::string> Names = {
      "Interpreter", "Stencil",    "DirectEmit",
      "Craneline",   "MLVM-cheap", "MLVM-opt"};
  return Names;
}

/// Shared caching wrapper per tier: every (tier, sliced unit) compiles
/// once for the whole suite. The Interpreter is the exception — its
/// "compiled" module interprets the source qir::Module at run time, so a
/// cached copy would dangle once the run's sliced units die; it stays
/// uncached (its compile is a table build, effectively free).
backend::Backend &cachedBackend(const std::string &Name) {
  static std::map<std::string, std::unique_ptr<backend::Backend>> Pool;
  auto It = Pool.find(Name);
  if (It == Pool.end()) {
    std::unique_ptr<backend::Backend> BE = backend::createBackend(Name);
    EXPECT_NE(BE, nullptr) << Name;
    if (Name != "Interpreter")
      BE = std::make_unique<backend::CachingBackend>(std::move(BE));
    It = Pool.emplace(Name, std::move(BE)).first;
  }
  return *It->second;
}

/// Fast tier for the fixed-pair suites: DirectEmit unless QCF_FAST_TIER
/// picks another rung (CI's TSan matrix runs a Stencil leg this way).
backend::Backend &fastTier() {
  const char *Name = std::getenv("QCF_FAST_TIER");
  return cachedBackend(Name && *Name ? Name : "DirectEmit");
}

/// Shared service for the optimized-tier compiles.
backend::CompileService &sharedService() {
  static backend::CompileService Svc(2);
  return Svc;
}

/// Compiled plans, one per corpus query (keyed by suite/query name).
const CompiledPlan &planFor(const QuerySuite &S, const Query &Q) {
  static std::map<std::string, std::unique_ptr<CompiledPlan>> Plans;
  std::string Key = std::string(S.Name) + "/" + Q.Name;
  auto It = Plans.find(Key);
  if (It == Plans.end())
    It = Plans
             .emplace(Key, std::make_unique<CompiledPlan>(
                               compileQuery(Q, *S.Cat)))
             .first;
  return *It->second;
}

/// Never-swapped baseline: the fast tier alone, serial. \returns the
/// result rows and fills \p RowsOut with per-pipeline source row counts.
rt::OutputBuffer baselineRun(const CompiledPlan &Plan, backend::Backend &Fast,
                             const Catalog &Cat,
                             std::vector<uint64_t> *RowsOut = nullptr) {
  rt::OutputBuffer Out;
  ExecOptions O;
  O.NumThreads = 1;
  ExecResult R = executeQuery(Plan, Fast, Cat, &Out, O);
  EXPECT_FALSE(R.Trapped);
  if (RowsOut) {
    RowsOut->clear();
    for (const PipelineStats &P : R.Stats.Pipelines)
      RowsOut->push_back(P.Rows);
  }
  return Out;
}

/// A morsel size that gives the largest pipeline about five morsels, so
/// sweeping every boundary index stays cheap while still covering the
/// interesting cutovers (first, interior, last, one-past-the-end). An
/// odd size also exercises the non-divisible final morsel.
uint64_t morselSizeFor(const std::vector<uint64_t> &PipeRows) {
  uint64_t MaxRows = 0;
  for (uint64_t R : PipeRows)
    MaxRows = std::max(MaxRows, R);
  return std::max<uint64_t>(257, MaxRows / 5 + 1);
}

uint64_t maxMorsels(const std::vector<uint64_t> &PipeRows, uint64_t MS) {
  uint64_t M = 0;
  for (uint64_t R : PipeRows)
    M = std::max(M, (R + MS - 1) / MS);
  return M;
}

/// Asserts the swap accounting invariant for one forced-cutover run:
/// every morsel executed exactly once, split between the tiers exactly
/// at the forced boundary.
void checkForcedAccounting(const ExecResult &R, uint64_t MS, int64_t K) {
  for (size_t PI = 0; PI != R.Stats.Pipelines.size(); ++PI) {
    const PipelineStats &P = R.Stats.Pipelines[PI];
    SCOPED_TRACE("pipeline " + std::to_string(PI));
    uint64_t NM = (P.Rows + MS - 1) / MS;
    EXPECT_EQ(P.Morsels, NM) << "lost or duplicated morsel";
    EXPECT_EQ(P.MorselsFast + P.MorselsOpt, P.Morsels) << "torn tier split";
    EXPECT_EQ(P.RowsFast + P.RowsOpt, P.Rows) << "torn row split";
    if (K >= 0 && static_cast<uint64_t>(K) < NM) {
      // Single-threaded, morsels are claimed strictly in order, so the
      // cutover is exact: [0, K) fast, [K, NM) optimized.
      EXPECT_EQ(P.SwapMorsel, K);
      EXPECT_EQ(P.MorselsFast, static_cast<uint64_t>(K));
      EXPECT_EQ(P.MorselsOpt, NM - static_cast<uint64_t>(K));
    } else {
      // Boundary index beyond this pipeline's morsels: never swapped.
      EXPECT_EQ(P.SwapMorsel, -1);
      EXPECT_EQ(P.MorselsOpt, 0u);
    }
  }
}

ExecResult forcedRun(const CompiledPlan &Plan, backend::Backend &Opt,
                     backend::Backend &Fast, const Catalog &Cat,
                     rt::OutputBuffer &Out, uint64_t MS, int64_t K) {
  ExecOptions O;
  O.NumThreads = 1;
  O.MorselSize = MS;
  O.AdaptiveExec = true;
  O.FastBackend = &Fast;
  O.Service = &sharedService();
  O.OsrForceSwapMorsel = K;
  return executeQuery(Plan, Opt, Cat, &Out, O);
}

} // namespace

/// The headline suite: forced swap at every morsel boundary index, for
/// every tier pair, over the corpus queries — byte-identical against the
/// never-swapped baseline every time.
TEST(OsrCutover, ForcedSwapEveryBoundaryEveryTierPair) {
  const bool Quick = quickMode();
  // Quick/TSan mode keeps one slow-fast pair, the canonical pair, and a
  // jit-to-jit pair; full mode takes the whole ordered cross product.
  std::vector<std::pair<std::string, std::string>> Pairs;
  if (Quick) {
    Pairs = {{"Interpreter", "MLVM-opt"},
             {"DirectEmit", "MLVM-opt"},
             {"DirectEmit", "Craneline"},
             {"Stencil", "MLVM-opt"},
             {"Stencil", "DirectEmit"},
             {"MLVM-cheap", "MLVM-opt"}};
  } else {
    for (const std::string &F : tierNames())
      for (const std::string &O : tierNames())
        if (F != O)
          Pairs.emplace_back(F, O);
  }

  uint64_t CorpusOutRows = 0;
  for (const QuerySuite &S : queryCorpus()) {
    size_t NumQ = Quick ? std::min<size_t>(3, S.Queries.size())
                        : S.Queries.size();
    for (size_t QI = 0; QI != NumQ; ++QI) {
      const Query &Q = S.Queries[QI];
      SCOPED_TRACE(std::string(S.Name) + "/" + Q.Name);
      const CompiledPlan &Plan = planFor(S, Q);

      for (const auto &[FastName, OptName] : Pairs) {
        SCOPED_TRACE(FastName + " -> " + OptName);
        backend::Backend &Fast = cachedBackend(FastName);
        backend::Backend &Opt = cachedBackend(OptName);

        std::vector<uint64_t> PipeRows;
        rt::OutputBuffer Base = baselineRun(Plan, Fast, *S.Cat, &PipeRows);
        // Zero *output* rows is fine (morsels run over input rows); the
        // corpus as a whole must not be vacuous, checked after the loop.
        CorpusOutRows += Base.numRows();
        uint64_t MS = morselSizeFor(PipeRows);
        uint64_t NM = maxMorsels(PipeRows, MS);

        // K == NM forces the boundary one past the end: the swap must
        // never fire and the run must still match.
        for (uint64_t K = 0; K <= NM; ++K) {
          SCOPED_TRACE("boundary " + std::to_string(K));
          rt::OutputBuffer Out;
          ExecResult R = forcedRun(Plan, Opt, Fast, *S.Cat, Out, MS,
                                   static_cast<int64_t>(K));
          ASSERT_FALSE(R.Trapped);
          EXPECT_TRUE(Base.equals(Out)) << "cutover changed the result";
          checkForcedAccounting(R, MS, static_cast<int64_t>(K));
          if (K < NM) {
            EXPECT_GE(R.Stats.OsrSwaps, 1u);
          }
        }
      }
    }
  }
  EXPECT_GT(CorpusOutRows, 0u) << "every corpus query returned zero rows";
}

/// Concurrent mode: four workers, policy-driven swap, compile-landing
/// time randomized by the service's jitter hook — the swap lands at a
/// different morsel (and on a different worker) every repetition. Run
/// under TSan in CI (label osr).
TEST(OsrCutover, ConcurrentRandomizedSwapTiming) {
  const bool Quick = quickMode();
  backend::CompileService Svc(2);
  uint64_t Seed = 0x5eedull;

  for (const QuerySuite &S : queryCorpus()) {
    size_t NumQ = Quick ? std::min<size_t>(3, S.Queries.size())
                        : S.Queries.size();
    for (size_t QI = 0; QI != NumQ; ++QI) {
      const Query &Q = S.Queries[QI];
      SCOPED_TRACE(std::string(S.Name) + "/" + Q.Name);
      const CompiledPlan &Plan = planFor(S, Q);
      backend::Backend &Fast = fastTier();
      backend::Backend &Opt = cachedBackend("MLVM-opt");
      rt::OutputBuffer Base = baselineRun(Plan, Fast, *S.Cat);

      int Reps = Quick ? 3 : 6;
      for (int Rep = 0; Rep != Reps; ++Rep) {
        SCOPED_TRACE("rep " + std::to_string(Rep));
        // Sweep landing times from "immediately" to "well into the
        // query" so early, mid, and too-late swaps all occur.
        Svc.injectCompileLatencyForTest(1u << (6 + 2 * (Rep % 4)), Seed++);
        rt::OutputBuffer Out;
        ExecOptions O;
        O.NumThreads = 4;
        O.MorselSize = 256;
        O.AdaptiveExec = true;
        O.FastBackend = &Fast;
        O.Service = &Svc;
        ExecResult R = executeQuery(Plan, Opt, *S.Cat, &Out, O);
        ASSERT_FALSE(R.Trapped);
        EXPECT_EQ(Base.unorderedDigest(), Out.unorderedDigest())
            << "concurrent swap changed the result";
        for (size_t PI = 0; PI != R.Stats.Pipelines.size(); ++PI) {
          const PipelineStats &P = R.Stats.Pipelines[PI];
          SCOPED_TRACE("pipeline " + std::to_string(PI));
          uint64_t NM = (P.Rows + O.MorselSize - 1) / O.MorselSize;
          EXPECT_EQ(P.Morsels, NM) << "lost or duplicated morsel";
          EXPECT_EQ(P.MorselsFast + P.MorselsOpt, P.Morsels);
          EXPECT_EQ(P.RowsFast + P.RowsOpt, P.Rows);
          if (P.Rows > 0) {
            EXPECT_GE(P.MinWorkerMorsels, 1u) << "a worker ran zero morsels";
          }
        }
      }
    }
  }
}

/// The swap protocol refuses entries that violate the context
/// compatibility contract, and osrContract distinguishes both the
/// function identity and the ctx slot layout.
TEST(OsrProtocol, ContractRejectsIncompatibleEntries) {
  uint64_t C1 = osrContract("pipe_0", 8);
  EXPECT_NE(C1, osrContract("pipe_1", 8));
  EXPECT_NE(C1, osrContract("pipe_0", 9));
  EXPECT_EQ(C1, osrContract("pipe_0", 8));

  auto Dummy = +[](void *, int64_t, int64_t) {};
  TierEntry FastE{Dummy, OsrTierFast, C1};
  TierCell Cell(&FastE);
  EXPECT_EQ(Cell.load(), &FastE);

  TierEntry Foreign{Dummy, OsrTierOpt, osrContract("pipe_1", 8)};
  EXPECT_FALSE(Cell.publish(&Foreign)) << "foreign contract accepted";
  TierEntry NoCode{nullptr, OsrTierOpt, C1};
  EXPECT_FALSE(Cell.publish(&NoCode));
  EXPECT_FALSE(Cell.publish(nullptr));
  EXPECT_EQ(Cell.load(), &FastE) << "rejected publish mutated the cell";

  TierEntry OptE{Dummy, OsrTierOpt, C1};
  EXPECT_TRUE(Cell.publish(&OptE));
  EXPECT_EQ(Cell.load(), &OptE);
}

/// AdaptiveExec with the Adaptive back-end drives the swap through the
/// module's promotion-ticket hook (requestPromotion), and the module's
/// own entry() agrees with the published tier afterwards.
TEST(OsrAdaptiveBackend, PromotionHookDrivesSwap) {
  QuerySuite &S = queryCorpus().front();
  const Query &Q = S.Queries.front();
  const CompiledPlan &Plan = planFor(S, Q);
  backend::Backend &Fast = fastTier();
  rt::OutputBuffer Base = baselineRun(Plan, Fast, *S.Cat);

  backend::CompileService Svc(2);
  backend::AdaptiveBackend BE(&Svc);
  rt::OutputBuffer Out;
  ExecOptions O;
  O.NumThreads = 1;
  O.MorselSize = 257;
  O.AdaptiveExec = true;
  O.Service = &Svc;
  O.OsrForceSwapMorsel = 1; // Block on the promotion: swap must happen.
  ExecResult R = executeQuery(Plan, BE, *S.Cat, &Out, O);
  ASSERT_FALSE(R.Trapped);
  EXPECT_TRUE(Base.equals(Out));
  EXPECT_GE(R.Stats.OsrSwaps, 1u);
}

/// The observability surface: exec.osr.* metrics and the per-pipeline
/// timeline swap marker.
TEST(OsrObs, SwapMetricsAndTimelineMarker) {
  QuerySuite &S = queryCorpus().front();
  const Query &Q = S.Queries.front();
  const CompiledPlan &Plan = planFor(S, Q);
  backend::Backend &Fast = fastTier();
  backend::Backend &Opt = cachedBackend("MLVM-opt");

  obs::MetricsRegistry Reg;
  obs::TraceSink Sink;
  rt::OutputBuffer Out;
  ExecOptions O;
  O.NumThreads = 1;
  O.MorselSize = 257;
  O.AdaptiveExec = true;
  O.FastBackend = &Fast;
  O.Service = &sharedService();
  O.OsrForceSwapMorsel = 1;
  O.Obs.Metrics = &Reg;
  O.Obs.Sink = &Sink;
  ExecResult R = executeQuery(Plan, Opt, *S.Cat, &Out, O);
  ASSERT_FALSE(R.Trapped);
  ASSERT_GE(R.Stats.OsrSwaps, 1u);

  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_GE(Snap.counter("exec.osr.swaps"), 1u);
  const obs::HistogramSnapshot *SwapAt = Snap.histogram("exec.osr.swap_morsel");
  ASSERT_NE(SwapAt, nullptr);
  EXPECT_GE(SwapAt->Count, 1u);

  std::string Json = Sink.exportJson();
  EXPECT_NE(Json.find("db.osr.swap."), std::string::npos)
      << "missing timeline swap marker";
}

/// Policy knob: with OsrMinRowsRemaining above the pipeline's row count,
/// a landed compile is never published (the tail stays on the warm fast
/// tier) and the run still matches the baseline.
TEST(OsrPolicy, MinRowsRemainingSuppressesLateSwap) {
  QuerySuite &S = queryCorpus().front();
  const Query &Q = S.Queries.front();
  const CompiledPlan &Plan = planFor(S, Q);
  backend::Backend &Fast = fastTier();
  backend::Backend &Opt = cachedBackend("MLVM-opt");
  std::vector<uint64_t> PipeRows;
  rt::OutputBuffer Base = baselineRun(Plan, Fast, *S.Cat, &PipeRows);
  uint64_t MaxRows = *std::max_element(PipeRows.begin(), PipeRows.end());

  obs::MetricsRegistry Reg;
  rt::OutputBuffer Out;
  ExecOptions O;
  O.NumThreads = 1;
  O.MorselSize = 257;
  O.AdaptiveExec = true;
  O.FastBackend = &Fast;
  O.Service = &sharedService();
  O.OsrForceSwapMorsel = 1;
  O.OsrMinRowsRemaining = MaxRows * 2; // Can never be satisfied.
  O.Obs.Metrics = &Reg;
  ExecResult R = executeQuery(Plan, Opt, *S.Cat, &Out, O);
  ASSERT_FALSE(R.Trapped);
  EXPECT_TRUE(Base.equals(Out));
  EXPECT_EQ(R.Stats.OsrSwaps, 0u);
  for (const PipelineStats &P : R.Stats.Pipelines) {
    EXPECT_EQ(P.SwapMorsel, -1);
    EXPECT_EQ(P.MorselsOpt, 0u);
  }
  EXPECT_GE(Reg.snapshot().counter("exec.osr.skipped"), 1u);
}
