//===- tests/ParseTest.cpp - QIR textual parser tests ----------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser tests: exact print→parse→print round-trips on the corpus and
/// on random programs, semantic equivalence of parsed modules (executed
/// against the original through the interpreter), hand-written golden IR
/// compiled by every back-end, renumbering of sparse value ids, and
/// error reporting.
///
//===----------------------------------------------------------------------===//

#include "backend/Registry.h"
#include "qir/Parse.h"
#include "qir/Print.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include "tests/DiffHarness.h"
#include "tests/RandomQir.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::test;

namespace {

std::unique_ptr<qir::Module> parseOrDie(const std::string &Text) {
  std::string Error;
  std::unique_ptr<qir::Module> M =
      qir::parseModule(Text, &Error, rt::runtimeSymbolAddress);
  EXPECT_NE(M, nullptr) << Error << "\nwhile parsing:\n" << Text;
  return M;
}

} // namespace

TEST(Parse, CorpusRoundTripsExactly) {
  // Builder-produced functions are in layout order, so the round trip
  // must reproduce the text byte for byte.
  Corpus C = buildCorpus();
  std::string Text = qir::printModule(*C.M);
  std::unique_ptr<qir::Module> M = parseOrDie(Text);
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(qir::verify(*M), std::nullopt);
  EXPECT_EQ(qir::printModule(*M), Text);
}

TEST(Parse, CorpusParsedModuleExecutesIdentically) {
  Corpus C = buildCorpus();
  std::unique_ptr<qir::Module> M = parseOrDie(qir::printModule(*C.M));
  ASSERT_NE(M, nullptr);

  interp::InterpBackend BE;
  auto Orig = BE.compile(*C.M);
  auto Reparsed = BE.compile(*M);
  for (const CorpusCase &Case : C.Cases) {
    CaseOutcome A = invokeEntry(Orig->entry(Case.Fn), Case.ArgLanes);
    CaseOutcome B = invokeEntry(Reparsed->entry(Case.Fn), Case.ArgLanes);
    bool TwoLane =
        qir::isTwoLane(C.M->functionByName(Case.Fn)->returnType());
    EXPECT_EQ(A.Trapped, B.Trapped) << Case.Fn;
    if (!A.Trapped) {
      EXPECT_EQ(A.Lo, B.Lo) << Case.Fn;
      if (TwoLane)
        EXPECT_EQ(A.Hi, B.Hi) << Case.Fn;
    }
  }
}

TEST(Parse, GoldenTextCompilesOnEveryBackend) {
  // Hand-written IR: sum of 0..n-1 plus a runtime hash of the result.
  const char *Text = R"(define i64 @sumhash(i64) {
b0:
  %0 = param i64 #0
  %1 = const i64 0
  %2 = const i64 1
  br b1
b1:
  %4 = phi i64 [b0: %1], [b2: %8]
  %5 = phi i64 [b0: %1], [b2: %9]
  %6 = icmp slt i64 %4, %0
  condbr %6, b2, b3
b2:
  %8 = add i64 %4, %2
  %9 = add i64 %5, %4
  br b1
b3:
  %11 = crc32 i64 %5, %4
  ret %11
}
)";
  std::unique_ptr<qir::Module> M = parseOrDie(Text);
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(qir::verify(*M), std::nullopt);

  // Reference outcome from the interpreter; all JITs must agree.
  uint64_t Ref = 0;
  for (const char *Name :
       {"Interpreter", "DirectEmit", "Craneline", "MLVM-cheap",
        "MLVM-opt"}) {
    auto BE = backend::createBackend(Name);
    auto Compiled = BE->compile(*M);
    auto *Fn = Compiled->entryAs<uint64_t (*)(uint64_t)>("sumhash");
    ASSERT_NE(Fn, nullptr) << Name;
    uint64_t Got = Fn(10);
    if (Ref == 0)
      Ref = Got;
    EXPECT_EQ(Got, Ref) << Name;
  }
  EXPECT_NE(Ref, 0u);
}

TEST(Parse, SparseIdsAreRenumbered) {
  // Ids need not be dense; the parser renumbers in textual order.
  const char *Text = R"(define i64 @f(i64) {
b7:
  %100 = param i64 #0
  %50 = const i64 5
  %9 = mul i64 %100, %50
  ret %9
}
)";
  std::unique_ptr<qir::Module> M = parseOrDie(Text);
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(qir::verify(*M), std::nullopt);
  interp::InterpBackend BE;
  auto Compiled = BE.compile(*M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t)>("f");
  EXPECT_EQ(Fn(8), 40);
}

TEST(Parse, ConstantsRoundTripExactly) {
  qir::Module M;
  qir::Function *F =
      M.createFunction("consts", {}, qir::Type::F64);
  qir::Builder B(F);
  qir::ValueId I128 = B.constI128((static_cast<Int128>(0x0123456789abcdefll)
                                   << 64) |
                                  static_cast<Int128>(0xfedcba9876543210ull));
  qir::ValueId P = B.constPtr(reinterpret_cast<void *>(0xdeadbeef1234ull));
  // A NaN with payload bits — %g printing would destroy this.
  uint64_t NanBits = 0x7ff8000000abcdefull;
  double D;
  __builtin_memcpy(&D, &NanBits, sizeof(D));
  qir::ValueId N = B.constF64(D);
  (void)I128;
  (void)P;
  B.ret(N);

  std::string Text = qir::printModule(M);
  std::unique_ptr<qir::Module> M2 = parseOrDie(Text);
  ASSERT_NE(M2, nullptr);
  const qir::Function &F2 = *M2->functions()[0];
  EXPECT_EQ(F2.i128Constant(F2.inst(0)),
            (static_cast<Int128>(0x0123456789abcdefll) << 64) |
                static_cast<Int128>(0xfedcba9876543210ull));
  EXPECT_EQ(F2.inst(1).Imm, 0xdeadbeef1234ull);
  EXPECT_EQ(F2.inst(2).Imm, NanBits);
  EXPECT_EQ(qir::printModule(*M2), Text);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  struct Case {
    const char *Text;
    const char *ExpectSubstr;
  };
  const Case Cases[] = {
      {"define i64 @f( {\n", "unknown type"},
      {"define i64 @f() {\nb0:\n  %0 = bogus i64 %1\n}\n",
       "unknown mnemonic"},
      {"define i64 @f() {\nb0:\n  %0 = const i64 1\n  ret %9\n}\n",
       "undefined value"},
      {"define i64 @f() {\nb0:\n  ret\nb0:\n  ret\n}\n",
       "duplicate block"},
      {"define i64 @f() {\nb0:\n  %0 = add zzz %1, %2\n}\n",
       "unknown type"},
      {"define i64 @f() {\nb0:\n  %0 = icmp wat i64 %1, %2\n}\n",
       "unknown predicate"},
  };
  for (const Case &C : Cases) {
    std::string Error;
    std::unique_ptr<qir::Module> M = qir::parseModule(C.Text, &Error);
    EXPECT_EQ(M, nullptr) << C.Text;
    EXPECT_NE(Error.find(C.ExpectSubstr), std::string::npos)
        << "got: " << Error;
  }
}

namespace {
class ParseProperty : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(ParseProperty, RandomProgramsRoundTrip) {
  qir::Module M;
  Rng R(GetParam() * 7919 + 13);
  RandomFnBuilder RB(M, R);
  qir::Function *F = RB.build("rand");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  std::string Text = qir::printModule(M);
  std::string Error;
  std::unique_ptr<qir::Module> M2 =
      qir::parseModule(Text, &Error, rt::runtimeSymbolAddress);
  ASSERT_NE(M2, nullptr) << Error << "\n" << Text;
  ASSERT_EQ(qir::verify(*M2), std::nullopt);
  EXPECT_EQ(qir::printModule(*M2), Text);

  // Execute both on random inputs through the interpreter.
  interp::InterpBackend BE;
  auto C1 = BE.compile(M);
  auto C2 = BE.compile(*M2);
  for (int I = 0; I != 16; ++I) {
    std::vector<uint64_t> Args = {R.next(), R.next()};
    CaseOutcome A = invokeEntry(C1->entry("rand"), Args);
    CaseOutcome B = invokeEntry(C2->entry("rand"), Args);
    EXPECT_EQ(A.Trapped, B.Trapped) << "seed " << GetParam();
    if (!A.Trapped)
      EXPECT_EQ(A.Lo, B.Lo) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseProperty,
                         ::testing::Range<uint64_t>(0, 20));
