//===- tests/PropertyTest.cpp - Randomized differential tests --------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based testing: for random QIR functions and random inputs,
/// every back-end must reproduce the interpreter's results and traps
/// exactly. Parameterized over generator seeds.
///
//===----------------------------------------------------------------------===//

#include "direct/DirectEmit.h"
#include "interp/Interp.h"
#include "tests/DiffHarness.h"
#include "tests/RandomQir.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::test;

/// Compares one back-end against the interpreter on one random module.
void qcf::test::runRandomDifferentialFor(backend::Backend &BE,
                                         uint64_t Seed) {
  qir::Module M;
  Rng R(Seed);
  RandomFnBuilder Gen(M, R);
  constexpr unsigned FnsPerModule = 4;
  for (unsigned I = 0; I != FnsPerModule; ++I)
    Gen.build("rand" + std::to_string(I));
  auto Err = qir::verify(M);
  ASSERT_EQ(Err, std::nullopt) << "seed " << Seed << ": " << Err.value_or("");

  interp::InterpBackend Baseline;
  auto Ref = Baseline.compile(M);
  auto Got = BE.compile(M);

  Rng InputRng(Seed ^ 0xabcdef);
  for (unsigned I = 0; I != FnsPerModule; ++I) {
    std::string Name = "rand" + std::to_string(I);
    void *RefEntry = Ref->entry(Name);
    void *GotEntry = Got->entry(Name);
    ASSERT_NE(GotEntry, nullptr);
    for (unsigned K = 0; K != 8; ++K) {
      std::vector<uint64_t> Args = {InputRng.next(), InputRng.next()};
      if (K == 0)
        Args = {0, 0};
      if (K == 1)
        Args = {~0ull, 1};
      CaseOutcome Expected = invokeEntry(RefEntry, Args);
      CaseOutcome Actual = invokeEntry(GotEntry, Args);
      ASSERT_EQ(Expected.Trapped, Actual.Trapped)
          << Name << " seed=" << Seed << " args=(" << Args[0] << ","
          << Args[1] << ")";
      if (!Expected.Trapped)
        ASSERT_EQ(Expected.Lo, Actual.Lo)
            << Name << " seed=" << Seed << " args=(" << Args[0] << ","
            << Args[1] << ")";
    }
  }
}

namespace {
class DirectProperty : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(DirectProperty, MatchesInterpreterOnRandomFunctions) {
  direct::DirectBackend B;
  runRandomDifferentialFor(B, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectProperty,
                         ::testing::Range<uint64_t>(0, 40));
