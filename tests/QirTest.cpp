//===- tests/QirTest.cpp - QIR unit tests ---------------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "qir/Builder.h"
#include "qir/Cfg.h"
#include "qir/Print.h"
#include "qir/Verify.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::qir;

namespace {

/// Builds a straight-line arithmetic function: i64 f(i64 a, i64 b).
Function *buildArith(Module &M) {
  Function *F = M.createFunction("arith", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  ValueId A = F->paramValue(0);
  ValueId Bv = F->paramValue(1);
  ValueId Sum = B.add(A, Bv);
  ValueId Prod = B.mul(Sum, A);
  ValueId Shifted = B.shl(Prod, B.constInt(Type::I64, 3));
  B.ret(Shifted);
  return F;
}

} // namespace

TEST(QirBuilder, StraightLineFunctionVerifies) {
  Module M;
  Function *F = buildArith(M);
  EXPECT_EQ(verify(*F), std::nullopt) << verify(*F).value_or("");
  EXPECT_EQ(F->numBlocks(), 1u);
  EXPECT_EQ(F->numParams(), 2u);
}

TEST(QirBuilder, InstRecordIs32Bytes) { EXPECT_EQ(sizeof(Inst), 32u); }

TEST(QirBuilder, ParamValuesAreLeadingInsts) {
  Module M;
  Function *F = buildArith(M);
  EXPECT_EQ(F->inst(F->paramValue(0)).Op, Opcode::Param);
  EXPECT_EQ(F->inst(F->paramValue(1)).Op, Opcode::Param);
  EXPECT_EQ(F->valueType(F->paramValue(0)), Type::I64);
}

TEST(QirBuilder, LoopWithPhisVerifies) {
  Module M;
  Function *F = M.createFunction("loop", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId N = F->paramValue(0);

  BlockId Header = B.createBlock();
  BlockId Body = B.createBlock();
  BlockId Exit = B.createBlock();

  ValueId Zero = B.constInt(Type::I64, 0);
  B.br(Header);

  B.startBlock(Header);
  ValueId I = B.phi(Type::I64, 2);
  ValueId Acc = B.phi(Type::I64, 2);
  ValueId Cond = B.icmp(CmpPred::SLt, I, N);
  B.condBr(Cond, Body, Exit);

  B.startBlock(Body);
  ValueId AccNext = B.add(Acc, I);
  ValueId One = B.constInt(Type::I64, 1);
  ValueId INext = B.add(I, One);
  B.br(Header);

  B.startBlock(Exit);
  B.ret(Acc);

  B.setPhiIncoming(I, 0, B.entryBlock(), Zero);
  B.setPhiIncoming(I, 1, Body, INext);
  B.setPhiIncoming(Acc, 0, B.entryBlock(), Zero);
  B.setPhiIncoming(Acc, 1, Body, AccNext);

  auto Err = verify(*F);
  EXPECT_EQ(Err, std::nullopt) << Err.value_or("");
}

TEST(QirVerifier, RejectsUnfilledPhi) {
  Module M;
  Function *F = M.createFunction("badphi", {}, Type::I64);
  Builder B(F);
  BlockId Next = B.createBlock();
  B.br(Next);
  B.startBlock(Next);
  B.phi(Type::I64, 1); // never filled
  B.ret(B.constInt(Type::I64, 0));
  auto Err = verify(*F);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("phi"), std::string::npos);
}

TEST(QirVerifier, RejectsTypeMismatchedStore) {
  Module M;
  Function *F = M.createFunction("badstore", {Type::Ptr}, Type::Void);
  Builder B(F);
  ValueId P = F->paramValue(0);
  ValueId V = B.constInt(Type::I32, 1);
  B.store(V, P);
  // Corrupt the store's recorded type.
  F->Insts[F->numInsts() - 1].Ty = Type::I64;
  B.ret();
  auto Err = verify(*F);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("store"), std::string::npos);
}

TEST(QirVerifier, RejectsUseBeforeDef) {
  Module M;
  Function *F = M.createFunction("usebeforedef", {}, Type::I64);
  Builder B(F);
  ValueId C = B.constInt(Type::I64, 1);
  B.ret(C);
  // Manually corrupt: make the ret reference a later (nonexistent-at-use)
  // instruction by swapping the operand to itself + 1.
  F->Insts[F->numInsts() - 1].A = F->numInsts() - 1;
  auto Err = verify(*F);
  ASSERT_TRUE(Err.has_value());
}

TEST(QirVerifier, RejectsMissingTerminator) {
  Module M;
  Function *F = M.createFunction("noterm", {}, Type::Void);
  Builder B(F);
  B.constInt(Type::I64, 1);
  auto Err = verify(*F);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("terminator"), std::string::npos);
}

TEST(QirCall, SignatureCheckedAndPrinted) {
  Module M;
  SymbolId Sym =
      M.declareRuntime("rt_probe", Type::I64, {Type::Ptr, Type::I64});
  Function *F = M.createFunction("caller", {Type::Ptr}, Type::I64);
  Builder B(F);
  ValueId P = F->paramValue(0);
  ValueId K = B.constInt(Type::I64, 99);
  ValueId R = B.call(Sym, {P, K});
  B.ret(R);
  auto Err = verify(*F);
  EXPECT_EQ(Err, std::nullopt) << Err.value_or("");
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("call i64 @rt_probe"), std::string::npos);
}

TEST(QirModule, RuntimeSymbolsDeduplicated) {
  Module M;
  SymbolId A = M.declareRuntime("f", Type::Void, {});
  SymbolId B = M.declareRuntime("f", Type::Void, {});
  SymbolId C = M.declareRuntime("g", Type::Void, {});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(M.numSymbols(), 2u);
}

TEST(QirPrint, ContainsPaperStyleMnemonics) {
  Module M;
  Function *F = M.createFunction("hashish", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId X = F->paramValue(0);
  ValueId Seed = B.constInt(Type::I64, 0x1234);
  ValueId H1 = B.crc32(Seed, X);
  ValueId H2 = B.rotr(H1, B.constInt(Type::I64, 32));
  B.ret(H2);
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("crc32"), std::string::npos);
  EXPECT_NE(Text.find("rotr"), std::string::npos);
  EXPECT_EQ(verify(*F), std::nullopt);
}

// --- CFG analyses -----------------------------------------------------------

namespace {

/// Builds a diamond: entry -> (left|right) -> merge.
Function *buildDiamond(Module &M) {
  Function *F = M.createFunction("diamond", {Type::I1}, Type::I64);
  Builder B(F);
  BlockId L = B.createBlock(), R = B.createBlock(), Mg = B.createBlock();
  ValueId C1 = B.constInt(Type::I64, 1);
  ValueId C2 = B.constInt(Type::I64, 2);
  B.condBr(F->paramValue(0), L, R);
  B.startBlock(L);
  B.br(Mg);
  B.startBlock(R);
  B.br(Mg);
  B.startBlock(Mg);
  ValueId P = B.phi(Type::I64, 2);
  B.setPhiIncoming(P, 0, L, C1);
  B.setPhiIncoming(P, 1, R, C2);
  B.ret(P);
  return F;
}

} // namespace

TEST(QirCfg, DiamondPredsAndRpo) {
  Module M;
  Function *F = buildDiamond(M);
  ASSERT_EQ(verify(*F), std::nullopt) << verify(*F).value_or("");
  CfgInfo Cfg(*F);
  EXPECT_EQ(Cfg.rpo().size(), 4u);
  EXPECT_EQ(Cfg.rpo().front(), 0u);
  EXPECT_EQ(Cfg.numPreds(3), 2u);
  EXPECT_EQ(Cfg.numPreds(0), 0u);
  // RPO: entry before both arms; arms before merge.
  EXPECT_LT(Cfg.rpoIndex(0), Cfg.rpoIndex(1));
  EXPECT_LT(Cfg.rpoIndex(1), Cfg.rpoIndex(3));
  EXPECT_LT(Cfg.rpoIndex(2), Cfg.rpoIndex(3));
}

TEST(QirCfg, DiamondDominators) {
  Module M;
  Function *F = buildDiamond(M);
  CfgInfo Cfg(*F);
  DomTree DT(*F, Cfg);
  EXPECT_EQ(DT.idom(0), INVALID_BLOCK);
  EXPECT_EQ(DT.idom(1), 0u);
  EXPECT_EQ(DT.idom(2), 0u);
  EXPECT_EQ(DT.idom(3), 0u);
  EXPECT_TRUE(DT.dominates(0, 3));
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_TRUE(DT.dominates(3, 3));
}

TEST(QirCfg, LoopDetection) {
  Module M;
  Function *F = M.createFunction("loopy", {Type::I64}, Type::I64);
  Builder B(F);
  BlockId H = B.createBlock(), Body = B.createBlock(), E = B.createBlock();
  ValueId Zero = B.constInt(Type::I64, 0);
  B.br(H);
  B.startBlock(H);
  ValueId I = B.phi(Type::I64, 2);
  ValueId C = B.icmp(CmpPred::SLt, I, F->paramValue(0));
  B.condBr(C, Body, E);
  B.startBlock(Body);
  ValueId In = B.add(I, B.constInt(Type::I64, 1));
  B.br(H);
  B.startBlock(E);
  B.ret(I);
  B.setPhiIncoming(I, 0, 0, Zero);
  B.setPhiIncoming(I, 1, Body, In);
  ASSERT_EQ(verify(*F), std::nullopt) << verify(*F).value_or("");

  CfgInfo Cfg(*F);
  DomTree DT(*F, Cfg);
  LoopInfo LI(*F, Cfg, DT);
  EXPECT_EQ(LI.numLoops(), 1u);
  EXPECT_TRUE(LI.isLoopHeader(H));
  EXPECT_EQ(LI.loopDepth(H), 1u);
  EXPECT_EQ(LI.loopDepth(Body), 1u);
  EXPECT_EQ(LI.loopDepth(0), 0u);
  EXPECT_EQ(LI.loopDepth(E), 0u);
}

TEST(QirCfg, UnreachableBlockExcluded) {
  Module M;
  Function *F = M.createFunction("dead", {}, Type::Void);
  Builder B(F);
  BlockId Dead = B.createBlock();
  BlockId End = B.createBlock();
  B.br(End);
  B.startBlock(Dead);
  B.ret();
  B.startBlock(End);
  B.ret();
  CfgInfo Cfg(*F);
  EXPECT_FALSE(Cfg.isReachable(Dead));
  EXPECT_TRUE(Cfg.isReachable(End));
  EXPECT_EQ(Cfg.rpo().size(), 2u);
}

TEST(QirScratch, BackendsCanUseScratchSlot) {
  Module M;
  Function *F = buildArith(M);
  for (uint32_t I = 0; I != F->numInsts(); ++I)
    F->inst(I).Scratch = I * 7;
  for (uint32_t I = 0; I != F->numInsts(); ++I)
    EXPECT_EQ(F->inst(I).Scratch, I * 7);
}

TEST(QirOpcode, PredicateHelpers) {
  EXPECT_EQ(swapCmpPred(CmpPred::SLt), CmpPred::SGt);
  EXPECT_EQ(swapCmpPred(CmpPred::Eq), CmpPred::Eq);
  EXPECT_EQ(invertCmpPred(CmpPred::SLt), CmpPred::SGe);
  EXPECT_EQ(invertCmpPred(CmpPred::Ne), CmpPred::Eq);
}

TEST(QirOpcode, SideEffectClassification) {
  EXPECT_TRUE(hasSideEffects(Opcode::Store));
  EXPECT_TRUE(hasSideEffects(Opcode::Call));
  EXPECT_TRUE(hasSideEffects(Opcode::SAddTrap));
  EXPECT_TRUE(hasSideEffects(Opcode::SDiv));
  EXPECT_FALSE(hasSideEffects(Opcode::Add));
  EXPECT_FALSE(hasSideEffects(Opcode::Load));
  EXPECT_FALSE(hasSideEffects(Opcode::Crc32));
}
