//===- tests/QueryCorpus.h - Benchmark query corpus for db tests *- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The database-level test corpus: every TPC-H-like and TPC-DS-like
/// benchmark query, each paired with its generated catalog. This is the
/// db-layer complement to tests/Corpus.h (which is a corpus of QIR
/// *functions* and deliberately carries no db dependency so non-db test
/// binaries can include it). OsrTest's cutover differential suite and
/// DbTest-style integration checks iterate this.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_TESTS_QUERYCORPUS_H
#define QCF_TESTS_QUERYCORPUS_H

#include "db/Datagen.h"
#include "db/Queries.h"
#include <vector>

namespace qcf::db {

/// One benchmark suite: its generated catalog plus every query over it.
struct QuerySuite {
  const char *Name;
  Catalog *Cat;
  std::vector<Query> Queries;
};

/// The full query corpus, generated once per process at scale factor
/// \p Sf (the first call's value wins; later calls return the same
/// suites). Catalogs are read-only after generation, so tests may share
/// them across threads.
inline std::vector<QuerySuite> &queryCorpus(double Sf = 0.2) {
  static std::vector<QuerySuite> Suites = [Sf] {
    static Catalog Tpch, Tpcds;
    generateTpchLike(Tpch, Sf);
    generateTpcdsLike(Tpcds, Sf);
    std::vector<QuerySuite> S;
    S.push_back(QuerySuite{"tpch", &Tpch, tpchQueries()});
    S.push_back(QuerySuite{"tpcds", &Tpcds, tpcdsQueries()});
    return S;
  }();
  return Suites;
}

} // namespace qcf::db

#endif // QCF_TESTS_QUERYCORPUS_H
