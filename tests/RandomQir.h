//===- tests/RandomQir.h - Random QIR function generator --------*- C++ -*-===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, verified, always-terminating QIR functions for
/// property-based differential testing: every back-end must produce the
/// interpreter's exact result (or trap exactly like it) on random inputs.
/// Functions take (i64, i64) and return i64; control flow is structured
/// (nested counted loops and diamonds), so termination is guaranteed.
///
//===----------------------------------------------------------------------===//

#ifndef QCF_TESTS_RANDOMQIR_H
#define QCF_TESTS_RANDOMQIR_H

#include "qir/Builder.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include "support/Rng.h"
#include <optional>
#include <vector>

namespace qcf::test {

class RandomFnBuilder {
public:
  RandomFnBuilder(qir::Module &M, Rng &R) : M(M), R(R) {}

  qir::Function *build(const std::string &Name) {
    using namespace qir;
    for (auto &P : Pool)
      P.clear();
    LoopBodyBegin = 0;
    F = M.createFunction(Name, {Type::I64, Type::I64}, Type::I64);
    B.emplace(F);

    // Seed pools from the parameters.
    addValue(Type::I64, F->paramValue(0));
    addValue(Type::I64, F->paramValue(1));
    addValue(Type::I64, B->xor_(F->paramValue(0), F->paramValue(1)));
    addValue(Type::I32, B->trunc(Type::I32, F->paramValue(0)));
    addValue(Type::I32, B->trunc(Type::I32, F->paramValue(1)));
    addValue(Type::I16, B->trunc(Type::I16, F->paramValue(0)));
    addValue(Type::I8, B->trunc(Type::I8, F->paramValue(1)));
    addValue(Type::I128, B->sext(Type::I128, F->paramValue(0)));
    addValue(Type::F64, B->sitofp(F->paramValue(1)));
    addValue(Type::I1, B->icmp(CmpPred::SLt, F->paramValue(0),
                               F->paramValue(1)));
    for (int I = 0; I != 3; ++I)
      addValue(Type::I64,
               B->constInt(Type::I64, static_cast<int64_t>(R.next())));
    addValue(Type::I32,
             B->constInt(Type::I32, static_cast<int32_t>(R.next())));
    addValue(Type::I128, B->constI128(makeInt128(R.next(), R.next() >> 32)));
    addValue(Type::F64, B->constF64(static_cast<double>(R.nextRange(-1000, 1000)) / 8.0));

    // A fully initialized 32-byte scratch slot for random memory traffic
    // (uninitialized reads would be frame-layout-dependent).
    Slot = B->stackSlot(32);
    B->store(B->sext(Type::I128, F->paramValue(0)), Slot);
    B->store(B->sext(Type::I128, F->paramValue(1)), B->gep(Slot, 16));
    Crc32Sym = M.declareRuntime("rt_crc32", Type::I64,
                                {Type::I64, Type::I64},
                                rt::runtimeSymbolAddress("rt_crc32"));

    unsigned NumRegions = 1 + static_cast<unsigned>(R.nextBounded(3));
    for (unsigned I = 0; I != NumRegions; ++I) {
      emitStraightLine(3 + static_cast<unsigned>(R.nextBounded(6)));
      switch (R.nextBounded(3)) {
      case 0:
        emitDiamond();
        break;
      case 1:
        emitCountedLoop();
        break;
      default:
        break; // straight-line only
      }
    }
    emitStraightLine(2 + static_cast<unsigned>(R.nextBounded(4)));

    // Fold a handful of values into the i64 result.
    qir::ValueId Acc = pick(qir::Type::I64);
    for (int I = 0; I != 4; ++I) {
      qir::ValueId V = toI64(pickAnyType());
      Acc = B->xor_(B->rotr(Acc, B->constInt(qir::Type::I64, 7)), V);
    }
    B->ret(Acc);
    return F;
  }

private:
  using Type = qir::Type;
  using ValueId = qir::ValueId;
  using CmpPred = qir::CmpPred;

  static constexpr Type ScalarTypes[] = {Type::I8,  Type::I16, Type::I32,
                                         Type::I64, Type::I128};

  void addValue(Type Ty, ValueId V) { Pool[typeIdx(Ty)].push_back(V); }

  static unsigned typeIdx(Type Ty) {
    switch (Ty) {
    case Type::I1:
      return 0;
    case Type::I8:
      return 1;
    case Type::I16:
      return 2;
    case Type::I32:
      return 3;
    case Type::I64:
      return 4;
    case Type::I128:
      return 5;
    case Type::F64:
      return 6;
    default:
      QCF_UNREACHABLE("unsupported type in random generator");
    }
  }

  ValueId pick(Type Ty) {
    auto &P = Pool[typeIdx(Ty)];
    assert(!P.empty() && "empty value pool");
    return P[R.nextBounded(P.size())];
  }

  Type pickAnyType() {
    static constexpr Type All[] = {Type::I1,  Type::I8,   Type::I16,
                                   Type::I32, Type::I64,  Type::I128,
                                   Type::F64};
    for (;;) {
      Type Ty = All[R.nextBounded(7)];
      if (!Pool[typeIdx(Ty)].empty())
        return Ty;
    }
  }

  ValueId toI64(Type Ty) {
    ValueId V = pick(Ty);
    switch (Ty) {
    case Type::I64:
      return V;
    case Type::I128:
      return B->extractLo(V);
    case Type::F64:
      return B->bitcast(Type::I64, V);
    default:
      return R.nextBool() ? B->zext(Type::I64, V) : B->sext(Type::I64, V);
    }
  }

  /// Emits one random value-producing instruction.
  void emitRandomOp() {
    using qir::Opcode;
    Type Ty = ScalarTypes[R.nextBounded(5)];
    unsigned Kind = static_cast<unsigned>(R.nextBounded(100));

    if (Kind < 38) {
      // Plain binary arithmetic.
      static constexpr Opcode Ops[] = {Opcode::Add,  Opcode::Sub,
                                       Opcode::Mul,  Opcode::And,
                                       Opcode::Or,   Opcode::Xor};
      addValue(Ty, B->binary(Ops[R.nextBounded(6)], pick(Ty), pick(Ty)));
    } else if (Kind < 45) {
      // Memory traffic through the scratch slot. Offsets keep every
      // access inside the 32 initialized bytes; type-punning reads are
      // fine (all back-ends see the same bytes).
      int64_t Off = static_cast<int64_t>(R.nextBounded(2)) * 16;
      ValueId P = B->gep(Slot, Off);
      switch (R.nextBounded(3)) {
      case 0:
        B->store(pick(Ty), P);
        addValue(Ty, B->load(Ty, P));
        break;
      case 1:
        addValue(Ty, B->load(Ty, P));
        break;
      default:
        addValue(Type::I64, B->atomicAdd(P, pick(Type::I64)));
        break;
      }
    } else if (Kind < 55) {
      // Shifts / rotates (rotate only for one-lane types).
      static constexpr Opcode Ops[] = {Opcode::Shl, Opcode::LShr,
                                       Opcode::AShr, Opcode::RotR};
      Opcode Op = Ops[R.nextBounded(Ty == Type::I128 ? 3 : 4)];
      // Amounts >= the bit width are undefined (see Opcode.h), so keep
      // generated amounts in range.
      ValueId Amount = B->constInt(
          Type::I64, static_cast<int64_t>(R.nextBounded(intBits(Ty))));
      // Shift amounts are i64 in QIR regardless of the operand type; the
      // builder's assert allows mismatched RHS width for shifts.
      addValue(Ty, B->binary(Op, pick(Ty),
                             Ty == Type::I128 || Ty == Type::I64
                                 ? Amount
                                 : adjustWidth(Amount, Ty)));
    } else if (Kind < 63) {
      // Comparisons.
      static constexpr CmpPred Preds[] = {
          CmpPred::Eq,  CmpPred::Ne,  CmpPred::SLt, CmpPred::SLe,
          CmpPred::SGt, CmpPred::SGe, CmpPred::ULt, CmpPred::ULe,
          CmpPred::UGt, CmpPred::UGe};
      addValue(Type::I1, B->icmp(Preds[R.nextBounded(10)], pick(Ty),
                                 pick(Ty)));
    } else if (Kind < 70) {
      // Select.
      addValue(Ty, B->select(pick(Type::I1), pick(Ty), pick(Ty)));
    } else if (Kind < 76) {
      // Trapping arithmetic (i32/i64/i128 only). Multiplications mask
      // their operands so overflow traps stay rare and most seeds test
      // full functions; add/sub overflow naturally stays rare.
      Type TT = Ty == Type::I8 || Ty == Type::I16 ? Type::I32 : Ty;
      if (R.nextBounded(3) == 0) {
        ValueId MA = B->binary(Opcode::And, pick(TT), smallMask(TT));
        ValueId MB = B->binary(Opcode::And, pick(TT), smallMask(TT));
        addValue(TT, B->smulTrap(MA, MB));
      } else {
        addValue(TT, R.nextBool() ? B->saddTrap(pick(TT), pick(TT))
                                  : B->ssubTrap(pick(TT), pick(TT)));
      }
    } else if (Kind < 80 && Ty != Type::I128) {
      // Division (may trap on zero/overflow — both sides must agree).
      static constexpr Opcode Ops[] = {Opcode::SDiv, Opcode::UDiv,
                                       Opcode::SRem};
      addValue(Ty, B->binary(Ops[R.nextBounded(3)], pick(Ty), pick(Ty)));
    } else if (Kind < 85) {
      // Hash primitives, sometimes through the runtime-call ABI.
      switch (R.nextBounded(3)) {
      case 0:
        addValue(Type::I64, B->crc32(pick(Type::I64), pick(Type::I64)));
        break;
      case 1:
        addValue(Type::I64,
                 B->longMulFold(pick(Type::I64), pick(Type::I64)));
        break;
      default:
        addValue(Type::I64,
                 B->call(Crc32Sym, {pick(Type::I64), pick(Type::I64)}));
        break;
      }
    } else if (Kind < 92) {
      // Conversions.
      emitRandomConversion();
    } else if (Kind < 96) {
      // Float arithmetic.
      static constexpr Opcode Ops[] = {Opcode::FAdd, Opcode::FSub,
                                       Opcode::FMul, Opcode::FDiv};
      addValue(Type::F64, B->binary(Ops[R.nextBounded(4)], pick(Type::F64),
                                    pick(Type::F64)));
      addValue(Type::I1, B->fcmp(CmpPred::SLt, pick(Type::F64),
                                 pick(Type::F64)));
    } else {
      // Unary ops.
      if (R.nextBool())
        addValue(Ty, B->neg(pick(Ty)));
      else
        addValue(Ty, B->not_(pick(Ty)));
    }
  }

  ValueId adjustWidth(ValueId I64Val, Type To) {
    return B->trunc(To, I64Val);
  }

  /// A mask constant keeping values small enough that products cannot
  /// overflow the type.
  ValueId smallMask(Type Ty) {
    if (Ty == Type::I128)
      return B->constI128(0xffffffff);
    return B->constInt(Ty, Ty == Type::I32 ? 0x7fff : 0x7fffffff);
  }

  void emitRandomConversion() {
    switch (R.nextBounded(6)) {
    case 0:
      addValue(Type::I64, B->zext(Type::I64, pick(Type::I32)));
      break;
    case 1:
      addValue(Type::I128, B->sext(Type::I128, pick(Type::I64)));
      break;
    case 2:
      addValue(Type::I16, B->trunc(Type::I16, pick(Type::I64)));
      break;
    case 3:
      addValue(Type::F64, B->sitofp(pick(Type::I32)));
      break;
    case 4:
      addValue(Type::I64, B->fptosi(Type::I64, pick(Type::F64)));
      break;
    default:
      addValue(Type::I64, B->extractHi(pick(Type::I128)));
      break;
    }
  }

  void emitStraightLine(unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      emitRandomOp();
  }

  /// cond ? (ops...) : (ops...); merges one phi per branch-computed value.
  void emitDiamond() {
    using qir::BlockId;
    BlockId T = B->createBlock(), E = B->createBlock(), J = B->createBlock();
    ValueId Cond = pick(Type::I1);
    B->condBr(Cond, T, E);

    B->startBlock(T);
    Type Ty = ScalarTypes[R.nextBounded(5)];
    ValueId VT = B->binary(qir::Opcode::Add, pick(Ty), pick(Ty));
    B->br(J);

    B->startBlock(E);
    ValueId VE = B->binary(qir::Opcode::Xor, pick(Ty), pick(Ty));
    B->br(J);

    B->startBlock(J);
    ValueId P = B->phi(Ty, 2);
    B->setPhiIncoming(P, 0, T, VT);
    B->setPhiIncoming(P, 1, E, VE);
    addValue(Ty, P);
  }

  /// A counted loop with a loop-carried accumulator.
  void emitCountedLoop() {
    using qir::BlockId;
    BlockId Pre = B->currentBlock();
    BlockId H = B->createBlock(), Body = B->createBlock(),
            Exit = B->createBlock();
    Type Ty = R.nextBool() ? Type::I64 : Type::I32;
    ValueId Init = pick(Ty);
    ValueId Zero = B->constInt(Type::I64, 0);
    ValueId Limit = B->constInt(
        Type::I64, static_cast<int64_t>(1 + R.nextBounded(9)));
    B->br(H);

    B->startBlock(H);
    ValueId I = B->phi(Type::I64, 2);
    ValueId Acc = B->phi(Ty, 2);
    ValueId Cond = B->icmp(CmpPred::SLt, I, Limit);
    B->condBr(Cond, Body, Exit);

    B->startBlock(Body);
    LoopBodyBegin = F->numInsts();
    addValue(Ty, Acc);
    // A couple of random ops inside the loop (they can use Acc).
    emitStraightLine(1 + static_cast<unsigned>(R.nextBounded(3)));
    ValueId Step = B->binary(qir::Opcode::Add, Acc, pick(Ty));
    ValueId Rot = B->rotr(Acc, B->constInt(Type::I64, 9));
    ValueId Next = B->xor_(Step, Rot);
    ValueId INext = B->add(I, B->constInt(Type::I64, 1));
    B->br(H);

    B->startBlock(Exit);
    B->setPhiIncoming(I, 0, Pre, Zero);
    B->setPhiIncoming(I, 1, Body, INext);
    B->setPhiIncoming(Acc, 0, Pre, Init);
    B->setPhiIncoming(Acc, 1, Body, Next);
    addValue(Ty, Acc);
    // Values created inside the loop must not leak into later pools (they
    // do not dominate code after the loop) — handled by popping them.
    // See pruneToDominating() below.
    pruneLoopLocals();
  }

  /// Values defined inside the most recent loop body do not dominate the
  /// exit; remove them from the pools. We conservatively keep only values
  /// defined before the loop header plus the loop phis (which dominate the
  /// exit block).
  void pruneLoopLocals() {
    // Rebuild pools keeping only values defined before the loop body
    // start, plus header phis. The body range is [BodyBegin, BodyEnd).
    const qir::Function &Fn = *F;
    for (auto &P : Pool) {
      std::vector<ValueId> Kept;
      for (ValueId V : P) {
        // Header phis and everything before them dominate the exit.
        if (Fn.inst(V).Op == qir::Opcode::Phi || V < LoopBodyBegin)
          Kept.push_back(V);
      }
      P = std::move(Kept);
    }
  }

  qir::Module &M;
  Rng &R;
  qir::Function *F = nullptr;
  qir::ValueId Slot = qir::INVALID_VALUE;
  qir::SymbolId Crc32Sym = 0;
  std::optional<qir::Builder> B;
  std::vector<ValueId> Pool[7];
  ValueId LoopBodyBegin = 0;
};

} // namespace qcf::test

#endif // QCF_TESTS_RANDOMQIR_H
