//===- tests/RuntimeTest.cpp - Runtime library unit tests ------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Hash.h"
#include <cstring>
#include <gtest/gtest.h>
#include <set>
#include <thread>

using namespace qcf;
using namespace qcf::rt;

// --- StringVal ---------------------------------------------------------------

TEST(StringVal, InlineLayout) {
  StringVal S = StringVal::makeRef("hello", 5);
  EXPECT_TRUE(S.isInline());
  EXPECT_EQ(S.Len, 5u);
  EXPECT_EQ(S.str(), "hello");
  // Bytes 4..8 hold 'h','e','l','l','o'.
  const char *Raw = reinterpret_cast<const char *>(&S);
  EXPECT_EQ(Raw[4], 'h');
  EXPECT_EQ(Raw[8], 'o');
}

TEST(StringVal, TwelveByteBoundary) {
  StringVal S12 = StringVal::makeRef("abcdefghijkl", 12);
  EXPECT_TRUE(S12.isInline());
  EXPECT_EQ(S12.str(), "abcdefghijkl");
  const char *Long = "abcdefghijklm";
  StringVal S13 = StringVal::makeRef(Long, 13);
  EXPECT_FALSE(S13.isInline());
  EXPECT_EQ(S13.str(), "abcdefghijklm");
  // Long form: prefix holds the first four characters, pointer the data.
  EXPECT_EQ(std::memcmp(S13.Prefix, "abcd", 4), 0);
  EXPECT_EQ(S13.Data, Long);
}

TEST(StringVal, LaneRoundTrip) {
  StringVal S = StringVal::makeRef("lane trip", 9);
  StringVal T = StringVal::fromLanes(S.lo(), S.hi());
  EXPECT_TRUE(stringEq(S, T));
}

TEST(StringVal, ComparisonSemantics) {
  StringVal A = StringVal::makeRef("apple", 5);
  StringVal B = StringVal::makeRef("apples", 6);
  StringVal C = StringVal::makeRef("banana", 6);
  EXPECT_LT(stringCmp(A, B), 0);
  EXPECT_GT(stringCmp(B, A), 0);
  EXPECT_LT(stringCmp(A, C), 0);
  EXPECT_EQ(stringCmp(A, A), 0);
  EXPECT_TRUE(stringEq(A, A));
  EXPECT_FALSE(stringEq(A, B));
}

TEST(StringVal, PrefixEarlyOut) {
  // Equal length, different prefix word: must not be equal.
  StringVal A = StringVal::makeRef("abcdX", 5);
  StringVal B = StringVal::makeRef("abceX", 5);
  EXPECT_FALSE(stringEq(A, B));
}

TEST(RtString, ContainsAndPrefix) {
  StringVal Hay = StringVal::makeRef("the quick brown fox", 19);
  EXPECT_EQ(rt_str_contains(Hay, StringVal::makeRef("quick", 5)), 1u);
  EXPECT_EQ(rt_str_contains(Hay, StringVal::makeRef("slow", 4)), 0u);
  EXPECT_EQ(rt_str_contains(Hay, StringVal::makeRef("", 0)), 1u);
  EXPECT_EQ(rt_str_prefix(Hay, StringVal::makeRef("the q", 5)), 1u);
  EXPECT_EQ(rt_str_prefix(Hay, StringVal::makeRef("quick", 5)), 0u);
}

TEST(RtString, Like) {
  StringVal S = StringVal::makeRef("promo burnished", 15);
  EXPECT_EQ(rt_str_like(S, StringVal::makeRef("promo%", 6)), 1u);
  EXPECT_EQ(rt_str_like(S, StringVal::makeRef("%burnished", 10)), 1u);
  EXPECT_EQ(rt_str_like(S, StringVal::makeRef("%bur%", 5)), 1u);
  EXPECT_EQ(rt_str_like(S, StringVal::makeRef("%burx%", 6)), 0u);
  EXPECT_EQ(rt_str_like(S, StringVal::makeRef("promo burnishe_", 15)), 1u);
  EXPECT_EQ(rt_str_like(S, StringVal::makeRef("_romo%", 6)), 1u);
  EXPECT_EQ(rt_str_like(S, StringVal::makeRef("x%", 2)), 0u);
}

TEST(RtString, ConcatAndSubstr) {
  Arena A;
  StringVal S1 = StringVal::makeRef("query ", 6);
  StringVal S2 = StringVal::makeRef("compilation", 11);
  StringVal Cat = rt_str_concat(&A, S1, S2);
  EXPECT_EQ(Cat.str(), "query compilation");
  StringVal Sub = rt_str_substr(&A, Cat, 6, 7);
  EXPECT_EQ(Sub.str(), "compila");
  StringVal Short = rt_str_concat(&A, StringVal::makeRef("ab", 2),
                                  StringVal::makeRef("cd", 2));
  EXPECT_TRUE(Short.isInline());
  EXPECT_EQ(Short.str(), "abcd");
  StringVal OutOfRange = rt_str_substr(&A, Cat, 100, 5);
  EXPECT_EQ(OutOfRange.Len, 0u);
}

TEST(RtString, HashConsistentWithHost) {
  StringVal S = StringVal::makeRef("lineitem", 8);
  EXPECT_EQ(rt_str_hash(S), stringHash(S));
  EXPECT_NE(rt_str_hash(S), rt_str_hash(StringVal::makeRef("lineitems", 9)));
}

// --- HashTable -----------------------------------------------------------------

TEST(HashTable, InsertAndLookup) {
  HashTable Ht(100, 16);
  struct Payload {
    uint64_t Key, Value;
  };
  for (uint64_t K = 0; K != 100; ++K) {
    auto *P = static_cast<Payload *>(Ht.insert(hashU64(K)));
    P->Key = K;
    P->Value = K * 10;
  }
  EXPECT_EQ(Ht.count(), 100u);
  for (uint64_t K = 0; K != 100; ++K) {
    void *E = Ht.lookup(hashU64(K));
    ASSERT_NE(E, nullptr);
    // Walk the chain to find the matching key (hash collisions possible).
    bool Found = false;
    while (E) {
      auto *P = reinterpret_cast<Payload *>(static_cast<char *>(E) +
                                            HashTable::HeaderBytes);
      if (P->Key == K) {
        EXPECT_EQ(P->Value, K * 10);
        Found = true;
        break;
      }
      E = HashTable::nextMatch(E, hashU64(K));
    }
    EXPECT_TRUE(Found) << "key " << K;
  }
  EXPECT_EQ(Ht.lookup(hashU64(1234567)), nullptr);
}

TEST(HashTable, DuplicateHashesChain) {
  HashTable Ht(10, 8);
  uint64_t H = 0x1234;
  for (uint64_t I = 0; I != 5; ++I)
    *static_cast<uint64_t *>(Ht.insert(H)) = I;
  std::set<uint64_t> Seen;
  for (void *E = Ht.lookup(H); E; E = HashTable::nextMatch(E, H))
    Seen.insert(*reinterpret_cast<uint64_t *>(static_cast<char *>(E) +
                                              HashTable::HeaderBytes));
  EXPECT_EQ(Seen, (std::set<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(HashTable, DenseIterationOrder) {
  HashTable Ht(10, 8);
  for (uint64_t I = 0; I != 50; ++I)
    *static_cast<uint64_t *>(Ht.insert(I * 7)) = I;
  ASSERT_EQ(Ht.count(), 50u);
  for (uint64_t I = 0; I != 50; ++I) {
    auto *P = reinterpret_cast<uint64_t *>(
        static_cast<char *>(Ht.entryAt(I)) + HashTable::HeaderBytes);
    EXPECT_EQ(*P, I); // insertion order
  }
}

TEST(HashTable, GrowsBeyondExpectation) {
  HashTable Ht(4, 8);
  for (uint64_t I = 0; I != 10000; ++I)
    *static_cast<uint64_t *>(Ht.insert(hashU64(I))) = I;
  EXPECT_EQ(Ht.count(), 10000u);
  void *E = Ht.lookup(hashU64(9999));
  ASSERT_NE(E, nullptr);
}

TEST(HashTable, AtomicInsertFromThreads) {
  HashTable Ht(4096, 8);
  constexpr int NumThreads = 4, PerThread = 1000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Ht, T] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        uint64_t K = static_cast<uint64_t>(T) * PerThread + I;
        *static_cast<uint64_t *>(Ht.insertAtomic(hashU64(K))) = K;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Ht.count(), static_cast<uint64_t>(NumThreads) * PerThread);
  // Every key must be findable.
  for (uint64_t K = 0; K != NumThreads * PerThread; ++K) {
    bool Found = false;
    for (void *E = Ht.lookup(hashU64(K)); E;
         E = HashTable::nextMatch(E, hashU64(K)))
      if (*reinterpret_cast<uint64_t *>(static_cast<char *>(E) +
                                        HashTable::HeaderBytes) == K)
        Found = true;
    EXPECT_TRUE(Found) << "key " << K;
    if (!Found)
      break;
  }
}

// --- Traps ---------------------------------------------------------------------

TEST(Trap, GuardCatchesTrap) {
  rt::TrapCode Code = runWithTrapGuard(
      [] { rt_trap(static_cast<uint64_t>(TrapCode::Overflow)); });
  EXPECT_EQ(Code, TrapCode::Overflow);
}

TEST(Trap, NestedGuards) {
  rt::TrapCode Outer = runWithTrapGuard([] {
    rt::TrapCode Inner = runWithTrapGuard(
        [] { rt_trap(static_cast<uint64_t>(TrapCode::DivByZero)); });
    EXPECT_EQ(Inner, TrapCode::DivByZero);
    // The outer guard is restored; trap again.
    rt_trap(static_cast<uint64_t>(TrapCode::Overflow));
  });
  EXPECT_EQ(Outer, TrapCode::Overflow);
}

TEST(Trap, NoTrapReturnsNone) {
  EXPECT_EQ(runWithTrapGuard([] {}), TrapCode::None);
}

TEST(Trap, Mul128HelperTraps) {
  Int128 Big = makeInt128(0, 1ull << 62);
  rt::TrapCode Code = runWithTrapGuard([&] { rt_mul128_ovf(Big, 4); });
  EXPECT_EQ(Code, TrapCode::Overflow);
  EXPECT_EQ(runWithTrapGuard([&] {
              Int128 R = rt_mul128_ovf(1000, 1000);
              EXPECT_EQ(R, 1000000);
            }),
            TrapCode::None);
}

// --- Dates -----------------------------------------------------------------------

TEST(Dates, KnownDates) {
  EXPECT_EQ(dateFromYmd(1970, 1, 1), 0);
  EXPECT_EQ(dateFromYmd(1970, 1, 2), 1);
  EXPECT_EQ(dateFromYmd(1969, 12, 31), -1);
  EXPECT_EQ(dateFromYmd(2000, 3, 1), 11017);
  EXPECT_EQ(rt_date_year(dateFromYmd(1995, 6, 17)), 1995);
  EXPECT_EQ(rt_date_month(dateFromYmd(1995, 6, 17)), 6);
  EXPECT_EQ(rt_date_year(dateFromYmd(2024, 2, 29)), 2024);
  EXPECT_EQ(rt_date_month(dateFromYmd(2024, 12, 31)), 12);
}

TEST(Dates, RoundTripSweep) {
  for (int64_t D = -1000; D <= 30000; D += 37) {
    int64_t Y = rt_date_year(D);
    int64_t M = rt_date_month(D);
    EXPECT_GE(M, 1);
    EXPECT_LE(M, 12);
    EXPECT_GE(Y, 1967);
    EXPECT_LE(Y, 2053);
  }
}

// --- OutputBuffer ----------------------------------------------------------------

TEST(OutputBuffer, RowsAndText) {
  OutputBuffer O;
  O.beginRow();
  O.appendI64(42);
  O.appendStr(StringVal::makeRef("abc", 3));
  O.beginRow();
  O.appendF64(2.5);
  O.appendI128(makeInt128(5, 0));
  EXPECT_EQ(O.numRows(), 2u);
  std::string Text = O.toText();
  EXPECT_NE(Text.find("42|abc"), std::string::npos);
  EXPECT_NE(Text.find("2.500000|5"), std::string::npos);
}

TEST(OutputBuffer, I128Rendering) {
  OutputBuffer O;
  O.beginRow();
  O.appendI128(static_cast<Int128>(-1));
  O.beginRow();
  Int128 Big = makeInt128(0x0ull, 0x1ull); // 2^64
  O.appendI128(Big);
  std::string Text = O.toText();
  EXPECT_NE(Text.find("-1"), std::string::npos);
  EXPECT_NE(Text.find("18446744073709551616"), std::string::npos);
}

TEST(OutputBuffer, UnorderedDigestIgnoresRowOrder) {
  OutputBuffer A, B;
  A.beginRow();
  A.appendI64(1);
  A.beginRow();
  A.appendI64(2);
  B.beginRow();
  B.appendI64(2);
  B.beginRow();
  B.appendI64(1);
  EXPECT_EQ(A.unorderedDigest(), B.unorderedDigest());
  B.beginRow();
  B.appendI64(3);
  EXPECT_NE(A.unorderedDigest(), B.unorderedDigest());
}

TEST(OutputBuffer, EqualsWithFloatTolerance) {
  OutputBuffer A, B;
  A.beginRow();
  A.appendF64(1.0);
  B.beginRow();
  B.appendF64(1.0 + 1e-13);
  EXPECT_TRUE(A.equals(B));
  OutputBuffer C;
  C.beginRow();
  C.appendF64(1.1);
  EXPECT_FALSE(A.equals(C));
}

TEST(OutputBuffer, StringsCopiedIntoBuffer) {
  OutputBuffer O;
  {
    std::string Tmp = "a rather long string beyond inline";
    O.beginRow();
    O.appendStr(
        StringVal::makeRef(Tmp.data(), static_cast<uint32_t>(Tmp.size())));
  } // Tmp destroyed; the buffer must have copied the bytes.
  EXPECT_NE(O.toText().find("a rather long string beyond inline"),
            std::string::npos);
}

// --- C ABI entry points -------------------------------------------------------------

TEST(RuntimeCAbi, OutFunctions) {
  OutputBuffer O;
  rt_out_row(&O);
  rt_out_i64(&O, -5);
  double D = 1.25;
  uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  rt_out_f64bits(&O, Bits);
  rt_out_i128(&O, makeInt128(7, 0));
  rt_out_str(&O, StringVal::makeRef("xy", 2));
  EXPECT_EQ(O.numRows(), 1u);
  EXPECT_NE(O.toText().find("-5|1.250000|7|xy"), std::string::npos);
}

TEST(RuntimeCAbi, SymbolTableComplete) {
  // Every symbol declared by declareRuntime must resolve to an address.
  qir::Module M;
  RuntimeSyms Syms = declareRuntime(M);
  (void)Syms;
  for (qir::SymbolId I = 0; I != M.numSymbols(); ++I) {
    EXPECT_NE(M.symbol(I).Address, nullptr) << M.symbol(I).Name;
    EXPECT_EQ(M.symbol(I).Address, runtimeSymbolAddress(M.symbol(I).Name));
  }
}

TEST(RuntimeCAbi, RuntimeSigSlotLimit) {
  // The ABI contract: no declared runtime function exceeds 6 slots.
  qir::Module M;
  declareRuntime(M);
  for (qir::SymbolId I = 0; I != M.numSymbols(); ++I) {
    unsigned Slots = 0;
    for (qir::Type T : M.symbol(I).ParamTypes)
      Slots += qir::isTwoLane(T) ? 2 : 1;
    EXPECT_LE(Slots, 6u) << M.symbol(I).Name;
  }
}

TEST(RuntimeCAbi, ArenaAlloc) {
  Arena A;
  void *P1 = rt_arena_alloc(&A, 100);
  void *P2 = rt_arena_alloc(&A, 100);
  EXPECT_NE(P1, nullptr);
  EXPECT_NE(P1, P2);
  std::memset(P1, 0xaa, 100);
  std::memset(P2, 0xbb, 100);
  EXPECT_EQ(static_cast<uint8_t *>(P1)[99], 0xaa);
}

TEST(RuntimeCAbi, SortWithHostComparator) {
  struct Row {
    int64_t Key;
    int64_t Payload;
  };
  Row Rows[] = {{3, 30}, {1, 10}, {2, 20}, {1, 11}};
  auto Cmp = +[](const void *A, const void *B) -> int64_t {
    return static_cast<const Row *>(A)->Key - static_cast<const Row *>(B)->Key;
  };
  rt_sort(Rows, 4, sizeof(Row), reinterpret_cast<void *>(Cmp));
  EXPECT_EQ(Rows[0].Key, 1);
  EXPECT_EQ(Rows[1].Key, 1);
  // Stable: (1,10) before (1,11).
  EXPECT_EQ(Rows[0].Payload, 10);
  EXPECT_EQ(Rows[1].Payload, 11);
  EXPECT_EQ(Rows[3].Key, 3);
}
