//===- tests/ServeTest.cpp - Serving-layer tests ---------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the serving layer (src/serve/): AdmissionGate slot/queue/
/// shed/cancel semantics, the Session lifecycle through Server (open,
/// execute, close, idle eviction, quotas, shutdown), the cancel-before-
/// run contract (a cancelled query abandons its queued compile ticket
/// instead of waiting for a worker), and the restart storm — several
/// forked processes sharing one $QCF_CODE_CACHE directory, with the
/// warm wave required to install everything from disk and the blob
/// population required to stay checksum-valid throughout.
///
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/CompileService.h"
#include "backend/DiskCache.h"
#include "backend/Registry.h"
#include "db/Codegen.h"
#include "db/Datagen.h"
#include "db/Executor.h"
#include "db/Queries.h"
#include "interp/Interp.h"
#include "qir/Builder.h"
#include "qir/Verify.h"
#include "runtime/Trap.h"
#include "serve/Server.h"
#include "support/TimeTrace.h"
#include "tests/RandomQir.h"
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace qcf;
using namespace qcf::serve;

namespace {

/// Small shared catalog + query for Server tests (column addresses are
/// baked into generated code, so one catalog serves every test).
struct Corpus {
  db::Catalog Cat;
  std::vector<db::Query> Queries;
  Corpus() {
    db::generateTpchLike(Cat, 0.01);
    Queries = db::tpchQueries();
  }
};

Corpus &corpus() {
  static Corpus C;
  return C;
}

ServerConfig testConfig(obs::MetricsRegistry *Reg) {
  ServerConfig Cfg;
  Cfg.BackendName = "DirectEmit";
  Cfg.CompileWorkers = 2;
  Cfg.StartSweeper = false;
  Cfg.Reg = Reg;
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// AdmissionGate
//===----------------------------------------------------------------------===//

TEST(AdmissionGate, AdmitsUpToSlotsThenQueues) {
  obs::MetricsRegistry Reg;
  AdmissionGate::Config Cfg;
  Cfg.Slots = 2;
  Cfg.MaxWaiters = 4;
  AdmissionGate G(Cfg, &Reg);

  EXPECT_EQ(G.enter().Outcome, Admit::Ok);
  EXPECT_EQ(G.enter().Outcome, Admit::Ok);
  EXPECT_EQ(G.running(), 2u);

  // Third entry waits; a leave() promotes it.
  std::atomic<bool> Entered{false};
  std::thread T([&] {
    EXPECT_EQ(G.enter().Outcome, Admit::Ok);
    Entered.store(true);
  });
  while (G.waiting() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(Entered.load());
  G.leave(1'000'000);
  T.join();
  EXPECT_TRUE(Entered.load());
  EXPECT_EQ(G.running(), 2u);
  G.leave();
  G.leave();
  EXPECT_EQ(G.running(), 0u);
  EXPECT_EQ(Reg.snapshot().counter("serve.admission.admitted"), 3u);
}

TEST(AdmissionGate, RejectsTypedWhenQueueFull) {
  AdmissionGate::Config Cfg;
  Cfg.Slots = 1;
  Cfg.MaxWaiters = 0; // No queue: overflow rejects immediately.
  AdmissionGate G(Cfg);

  ASSERT_EQ(G.enter().Outcome, Admit::Ok);
  G.leave(5'000'000); // Seed the EWMA so the hint is nonzero.
  ASSERT_EQ(G.enter().Outcome, Admit::Ok);
  AdmissionGate::Decision D = G.enter();
  EXPECT_EQ(D.Outcome, Admit::QueueFull);
  EXPECT_GT(D.RetryAfterNs, 0u);
  G.leave();
}

TEST(AdmissionGate, ColdRetryHintUsesConfiguredHoldEstimate) {
  // Regression: before any query completed the EWMA had no samples and
  // the hint degraded to the 1ms spin floor — exactly during a restart
  // stampede, when holds are compile-dominated. A cold gate must quote
  // the configured estimate, not the floor.
  AdmissionGate::Config Cfg;
  Cfg.Slots = 1;
  Cfg.MaxWaiters = 0;
  Cfg.ColdHoldNs = 40'000'000;
  AdmissionGate G(Cfg);

  ASSERT_EQ(G.enter().Outcome, Admit::Ok); // Occupy the slot; EWMA empty.
  AdmissionGate::Decision Cold = G.enter();
  EXPECT_EQ(Cold.Outcome, Admit::QueueFull);
  // One queued-ahead request over one slot: the full cold estimate.
  EXPECT_EQ(Cold.RetryAfterNs, 40'000'000u);

  // Once a real hold lands, the EWMA replaces the cold estimate.
  G.leave(2'000'000);
  ASSERT_EQ(G.enter().Outcome, Admit::Ok);
  AdmissionGate::Decision Warm = G.enter();
  EXPECT_EQ(Warm.Outcome, Admit::QueueFull);
  EXPECT_EQ(Warm.RetryAfterNs, 2'000'000u);
  G.leave();
}

TEST(AdmissionGate, ColdHintNeverDropsBelowSpinFloor) {
  AdmissionGate::Config Cfg;
  Cfg.Slots = 8; // Queued(1) * hold / 8 would quote microseconds...
  Cfg.MaxWaiters = 0;
  Cfg.ColdHoldNs = 0; // ...and a zero estimate must not mean "now".
  AdmissionGate G(Cfg);
  for (unsigned I = 0; I != 8; ++I)
    ASSERT_EQ(G.enter().Outcome, Admit::Ok);
  AdmissionGate::Decision D = G.enter();
  EXPECT_EQ(D.Outcome, Admit::QueueFull);
  EXPECT_GE(D.RetryAfterNs, 1'000'000u);
  for (unsigned I = 0; I != 8; ++I)
    G.leave();
}

TEST(AdmissionGate, HighPriorityShedsNewestLowWaiter) {
  AdmissionGate::Config Cfg;
  Cfg.Slots = 1;
  Cfg.MaxWaiters = 1;
  AdmissionGate G(Cfg);
  ASSERT_EQ(G.enter().Outcome, Admit::Ok); // Occupy the slot.

  std::atomic<int> LowOutcome{-1}, HighOutcome{-1};
  std::thread Low([&] {
    LowOutcome.store(int(G.enter(/*LowPriority=*/true).Outcome));
  });
  while (G.waiting() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Queue is full (MaxWaiters=1); the normal-priority arrival sheds the
  // low-priority waiter and takes its place.
  std::thread High([&] { HighOutcome.store(int(G.enter().Outcome)); });
  Low.join();
  EXPECT_EQ(LowOutcome.load(), int(Admit::Shed));
  while (G.waiting() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  G.leave();
  High.join();
  EXPECT_EQ(HighOutcome.load(), int(Admit::Ok));
  G.leave();
}

TEST(AdmissionGate, CancelTokenAbandonsWait) {
  AdmissionGate::Config Cfg;
  Cfg.Slots = 1;
  AdmissionGate G(Cfg);
  ASSERT_EQ(G.enter().Outcome, Admit::Ok);

  qcf::CancelToken Ct;
  std::atomic<int> Outcome{-1};
  std::thread T([&] { Outcome.store(int(G.enter(false, &Ct).Outcome)); });
  while (G.waiting() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Ct.cancel();
  T.join();
  EXPECT_EQ(Outcome.load(), int(Admit::Cancelled));
  EXPECT_EQ(G.waiting(), 0u);
  G.leave();
}

TEST(AdmissionGate, CloseRejectsWaitersAndFutureEntries) {
  AdmissionGate::Config Cfg;
  Cfg.Slots = 1;
  AdmissionGate G(Cfg);
  ASSERT_EQ(G.enter().Outcome, Admit::Ok);

  std::atomic<int> Outcome{-1};
  std::thread T([&] { Outcome.store(int(G.enter().Outcome)); });
  while (G.waiting() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  G.close();
  T.join();
  EXPECT_EQ(Outcome.load(), int(Admit::ServerStopped));
  EXPECT_EQ(G.enter().Outcome, Admit::ServerStopped);
}

//===----------------------------------------------------------------------===//
// Server: sessions, quotas, lifecycle
//===----------------------------------------------------------------------===//

TEST(Serve, SessionLifecycleAndMetrics) {
  obs::MetricsRegistry Reg;
  ServerConfig Cfg = testConfig(&Reg);
  // Craneline (not DirectEmit) so the compile allocates from the metered
  // IR/MIR arenas and the measured CompileBytes settlement is visible.
  Cfg.BackendName = "Craneline";
  Server Srv(Cfg, corpus().Cat);
  Srv.registerTenant("acme", TenantQuota{});

  OpenOutcome O = Srv.openSession("acme");
  ASSERT_EQ(O.Outcome, Admit::Ok);
  ASSERT_NE(O.SessionId, 0u);
  EXPECT_EQ(Srv.numSessions(), 1u);

  rt::OutputBuffer Out;
  QueryOutcome R = Srv.execute(O.SessionId, corpus().Queries[0], &Out);
  ASSERT_EQ(R.Outcome, Admit::Ok);
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.Rows, 0u);
  EXPECT_GT(R.TotalNs, 0u);
  // Cold first query: the compile arena footprint was measured and the
  // reservation settled to it.
  EXPECT_GT(R.CompileBytes, 0u);

  // Same query again: identical digest, warm this time.
  QueryOutcome R2 = Srv.execute(O.SessionId, corpus().Queries[0]);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R2.Rows, R.Rows);
  EXPECT_EQ(R2.Digest, R.Digest);

  EXPECT_EQ(Srv.closeSession(O.SessionId), Admit::Ok);
  EXPECT_EQ(Srv.closeSession(O.SessionId), Admit::UnknownSession);
  EXPECT_EQ(Srv.execute(O.SessionId, corpus().Queries[0]).Outcome,
            Admit::UnknownSession);
  EXPECT_EQ(Srv.numSessions(), 0u);

  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counter("serve.sessions.opened"), 1u);
  EXPECT_EQ(Snap.counter("serve.sessions.closed"), 1u);
  EXPECT_EQ(Snap.gauge("serve.sessions.open"), 0);
  EXPECT_EQ(Snap.counter("serve.queries.ok"), 2u);
  EXPECT_EQ(Snap.counter("serve.admission.admitted"), 2u);
  EXPECT_GT(Snap.counterSumWithPrefix("serve."), 0u);
  EXPECT_NE(Srv.statsText().find("serve.sessions.opened"), std::string::npos);
}

TEST(Serve, UnknownTenantAndStoppedServerAreTyped) {
  obs::MetricsRegistry Reg;
  Server Srv(testConfig(&Reg), corpus().Cat);
  Srv.registerTenant("acme", TenantQuota{});
  EXPECT_EQ(Srv.openSession("nobody").Outcome, Admit::UnknownTenant);

  OpenOutcome O = Srv.openSession("acme");
  ASSERT_EQ(O.Outcome, Admit::Ok);
  Srv.shutdown();
  EXPECT_EQ(Srv.openSession("acme").Outcome, Admit::ServerStopped);
  EXPECT_EQ(Srv.execute(O.SessionId, corpus().Queries[0]).Outcome,
            Admit::ServerStopped);
  Srv.shutdown(); // Idempotent.
}

TEST(Serve, TenantSessionQuotaEnforced) {
  obs::MetricsRegistry Reg;
  Server Srv(testConfig(&Reg), corpus().Cat);
  TenantQuota Q;
  Q.MaxSessions = 2;
  Srv.registerTenant("capped", Q);

  OpenOutcome A = Srv.openSession("capped");
  OpenOutcome B = Srv.openSession("capped");
  ASSERT_EQ(A.Outcome, Admit::Ok);
  ASSERT_EQ(B.Outcome, Admit::Ok);
  OpenOutcome C = Srv.openSession("capped");
  EXPECT_EQ(C.Outcome, Admit::SessionQuota);
  EXPECT_GT(C.RetryAfterNs, 0u);

  // Closing one frees the slot.
  ASSERT_EQ(Srv.closeSession(A.SessionId), Admit::Ok);
  EXPECT_EQ(Srv.openSession("capped").Outcome, Admit::Ok);
  EXPECT_EQ(Reg.snapshot().counter("serve.tenant.capped.rejected.sessions"),
            1u);
}

TEST(Serve, CompileBytesQuotaRejectsTyped) {
  obs::MetricsRegistry Reg;
  Server Srv(testConfig(&Reg), corpus().Cat);
  TenantQuota Q;
  Q.MaxCompileBytes = 1; // Below the per-query reservation estimate.
  Srv.registerTenant("tiny", Q);

  OpenOutcome O = Srv.openSession("tiny");
  ASSERT_EQ(O.Outcome, Admit::Ok);
  QueryOutcome R = Srv.execute(O.SessionId, corpus().Queries[0]);
  EXPECT_EQ(R.Outcome, Admit::CompileBytesQuota);
  EXPECT_FALSE(R.Ok);
  EXPECT_GT(R.RetryAfterNs, 0u);
  EXPECT_EQ(Reg.snapshot().counter("serve.tenant.tiny.rejected.compile_bytes"),
            1u);
  // The failed reservation left nothing behind.
  EXPECT_EQ(Reg.snapshot().gauge("serve.tenant.tiny.compile_bytes"), 0);
}

TEST(Serve, IdleSessionsEvictedByExplicitClock) {
  obs::MetricsRegistry Reg;
  ServerConfig Cfg = testConfig(&Reg);
  Cfg.IdleTimeoutNs = 1'000'000'000ull;
  Server Srv(Cfg, corpus().Cat);
  Srv.registerTenant("acme", TenantQuota{});

  OpenOutcome A = Srv.openSession("acme");
  OpenOutcome B = Srv.openSession("acme");
  ASSERT_EQ(A.Outcome, Admit::Ok);
  ASSERT_EQ(B.Outcome, Admit::Ok);

  // Not idle long enough: nothing happens.
  EXPECT_EQ(Srv.evictIdleSessions(), 0u);
  EXPECT_EQ(Srv.numSessions(), 2u);

  // Jump the clock past the timeout: both go.
  uint64_t Future = qcf::nowNs() + 2'000'000'000ull;
  EXPECT_EQ(Srv.evictIdleSessions(Future), 2u);
  EXPECT_EQ(Srv.numSessions(), 0u);
  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counter("serve.sessions.evicted"), 2u);
  EXPECT_EQ(Snap.gauge("serve.sessions.open"), 0);
  EXPECT_EQ(Snap.gauge("serve.tenant.acme.sessions"), 0);
  EXPECT_EQ(Srv.execute(A.SessionId, corpus().Queries[0]).Outcome,
            Admit::UnknownSession);
}

TEST(Serve, ExpiredDeadlineCancelsQuery) {
  obs::MetricsRegistry Reg;
  Server Srv(testConfig(&Reg), corpus().Cat);
  Srv.registerTenant("acme", TenantQuota{});
  OpenOutcome O = Srv.openSession("acme");
  ASSERT_EQ(O.Outcome, Admit::Ok);

  // A 1ns deadline fires before (or during) the first morsel/wait tick;
  // either the admission wait or the execution path reports it.
  QueryOutcome R = Srv.execute(O.SessionId, corpus().Queries[0], nullptr, 1);
  EXPECT_TRUE(R.Cancelled || R.Outcome == Admit::Cancelled);
  EXPECT_FALSE(R.Ok);

  // The session survives a cancelled query and still serves.
  QueryOutcome R2 = Srv.execute(O.SessionId, corpus().Queries[0]);
  EXPECT_TRUE(R2.Ok);
}

TEST(Serve, CloseOfActiveSessionRetiresExactlyOnce) {
  obs::MetricsRegistry Reg;
  ServerConfig Cfg = testConfig(&Reg);
  Server Srv(Cfg, corpus().Cat);
  // Compile-latency jitter keeps queries in flight long enough for the
  // close to land mid-query at least some of the time; the assertion
  // holds in every interleaving.
  Srv.compileService().injectCompileLatencyForTest(2000);
  Srv.registerTenant("acme", TenantQuota{});

  for (int Round = 0; Round != 20; ++Round) {
    OpenOutcome O = Srv.openSession("acme");
    ASSERT_EQ(O.Outcome, Admit::Ok);
    std::thread T([&] { Srv.execute(O.SessionId, corpus().Queries[Round % 3]); });
    EXPECT_EQ(Srv.closeSession(O.SessionId), Admit::Ok);
    T.join();
    EXPECT_EQ(Srv.numSessions(), 0u);
  }
  obs::MetricsSnapshot Snap = Reg.snapshot();
  // Every session retired exactly once, whichever side won the race.
  EXPECT_EQ(Snap.counter("serve.sessions.opened"), 20u);
  EXPECT_EQ(Snap.counter("serve.sessions.closed"), 20u);
  EXPECT_EQ(Snap.gauge("serve.sessions.open"), 0);
  EXPECT_EQ(Snap.gauge("serve.tenant.acme.sessions"), 0);
  // All queries accounted with a typed disposition.
  EXPECT_EQ(Snap.counter("serve.queries.ok") +
                Snap.counter("serve.queries.cancelled") +
                Snap.counter("serve.queries.rejected"),
            20u);
}

//===----------------------------------------------------------------------===//
// Cancel-before-run: a cancelled query abandons its queued compile
//===----------------------------------------------------------------------===//

namespace {

/// Counts compile() entries (so a cancelled-before-run job shows up as a
/// count that never moved).
class CountingBackend : public backend::Backend {
public:
  explicit CountingBackend(std::unique_ptr<backend::Backend> Inner)
      : Inner(std::move(Inner)) {}
  std::string name() const override { return Inner->name(); }
  std::string cacheConfig() const override { return Inner->cacheConfig(); }
  using backend::Backend::compile;
  std::unique_ptr<backend::CompiledModule>
  compile(const qir::Module &M, const backend::CompileOptions &Opts) override {
    ++Compiles;
    return Inner->compile(M, Opts);
  }
  std::unique_ptr<backend::CompiledModule> deserialize(const uint8_t *Data,
                                                       size_t Len) override {
    return Inner->deserialize(Data, Len);
  }
  std::atomic<uint64_t> Compiles{0};

private:
  std::unique_ptr<backend::Backend> Inner;
};

/// compile() blocks until release() — pins the service's single worker.
class GateBackend : public backend::Backend {
public:
  explicit GateBackend(std::unique_ptr<backend::Backend> Inner)
      : Inner(std::move(Inner)) {}
  std::string name() const override { return Inner->name(); }
  using backend::Backend::compile;
  std::unique_ptr<backend::CompiledModule>
  compile(const qir::Module &M, const backend::CompileOptions &Opts) override {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Started = true;
    }
    Cv.notify_all();
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Released; });
    return Inner->compile(M, Opts);
  }
  void waitStarted() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Started; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Released = true;
    }
    Cv.notify_all();
  }

private:
  std::unique_ptr<backend::Backend> Inner;
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Started = false, Released = false;
};

} // namespace

// The satellite regression for cancel-before-run across the full stack:
// executor -> caching backend -> compile service. A single service
// worker is pinned by a never-finishing compile, so the query's compile
// ticket sits in the queue; firing the query's ExecControl must make
// executeQuery return Cancelled promptly by *cancelling the queued
// ticket* — the pre-fix behaviour (wait for the worker) deadlocks this
// test, because the worker never frees up until after the join.
TEST(Serve, CancelledQueryAbandonsQueuedCompile) {
  backend::CompileService Svc(1);
  auto Counting =
      std::make_unique<CountingBackend>(backend::createBackend("DirectEmit"));
  CountingBackend *Counter = Counting.get();
  auto Gated = std::make_unique<GateBackend>(std::move(Counting));
  GateBackend *Gate = Gated.get();
  backend::CachingBackend Cache(std::move(Gated), 0, &Svc);

  // Pin the only worker.
  qir::Module Dummy;
  {
    qir::Function *F = Dummy.createFunction("f", {qir::Type::I64},
                                            qir::Type::I64);
    qir::Builder B(F);
    B.ret(F->paramValue(0));
  }
  backend::SubmitOutcome Pin = Svc.submit(Dummy, Cache.inner());
  ASSERT_TRUE(Pin.Ticket.valid());
  Gate->waitStarted();

  db::CompiledPlan Plan = db::compileQuery(corpus().Queries[0], corpus().Cat);
  qcf::CancelToken Ctl;
  db::ExecOptions EO;
  EO.Control = &Ctl;
  std::atomic<bool> Returned{false};
  db::ExecResult R;
  std::thread T([&] {
    rt::OutputBuffer Out;
    R = db::executeQuery(Plan, Cache, corpus().Cat, &Out, EO);
    Returned.store(true);
  });

  // Wait until the query's compile job is queued behind the pin.
  for (int I = 0; I != 5000 && Svc.stats().JobsQueued < 2; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(Svc.stats().JobsQueued, 2u);

  Ctl.cancel();
  // The join only completes if the cancelled query abandoned its ticket:
  // the worker is still pinned, so waiting for the compile would hang.
  T.join();
  EXPECT_TRUE(Returned.load());
  EXPECT_TRUE(R.Cancelled);

  Gate->release();
  Pin.Ticket.wait();
  Svc.shutdown();
  // The abandoned job was counted, and only the pin ever compiled.
  EXPECT_GE(Svc.stats().JobsCancelled, 1u);
  EXPECT_EQ(Counter->Compiles.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Restart storm over a shared on-disk code cache
//===----------------------------------------------------------------------===//

namespace {

struct Outcome {
  bool Trapped = false;
  uint64_t Value = 0;
  bool operator==(const Outcome &O) const {
    return Trapped == O.Trapped && (Trapped || Value == O.Value);
  }
};

Outcome invokeFn(void *Entry, uint64_t A, uint64_t B) {
  Outcome Out;
  uint64_t R = 0;
  rt::TrapCode Code = rt::runWithTrapGuard([&] {
    R = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(Entry)(A, B);
  });
  if (Code != rt::TrapCode::None)
    Out.Trapped = true;
  else
    Out.Value = R;
  return Out;
}

/// Same-seed-same-module corpus: identical fingerprints in every forked
/// process, which is what makes cross-process cache sharing observable.
std::unique_ptr<qir::Module> buildServeStormModule(uint64_t Seed) {
  auto M = std::make_unique<qir::Module>();
  Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
  test::RandomFnBuilder RB(*M, R);
  RB.build("rand");
  return M;
}

} // namespace

// Satellite: N serve processes restarting over one shared QCF_CODE_CACHE.
// Wave 1 (cold, concurrent) populates the cache while racing stores;
// wave 2 (warm) must install every module from disk with zero disk
// misses; the blob population must be checksum-valid throughout (no torn
// .qcc), and a deliberately corrupted blob must be rejected and healed
// by recompilation, not served.
TEST(Serve, RestartStormSharesDiskCache) {
  char DirTemplate[] = "/tmp/qcf_serve_storm_XXXXXX";
  ASSERT_NE(::mkdtemp(DirTemplate), nullptr);
  const std::string Dir = DirTemplate;
  ::setenv("QCF_CODE_CACHE", Dir.c_str(), 1);

  // Deterministic corpus + interpreter expectations, built pre-fork so
  // every child checks against the same truth.
  constexpr int NumModules = 6;
  constexpr int NumProcs = 4;
  interp::InterpBackend Interp;
  std::vector<std::unique_ptr<qir::Module>> Mods;
  std::vector<std::vector<Outcome>> Expected(NumModules);
  std::vector<std::pair<uint64_t, uint64_t>> Inputs = {
      {0, 0}, {~0ull, 1}, {42, 7}, {0x123456789abcdefull, 3}};
  for (int K = 0; K != NumModules; ++K) {
    Mods.push_back(buildServeStormModule(K));
    ASSERT_EQ(qir::verify(*Mods[K]), std::nullopt);
    auto Ref = Interp.compile(*Mods[K]);
    for (auto [A, B] : Inputs)
      Expected[K].push_back(invokeFn(Ref->entry("rand"), A, B));
  }

  // One serve process: a Server over the shared disk tier, corpus
  // compiled through its shared caching backend, differentially checked.
  // \p RequireWarm additionally demands every module installed from disk.
  auto RunProcess = [&](bool RequireWarm) {
    obs::MetricsRegistry Reg;
    ServerConfig Cfg;
    Cfg.BackendName = "DirectEmit";
    Cfg.CompileWorkers = 2;
    Cfg.StartSweeper = false;
    Cfg.Reg = &Reg;
    Server Srv(Cfg, corpus().Cat);
    if (!Srv.diskCache())
      return 2;
    for (int K = 0; K != NumModules; ++K) {
      auto C = Srv.cacheBackend().compile(*Mods[K]);
      if (!C)
        return 3;
      for (size_t J = 0; J != Inputs.size(); ++J)
        if (!(invokeFn(C->entry("rand"), Inputs[J].first, Inputs[J].second) ==
              Expected[K][J]))
          return 4;
    }
    backend::DiskCacheStats S = Srv.diskCache()->stats();
    if (RequireWarm && (S.Hits != NumModules || S.Rejected != 0))
      return 5;
    Srv.shutdown();
    return 0;
  };

  auto RunWave = [&](bool RequireWarm) {
    std::vector<pid_t> Pids;
    for (int P = 0; P != NumProcs; ++P) {
      pid_t Pid = ::fork();
      if (Pid == 0)
        ::_exit(RunProcess(RequireWarm));
      ASSERT_GT(Pid, 0);
      Pids.push_back(Pid);
    }
    for (pid_t Pid : Pids) {
      int Status = 0;
      ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
      ASSERT_TRUE(WIFEXITED(Status));
      EXPECT_EQ(WEXITSTATUS(Status), 0);
    }
  };

  RunWave(/*RequireWarm=*/false); // Cold storm: racing compiles + stores.
  RunWave(/*RequireWarm=*/true);  // Warm restarts: all from disk.

  // The shared directory holds exactly the corpus, every blob valid.
  std::vector<backend::DiskCodeCache::BlobInfo> Blobs =
      backend::DiskCodeCache::scan(Dir);
  EXPECT_EQ(Blobs.size(), size_t(NumModules));
  for (const backend::DiskCodeCache::BlobInfo &B : Blobs)
    EXPECT_TRUE(B.Valid) << B.File << ": " << B.Error;

  // Corrupt one blob in place (truncate to half): the next process must
  // reject it on checksum, recompile, and re-store a valid replacement.
  ASSERT_FALSE(Blobs.empty());
  {
    std::string Victim = Dir + "/" + Blobs[0].File;
    FILE *F = ::fopen(Victim.c_str(), "r+");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(F), long(Blobs[0].SizeBytes / 2)), 0);
    ::fclose(F);
  }
  {
    obs::MetricsRegistry Reg;
    backend::DiskCodeCache Disk(Dir, 0, &Reg);
    auto Counting = std::make_unique<CountingBackend>(
        backend::createBackend("DirectEmit"));
    CountingBackend *Counter = Counting.get();
    backend::CachingBackend Cache(std::move(Counting), 0, nullptr, &Reg,
                                  &Disk);
    for (int K = 0; K != NumModules; ++K) {
      auto C = Cache.compile(*Mods[K]);
      ASSERT_NE(C, nullptr);
      for (size_t J = 0; J != Inputs.size(); ++J)
        EXPECT_TRUE(invokeFn(C->entry("rand"), Inputs[J].first,
                             Inputs[J].second) == Expected[K][J]);
    }
    backend::DiskCacheStats S = Disk.stats();
    EXPECT_GE(S.Rejected + S.Misses, 1u); // The torn blob was not served.
    EXPECT_EQ(Counter->Compiles.load(), 1u); // Only the victim recompiled.
    EXPECT_GE(S.Stores, 1u);                 // ... and was healed on disk.
  }
  for (const backend::DiskCodeCache::BlobInfo &B :
       backend::DiskCodeCache::scan(Dir))
    EXPECT_TRUE(B.Valid) << B.File << ": " << B.Error;

  // GC under a tiny budget evicts; what remains (nothing, here) is valid
  // and a fresh process simply recompiles.
  {
    backend::DiskCodeCache Budgeted(Dir, 1);
    EXPECT_GE(Budgeted.gc(), 1u);
  }
  EXPECT_EQ(RunProcess(/*RequireWarm=*/false), 0);

  ::unsetenv("QCF_CODE_CACHE");
  [[maybe_unused]] int Rc =
      std::system(("rm -rf " + Dir).c_str());
}
