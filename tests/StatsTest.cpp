//===- tests/StatsTest.cpp - Compile-pipeline statistics tests -------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observable *structure* of each back-end's compilation —
/// the quantities the paper's analysis hinges on: tree-matching merges,
/// cmp/branch fusion, B-tree traversal work, DAG combine and known-bits
/// activity, MC virtual-dispatch counts, and layout normalization.
///
//===----------------------------------------------------------------------===//

#include "craneline/Craneline.h"
#include "craneline/Lower.h"
#include "craneline/RegAlloc.h"
#include "craneline/Translate.h"
#include "db/Datagen.h"
#include "db/Executor.h"
#include "db/Queries.h"
#include "interp/Interp.h"
#include "mlvm/Mlvm.h"
#include "obs/Obs.h"
#include "qir/Print.h"
#include "tests/Corpus.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::test;

TEST(CranelineStats, TreeMatchingMergesConstants) {
  // add(x, const) with a single-use constant must fold to an immediate.
  qir::Module M;
  qir::Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId C1 = B.constInt(Type::I64, 42);
  ValueId A = B.add(F->paramValue(0), C1);
  ValueId C2 = B.constInt(Type::I64, 3);
  B.ret(B.shl(A, C2));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  craneline::CFunction CF;
  craneline::translateFunction(*F, craneline::CranelineOptions(), &CF);
  craneline::VCode VC;
  craneline::LowerStats St = craneline::lowerFunction(CF, &VC, nullptr);
  EXPECT_GE(St.MergedConsts, 2u);
}

TEST(CranelineStats, CmpBranchFusion) {
  qir::Module M;
  qir::Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  BlockId T = B.createBlock(), E = B.createBlock();
  ValueId C = B.icmp(CmpPred::SLt, F->paramValue(0),
                     B.constInt(Type::I64, 10));
  B.condBr(C, T, E);
  B.startBlock(T);
  B.ret(B.constInt(Type::I64, 1));
  B.startBlock(E);
  B.ret(B.constInt(Type::I64, 2));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  craneline::CFunction CF;
  craneline::translateFunction(*F, craneline::CranelineOptions(), &CF);
  craneline::VCode VC;
  craneline::LowerStats St = craneline::lowerFunction(CF, &VC, nullptr);
  EXPECT_EQ(St.FusedCmpBranches, 1u);
}

TEST(CranelineStats, RegAllocUsesBTrees) {
  Corpus C = buildCorpus();
  for (const auto &F : C.M->functions()) {
    craneline::CFunction CF;
    craneline::translateFunction(*F, craneline::CranelineOptions(), &CF);
    craneline::VCode VC;
    craneline::lowerFunction(CF, &VC, nullptr);
    craneline::RegAllocResult RA =
        craneline::allocateRegisters(&VC, nullptr);
    EXPECT_GT(RA.Stats.BTreeSteps, 0u) << F->name();
  }
}

TEST(CranelineStats, PressureCausesSpills) {
  qir::Module M;
  qir::Function *F = M.createFunction("spill", {Type::I64}, Type::I64);
  Builder B(F);
  std::vector<ValueId> Vals;
  for (int I = 0; I != 40; ++I)
    Vals.push_back(B.mul(F->paramValue(0), B.constInt(Type::I64, I + 2)));
  ValueId Acc = B.constInt(Type::I64, 0);
  for (int I = 39; I >= 0; --I)
    Acc = B.add(Acc, Vals[I]);
  B.ret(Acc);
  craneline::CFunction CF;
  craneline::translateFunction(*F, craneline::CranelineOptions(), &CF);
  craneline::VCode VC;
  craneline::lowerFunction(CF, &VC, nullptr);
  craneline::RegAllocResult RA = craneline::allocateRegisters(&VC, nullptr);
  EXPECT_GT(RA.Stats.NumSpilled, 0u);
  EXPECT_GT(RA.NumSpillSlots, 0u);
}

TEST(MlvmStats, DagCombinesAndKnownBits) {
  // add(x, 0) and and(zext(u8), 0xff) are combinable; known-bits queries
  // must be recorded (the paper singles out this recursion, §V-B3a).
  qir::Module M;
  qir::Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId X = B.add(F->paramValue(0), B.constInt(Type::I64, 0));
  ValueId Narrow = B.trunc(Type::I8, X);
  ValueId Wide = B.zext(Type::I64, Narrow);
  ValueId Masked = B.and_(Wide, B.constInt(Type::I64, 0xff));
  B.ret(Masked);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  mlvm::MlvmOptions O;
  O.Isel = mlvm::IselKind::Dag;
  mlvm::MlvmBackend BE(O);
  auto Compiled = BE.compile(M);
  EXPECT_GE(BE.lastIselStats().DagCombines, 2u);
  EXPECT_GT(BE.lastIselStats().KnownBitsQueries, 0u);
  EXPECT_GT(BE.lastIselStats().DagNodes, 0u);
  // Correctness of the combines.
  auto *Fn = Compiled->entryAs<uint64_t (*)(uint64_t)>("f");
  EXPECT_EQ(Fn(0x1234), 0x34u);
}

TEST(MlvmStats, IrObjectCountTracked) {
  Corpus C = buildCorpus();
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::cheap());
  BE.compile(*C.M);
  // Object-graph construction is the IRGen cost (§V-B1).
  EXPECT_GT(BE.lastNumIrObjects(), 200u);
}

TEST(QirNormalize, ReordersOutOfLayoutBlocks) {
  // Build a function whose block ids are created out of layout order, as
  // the query code generator does.
  qir::Module M;
  qir::Function *F = M.createFunction("f", {Type::I1}, Type::I64);
  Builder B(F);
  BlockId Later = B.createBlock();  // id 1, started last
  BlockId Sooner = B.createBlock(); // id 2, started first
  B.condBr(F->paramValue(0), Sooner, Later);
  B.startBlock(Sooner);
  B.ret(B.constInt(Type::I64, 1));
  B.startBlock(Later);
  B.ret(B.constInt(Type::I64, 2));

  // Out of layout order now; the verifier rejects it.
  EXPECT_NE(qir::verify(*F), std::nullopt);
  qir::normalizeLayout(*F);
  auto Err = qir::verify(*F);
  EXPECT_EQ(Err, std::nullopt) << Err.value_or("");
  // Semantics preserved: block ids remapped in the branch.
  interp::InterpBackend IB;
  auto Compiled = IB.compile(M);
  auto *Fn = Compiled->entryAs<int64_t (*)(uint64_t)>("f");
  EXPECT_EQ(Fn(1), 1);
  EXPECT_EQ(Fn(0), 2);
}

TEST(DbStats, PipelineCountsMatchPlanShape) {
  db::Catalog Cat;
  db::generateTpchLike(Cat, 0.1);
  for (db::Query &Q : db::tpchQueries()) {
    db::CompiledPlan P = db::compileQuery(Q, Cat);
    size_t Breakers = P.Objects.size();
    // Pipelines = breakers' producers + the final output pipeline +
    // aggregate-scan feeders; at least breakers+1 overall.
    EXPECT_GE(P.Pipelines.size(), Breakers >= 1 ? 2u : 1u) << Q.Name;
    // The module contains one function per pipeline plus comparators.
    size_t Cmps = 0;
    for (const db::RuntimeObject &O : P.Objects)
      Cmps += !O.CmpFnName.empty();
    EXPECT_EQ(P.Module->functions().size(), P.Pipelines.size() + Cmps)
        << Q.Name;
  }
}

TEST(DbStats, GeneratedPipelinesUseHotConstructs) {
  // The generated code must contain the constructs the paper highlights:
  // crc32 hashing, overflow-checked decimal arithmetic, runtime calls.
  db::Catalog Cat;
  db::generateTpchLike(Cat, 0.1);
  db::Query Q = [&] {
    for (db::Query &Cand : db::tpchQueries())
      if (Cand.Name == "h1")
        return std::move(Cand);
    QCF_UNREACHABLE("h1 missing");
  }();
  db::CompiledPlan P = db::compileQuery(Q, Cat);
  std::string IR = qir::printModule(*P.Module);
  EXPECT_NE(IR.find("crc32"), std::string::npos);
  EXPECT_NE(IR.find("saddtrap i128"), std::string::npos);
  EXPECT_NE(IR.find("smultrap i128"), std::string::npos);
  EXPECT_NE(IR.find("call ptr @rt_ht_insert"), std::string::npos);
  EXPECT_NE(IR.find("lmulfold"), std::string::npos);
}

TEST(MlvmStats, ReuseAnalysesHalvesDomtreeComputations) {
  // §V-B2 ablation: the default pipeline computes the dominator tree and
  // loop info twice per function; ReuseAnalyses computes them once, with
  // identical compiled code.
  Corpus C = buildCorpus();
  size_t NumFns = C.M->functions().size();

  mlvm::MlvmOptions Twice = mlvm::MlvmOptions::opt();
  mlvm::MlvmOptions Once = mlvm::MlvmOptions::opt();
  Once.ReuseAnalyses = true;

  TimeTrace T1, T2;
  mlvm::MlvmBackend B1(Twice), B2(Once);
  B1.compile(*C.M, backend::CompileOptions(&T1));
  B2.compile(*C.M, backend::CompileOptions(&T2));
  EXPECT_EQ(T1.count("mlvm.opt.domtree"), 2 * NumFns);
  EXPECT_EQ(T2.count("mlvm.opt.domtree"), NumFns);
}

TEST(ObsStats, HistogramPercentiles) {
  obs::Histogram H;
  // 1..1000ns: p50 falls in the [512,1024) bucket region of the walk.
  for (uint64_t V = 1; V <= 1000; ++V)
    H.observe(V);
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 1000u);
  EXPECT_EQ(S.SumNs, 1000u * 1001u / 2);
  EXPECT_EQ(S.MinNs, 1u);
  EXPECT_EQ(S.MaxNs, 1000u);
  // Percentiles report bucket upper bounds: the median of 1..1000 lands
  // in [256,512) -> 511; p99 in [512,1024), clamped to the observed max.
  EXPECT_EQ(S.percentileNs(0.5), 511u);
  EXPECT_EQ(S.percentileNs(0.99), 1000u);
  EXPECT_EQ(S.percentileNs(0.0), 1u);
}

TEST(ObsStats, HistogramSnapshotMerge) {
  obs::Histogram A, B;
  A.observe(10);
  A.observe(100);
  B.observe(1000);
  B.observe(3);
  obs::HistogramSnapshot SA = A.snapshot(), SB = B.snapshot();
  SA.merge(SB);
  EXPECT_EQ(SA.Count, 4u);
  EXPECT_EQ(SA.SumNs, 1113u);
  EXPECT_EQ(SA.MinNs, 3u);
  EXPECT_EQ(SA.MaxNs, 1000u);
  // Merging an empty snapshot is the identity.
  obs::HistogramSnapshot Empty;
  SA.merge(Empty);
  EXPECT_EQ(SA.Count, 4u);
  EXPECT_EQ(SA.MinNs, 3u);
}

TEST(ObsStats, GoldenMlvmOptCompileTrace) {
  // The acceptance shape for trace export: an MLVM-opt compile with the
  // full ObsContext attached must yield (a) per-phase metrics in the
  // registry and (b) a Chrome trace that parses with properly nested
  // slices — Perfetto would reject or misrender anything less.
  Corpus C = buildCorpus();
  obs::MetricsRegistry Reg;
  obs::TraceSink Sink;
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::opt());
  BE.compile(*C.M,
             backend::CompileOptions(obs::ObsContext(nullptr, &Reg, &Sink)));

  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counter("compile.MLVM-opt.count"), 1u);
  const obs::HistogramSnapshot *Lat = Snap.histogram("compile.MLVM-opt.ns");
  ASSERT_NE(Lat, nullptr);
  EXPECT_EQ(Lat->Count, 1u);
  // Per-phase detail: self-time counters for the pass pipeline.
  EXPECT_GT(Snap.counterSumWithPrefix("compile.MLVM-opt.phase."), 0u);
  EXPECT_GT(Snap.counter("compile.MLVM-opt.phase.mlvm.opt.domtree.count"), 0u);

  // The trace: one spanning "compile.MLVM-opt" slice plus one slice per
  // TimeTraceScope that ran while the sink was bound.
  EXPECT_GT(Sink.numEvents(), 10u);
  std::string Json = Sink.exportJson();
  std::string Err;
  EXPECT_TRUE(obs::validateTraceJson(Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"compile.MLVM-opt\""), std::string::npos);
  EXPECT_NE(Json.find("mlvm.isel"), std::string::npos);
}

TEST(ObsStats, ExecuteQueryProducesQueryStatsAndTrace) {
  // End-to-end acceptance: a full db::executeQuery with the redesigned
  // ExecOptions::Obs must produce a QueryStats record and a valid trace.
  db::Catalog Cat;
  db::generateTpchLike(Cat, 0.05);
  db::Query Q = [&] {
    for (db::Query &Cand : db::tpchQueries())
      if (Cand.Name == "h1")
        return std::move(Cand);
    QCF_UNREACHABLE("h1 missing");
  }();
  db::CompiledPlan P = db::compileQuery(Q, Cat);

  obs::MetricsRegistry Reg;
  obs::TraceSink Sink;
  db::ExecOptions Opts;
  Opts.Obs = obs::ObsContext(nullptr, &Reg, &Sink);
  mlvm::MlvmBackend BE(mlvm::MlvmOptions::cheap());
  rt::OutputBuffer Out;
  db::ExecResult R = db::executeQuery(P, BE, Cat, &Out, Opts);
  ASSERT_FALSE(R.Trapped);

  EXPECT_EQ(R.Stats.RowsOut, Out.numRows());
  EXPECT_GT(R.Stats.CompileNs, 0u);
  EXPECT_GT(R.Stats.ExecNs, 0u);
  ASSERT_EQ(R.Stats.Pipelines.size(), P.Pipelines.size());
  uint64_t PipeNs = 0;
  for (const db::PipelineStats &PS : R.Stats.Pipelines)
    PipeNs += PS.ExecNs;
  EXPECT_LE(PipeNs, R.Stats.ExecNs);

  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counter("db.queries"), 1u);
  EXPECT_EQ(Snap.counter("db.query.rows"), Out.numRows());
  EXPECT_EQ(Snap.counter("compile.MLVM-cheap.count"), 1u);

  std::string Err;
  EXPECT_TRUE(obs::validateTraceJson(Sink.exportJson(), &Err)) << Err;
}
