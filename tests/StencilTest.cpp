//===- tests/StencilTest.cpp - Copy-and-patch back-end tests ---------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential, serialization, and mutation coverage for the stencil
/// (copy-and-patch) back-end. The mutation half mirrors VerifierTest:
/// every class of patch-record corruption a broken stencil table or a
/// bit-rotted cache blob could produce — wrong relocation offset, stale
/// imm64 with a dropped relocation record, corrupted continuation jump —
/// must be caught by the encoding lint or by translation validation.
///
//===----------------------------------------------------------------------===//

#include "backend/DiskCache.h"
#include "obs/Obs.h"
#include "qir/Builder.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include "stencil/Stencil.h"
#include "stencil/Stencils.h"
#include "support/ByteIo.h"
#include "tests/Corpus.h"
#include "tests/DiffHarness.h"
#include "tv/Tv.h"
#include "x64/EncodingLint.h"
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace qcf;
using namespace qcf::test;

namespace {

//===----------------------------------------------------------------------===//
// Differential tests
//===----------------------------------------------------------------------===//

TEST(Stencil, CorpusDifferentialAgainstInterpreter) {
  stencil::StencilBackend B;
  runCorpusDifferential(B);
}

TEST(Stencil, SimpleFunctionRuns) {
  qir::Module M;
  qir::Function *F =
      M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), F->paramValue(1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  stencil::StencilBackend BE;
  auto C = BE.compile(M);
  auto *Fn = C->entryAs<int64_t (*)(int64_t, int64_t)>("f");
  EXPECT_EQ(Fn(40, 2), 42);
  EXPECT_EQ(Fn(-1, 1), 0);
}

TEST(Stencil, DiamondWithPhiSelectsCorrectEdge) {
  // if (a < b) x = a*3 else x = b+7; return x — exercises the shadow-slot
  // phi commit on both edges.
  qir::Module M;
  qir::Function *F =
      M.createFunction("dia", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  BlockId Then = B.createBlock(), Else = B.createBlock(),
          Join = B.createBlock();
  ValueId A = F->paramValue(0), Bv = F->paramValue(1);
  B.condBr(B.icmp(CmpPred::SLt, A, Bv), Then, Else);
  B.startBlock(Then);
  ValueId X1 = B.mul(A, B.constInt(Type::I64, 3));
  B.br(Join);
  B.startBlock(Else);
  ValueId X2 = B.add(Bv, B.constInt(Type::I64, 7));
  B.br(Join);
  B.startBlock(Join);
  ValueId P = B.phi(Type::I64, 2);
  B.setPhiIncoming(P, 0, Then, X1);
  B.setPhiIncoming(P, 1, Else, X2);
  B.ret(P);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  stencil::StencilBackend BE;
  auto C = BE.compile(M);
  auto *Fn = C->entryAs<int64_t (*)(int64_t, int64_t)>("dia");
  EXPECT_EQ(Fn(2, 5), 6);   // then: 2*3
  EXPECT_EQ(Fn(5, 2), 9);   // else: 2+7
  EXPECT_EQ(Fn(4, 4), 11);  // not-less-than takes else: 4+7
}

TEST(Stencil, LoopWithSwappingPhisNeedsParallelCopy) {
  // Fibonacci via two phis whose edge moves read each other — the
  // classic swap hazard the shadow-slot scheme exists to avoid.
  qir::Module M;
  qir::Function *F = M.createFunction("fib", {Type::I64}, Type::I64);
  Builder B(F);
  BlockId Head = B.createBlock(), Body = B.createBlock(),
          Exit = B.createBlock();
  ValueId N = F->paramValue(0);
  ValueId Zero = B.constInt(Type::I64, 0);
  ValueId One = B.constInt(Type::I64, 1);
  B.br(Head);
  B.startBlock(Head);
  ValueId I = B.phi(Type::I64, 2);
  ValueId Pa = B.phi(Type::I64, 2);
  ValueId Pb = B.phi(Type::I64, 2);
  B.condBr(B.icmp(CmpPred::SLt, I, N), Body, Exit);
  B.startBlock(Body);
  ValueId NextI = B.add(I, One);
  ValueId Sum = B.add(Pa, Pb);
  B.br(Head);
  B.setPhiIncoming(I, 0, B.entryBlock(), Zero);
  B.setPhiIncoming(I, 1, Body, NextI);
  B.setPhiIncoming(Pa, 0, B.entryBlock(), Zero);
  B.setPhiIncoming(Pa, 1, Body, Pb); // a' = b: reads the other phi's home
  B.setPhiIncoming(Pb, 0, B.entryBlock(), One);
  B.setPhiIncoming(Pb, 1, Body, Sum);
  B.startBlock(Exit);
  B.ret(Pa);
  ASSERT_EQ(qir::verify(M), std::nullopt);

  stencil::StencilBackend BE;
  auto C = BE.compile(M);
  auto *Fn = C->entryAs<int64_t (*)(int64_t)>("fib");
  EXPECT_EQ(Fn(0), 0);
  EXPECT_EQ(Fn(1), 1);
  EXPECT_EQ(Fn(10), 55);
  EXPECT_EQ(Fn(20), 6765);
}

TEST(Stencil, TrapUnwindsToGuard) {
  Corpus C = buildCorpus();
  stencil::StencilBackend BE;
  auto Compiled = BE.compile(*C.M);
  auto *Fn = Compiled->entryAs<int64_t (*)(int64_t, int64_t)>("traps");
  EXPECT_EQ(rt::runWithTrapGuard([&] { Fn(1, 2); }), rt::TrapCode::None);
  EXPECT_EQ(rt::runWithTrapGuard([&] { Fn(INT64_MAX, 1); }),
            rt::TrapCode::Overflow);
}

TEST(Stencil, CompileTimeBreakdownHasCodegenAndLink) {
  Corpus C = buildCorpus();
  stencil::StencilBackend BE;
  TimeTrace Trace;
  auto Compiled = BE.compile(*C.M, backend::CompileOptions(&Trace));
  // One IR walk, no analysis phase: codegen and link are the whole story.
  EXPECT_GT(Trace.totalNs("stencil.codegen"), 0u);
  EXPECT_GT(Trace.totalNs("stencil.link"), 0u);
  EXPECT_EQ(Trace.totalNs("stencil.analysis"), 0u);
}

TEST(Stencil, CompileEmitsMemoryMetrics) {
  Corpus C = buildCorpus();
  stencil::StencilBackend BE;
  obs::MetricsRegistry Reg;
  backend::CompileOptions Opts;
  Opts.Obs.Metrics = &Reg;
  auto Compiled = BE.compile(*C.M, Opts);
  obs::MetricsSnapshot S = Reg.snapshot();
  EXPECT_GT(S.counter("mem.stencil.code.bytes"), 0u);
  EXPECT_GT(S.counter("mem.stencil.frame.bytes"), 0u);
  EXPECT_EQ(S.counter("mem.stencil.compiles"), 1u);
}

class StencilProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StencilProperty, MatchesInterpreterOnRandomFunctions) {
  stencil::StencilBackend B;
  runRandomDifferentialFor(B, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StencilProperty,
                         ::testing::Range<uint64_t>(0, 40));

//===----------------------------------------------------------------------===//
// Serialization + disk cache
//===----------------------------------------------------------------------===//

/// A module whose compiled form carries named runtime relocations (the
/// i128 division lowers to an rt_sdiv128 call and both trap stubs call
/// rt_trap), a conditional continuation jump, and a frame-size patch —
/// one of every patch class the payload must survive.
void buildRelocModule(qir::Module &M) {
  qir::Function *F =
      M.createFunction("wide_div", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  BlockId Slow = B.createBlock(), Done = B.createBlock();
  ValueId False = B.constBool(false);
  ValueId A = B.sext(Type::I128, F->paramValue(0));
  ValueId Bv = B.sext(Type::I128, F->paramValue(1));
  ValueId Q = B.sdiv(A, Bv);
  ValueId Lo = B.trunc(Type::I64, Q);
  // Launder the condition through an xor so the CondBr cannot fuse with
  // the compare's flags: the mutation suite wants the test+jnz
  // continuation form in the emitted bytes.
  ValueId IsNeg = B.icmp(CmpPred::SLt, Lo, B.constInt(Type::I64, 0));
  B.condBr(B.xor_(IsNeg, False), Slow, Done);
  B.startBlock(Slow);
  ValueId Neg = B.neg(Lo);
  B.br(Done);
  B.startBlock(Done);
  ValueId P = B.phi(Type::I64, 2);
  B.setPhiIncoming(P, 0, B.entryBlock(), Lo);
  B.setPhiIncoming(P, 1, Slow, Neg);
  B.ret(P);
  ASSERT_EQ(qir::verify(M), std::nullopt);
}

void checkRelocModule(backend::CompiledModule &C) {
  auto *Fn = C.entryAs<int64_t (*)(int64_t, int64_t)>("wide_div");
  ASSERT_NE(Fn, nullptr);
  EXPECT_EQ(Fn(100, 7), 14);
  EXPECT_EQ(Fn(-100, 7), 14); // negative quotient re-negated by the branch
  EXPECT_EQ(rt::runWithTrapGuard([&] { Fn(1, 0); }), rt::TrapCode::DivByZero);
}

TEST(Stencil, SerializeRoundTripExecutesAndReserializesIdentically) {
  qir::Module M;
  buildRelocModule(M);
  stencil::StencilBackend BE;
  auto Fresh = BE.compile(M);
  checkRelocModule(*Fresh);

  std::vector<uint8_t> P1;
  ASSERT_TRUE(Fresh->serialize(P1));
  std::unique_ptr<backend::CompiledModule> Warm =
      BE.deserialize(P1.data(), P1.size());
  ASSERT_NE(Warm, nullptr);
  checkRelocModule(*Warm);

  std::vector<uint8_t> P2;
  ASSERT_TRUE(Warm->serialize(P2));
  EXPECT_EQ(P1, P2) << "warm module must re-serialize byte-identically";
}

TEST(Stencil, WarmModulePassesTranslationValidation) {
  // The disk-cache-warm half of the QCF_VERIFY=tv acceptance criterion:
  // a deserialized stencil module must still co-simulate against QIR.
  qir::Module M;
  buildRelocModule(M);
  stencil::StencilBackend BE;
  auto Fresh = BE.compile(M);
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(Fresh->serialize(Blob));
  auto Warm = BE.deserialize(Blob.data(), Blob.size());
  ASSERT_NE(Warm, nullptr);
  EXPECT_EQ(tv::validateModule(M, Warm->tvFunctions(), tv::TvOptions()), "");
}

TEST(Stencil, DiskCacheRoundTrip) {
  char Tmpl[] = "/tmp/qcf-stencil-cache-XXXXXX";
  ASSERT_NE(mkdtemp(Tmpl), nullptr);
  std::string Dir = Tmpl;

  {
    backend::DiskCodeCache Cache(Dir, /*BudgetBytes=*/0);
    qir::Module M;
    buildRelocModule(M);
    backend::ModuleFingerprint Key = backend::fingerprintModule(M);
    stencil::StencilBackend BE;
    backend::CompileOptions Opts;

    auto Fresh = BE.compile(M, Opts);
    ASSERT_TRUE(Cache.store(Key, BE, *Fresh, Opts));
    std::shared_ptr<backend::CompiledModule> Warm =
        Cache.load(Key, BE, Opts);
    ASSERT_NE(Warm, nullptr);
    EXPECT_EQ(Cache.stats().Hits, 1u);
    checkRelocModule(*Warm);
  }
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Mutation tests: corrupted patch records must not pass verification
//===----------------------------------------------------------------------===//

/// The stencil payload, decomposed for surgical corruption. Mirrors
/// StencilModule::serialize (see stencil/Stencil.cpp).
struct Payload {
  std::vector<uint8_t> Code;
  struct Fn {
    std::string Name;
    uint64_t Offset, Size;
  };
  std::vector<Fn> Fns;
  struct Reloc {
    uint64_t Offset;
    std::string Symbol;
  };
  std::vector<Reloc> Relocs;

  static Payload parse(const std::vector<uint8_t> &Blob) {
    Payload P;
    ByteReader R(Blob.data(), Blob.size());
    auto [Code, CodeLen] = R.bytes();
    P.Code.assign(Code, Code + CodeLen);
    uint64_t NumFns = R.u64();
    for (uint64_t I = 0; I != NumFns; ++I) {
      Fn F;
      F.Name = R.str();
      F.Offset = R.u64();
      F.Size = R.u64();
      P.Fns.push_back(std::move(F));
    }
    uint64_t NumRelocs = R.u64();
    for (uint64_t I = 0; I != NumRelocs; ++I) {
      Reloc Rel;
      Rel.Offset = R.u64();
      Rel.Symbol = R.str();
      P.Relocs.push_back(std::move(Rel));
    }
    EXPECT_TRUE(R.ok()) << "stencil payload failed to parse";
    return P;
  }

  std::vector<uint8_t> build() const {
    ByteWriter W;
    W.bytes(Code.data(), Code.size());
    W.u64(Fns.size());
    for (const Fn &F : Fns) {
      W.str(F.Name);
      W.u64(F.Offset);
      W.u64(F.Size);
    }
    W.u64(Relocs.size());
    for (const Reloc &R : Relocs) {
      W.u64(R.Offset);
      W.str(R.Symbol);
    }
    return W.take();
  }
};

/// Deserializes \p Blob and translation-validates it against \p M,
/// returning the tv diagnostic ("" = passed).
std::string tvAfterDeserialize(const qir::Module &M,
                               const std::vector<uint8_t> &Blob) {
  stencil::StencilBackend BE;
  auto Warm = BE.deserialize(Blob.data(), Blob.size());
  if (!Warm)
    return "deserialize refused the blob (cache miss)";
  return tv::validateModule(M, Warm->tvFunctions(), tv::TvOptions());
}

TEST(StencilMutation, RelocWithWrongOffsetIsCaught) {
  qir::Module M;
  buildRelocModule(M);
  stencil::StencilBackend BE;
  auto Fresh = BE.compile(M);
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(Fresh->serialize(Blob));

  Payload P = Payload::parse(Blob);
  ASSERT_FALSE(P.Relocs.empty());
  // Shift the first relocation by one byte: deserialize patches the
  // runtime address one byte off inside the movabs, garbling both the
  // immediate and the byte after it.
  P.Relocs[0].Offset += 1;
  std::vector<uint8_t> Bad = P.build();
  EXPECT_NE(tvAfterDeserialize(M, Bad), "")
      << "shifted relocation offset must not validate";

  // The encoding lint must reject the shifted record too: the 8-byte
  // patch range no longer sits inside one instruction's immediate field.
  auto Warm = BE.deserialize(Bad.data(), Bad.size());
  if (Warm) {
    auto Fns = Warm->tvFunctions();
    ASSERT_FALSE(Fns.empty());
    bool AnyLintError = false;
    for (const auto &Fn : Fns) {
      std::vector<x64::LintReloc> LR;
      for (const auto &Rel : Fn.Relocs)
        LR.push_back({Rel.Offset, Rel.Width});
      AnyLintError |= !x64::lintFunction(Fn.Code, Fn.Size, LR).empty();
    }
    EXPECT_TRUE(AnyLintError)
        << "encoding lint must flag a mid-instruction relocation range";
  }
}

TEST(StencilMutation, StaleImm64WithDroppedRelocIsCaught) {
  qir::Module M;
  buildRelocModule(M);
  stencil::StencilBackend BE;
  auto Fresh = BE.compile(M);
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(Fresh->serialize(Blob));

  Payload P = Payload::parse(Blob);
  ASSERT_FALSE(P.Relocs.empty());
  // Drop the record for one call-target imm64 and plant a stale address
  // in the code bytes — the shape a warm restart would see if a blob
  // from a previous process leaked its raw pointers. Deserialize leaves
  // the bytes unpatched; tv must refuse the unknown call target.
  Payload::Reloc Dropped = P.Relocs.back();
  P.Relocs.pop_back();
  ASSERT_LE(Dropped.Offset + 8, P.Code.size());
  uint64_t Stale = 0x4242424242424242ull;
  std::memcpy(P.Code.data() + Dropped.Offset, &Stale, 8);
  EXPECT_NE(tvAfterDeserialize(M, P.build()), "")
      << "stale call-target address must not validate";
}

TEST(StencilMutation, CorruptedContinuationJumpIsCaught) {
  qir::Module M;
  buildRelocModule(M);
  stencil::StencilBackend BE;
  auto Fresh = BE.compile(M);
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(Fresh->serialize(Blob));

  Payload P = Payload::parse(Blob);
  // Locate the conditional continuation jump the compiler patched: the
  // TestJnz fragment is `test rax, rax; jnz rel32`.
  const stencil::Fragment &TJ = stencil::StencilTable::get().TestJnz;
  ASSERT_EQ(TJ.Patches.size(), 1u);
  size_t PrefixLen = TJ.Patches[0].Off; // bytes before the rel32 field
  auto It = std::search(P.Code.begin(), P.Code.end(), TJ.Bytes.begin(),
                        TJ.Bytes.begin() + PrefixLen);
  ASSERT_NE(It, P.Code.end()) << "emitted code must contain a test+jnz";
  size_t RelPos = static_cast<size_t>(It - P.Code.begin()) + PrefixLen;

  // Nudge the patched rel32 so the branch lands mid-instruction. The
  // lint's branch-target check must fire on the deserialized bytes.
  int32_t Rel;
  std::memcpy(&Rel, P.Code.data() + RelPos, 4);
  Rel += 3;
  std::memcpy(P.Code.data() + RelPos, &Rel, 4);

  auto Corrupt = P.build();
  auto Warm = BE.deserialize(Corrupt.data(), Corrupt.size());
  ASSERT_NE(Warm, nullptr);
  auto Fns = Warm->tvFunctions();
  ASSERT_FALSE(Fns.empty());
  bool AnyLintError = false;
  for (const auto &Fn : Fns) {
    std::vector<x64::LintReloc> LR;
    for (const auto &Rel : Fn.Relocs)
      LR.push_back({Rel.Offset, Rel.Width});
    AnyLintError |= !x64::lintFunction(Fn.Code, Fn.Size, LR).empty();
  }
  EXPECT_TRUE(AnyLintError)
      << "encoding lint must flag a mid-instruction branch target";
  // Belt and braces: the co-simulation diverges at the bad branch too.
  EXPECT_NE(tv::validateModule(M, Fns, tv::TvOptions()), "");
}

TEST(StencilMutation, TruncatedBlobDegradesToCacheMiss) {
  qir::Module M;
  buildRelocModule(M);
  stencil::StencilBackend BE;
  auto Fresh = BE.compile(M);
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(Fresh->serialize(Blob));
  for (size_t Cut : {size_t(0), size_t(4), Blob.size() / 2, Blob.size() - 1})
    EXPECT_EQ(BE.deserialize(Blob.data(), Cut), nullptr)
        << "truncated at " << Cut;
}

TEST(StencilMutation, UnknownRelocSymbolDegradesToCacheMiss) {
  qir::Module M;
  buildRelocModule(M);
  stencil::StencilBackend BE;
  auto Fresh = BE.compile(M);
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(Fresh->serialize(Blob));
  Payload P = Payload::parse(Blob);
  ASSERT_FALSE(P.Relocs.empty());
  P.Relocs[0].Symbol = "rt_no_such_helper";
  auto Bad = P.build();
  EXPECT_EQ(BE.deserialize(Bad.data(), Bad.size()), nullptr);
}

} // namespace
