//===- tests/SupportTest.cpp - Support library unit tests -----------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Bitset.h"
#include "support/MemContext.h"
#include "support/Hash.h"
#include "support/InlineVector.h"
#include "support/Int128.h"
#include "support/Rng.h"
#include "support/TimeTrace.h"
#include <gtest/gtest.h>
#include <set>

using namespace qcf;

// --- Arena ----------------------------------------------------------------

TEST(Arena, BasicAllocation) {
  Arena A;
  int *P = A.create<int>(42);
  EXPECT_EQ(*P, 42);
  double *D = A.create<double>(3.5);
  EXPECT_EQ(*D, 3.5);
  EXPECT_GE(A.bytesAllocated(), sizeof(int) + sizeof(double));
}

TEST(Arena, Alignment) {
  Arena A;
  A.allocate(1, 1);
  void *P16 = A.allocate(32, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P16) % 16, 0u);
  void *P64 = A.allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P64) % 64, 0u);
}

TEST(Arena, LargeAllocationsSpanSlabs) {
  Arena A(64);
  std::vector<char *> Ptrs;
  for (int I = 0; I != 100; ++I) {
    char *P = A.allocateArray<char>(100);
    std::memset(P, I, 100);
    Ptrs.push_back(P);
  }
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Ptrs[I][50], static_cast<char>(I));
}

TEST(Arena, CopyString) {
  Arena A;
  const char *S = A.copyString("hello", 5);
  EXPECT_STREQ(S, "hello");
}

TEST(Arena, MoveTransfersOwnership) {
  Arena A;
  int *P = A.create<int>(7);
  Arena B = std::move(A);
  EXPECT_EQ(*P, 7);
  int *Q = B.create<int>(8);
  EXPECT_EQ(*Q, 8);
}

TEST(Arena, ResetReleasesMemory) {
  Arena A;
  A.allocate(1000);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  int *P = A.create<int>(3);
  EXPECT_EQ(*P, 3);
}

TEST(Arena, AllocationCounterIsExact) {
  Arena A;
  for (int I = 0; I != 57; ++I)
    A.allocate(24);
  EXPECT_EQ(A.numAllocations(), 57u);
  EXPECT_EQ(A.bytesAllocated(), 57u * 24);
  A.clear();
  EXPECT_EQ(A.numAllocations(), 0u);
  EXPECT_EQ(A.bytesAllocated(), 0u);
}

TEST(Arena, ClearRecyclesLargestSlab) {
  Arena A(/*InitialSlabBytes=*/64);
  // Force several slabs; the newest (largest) must survive clear() and
  // serve the next round from the same base address — the steady-state
  // zero-malloc property the per-function compile loop relies on.
  for (int I = 0; I != 64; ++I)
    A.allocate(64);
  void *FirstAfterClear = nullptr;
  A.clear();
  FirstAfterClear = A.allocate(64);
  A.clear();
  EXPECT_EQ(A.allocate(64), FirstAfterClear);
  EXPECT_EQ(A.numAllocations(), 1u);
}

TEST(Arena, ArenaVectorGrowsInArena) {
  Arena A;
  ArenaVector<uint32_t> V{ArenaAllocator<uint32_t>(A)};
  for (uint32_t I = 0; I != 1000; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 1000u);
  for (uint32_t I = 0; I != 1000; ++I)
    EXPECT_EQ(V[I], I);
  // The buffer lives inside the arena.
  EXPECT_GE(A.bytesAllocated(), 1000 * sizeof(uint32_t));
}

TEST(Arena, ArenaVectorMoveStealsBuffer) {
  Arena A;
  ArenaVector<int> V{ArenaAllocator<int>(A)};
  V.assign(100, 42);
  const int *Buf = V.data();
  ArenaVector<int> W = std::move(V);
  EXPECT_EQ(W.data(), Buf); // move ctor always steals
  EXPECT_EQ(W.size(), 100u);
  EXPECT_EQ(W[99], 42);
}

// --- MemPool / MemContext ---------------------------------------------------

TEST(MemPool, HeapModeBalancesLiveObjects) {
  MemPool P(AllocMode::Heap);
  struct Node {
    uint64_t A, B;
  };
  Node *N1 = P.create<Node>();
  Node *N2 = P.create<Node>();
  EXPECT_EQ(P.liveObjects(), 2);
  P.destroy(N1);
  P.destroy(N2);
  EXPECT_EQ(P.liveObjects(), 0);
  EXPECT_EQ(P.numAllocs(), 2u);
  EXPECT_EQ(P.numFrees(), 2u);
  EXPECT_EQ(P.bytesAllocated(), 2 * sizeof(Node));
}

TEST(MemPool, ArenaModeDestroyIsNoOpAndClearRecycles) {
  MemPool P(AllocMode::Arena);
  int *X = P.create<int>(5);
  P.destroy(X); // no-op: the value must still be readable
  EXPECT_EQ(*X, 5);
  // Counters stay cumulative across clear() so phase deltas are monotonic.
  uint64_t Bytes = P.bytesAllocated();
  P.clear();
  EXPECT_EQ(P.bytesAllocated(), Bytes);
  int *Y = P.create<int>(6);
  EXPECT_EQ(*Y, 6);
  EXPECT_EQ(P.numAllocs(), 2u);
}

TEST(MemPool, PoolVectorMoveAssignStealsWithinSamePool) {
  MemPool P(AllocMode::Arena);
  PoolVector<int> V(P);
  V.assign(64, 9);
  const int *Buf = V.data();
  PoolVector<int> W(P);
  W = std::move(V);
  // Equal allocators (same pool) let move assignment steal the buffer.
  EXPECT_EQ(W.data(), Buf);
  EXPECT_EQ(W.size(), 64u);
}

TEST(MemPool, CountersDriveMemContextPhaseDeltas) {
  MemContext Ctx(AllocMode::Arena);
  EXPECT_EQ(Ctx.mode(), AllocMode::Arena);
  uint64_t B0 = Ctx.ir().bytesAllocated(), A0 = Ctx.ir().numAllocs();
  Ctx.ir().allocate(128);
  Ctx.ir().allocate(64);
  EXPECT_EQ(Ctx.ir().bytesAllocated() - B0, 192u);
  EXPECT_EQ(Ctx.ir().numAllocs() - A0, 2u);
  // Pools are independent: the other two did not move.
  EXPECT_EQ(Ctx.mir().bytesAllocated(), 0u);
  EXPECT_EQ(Ctx.scratch().bytesAllocated(), 0u);
  Ctx.clearFunctionMemory();
  // clear() keeps counters; only the arena contents are recycled.
  EXPECT_EQ(Ctx.ir().bytesAllocated() - B0, 192u);
}

TEST(MemPool, AllocModeFromEnvParses) {
  EXPECT_STREQ(allocModeName(AllocMode::Heap), "heap");
  EXPECT_STREQ(allocModeName(AllocMode::Arena), "arena");
}

// --- InlineVector -----------------------------------------------------------

TEST(InlineVector, StaysInlineForSmallSizes) {
  InlineVector<int, 4> V;
  for (int I = 0; I != 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(InlineVector, SpillsToHeap) {
  InlineVector<int, 2> V;
  for (int I = 0; I != 100; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(InlineVector, CopyAndMove) {
  InlineVector<std::string, 2> V;
  V.push_back("a");
  V.push_back("b");
  V.push_back("c"); // spills
  InlineVector<std::string, 2> C = V;
  EXPECT_EQ(C.size(), 3u);
  EXPECT_EQ(C[2], "c");
  InlineVector<std::string, 2> M = std::move(V);
  EXPECT_EQ(M.size(), 3u);
  EXPECT_EQ(M[0], "a");
  EXPECT_EQ(V.size(), 0u);
}

TEST(InlineVector, ResizeAndClear) {
  InlineVector<int, 2> V;
  V.resize(10);
  EXPECT_EQ(V.size(), 10u);
  EXPECT_EQ(V[9], 0);
  V.resize(1);
  EXPECT_EQ(V.size(), 1u);
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(InlineVector, EmplaceAndPop) {
  InlineVector<std::pair<int, int>, 2> V;
  V.emplace_back(1, 2);
  EXPECT_EQ(V.back().second, 2);
  V.pop_back();
  EXPECT_TRUE(V.empty());
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.nextBounded(17);
    EXPECT_LT(V, 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.nextRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Rng, ZipfIsSkewed) {
  Rng R(11);
  size_t Low = 0;
  constexpr int N = 10000;
  for (int I = 0; I != N; ++I)
    Low += R.nextZipf(1000) < 100;
  // Zipf should concentrate well over 10% of the mass in the first decile.
  EXPECT_GT(Low, static_cast<size_t>(N) / 5);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng R(13);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

// --- Hash -------------------------------------------------------------------

TEST(Hash, LongMulFoldMatchesReference) {
  // Reference via explicit 128-bit arithmetic.
  uint64_t A = 0x123456789abcdef0ull, B = 0x9e3779b97f4a7c15ull;
  unsigned __int128 P = static_cast<unsigned __int128>(A) * B;
  EXPECT_EQ(longMulFold(A, B),
            static_cast<uint64_t>(P) ^ static_cast<uint64_t>(P >> 64));
}

TEST(Hash, Crc32KnownValue) {
  // crc32q is deterministic; check stability across calls.
  EXPECT_EQ(crc32u64(0, 0x1122334455667788ull),
            crc32u64(0, 0x1122334455667788ull));
  EXPECT_NE(crc32u64(0, 1), crc32u64(0, 2));
}

TEST(Hash, HashU64Distributes) {
  std::set<uint64_t> Hashes;
  for (uint64_t I = 0; I != 1000; ++I)
    Hashes.insert(hashU64(I));
  EXPECT_EQ(Hashes.size(), 1000u);
}

TEST(Hash, HashBytesRespectsLength) {
  char Buf[16] = "abcdefghijklmno";
  EXPECT_NE(hashBytes(Buf, 5), hashBytes(Buf, 6));
  EXPECT_EQ(hashBytes(Buf, 5), hashBytes(Buf, 5));
}

// --- Int128 -----------------------------------------------------------------

TEST(Int128, MakeAndSplit) {
  Int128 V = makeInt128(0x1111222233334444ull, 0x5555666677778888ull);
  EXPECT_EQ(lo64(V), 0x1111222233334444ull);
  EXPECT_EQ(hi64(V), 0x5555666677778888ull);
}

TEST(Int128, AddOverflowDetected) {
  Int128 Max = makeInt128(~0ull, 0x7fffffffffffffffull);
  Int128 R;
  EXPECT_TRUE(addOverflow128(Max, 1, &R));
  EXPECT_FALSE(addOverflow128(Max, -1, &R));
  EXPECT_EQ(R, Max - 1);
}

TEST(Int128, MulFastPath) {
  Int128 R;
  EXPECT_FALSE(mulOverflow128(1000000000000ll, 1000000000000ll, &R));
  EXPECT_EQ(R, static_cast<Int128>(1000000000000ll) *
                   static_cast<Int128>(1000000000000ll));
  EXPECT_EQ(hi64(R), 0xd3c2ull); // floor(10^24 / 2^64) == 54210
}

TEST(Int128, MulOverflowDetected) {
  Int128 Big = makeInt128(0, 1ull << 62); // 2^126
  Int128 R;
  EXPECT_TRUE(mulOverflow128(Big, 4, &R));
  EXPECT_FALSE(mulOverflow128(Big, 1, &R));
}

TEST(Int128, DivOverflow) {
  Int128 R;
  EXPECT_TRUE(divOverflow128(5, 0, &R));
  Int128 Min = static_cast<Int128>(1) << 127;
  EXPECT_TRUE(divOverflow128(Min, -1, &R));
  EXPECT_FALSE(divOverflow128(-7, 2, &R));
  EXPECT_EQ(R, -3);
}

TEST(Int128, FitsInInt64) {
  EXPECT_TRUE(fitsInInt64(42));
  EXPECT_TRUE(fitsInInt64(-42));
  EXPECT_TRUE(fitsInInt64(INT64_MAX));
  EXPECT_TRUE(fitsInInt64(INT64_MIN));
  EXPECT_FALSE(fitsInInt64(static_cast<Int128>(INT64_MAX) + 1));
  EXPECT_FALSE(fitsInInt64(static_cast<Int128>(INT64_MIN) - 1));
}

// --- Bitset -----------------------------------------------------------------

TEST(Bitset, SetTestReset) {
  Bitset B(130);
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
}

TEST(Bitset, UnionDetectsChange) {
  Bitset A(100), B(100);
  B.set(55);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B));
  EXPECT_TRUE(A.test(55));
}

TEST(Bitset, SubtractAndIntersect) {
  Bitset A(100), B(100);
  A.set(1);
  A.set(2);
  B.set(2);
  B.set(3);
  Bitset C = A;
  C.subtract(B);
  EXPECT_TRUE(C.test(1));
  EXPECT_FALSE(C.test(2));
  A.intersectWith(B);
  EXPECT_FALSE(A.test(1));
  EXPECT_TRUE(A.test(2));
}

TEST(Bitset, ForEachSetBit) {
  Bitset B(200);
  B.set(3);
  B.set(70);
  B.set(199);
  std::vector<size_t> Bits;
  B.forEachSetBit([&](size_t I) { Bits.push_back(I); });
  EXPECT_EQ(Bits, (std::vector<size_t>{3, 70, 199}));
}

// --- TimeTrace ----------------------------------------------------------------

TEST(TimeTrace, RecordsScopes) {
  TimeTrace T;
  {
    TimeTraceScope S(&T, "outer");
    TimeTraceScope S2(&T, "inner");
  }
  EXPECT_EQ(T.records().size(), 2u);
  EXPECT_EQ(T.numEvents(), 2u);
  EXPECT_GE(T.totalNs("outer"), T.totalNs("inner"));
}

TEST(TimeTrace, SelfTimeExcludesChildren) {
  TimeTrace T;
  {
    TimeTraceScope Outer(&T, "o");
    {
      TimeTraceScope Inner(&T, "i");
      volatile uint64_t X = 0;
      for (int I = 0; I != 100000; ++I)
        X = X + static_cast<uint64_t>(I);
      (void)X;
    }
  }
  const TimeRecord &O = T.records().at("o");
  const TimeRecord &I = T.records().at("i");
  EXPECT_LT(O.SelfNs, O.TotalNs);
  EXPECT_GE(O.TotalNs, I.TotalNs);
}

TEST(TimeTrace, NullTraceIsNoop) {
  TimeTraceScope S(nullptr, "nothing");
  SUCCEED();
}

TEST(TimeTrace, MergeAccumulates) {
  TimeTrace A, B;
  A.record("x", 100, 100);
  B.record("x", 50, 40);
  B.record("y", 7, 7);
  A.merge(B);
  EXPECT_EQ(A.totalNs("x"), 150u);
  EXPECT_EQ(A.totalNs("y"), 7u);
  EXPECT_EQ(A.numEvents(), 3u);
}

TEST(TimeTrace, CsvAndTableRender) {
  TimeTrace T;
  T.record("pass.a", 1000000, 900000);
  std::string Csv = T.reportCsv();
  EXPECT_NE(Csv.find("pass.a,1,1000000,900000"), std::string::npos);
  std::string Table = T.reportTable();
  EXPECT_NE(Table.find("pass.a"), std::string::npos);
}

TEST(TimeTrace, PrefixSums) {
  TimeTrace T;
  T.record("isel.fast", 10, 10);
  T.record("isel.dag", 20, 20);
  T.record("ra.fast", 5, 5);
  EXPECT_EQ(T.selfNsWithPrefix("isel."), 30u);
  EXPECT_EQ(T.selfNsWithPrefix(""), 35u);
}
