//===- tests/TvTest.cpp - Translation validation tests ---------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the translation validator (src/tv, QCF_VERIFY=tv) on both
/// sides of its contract:
///
///  * Zero false positives: every corpus function compiled by every JIT
///    back-end — cold and rehydrated from a serialized blob — validates
///    cleanly.
///  * No false negatives on the mutation classes tv claims to catch: each
///    mutation test pairs a Builder-built QIR function with hand-assembled
///    machine code, checks the correct encoding passes, then applies one
///    targeted byte mutation and checks the validator reports it.
///
/// The file also carries the disk-cache regressions: a direct blob with a
/// corrupted code byte deserializes fine (the back-end payload has no
/// checksum of its own) but fails tv, and an mlvm blob with a corrupted
/// relocation addend is rejected by the PLT patch audit in
/// MlvmBackend::deserialize before any code can run.
///
//===----------------------------------------------------------------------===//

#include "craneline/Craneline.h"
#include "direct/DirectEmit.h"
#include "mlvm/Mlvm.h"
#include "qir/Builder.h"
#include "qir/Verify.h"
#include "stencil/Stencil.h"
#include "runtime/Runtime.h"
#include "tests/Corpus.h"
#include "tv/Tv.h"
#include <algorithm>
#include <cstring>
#include <gtest/gtest.h>

namespace {

using namespace qcf;
using qir::Builder;
using qir::CmpPred;
using qir::Function;
using qir::Type;
using qir::ValueId;

//===----------------------------------------------------------------------===//
// Corpus: zero false positives, cold and disk-cache-warm
//===----------------------------------------------------------------------===//

void validateCorpusColdAndWarm(backend::Backend &BE) {
  test::Corpus C = test::buildCorpus();

  std::unique_ptr<backend::CompiledModule> CM = BE.compile(*C.M);
  ASSERT_TRUE(CM);
  std::vector<tv::TvFunction> Fns = CM->tvFunctions();
  ASSERT_FALSE(Fns.empty());
  tv::TvStats St;
  std::string FirstErr;
  for (const tv::TvFunction &MF : Fns) {
    const qir::Function *F = C.M->functionByName(MF.Name);
    ASSERT_NE(F, nullptr) << MF.Name;
    std::string R = tv::validateFunction(*F, MF, tv::TvOptions(), &St);
    if (!R.empty() && FirstErr.empty())
      FirstErr = R;
  }
  EXPECT_EQ(FirstErr, "");
  EXPECT_EQ(St.Mismatches, 0u);
  EXPECT_GE(St.Functions, 10u) << "most corpus functions must be validated, "
                                  "not skipped";

  // Warm path: the rehydrated module's code went through the relocation
  // re-patch machinery, which is exactly what tv exists to re-check.
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(CM->serialize(Blob));
  std::unique_ptr<backend::CompiledModule> Warm =
      BE.deserialize(Blob.data(), Blob.size());
  ASSERT_TRUE(Warm);
  EXPECT_EQ(tv::validateModule(*C.M, Warm->tvFunctions(), tv::TvOptions()),
            "");
}

TEST(TvCorpus, DirectColdAndWarm) {
  direct::DirectBackend BE;
  validateCorpusColdAndWarm(BE);
}

TEST(TvCorpus, StencilColdAndWarm) {
  stencil::StencilBackend BE;
  validateCorpusColdAndWarm(BE);
}

TEST(TvCorpus, CranelineColdAndWarm) {
  craneline::CranelineBackend BE;
  validateCorpusColdAndWarm(BE);
}

TEST(TvCorpus, MlvmColdAndWarm) {
  mlvm::MlvmBackend BE((mlvm::MlvmOptions()));
  validateCorpusColdAndWarm(BE);
}

//===----------------------------------------------------------------------===//
// Mutation harness
//===----------------------------------------------------------------------===//

/// Tiny byte buffer builder for hand-assembled x64.
struct Asm {
  std::vector<uint8_t> Code;

  void bytes(std::initializer_list<int> Bs) {
    for (int B : Bs)
      Code.push_back(static_cast<uint8_t>(B));
  }
  /// Emits a little-endian imm64 and returns its offset (for relocations
  /// and targeted corruption).
  size_t imm64(uint64_t V) {
    size_t Off = Code.size();
    for (int I = 0; I != 8; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (I * 8)));
    return Off;
  }
  void imm32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
};

std::string runTv(const qir::Function &F, const std::vector<uint8_t> &Code,
                  std::vector<tv::TvReloc> Relocs, tv::TvStats *St) {
  tv::TvFunction MF;
  MF.Name = F.name();
  MF.Code = Code.data();
  MF.Size = Code.size();
  MF.Relocs = std::move(Relocs);
  return tv::validateFunction(F, MF, tv::TvOptions(), St);
}

/// The correct encoding must validate — otherwise the paired mutation test
/// proves nothing.
void expectPasses(const qir::Function &F, const std::vector<uint8_t> &Code,
                  std::vector<tv::TvReloc> Relocs = {}) {
  tv::TvStats St;
  std::string R = runTv(F, Code, std::move(Relocs), &St);
  EXPECT_EQ(R, "");
  EXPECT_EQ(St.Functions, 1u);
  EXPECT_EQ(St.Skipped, 0u);
}

/// The mutated encoding must produce a counterexample report.
void expectCaught(const qir::Function &F, const std::vector<uint8_t> &Code,
                  std::vector<tv::TvReloc> Relocs = {},
                  const char *Needle = nullptr) {
  tv::TvStats St;
  std::string R = runTv(F, Code, std::move(Relocs), &St);
  EXPECT_NE(R, "") << "mutation was not caught";
  EXPECT_EQ(St.Mismatches, 1u);
  if (Needle) {
    EXPECT_NE(R.find(Needle), std::string::npos) << R;
  }
}

uint64_t rtAddr(const char *Name) {
  void *P = rt::runtimeSymbolAddress(Name);
  EXPECT_NE(P, nullptr) << Name;
  return reinterpret_cast<uint64_t>(P);
}

//===----------------------------------------------------------------------===//
// Mutation cases
//===----------------------------------------------------------------------===//

TEST(TvMutation, BaselineAddPasses) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), F->paramValue(1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0xf8}); // mov rax, rdi
  A.bytes({0x48, 0x01, 0xf0}); // add rax, rsi
  A.bytes({0xc3});             // ret
  expectPasses(*F, A.Code);
}

TEST(TvMutation, CatchesFlippedImmediate) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), B.constInt(Type::I64, 5)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0xf8});       // mov rax, rdi
  A.bytes({0x48, 0x83, 0xc0, 0x05}); // add rax, 5
  A.bytes({0xc3});                   // ret
  expectPasses(*F, A.Code);

  A.Code[6] = 0x06; // add rax, 6
  expectCaught(*F, A.Code);
}

TEST(TvMutation, CatchesAddBecomingSub) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), F->paramValue(1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0xf8}); // mov rax, rdi
  A.bytes({0x48, 0x01, 0xf0}); // add rax, rsi
  A.bytes({0xc3});             // ret
  A.Code[4] = 0x29;            // sub rax, rsi
  expectCaught(*F, A.Code);
}

TEST(TvMutation, CatchesSwappedSetccCondition) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  ValueId C = B.icmp(CmpPred::SLt, F->paramValue(0), F->paramValue(1));
  B.ret(B.zext(Type::I64, C));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x39, 0xf7});       // cmp rdi, rsi
  A.bytes({0x0f, 0x9c, 0xc0});       // setl al
  A.bytes({0x48, 0x0f, 0xb6, 0xc0}); // movzx rax, al
  A.bytes({0xc3});                   // ret
  expectPasses(*F, A.Code);

  A.Code[4] = 0x9d; // setge al — inverted predicate
  expectCaught(*F, A.Code);
}

TEST(TvMutation, CatchesDroppedZeroExtend) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  ValueId C = B.icmp(CmpPred::SLt, F->paramValue(0), F->paramValue(1));
  B.ret(B.zext(Type::I64, C));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  // setl only writes al; without the movzx the upper 56 bits of rax keep
  // their (junk-seeded) entry value, which the validator must notice.
  Asm A;
  A.bytes({0x48, 0x39, 0xf7});       // cmp rdi, rsi
  A.bytes({0x0f, 0x9c, 0xc0});       // setl al
  A.bytes({0x90, 0x90, 0x90, 0x90}); // movzx rax, al -> NOPs
  A.bytes({0xc3});                   // ret
  expectCaught(*F, A.Code);
}

TEST(TvMutation, CatchesWrongShiftAmount) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.shl(F->paramValue(0), B.constInt(Type::I64, 3)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0xf8});       // mov rax, rdi
  A.bytes({0x48, 0xc1, 0xe0, 0x03}); // shl rax, 3
  A.bytes({0xc3});                   // ret
  expectPasses(*F, A.Code);

  A.Code[6] = 0x04; // shl rax, 4
  expectCaught(*F, A.Code);
}

/// QIR source shared by the runtime-call mutation cases:
///   f(a) = rt_date_year(a) + a
Function *buildCallPlusArg(qir::Module &M) {
  rt::RuntimeSyms Syms = rt::declareRuntime(M);
  Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId T = B.call(Syms.DateYear, {F->paramValue(0)});
  B.ret(B.add(T, F->paramValue(0)));
  EXPECT_EQ(qir::verify(M), std::nullopt);
  return F;
}

/// Assembles f(a) = rt_date_year(a) + a, keeping `a` live across the call
/// in \p SaveReg (modrm byte of `mov SaveReg, rdi` / `add rax, SaveReg`).
/// rbx (callee-saved) is correct; rsi (caller-saved) is the classic
/// register-allocation bug: junked by the call clobber model.
Asm assembleCallPlusArg(uint8_t MovModrm, uint8_t AddModrm,
                        size_t *ImmOff = nullptr) {
  Asm A;
  A.bytes({0x48, 0x89, MovModrm}); // mov <save>, rdi
  A.bytes({0x48, 0xb8});           // movabs rax, &rt_date_year
  size_t Off = A.imm64(rtAddr("rt_date_year"));
  A.bytes({0xff, 0xd0});           // call rax
  A.bytes({0x48, 0x01, AddModrm}); // add rax, <save>
  A.bytes({0xc3});                 // ret
  if (ImmOff)
    *ImmOff = Off;
  return A;
}

TEST(TvMutation, CatchesCallerSavedRegLiveAcrossCall) {
  qir::Module M;
  Function *F = buildCallPlusArg(M);

  // Correct: spill to callee-saved rbx.
  expectPasses(*F, assembleCallPlusArg(0xfb, 0xd8).Code); // rbx
  // Broken: keep the value in caller-saved rsi across the call.
  expectCaught(*F, assembleCallPlusArg(0xfe, 0xf0).Code); // rsi
}

TEST(TvMutation, CatchesWrongCallee) {
  qir::Module M;
  Function *F = buildCallPlusArg(M);

  // Same signature, same shape — but the wrong runtime entry point.
  Asm A;
  A.bytes({0x48, 0x89, 0xfb}); // mov rbx, rdi
  A.bytes({0x48, 0xb8});       // movabs rax, &rt_date_month (!)
  A.imm64(rtAddr("rt_date_month"));
  A.bytes({0xff, 0xd0});       // call rax
  A.bytes({0x48, 0x01, 0xd8}); // add rax, rbx
  A.bytes({0xc3});             // ret
  expectCaught(*F, A.Code);
}

TEST(TvMutation, CatchesStaleImm64Relocation) {
  qir::Module M;
  Function *F = buildCallPlusArg(M);

  size_t ImmOff = 0;
  Asm A = assembleCallPlusArg(0xfb, 0xd8, &ImmOff);
  std::vector<tv::TvReloc> Relocs = {
      {static_cast<uint64_t>(ImmOff), 8, "rt_date_year"}};
  expectPasses(*F, A.Code, Relocs);

  // A mis-patched blob: the relocation record names rt_date_year but the
  // patched imm64 points 16 bytes past it. The cross-check against the
  // live symbol table must reject it before the call is simulated.
  uint64_t Bad = rtAddr("rt_date_year") + 16;
  std::memcpy(A.Code.data() + ImmOff, &Bad, 8);
  expectCaught(*F, A.Code, Relocs, "stale relocation");
}

TEST(TvMutation, CatchesDroppedStore) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::Ptr, Type::I64}, Type::I64);
  Builder B(F);
  B.store(F->paramValue(1), F->paramValue(0));
  B.ret(F->paramValue(1));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0x37}); // mov [rdi], rsi
  A.bytes({0x48, 0x89, 0xf0}); // mov rax, rsi
  A.bytes({0xc3});             // ret
  expectPasses(*F, A.Code);

  // Dead-store "optimizing" away an escaping store changes the global
  // digest observed at the return event.
  A.Code[0] = A.Code[1] = A.Code[2] = 0x90;
  expectCaught(*F, A.Code);
}

TEST(TvMutation, CatchesWrongStoreDisplacement) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::Ptr, Type::I64}, Type::I64);
  Builder B(F);
  B.store(F->paramValue(1), B.gep(F->paramValue(0), 8));
  B.ret(B.constInt(Type::I64, 0));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0x77, 0x08}); // mov [rdi+8], rsi
  A.bytes({0x48, 0x31, 0xc0});       // xor rax, rax
  A.bytes({0xc3});                   // ret
  expectPasses(*F, A.Code);

  A.Code[3] = 0x10; // mov [rdi+16], rsi
  expectCaught(*F, A.Code);
}

/// Assembles f(a, b) = saddTrap(a, b): add, branch to an rt_trap call on
/// overflow. \p JccCC is the 0F 8x condition byte (0x80 = jo).
Asm assembleSaddTrap(uint8_t JccCC) {
  Asm A;
  A.bytes({0x48, 0x89, 0xf8});       // 0:  mov rax, rdi
  A.bytes({0x48, 0x01, 0xf0});       // 3:  add rax, rsi
  A.bytes({0x0f, JccCC});            // 6:  jcc Ltrap (rel32)
  A.imm32(1);                        //     -> 13
  A.bytes({0xc3});                   // 12: ret
  A.bytes({0xbf});                   // 13: mov edi, Overflow
  A.imm32(static_cast<uint32_t>(rt::TrapCode::Overflow));
  A.bytes({0x48, 0xb8});             // 18: movabs rax, &rt_trap
  A.imm64(rtAddr("rt_trap"));
  A.bytes({0xff, 0xd0});             // 28: call rax (never returns)
  A.bytes({0x0f, 0x0b});             // 30: ud2
  return A;
}

TEST(TvMutation, CatchesFlippedTrapCondition) {
  qir::Module M;
  rt::declareRuntime(M);
  Function *F = M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.saddTrap(F->paramValue(0), F->paramValue(1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  expectPasses(*F, assembleSaddTrap(0x80).Code); // jo: correct
  expectCaught(*F, assembleSaddTrap(0x81).Code); // jno: inverted
}

TEST(TvMutation, CatchesDroppedTrapCheck) {
  // A dropped overflow check only misbehaves on rounds that actually
  // overflow, so force it: (a | INT64_MAX) + 1 overflows for every
  // non-negative a — most of the oracle's argument distribution.
  qir::Module M;
  rt::declareRuntime(M);
  Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  ValueId Big = B.or_(F->paramValue(0),
                      B.constInt(Type::I64, 0x7fffffffffffffff));
  B.ret(B.saddTrap(Big, B.constInt(Type::I64, 1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0xb8});             // 0:  movabs rax, INT64_MAX
  A.imm64(0x7fffffffffffffffull);
  A.bytes({0x48, 0x09, 0xf8});       // 10: or rax, rdi
  A.bytes({0x48, 0x83, 0xc0, 0x01}); // 13: add rax, 1
  A.bytes({0x0f, 0x80});             // 17: jo Ltrap (rel32)
  A.imm32(1);                        //     -> 24
  A.bytes({0xc3});                   // 23: ret
  A.bytes({0xbf});                   // 24: mov edi, Overflow
  A.imm32(static_cast<uint32_t>(rt::TrapCode::Overflow));
  A.bytes({0x48, 0xb8});             // 29: movabs rax, &rt_trap
  A.imm64(rtAddr("rt_trap"));
  A.bytes({0xff, 0xd0});             // 39: call rax (never returns)
  A.bytes({0x0f, 0x0b});             // 41: ud2
  expectPasses(*F, A.Code);

  // NOP out the jo: overflowing rounds return the wrapped sum where QIR
  // trapped.
  for (size_t I = 17; I != 23; ++I)
    A.Code[I] = 0x90;
  expectCaught(*F, A.Code);
}

TEST(TvMutation, SkipsFunctionsOutsideTheModel) {
  // Seven integer parameters exceed the six argument registers; the
  // validator must record a sound skip, not a pass and not a mismatch.
  qir::Module M;
  Function *F = M.createFunction(
      "f",
      {Type::I64, Type::I64, Type::I64, Type::I64, Type::I64, Type::I64,
       Type::I64},
      Type::I64);
  Builder B(F);
  B.ret(F->paramValue(0));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0xf8}); // mov rax, rdi
  A.bytes({0xc3});             // ret
  tv::TvStats St;
  EXPECT_EQ(runTv(*F, A.Code, {}, &St), "");
  EXPECT_EQ(St.Skipped, 1u);
  EXPECT_EQ(St.Functions, 0u);
}

TEST(TvMutation, ModuleValidationIgnoresUnknownFunctions) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(F->paramValue(0));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  Asm A;
  A.bytes({0x48, 0x89, 0xf8, 0xc3});
  tv::TvFunction MF;
  MF.Name = "no_such_function";
  MF.Code = A.Code.data();
  MF.Size = A.Code.size();
  EXPECT_EQ(tv::validateModule(M, {MF}, tv::TvOptions()), "");
}

//===----------------------------------------------------------------------===//
// Disk-cache blob corruption regressions
//===----------------------------------------------------------------------===//

TEST(TvBlob, CorruptedDirectCodeByteIsCaughtByTv) {
  qir::Module M;
  Function *F = M.createFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.add(F->paramValue(0), F->paramValue(1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  direct::DirectBackend BE;
  std::unique_ptr<backend::CompiledModule> CM = BE.compile(M);
  ASSERT_TRUE(CM);
  std::vector<tv::TvFunction> Fns = CM->tvFunctions();
  ASSERT_EQ(Fns.size(), 1u);
  ASSERT_GT(Fns[0].Size, 0u);
  ASSERT_EQ(Fns[0].Code[Fns[0].Size - 1], 0xc3) << "expected trailing ret";

  std::vector<uint8_t> Blob;
  ASSERT_TRUE(CM->serialize(Blob));

  // The payload stores the machine code verbatim: locate the function's
  // bytes and turn its final ret into a nop. The back-end payload carries
  // no code checksum (that is the DiskCodeCache envelope's job), so
  // deserialization succeeds — tv is the layer that must catch it.
  auto It = std::search(Blob.begin(), Blob.end(), Fns[0].Code,
                        Fns[0].Code + Fns[0].Size);
  ASSERT_NE(It, Blob.end()) << "function bytes not found in payload";
  *(It + static_cast<ptrdiff_t>(Fns[0].Size - 1)) = 0x90;

  std::unique_ptr<backend::CompiledModule> Warm =
      BE.deserialize(Blob.data(), Blob.size());
  ASSERT_TRUE(Warm);
  EXPECT_NE(tv::validateModule(M, Warm->tvFunctions(), tv::TvOptions()), "");
}

TEST(TvBlob, MispatchedMlvmRelocationIsRejectedOnLoad) {
  qir::Module M;
  rt::RuntimeSyms Syms = rt::declareRuntime(M);
  Function *F = M.createFunction("f", {Type::I64}, Type::I64);
  Builder B(F);
  B.ret(B.call(Syms.DateYear, {F->paramValue(0)}));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  mlvm::MlvmBackend BE((mlvm::MlvmOptions()));
  std::unique_ptr<backend::CompiledModule> CM = BE.compile(M);
  ASSERT_TRUE(CM);
  std::vector<uint8_t> Blob;
  ASSERT_TRUE(CM->serialize(Blob));

  // Sanity: the unmodified blob loads.
  ASSERT_TRUE(BE.deserialize(Blob.data(), Blob.size()));

  // Corrupt the addend of the first RELA entry. The link itself still
  // "succeeds" — the patched rel32 is just wrong — so only the PLT patch
  // audit in MlvmBackend::deserialize stands between this blob and a wild
  // call. It must report the mismatch and treat the blob as a miss.
  ASSERT_GE(Blob.size(), 0x40u);
  ASSERT_TRUE(Blob[0] == 0x7f && Blob[1] == 'E' && Blob[2] == 'L' &&
              Blob[3] == 'F');
  auto Rd = [&](size_t Off, unsigned Bytes) {
    uint64_t V = 0;
    for (unsigned I = 0; I != Bytes; ++I)
      V |= static_cast<uint64_t>(Blob[Off + I]) << (I * 8);
    return V;
  };
  uint64_t ShOff = Rd(0x28, 8);
  uint64_t ShNum = Rd(0x3c, 2);
  bool Corrupted = false;
  for (uint64_t S = 0; S != ShNum && !Corrupted; ++S) {
    uint64_t Sh = ShOff + S * 64;
    if (Rd(Sh + 0x04, 4) != 4) // SHT_RELA
      continue;
    uint64_t RelOff = Rd(Sh + 0x18, 8);
    uint64_t RelSize = Rd(Sh + 0x20, 8);
    ASSERT_GE(RelSize, 24u) << "expected at least one relocation";
    Blob[RelOff + 16] += 16; // r_addend += 16
    Corrupted = true;
  }
  ASSERT_TRUE(Corrupted) << "no RELA section in the mlvm payload";

  EXPECT_EQ(BE.deserialize(Blob.data(), Blob.size()), nullptr);
}

} // namespace
