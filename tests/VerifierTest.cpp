//===- tests/VerifierTest.cpp - Verification-layer mutation tests ----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
//
// Mutation tests for the machine-level verification suite: every check of
// the MIR verifier, the x64 encoding lint, the QIR verifier additions, and
// the known-bits differential oracle must fire on at least one hand-built
// corrupted input — a verifier whose checks never fire is indistinguishable
// from one that checks nothing. Positive tests run the same layers over
// well-formed and randomly generated inputs across every back-end.
//
//===----------------------------------------------------------------------===//

#include "craneline/Craneline.h"
#include "direct/DirectEmit.h"
#include "interp/Interp.h"
#include "mlvm/Eval.h"
#include "mlvm/Isel.h"
#include "mlvm/KnownBits.h"
#include "mlvm/MirVerify.h"
#include "mlvm/Mlvm.h"
#include "mlvm/Translate.h"
#include "qir/Builder.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include "tests/DiffHarness.h"
#include "tests/RandomQir.h"
#include "x64/Asm.h"
#include "x64/EncodingLint.h"
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::mlvm;
using x64::Reg;

namespace {

// --- MIR builder helpers ---------------------------------------------------

MachineInstr *mk(MachineBasicBlock *B, MOpc Opc,
                 std::initializer_list<MOperand> Ops) {
  MemPool &Pool = B->Pool ? *B->Pool : MemPool::defaultHeap();
  auto *I = Pool.create<MachineInstr>(Opc, Pool);
  for (MOperand Op : Ops)
    I->addOperand(Op);
  B->Insts.push_back(I);
  return I;
}

MOperand def(MReg R) { return MOperand::def(R); }
MOperand use(MReg R) { return MOperand::use(R); }
MOperand mbb(uint32_t B) { return MOperand::mbb(B); }

/// A minimal well-formed allocated-stage function: mov rax, 7; ret.
std::unique_ptr<MirFunction> allocatedStub() {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "stub";
  auto *B0 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(pgp(Reg::RAX))})->Imm = 7;
  mk(B0, MOpc::RET, {});
  return MF;
}

/// A minimal well-formed SSA-stage function with one vreg.
std::unique_ptr<MirFunction> ssaStub() {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "stub";
  MReg V0 = MF->newVReg(MRegClass::Int);
  auto *B0 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(V0)})->Imm = 7;
  mk(B0, MOpc::RET, {});
  return MF;
}

// --- MIR verifier: positives -----------------------------------------------

TEST(MirVerifier, AcceptsMinimalAllocatedFunction) {
  auto MF = allocatedStub();
  EXPECT_EQ(verifyMir(*MF, MirStage::Final, "test"), "");
  EXPECT_EQ(verifyMir(*MF, MirStage::Allocated, "test"), "");
}

TEST(MirVerifier, AcceptsMinimalSsaFunction) {
  auto MF = ssaStub();
  EXPECT_EQ(verifyMir(*MF, MirStage::Ssa, "test"), "");
}

TEST(MirVerifier, AcceptsDiamondWithPhi) {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "diamond";
  MReg V0 = MF->newVReg(MRegClass::Int);
  MReg V1 = MF->newVReg(MRegClass::Int);
  MReg V2 = MF->newVReg(MRegClass::Int);
  MReg V3 = MF->newVReg(MRegClass::Int);
  auto *B0 = MF->createBlock();
  auto *B1 = MF->createBlock();
  auto *B2 = MF->createBlock();
  auto *B3 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(V0)})->Imm = 1;
  mk(B0, MOpc::JCC, {mbb(1)});
  mk(B0, MOpc::JMP, {mbb(2)});
  B0->Succs = {1, 2};
  mk(B1, MOpc::MOVRI, {def(V1)})->Imm = 2;
  mk(B1, MOpc::JMP, {mbb(3)});
  B1->Succs = {3};
  mk(B2, MOpc::MOVRI, {def(V2)})->Imm = 3;
  mk(B2, MOpc::JMP, {mbb(3)});
  B2->Succs = {3};
  mk(B3, MOpc::PHI, {def(V3), use(V1), mbb(1), use(V2), mbb(2)});
  mk(B3, MOpc::RET, {});
  EXPECT_EQ(verifyMir(*MF, MirStage::Ssa, "test"), "");
}

// --- MIR verifier: block structure mutations --------------------------------

TEST(MirVerifier, RejectsBlockIdMismatch) {
  auto MF = allocatedStub();
  MF->Blocks[0]->Id = 5;
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("block id does not match layout index"),
            std::string::npos);
}

TEST(MirVerifier, RejectsEmptyBlock) {
  auto MF = allocatedStub();
  MF->createBlock(); // trailing empty block
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test").find("empty block"),
            std::string::npos);
}

TEST(MirVerifier, RejectsInstructionAfterTerminator) {
  auto MF = allocatedStub();
  mk(MF->Blocks[0].get(), MOpc::MOVRI, {def(pgp(Reg::RAX))});
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("instruction after the block terminator"),
            std::string::npos);
}

TEST(MirVerifier, RejectsMissingTerminator) {
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts.back());
  Insts.pop_back();
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("does not end in JMP/RET/UD2"),
            std::string::npos);
}

TEST(MirVerifier, RejectsBranchTargetMissingFromSuccessors) {
  auto MF = allocatedStub();
  auto *B1 = MF->createBlock();
  mk(B1, MOpc::RET, {});
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts.back());
  Insts.pop_back();
  mk(MF->Blocks[0].get(), MOpc::JMP, {mbb(1)});
  // Succs deliberately left empty.
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("branch target bb1 missing from the successor list"),
            std::string::npos);
}

TEST(MirVerifier, RejectsSuccessorWithoutBranch) {
  auto MF = allocatedStub();
  auto *B1 = MF->createBlock();
  mk(B1, MOpc::RET, {});
  MF->Blocks[0]->Succs = {1}; // but block 0 ends in RET, no branch
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("successor bb1 has no branch targeting it"),
            std::string::npos);
}

TEST(MirVerifier, RejectsBranchTargetOutOfRange) {
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts.back());
  Insts.pop_back();
  mk(MF->Blocks[0].get(), MOpc::JMP, {mbb(9)});
  MF->Blocks[0]->Succs = {9};
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("block operand bb9 out of range"),
            std::string::npos);
}

// --- MIR verifier: stage-gated opcodes ---------------------------------------

TEST(MirVerifier, RejectsGenericOpcodeAfterIsel) {
  auto MF = ssaStub();
  auto &Insts = MF->Blocks[0]->Insts;
  Insts[0]->Opc = MOpc::G_CONSTANT;
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("generic opcode after instruction selection"),
            std::string::npos);
}

TEST(MirVerifier, RejectsPhiAfterPhiElimination) {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "f";
  MReg V0 = MF->newVReg(MRegClass::Int);
  auto *B0 = MF->createBlock();
  mk(B0, MOpc::PHI, {def(V0)}); // malformed too, but stage check fires first
  mk(B0, MOpc::RET, {});
  EXPECT_NE(verifyMir(*MF, MirStage::NoPhi, "test")
                .find("PHI survived PHI elimination"),
            std::string::npos);
}

TEST(MirVerifier, RejectsThreeAddressFormAfterTwoAddress) {
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts.back());
  Insts.pop_back();
  mk(MF->Blocks[0].get(), MOpc::ALU3,
     {def(pgp(Reg::RAX)), use(pgp(Reg::RCX)), use(pgp(Reg::RDX))});
  mk(MF->Blocks[0].get(), MOpc::RET, {});
  EXPECT_NE(verifyMir(*MF, MirStage::TwoAddr, "test")
                .find("three-address form survived two-address rewriting"),
            std::string::npos);
}

TEST(MirVerifier, RejectsStackAddrFrameIndexOutOfRange) {
  auto MF = ssaStub();
  auto &Insts = MF->Blocks[0]->Insts;
  Insts[0]->Opc = MOpc::STACKADDR;
  Insts[0]->Imm = 3; // no frame objects exist
  EXPECT_NE(
      verifyMir(*MF, MirStage::Ssa, "test").find("frame index 3 out of range"),
      std::string::npos);
}

TEST(MirVerifier, RejectsStackAddrAfterPrologEpilog) {
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->addFrameObject(8);
  Insts[0]->Opc = MOpc::STACKADDR;
  Insts[0]->Imm = 0;
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("STACKADDR survived prologue/epilogue insertion"),
            std::string::npos);
}

// --- MIR verifier: PHI shape mutations ---------------------------------------

std::unique_ptr<MirFunction> phiDiamond() {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "diamond";
  for (int I = 0; I != 4; ++I)
    MF->newVReg(MRegClass::Int);
  auto *B0 = MF->createBlock();
  auto *B1 = MF->createBlock();
  auto *B2 = MF->createBlock();
  auto *B3 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(MREG_VBASE + 0)})->Imm = 1;
  mk(B0, MOpc::JCC, {mbb(1)});
  mk(B0, MOpc::JMP, {mbb(2)});
  B0->Succs = {1, 2};
  mk(B1, MOpc::MOVRI, {def(MREG_VBASE + 1)})->Imm = 2;
  mk(B1, MOpc::JMP, {mbb(3)});
  B1->Succs = {3};
  mk(B2, MOpc::MOVRI, {def(MREG_VBASE + 2)})->Imm = 3;
  mk(B2, MOpc::JMP, {mbb(3)});
  B2->Succs = {3};
  mk(B3, MOpc::PHI,
     {def(MREG_VBASE + 3), use(MREG_VBASE + 1), mbb(1), use(MREG_VBASE + 2),
      mbb(2)});
  mk(B3, MOpc::RET, {});
  return MF;
}

TEST(MirVerifier, RejectsDroppedPhiEdge) {
  auto MF = phiDiamond();
  auto *Phi = MF->Blocks[3]->Insts[0];
  Phi->Operands.resize(3); // drop the (v2, bb2) incoming pair
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("PHI is missing an incoming value for predecessor bb2"),
            std::string::npos);
}

TEST(MirVerifier, RejectsPhiNamingNonPredecessor) {
  auto MF = phiDiamond();
  auto *Phi = MF->Blocks[3]->Insts[0];
  Phi->Operands[4].Mbb = 0; // bb0 is not a predecessor of bb3
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("PHI names bb0 which is not a predecessor"),
            std::string::npos);
}

TEST(MirVerifier, RejectsDuplicatePhiPredecessor) {
  auto MF = phiDiamond();
  auto *Phi = MF->Blocks[3]->Insts[0];
  Phi->Operands[4].Mbb = 1; // bb1 named twice
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("duplicate PHI predecessor bb1"),
            std::string::npos);
}

TEST(MirVerifier, RejectsEvenPhiOperandCount) {
  auto MF = phiDiamond();
  auto *Phi = MF->Blocks[3]->Insts[0];
  Phi->Operands.resize(4); // def + use + mbb + use: pairs broken
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("PHI operand count must be odd"),
            std::string::npos);
}

TEST(MirVerifier, RejectsPhiWithSwappedOperandPair) {
  auto MF = phiDiamond();
  auto *Phi = MF->Blocks[3]->Insts[0];
  std::swap(Phi->Operands[1], Phi->Operands[2]); // (bb, use) instead of (use, bb)
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("PHI operands must be (use, block) pairs"),
            std::string::npos);
}

TEST(MirVerifier, RejectsPhiNotAtBlockStart) {
  auto MF = phiDiamond();
  auto &Insts = MF->Blocks[3]->Insts;
  auto *Extra = MF->createInstr(MOpc::MOVRI);
  Extra->addOperand(def(MREG_VBASE + 0));
  Insts.insert(Insts.begin(), Extra); // PHI is now second
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("PHI not at the start of its block"),
            std::string::npos);
}

TEST(MirVerifier, RejectsPhiMixingRegisterClasses) {
  auto MF = phiDiamond();
  MF->VRegClass[3] = MRegClass::Float; // PHI def disagrees with the lanes
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("PHI mixes register classes"),
            std::string::npos);
}

// --- MIR verifier: operand shape and class mutations -------------------------

TEST(MirVerifier, RejectsVRegOutOfRange) {
  auto MF = ssaStub();
  MF->Blocks[0]->Insts[0]->Operands[0].Reg = MREG_VBASE + 99;
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("virtual register v99 out of range"),
            std::string::npos);
}

TEST(MirVerifier, RejectsVRegSurvivingRegAlloc) {
  auto MF = allocatedStub();
  MF->newVReg(MRegClass::Int);
  MF->Blocks[0]->Insts[0]->Operands[0].Reg = MREG_VBASE + 0;
  EXPECT_NE(verifyMir(*MF, MirStage::Allocated, "test")
                .find("virtual register v0 survived register allocation"),
            std::string::npos);
}

TEST(MirVerifier, RejectsMalformedRegisterEncoding) {
  auto MF = allocatedStub();
  MF->Blocks[0]->Insts[0]->Operands[0].Reg = 20; // between GP and XMM ranges
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("malformed register operand"),
            std::string::npos);
}

TEST(MirVerifier, RejectsStraySpillMarker) {
  auto MF = ssaStub();
  MF->Blocks[0]->Insts[0]->Operands[0].Reg = MLVM_SPILL_MARKER;
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("stray spill marker operand"),
            std::string::npos);
}

TEST(MirVerifier, RejectsSpillSlotOutOfBounds) {
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts[0]);
  auto *Load = MF->createInstr(MOpc::LOADZX);
  Load->addOperand(def(pgp(Reg::RAX)));
  Load->addOperand(use(MLVM_SPILL_MARKER));
  Load->Disp = 2; // only 2 slots [0,2) exist
  Insts[0] = Load;
  EXPECT_NE(verifyMir(*MF, MirStage::Allocated, "test", /*NumSpillSlots=*/2)
                .find("spill slot 2 out of range"),
            std::string::npos);
  Load->Disp = 1;
  EXPECT_EQ(verifyMir(*MF, MirStage::Allocated, "test", /*NumSpillSlots=*/2),
            "");
}

TEST(MirVerifier, RejectsSwappedFStoreOperands) {
  // FSTORE expects (value: xmm, base: gp); swapping them must fire the
  // register-class check.
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts[0]);
  auto *St = MF->createInstr(MOpc::FSTORE);
  St->addOperand(use(pgp(Reg::RAX)));  // swapped: gp in the xmm slot
  St->addOperand(use(pxmm(x64::Xmm::XMM0)));
  Insts[0] = St;
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("has register class Int, expected Float"),
            std::string::npos);
}

TEST(MirVerifier, RejectsCopyMixingRegisterClasses) {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "f";
  MReg VI = MF->newVReg(MRegClass::Int);
  MReg VF = MF->newVReg(MRegClass::Float);
  auto *B0 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(VI)})->Imm = 1;
  mk(B0, MOpc::COPY, {def(VF), use(VI)});
  mk(B0, MOpc::RET, {});
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("COPY mixes register classes"),
            std::string::npos);
}

// --- MIR verifier: two-address tie constraints -------------------------------

TEST(MirVerifier, RejectsViolatedTieConstraint) {
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts[0]);
  auto *Alu = MF->createInstr(MOpc::ALU2);
  Alu->addOperand(def(pgp(Reg::RAX)));
  Alu->addOperand(use(pgp(Reg::RCX))); // must be tied to the def
  Alu->addOperand(use(pgp(Reg::RDX)));
  Insts[0] = Alu;
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("tie constraint violated: def gp0 != use gp1"),
            std::string::npos);
  // Restoring the tie makes it pass again... almost: RCX/RDX are unwritten
  // but physical uses are not def-checked, so this is clean.
  Alu->Operands[1].Reg = pgp(Reg::RAX);
  EXPECT_EQ(verifyMir(*MF, MirStage::Final, "test"), "");
}

TEST(MirVerifier, RejectsTwoAddressWithoutTiedPair) {
  auto MF = allocatedStub();
  auto &Insts = MF->Blocks[0]->Insts;
  MF->destroyInstr(Insts[0]);
  auto *Alu = MF->createInstr(MOpc::ALU2);
  Alu->addOperand(def(pgp(Reg::RAX))); // missing the tied use
  Insts[0] = Alu;
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("lacks tied def/use operand pair"),
            std::string::npos);
}

// --- MIR verifier: def-before-use dataflow -----------------------------------

TEST(MirVerifier, RejectsUseBeforeDef) {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "f";
  MReg V0 = MF->newVReg(MRegClass::Int);
  MReg V1 = MF->newVReg(MRegClass::Int);
  auto *B0 = MF->createBlock();
  mk(B0, MOpc::COPY, {def(V1), use(V0)}); // v0 never defined
  mk(B0, MOpc::RET, {});
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("use of v0 before any definition reaches it"),
            std::string::npos);
}

TEST(MirVerifier, RejectsUseDefinedOnOnlyOnePath) {
  // v1 is defined in bb1 but not bb2; a use after the join must fail the
  // must-be-defined intersection.
  auto MF = phiDiamond();
  auto &Insts = MF->Blocks[2]->Insts;
  MF->destroyInstr(Insts[0]); // remove bb2's def of v2
  Insts.erase(Insts.begin());
  auto *Phi = MF->Blocks[3]->Insts[0];
  Phi->Operands[3].Reg = MREG_VBASE + 1; // phi now reads v1 on both edges
  Phi->Operands[3].K = MOperand::Kind::RegUse;
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("not defined on the edge from bb2"),
            std::string::npos);
}

TEST(MirVerifier, RejectsPhiReadingUndefinedValueOnEdge) {
  auto MF = phiDiamond();
  MReg V9 = MF->newVReg(MRegClass::Int);
  auto *Phi = MF->Blocks[3]->Insts[0];
  Phi->Operands[1].Reg = V9; // never defined anywhere
  EXPECT_NE(verifyMir(*MF, MirStage::Ssa, "test")
                .find("not defined on the edge from bb1"),
            std::string::npos);
}

// --- MIR verifier: call clobbers ---------------------------------------------

std::unique_ptr<MirFunction> callStub(Reg LiveAcross) {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "f";
  MF->addCallee("rt_test", nullptr);
  auto *B0 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(pgp(LiveAcross))})->Imm = 1;
  auto *Call = mk(B0, MOpc::CALL, {});
  Call->Imm = 0;
  Call->Aux = 0;
  mk(B0, MOpc::TEST, {use(pgp(LiveAcross)), use(pgp(LiveAcross))});
  mk(B0, MOpc::RET, {});
  return MF;
}

TEST(MirVerifier, RejectsCallerSavedRegisterLiveAcrossCall) {
  auto MF = callStub(Reg::RCX);
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("clobbered by an earlier call"),
            std::string::npos);
}

TEST(MirVerifier, AcceptsCalleeSavedRegisterLiveAcrossCall) {
  auto MF = callStub(Reg::RBX);
  EXPECT_EQ(verifyMir(*MF, MirStage::Final, "test"), "");
}

TEST(MirVerifier, AcceptsReturnRegisterReadAfterCall) {
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "f";
  MF->addCallee("rt_test", nullptr);
  auto *B0 = MF->createBlock();
  auto *Call = mk(B0, MOpc::CALL, {});
  Call->Imm = 0;
  mk(B0, MOpc::TEST, {use(pgp(Reg::RAX)), use(pgp(Reg::RAX))});
  mk(B0, MOpc::RET, {});
  EXPECT_EQ(verifyMir(*MF, MirStage::Final, "test"), "");
}

TEST(MirVerifier, RejectsClobberedRegisterReadInLaterBlock) {
  // The dirty-register state must propagate across the CFG, not just
  // within one block.
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "f";
  MF->addCallee("rt_test", nullptr);
  auto *B0 = MF->createBlock();
  auto *B1 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(pgp(Reg::RSI))})->Imm = 1;
  auto *Call = mk(B0, MOpc::CALL, {});
  Call->Imm = 0;
  mk(B0, MOpc::JMP, {mbb(1)});
  B0->Succs = {1};
  mk(B1, MOpc::TEST, {use(pgp(Reg::RSI)), use(pgp(Reg::RSI))});
  mk(B1, MOpc::RET, {});
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("clobbered by an earlier call"),
            std::string::npos);
}

TEST(MirVerifier, RejectsImplicitShiftAmountClobberedByCall) {
  // SHIFT2C implicitly reads CL; a call between setting RCX and the shift
  // clobbers it.
  auto MF = std::make_unique<MirFunction>();
  MF->Name = "f";
  MF->addCallee("rt_test", nullptr);
  auto *B0 = MF->createBlock();
  mk(B0, MOpc::MOVRI, {def(pgp(Reg::RCX))})->Imm = 3;
  auto *Call = mk(B0, MOpc::CALL, {});
  Call->Imm = 0;
  auto *Sh = mk(B0, MOpc::SHIFT2C, {def(pgp(Reg::RAX)), use(pgp(Reg::RAX))});
  (void)Sh;
  mk(B0, MOpc::RET, {});
  EXPECT_NE(verifyMir(*MF, MirStage::Final, "test")
                .find("clobbered by an earlier call"),
            std::string::npos);
}

TEST(MirVerifier, DieAbortsWithDiagnostic) {
  auto MF = allocatedStub();
  MF->Blocks[0]->Id = 5;
  EXPECT_DEATH(verifyMirOrDie(*MF, MirStage::Final, "test"),
               "block id does not match layout index");
}

// --- x64 encoding lint --------------------------------------------------------

TEST(EncodingLint, AcceptsAssemblerOutput) {
  x64::Assembler A;
  A.movRI(Reg::RAX, 0x123456789abcdef0ull);
  A.aluRR(x64::Assembler::Alu::Add, x64::Width::W64, Reg::RAX, Reg::RCX);
  x64::Label L = A.newLabel();
  A.jcc(x64::Cond::E, L);
  A.aluRI(x64::Assembler::Alu::Sub, x64::Width::W32, Reg::RDX, 42);
  A.bind(L);
  A.ret();
  A.finalize();
  EXPECT_EQ(x64::lintFunction(A.code().data(), A.size()), "");
}

TEST(EncodingLint, RejectsGarbageByte) {
  std::vector<uint8_t> Code = {0x06, 0xc3}; // 0x06 is not a valid opcode
  std::string Err = x64::lintFunction(Code.data(), Code.size());
  EXPECT_NE(Err.find("offset 0"), std::string::npos);
  EXPECT_NE(Err.find("unknown opcode byte"), std::string::npos);
}

TEST(EncodingLint, RejectsTruncatedInstruction) {
  std::vector<uint8_t> Code = {0xc3, 0x48}; // trailing lone REX prefix
  EXPECT_NE(x64::lintFunction(Code.data(), Code.size()).find("truncated"),
            std::string::npos);
}

TEST(EncodingLint, RejectsOffByOneJumpTarget) {
  // jmp +1 lands in the middle of the following 3-byte mov.
  std::vector<uint8_t> Code = {0xe9, 0x01, 0x00, 0x00, 0x00, // jmp .+1
                               0x48, 0x89, 0xc0,             // mov rax, rax
                               0xc3};                        // ret
  std::string Err = x64::lintFunction(Code.data(), Code.size());
  EXPECT_NE(Err.find("targets offset 6"), std::string::npos);
  EXPECT_NE(Err.find("not an instruction start"), std::string::npos);
  Code[1] = 0x03; // jmp .+3 → offset 8, the ret: a valid boundary
  EXPECT_EQ(x64::lintFunction(Code.data(), Code.size()), "");
}

TEST(EncodingLint, RejectsJumpBeyondFunctionEnd) {
  std::vector<uint8_t> Code = {0xe9, 0x10, 0x00, 0x00, 0x00, 0xc3};
  EXPECT_NE(x64::lintFunction(Code.data(), Code.size())
                .find("not an instruction start"),
            std::string::npos);
}

TEST(EncodingLint, CallRel32RequiresRelocOrValidTarget) {
  std::vector<uint8_t> Code = {0xe8, 0x00, 0x00, 0x00, 0x00, 0xc3};
  // call .+0 targets offset 5: fine. call into nowhere without a reloc
  // must fail; with a covering reloc it is a linker-patched callee.
  Code[1] = 0x20;
  EXPECT_NE(x64::lintFunction(Code.data(), Code.size())
                .find("not an instruction start"),
            std::string::npos);
  EXPECT_EQ(x64::lintFunction(Code.data(), Code.size(), {{1, 4}}), "");
}

TEST(EncodingLint, RejectsRelocationAtOpcodeByte) {
  std::vector<uint8_t> Code = {0xe8, 0x00, 0x00, 0x00, 0x00, 0xc3};
  EXPECT_NE(x64::lintFunction(Code.data(), Code.size(), {{0, 4}})
                .find("does not lie inside one instruction's payload"),
            std::string::npos);
}

TEST(EncodingLint, RejectsRelocationStraddlingInstructions) {
  std::vector<uint8_t> Code = {0xe8, 0x00, 0x00, 0x00, 0x00, 0xc3};
  EXPECT_NE(x64::lintFunction(Code.data(), Code.size(), {{3, 4}})
                .find("does not lie inside one instruction's payload"),
            std::string::npos);
}

// --- QIR verifier additions ----------------------------------------------------

TEST(QirVerifier, RejectsAtomicAddValueTypeMismatch) {
  qir::Module M;
  qir::Function *F =
      M.createFunction("f", {qir::Type::I64}, qir::Type::I64);
  qir::Builder B(F);
  auto Slot = B.stackSlot(8);
  auto V32 = B.trunc(qir::Type::I32, F->paramValue(0));
  auto A = B.atomicAdd(Slot, V32);
  F->inst(A).Ty = qir::Type::I64; // now disagrees with the i32 operand
  B.ret(A);
  auto Err = qir::verify(M);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("atomicadd operand type mismatch"), std::string::npos);
}

TEST(QirVerifier, RejectsRotrOnI128) {
  qir::Module M;
  qir::Function *F =
      M.createFunction("f", {qir::Type::I64}, qir::Type::I64);
  qir::Builder B(F);
  auto Wide = B.sext(qir::Type::I128, F->paramValue(0));
  auto R = B.rotr(Wide, F->paramValue(0));
  B.ret(B.trunc(qir::Type::I64, R));
  auto Err = qir::verify(M);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("rotr is not defined for i128"), std::string::npos);
}

TEST(QirVerifier, RejectsCallExceedingAbiSlots) {
  qir::Module M;
  qir::SymbolId Big = M.declareRuntime(
      "rt_big", qir::Type::I64,
      {qir::Type::I128, qir::Type::I128, qir::Type::I128, qir::Type::I128},
      nullptr);
  qir::Function *F =
      M.createFunction("f", {qir::Type::I64}, qir::Type::I64);
  qir::Builder B(F);
  auto W = B.sext(qir::Type::I128, F->paramValue(0));
  auto R = B.call(Big, {W, W, W, W}); // 8 lanes > 6 ABI slots
  B.ret(R);
  auto Err = qir::verify(M);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("exceeds the 6 argument slots"), std::string::npos);
}

TEST(QirVerifier, RejectsCallWithVoidParameter) {
  qir::Module M;
  qir::SymbolId Sym =
      M.declareRuntime("rt_bad", qir::Type::I64, {qir::Type::I64}, nullptr);
  qir::Function *F =
      M.createFunction("f", {qir::Type::I64}, qir::Type::I64);
  qir::Builder B(F);
  auto R = B.call(Sym, {F->paramValue(0)});
  B.ret(R);
  // The builder refuses to construct this directly; corrupt the signature.
  M.symbol(Sym).ParamTypes[0] = qir::Type::Void;
  auto Err = qir::verify(M);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("call parameter of void type"), std::string::npos);
}

// --- Known-bits differential oracle ---------------------------------------------

TEST(KnownBitsOracle, FiresOnLyingAnalysis) {
  qir::Module M;
  qir::Function *F = M.createFunction(
      "f", {qir::Type::I64, qir::Type::I64}, qir::Type::I64);
  qir::Builder B(F);
  B.ret(B.add(F->paramValue(0), F->paramValue(1)));
  ASSERT_EQ(qir::verify(M), std::nullopt);

  auto IR = translateToMlvm(*F, D128Mode::SplitPairs);
  EvalOptions Opts;
  Opts.KnownZero = [](const Value *) { return ~0ull; }; // claim all-zero
  uint64_t Args[2] = {1, 2};
  EvalResult R = evalFunction(*IR, Args, 2, Opts);
  ASSERT_FALSE(R.Error.empty());
  EXPECT_EQ(R.Error.rfind("known-bits", 0), 0u) << R.Error;
}

TEST(KnownBitsOracle, HonestAnalysisHoldsOnRandomFunctions) {
  EvalOptions Opts;
  Opts.KnownZero = [](const Value *V) { return knownZeroBits(V, 0); };
  for (uint64_t Seed = 1; Seed != 16; ++Seed) {
    qir::Module M;
    Rng R(Seed);
    test::RandomFnBuilder Gen(M, R);
    Gen.build("rand");
    ASSERT_EQ(qir::verify(M), std::nullopt);
    auto IR = translateToMlvm(*M.functions()[0], D128Mode::SplitPairs);
    Rng In(Seed ^ 0x5eed);
    for (int K = 0; K != 8; ++K) {
      uint64_t Args[2] = {In.next(), In.next()};
      EvalResult Res = evalFunction(*IR, Args, 2, Opts);
      EXPECT_TRUE(Res.Error.empty())
          << "seed " << Seed << " args (" << Args[0] << "," << Args[1]
          << "): " << Res.Error;
    }
  }
}

TEST(EvalReference, MatchesInterpreterOnRandomFunctions) {
  for (uint64_t Seed = 1; Seed != 16; ++Seed) {
    qir::Module M;
    Rng R(Seed);
    test::RandomFnBuilder Gen(M, R);
    Gen.build("rand");
    ASSERT_EQ(qir::verify(M), std::nullopt);

    interp::InterpBackend Baseline;
    auto Ref = Baseline.compile(M, backend::CompileOptions());
    void *Entry = Ref->entry("rand");
    ASSERT_NE(Entry, nullptr);
    auto IR = translateToMlvm(*M.functions()[0], D128Mode::SplitPairs);

    Rng In(Seed ^ 0xd1ff);
    for (int K = 0; K != 8; ++K) {
      std::vector<uint64_t> Args = {In.next(), In.next()};
      test::CaseOutcome Expected = test::invokeEntry(Entry, Args);
      EvalResult Got = evalFunction(*IR, Args.data(), Args.size());
      ASSERT_TRUE(Got.Error.empty()) << "seed " << Seed << ": " << Got.Error;
      ASSERT_EQ(Expected.Trapped, Got.Trapped) << "seed " << Seed;
      if (!Expected.Trapped) {
        ASSERT_EQ(Expected.Lo, Got.Lo) << "seed " << Seed;
      }
    }
  }
}

// --- Pipeline integration: every tier under full verification --------------------

class VerifiedPipeline : public ::testing::TestWithParam<int> {};

TEST_P(VerifiedPipeline, RandomModulesPassAllLayers) {
  // Compiles random modules with every verification layer forced on; a
  // verifier false positive (or a real pipeline bug, like GlobalISel
  // placing phi-incoming constants after the block terminator) aborts.
  backend::CompileOptions Opts;
  Opts.Verify = VerifyOptions::all();

  std::unique_ptr<backend::Backend> BE;
  switch (GetParam()) {
  case 0: BE = std::make_unique<MlvmBackend>(MlvmOptions::cheap()); break;
  case 1: BE = std::make_unique<MlvmBackend>(MlvmOptions::opt()); break;
  case 2: {
    MlvmOptions MO;
    MO.Isel = IselKind::Dag;
    BE = std::make_unique<MlvmBackend>(MO);
    break;
  }
  case 3: {
    MlvmOptions MO;
    MO.Isel = IselKind::Global;
    BE = std::make_unique<MlvmBackend>(MO);
    break;
  }
  case 4: {
    MlvmOptions MO;
    MO.Optimize = true;
    MO.Isel = IselKind::Global;
    BE = std::make_unique<MlvmBackend>(MO);
    break;
  }
  case 5: BE = std::make_unique<direct::DirectBackend>(); break;
  default: BE = std::make_unique<craneline::CranelineBackend>(); break;
  }

  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    qir::Module M;
    Rng R(Seed * 7919);
    test::RandomFnBuilder Gen(M, R);
    for (int F = 0; F != 3; ++F)
      Gen.build("rand" + std::to_string(F));
    ASSERT_EQ(qir::verify(M), std::nullopt);
    auto Compiled = BE->compile(M, Opts);
    EXPECT_NE(Compiled->entry("rand0"), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, VerifiedPipeline, ::testing::Range(0, 7));

} // namespace
