//===- tests/X64Test.cpp - x86-64 encoder tests ----------------------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two layers of encoder validation: (1) differential encoding tests
/// against GNU as, byte for byte; (2) execution tests that run assembled
/// code in-process, including the SysV two-register conventions for
/// __int128 / 16-byte struct values that every back-end relies on.
///
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "support/Hash.h"
#include "x64/Asm.h"
#include "x64/CallbackThunk.h"
#include "x64/ExecMemory.h"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>

using namespace qcf;
using namespace qcf::x64;

namespace {

/// One differential case: QCF-emitted bytes vs. GNU as text.
struct AsmCase {
  std::string Text;
  std::vector<uint8_t> Bytes;
};

std::vector<AsmCase> &casesUnderTest() {
  static std::vector<AsmCase> Cases;
  return Cases;
}

void addCase(const std::string &Text, Assembler &A) {
  casesUnderTest().push_back({Text, A.code()});
  A.clear();
}

/// Assembles all recorded cases with GNU as (one marker-separated blob)
/// and compares byte-for-byte.
void runDifferentialCheck() {
  // 8-byte marker that our encoder never emits in these cases.
  static const uint8_t Marker[] = {0x0f, 0x1f, 0x84, 0x00,
                                   0xde, 0xad, 0xbe, 0xef};
  std::string AsmText = ".text\n";
  for (const AsmCase &C : casesUnderTest()) {
    AsmText += C.Text + "\n";
    AsmText += ".byte 0x0f,0x1f,0x84,0x00,0xde,0xad,0xbe,0xef\n";
  }

  char Dir[] = "/tmp/qcfasmXXXXXX";
  ASSERT_NE(mkdtemp(Dir), nullptr);
  std::string SPath = std::string(Dir) + "/t.s";
  std::string OPath = std::string(Dir) + "/t.o";
  std::string BPath = std::string(Dir) + "/t.bin";
  {
    std::ofstream Out(SPath);
    Out << AsmText;
  }
  std::string Cmd = "as --64 -o " + OPath + " " + SPath + " 2>/dev/null";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << "GNU as rejected:\n" << AsmText;
  Cmd = "objcopy -O binary --only-section=.text " + OPath + " " + BPath;
  ASSERT_EQ(std::system(Cmd.c_str()), 0);

  std::ifstream In(BPath, std::ios::binary);
  std::vector<uint8_t> Blob((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  std::string Cleanup = std::string("rm -rf ") + Dir;
  (void)std::system(Cleanup.c_str());

  // Split on the marker.
  std::vector<std::vector<uint8_t>> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I + sizeof(Marker) <= Blob.size(); ++I) {
    if (std::memcmp(Blob.data() + I, Marker, sizeof(Marker)) == 0) {
      Pieces.emplace_back(Blob.begin() + Start, Blob.begin() + I);
      I += sizeof(Marker) - 1;
      Start = I + 1;
    }
  }
  ASSERT_EQ(Pieces.size(), casesUnderTest().size());

  for (size_t I = 0; I != Pieces.size(); ++I) {
    const AsmCase &C = casesUnderTest()[I];
    if (C.Bytes != Pieces[I]) {
      std::string Ours, Gnu;
      char Hex[8];
      for (uint8_t B : C.Bytes) {
        std::snprintf(Hex, sizeof(Hex), "%02x ", B);
        Ours += Hex;
      }
      for (uint8_t B : Pieces[I]) {
        std::snprintf(Hex, sizeof(Hex), "%02x ", B);
        Gnu += Hex;
      }
      ADD_FAILURE() << "encoding mismatch for `" << C.Text << "`\n  qcf: "
                    << Ours << "\n  gas: " << Gnu;
    }
  }
  casesUnderTest().clear();
}

} // namespace

TEST(X64Encoder, DifferentialAgainstGnuAs) {
  Assembler A;

  A.movRR(Width::W64, Reg::RAX, Reg::RBX);
  addCase("mov rax, rbx", A);
  A.movRR(Width::W64, Reg::R15, Reg::RSP);
  addCase("mov r15, rsp", A);
  A.movRR(Width::W32, Reg::RCX, Reg::R9);
  addCase("mov ecx, r9d", A);
  A.movRR(Width::W16, Reg::RDX, Reg::RSI);
  addCase("mov dx, si", A);
  A.movRR(Width::W8, Reg::RAX, Reg::RSI);
  addCase("mov al, sil", A);

  A.movRI(Reg::RAX, 0x1122334455667788ull);
  addCase("movabs rax, 0x1122334455667788", A);
  A.movRI(Reg::R11, 0x7f);
  addCase("mov r11d, 0x7f", A);
  A.movRI(Reg::RDX, static_cast<uint64_t>(-5));
  addCase("mov rdx, -5", A);
  A.movRI32(Reg::RBP, 0xdeadbeef);
  addCase("mov ebp, 0xdeadbeef", A);

  A.movRM(Width::W64, Reg::RAX, Mem::base(Reg::RBX, 16));
  addCase("mov rax, [rbx+16]", A);
  A.movRM(Width::W64, Reg::RAX, Mem::base(Reg::RSP, 8));
  addCase("mov rax, [rsp+8]", A);
  A.movRM(Width::W64, Reg::RCX, Mem::base(Reg::RBP));
  addCase("mov rcx, [rbp]", A);
  A.movRM(Width::W64, Reg::RCX, Mem::base(Reg::R13));
  addCase("mov rcx, [r13]", A);
  A.movRM(Width::W64, Reg::RCX, Mem::base(Reg::R12, -200));
  addCase("mov rcx, [r12-200]", A);
  A.movRM(Width::W32, Reg::RSI, Mem::baseIndex(Reg::RDI, Reg::RDX, 4, 12));
  addCase("mov esi, [rdi+rdx*4+12]", A);
  A.movRM(Width::W8, Reg::RBX, Mem::baseIndex(Reg::R8, Reg::R9, 1));
  addCase("mov bl, [r8+r9]", A);

  A.movMR(Width::W64, Mem::base(Reg::RDI, 24), Reg::RSI);
  addCase("mov [rdi+24], rsi", A);
  A.movMR(Width::W16, Mem::base(Reg::RAX), Reg::RCX);
  addCase("mov [rax], cx", A);
  A.movMR(Width::W8, Mem::base(Reg::RBX, 1), Reg::RDI);
  addCase("mov [rbx+1], dil", A);
  A.movMI32(Width::W64, Mem::base(Reg::RSP, 32), 0x1234);
  addCase("mov qword ptr [rsp+32], 0x1234", A);
  A.movMI32(Width::W32, Mem::base(Reg::RBP, -4), 77);
  addCase("mov dword ptr [rbp-4], 77", A);
  A.movMI32(Width::W8, Mem::base(Reg::RCX), 0xab);
  addCase("mov byte ptr [rcx], 0xab", A);

  A.movzxRM(Width::W8, Reg::RAX, Mem::base(Reg::RSI, 3));
  addCase("movzx rax, byte ptr [rsi+3]", A);
  A.movzxRM(Width::W16, Reg::R10, Mem::base(Reg::RDI));
  addCase("movzx r10, word ptr [rdi]", A);
  A.movsxRM(Width::W8, Reg::RDX, Mem::base(Reg::RBX));
  addCase("movsx rdx, byte ptr [rbx]", A);
  A.movsxRM(Width::W32, Reg::RCX, Mem::base(Reg::RAX, 4));
  addCase("movsxd rcx, dword ptr [rax+4]", A);
  A.movzxRR(Width::W8, Reg::RAX, Reg::RBP);
  addCase("movzx rax, bpl", A);
  A.movsxRR(Width::W16, Reg::R9, Reg::RDX);
  addCase("movsx r9, dx", A);
  A.movsxRR(Width::W32, Reg::RAX, Reg::RBX);
  addCase("movsxd rax, ebx", A);

  A.lea(Reg::RAX, Mem::baseIndex(Reg::RBX, Reg::RCX, 8, -7));
  addCase("lea rax, [rbx+rcx*8-7]", A);

  A.aluRR(Assembler::Alu::Add, Width::W64, Reg::RAX, Reg::RBX);
  addCase("add rax, rbx", A);
  A.aluRR(Assembler::Alu::Sub, Width::W32, Reg::R14, Reg::RDI);
  addCase("sub r14d, edi", A);
  A.aluRR(Assembler::Alu::And, Width::W64, Reg::RSI, Reg::R15);
  addCase("and rsi, r15", A);
  A.aluRR(Assembler::Alu::Xor, Width::W8, Reg::RBX, Reg::RBP);
  addCase("xor bl, bpl", A);
  A.aluRR(Assembler::Alu::Adc, Width::W64, Reg::RDX, Reg::RCX);
  addCase("adc rdx, rcx", A);
  A.aluRR(Assembler::Alu::Sbb, Width::W64, Reg::RDX, Reg::RCX);
  addCase("sbb rdx, rcx", A);
  A.aluRR(Assembler::Alu::Cmp, Width::W64, Reg::RAX, Reg::R8);
  addCase("cmp rax, r8", A);
  A.aluRI(Assembler::Alu::Add, Width::W64, Reg::RSP, -16);
  addCase("add rsp, -16", A);
  A.aluRI(Assembler::Alu::Sub, Width::W64, Reg::RSP, 1000);
  addCase("sub rsp, 1000", A);
  A.aluRI(Assembler::Alu::Cmp, Width::W32, Reg::R9, 500);
  addCase("cmp r9d, 500", A);
  A.aluRI(Assembler::Alu::And, Width::W8, Reg::RBX, 0x0f);
  addCase("and bl, 0x0f", A);
  A.aluRM(Assembler::Alu::Add, Width::W64, Reg::RAX, Mem::base(Reg::RDI, 8));
  addCase("add rax, [rdi+8]", A);

  A.testRR(Width::W64, Reg::RAX, Reg::RAX);
  addCase("test rax, rax", A);
  A.testRI(Width::W32, Reg::RDX, 1);
  addCase("test edx, 1", A);
  A.negR(Width::W64, Reg::RCX);
  addCase("neg rcx", A);
  A.notR(Width::W32, Reg::R8);
  addCase("not r8d", A);

  A.imulRR(Width::W64, Reg::RAX, Reg::RBX);
  addCase("imul rax, rbx", A);
  A.imulRRI(Width::W64, Reg::RCX, Reg::RDX, 100);
  addCase("imul rcx, rdx, 100", A);
  A.imulRRI(Width::W32, Reg::RAX, Reg::RAX, 100000);
  addCase("imul eax, eax, 100000", A);
  A.mulR(Width::W64, Reg::RSI);
  addCase("mul rsi", A);
  A.imulR(Width::W64, Reg::R11);
  addCase("imul r11", A);
  A.divR(Width::W64, Reg::RBX);
  addCase("div rbx", A);
  A.idivR(Width::W32, Reg::RCX);
  addCase("idiv ecx", A);
  A.cqo();
  addCase("cqo", A);
  A.cdq();
  addCase("cdq", A);

  A.shiftRC(Assembler::Shift::Shl, Width::W64, Reg::RAX);
  addCase("shl rax, cl", A);
  A.shiftRC(Assembler::Shift::Sar, Width::W32, Reg::R10);
  addCase("sar r10d, cl", A);
  A.shiftRI(Assembler::Shift::Shr, Width::W64, Reg::RDX, 5);
  addCase("shr rdx, 5", A);
  A.shiftRI(Assembler::Shift::Ror, Width::W64, Reg::RSI, 32);
  addCase("ror rsi, 32", A);
  A.shiftRI(Assembler::Shift::Rol, Width::W64, Reg::R9, 3);
  addCase("rol r9, 3", A);

  A.crc32RR(Reg::RAX, Reg::RDX);
  addCase("crc32 rax, rdx", A);
  A.crc32RR(Reg::R9, Reg::R10);
  addCase("crc32 r9, r10", A);

  A.setcc(Cond::E, Reg::RAX);
  addCase("sete al", A);
  A.setcc(Cond::L, Reg::RSI);
  addCase("setl sil", A);
  A.setcc(Cond::A, Reg::R12);
  addCase("seta r12b", A);
  A.cmovcc(Cond::NE, Width::W64, Reg::RAX, Reg::RBX);
  addCase("cmovne rax, rbx", A);

  A.jmpReg(Reg::RAX);
  addCase("jmp rax", A);
  A.callReg(Reg::R10);
  addCase("call r10", A);
  A.ret();
  addCase("ret", A);
  A.ud2();
  addCase("ud2", A);
  A.pushR(Reg::RBP);
  addCase("push rbp", A);
  A.pushR(Reg::R15);
  addCase("push r15", A);
  A.popR(Reg::RBX);
  addCase("pop rbx", A);
  A.popR(Reg::R12);
  addCase("pop r12", A);

  A.lockXaddMR(Width::W64, Mem::base(Reg::RDI), Reg::RAX);
  addCase("lock xadd [rdi], rax", A);
  A.lockXaddMR(Width::W32, Mem::base(Reg::R8, 4), Reg::R9);
  addCase("lock xadd [r8+4], r9d", A);

  A.movsdXM(Xmm::XMM0, Mem::base(Reg::RAX, 8));
  addCase("movsd xmm0, [rax+8]", A);
  A.movsdMX(Mem::base(Reg::RSP, 16), Xmm::XMM7);
  addCase("movsd [rsp+16], xmm7", A);
  A.movsdXX(Xmm::XMM1, Xmm::XMM9);
  addCase("movsd xmm1, xmm9", A);
  A.movqXR(Xmm::XMM2, Reg::RDI);
  addCase("movq xmm2, rdi", A);
  A.movqRX(Reg::RAX, Xmm::XMM3);
  addCase("movq rax, xmm3", A);
  A.addsd(Xmm::XMM0, Xmm::XMM1);
  addCase("addsd xmm0, xmm1", A);
  A.subsd(Xmm::XMM4, Xmm::XMM12);
  addCase("subsd xmm4, xmm12", A);
  A.mulsd(Xmm::XMM5, Xmm::XMM6);
  addCase("mulsd xmm5, xmm6", A);
  A.divsd(Xmm::XMM0, Xmm::XMM15);
  addCase("divsd xmm0, xmm15", A);
  A.ucomisd(Xmm::XMM1, Xmm::XMM2);
  addCase("ucomisd xmm1, xmm2", A);
  A.cvtsi2sd(Xmm::XMM0, Reg::RCX);
  addCase("cvtsi2sd xmm0, rcx", A);
  A.cvttsd2si(Reg::RDX, Xmm::XMM8);
  addCase("cvttsd2si rdx, xmm8", A);
  A.xorps(Xmm::XMM0, Xmm::XMM0);
  addCase("xorps xmm0, xmm0", A);

  // Emit ".intel_syntax noprefix" via a wrapper: GNU as needs the directive.
  for (AsmCase &C : casesUnderTest())
    C.Text = ".intel_syntax noprefix\n" + C.Text;
  // (The directive is idempotent per line group.)
  runDifferentialCheck();
}

// --- Execution tests ---------------------------------------------------------

namespace {

/// Copies assembled code into executable memory and returns the entry.
template <typename FnT> FnT makeCallable(Assembler &A, ExecMemory &Mem) {
  A.finalize();
  Mem.allocate(A.size());
  std::memcpy(Mem.base(), A.code().data(), A.size());
  Mem.makeExecutable();
  return reinterpret_cast<FnT>(Mem.base());
}

} // namespace

TEST(X64Exec, AddFunction) {
  Assembler A;
  A.movRR(Width::W64, Reg::RAX, Reg::RDI);
  A.aluRR(Assembler::Alu::Add, Width::W64, Reg::RAX, Reg::RSI);
  A.ret();
  ExecMemory Mem;
  auto *Fn = makeCallable<int64_t (*)(int64_t, int64_t)>(A, Mem);
  EXPECT_EQ(Fn(2, 40), 42);
  EXPECT_EQ(Fn(-7, 7), 0);
}

TEST(X64Exec, LoopWithLabels) {
  // Sum 0..n-1.
  Assembler A;
  Label Head = A.newLabel(), Done = A.newLabel();
  A.movRI32(Reg::RAX, 0);
  A.movRI32(Reg::RCX, 0);
  A.bind(Head);
  A.aluRR(Assembler::Alu::Cmp, Width::W64, Reg::RCX, Reg::RDI);
  A.jcc(Cond::GE, Done);
  A.aluRR(Assembler::Alu::Add, Width::W64, Reg::RAX, Reg::RCX);
  A.aluRI(Assembler::Alu::Add, Width::W64, Reg::RCX, 1);
  A.jmp(Head);
  A.bind(Done);
  A.ret();
  ExecMemory Mem;
  auto *Fn = makeCallable<int64_t (*)(int64_t)>(A, Mem);
  EXPECT_EQ(Fn(10), 45);
  EXPECT_EQ(Fn(0), 0);
  EXPECT_EQ(Fn(1000), 499500);
}

TEST(X64Exec, Crc32MatchesIntrinsic) {
  Assembler A;
  A.movRR(Width::W64, Reg::RAX, Reg::RDI);
  A.crc32RR(Reg::RAX, Reg::RSI);
  A.ret();
  ExecMemory Mem;
  auto *Fn = makeCallable<uint64_t (*)(uint64_t, uint64_t)>(A, Mem);
  EXPECT_EQ(Fn(0, 0x1122334455667788ull),
            crc32u64(0, 0x1122334455667788ull));
  EXPECT_EQ(Fn(0xf45f077febc43d1bull, 42), crc32u64(0xf45f077febc43d1bull, 42));
}

extern "C" int64_t qcfTestCallTarget(int64_t A, int64_t B) { return A * B + 1; }

TEST(X64Exec, CallHostFunctionViaRegister) {
  Assembler A;
  A.pushR(Reg::RAX); // align stack to 16 at the call
  A.movRI(Reg::R10, reinterpret_cast<uint64_t>(&qcfTestCallTarget));
  A.callReg(Reg::R10);
  A.popR(Reg::RCX);
  A.ret();
  ExecMemory Mem;
  auto *Fn = makeCallable<int64_t (*)(int64_t, int64_t)>(A, Mem);
  EXPECT_EQ(Fn(6, 7), 43);
}

extern "C" __int128 qcfTestI128Target(__int128 A, __int128 B) { return A + B; }

TEST(X64Exec, Int128TwoRegisterAbi) {
  // Verify the lane convention: (lo1=rdi, hi1=rsi, lo2=rdx, hi2=rcx) and
  // the result in rax (lo) : rdx (hi). This is the assumption all QCF
  // back-ends make when expanding i128 call arguments into slots.
  Assembler A;
  A.pushR(Reg::RAX);
  A.movRI(Reg::R10, reinterpret_cast<uint64_t>(&qcfTestI128Target));
  A.callReg(Reg::R10);
  A.popR(Reg::RCX);
  A.ret();
  ExecMemory Mem;
  struct Pair {
    uint64_t Lo, Hi;
  };
  auto *Fn =
      makeCallable<Pair (*)(uint64_t, uint64_t, uint64_t, uint64_t)>(A, Mem);
  Pair R = Fn(/*lo1*/ ~0ull, /*hi1*/ 1, /*lo2*/ 2, /*hi2*/ 3);
  // (2^64 + 2^64-1) + (3*2^64 + 2) = 5*2^64 + 1
  EXPECT_EQ(R.Lo, 1u);
  EXPECT_EQ(R.Hi, 5u);
}

extern "C" qcf::rt::StringVal qcfTestStrId(qcf::rt::StringVal S) { return S; }

TEST(X64Exec, StringValTwoRegisterAbi) {
  // StringVal by value: lanes in rdi:rsi, returned in rax:rdx.
  Assembler A;
  A.pushR(Reg::RAX);
  A.movRI(Reg::R10, reinterpret_cast<uint64_t>(&qcfTestStrId));
  A.callReg(Reg::R10);
  A.popR(Reg::RCX);
  A.ret();
  ExecMemory Mem;
  struct Pair {
    uint64_t Lo, Hi;
  };
  auto *Fn = makeCallable<Pair (*)(uint64_t, uint64_t)>(A, Mem);
  rt::StringVal S = rt::StringVal::makeRef("hello world!", 12);
  Pair R = Fn(S.lo(), S.hi());
  rt::StringVal Back = rt::StringVal::fromLanes(R.Lo, R.Hi);
  EXPECT_EQ(Back.str(), "hello world!");
}

TEST(X64Exec, FloatArithmetic) {
  // double f(double a, double b) { return a * b - a; }
  Assembler A;
  A.movsdXX(Xmm::XMM2, Xmm::XMM0);
  A.mulsd(Xmm::XMM2, Xmm::XMM1);
  A.subsd(Xmm::XMM2, Xmm::XMM0);
  A.movsdXX(Xmm::XMM0, Xmm::XMM2);
  A.ret();
  ExecMemory Mem;
  auto *Fn = makeCallable<double (*)(double, double)>(A, Mem);
  EXPECT_DOUBLE_EQ(Fn(3.0, 5.0), 12.0);
}

TEST(X64Exec, AtomicAddReturnsOldValue) {
  Assembler A;
  A.movRR(Width::W64, Reg::RAX, Reg::RSI);
  A.lockXaddMR(Width::W64, Mem::base(Reg::RDI), Reg::RAX);
  A.ret();
  ExecMemory Mem;
  auto *Fn = makeCallable<int64_t (*)(int64_t *, int64_t)>(A, Mem);
  int64_t Cell = 100;
  EXPECT_EQ(Fn(&Cell, 5), 100);
  EXPECT_EQ(Cell, 105);
}

TEST(X64Thunk, BindsContext) {
  ThunkAllocator Thunks;
  int Ctx = 1234;
  auto Handler = [](void *C, uint64_t A, uint64_t B, uint64_t, uint64_t,
                    uint64_t) -> uint64_t {
    return *static_cast<int *>(C) + A * 10 + B;
  };
  void *Thunk = Thunks.createThunk(Handler, &Ctx);
  Thunks.finalize();
  auto *Fn = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(Thunk);
  EXPECT_EQ(Fn(5, 6), 1234u + 56u);
}

TEST(X64Thunk, ManyThunksSpanPages) {
  ThunkAllocator Thunks;
  std::vector<std::pair<void *, uint64_t>> All;
  static uint64_t Ctxs[200];
  auto Handler = [](void *C, uint64_t, uint64_t, uint64_t, uint64_t,
                    uint64_t) -> uint64_t { return *static_cast<uint64_t *>(C); };
  for (uint64_t I = 0; I != 200; ++I) {
    Ctxs[I] = I * 3;
    All.push_back({Thunks.createThunk(Handler, &Ctxs[I]), I * 3});
  }
  Thunks.finalize();
  for (auto &[Thunk, Expected] : All) {
    auto *Fn = reinterpret_cast<uint64_t (*)()>(Thunk);
    EXPECT_EQ(Fn(), Expected);
  }
}

TEST(X64ExecMemory, MoveSemantics) {
  ExecMemory A(100);
  uint8_t *Base = A.base();
  EXPECT_NE(Base, nullptr);
  ExecMemory B = std::move(A);
  EXPECT_EQ(B.base(), Base);
  EXPECT_EQ(A.base(), nullptr);
}

TEST(X64Encoder, LabelFixupsInBothDirections) {
  Assembler A;
  Label Fwd = A.newLabel(), Back = A.newLabel();
  A.bind(Back);
  A.nop();
  A.jmp(Fwd);
  A.jcc(Cond::E, Back);
  A.bind(Fwd);
  A.ret();
  A.finalize();
  // jmp rel32 at offset 1..5; target = offset 11 (after jcc) => rel = 11-6=5.
  EXPECT_EQ(A.code()[1], 0xe9);
  int32_t Rel;
  std::memcpy(&Rel, A.code().data() + 2, 4);
  EXPECT_EQ(Rel, 6); // jcc is 6 bytes; target right after it.
}

TEST(X64Encoder, InvertCond) {
  EXPECT_EQ(invert(Cond::E), Cond::NE);
  EXPECT_EQ(invert(Cond::L), Cond::GE);
  EXPECT_EQ(invert(Cond::A), Cond::BE);
  EXPECT_EQ(invert(invert(Cond::S)), Cond::S);
}
