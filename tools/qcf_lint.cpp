//===- tools/qcf_lint.cpp - Machine-level verification driver --------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full verification stack (DESIGN.md "Verification layers") over
/// QIR modules — parsed from .qir files or randomly generated — and exits
/// nonzero on the first failure:
///
///   qcf_lint query.qir other.qir      # lint parsed modules
///   qcf_lint --random 200 [--seed S]  # lint 200 random modules
///
/// Each module is IR-verified, then compiled by every JIT back-end with
/// all verification layers forced on: the mlvm back-end (all three
/// instruction selectors, cheap and optimized) verifies its MIR after
/// every machine pass and lints the emitted object's text, DirectEmit and
/// craneline lint their emitted bytes, and the known-bits differential
/// oracle cross-checks the DAG-combine analysis against the MLVM-IR
/// reference evaluator on concrete inputs.
///
//===----------------------------------------------------------------------===//

#include "craneline/Craneline.h"
#include "direct/DirectEmit.h"
#include "mlvm/Eval.h"
#include "mlvm/KnownBits.h"
#include "mlvm/Mlvm.h"
#include "mlvm/Translate.h"
#include "qir/Parse.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include "support/Rng.h"
#include "tests/RandomQir.h"
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace qcf;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qcf_lint [--random N] [--seed S] [file.qir ...]\n"
               "\n"
               "Verifies QIR modules through every back-end with all\n"
               "verification layers enabled (QCF_VERIFY=ir,mir,mc\n"
               "equivalent), plus the known-bits differential oracle.\n");
  return 2;
}

/// All back-end configurations under verification.
std::vector<std::unique_ptr<backend::Backend>> makeBackends() {
  std::vector<std::unique_ptr<backend::Backend>> BEs;
  for (bool Optimize : {false, true})
    for (mlvm::IselKind Kind :
         {mlvm::IselKind::Fast, mlvm::IselKind::Dag, mlvm::IselKind::Global}) {
      mlvm::MlvmOptions MO;
      MO.Optimize = Optimize;
      MO.Isel = Kind;
      BEs.push_back(std::make_unique<mlvm::MlvmBackend>(MO));
    }
  BEs.push_back(std::make_unique<direct::DirectBackend>());
  BEs.push_back(std::make_unique<craneline::CranelineBackend>());
  return BEs;
}

/// Cross-checks the known-bits analysis against the MLVM-IR reference
/// evaluator on \p Rounds random inputs per function. Returns false (after
/// printing a diagnostic) if a claimed-zero bit was observed set.
bool runKnownBitsOracle(const qir::Module &M, Rng &R, unsigned Rounds) {
  mlvm::EvalOptions Opts;
  Opts.KnownZero = [](const mlvm::Value *V) {
    return mlvm::knownZeroBits(V, 0);
  };
  for (const auto &F : M.functions()) {
    // Pointer parameters would need a valid buffer; such functions are
    // exercised by the back-end differential tests instead.
    bool HasPtr = false;
    size_t Lanes = 0;
    for (qir::Type Ty : F->paramTypes()) {
      HasPtr |= Ty == qir::Type::Ptr;
      Lanes += qir::isTwoLane(Ty) ? 2 : 1;
    }
    if (HasPtr)
      continue;
    std::unique_ptr<mlvm::MFunction> IR =
        mlvm::translateToMlvm(*F, mlvm::D128Mode::SplitPairs);
    for (unsigned K = 0; K != Rounds; ++K) {
      std::vector<uint64_t> Args(Lanes ? Lanes : 1);
      for (uint64_t &A : Args)
        A = K == 0 ? 0 : R.next();
      mlvm::EvalResult Res =
          mlvm::evalFunction(*IR, Args.data(), Lanes, Opts);
      // Traps and fuel exhaustion are fine; only oracle violations count.
      if (!Res.Error.empty() && Res.Error.rfind("known-bits", 0) == 0) {
        std::fprintf(stderr, "qcf_lint: %s: %s\n", F->name().c_str(),
                     Res.Error.c_str());
        return false;
      }
    }
  }
  return true;
}

/// Runs the whole stack over one module. MIR/MC verification failures
/// abort the process with a diagnostic (nonzero exit); IR and oracle
/// failures return false.
bool lintModule(const qir::Module &M, const char *Label, Rng &OracleRng,
                std::vector<std::unique_ptr<backend::Backend>> &BEs) {
  if (auto Err = qir::verify(M)) {
    std::fprintf(stderr, "qcf_lint: %s: IR verification failed: %s\n", Label,
                 Err->c_str());
    return false;
  }
  backend::CompileOptions Opts;
  Opts.Verify = VerifyOptions::all();
  for (auto &BE : BEs)
    BE->compile(M, Opts);
  return runKnownBitsOracle(M, OracleRng, 4);
}

} // namespace

int main(int argc, char **argv) {
  unsigned RandomModules = 0;
  uint64_t Seed = 1;
  std::vector<std::string> Files;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--random" && I + 1 != argc)
      RandomModules = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 0));
    else if (Arg == "--seed" && I + 1 != argc)
      Seed = std::strtoull(argv[++I], nullptr, 0);
    else if (Arg == "--help" || Arg == "-h" || Arg[0] == '-')
      return usage();
    else
      Files.push_back(Arg);
  }
  if (!RandomModules && Files.empty())
    return usage();

  auto BEs = makeBackends();
  Rng OracleRng(Seed ^ 0x6c696e74); // "lint"

  for (const std::string &Path : Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "qcf_lint: cannot open %s\n", Path.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string ParseErr;
    std::unique_ptr<qir::Module> M =
        qir::parseModule(Buf.str(), &ParseErr, rt::runtimeSymbolAddress);
    if (!M) {
      std::fprintf(stderr, "qcf_lint: %s: %s\n", Path.c_str(),
                   ParseErr.c_str());
      return 1;
    }
    if (!lintModule(*M, Path.c_str(), OracleRng, BEs))
      return 1;
    std::printf("%s: ok\n", Path.c_str());
  }

  for (unsigned I = 0; I != RandomModules; ++I) {
    qir::Module M;
    Rng R(Seed + I);
    test::RandomFnBuilder Gen(M, R);
    for (unsigned F = 0; F != 4; ++F)
      Gen.build("rand" + std::to_string(F));
    std::string Label = "random module " + std::to_string(I) + " (seed " +
                        std::to_string(Seed + I) + ")";
    if (!lintModule(M, Label.c_str(), OracleRng, BEs))
      return 1;
    if ((I + 1) % 50 == 0 || I + 1 == RandomModules)
      std::printf("verified %u/%u random modules\n", I + 1, RandomModules);
  }

  std::printf("qcf_lint: all checks passed\n");
  return 0;
}
