//===- tools/qcf_lint.cpp - Machine-level verification driver --------------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full verification stack (DESIGN.md "Verification layers") over
/// QIR modules — parsed from .qir files or randomly generated — and exits
/// nonzero if any check failed:
///
///   qcf_lint query.qir other.qir      # lint parsed modules
///   qcf_lint --random 200 [--seed S]  # lint 200 random modules
///   qcf_lint --random 200 --tv        # additionally translation-validate
///   qcf_lint --fail-fast ...          # stop at the first failing module
///
/// Each module is IR-verified, then compiled by every JIT back-end with
/// the in-pipeline verification layers forced on: the mlvm back-end (all
/// three instruction selectors, cheap and optimized) verifies its MIR
/// after every machine pass and lints the emitted object's text,
/// DirectEmit and craneline lint their emitted bytes, and the known-bits
/// differential oracle cross-checks the DAG-combine analysis against the
/// MLVM-IR reference evaluator on concrete inputs. With --tv the emitted
/// code of every back-end is also co-simulated against the QIR source
/// (src/tv); tv runs out-of-band here — not via CompileOptions — so a
/// mismatch is recorded in the summary table instead of aborting the
/// sweep. A per-backend, per-stage PASS/FAIL table is printed at exit.
///
//===----------------------------------------------------------------------===//

#include "craneline/Craneline.h"
#include "direct/DirectEmit.h"
#include "mlvm/Eval.h"
#include "mlvm/KnownBits.h"
#include "mlvm/Mlvm.h"
#include "mlvm/Translate.h"
#include "qir/Parse.h"
#include "qir/Verify.h"
#include "runtime/Runtime.h"
#include "stencil/Stencil.h"
#include "support/Rng.h"
#include "tests/RandomQir.h"
#include "tv/Tv.h"
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace qcf;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qcf_lint [--random N] [--seed S] [--tv] [--fail-fast]"
               " [file.qir ...]\n"
               "\n"
               "Verifies QIR modules through every back-end with all\n"
               "verification layers enabled (QCF_VERIFY=ir,mir,mc\n"
               "equivalent), plus the known-bits differential oracle.\n"
               "  --tv         also translation-validate the emitted code of\n"
               "               every back-end against the QIR source (src/tv)\n"
               "  --fail-fast  exit at the first failing module instead of\n"
               "               completing the sweep and summarizing\n");
  return 2;
}

/// One back-end under verification plus its accumulated per-stage tallies
/// for the summary table. The in-pipeline stages (mir, mc) abort the
/// process on failure, so their cells only ever show how many compiles
/// they survived; tv runs out-of-band and can accumulate failures.
struct Lane {
  std::unique_ptr<backend::Backend> BE;
  bool HasMir;
  uint64_t Compiles = 0;
  uint64_t TvPass = 0;
  uint64_t TvFail = 0;
};

/// All back-end configurations under verification.
std::vector<Lane> makeLanes() {
  std::vector<Lane> Lanes;
  for (bool Optimize : {false, true})
    for (mlvm::IselKind Kind :
         {mlvm::IselKind::Fast, mlvm::IselKind::Dag, mlvm::IselKind::Global}) {
      mlvm::MlvmOptions MO;
      MO.Optimize = Optimize;
      MO.Isel = Kind;
      Lanes.push_back({std::make_unique<mlvm::MlvmBackend>(MO), true});
    }
  Lanes.push_back({std::make_unique<direct::DirectBackend>(), false});
  Lanes.push_back({std::make_unique<stencil::StencilBackend>(), false});
  Lanes.push_back({std::make_unique<craneline::CranelineBackend>(), false});
  return Lanes;
}

/// Cross-checks the known-bits analysis against the MLVM-IR reference
/// evaluator on \p Rounds random inputs per function. Returns false (after
/// printing a diagnostic) if a claimed-zero bit was observed set.
bool runKnownBitsOracle(const qir::Module &M, Rng &R, unsigned Rounds) {
  mlvm::EvalOptions Opts;
  Opts.KnownZero = [](const mlvm::Value *V) {
    return mlvm::knownZeroBits(V, 0);
  };
  for (const auto &F : M.functions()) {
    // Pointer parameters would need a valid buffer; such functions are
    // exercised by the back-end differential tests instead.
    bool HasPtr = false;
    size_t Lanes = 0;
    for (qir::Type Ty : F->paramTypes()) {
      HasPtr |= Ty == qir::Type::Ptr;
      Lanes += qir::isTwoLane(Ty) ? 2 : 1;
    }
    if (HasPtr)
      continue;
    std::unique_ptr<mlvm::MFunction> IR =
        mlvm::translateToMlvm(*F, mlvm::D128Mode::SplitPairs);
    for (unsigned K = 0; K != Rounds; ++K) {
      std::vector<uint64_t> Args(Lanes ? Lanes : 1);
      for (uint64_t &A : Args)
        A = K == 0 ? 0 : R.next();
      mlvm::EvalResult Res =
          mlvm::evalFunction(*IR, Args.data(), Lanes, Opts);
      // Traps and fuel exhaustion are fine; only oracle violations count.
      if (!Res.Error.empty() && Res.Error.rfind("known-bits", 0) == 0) {
        std::fprintf(stderr, "qcf_lint: %s: %s\n", F->name().c_str(),
                     Res.Error.c_str());
        return false;
      }
    }
  }
  return true;
}

/// Runs the whole stack over one module. MIR/MC verification failures
/// abort the process with a diagnostic (nonzero exit); IR, tv, and oracle
/// failures return false so the sweep can continue (unless --fail-fast).
bool lintModule(const qir::Module &M, const char *Label, Rng &OracleRng,
                std::vector<Lane> &Lanes, bool Tv, bool &OracleOk) {
  if (auto Err = qir::verify(M)) {
    std::fprintf(stderr, "qcf_lint: %s: IR verification failed: %s\n", Label,
                 Err->c_str());
    return false;
  }
  bool Ok = true;
  backend::CompileOptions Opts;
  Opts.Verify = VerifyOptions::all(); // ir, mir, mc — tv runs out-of-band.
  for (Lane &L : Lanes) {
    std::unique_ptr<backend::CompiledModule> CM = L.BE->compile(M, Opts);
    ++L.Compiles;
    if (!Tv)
      continue;
    std::string Err =
        tv::validateModule(M, CM->tvFunctions(), tv::TvOptions::fromEnv());
    if (Err.empty()) {
      ++L.TvPass;
    } else {
      ++L.TvFail;
      Ok = false;
      std::fprintf(stderr, "qcf_lint: %s: %s [%s]\n%s", Label,
                   "translation validation failed", L.BE->name().c_str(),
                   Err.c_str());
    }
  }
  if (!runKnownBitsOracle(M, OracleRng, 4)) {
    OracleOk = false;
    Ok = false;
  }
  return Ok;
}

/// The per-backend, per-stage summary. "ok" means every compile survived
/// the stage (the in-pipeline stages abort the process otherwise); "-"
/// means the stage does not exist for that back-end or was not requested.
void printTable(const std::vector<Lane> &Lanes, bool Tv, bool OracleOk) {
  std::printf("\n%-18s %8s %5s %5s %5s %8s\n", "backend", "compiles", "ir",
              "mir", "mc", "tv");
  for (const Lane &L : Lanes) {
    char TvCell[24];
    if (!Tv)
      std::snprintf(TvCell, sizeof(TvCell), "-");
    else if (L.TvFail)
      std::snprintf(TvCell, sizeof(TvCell), "FAIL:%llu",
                    static_cast<unsigned long long>(L.TvFail));
    else
      std::snprintf(TvCell, sizeof(TvCell), "ok");
    std::printf("%-18s %8llu %5s %5s %5s %8s\n", L.BE->name().c_str(),
                static_cast<unsigned long long>(L.Compiles), "ok",
                L.HasMir ? "ok" : "-", "ok", TvCell);
  }
  std::printf("%-18s %8s %5s %5s %5s %8s\n", "known-bits oracle", "", "", "",
              "", OracleOk ? "ok" : "FAIL");
}

} // namespace

int main(int argc, char **argv) {
  unsigned RandomModules = 0;
  uint64_t Seed = 1;
  bool Tv = false;
  bool FailFast = false;
  std::vector<std::string> Files;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--random" && I + 1 != argc)
      RandomModules = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 0));
    else if (Arg == "--seed" && I + 1 != argc)
      Seed = std::strtoull(argv[++I], nullptr, 0);
    else if (Arg == "--tv")
      Tv = true;
    else if (Arg == "--fail-fast")
      FailFast = true;
    else if (Arg == "--help" || Arg == "-h" || Arg[0] == '-')
      return usage();
    else
      Files.push_back(Arg);
  }
  if (!RandomModules && Files.empty())
    return usage();

  auto Lanes = makeLanes();
  Rng OracleRng(Seed ^ 0x6c696e74); // "lint"
  unsigned Failures = 0;
  bool OracleOk = true;

  for (const std::string &Path : Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "qcf_lint: cannot open %s\n", Path.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string ParseErr;
    std::unique_ptr<qir::Module> M =
        qir::parseModule(Buf.str(), &ParseErr, rt::runtimeSymbolAddress);
    if (!M) {
      std::fprintf(stderr, "qcf_lint: %s: %s\n", Path.c_str(),
                   ParseErr.c_str());
      return 1;
    }
    if (!lintModule(*M, Path.c_str(), OracleRng, Lanes, Tv, OracleOk)) {
      ++Failures;
      if (FailFast)
        return 1;
    } else {
      std::printf("%s: ok\n", Path.c_str());
    }
  }

  for (unsigned I = 0; I != RandomModules; ++I) {
    qir::Module M;
    Rng R(Seed + I);
    test::RandomFnBuilder Gen(M, R);
    for (unsigned F = 0; F != 4; ++F)
      Gen.build("rand" + std::to_string(F));
    std::string Label = "random module " + std::to_string(I) + " (seed " +
                        std::to_string(Seed + I) + ")";
    if (!lintModule(M, Label.c_str(), OracleRng, Lanes, Tv, OracleOk)) {
      ++Failures;
      if (FailFast)
        return 1;
    }
    if ((I + 1) % 50 == 0 || I + 1 == RandomModules)
      std::printf("verified %u/%u random modules\n", I + 1, RandomModules);
  }

  printTable(Lanes, Tv, OracleOk);
  if (Failures) {
    std::fprintf(stderr, "qcf_lint: %u module(s) failed\n", Failures);
    return 1;
  }
  std::printf("qcf_lint: all checks passed\n");
  return 0;
}
