//===- tools/qcf_serve.cpp - Query-serving daemon --------------------------===//
//
// Part of the QCF project.
//
// A standalone serving daemon over serve::Server: a unix-domain socket
// speaking a line protocol, thread-per-connection, fronting the built-in
// TPC-H-like corpus. Run a fleet of these over one $QCF_CODE_CACHE and
// every process after the first serves warm code (DESIGN.md "Persistent
// code cache"; the restart-storm test drives exactly that shape).
//
//   ./qcf_serve [--sock PATH]      # default $QCF_SERVE_SOCK or ./qcf.sock
//
// Protocol (one request line, one response; STATS is multi-line and ends
// with a lone "."):
//
//   OPEN <tenant>                       -> OK <sid> | ERR <reason> [retry_ms]
//   EXEC <sid> <query> [deadline_ms]    -> OK rows=N digest=X ms=T
//                                        | ERR <reason> [retry_ms]
//   CLOSE <sid>                         -> OK | ERR <reason>
//   STATS                               -> serve.*/svc.*/cache.* text, "."
//   PING                                -> PONG
//   SHUTDOWN                            -> OK (daemon exits)
//
// Tuning comes from the QCF_SERVE_* environment (ServerConfig::fromEnv;
// knobs documented in README.md). Tenants come from QCF_SERVE_TENANTS:
// "name:max_sessions:max_compile_mb:max_queued[:bg],..." — unset
// registers one unlimited tenant named "default".
//
//===----------------------------------------------------------------------===//

#include "db/Codegen.h"
#include "db/Datagen.h"
#include "db/Queries.h"
#include "serve/Server.h"
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace qcf;

namespace {

std::atomic<bool> ShutdownFlag{false};
int ListenFdForSignal = -1;

void onSignal(int) {
  ShutdownFlag.store(true);
  // Unblock accept(); close is async-signal-safe.
  if (ListenFdForSignal >= 0)
    ::close(ListenFdForSignal);
}

/// "name:max_sessions:max_compile_mb:max_queued[:bg],..." -> quotas.
std::vector<std::pair<std::string, serve::TenantQuota>> parseTenants() {
  std::vector<std::pair<std::string, serve::TenantQuota>> Out;
  const char *Spec = std::getenv("QCF_SERVE_TENANTS");
  if (!Spec || !*Spec) {
    Out.emplace_back("default", serve::TenantQuota{});
    return Out;
  }
  std::string S = Spec;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t End = S.find(',', Pos);
    if (End == std::string::npos)
      End = S.size();
    std::string Item = S.substr(Pos, End - Pos);
    Pos = End + 1;
    std::vector<std::string> Fields;
    size_t FP = 0;
    while (FP <= Item.size()) {
      size_t FE = Item.find(':', FP);
      if (FE == std::string::npos)
        FE = Item.size();
      Fields.push_back(Item.substr(FP, FE - FP));
      FP = FE + 1;
    }
    if (Fields.empty() || Fields[0].empty())
      continue;
    serve::TenantQuota Q;
    if (Fields.size() > 1)
      Q.MaxSessions = std::strtoull(Fields[1].c_str(), nullptr, 10);
    if (Fields.size() > 2)
      Q.MaxCompileBytes =
          std::strtoull(Fields[2].c_str(), nullptr, 10) << 20;
    if (Fields.size() > 3)
      Q.MaxQueuedCompiles = std::strtoull(Fields[3].c_str(), nullptr, 10);
    if (Fields.size() > 4)
      Q.Background = Fields[4] == "bg";
    Out.emplace_back(Fields[0], Q);
  }
  return Out;
}

void sendAll(int Fd, const std::string &S) {
  size_t Off = 0;
  while (Off < S.size()) {
    ssize_t N = ::send(Fd, S.data() + Off, S.size() - Off, MSG_NOSIGNAL);
    if (N <= 0)
      return;
    Off += size_t(N);
  }
}

/// One connection: read request lines, dispatch, write responses.
void serveConnection(int Fd, serve::Server &Srv,
                     const std::map<std::string, const db::Query *> &Queries) {
  std::string Buf;
  char Chunk[4096];
  for (;;) {
    size_t NL;
    while ((NL = Buf.find('\n')) == std::string::npos) {
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0) {
        ::close(Fd);
        return;
      }
      Buf.append(Chunk, size_t(N));
    }
    std::string Line = Buf.substr(0, NL);
    Buf.erase(0, NL + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();

    std::vector<std::string> Tok;
    size_t P = 0;
    while (P < Line.size()) {
      size_t E = Line.find(' ', P);
      if (E == std::string::npos)
        E = Line.size();
      if (E > P)
        Tok.push_back(Line.substr(P, E - P));
      P = E + 1;
    }
    if (Tok.empty())
      continue;

    char Resp[256];
    if (Tok[0] == "PING") {
      sendAll(Fd, "PONG\n");
    } else if (Tok[0] == "STATS") {
      sendAll(Fd, Srv.statsText());
      sendAll(Fd, ".\n");
    } else if (Tok[0] == "SHUTDOWN") {
      sendAll(Fd, "OK\n");
      ShutdownFlag.store(true);
      if (ListenFdForSignal >= 0)
        ::shutdown(ListenFdForSignal, SHUT_RDWR);
      ::close(Fd);
      return;
    } else if (Tok[0] == "OPEN" && Tok.size() >= 2) {
      serve::OpenOutcome O = Srv.openSession(Tok[1]);
      if (O.Outcome == serve::Admit::Ok)
        std::snprintf(Resp, sizeof(Resp), "OK %llu\n",
                      static_cast<unsigned long long>(O.SessionId));
      else
        std::snprintf(Resp, sizeof(Resp), "ERR %s %llu\n",
                      serve::admitName(O.Outcome),
                      static_cast<unsigned long long>(O.RetryAfterNs /
                                                      1'000'000));
      sendAll(Fd, Resp);
    } else if (Tok[0] == "CLOSE" && Tok.size() >= 2) {
      serve::Admit A = Srv.closeSession(std::strtoull(Tok[1].c_str(),
                                                      nullptr, 10));
      if (A == serve::Admit::Ok)
        sendAll(Fd, "OK\n");
      else {
        std::snprintf(Resp, sizeof(Resp), "ERR %s\n", serve::admitName(A));
        sendAll(Fd, Resp);
      }
    } else if (Tok[0] == "EXEC" && Tok.size() >= 3) {
      uint64_t Sid = std::strtoull(Tok[1].c_str(), nullptr, 10);
      auto QIt = Queries.find(Tok[2]);
      if (QIt == Queries.end()) {
        sendAll(Fd, "ERR unknown-query\n");
        continue;
      }
      uint64_t DeadlineNs =
          Tok.size() > 3 ? std::strtoull(Tok[3].c_str(), nullptr, 10) *
                               1'000'000
                         : 0;
      rt::OutputBuffer Out;
      serve::QueryOutcome R = Srv.execute(Sid, *QIt->second, &Out, DeadlineNs);
      if (R.Ok)
        std::snprintf(Resp, sizeof(Resp),
                      "OK rows=%llu digest=%llx ms=%.3f\n",
                      static_cast<unsigned long long>(R.Rows),
                      static_cast<unsigned long long>(R.Digest),
                      double(R.TotalNs) / 1e6);
      else if (R.Trapped)
        std::snprintf(Resp, sizeof(Resp), "ERR trapped\n");
      else if (R.Cancelled)
        std::snprintf(Resp, sizeof(Resp), "ERR cancelled\n");
      else
        std::snprintf(Resp, sizeof(Resp), "ERR %s %llu\n",
                      serve::admitName(R.Outcome),
                      static_cast<unsigned long long>(R.RetryAfterNs /
                                                      1'000'000));
      sendAll(Fd, Resp);
    } else {
      sendAll(Fd, "ERR bad-request\n");
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  const char *Sock = std::getenv("QCF_SERVE_SOCK");
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--sock") && I + 1 < argc)
      Sock = argv[++I];
  std::string SockPath = Sock && *Sock ? Sock : "./qcf.sock";

  // The corpus the daemon serves: TPC-H-like schema and queries. Column
  // addresses are baked into generated code, so the catalog is built
  // once and outlives everything.
  static db::Catalog Cat;
  double Sf = 0.1;
  if (const char *E = std::getenv("QCF_SERVE_SF"))
    if (*E)
      Sf = std::strtod(E, nullptr);
  db::generateTpchLike(Cat, Sf);
  static std::vector<db::Query> QueryStore = db::tpchQueries();
  std::map<std::string, const db::Query *> Queries;
  for (const db::Query &Q : QueryStore)
    Queries.emplace(Q.Name, &Q);

  serve::ServerConfig Cfg = serve::ServerConfig::fromEnv();
  serve::Server Srv(Cfg, Cat);
  for (const auto &[Name, Quota] : parseTenants())
    Srv.registerTenant(Name, Quota);

  ::unlink(SockPath.c_str());
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SockPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", SockPath.c_str());
    return 1;
  }
  std::strncpy(Addr.sun_path, SockPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  ListenFdForSignal = ListenFd;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("qcf_serve: %s backend, %u compile workers, %u slots, "
              "listening on %s\n",
              Cfg.BackendName.c_str(), Cfg.CompileWorkers,
              Cfg.Admission.Slots, SockPath.c_str());
  std::fflush(stdout);

  std::vector<std::thread> Connections;
  while (!ShutdownFlag.load(std::memory_order_acquire)) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      break;
    Connections.emplace_back(
        [Fd, &Srv, &Queries] { serveConnection(Fd, Srv, Queries); });
  }
  for (std::thread &T : Connections)
    T.join();
  Srv.shutdown();
  ::unlink(SockPath.c_str());
  std::printf("qcf_serve: shut down cleanly\n");
  return 0;
}
