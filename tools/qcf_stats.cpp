//===- tools/qcf_stats.cpp - Observability dump tool -----------------------===//
//
// Part of the QCF project.
//
// Runs the benchmark query suite through a chosen back-end with the full
// observability context attached and dumps what the obs layer collected:
// the metrics registry (text or JSON) and, on request, a Perfetto-loadable
// Chrome trace of the whole run.
//
//   qcf_stats [--backend NAME] [--suite tpch|ds] [--sf N] [--async]
//             [--json] [--trace FILE]
//   qcf_stats --code-cache [DIR]
//   qcf_stats --serve [SOCK]
//
// Load the trace file at https://ui.perfetto.dev (or chrome://tracing) to
// see per-compile phase slices, cache/service events, and per-pipeline
// execution spans on their actual threads.
//
// The --code-cache mode instead inspects a persistent code-cache
// directory (DIR, or $QCF_CODE_CACHE when omitted): one line per blob
// with its validation status, key, config, and size, plus totals against
// the $QCF_CODE_CACHE_BYTES budget. Read-only — never unlinks anything.
//
// The --serve mode connects to a running qcf_serve daemon (SOCK, or
// $QCF_SERVE_SOCK when omitted), issues STATS, and prints the live
// serve.*/svc.*/cache.* registry text it returns.
//
//===----------------------------------------------------------------------===//

#include "backend/DiskCache.h"
#include "backend/Registry.h"
#include "db/Datagen.h"
#include "db/Executor.h"
#include "db/Queries.h"
#include "obs/Obs.h"
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace qcf;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--backend NAME] [--suite tpch|ds] [--sf N] "
               "[--async] [--json] [--trace FILE]\n"
               "       %s --code-cache [DIR]\n"
               "       %s --serve [SOCK]\n"
               "backends:",
               Argv0, Argv0, Argv0);
  for (const std::string &N : backend::allBackendNames())
    std::fprintf(stderr, " %s", N.c_str());
  std::fprintf(stderr, " Adaptive\n");
  return 1;
}

/// `--code-cache`: read-only inspection of a persistent cache directory.
int inspectCodeCache(const std::string &Dir) {
  std::vector<backend::DiskCodeCache::BlobInfo> Blobs =
      backend::DiskCodeCache::scan(Dir);
  std::printf("code cache %s: %zu blob(s)\n", Dir.c_str(), Blobs.size());
  uint64_t TotalBytes = 0, ValidCount = 0;
  for (const backend::DiskCodeCache::BlobInfo &B : Blobs) {
    TotalBytes += B.SizeBytes;
    char When[32] = "?";
    time_t T = static_cast<time_t>(B.MtimeSec);
    struct tm Tm;
    if (gmtime_r(&T, &Tm))
      std::strftime(When, sizeof(When), "%Y-%m-%d %H:%M:%S", &Tm);
    if (B.Valid) {
      ++ValidCount;
      std::printf("  %-44s %9llu B  v%u  key %016llx%016llx  payload %llu B  "
                  "%s  [%s]\n",
                  B.File.c_str(), static_cast<unsigned long long>(B.SizeBytes),
                  B.Version, static_cast<unsigned long long>(B.Key.Lo),
                  static_cast<unsigned long long>(B.Key.Hi),
                  static_cast<unsigned long long>(B.PayloadBytes), When,
                  B.Config.c_str());
    } else {
      std::printf("  %-44s %9llu B  INVALID (%s)  %s\n", B.File.c_str(),
                  static_cast<unsigned long long>(B.SizeBytes),
                  B.Error.c_str(), When);
    }
  }
  std::printf("total: %llu bytes in %llu valid / %zu blobs",
              static_cast<unsigned long long>(TotalBytes),
              static_cast<unsigned long long>(ValidCount), Blobs.size());
  if (const char *Budget = std::getenv("QCF_CODE_CACHE_BYTES"))
    std::printf(" (budget QCF_CODE_CACHE_BYTES=%s)", Budget);
  std::printf("\n");
  return 0;
}

/// `--serve`: ask a live qcf_serve daemon for its metrics registry. The
/// STATS reply is the registry text terminated by a lone "." line.
int queryServeDaemon(const std::string &SockPath) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SockPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", SockPath.c_str());
    ::close(Fd);
    return 1;
  }
  std::strncpy(Addr.sun_path, SockPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", SockPath.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return 1;
  }
  const char *Req = "STATS\n";
  if (::send(Fd, Req, std::strlen(Req), 0) < 0) {
    std::perror("send");
    ::close(Fd);
    return 1;
  }
  std::string Buf;
  char Chunk[4096];
  for (;;) {
    size_t NL;
    while ((NL = Buf.find('\n')) == std::string::npos) {
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0) {
        ::close(Fd);
        return 0;
      }
      Buf.append(Chunk, size_t(N));
    }
    std::string Line = Buf.substr(0, NL);
    Buf.erase(0, NL + 1);
    if (Line == ".") {
      ::close(Fd);
      return 0;
    }
    std::printf("%s\n", Line.c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string BackendName = "MLVM-opt";
  std::string SuiteName = "tpch";
  std::string TracePath;
  double Sf = 1.0;
  bool Json = false, Async = false;

  for (int I = 1; I < argc; ++I) {
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (!std::strcmp(argv[I], "--backend")) {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      BackendName = V;
    } else if (!std::strcmp(argv[I], "--suite")) {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      SuiteName = V;
    } else if (!std::strcmp(argv[I], "--sf")) {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      Sf = std::atof(V);
    } else if (!std::strcmp(argv[I], "--trace")) {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      TracePath = V;
    } else if (!std::strcmp(argv[I], "--code-cache")) {
      std::string Dir;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        Dir = argv[++I];
      else if (const char *Env = std::getenv("QCF_CODE_CACHE"))
        Dir = Env;
      if (Dir.empty()) {
        std::fprintf(stderr,
                     "--code-cache needs DIR or $QCF_CODE_CACHE set\n");
        return 1;
      }
      return inspectCodeCache(Dir);
    } else if (!std::strcmp(argv[I], "--serve")) {
      std::string SockPath;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        SockPath = argv[++I];
      else if (const char *Env = std::getenv("QCF_SERVE_SOCK"))
        SockPath = Env;
      if (SockPath.empty()) {
        std::fprintf(stderr, "--serve needs SOCK or $QCF_SERVE_SOCK set\n");
        return 1;
      }
      return queryServeDaemon(SockPath);
    } else if (!std::strcmp(argv[I], "--json")) {
      Json = true;
    } else if (!std::strcmp(argv[I], "--async")) {
      Async = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::unique_ptr<backend::Backend> BE = backend::createBackend(BackendName);
  if (!BE) {
    std::fprintf(stderr, "unknown backend '%s'\n", BackendName.c_str());
    return usage(argv[0]);
  }

  db::Catalog Cat;
  std::vector<db::Query> Queries;
  if (SuiteName == "tpch") {
    db::generateTpchLike(Cat, Sf);
    Queries = db::tpchQueries();
  } else if (SuiteName == "ds") {
    db::generateTpcdsLike(Cat, Sf);
    Queries = db::tpcdsQueries();
  } else {
    return usage(argv[0]);
  }

  // One registry + one sink for the whole run; every compile phase and
  // every pipeline records into them through the ObsContext.
  obs::MetricsRegistry Reg;
  obs::TraceSink Sink;

  db::ExecOptions Opts;
  Opts.AsyncCompile = Async;
  Opts.Obs = obs::ObsContext(nullptr, &Reg, TracePath.empty() ? nullptr : &Sink);

  for (db::Query &Q : Queries) {
    db::CompiledPlan Plan = db::compileQuery(Q, Cat);
    rt::OutputBuffer Out;
    db::ExecResult R = db::executeQuery(Plan, *BE, Cat, &Out, Opts);
    if (R.Trapped) {
      std::fprintf(stderr, "query %s trapped\n", Q.Name.c_str());
      return 1;
    }
  }

  obs::MetricsSnapshot Snap = Reg.snapshot();
  if (Json)
    std::fputs(Snap.renderJson().c_str(), stdout);
  else
    std::fputs(Snap.renderText().c_str(), stdout);

  if (!TracePath.empty()) {
    if (!Sink.writeJsonFile(TracePath)) {
      std::fprintf(stderr, "cannot write %s\n", TracePath.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace events to %s (open in Perfetto)\n",
                 Sink.numEvents(), TracePath.c_str());
  }
  return 0;
}
