//===- tools/qcf_stencilgen.cpp - Stencil table generator/dumper ----------===//
//
// Part of the QCF project.
//
//===----------------------------------------------------------------------===//
//
// The build-time face of the stencil table: prints every fragment the
// copy-and-patch back-end concatenates at compile time — structural
// fragments and per-(opcode x type x variant) operation cores — as hex
// bytes with their patch records. The table itself is encoded once per
// process through x64::Assembler (see stencil/Stencils.cpp); this tool
// exists so the generated fragments can be inspected, diffed between
// revisions, and audited against the DirectEmit sequences they mirror.
//
//   qcf_stencilgen            # summary: counts and total bytes
//   qcf_stencilgen --dump     # every fragment, bytes + patch records
//
//===----------------------------------------------------------------------===//

#include "qir/Opcode.h"
#include "stencil/Stencils.h"
#include <cstdio>
#include <cstring>

using namespace qcf;
using namespace qcf::stencil;

namespace {

void printFragment(const char *Name, const Fragment &F) {
  std::printf("%-24s %3zu bytes ", Name, F.Bytes.size());
  for (uint8_t B : F.Bytes)
    std::printf("%02x", B);
  for (const Patch &P : F.Patches)
    std::printf("  [%s@%u]", patchKindName(P.K), P.Off);
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  bool Dump = false;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--dump")) {
      Dump = true;
    } else {
      std::fprintf(stderr, "usage: %s [--dump]\n", argv[0]);
      return 2;
    }
  }

  const StencilTable &T = StencilTable::get();

  const struct {
    const char *Name;
    const Fragment *F;
  } Structural[] = {
      {"prologue", &T.Prologue},   {"epilogue", &T.Epilogue},
      {"ud2", &T.Ud2},             {"jmp", &T.Jmp},
      {"test-jnz", &T.TestJnz},    {"call-r10", &T.CallR10},
      {"trap-ovf", &T.TrapStub[0]}, {"trap-div", &T.TrapStub[1]},
      {"ld-a", &T.LdA},            {"ld-a-hi", &T.LdAHi},
      {"ld-b", &T.LdB},            {"ld-b-hi", &T.LdBHi},
      {"ld-cond", &T.LdCond},      {"ld-tmp", &T.LdTmp},
      {"st-a", &T.StA},            {"st-a-hi", &T.StAHi},
      {"st-tmp", &T.StTmp},        {"ld-ax", &T.LdAX},
      {"ld-bx", &T.LdBX},          {"st-ax", &T.StAX},
      {"const-a", &T.ConstA},      {"const-a-hi", &T.ConstAHi},
      {"lea-slot-a", &T.LeaSlotA},
  };

  size_t StructBytes = 0;
  for (const auto &S : Structural)
    StructBytes += S.F->Bytes.size();
  for (unsigned I = 0; I != 6; ++I)
    StructBytes += T.LdArg[I].Bytes.size() + T.StParamGp[I].Bytes.size();
  for (unsigned I = 0; I != 8; ++I)
    StructBytes += T.StParamXmm[I].Bytes.size();

  size_t CoreBytes = 0, CorePatches = 0;
  for (const auto &[Key, F] : T.cores()) {
    CoreBytes += F.Bytes.size();
    CorePatches += F.Patches.size();
  }

  std::printf("stencil table: %zu operation cores (%zu bytes, %zu patch "
              "records), %zu structural fragments (%zu bytes)\n",
              T.cores().size(), CoreBytes, CorePatches,
              sizeof(Structural) / sizeof(Structural[0]) + 20, StructBytes);

  if (!Dump)
    return 0;

  std::printf("\n-- structural fragments --\n");
  for (const auto &S : Structural)
    printFragment(S.Name, *S.F);
  char Name[64];
  for (unsigned I = 0; I != 6; ++I) {
    std::snprintf(Name, sizeof(Name), "ld-arg%u", I);
    printFragment(Name, T.LdArg[I]);
  }
  for (unsigned I = 0; I != 6; ++I) {
    std::snprintf(Name, sizeof(Name), "st-param-gp%u", I);
    printFragment(Name, T.StParamGp[I]);
  }
  for (unsigned I = 0; I != 8; ++I) {
    std::snprintf(Name, sizeof(Name), "st-param-xmm%u", I);
    printFragment(Name, T.StParamXmm[I]);
  }

  std::printf("\n-- operation cores --\n");
  for (const auto &[Key, F] : T.cores()) {
    auto Op = static_cast<qir::Opcode>(Key >> 16);
    std::snprintf(Name, sizeof(Name), "%s/%u/%u", qir::opcodeName(Op),
                  (Key >> 8) & 0xff, Key & 0xff);
    printFragment(Name, F);
  }
  return 0;
}
