//===- tools/qcf_stress.cpp - Differential fuzzer (llvm-stress-alike) ------===//
//
// Part of the QCF project.
//
// Generates random QIR programs (structured control flow: loops,
// diamonds, traps, runtime calls) and checks that every JIT back-end
// produces interpreter-identical results and trap behaviour. The same
// generator backs the seeded property tests; this tool runs it open-ended
// for soak testing:
//
//   ./qcf_stress                 # 1000 seeds, all back-ends
//   ./qcf_stress 100000          # more seeds
//   ./qcf_stress 5000 Craneline  # one back-end
//
// On a mismatch it prints the seed, the inputs, and the offending IR, and
// exits nonzero — everything needed to turn the failure into a unit test.
//
//===----------------------------------------------------------------------===//

#include "backend/Registry.h"
#include "interp/Interp.h"
#include "qir/Print.h"
#include "runtime/Trap.h"
#include "tests/RandomQir.h"
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace qcf;

namespace {

struct Outcome {
  bool Trapped = false;
  uint64_t Value = 0;

  bool operator==(const Outcome &O) const {
    return Trapped == O.Trapped && (Trapped || Value == O.Value);
  }
};

Outcome invoke(void *Entry, uint64_t A, uint64_t B) {
  Outcome Out;
  uint64_t R = 0;
  rt::TrapCode Code = rt::runWithTrapGuard([&] {
    R = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(Entry)(A, B);
  });
  if (Code != rt::TrapCode::None)
    Out.Trapped = true;
  else
    Out.Value = R;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t NumSeeds = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 1000;
  const char *Only = argc > 2 ? argv[2] : nullptr;

  std::vector<std::string> Backends;
  for (const std::string &Name : backend::allBackendNames()) {
    // GCC is ~1000x slower per module: soak it only when asked by name.
    if (Name == "Interpreter" || (Name == "GCC" && !Only))
      continue;
    if (Only && Name != Only)
      continue;
    Backends.push_back(Name);
  }
  if (Backends.empty()) {
    std::fprintf(stderr, "unknown back-end '%s'\n", Only ? Only : "");
    return 2;
  }
  std::printf("stress: %llu seeds x %zu back-ends\n",
              static_cast<unsigned long long>(NumSeeds), Backends.size());

  interp::InterpBackend Interp;
  uint64_t Mismatches = 0;
  for (uint64_t Seed = 0; Seed != NumSeeds; ++Seed) {
    qir::Module M;
    Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
    test::RandomFnBuilder RB(M, R);
    RB.build("rand");
    if (std::optional<std::string> Err = qir::verify(M)) {
      std::fprintf(stderr, "seed %llu: generator produced invalid IR: %s\n",
                   static_cast<unsigned long long>(Seed), Err->c_str());
      return 1;
    }

    auto Ref = Interp.compile(M, nullptr);
    std::vector<std::pair<uint64_t, uint64_t>> Inputs;
    for (int I = 0; I != 8; ++I)
      Inputs.emplace_back(R.next(), R.next());
    Inputs.emplace_back(0, 0);
    Inputs.emplace_back(~0ull, 1);

    std::vector<Outcome> Expected;
    for (auto [A, B] : Inputs)
      Expected.push_back(invoke(Ref->entry("rand"), A, B));

    for (const std::string &Name : Backends) {
      auto BE = backend::createBackend(Name);
      auto Compiled = BE->compile(M, nullptr);
      for (size_t I = 0; I != Inputs.size(); ++I) {
        Outcome Got = invoke(Compiled->entry("rand"), Inputs[I].first,
                             Inputs[I].second);
        if (!(Got == Expected[I])) {
          ++Mismatches;
          std::fprintf(
              stderr,
              "MISMATCH seed=%llu backend=%s args=(%llu, %llu)\n"
              "  interp: trapped=%d value=%llu\n  %s: trapped=%d "
              "value=%llu\n%s\n",
              static_cast<unsigned long long>(Seed), Name.c_str(),
              static_cast<unsigned long long>(Inputs[I].first),
              static_cast<unsigned long long>(Inputs[I].second),
              Expected[I].Trapped,
              static_cast<unsigned long long>(Expected[I].Value),
              Name.c_str(), Got.Trapped,
              static_cast<unsigned long long>(Got.Value),
              qir::printModule(M).c_str());
          if (Mismatches >= 3) {
            std::fprintf(stderr, "too many mismatches, stopping\n");
            return 1;
          }
        }
      }
    }
    if ((Seed + 1) % 250 == 0)
      std::printf("  %llu seeds ok\n",
                  static_cast<unsigned long long>(Seed + 1));
  }
  if (Mismatches) {
    std::printf("FAILED: %llu mismatches\n",
                static_cast<unsigned long long>(Mismatches));
    return 1;
  }
  std::printf("all %llu seeds agree on all back-ends\n",
              static_cast<unsigned long long>(NumSeeds));
  return 0;
}
