//===- tools/qcf_stress.cpp - Differential fuzzer (llvm-stress-alike) ------===//
//
// Part of the QCF project.
//
// Generates random QIR programs (structured control flow: loops,
// diamonds, traps, runtime calls) and checks that every JIT back-end
// produces interpreter-identical results and trap behaviour. The same
// generator backs the seeded property tests; this tool runs it open-ended
// for soak testing:
//
//   ./qcf_stress                 # 1000 seeds, all back-ends
//   ./qcf_stress 100000          # more seeds
//   ./qcf_stress 5000 Craneline  # one back-end
//
// On a mismatch it prints the seed, the inputs, and the offending IR, and
// exits nonzero — everything needed to turn the failure into a unit test.
//
// `./qcf_stress --async-compile [rounds]` instead soaks the concurrent
// compilation stack: each round hammers a service-backed CachingBackend
// from several threads (asserting exactly-one-compile-per-key) and races
// AdaptiveBackend tier promotion against execution, differentially
// against the interpreter.
//
// `./qcf_stress --code-cache [rounds]` soaks the persistent disk cache in
// $QCF_CODE_CACHE: thread storms of store/load over a deterministic
// corpus, corruption injection with recompile fallback, all differential
// against the interpreter. With QCF_WARM_CHECK=cold it instead populates
// the cache and requires stores to happen; with QCF_WARM_CHECK=warm it
// requires the whole corpus to install from disk with *zero* back-end
// compiles — the CI warm-restart contract.
//
// `./qcf_stress --osr [rounds]` soaks mid-query tier swapping
// (ExecOptions::AdaptiveExec): every round runs the whole benchmark query
// corpus with four workers while compile-latency jitter injected into the
// CompileService randomizes where the optimized tier lands. Each pipeline's
// morsel accounting is cross-checked (no torn swaps, no lost morsels, no
// double-executed ranges) and every result is digest-compared against a
// never-swapped serial baseline.
//
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/CompileService.h"
#include "backend/DiskCache.h"
#include "backend/Registry.h"
#include "db/Datagen.h"
#include "db/Executor.h"
#include "db/Queries.h"
#include "interp/Interp.h"
#include "qir/Print.h"
#include "runtime/Trap.h"
#include "tests/RandomQir.h"
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <thread>
#include <unistd.h>

using namespace qcf;

namespace {

struct Outcome {
  bool Trapped = false;
  uint64_t Value = 0;

  bool operator==(const Outcome &O) const {
    return Trapped == O.Trapped && (Trapped || Value == O.Value);
  }
};

Outcome invoke(void *Entry, uint64_t A, uint64_t B) {
  Outcome Out;
  uint64_t R = 0;
  rt::TrapCode Code = rt::runWithTrapGuard([&] {
    R = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(Entry)(A, B);
  });
  if (Code != rt::TrapCode::None)
    Out.Trapped = true;
  else
    Out.Value = R;
  return Out;
}

/// Wraps a back-end counting compiles — for asserting dedup exactness and
/// the warm-restart zero-compile contract. Forwards everything the disk
/// cache keys or calls through (config string, deserialization).
struct CountingBackend : backend::Backend {
  explicit CountingBackend(std::unique_ptr<backend::Backend> Inner)
      : Inner(std::move(Inner)) {}
  std::string name() const override { return Inner->name(); }
  std::string cacheConfig() const override { return Inner->cacheConfig(); }
  using backend::Backend::compile;
  std::unique_ptr<backend::CompiledModule>
  compile(const qir::Module &M, const backend::CompileOptions &Opts) override {
    ++Compiles;
    return Inner->compile(M, Opts);
  }
  std::unique_ptr<backend::CompiledModule> deserialize(const uint8_t *Data,
                                                       size_t Len) override {
    return Inner->deserialize(Data, Len);
  }
  std::unique_ptr<backend::Backend> Inner;
  std::atomic<uint64_t> Compiles{0};
};

/// One soak round: thread-storm a service-backed cache over K random
/// modules, then race adaptive promotion against execution. \returns the
/// number of violations (printed as they are found).
uint64_t asyncCompileRound(uint64_t Round) {
  constexpr int NumModules = 6, NumThreads = 4, Lookups = 20;
  uint64_t Violations = 0;

  std::vector<std::unique_ptr<qir::Module>> Mods;
  interp::InterpBackend Interp;
  std::vector<std::vector<Outcome>> Expected(NumModules);
  std::vector<std::pair<uint64_t, uint64_t>> Inputs;
  Rng InRng(Round ^ 0x5eedfeed);
  for (int I = 0; I != 6; ++I)
    Inputs.emplace_back(InRng.next(), InRng.next());
  Inputs.emplace_back(0, 0);
  Inputs.emplace_back(~0ull, 1);

  for (int K = 0; K != NumModules; ++K) {
    auto M = std::make_unique<qir::Module>();
    uint64_t Seed = Round * NumModules + K;
    Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
    test::RandomFnBuilder RB(*M, R);
    RB.build("rand");
    if (std::optional<std::string> Err = qir::verify(*M)) {
      std::fprintf(stderr, "round %llu: invalid IR: %s\n",
                   static_cast<unsigned long long>(Round), Err->c_str());
      return 1;
    }
    auto Ref = Interp.compile(*M);
    for (auto [A, B] : Inputs)
      Expected[K].push_back(invoke(Ref->entry("rand"), A, B));
    Mods.push_back(std::move(M));
  }

  backend::CompileService Svc(2);

  // Phase 1: cache dedup under a thread storm.
  {
    auto Counting =
        std::make_unique<CountingBackend>(backend::createBackend("DirectEmit"));
    CountingBackend *Counter = Counting.get();
    backend::CachingBackend Cache(std::move(Counting), /*Capacity=*/0, &Svc);

    std::atomic<uint64_t> Bad{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        for (int I = 0; I != Lookups; ++I) {
          int K = (T * 7 + I * 5) % NumModules;
          auto C = Cache.compile(*Mods[K]);
          for (size_t J = 0; J != Inputs.size(); ++J)
            if (!(invoke(C->entry("rand"), Inputs[J].first,
                         Inputs[J].second) == Expected[K][J]))
              ++Bad;
        }
      });
    for (std::thread &T : Threads)
      T.join();

    backend::CacheStats S = Cache.stats();
    if (Bad.load()) {
      std::fprintf(stderr, "round %llu: %llu cached-result mismatches\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(Bad.load()));
      Violations += Bad.load();
    }
    if (Counter->Compiles.load() != NumModules) {
      std::fprintf(stderr,
                   "round %llu: dedup broke: %llu compiles for %d keys\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(Counter->Compiles.load()),
                   NumModules);
      ++Violations;
    }
    if (S.Hits + S.Misses != uint64_t(NumThreads) * Lookups) {
      std::fprintf(stderr, "round %llu: stats drift: %llu hits + %llu misses "
                           "!= %d lookups\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(S.Hits),
                   static_cast<unsigned long long>(S.Misses),
                   NumThreads * Lookups);
      ++Violations;
    }
  }

  // Phase 2: adaptive promotion racing execution, differential.
  {
    backend::AdaptiveBackend BE(&Svc);
    BE.PromoteAfterRuns = 2;
    BE.PromoteSizeThreshold = 1;
    int K = static_cast<int>(Round % NumModules);
    auto Compiled = BE.compile(*Mods[K]);
    auto *AM = static_cast<backend::AdaptiveModule *>(Compiled.get());

    std::atomic<uint64_t> Bad{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&] {
        for (int R = 0; R != 10; ++R) {
          void *E = AM->entry("rand");
          for (size_t J = 0; J != Inputs.size(); ++J)
            if (!(invoke(E, Inputs[J].first, Inputs[J].second) ==
                  Expected[K][J]))
              ++Bad;
          AM->noteExecution("rand");
        }
      });
    for (std::thread &T : Threads)
      T.join();
    AM->waitForPromotion();
    for (size_t J = 0; J != Inputs.size(); ++J)
      if (!(invoke(AM->entry("rand"), Inputs[J].first, Inputs[J].second) ==
            Expected[K][J]))
        ++Bad;
    if (Bad.load()) {
      std::fprintf(stderr,
                   "round %llu: %llu mismatches across tier swap (seed %llu)\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(Bad.load()),
                   static_cast<unsigned long long>(Round * NumModules + K));
      Violations += Bad.load();
    }
  }
  return Violations;
}

int runAsyncCompileSoak(uint64_t Rounds) {
  std::printf("async-compile soak: %llu rounds (cache dedup storm + racing "
              "adaptive promotion)\n",
              static_cast<unsigned long long>(Rounds));
  uint64_t Violations = 0;
  for (uint64_t Round = 0; Round != Rounds; ++Round) {
    Violations += asyncCompileRound(Round);
    if (Violations >= 3) {
      std::fprintf(stderr, "too many violations, stopping\n");
      return 1;
    }
    if ((Round + 1) % 10 == 0)
      std::printf("  %llu rounds ok\n",
                  static_cast<unsigned long long>(Round + 1));
  }
  if (Violations) {
    std::printf("FAILED: %llu violations\n",
                static_cast<unsigned long long>(Violations));
    return 1;
  }
  std::printf("all %llu rounds clean\n",
              static_cast<unsigned long long>(Rounds));
  return 0;
}

/// Deterministic module for the code-cache soak: the same seed produces
/// the same module (and so the same fingerprint) in every process, which
/// is what makes the cross-run warm check meaningful.
std::unique_ptr<qir::Module> buildStressModule(uint64_t Seed) {
  auto M = std::make_unique<qir::Module>();
  Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
  test::RandomFnBuilder RB(*M, R);
  RB.build("rand");
  return M;
}

/// Blob files currently in \p Dir.
std::vector<std::string> listCacheBlobs(const std::string &Dir) {
  std::vector<std::string> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".qcc") == 0)
      Out.push_back(Dir + "/" + Name);
  }
  ::closedir(D);
  return Out;
}

int runCodeCacheSoak(uint64_t Rounds) {
  const char *DirEnv = std::getenv("QCF_CODE_CACHE");
  if (!DirEnv || !*DirEnv) {
    std::fprintf(stderr, "--code-cache requires $QCF_CODE_CACHE to be set\n");
    return 2;
  }
  const std::string Dir = DirEnv;
  const char *WarmCheck = std::getenv("QCF_WARM_CHECK");

  // Deterministic corpus + interpreter expectations.
  constexpr int NumModules = 8;
  interp::InterpBackend Interp;
  std::vector<std::unique_ptr<qir::Module>> Mods;
  std::vector<std::vector<Outcome>> Expected(NumModules);
  std::vector<std::pair<uint64_t, uint64_t>> Inputs = {
      {0, 0}, {~0ull, 1}, {42, 7}, {0x123456789abcdefull, 3}};
  for (int K = 0; K != NumModules; ++K) {
    Mods.push_back(buildStressModule(K));
    if (std::optional<std::string> Err = qir::verify(*Mods[K])) {
      std::fprintf(stderr, "module %d: invalid IR: %s\n", K, Err->c_str());
      return 1;
    }
    auto Ref = Interp.compile(*Mods[K]);
    for (auto [A, B] : Inputs)
      Expected[K].push_back(invoke(Ref->entry("rand"), A, B));
  }

  /// Compiles the whole corpus through a disk-backed caching stack and
  /// differentially checks every module; returns mismatch count.
  auto RunCorpus = [&](backend::CachingBackend &Cache) {
    uint64_t Bad = 0;
    for (int K = 0; K != NumModules; ++K) {
      auto C = Cache.compile(*Mods[K]);
      for (size_t J = 0; J != Inputs.size(); ++J)
        if (!(invoke(C->entry("rand"), Inputs[J].first, Inputs[J].second) ==
              Expected[K][J]))
          ++Bad;
    }
    return Bad;
  };

  if (WarmCheck && (!std::strcmp(WarmCheck, "cold") ||
                    !std::strcmp(WarmCheck, "warm"))) {
    // CI warm-restart contract: the cold run populates the cache; the warm
    // run (same directory, fresh process) must install everything from
    // disk without a single back-end compile.
    bool Warm = !std::strcmp(WarmCheck, "warm");
    obs::MetricsRegistry Reg;
    backend::DiskCodeCache Disk(Dir, 0, &Reg);
    auto Counting =
        std::make_unique<CountingBackend>(backend::createBackend("DirectEmit"));
    CountingBackend *Counter = Counting.get();
    backend::CachingBackend Cache(std::move(Counting), 0, nullptr, &Reg, &Disk);
    uint64_t Bad = RunCorpus(Cache);
    backend::DiskCacheStats S = Disk.stats();
    std::printf("code-cache %s run: %llu compiles, %llu disk hits, %llu "
                "stores, %llu mismatches\n",
                WarmCheck,
                static_cast<unsigned long long>(Counter->Compiles.load()),
                static_cast<unsigned long long>(S.Hits),
                static_cast<unsigned long long>(S.Stores),
                static_cast<unsigned long long>(Bad));
    if (Bad)
      return 1;
    if (Warm && (Counter->Compiles.load() != 0 || S.Hits == 0)) {
      std::fprintf(stderr,
                   "FAILED warm check: expected zero back-end compiles and "
                   "disk hits > 0\n");
      return 1;
    }
    if (!Warm && S.Stores == 0) {
      std::fprintf(stderr, "FAILED cold check: nothing was stored\n");
      return 1;
    }
    return 0;
  }

  // Default soak: store/load thread storms plus corruption injection,
  // always falling back to a clean recompile.
  std::printf("code-cache soak: %llu rounds over %s\n",
              static_cast<unsigned long long>(Rounds), Dir.c_str());
  uint64_t Violations = 0;
  for (uint64_t Round = 0; Round != Rounds; ++Round) {
    {
      obs::MetricsRegistry Reg;
      backend::DiskCodeCache Disk(Dir, 0, &Reg);
      backend::CachingBackend Cache(backend::createBackend("DirectEmit"), 0,
                                    nullptr, &Reg, &Disk);
      std::atomic<uint64_t> Bad{0};
      std::vector<std::thread> Threads;
      for (int T = 0; T != 4; ++T)
        Threads.emplace_back([&, T] {
          for (int I = 0; I != 8; ++I) {
            int K = (T * 5 + I * 3) % NumModules;
            auto C = Cache.compile(*Mods[K]);
            for (size_t J = 0; J != Inputs.size(); ++J)
              if (!(invoke(C->entry("rand"), Inputs[J].first,
                           Inputs[J].second) == Expected[K][J]))
                ++Bad;
          }
        });
      for (std::thread &T : Threads)
        T.join();
      Violations += Bad.load();
    }

    // Corrupt one blob, then recompile the whole corpus: the cache must
    // reject it and fall back without any result changing.
    std::vector<std::string> Blobs = listCacheBlobs(Dir);
    if (!Blobs.empty()) {
      const std::string &Victim = Blobs[Round % Blobs.size()];
      int Fd = ::open(Victim.c_str(), O_RDWR);
      if (Fd >= 0) {
        uint8_t Byte = 0;
        off_t Off = static_cast<off_t>(40 + Round % 8);
        if (::pread(Fd, &Byte, 1, Off) == 1) {
          Byte ^= 0x80;
          (void)!::pwrite(Fd, &Byte, 1, Off);
        }
        ::close(Fd);
      }
    }
    {
      obs::MetricsRegistry Reg;
      backend::DiskCodeCache Disk(Dir, 0, &Reg);
      backend::CachingBackend Cache(backend::createBackend("DirectEmit"), 0,
                                    nullptr, &Reg, &Disk);
      uint64_t Bad = RunCorpus(Cache);
      if (Bad) {
        std::fprintf(stderr,
                     "round %llu: %llu mismatches after corruption injection\n",
                     static_cast<unsigned long long>(Round),
                     static_cast<unsigned long long>(Bad));
        Violations += Bad;
      }
    }
    if (Violations >= 3) {
      std::fprintf(stderr, "too many violations, stopping\n");
      return 1;
    }
    if ((Round + 1) % 10 == 0)
      std::printf("  %llu rounds ok\n",
                  static_cast<unsigned long long>(Round + 1));
  }
  if (Violations) {
    std::printf("FAILED: %llu violations\n",
                static_cast<unsigned long long>(Violations));
    return 1;
  }
  std::printf("all %llu rounds clean\n",
              static_cast<unsigned long long>(Rounds));
  return 0;
}

/// One query's fixed context for the OSR soak: its compiled plan plus the
/// never-swapped serial baseline digest and per-pipeline row counts.
struct OsrQueryCase {
  const db::Catalog *Cat;
  std::string Name;
  db::CompiledPlan Plan;
  uint64_t BaseDigest = 0;
  std::vector<uint64_t> PipeRows;
};

int runOsrSoak(uint64_t Rounds) {
  // Small catalogs keep one round cheap; "thousands of pipelines" comes
  // from rounds x queries x pipelines, not from raw row volume.
  static db::Catalog Tpch, Tpcds;
  db::generateTpchLike(Tpch, 0.2);
  db::generateTpcdsLike(Tpcds, 0.2);

  backend::CachingBackend Fast(backend::createBackend("DirectEmit"));
  backend::CachingBackend Opt(backend::createBackend("MLVM-opt"));

  std::vector<OsrQueryCase> Cases;
  auto AddSuite = [&](const db::Catalog &Cat, std::vector<db::Query> Queries,
                      const char *Suite) {
    for (db::Query &Q : Queries) {
      OsrQueryCase C{&Cat, std::string(Suite) + "/" + Q.Name,
                     db::compileQuery(Q, Cat), 0, {}};
      rt::OutputBuffer Out;
      db::ExecOptions O;
      O.NumThreads = 1;
      db::ExecResult R = db::executeQuery(C.Plan, Fast, Cat, &Out, O);
      if (R.Trapped) {
        std::fprintf(stderr, "%s: baseline trapped\n", C.Name.c_str());
        std::exit(1);
      }
      C.BaseDigest = Out.unorderedDigest();
      for (const db::PipelineStats &P : R.Stats.Pipelines)
        C.PipeRows.push_back(P.Rows);
      Cases.push_back(std::move(C));
    }
  };
  AddSuite(Tpch, db::tpchQueries(), "tpch");
  AddSuite(Tpcds, db::tpcdsQueries(), "tpcds");

  std::printf("osr soak: %llu rounds x %zu queries (4 workers, jittered "
              "compile landing)\n",
              static_cast<unsigned long long>(Rounds), Cases.size());

  backend::CompileService Svc(2);
  uint64_t Violations = 0, Pipelines = 0, Swaps = 0, Seed = 0x05eedull;
  for (uint64_t Round = 0; Round != Rounds; ++Round) {
    // Sweep the landing time from "immediately" to "well past the end of
    // short queries" so early, interior, and too-late swaps all happen.
    Svc.injectCompileLatencyForTest(1u << (5 + Round % 6), Seed++);
    for (OsrQueryCase &C : Cases) {
      rt::OutputBuffer Out;
      db::ExecOptions O;
      O.NumThreads = 4;
      O.MorselSize = 256;
      O.AdaptiveExec = true;
      O.FastBackend = &Fast;
      O.Service = &Svc;
      db::ExecResult R = db::executeQuery(C.Plan, Opt, *C.Cat, &Out, O);
      if (R.Trapped) {
        std::fprintf(stderr, "round %llu %s: trapped\n",
                     static_cast<unsigned long long>(Round), C.Name.c_str());
        ++Violations;
        continue;
      }
      if (Out.unorderedDigest() != C.BaseDigest) {
        std::fprintf(stderr, "round %llu %s: tier swap changed the result\n",
                     static_cast<unsigned long long>(Round), C.Name.c_str());
        ++Violations;
      }
      Swaps += R.Stats.OsrSwaps;
      for (size_t PI = 0; PI != R.Stats.Pipelines.size(); ++PI) {
        const db::PipelineStats &P = R.Stats.Pipelines[PI];
        ++Pipelines;
        uint64_t NM = (P.Rows + O.MorselSize - 1) / O.MorselSize;
        bool Bad = P.Morsels != NM ||
                   P.MorselsFast + P.MorselsOpt != P.Morsels ||
                   P.RowsFast + P.RowsOpt != P.Rows ||
                   (P.Rows > 0 && P.MinWorkerMorsels < 1);
        if (Bad) {
          std::fprintf(
              stderr,
              "round %llu %s pipeline %zu: torn accounting: rows %llu "
              "(fast %llu + opt %llu), morsels %llu/%llu (fast %llu + opt "
              "%llu), min worker %llu\n",
              static_cast<unsigned long long>(Round), C.Name.c_str(), PI,
              static_cast<unsigned long long>(P.Rows),
              static_cast<unsigned long long>(P.RowsFast),
              static_cast<unsigned long long>(P.RowsOpt),
              static_cast<unsigned long long>(P.Morsels),
              static_cast<unsigned long long>(NM),
              static_cast<unsigned long long>(P.MorselsFast),
              static_cast<unsigned long long>(P.MorselsOpt),
              static_cast<unsigned long long>(P.MinWorkerMorsels));
          ++Violations;
        }
      }
    }
    if (Violations >= 3) {
      std::fprintf(stderr, "too many violations, stopping\n");
      return 1;
    }
    if ((Round + 1) % 10 == 0)
      std::printf("  %llu rounds ok (%llu pipelines, %llu swaps)\n",
                  static_cast<unsigned long long>(Round + 1),
                  static_cast<unsigned long long>(Pipelines),
                  static_cast<unsigned long long>(Swaps));
  }
  if (Violations) {
    std::printf("FAILED: %llu violations\n",
                static_cast<unsigned long long>(Violations));
    return 1;
  }
  std::printf("all %llu rounds clean: %llu pipelines, %llu tier swaps, no "
              "torn accounting\n",
              static_cast<unsigned long long>(Rounds),
              static_cast<unsigned long long>(Pipelines),
              static_cast<unsigned long long>(Swaps));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1 && std::strcmp(argv[1], "--async-compile") == 0)
    return runAsyncCompileSoak(
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 50);
  if (argc > 1 && std::strcmp(argv[1], "--code-cache") == 0)
    return runCodeCacheSoak(argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 20);
  if (argc > 1 && std::strcmp(argv[1], "--osr") == 0)
    return runOsrSoak(argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 40);
  uint64_t NumSeeds = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 1000;
  const char *Only = argc > 2 ? argv[2] : nullptr;

  std::vector<std::string> Backends;
  for (const std::string &Name : backend::allBackendNames()) {
    // GCC is ~1000x slower per module: soak it only when asked by name.
    if (Name == "Interpreter" || (Name == "GCC" && !Only))
      continue;
    if (Only && Name != Only)
      continue;
    Backends.push_back(Name);
  }
  if (Backends.empty()) {
    std::fprintf(stderr, "unknown back-end '%s'\n", Only ? Only : "");
    return 2;
  }
  std::printf("stress: %llu seeds x %zu back-ends\n",
              static_cast<unsigned long long>(NumSeeds), Backends.size());

  interp::InterpBackend Interp;
  uint64_t Mismatches = 0;
  for (uint64_t Seed = 0; Seed != NumSeeds; ++Seed) {
    qir::Module M;
    Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
    test::RandomFnBuilder RB(M, R);
    RB.build("rand");
    if (std::optional<std::string> Err = qir::verify(M)) {
      std::fprintf(stderr, "seed %llu: generator produced invalid IR: %s\n",
                   static_cast<unsigned long long>(Seed), Err->c_str());
      return 1;
    }

    auto Ref = Interp.compile(M);
    std::vector<std::pair<uint64_t, uint64_t>> Inputs;
    for (int I = 0; I != 8; ++I)
      Inputs.emplace_back(R.next(), R.next());
    Inputs.emplace_back(0, 0);
    Inputs.emplace_back(~0ull, 1);

    std::vector<Outcome> Expected;
    for (auto [A, B] : Inputs)
      Expected.push_back(invoke(Ref->entry("rand"), A, B));

    for (const std::string &Name : Backends) {
      auto BE = backend::createBackend(Name);
      auto Compiled = BE->compile(M);
      for (size_t I = 0; I != Inputs.size(); ++I) {
        Outcome Got = invoke(Compiled->entry("rand"), Inputs[I].first,
                             Inputs[I].second);
        if (!(Got == Expected[I])) {
          ++Mismatches;
          std::fprintf(
              stderr,
              "MISMATCH seed=%llu backend=%s args=(%llu, %llu)\n"
              "  interp: trapped=%d value=%llu\n  %s: trapped=%d "
              "value=%llu\n%s\n",
              static_cast<unsigned long long>(Seed), Name.c_str(),
              static_cast<unsigned long long>(Inputs[I].first),
              static_cast<unsigned long long>(Inputs[I].second),
              Expected[I].Trapped,
              static_cast<unsigned long long>(Expected[I].Value),
              Name.c_str(), Got.Trapped,
              static_cast<unsigned long long>(Got.Value),
              qir::printModule(M).c_str());
          if (Mismatches >= 3) {
            std::fprintf(stderr, "too many mismatches, stopping\n");
            return 1;
          }
        }
      }
    }
    if ((Seed + 1) % 250 == 0)
      std::printf("  %llu seeds ok\n",
                  static_cast<unsigned long long>(Seed + 1));
  }
  if (Mismatches) {
    std::printf("FAILED: %llu mismatches\n",
                static_cast<unsigned long long>(Mismatches));
    return 1;
  }
  std::printf("all %llu seeds agree on all back-ends\n",
              static_cast<unsigned long long>(NumSeeds));
  return 0;
}
