//===- tools/qcf_stress.cpp - Differential fuzzer (llvm-stress-alike) ------===//
//
// Part of the QCF project.
//
// Generates random QIR programs (structured control flow: loops,
// diamonds, traps, runtime calls) and checks that every JIT back-end
// produces interpreter-identical results and trap behaviour. The same
// generator backs the seeded property tests; this tool runs it open-ended
// for soak testing:
//
//   ./qcf_stress                 # 1000 seeds, all back-ends
//   ./qcf_stress 100000          # more seeds
//   ./qcf_stress 5000 Craneline  # one back-end
//
// On a mismatch it prints the seed, the inputs, and the offending IR, and
// exits nonzero — everything needed to turn the failure into a unit test.
//
// `./qcf_stress --async-compile [rounds]` instead soaks the concurrent
// compilation stack: each round hammers a service-backed CachingBackend
// from several threads (asserting exactly-one-compile-per-key) and races
// AdaptiveBackend tier promotion against execution, differentially
// against the interpreter.
//
// `./qcf_stress --code-cache [rounds]` soaks the persistent disk cache in
// $QCF_CODE_CACHE: thread storms of store/load over a deterministic
// corpus, corruption injection with recompile fallback, all differential
// against the interpreter. With QCF_WARM_CHECK=cold it instead populates
// the cache and requires stores to happen; with QCF_WARM_CHECK=warm it
// requires the whole corpus to install from disk with *zero* back-end
// compiles — the CI warm-restart contract.
//
// `./qcf_stress --serve [--quick]` soaks the serving layer: 1100
// concurrently open sessions across four tenants with distinct quotas,
// 16 driver threads multiplexing deadline-armed queries over them with
// mid-flight closes mixed in. Asserts exactly-once accounting (issued ==
// ok + typed rejects + cancelled), digest-correct results, tenant quotas
// never exceeded, and zero leaked sessions after shutdown.
//
// `./qcf_stress --osr [rounds]` soaks mid-query tier swapping
// (ExecOptions::AdaptiveExec): every round runs the whole benchmark query
// corpus with four workers while compile-latency jitter injected into the
// CompileService randomizes where the optimized tier lands. Each pipeline's
// morsel accounting is cross-checked (no torn swaps, no lost morsels, no
// double-executed ranges) and every result is digest-compared against a
// never-swapped serial baseline.
//
//===----------------------------------------------------------------------===//

#include "backend/Cache.h"
#include "backend/CompileService.h"
#include "backend/DiskCache.h"
#include "backend/Registry.h"
#include "db/Datagen.h"
#include "db/Executor.h"
#include "db/Queries.h"
#include "interp/Interp.h"
#include "qir/Print.h"
#include "runtime/Trap.h"
#include "serve/Server.h"
#include "tests/RandomQir.h"
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <thread>
#include <unistd.h>

using namespace qcf;

namespace {

struct Outcome {
  bool Trapped = false;
  uint64_t Value = 0;

  bool operator==(const Outcome &O) const {
    return Trapped == O.Trapped && (Trapped || Value == O.Value);
  }
};

Outcome invoke(void *Entry, uint64_t A, uint64_t B) {
  Outcome Out;
  uint64_t R = 0;
  rt::TrapCode Code = rt::runWithTrapGuard([&] {
    R = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(Entry)(A, B);
  });
  if (Code != rt::TrapCode::None)
    Out.Trapped = true;
  else
    Out.Value = R;
  return Out;
}

/// Wraps a back-end counting compiles — for asserting dedup exactness and
/// the warm-restart zero-compile contract. Forwards everything the disk
/// cache keys or calls through (config string, deserialization).
struct CountingBackend : backend::Backend {
  explicit CountingBackend(std::unique_ptr<backend::Backend> Inner)
      : Inner(std::move(Inner)) {}
  std::string name() const override { return Inner->name(); }
  std::string cacheConfig() const override { return Inner->cacheConfig(); }
  using backend::Backend::compile;
  std::unique_ptr<backend::CompiledModule>
  compile(const qir::Module &M, const backend::CompileOptions &Opts) override {
    ++Compiles;
    return Inner->compile(M, Opts);
  }
  std::unique_ptr<backend::CompiledModule> deserialize(const uint8_t *Data,
                                                       size_t Len) override {
    return Inner->deserialize(Data, Len);
  }
  std::unique_ptr<backend::Backend> Inner;
  std::atomic<uint64_t> Compiles{0};
};

/// One soak round: thread-storm a service-backed cache over K random
/// modules, then race adaptive promotion against execution. \returns the
/// number of violations (printed as they are found).
uint64_t asyncCompileRound(uint64_t Round) {
  constexpr int NumModules = 6, NumThreads = 4, Lookups = 20;
  uint64_t Violations = 0;

  std::vector<std::unique_ptr<qir::Module>> Mods;
  interp::InterpBackend Interp;
  std::vector<std::vector<Outcome>> Expected(NumModules);
  std::vector<std::pair<uint64_t, uint64_t>> Inputs;
  Rng InRng(Round ^ 0x5eedfeed);
  for (int I = 0; I != 6; ++I)
    Inputs.emplace_back(InRng.next(), InRng.next());
  Inputs.emplace_back(0, 0);
  Inputs.emplace_back(~0ull, 1);

  for (int K = 0; K != NumModules; ++K) {
    auto M = std::make_unique<qir::Module>();
    uint64_t Seed = Round * NumModules + K;
    Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
    test::RandomFnBuilder RB(*M, R);
    RB.build("rand");
    if (std::optional<std::string> Err = qir::verify(*M)) {
      std::fprintf(stderr, "round %llu: invalid IR: %s\n",
                   static_cast<unsigned long long>(Round), Err->c_str());
      return 1;
    }
    auto Ref = Interp.compile(*M);
    for (auto [A, B] : Inputs)
      Expected[K].push_back(invoke(Ref->entry("rand"), A, B));
    Mods.push_back(std::move(M));
  }

  backend::CompileService Svc(2);

  // Phase 1: cache dedup under a thread storm.
  {
    auto Counting =
        std::make_unique<CountingBackend>(backend::createBackend("DirectEmit"));
    CountingBackend *Counter = Counting.get();
    backend::CachingBackend Cache(std::move(Counting), /*Capacity=*/0, &Svc);

    std::atomic<uint64_t> Bad{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        for (int I = 0; I != Lookups; ++I) {
          int K = (T * 7 + I * 5) % NumModules;
          auto C = Cache.compile(*Mods[K]);
          for (size_t J = 0; J != Inputs.size(); ++J)
            if (!(invoke(C->entry("rand"), Inputs[J].first,
                         Inputs[J].second) == Expected[K][J]))
              ++Bad;
        }
      });
    for (std::thread &T : Threads)
      T.join();

    backend::CacheStats S = Cache.stats();
    if (Bad.load()) {
      std::fprintf(stderr, "round %llu: %llu cached-result mismatches\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(Bad.load()));
      Violations += Bad.load();
    }
    if (Counter->Compiles.load() != NumModules) {
      std::fprintf(stderr,
                   "round %llu: dedup broke: %llu compiles for %d keys\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(Counter->Compiles.load()),
                   NumModules);
      ++Violations;
    }
    if (S.Hits + S.Misses != uint64_t(NumThreads) * Lookups) {
      std::fprintf(stderr, "round %llu: stats drift: %llu hits + %llu misses "
                           "!= %d lookups\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(S.Hits),
                   static_cast<unsigned long long>(S.Misses),
                   NumThreads * Lookups);
      ++Violations;
    }
  }

  // Phase 2: adaptive promotion racing execution, differential.
  {
    backend::AdaptiveBackend BE(&Svc);
    BE.PromoteAfterRuns = 2;
    BE.PromoteSizeThreshold = 1;
    int K = static_cast<int>(Round % NumModules);
    auto Compiled = BE.compile(*Mods[K]);
    auto *AM = static_cast<backend::AdaptiveModule *>(Compiled.get());

    std::atomic<uint64_t> Bad{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&] {
        for (int R = 0; R != 10; ++R) {
          void *E = AM->entry("rand");
          for (size_t J = 0; J != Inputs.size(); ++J)
            if (!(invoke(E, Inputs[J].first, Inputs[J].second) ==
                  Expected[K][J]))
              ++Bad;
          AM->noteExecution("rand");
        }
      });
    for (std::thread &T : Threads)
      T.join();
    AM->waitForPromotion();
    for (size_t J = 0; J != Inputs.size(); ++J)
      if (!(invoke(AM->entry("rand"), Inputs[J].first, Inputs[J].second) ==
            Expected[K][J]))
        ++Bad;
    if (Bad.load()) {
      std::fprintf(stderr,
                   "round %llu: %llu mismatches across tier swap (seed %llu)\n",
                   static_cast<unsigned long long>(Round),
                   static_cast<unsigned long long>(Bad.load()),
                   static_cast<unsigned long long>(Round * NumModules + K));
      Violations += Bad.load();
    }
  }
  return Violations;
}

int runAsyncCompileSoak(uint64_t Rounds) {
  std::printf("async-compile soak: %llu rounds (cache dedup storm + racing "
              "adaptive promotion)\n",
              static_cast<unsigned long long>(Rounds));
  uint64_t Violations = 0;
  for (uint64_t Round = 0; Round != Rounds; ++Round) {
    Violations += asyncCompileRound(Round);
    if (Violations >= 3) {
      std::fprintf(stderr, "too many violations, stopping\n");
      return 1;
    }
    if ((Round + 1) % 10 == 0)
      std::printf("  %llu rounds ok\n",
                  static_cast<unsigned long long>(Round + 1));
  }
  if (Violations) {
    std::printf("FAILED: %llu violations\n",
                static_cast<unsigned long long>(Violations));
    return 1;
  }
  std::printf("all %llu rounds clean\n",
              static_cast<unsigned long long>(Rounds));
  return 0;
}

/// Deterministic module for the code-cache soak: the same seed produces
/// the same module (and so the same fingerprint) in every process, which
/// is what makes the cross-run warm check meaningful.
std::unique_ptr<qir::Module> buildStressModule(uint64_t Seed) {
  auto M = std::make_unique<qir::Module>();
  Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
  test::RandomFnBuilder RB(*M, R);
  RB.build("rand");
  return M;
}

/// Blob files currently in \p Dir.
std::vector<std::string> listCacheBlobs(const std::string &Dir) {
  std::vector<std::string> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".qcc") == 0)
      Out.push_back(Dir + "/" + Name);
  }
  ::closedir(D);
  return Out;
}

int runCodeCacheSoak(uint64_t Rounds) {
  const char *DirEnv = std::getenv("QCF_CODE_CACHE");
  if (!DirEnv || !*DirEnv) {
    std::fprintf(stderr, "--code-cache requires $QCF_CODE_CACHE to be set\n");
    return 2;
  }
  const std::string Dir = DirEnv;
  const char *WarmCheck = std::getenv("QCF_WARM_CHECK");

  // Deterministic corpus + interpreter expectations.
  constexpr int NumModules = 8;
  interp::InterpBackend Interp;
  std::vector<std::unique_ptr<qir::Module>> Mods;
  std::vector<std::vector<Outcome>> Expected(NumModules);
  std::vector<std::pair<uint64_t, uint64_t>> Inputs = {
      {0, 0}, {~0ull, 1}, {42, 7}, {0x123456789abcdefull, 3}};
  for (int K = 0; K != NumModules; ++K) {
    Mods.push_back(buildStressModule(K));
    if (std::optional<std::string> Err = qir::verify(*Mods[K])) {
      std::fprintf(stderr, "module %d: invalid IR: %s\n", K, Err->c_str());
      return 1;
    }
    auto Ref = Interp.compile(*Mods[K]);
    for (auto [A, B] : Inputs)
      Expected[K].push_back(invoke(Ref->entry("rand"), A, B));
  }

  /// Compiles the whole corpus through a disk-backed caching stack and
  /// differentially checks every module; returns mismatch count.
  auto RunCorpus = [&](backend::CachingBackend &Cache) {
    uint64_t Bad = 0;
    for (int K = 0; K != NumModules; ++K) {
      auto C = Cache.compile(*Mods[K]);
      for (size_t J = 0; J != Inputs.size(); ++J)
        if (!(invoke(C->entry("rand"), Inputs[J].first, Inputs[J].second) ==
              Expected[K][J]))
          ++Bad;
    }
    return Bad;
  };

  if (WarmCheck && (!std::strcmp(WarmCheck, "cold") ||
                    !std::strcmp(WarmCheck, "warm"))) {
    // CI warm-restart contract: the cold run populates the cache; the warm
    // run (same directory, fresh process) must install everything from
    // disk without a single back-end compile.
    bool Warm = !std::strcmp(WarmCheck, "warm");
    obs::MetricsRegistry Reg;
    backend::DiskCodeCache Disk(Dir, 0, &Reg);
    // QCF_WARM_BACKEND selects which back-end's blobs the warm-restart
    // contract is checked against (default DirectEmit; CI also runs the
    // stencil leg).
    const char *WarmBackend = std::getenv("QCF_WARM_BACKEND");
    auto Counting = std::make_unique<CountingBackend>(backend::createBackend(
        WarmBackend && *WarmBackend ? WarmBackend : "DirectEmit"));
    CountingBackend *Counter = Counting.get();
    backend::CachingBackend Cache(std::move(Counting), 0, nullptr, &Reg, &Disk);
    uint64_t Bad = RunCorpus(Cache);
    backend::DiskCacheStats S = Disk.stats();
    std::printf("code-cache %s run: %llu compiles, %llu disk hits, %llu "
                "stores, %llu mismatches\n",
                WarmCheck,
                static_cast<unsigned long long>(Counter->Compiles.load()),
                static_cast<unsigned long long>(S.Hits),
                static_cast<unsigned long long>(S.Stores),
                static_cast<unsigned long long>(Bad));
    if (Bad)
      return 1;
    if (Warm && (Counter->Compiles.load() != 0 || S.Hits == 0)) {
      std::fprintf(stderr,
                   "FAILED warm check: expected zero back-end compiles and "
                   "disk hits > 0\n");
      return 1;
    }
    if (!Warm && S.Stores == 0) {
      std::fprintf(stderr, "FAILED cold check: nothing was stored\n");
      return 1;
    }
    return 0;
  }

  // Default soak: store/load thread storms plus corruption injection,
  // always falling back to a clean recompile.
  std::printf("code-cache soak: %llu rounds over %s\n",
              static_cast<unsigned long long>(Rounds), Dir.c_str());
  uint64_t Violations = 0;
  for (uint64_t Round = 0; Round != Rounds; ++Round) {
    {
      obs::MetricsRegistry Reg;
      backend::DiskCodeCache Disk(Dir, 0, &Reg);
      backend::CachingBackend Cache(backend::createBackend("DirectEmit"), 0,
                                    nullptr, &Reg, &Disk);
      std::atomic<uint64_t> Bad{0};
      std::vector<std::thread> Threads;
      for (int T = 0; T != 4; ++T)
        Threads.emplace_back([&, T] {
          for (int I = 0; I != 8; ++I) {
            int K = (T * 5 + I * 3) % NumModules;
            auto C = Cache.compile(*Mods[K]);
            for (size_t J = 0; J != Inputs.size(); ++J)
              if (!(invoke(C->entry("rand"), Inputs[J].first,
                           Inputs[J].second) == Expected[K][J]))
                ++Bad;
          }
        });
      for (std::thread &T : Threads)
        T.join();
      Violations += Bad.load();
    }

    // Corrupt one blob, then recompile the whole corpus: the cache must
    // reject it and fall back without any result changing.
    std::vector<std::string> Blobs = listCacheBlobs(Dir);
    if (!Blobs.empty()) {
      const std::string &Victim = Blobs[Round % Blobs.size()];
      int Fd = ::open(Victim.c_str(), O_RDWR);
      if (Fd >= 0) {
        uint8_t Byte = 0;
        off_t Off = static_cast<off_t>(40 + Round % 8);
        if (::pread(Fd, &Byte, 1, Off) == 1) {
          Byte ^= 0x80;
          (void)!::pwrite(Fd, &Byte, 1, Off);
        }
        ::close(Fd);
      }
    }
    {
      obs::MetricsRegistry Reg;
      backend::DiskCodeCache Disk(Dir, 0, &Reg);
      backend::CachingBackend Cache(backend::createBackend("DirectEmit"), 0,
                                    nullptr, &Reg, &Disk);
      uint64_t Bad = RunCorpus(Cache);
      if (Bad) {
        std::fprintf(stderr,
                     "round %llu: %llu mismatches after corruption injection\n",
                     static_cast<unsigned long long>(Round),
                     static_cast<unsigned long long>(Bad));
        Violations += Bad;
      }
    }
    if (Violations >= 3) {
      std::fprintf(stderr, "too many violations, stopping\n");
      return 1;
    }
    if ((Round + 1) % 10 == 0)
      std::printf("  %llu rounds ok\n",
                  static_cast<unsigned long long>(Round + 1));
  }
  if (Violations) {
    std::printf("FAILED: %llu violations\n",
                static_cast<unsigned long long>(Violations));
    return 1;
  }
  std::printf("all %llu rounds clean\n",
              static_cast<unsigned long long>(Rounds));
  return 0;
}

/// One query's fixed context for the OSR soak: its compiled plan plus the
/// never-swapped serial baseline digest and per-pipeline row counts.
struct OsrQueryCase {
  const db::Catalog *Cat;
  std::string Name;
  db::CompiledPlan Plan;
  uint64_t BaseDigest = 0;
  std::vector<uint64_t> PipeRows;
};

int runOsrSoak(uint64_t Rounds) {
  // Small catalogs keep one round cheap; "thousands of pipelines" comes
  // from rounds x queries x pipelines, not from raw row volume.
  static db::Catalog Tpch, Tpcds;
  db::generateTpchLike(Tpch, 0.2);
  db::generateTpcdsLike(Tpcds, 0.2);

  backend::CachingBackend Fast(backend::createBackend("DirectEmit"));
  backend::CachingBackend Opt(backend::createBackend("MLVM-opt"));

  std::vector<OsrQueryCase> Cases;
  auto AddSuite = [&](const db::Catalog &Cat, std::vector<db::Query> Queries,
                      const char *Suite) {
    for (db::Query &Q : Queries) {
      OsrQueryCase C{&Cat, std::string(Suite) + "/" + Q.Name,
                     db::compileQuery(Q, Cat), 0, {}};
      rt::OutputBuffer Out;
      db::ExecOptions O;
      O.NumThreads = 1;
      db::ExecResult R = db::executeQuery(C.Plan, Fast, Cat, &Out, O);
      if (R.Trapped) {
        std::fprintf(stderr, "%s: baseline trapped\n", C.Name.c_str());
        std::exit(1);
      }
      C.BaseDigest = Out.unorderedDigest();
      for (const db::PipelineStats &P : R.Stats.Pipelines)
        C.PipeRows.push_back(P.Rows);
      Cases.push_back(std::move(C));
    }
  };
  AddSuite(Tpch, db::tpchQueries(), "tpch");
  AddSuite(Tpcds, db::tpcdsQueries(), "tpcds");

  std::printf("osr soak: %llu rounds x %zu queries (4 workers, jittered "
              "compile landing)\n",
              static_cast<unsigned long long>(Rounds), Cases.size());

  backend::CompileService Svc(2);
  uint64_t Violations = 0, Pipelines = 0, Swaps = 0, Seed = 0x05eedull;
  for (uint64_t Round = 0; Round != Rounds; ++Round) {
    // Sweep the landing time from "immediately" to "well past the end of
    // short queries" so early, interior, and too-late swaps all happen.
    Svc.injectCompileLatencyForTest(1u << (5 + Round % 6), Seed++);
    for (OsrQueryCase &C : Cases) {
      rt::OutputBuffer Out;
      db::ExecOptions O;
      O.NumThreads = 4;
      O.MorselSize = 256;
      O.AdaptiveExec = true;
      O.FastBackend = &Fast;
      O.Service = &Svc;
      db::ExecResult R = db::executeQuery(C.Plan, Opt, *C.Cat, &Out, O);
      if (R.Trapped) {
        std::fprintf(stderr, "round %llu %s: trapped\n",
                     static_cast<unsigned long long>(Round), C.Name.c_str());
        ++Violations;
        continue;
      }
      if (Out.unorderedDigest() != C.BaseDigest) {
        std::fprintf(stderr, "round %llu %s: tier swap changed the result\n",
                     static_cast<unsigned long long>(Round), C.Name.c_str());
        ++Violations;
      }
      Swaps += R.Stats.OsrSwaps;
      for (size_t PI = 0; PI != R.Stats.Pipelines.size(); ++PI) {
        const db::PipelineStats &P = R.Stats.Pipelines[PI];
        ++Pipelines;
        uint64_t NM = (P.Rows + O.MorselSize - 1) / O.MorselSize;
        bool Bad = P.Morsels != NM ||
                   P.MorselsFast + P.MorselsOpt != P.Morsels ||
                   P.RowsFast + P.RowsOpt != P.Rows ||
                   (P.Rows > 0 && P.MinWorkerMorsels < 1);
        if (Bad) {
          std::fprintf(
              stderr,
              "round %llu %s pipeline %zu: torn accounting: rows %llu "
              "(fast %llu + opt %llu), morsels %llu/%llu (fast %llu + opt "
              "%llu), min worker %llu\n",
              static_cast<unsigned long long>(Round), C.Name.c_str(), PI,
              static_cast<unsigned long long>(P.Rows),
              static_cast<unsigned long long>(P.RowsFast),
              static_cast<unsigned long long>(P.RowsOpt),
              static_cast<unsigned long long>(P.Morsels),
              static_cast<unsigned long long>(NM),
              static_cast<unsigned long long>(P.MorselsFast),
              static_cast<unsigned long long>(P.MorselsOpt),
              static_cast<unsigned long long>(P.MinWorkerMorsels));
          ++Violations;
        }
      }
    }
    if (Violations >= 3) {
      std::fprintf(stderr, "too many violations, stopping\n");
      return 1;
    }
    if ((Round + 1) % 10 == 0)
      std::printf("  %llu rounds ok (%llu pipelines, %llu swaps)\n",
                  static_cast<unsigned long long>(Round + 1),
                  static_cast<unsigned long long>(Pipelines),
                  static_cast<unsigned long long>(Swaps));
  }
  if (Violations) {
    std::printf("FAILED: %llu violations\n",
                static_cast<unsigned long long>(Violations));
    return 1;
  }
  std::printf("all %llu rounds clean: %llu pipelines, %llu tier swaps, no "
              "torn accounting\n",
              static_cast<unsigned long long>(Rounds),
              static_cast<unsigned long long>(Pipelines),
              static_cast<unsigned long long>(Swaps));
  return 0;
}

/// Serving-layer soak (`--serve`): a fleet-shaped workload against one
/// in-process serve::Server. Four tenants with distinct quotas open
/// sessions up to every cap (1100 concurrently open), 16 driver threads
/// multiplex queries over them — with deadline-armed queries, mid-flight
/// closes, and over-cap opens mixed in — and every completed result is
/// digest-checked against a serial baseline. The exactly-once contract:
/// issued == ok + rejected + cancelled + trapped, with zero digest
/// mismatches, tenant gauges never above their quotas, and every session
/// accounted for (opened == closed + evicted, open-gauge 0) at the end.
int runServeSoak(bool Quick) {
  static db::Catalog Cat;
  db::generateTpchLike(Cat, 0.05);
  std::vector<db::Query> Queries = db::tpchQueries();

  // Serial baseline digests, one per query, on an isolated stack.
  std::vector<uint64_t> BaseDigest(Queries.size());
  {
    backend::CachingBackend Base(backend::createBackend("DirectEmit"));
    for (size_t QI = 0; QI != Queries.size(); ++QI) {
      db::CompiledPlan Plan = db::compileQuery(Queries[QI], Cat);
      rt::OutputBuffer Out;
      db::ExecResult R = db::executeQuery(Plan, Base, Cat, &Out);
      if (R.Trapped) {
        std::fprintf(stderr, "%s: baseline trapped\n", Queries[QI].Name.c_str());
        return 1;
      }
      BaseDigest[QI] = Out.unorderedDigest();
    }
  }

  obs::MetricsRegistry Reg;
  serve::ServerConfig Cfg;
  Cfg.Reg = &Reg;
  Cfg.BackendName = "DirectEmit";
  Cfg.CompileWorkers = 4;
  Cfg.CompileQueueCapacity = 32;
  Cfg.Admission.Slots = 8;
  Cfg.Admission.MaxWaiters = 64;
  Cfg.IdleTimeoutNs = 60'000'000'000ull; // No surprise evictions mid-soak.
  Cfg.SweepIntervalNs = 50'000'000ull;   // But the sweeper thread runs.
  serve::Server Srv(Cfg, Cat);
  // Compile-landing jitter pushes service-queue and fairness-share
  // pressure around instead of clustering at warmup.
  Srv.compileService().injectCompileLatencyForTest(200);

  struct TenantCase {
    const char *Name;
    serve::TenantQuota Quota;
  };
  const TenantCase Tenants[] = {
      {"alpha", {500, 64ull << 20, 8, false}},
      {"beta", {300, 32ull << 20, 4, false}},
      {"gamma", {200, 16ull << 20, 2, true}},
      {"delta", {100, 8ull << 20, 2, false}},
  };
  uint64_t MaxSessionsTotal = 0;
  for (const TenantCase &T : Tenants) {
    Srv.registerTenant(T.Name, T.Quota);
    MaxSessionsTotal += T.Quota.MaxSessions;
  }

  // Phase 1: every tenant opens past its cap; the overshoot must come
  // back as typed SessionQuota rejections, leaving exactly the quota
  // open — 1100 concurrently live sessions across the four tenants.
  std::vector<std::pair<uint64_t, size_t>> Open; // (sid, tenant index)
  std::mutex OpenMutex;
  std::atomic<uint64_t> OpenRejected{0};
  {
    std::vector<std::thread> Openers;
    for (size_t TI = 0; TI != 4; ++TI)
      Openers.emplace_back([&, TI] {
        const TenantCase &T = Tenants[TI];
        for (uint64_t I = 0; I != T.Quota.MaxSessions + 25; ++I) {
          serve::OpenOutcome O = Srv.openSession(T.Name);
          if (O.Outcome == serve::Admit::Ok) {
            std::lock_guard<std::mutex> Lock(OpenMutex);
            Open.emplace_back(O.SessionId, TI);
          } else {
            ++OpenRejected;
          }
        }
      });
    for (std::thread &T : Openers)
      T.join();
  }
  uint64_t Violations = 0;
  if (Open.size() != MaxSessionsTotal || OpenRejected.load() != 4 * 25) {
    std::fprintf(stderr,
                 "session quota breach: %zu open (want %llu), %llu rejected "
                 "(want 100)\n",
                 Open.size(), static_cast<unsigned long long>(MaxSessionsTotal),
                 static_cast<unsigned long long>(OpenRejected.load()));
    ++Violations;
  }
  std::printf("serve soak: %zu concurrent sessions across 4 tenants, %llu "
              "over-cap opens rejected\n",
              Open.size(),
              static_cast<unsigned long long>(OpenRejected.load()));

  // Phase 2: 16 drivers multiplex queries over the open sessions. A
  // session picked by two drivers at once yields one typed SessionBusy —
  // counted, never lost. Every 7th query gets a 30us deadline (resolves
  // as Cancelled or as a fast Ok), every 97th session close races a
  // query in flight.
  const unsigned NumDrivers = 16;
  const uint64_t PerDriver = Quick ? 40 : 400;
  std::atomic<uint64_t> Issued{0}, Ok{0}, Rejected{0}, Cancelled{0},
      Trapped{0}, BadDigest{0}, QuotaBreaches{0};
  std::atomic<bool> MonitorStop{false};
  std::thread Monitor([&] {
    // Quota invariant, sampled live: reserved compile bytes never above
    // the cap (reservations are settled down, never up past admission).
    while (!MonitorStop.load(std::memory_order_acquire)) {
      obs::MetricsSnapshot Snap = Reg.snapshot();
      for (const TenantCase &T : Tenants) {
        int64_t Bytes =
            Snap.gauge("serve.tenant." + std::string(T.Name) + ".compile_bytes");
        if (Bytes > int64_t(T.Quota.MaxCompileBytes))
          ++QuotaBreaches;
        int64_t Sessions =
            Snap.gauge("serve.tenant." + std::string(T.Name) + ".sessions");
        if (Sessions > int64_t(T.Quota.MaxSessions))
          ++QuotaBreaches;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  {
    std::vector<std::thread> Drivers;
    for (unsigned D = 0; D != NumDrivers; ++D)
      Drivers.emplace_back([&, D] {
        Rng R(D * 0x9e3779b97f4a7c15ull + 1);
        for (uint64_t I = 0; I != PerDriver; ++I) {
          auto [Sid, TI] = Open[R.next() % Open.size()];
          size_t QI = R.next() % Queries.size();
          uint64_t DeadlineNs = (I % 7 == 6) ? 30'000 : 0;
          if (I % 97 == 96)
            Srv.closeSession(Sid); // Races the executes below; typed.
          rt::OutputBuffer Out;
          ++Issued;
          serve::QueryOutcome Q =
              Srv.execute(Sid, Queries[QI], &Out, DeadlineNs);
          if (Q.Ok) {
            ++Ok;
            if (Q.Digest != BaseDigest[QI])
              ++BadDigest;
          } else if (Q.Cancelled) {
            ++Cancelled;
          } else if (Q.Trapped) {
            ++Trapped;
          } else {
            ++Rejected;
          }
        }
      });
    for (std::thread &T : Drivers)
      T.join();
  }
  MonitorStop.store(true, std::memory_order_release);
  Monitor.join();

  if (BadDigest.load()) {
    std::fprintf(stderr, "%llu digest mismatches (lost/duplicated rows)\n",
                 static_cast<unsigned long long>(BadDigest.load()));
    ++Violations;
  }
  if (Ok.load() + Rejected.load() + Cancelled.load() + Trapped.load() !=
      Issued.load()) {
    std::fprintf(stderr, "lost queries: issued %llu != accounted %llu\n",
                 static_cast<unsigned long long>(Issued.load()),
                 static_cast<unsigned long long>(Ok.load() + Rejected.load() +
                                                 Cancelled.load() +
                                                 Trapped.load()));
    ++Violations;
  }
  if (Trapped.load())
    ++Violations;
  if (QuotaBreaches.load()) {
    std::fprintf(stderr, "%llu sampled tenant-quota breaches\n",
                 static_cast<unsigned long long>(QuotaBreaches.load()));
    ++Violations;
  }

  // Phase 3: close everything (some already closed mid-soak), then shut
  // down; every session must be accounted for.
  for (auto [Sid, TI] : Open)
    Srv.closeSession(Sid);
  Srv.shutdown();
  obs::MetricsSnapshot Snap = Reg.snapshot();
  if (Snap.gauge("serve.sessions.open") != 0 || Srv.numSessions() != 0) {
    std::fprintf(stderr, "session leak: gauge %lld, map %zu\n",
                 static_cast<long long>(Snap.gauge("serve.sessions.open")),
                 Srv.numSessions());
    ++Violations;
  }
  if (Snap.counter("serve.sessions.opened") !=
      Snap.counter("serve.sessions.closed") +
          Snap.counter("serve.sessions.evicted")) {
    std::fprintf(stderr, "session accounting leak\n");
    ++Violations;
  }
  if (Snap.counterSumWithPrefix("serve.") == 0) {
    std::fprintf(stderr, "no serve.* metrics visible\n");
    ++Violations;
  }

  const obs::HistogramSnapshot *Wait =
      Snap.histogram("serve.admission.wait_ns");
  std::printf(
      "  %llu issued: %llu ok, %llu rejected (typed), %llu cancelled; "
      "admission p50/p99 %.2f/%.2f ms; shed %llu, queue-full %llu\n",
      static_cast<unsigned long long>(Issued.load()),
      static_cast<unsigned long long>(Ok.load()),
      static_cast<unsigned long long>(Rejected.load()),
      static_cast<unsigned long long>(Cancelled.load()),
      Wait ? Wait->percentileNs(0.5) / 1e6 : 0.0,
      Wait ? Wait->percentileNs(0.99) / 1e6 : 0.0,
      static_cast<unsigned long long>(
          Snap.counter("serve.admission.rejected.shed")),
      static_cast<unsigned long long>(
          Snap.counter("serve.admission.rejected.full")));
  // Phase 4: deliberate overload against a deliberately tiny gate (one
  // slot, two waiters) with a background and a foreground tenant — the
  // load-shed path must fire (foreground arrivals evict queued
  // background waiters) and every overflow must come back typed.
  {
    obs::MetricsRegistry Reg2;
    serve::ServerConfig C2;
    C2.Reg = &Reg2;
    C2.BackendName = "DirectEmit";
    C2.Admission.Slots = 1;
    C2.Admission.MaxWaiters = 2;
    C2.StartSweeper = false;
    serve::Server Srv2(C2, Cat);
    Srv2.registerTenant("fg", {});
    serve::TenantQuota BgQ;
    BgQ.Background = true;
    Srv2.registerTenant("bg", BgQ);

    std::atomic<uint64_t> Issued2{0}, Done2{0};
    std::vector<std::thread> Threads;
    for (unsigned D = 0; D != 16; ++D)
      Threads.emplace_back([&, D] {
        const char *Tenant = D < 8 ? "bg" : "fg";
        serve::OpenOutcome O = Srv2.openSession(Tenant);
        if (O.Outcome != serve::Admit::Ok)
          return;
        for (int I = 0, N = Quick ? 10 : 40; I != N; ++I) {
          ++Issued2;
          serve::QueryOutcome Q = Srv2.execute(O.SessionId, Queries[0]);
          if (Q.Ok || Q.Cancelled || Q.Trapped ||
              Q.Outcome != serve::Admit::Ok)
            ++Done2;
        }
        Srv2.closeSession(O.SessionId);
      });
    for (std::thread &T : Threads)
      T.join();
    obs::MetricsSnapshot Snap2 = Reg2.snapshot();
    uint64_t Shed = Snap2.counter("serve.admission.rejected.shed");
    uint64_t Full = Snap2.counter("serve.admission.rejected.full");
    if (Issued2.load() != Done2.load()) {
      std::fprintf(stderr, "overload phase lost queries: %llu != %llu\n",
                   static_cast<unsigned long long>(Issued2.load()),
                   static_cast<unsigned long long>(Done2.load()));
      ++Violations;
    }
    if (Shed + Full == 0) {
      std::fprintf(stderr,
                   "overload phase produced no shed/queue-full rejections\n");
      ++Violations;
    }
    std::printf("  overload phase: %llu issued, %llu shed, %llu queue-full — "
                "all typed\n",
                static_cast<unsigned long long>(Issued2.load()),
                static_cast<unsigned long long>(Shed),
                static_cast<unsigned long long>(Full));
  }

  if (Violations) {
    std::printf("FAILED: %llu violations\n",
                static_cast<unsigned long long>(Violations));
    return 1;
  }
  std::printf("serve soak clean: quotas enforced, no lost results, graceful "
              "load shedding\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1 && std::strcmp(argv[1], "--async-compile") == 0)
    return runAsyncCompileSoak(
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 50);
  if (argc > 1 && std::strcmp(argv[1], "--code-cache") == 0)
    return runCodeCacheSoak(argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 20);
  if (argc > 1 && std::strcmp(argv[1], "--osr") == 0)
    return runOsrSoak(argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 40);
  if (argc > 1 && std::strcmp(argv[1], "--serve") == 0)
    return runServeSoak(argc > 2 && std::strcmp(argv[2], "--quick") == 0);
  uint64_t NumSeeds = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 1000;
  const char *Only = argc > 2 ? argv[2] : nullptr;

  std::vector<std::string> Backends;
  for (const std::string &Name : backend::allBackendNames()) {
    // GCC is ~1000x slower per module: soak it only when asked by name.
    if (Name == "Interpreter" || (Name == "GCC" && !Only))
      continue;
    if (Only && Name != Only)
      continue;
    Backends.push_back(Name);
  }
  if (Backends.empty()) {
    std::fprintf(stderr, "unknown back-end '%s'\n", Only ? Only : "");
    return 2;
  }
  std::printf("stress: %llu seeds x %zu back-ends\n",
              static_cast<unsigned long long>(NumSeeds), Backends.size());

  interp::InterpBackend Interp;
  uint64_t Mismatches = 0;
  for (uint64_t Seed = 0; Seed != NumSeeds; ++Seed) {
    qir::Module M;
    Rng R(Seed * 6364136223846793005ull + 1442695040888963407ull);
    test::RandomFnBuilder RB(M, R);
    RB.build("rand");
    if (std::optional<std::string> Err = qir::verify(M)) {
      std::fprintf(stderr, "seed %llu: generator produced invalid IR: %s\n",
                   static_cast<unsigned long long>(Seed), Err->c_str());
      return 1;
    }

    auto Ref = Interp.compile(M);
    std::vector<std::pair<uint64_t, uint64_t>> Inputs;
    for (int I = 0; I != 8; ++I)
      Inputs.emplace_back(R.next(), R.next());
    Inputs.emplace_back(0, 0);
    Inputs.emplace_back(~0ull, 1);

    std::vector<Outcome> Expected;
    for (auto [A, B] : Inputs)
      Expected.push_back(invoke(Ref->entry("rand"), A, B));

    for (const std::string &Name : Backends) {
      auto BE = backend::createBackend(Name);
      auto Compiled = BE->compile(M);
      for (size_t I = 0; I != Inputs.size(); ++I) {
        Outcome Got = invoke(Compiled->entry("rand"), Inputs[I].first,
                             Inputs[I].second);
        if (!(Got == Expected[I])) {
          ++Mismatches;
          std::fprintf(
              stderr,
              "MISMATCH seed=%llu backend=%s args=(%llu, %llu)\n"
              "  interp: trapped=%d value=%llu\n  %s: trapped=%d "
              "value=%llu\n%s\n",
              static_cast<unsigned long long>(Seed), Name.c_str(),
              static_cast<unsigned long long>(Inputs[I].first),
              static_cast<unsigned long long>(Inputs[I].second),
              Expected[I].Trapped,
              static_cast<unsigned long long>(Expected[I].Value),
              Name.c_str(), Got.Trapped,
              static_cast<unsigned long long>(Got.Value),
              qir::printModule(M).c_str());
          if (Mismatches >= 3) {
            std::fprintf(stderr, "too many mismatches, stopping\n");
            return 1;
          }
        }
      }
    }
    if ((Seed + 1) % 250 == 0)
      std::printf("  %llu seeds ok\n",
                  static_cast<unsigned long long>(Seed + 1));
  }
  if (Mismatches) {
    std::printf("FAILED: %llu mismatches\n",
                static_cast<unsigned long long>(Mismatches));
    return 1;
  }
  std::printf("all %llu seeds agree on all back-ends\n",
              static_cast<unsigned long long>(NumSeeds));
  return 0;
}
